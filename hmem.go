// Package hmem is a from-scratch reproduction of "Reliability-Aware Data
// Placement for Heterogeneous Memory Architecture" (Gupta et al., HPCA
// 2018): a full simulation stack for studying how page placement across a
// fast-but-fragile HBM tier and a slow-but-safe DDR tier trades performance
// (IPC) against reliability (soft error rate), plus the paper's static
// placement policies, AVF heuristics, dynamic migration mechanisms, and
// program-annotation pinning.
//
// The facade below exposes the common workflows; the full machinery lives in
// the internal packages (see DESIGN.md for the system inventory):
//
//	workload   synthetic SPEC-like 16-core trace generation (Table 2 mixes)
//	cachesim   L1/L2 filtering for CPU-level traces
//	memsim     cycle-level two-tier DRAM timing (Table 1 configuration)
//	avf        per-cache-line ACE tracking, per-page AVF
//	ecc        SEC-DED(72,64) and RS(18,16) ChipKill codecs
//	faultsim   Monte-Carlo DRAM fault studies (FIT -> uncorrectable rates)
//	core       hotness/risk statistics, quadrants, placement policies, SER
//	mea        Misra-Gries hot-page tracking (MemPod-style)
//	migration  perf-focused, Full Counter, and Cross Counter mechanisms
//	annotate   program-structure annotation and pinning
//	sim        the 16-core full-system simulator
//	exec       singleflight memoization + bounded deterministic worker pool
//	experiments one driver per paper table/figure
//
// A minimal session:
//
//	res, err := hmem.Evaluate(ctx, "mix1", hmem.PolicyWr2Ratio, nil)
//	fmt.Printf("IPC gain %.2fx, SER %.0fx of DDR-only\n",
//		res.IPCvsDDROnly, res.SERvsDDROnly)
//
// Long-lived processes (the hmemd service) hold an Engine instead, which
// shares one memoized runner across every request.
package hmem

import (
	"context"
	"fmt"

	"hmem/internal/core"
	"hmem/internal/exec"
	"hmem/internal/experiments"
	"hmem/internal/faultsim"
	"hmem/internal/migration"
	"hmem/internal/obs"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// PolicyName selects one of the paper's placement schemes.
type PolicyName string

// The available schemes. The first six are static (profile-guided); the
// last three are dynamic migration mechanisms.
const (
	PolicyDDROnly            PolicyName = "ddr-only"
	PolicyPerfFocused        PolicyName = "perf-focused"
	PolicyReliabilityFocused PolicyName = "reliability-focused"
	PolicyBalanced           PolicyName = "balanced"
	PolicyWrRatio            PolicyName = "wr-ratio"
	PolicyWr2Ratio           PolicyName = "wr2-ratio"
	PolicyPerfMigration      PolicyName = "perf-migration"
	PolicyFCMigration        PolicyName = "fc-migration"
	PolicyCCMigration        PolicyName = "cc-migration"
	PolicyAnnotation         PolicyName = "annotation"
)

// Policies lists every scheme name.
func Policies() []PolicyName {
	return []PolicyName{
		PolicyDDROnly, PolicyPerfFocused, PolicyReliabilityFocused,
		PolicyBalanced, PolicyWrRatio, PolicyWr2Ratio,
		PolicyPerfMigration, PolicyFCMigration, PolicyCCMigration,
		PolicyAnnotation,
	}
}

// Workloads lists the evaluated workload names: nine homogeneous benchmarks
// and the five Table 2 mixes. Any of the 17 benchmark names is also accepted
// by Evaluate as a homogeneous workload.
func Workloads() []string {
	var out []string
	for _, s := range workload.AllSpecs() {
		out = append(out, s.Name)
	}
	return out
}

// Benchmarks lists all benchmark profile names.
func Benchmarks() []string { return workload.Names() }

// Options tunes an evaluation; the zero value uses the defaults from the
// experiments package (1/64 capacity scale, 40 K records/core).
type Options = experiments.Options

// TraceStats is the trace-delivery counter pair (generator runs vs
// coalesced replays) reported by Engine.TraceStats.
type TraceStats = experiments.TraceStats

// TraceStream is the per-core trace interface, re-exported for the
// SetTraceWrap fault-injection seam.
type TraceStream = trace.Stream

// Result summarizes one workload x policy evaluation. The JSON field names
// are the hmemd service's wire format; encoding/json emits them in struct
// order, so the encoding of a Result is byte-deterministic.
type Result struct {
	Workload string     `json:"workload"`
	Policy   PolicyName `json:"policy"`
	// IPC is the absolute per-core IPC; the vs fields are ratios against
	// the same workload's baselines.
	IPC           float64 `json:"ipc"`
	IPCvsDDROnly  float64 `json:"ipc_vs_ddr_only"`
	SERvsDDROnly  float64 `json:"ser_vs_ddr_only"`
	MeanAVF       float64 `json:"mean_avf"`
	PagesMigrated uint64  `json:"pages_migrated"`
	// Endurance reports per-tier wear counters and is present only when the
	// evaluation's topology declares a write budget on some tier (e.g. the
	// built-in dram-nvm scenario); the default hbm-ddr topology omits it, so
	// existing result encodings are unchanged.
	Endurance []sim.TierEndurance `json:"endurance,omitempty"`
}

// Evaluate runs one workload under one policy and reports IPC/SER against
// the DDR-only baseline. opts may be nil for defaults. Cancelling ctx stops
// new simulations from starting; one already in flight runs to completion
// (simulations have no preemption points) and its result is discarded.
func Evaluate(ctx context.Context, workloadName string, policy PolicyName, opts *Options) (Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return Result{}, err
	}
	return e.Evaluate(ctx, workloadName, policy)
}

func evaluate(ctx context.Context, r *experiments.Runner, workloadName string, policy PolicyName) (Result, error) {
	spec, err := workload.SpecByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	prof, err := r.ProfileOf(ctx, spec)
	if err != nil {
		return Result{}, err
	}

	var res sim.Result
	switch policy {
	case PolicyDDROnly:
		res = prof.Result
	case PolicyPerfFocused:
		res, err = r.RunStatic(ctx, spec, core.PerfFocused{})
	case PolicyReliabilityFocused:
		res, err = r.RunStatic(ctx, spec, core.ReliabilityFocused{})
	case PolicyBalanced:
		res, err = r.RunStatic(ctx, spec, core.Balanced{})
	case PolicyWrRatio:
		res, err = r.RunStatic(ctx, spec, core.WrRatio{})
	case PolicyWr2Ratio:
		res, err = r.RunStatic(ctx, spec, core.Wr2Ratio{})
	case PolicyPerfMigration:
		res, err = r.RunDynamic(ctx, spec, string(policy), func() sim.Migrator {
			return migration.NewPerf(r.Options().FCIntervalCycles)
		}, core.PerfFocused{})
	case PolicyFCMigration:
		res, err = r.RunDynamic(ctx, spec, string(policy), func() sim.Migrator {
			return migration.NewFullCounter(r.Options().FCIntervalCycles)
		}, core.Balanced{})
	case PolicyCCMigration:
		res, err = r.RunDynamic(ctx, spec, string(policy), func() sim.Migrator {
			ratio := int(r.Options().FCIntervalCycles / r.Options().MEAIntervalCycles)
			return migration.NewCrossCounter(r.Options().MEAIntervalCycles, ratio, 32)
		}, core.Balanced{})
	case PolicyAnnotation:
		res, err = r.RunAnnotation(ctx, spec)
	default:
		return Result{}, fmt.Errorf("hmem: unknown policy %q", policy)
	}
	if err != nil {
		return Result{}, err
	}

	_, rel, err := r.SEROf(ctx, res)
	if err != nil {
		return Result{}, err
	}
	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.GaugeVec("hmem_workload_ipc",
			"Simulated per-core IPC of the latest evaluation.",
			"workload", "policy").With(workloadName, string(policy)).Set(res.IPC)
		// Endurance families are registered lazily so default-topology
		// processes keep their /metrics output unchanged.
		for _, e := range res.Endurance {
			reg.GaugeVec("hmem_tier_writes_total",
				"Writes absorbed by a write-budgeted tier in the latest evaluation.",
				"workload", "policy", "tier").
				With(workloadName, string(policy), e.Name).Set(float64(e.TotalWrites))
			reg.GaugeVec("hmem_tier_exhausted_frames",
				"Frames past their write budget in the latest evaluation.",
				"workload", "policy", "tier").
				With(workloadName, string(policy), e.Name).Set(float64(e.ExhaustedFrames))
		}
	}
	return Result{
		Workload:      workloadName,
		Policy:        policy,
		IPC:           res.IPC,
		IPCvsDDROnly:  res.IPC / prof.Result.IPC,
		SERvsDDROnly:  rel,
		MeanAVF:       res.MeanAVF(),
		PagesMigrated: res.PagesMigrated,
		Endurance:     res.Endurance,
	}, nil
}

// TierSummary describes one tier of a topology for discovery endpoints.
type TierSummary struct {
	Name        string `json:"name"`
	Mem         string `json:"mem"`
	Pages       uint64 `json:"pages"`
	WriteBudget uint64 `json:"write_budget,omitempty"`
}

// TopologySummary describes a selectable topology: its tiers in index order,
// which is the fast (migration-target) tier, and the first-touch allocation
// order.
type TopologySummary struct {
	Name       string        `json:"name"`
	Tiers      []TierSummary `json:"tiers"`
	FastTier   int           `json:"fast_tier"`
	AllocOrder []int         `json:"alloc_order"`
}

// Topologies lists the selectable topology names: the built-in hbm-ddr and
// dram-nvm machines first, then any registered custom topologies.
func Topologies() []string { return core.TopologyNames() }

// DescribeTopologies summarizes every selectable topology at the given
// capacity scale (0 = the default experiment scale).
func DescribeTopologies(scaleDiv int) ([]TopologySummary, error) {
	if scaleDiv <= 0 {
		scaleDiv = experiments.DefaultOptions().ScaleDiv
	}
	var out []TopologySummary
	for _, name := range core.TopologyNames() {
		topo, err := core.TopologyByName(name, scaleDiv)
		if err != nil {
			return nil, err
		}
		s := TopologySummary{Name: topo.Name, FastTier: topo.FastTier,
			AllocOrder: append([]int(nil), topo.AllocOrder...)}
		for _, td := range topo.Tiers {
			s.Tiers = append(s.Tiers, TierSummary{
				Name:        td.Name,
				Mem:         td.Mem.Name,
				Pages:       td.Mem.CapacityBytes / 4096,
				WriteBudget: td.WriteBudget,
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// RegisterTopologyJSON parses, validates, and registers a custom topology so
// Options.Topology can select it by name. Capacities in the file are taken
// as-is; Options.ScaleDiv does not rescale custom topologies. Returns the
// registered name.
func RegisterTopologyJSON(data []byte) (string, error) {
	topo, err := core.ParseTopology(data)
	if err != nil {
		return "", err
	}
	if err := core.RegisterTopology(topo); err != nil {
		return "", err
	}
	return topo.Name, nil
}

// Compare evaluates several policies on one workload with shared profiling
// (much cheaper than repeated Evaluate calls). The policies run concurrently
// on the runner's worker pool (Options.Parallel, default NumCPU); results are
// returned in input order and are identical to serial evaluation.
func Compare(ctx context.Context, workloadName string, policies []PolicyName, opts *Options) ([]Result, error) {
	e, err := NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return e.Compare(ctx, workloadName, policies)
}

// Engine is a long-lived evaluation session: one memoized experiment runner
// shared across every call, so repeated and concurrent requests for the same
// simulation collapse into a single execution. The hmemd service keeps one
// Engine per distinct option set for its process lifetime. All methods are
// safe for concurrent use.
type Engine struct {
	r *experiments.Runner
}

// NewEngine validates opts (nil = defaults) and builds an engine. This is
// cheap — no simulation runs until the first request.
func NewEngine(opts *Options) (*Engine, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	r, err := experiments.NewRunner(o)
	if err != nil {
		return nil, err
	}
	return &Engine{r: r}, nil
}

// Options returns the engine's resolved options (defaults filled in) — the
// canonical form the service digests for its result-cache keys.
func (e *Engine) Options() Options { return e.r.Options() }

// Evaluate runs one workload under one policy on the shared runner.
func (e *Engine) Evaluate(ctx context.Context, workloadName string, policy PolicyName) (Result, error) {
	return evaluate(ctx, e.r, workloadName, policy)
}

// Compare evaluates several policies on one workload concurrently, sharing
// the profiling run and every memoized simulation.
func (e *Engine) Compare(ctx context.Context, workloadName string, policies []PolicyName) ([]Result, error) {
	// Profile once up front so the concurrent evaluations share the warm
	// memo instead of all blocking on the same singleflight leader.
	spec, err := workload.SpecByName(workloadName)
	if err != nil {
		return nil, err
	}
	if _, err := e.r.ProfileOf(ctx, spec); err != nil {
		return nil, err
	}
	return exec.Map(ctx, e.r.Options().Parallel, len(policies), func(i int) (Result, error) {
		return evaluate(ctx, e.r, workloadName, policies[i])
	})
}

// ExperimentIDs lists the table/figure drivers runnable via RunExperiment,
// in paper order.
func (e *Engine) ExperimentIDs() []string {
	var ids []string
	for _, n := range e.r.All() {
		ids = append(ids, n.ID)
	}
	return ids
}

// RunExperiment regenerates one paper table/figure by id on the shared
// runner (the async-job path of the hmemd service). When ctx carries a
// tracer the whole driver runs under an "experiment.<id>" span.
func (e *Engine) RunExperiment(ctx context.Context, id string) (*report.Table, error) {
	exp, ok := e.r.ByID(id)
	if !ok {
		return nil, fmt.Errorf("hmem: unknown experiment %q", id)
	}
	if obs.Enabled(ctx) {
		var sp *obs.Span
		ctx, sp = obs.Start(ctx, "experiment."+id)
		defer sp.End()
	}
	return exp.Run(ctx)
}

// CacheStats reports the shared runner's memo hit/miss counters: how much
// simulation work requests have shared so far.
func (e *Engine) CacheStats() exec.MemoStats { return e.r.CacheStats() }

// AcquireTracePlan pins a materialized trace replay plan for a workload and
// returns its release: while held, every evaluation of that workload on
// this engine replays one collected trace instead of regenerating it per
// simulation — the plan-coalescing primitive behind the hmemd batch
// endpoint. Results are byte-identical to uncoalesced evaluation (the
// generators are pure functions of the seed). Release is idempotent; the
// records are dropped when the last holder releases. No-op (still returning
// a valid release) when a cluster delegate is installed, because batch
// items shard independently across workers.
func (e *Engine) AcquireTracePlan(ctx context.Context, workloadName string) (release func(), err error) {
	return e.r.AcquireTracePlan(ctx, workloadName)
}

// TraceStats reports the engine's trace-delivery counters: generator runs
// (opens) versus simulations served a replay view from an active coalescing
// plan (hits).
func (e *Engine) TraceStats() experiments.TraceStats { return e.r.TraceStats() }

// SetTraceWrap installs a wrapper over every trace stream a simulation on
// this engine consumes, keyed by workload name — the per-item
// fault-injection seam of the batch chaos tests. Results computed under a
// wrap are memoized like any other, so long-lived engines should only wrap
// in tests.
func (e *Engine) SetTraceWrap(wrap func(workloadName string, s trace.Stream) trace.Stream) {
	e.r.SetTraceWrap(wrap)
}

// SetDelegate installs a distribution delegate on the shared runner: every
// memoized building block (profiles, policy runs, fault-study shards) is
// offered to it before local computation. The hmemd coordinator uses this to
// fan work out to registered cluster workers; experiments.ErrNotDelegated
// falls back to local execution, so an engine with an idle delegate behaves
// exactly like a standalone one.
func (e *Engine) SetDelegate(d experiments.Delegate) { e.r.SetDelegate(d) }

// ExecuteBlock runs one building block locally by its wire key — the worker
// side of cluster execution. Results flow through the engine's memo caches,
// so repeated shards are served without recomputation.
func (e *Engine) ExecuteBlock(ctx context.Context, key experiments.BlockKey) (*experiments.BlockPayload, error) {
	return e.r.ExecuteBlock(ctx, key)
}

// RunStudyShard executes one fault-study Monte-Carlo shard for a topology
// tier — the worker side of distributed fault studies.
func (e *Engine) RunStudyShard(tier int, job faultsim.ShardJob) (faultsim.ShardTally, error) {
	return e.r.RunStudyShard(tier, job)
}
