module hmem

go 1.22
