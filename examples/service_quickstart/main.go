// Service quickstart: talk to a running hmemd with the typed client — list
// the catalog, evaluate the same request twice to show the server-side
// result cache, and run one async experiment job with progress events.
//
// Start a server first (small options keep this snappy):
//
//	go run ./cmd/hmemd -addr 127.0.0.1:8080 -records 3000 -fault-trials 2000 &
//	go run ./examples/service_quickstart -addr http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"hmem"
	"hmem/internal/service"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "hmemd base URL")
	flag.Parse()

	// Bounded retry-with-backoff on idempotent calls: a daemon restarting
	// mid-deploy shows up as a blip, not a failure.
	c := &service.Client{BaseURL: *addr, Retries: 3, Backoff: 200 * time.Millisecond}
	ctx := context.Background()

	if err := c.Healthz(ctx); err != nil {
		log.Fatalf("server not healthy at %s: %v", *addr, err)
	}
	workloads, _, err := c.Workloads(ctx)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := c.Policies(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server offers %d workloads and %d policies\n\n", len(workloads), len(policies))

	// The same request twice: the second answer comes from the result
	// cache — same bytes, no second simulation.
	req := service.EvaluateRequest{Workload: "astar", Policy: hmem.PolicyWr2Ratio}
	for i, label := range []string{"cold (simulates)", "warm (cached)"} {
		start := time.Now()
		res, err := c.Evaluate(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("evaluate #%d %-17s %.1fs  IPC %.2fx  SER %.1fx vs DDR-only\n",
			i+1, label, time.Since(start).Seconds(), res.IPCvsDDROnly, res.SERvsDDROnly)
	}
	fmt.Println()

	// Async job: regenerate a paper table, streaming state transitions.
	table, err := c.RunJob(ctx, service.JobRequest{Experiment: "hwcost"}, func(ev service.JobEvent) {
		fmt.Printf("job %s: %s\n", ev.JobID, ev.State)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n", table)
}
