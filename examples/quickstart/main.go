// Quickstart: evaluate one workload under the two headline policies and see
// the performance/reliability trade-off the paper is about.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"hmem"
)

func main() {
	// Keep the run small: a quarter of the default trace length.
	opts := &hmem.Options{RecordsPerCore: 10000}

	results, err := hmem.Compare(context.Background(), "astar", []hmem.PolicyName{
		hmem.PolicyDDROnly,
		hmem.PolicyPerfFocused,
		hmem.PolicyWr2Ratio,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("astar on the scaled Table 1 HMA (16 cores, HBM+DDR3):")
	fmt.Printf("%-16s %-8s %-16s %-16s\n", "policy", "IPC", "IPC vs DDR-only", "SER vs DDR-only")
	for _, r := range results {
		fmt.Printf("%-16s %-8.3f %-16s %-16s\n",
			r.Policy, r.IPC,
			fmt.Sprintf("%.2fx", r.IPCvsDDROnly),
			fmt.Sprintf("%.2fx", r.SERvsDDROnly))
	}
	fmt.Println()
	fmt.Println("perf-focused buys bandwidth with a huge soft-error exposure;")
	fmt.Println("the Wr2 heuristic keeps most of the speed at a fraction of the SER.")
}
