// Datacenter mixes: run the paper's Table 2 mixed workloads under every
// placement scheme and print the IPC/SER frontier per mix — the view an
// operator deciding a fleet-wide placement policy would want.
//
//	go run ./examples/datacenter_mix
package main

import (
	"context"
	"fmt"
	"log"

	"hmem"
)

func main() {
	opts := &hmem.Options{RecordsPerCore: 15000}
	policies := []hmem.PolicyName{
		hmem.PolicyPerfFocused,
		hmem.PolicyBalanced,
		hmem.PolicyWr2Ratio,
		hmem.PolicyFCMigration,
	}

	for _, mix := range []string{"mix1", "mix2", "mix3"} {
		results, err := hmem.Compare(context.Background(), mix, policies, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", mix)
		fmt.Printf("%-16s %-16s %-16s %s\n", "policy", "IPC vs DDR-only", "SER vs DDR-only", "pages migrated")
		for _, r := range results {
			fmt.Printf("%-16s %-16s %-16s %d\n",
				r.Policy,
				fmt.Sprintf("%.2fx", r.IPCvsDDROnly),
				fmt.Sprintf("%.1fx", r.SERvsDDROnly),
				r.PagesMigrated)
		}
		fmt.Println()
	}
	fmt.Println("Reading the frontier: pick the scheme whose SER exposure your")
	fmt.Println("fleet's FIT budget tolerates at the highest IPC.")
}
