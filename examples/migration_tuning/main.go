// Migration tuning: sweep the migration interval (Figure 13) and compare
// the hardware cost of the Full Counter and Cross Counter mechanisms
// (§6.3/§6.4.2) — the study an architect sizing the mechanism would run.
//
//	go run ./examples/migration_tuning
package main

import (
	"context"
	"fmt"
	"log"

	"hmem/internal/core"
	"hmem/internal/experiments"
	"hmem/internal/migration"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.RecordsPerCore = 15000
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}

	spec, err := workload.SpecByName("soplex")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	prof, err := runner.ProfileOf(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== migration-interval sweep (soplex, perf-focused migration) ==")
	fmt.Printf("%-18s %-10s %-10s %s\n", "interval (cycles)", "IPC", "vs DDR", "pages migrated")
	base := opts.FCIntervalCycles
	for _, iv := range []int64{base / 8, base / 2, base, base * 2, base * 8} {
		iv := iv
		res, err := runner.RunDynamic(ctx, spec, fmt.Sprintf("sweep-%d", iv), func() sim.Migrator {
			return migration.NewPerf(iv)
		}, core.PerfFocused{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18d %-10.3f %-10s %d\n", iv, res.IPC,
			fmt.Sprintf("%.2fx", res.IPC/prof.Result.IPC), res.PagesMigrated)
	}

	fmt.Println()
	fmt.Println("== hardware cost (paper scale: 17 GB HMA, 1 GB HBM) ==")
	totalPages := 17 * (1 << 30) / 4096
	hbmPages := (1 << 30) / 4096
	fmt.Printf("Full Counters (total)      %8.2f MB\n", float64(core.FCCostBytes(totalPages))/(1<<20))
	fmt.Printf("Full Counters (additional) %8.2f MB\n", float64(core.FCAdditionalCostBytes(totalPages))/(1<<20))
	fmt.Printf("Cross Counters             %8.2f KB\n", float64(core.CCCostBytes(hbmPages))/(1<<10))
	fmt.Println()
	fmt.Println("Too-short intervals thrash (migration cost dominates); too-long")
	fmt.Println("intervals go stale. Cross Counters buy ~6x cheaper hardware at a")
	fmt.Println("modest reliability cost versus Full Counters (Table 3).")
}
