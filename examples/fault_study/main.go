// Fault study: the reliability substrate on its own. Runs the §3.2
// Monte-Carlo fault studies for both memory organizations, then the
// extended study with permanent faults and scrubbing — the analysis an
// architect would run before committing to an ECC scheme.
//
//	go run ./examples/fault_study
package main

import (
	"fmt"
	"log"

	"hmem/internal/faultsim"
)

func main() {
	const trials = 20000
	rates := faultsim.SridharanTransient()

	fmt.Println("== transient-only (the paper's §3.2 configuration) ==")
	for _, org := range []faultsim.Organization{faultsim.DDR3ChipKill(), faultsim.HBMSecDed()} {
		res, err := faultsim.NewStudy(org, rates, 0x57D).Run(trials)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s P(unc|1 fault)=%.3f  P(unc|2)=%.4f  unc FIT/GB=%.4f\n",
			org.Name, res.PUncGivenK[1], res.PUncGivenK[2], res.UncFITPerGB)
	}
	fits, err := faultsim.DefaultTierFITs(trials)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HBM:DDR uncorrectable FIT ratio = %.0fx -> why perf-focused placement costs ~300x SER\n\n", fits.Ratio())

	fmt.Println("== extension: permanent faults + scrubbing ==")
	for _, scrub := range []float64{0, 24, 1} {
		s := faultsim.NewScrubStudy(faultsim.DDR3ChipKill(), 0x5C12B)
		s.ScrubIntervalHours = scrub
		res, err := s.Run(trials)
		if err != nil {
			log.Fatal(err)
		}
		label := "no scrubbing"
		if scrub > 0 {
			label = fmt.Sprintf("scrub every %.0fh", scrub)
		}
		fmt.Printf("DDR3+ChipKill, %-18s P(unc|2 faults)=%.4f  unc FIT/GB=%.4f\n",
			label, res.PUncGivenK[2], res.UncFITPerGB)
	}
	fmt.Println()
	fmt.Println("Scrubbing shortens transient-fault lifetimes, cutting the chance")
	fmt.Println("that two faults coexist in one ChipKill word; permanent faults")
	fmt.Println("are immune to it (and dominate the residual rate).")
}
