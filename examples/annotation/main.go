// Annotation walkthrough (§7 of the paper): profile a workload, let the
// profile-guided annotator pick the program structures worth pinning in
// HBM, and show what a programmer would actually annotate.
//
//	go run ./examples/annotation
package main

import (
	"context"
	"fmt"
	"log"

	"hmem/internal/annotate"
	"hmem/internal/experiments"
	"hmem/internal/workload"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.RecordsPerCore = 15000
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"astar", "cactusADM"} {
		spec, err := workload.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := runner.ProfileOf(context.Background(), spec)
		if err != nil {
			log.Fatal(err)
		}
		capacity := int(runner.Config().FastPages())
		anns, pins := annotate.Select(prof.Structures, prof.Stats, capacity)

		fmt.Printf("== %s: %d structures to annotate (%d pages pinned of %d HBM pages) ==\n",
			name, annotate.Count(anns), len(pins), capacity)
		for i, a := range anns {
			if i == 8 {
				fmt.Printf("  ... and %d more\n", len(anns)-8)
				break
			}
			fmt.Printf("  #%d %-28s %4d pages x%2d copies  hot/low-risk density %.0f acc/page\n",
				i+1, a.Name, len(a.Pages), len(a.Instances), a.Density)
		}
		fmt.Println()
	}
	fmt.Println("astar needs a couple of annotations; cactusADM's many small")
	fmt.Println("structures are why the paper reports it as the 39-annotation outlier.")
}
