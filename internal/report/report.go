// Package report renders experiment results as aligned text tables and CSV,
// the output format of the cmd/experiments binary and the bench harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float with prec decimals.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// X formats a ratio as "1.63x".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Pct formats a fraction as "12.3%".
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Int formats an integer.
func Int(v int) string { return fmt.Sprintf("%d", v) }
