// Package report renders experiment results as aligned text tables, CSV,
// and JSON — the output formats of the cmd/experiments binary, the bench
// harness, and the hmemd service's job results.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string     `json:"title"`
	Note    string     `json:"note,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// New returns a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the table as one JSON object. Field order is fixed by the
// struct, so the encoding of a given table is byte-deterministic.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("report: writing JSON: %w", err)
	}
	return nil
}

// ReadJSON parses a table previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Table, error) {
	var t Table
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("report: reading JSON: %w", err)
	}
	return &t, nil
}

// ReadCSV parses a header+rows CSV previously written by WriteCSV. Title and
// Note are not part of the CSV encoding and come back empty; rows keep ragged
// lengths just as AddRow stored them.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // AddRow permits ragged rows; accept them back.
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("report: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("report: reading CSV: missing header row")
	}
	t := &Table{Columns: records[0]}
	for _, row := range records[1:] {
		t.AddRow(row...)
	}
	return t, nil
}

// F formats a float with prec decimals.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// X formats a ratio as "1.63x".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Pct formats a fraction as "12.3%".
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Int formats an integer.
func Int(v int) string { return fmt.Sprintf("%d", v) }
