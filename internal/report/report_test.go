package report

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := New("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("a-much-longer-name", "2")
	tab.Note = "hello"
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "note: hello") {
		t.Error("note missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows + note
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns align: every data line has the value column at the same
	// offset, padded to the longest cell.
	header := lines[1]
	idx := strings.Index(header, "value")
	for _, ln := range lines[3:5] {
		if len(ln) < idx {
			t.Fatalf("row %q shorter than header offset", ln)
		}
	}
}

func TestTableStringNoTitleNoNote(t *testing.T) {
	tab := New("", "a")
	tab.AddRow("x")
	out := tab.String()
	if strings.Contains(out, "==") || strings.Contains(out, "note:") {
		t.Fatalf("unexpected decorations: %q", out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "extra-kept")
	out := tab.String()
	if !strings.Contains(out, "only-one") || !strings.Contains(out, "y") {
		t.Fatalf("rows mangled: %q", out)
	}
}

func TestWriteCSV(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow("1", "with,comma")
	tab.AddRow("2", `with "quote"`)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "a,b\n") {
		t.Fatalf("header wrong: %q", got)
	}
	if !strings.Contains(got, `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", got)
	}
	if !strings.Contains(got, `"with ""quote"""`) {
		t.Fatalf("quote cell not escaped: %q", got)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteCSVPropagatesErrors(t *testing.T) {
	tab := New("t", "a")
	tab.AddRow("1")
	if err := tab.WriteCSV(failWriter{}); err == nil {
		t.Fatal("expected write error")
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{F(3.14159, 2), "3.14"},
		{F(3.14159, 0), "3"},
		{X(1.6), "1.60x"},
		{Pct(0.123), "12.3%"},
		{Pct(1), "100.0%"},
		{Int(42), "42"},
		{Int(-7), "-7"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tab := New("Figure 5: static placement", "workload", "IPC", "SER")
	tab.Note = "paper: 1.6x"
	tab.AddRow("astar", "1.63x", "287.00x")
	tab.AddRow("short-row")
	tab.AddRow("x", "y", "z", "extra-kept")
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != tab.Title || got.Note != tab.Note {
		t.Fatalf("title/note mangled: %+v", got)
	}
	if !reflect.DeepEqual(got.Columns, tab.Columns) || !reflect.DeepEqual(got.Rows, tab.Rows) {
		t.Fatalf("cells mangled:\n%+v\nvs\n%+v", got, tab)
	}
}

func TestJSONDeterministicBytes(t *testing.T) {
	// The service promises byte-identical job results for identical runs;
	// that only holds if the table encoding itself is stable.
	tab := New("t", "a", "b")
	tab.AddRow("1", "2")
	var a, b bytes.Buffer
	if err := tab.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("encodings differ: %q vs %q", a.String(), b.String())
	}
}

func TestWriteJSONPropagatesErrors(t *testing.T) {
	tab := New("t", "a")
	if err := tab.WriteJSON(failWriter{}); err == nil {
		t.Fatal("expected write error")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := New("t", "a", "b")
	tab.AddRow("1", "with,comma")
	tab.AddRow("only-one")
	tab.AddRow("x", "y", "extra-kept")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Columns, tab.Columns) || !reflect.DeepEqual(got.Rows, tab.Rows) {
		t.Fatalf("round trip mangled:\n%+v\nvs\n%+v", got, tab)
	}
}

func TestReadCSVRejectsEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for missing header")
	}
}
