package sim

import (
	"context"
	"errors"
	"testing"

	"hmem/internal/avf"
	"hmem/internal/core"
	"hmem/internal/faultsim"
	"hmem/internal/memsim"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// threeTierTopo builds a small NVM/DRAM/HBM topology for tests: DRAM (tier 1)
// takes first touches and spills into the write-budgeted NVM capacity tier
// (tier 0); HBM (tier 2) is the migration target.
func threeTierTopo(nvmPages, dramPages, hbmPages uint64) *core.Topology {
	return &core.Topology{
		Name: "test-3tier",
		Tiers: []core.TierDesc{
			{Name: "NVM", Mem: memsim.NVM(nvmPages * 4096), Org: faultsim.NVMDimm(), FaultSeed: 0x7733, WriteBudget: 4},
			{Name: "DRAM", Mem: memsim.DDR3(dramPages * 4096), Org: faultsim.DDR3ChipKill(), FaultSeed: 0xD0D0},
			{Name: "HBM", Mem: memsim.HBM(hbmPages * 4096), Org: faultsim.HBMSecDed(), FaultSeed: 0x4B1D},
		},
		FastTier:   2,
		AllocOrder: []int{1, 0},
	}
}

// TestPlacementSpillsAcrossTiers verifies the N-tier first-touch semantics:
// allocation follows AllocOrder, spills when a tier runs out of frames, and
// exhaustion of the whole chain reports the typed error that still matches
// the legacy sentinel.
func TestPlacementSpillsAcrossTiers(t *testing.T) {
	topo := threeTierTopo(8, 4, 2)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	p := NewTopologyPlacement(topo)

	for pg := uint64(0); pg < 12; pg++ {
		tier, _, err := p.Lookup(pg)
		if err != nil {
			t.Fatalf("page %d: %v", pg, err)
		}
		want := avf.Tier(1) // DRAM first...
		if pg >= 4 {
			want = 0 // ...then spill to NVM
		}
		if tier != want {
			t.Fatalf("page %d landed in tier %d, want %d", pg, tier, want)
		}
	}
	if got := p.ResidentOf(1); got != 4 {
		t.Fatalf("DRAM resident = %d, want 4", got)
	}
	if got := p.ResidentOf(0); got != 8 {
		t.Fatalf("NVM resident = %d, want 8", got)
	}

	// Both allocation tiers are full; the next first touch must fail with
	// the typed error AND keep matching the legacy sentinel.
	_, _, err := p.Lookup(99)
	if err == nil {
		t.Fatal("allocation past capacity succeeded")
	}
	if !errors.Is(err, ErrDDRExhausted) {
		t.Fatalf("exhaustion error %v does not match ErrDDRExhausted", err)
	}
	var te *ErrTierExhausted
	if !errors.As(err, &te) {
		t.Fatalf("exhaustion error %v is not *ErrTierExhausted", err)
	}
	if te.Tier != 0 || te.Name != "NVM" || te.Capacity != 8 {
		t.Fatalf("ErrTierExhausted = %+v, want tier 0 NVM capacity 8", te)
	}
	if te.Error() != "sim: NVM capacity exhausted (8 pages)" {
		t.Fatalf("error text = %q", te.Error())
	}
}

// TestPlacementEndurance checks the per-frame wear counters: demand writes
// and migration transfers charge the destination frame, and the summary
// counts frames at or past the budget.
func TestPlacementEndurance(t *testing.T) {
	topo := threeTierTopo(8, 2, 2)
	p := NewTopologyPlacement(topo)

	// Fill DRAM (pages 0-1), spill pages 2-4 into NVM.
	for pg := uint64(0); pg < 5; pg++ {
		if _, _, err := p.Lookup(pg); err != nil {
			t.Fatal(err)
		}
	}
	// Page 2 is the first NVM page: write it past the budget of 4.
	pi := p.Intern(2)
	tier, frame, err := p.LookupIndex(pi)
	if err != nil || tier != 0 {
		t.Fatalf("page 2 in tier %d err %v, want NVM", tier, err)
	}
	for k := 0; k < 5; k++ {
		p.RecordWrite(tier, frame)
	}
	// One write to another NVM page, below budget.
	pi3 := p.Intern(3)
	t3, f3, _ := p.LookupIndex(pi3)
	p.RecordWrite(t3, f3)

	end := p.Endurance()
	if len(end) != 1 {
		t.Fatalf("endurance tiers = %d, want 1 (NVM only)", len(end))
	}
	e := end[0]
	if e.Tier != 0 || e.Name != "NVM" || e.WriteBudget != 4 {
		t.Fatalf("endurance identity = %+v", e)
	}
	if e.TotalWrites != 6 || e.MaxFrameWrites != 5 || e.ExhaustedFrames != 1 {
		t.Fatalf("endurance counters = %+v, want 6 total, 5 max, 1 exhausted", e)
	}

	// A two-tier placement reports no endurance and RecordWrite is a no-op.
	p2 := NewPlacement(4, 16)
	tier2, frame2, _ := p2.Lookup(0)
	p2.RecordWrite(tier2, frame2)
	if p2.Endurance() != nil {
		t.Fatal("default placement reports endurance")
	}
}

// TestPerAccessPathZeroAllocsThreeTier re-runs the zero-allocation gate over
// a three-tier placement with wear accounting live: spilled allocation,
// N-tier AVF tracking, and the RecordWrite path must all stay allocation-free
// in steady state.
func TestPerAccessPathZeroAllocsThreeTier(t *testing.T) {
	const pages = 256
	topo := threeTierTopo(1024, 64, 32)
	p := NewTopologyPlacement(topo)
	tracker := avf.NewTrackerN(p.NumTiers())
	iv := newIntervalState()
	fast := avf.Tier(p.FastTier())

	var now int64
	touch := func() {
		for pg := uint64(0); pg < pages; pg++ {
			pi := p.Intern(pg)
			tier, frame, _ := p.LookupIndex(pi)
			now++
			write := pg%3 == 0
			if write {
				p.RecordWrite(tier, frame)
			}
			tracker.Access(uint32(pi), int(pg%64), now, write, tier)
			iv.observe(pi, write, tier == fast)
		}
	}
	touch()
	iv.sample(now, 0)
	touch()

	pg := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		pi := p.Intern(pg)
		tier, frame, _ := p.LookupIndex(pi)
		now++
		write := pg%3 == 0
		if write {
			p.RecordWrite(tier, frame)
		}
		tracker.Access(uint32(pi), int(pg%64), now, write, tier)
		iv.observe(pi, write, tier == fast)
		pg = (pg + 1) % pages
	})
	if allocs != 0 {
		t.Fatalf("three-tier per-access path allocated %.1f times per access; want 0", allocs)
	}
}

// TestRunCtxThreeTier drives the full simulator over the three-tier topology:
// the run must finish, report per-tier stats for all three tiers, and carry
// NVM endurance counters in the result.
func TestRunCtxThreeTier(t *testing.T) {
	cfg := testConfig()
	// DRAM is sized far below astar's footprint so first touches spill
	// into the write-budgeted NVM tier.
	cfg.Topology = threeTierTopo(64<<10, 64, 64)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, 0, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCtx(context.Background(), cfg, []trace.Stream{g}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if len(res.TierStats) != 3 {
		t.Fatalf("tier stats = %d, want 3", len(res.TierStats))
	}
	if len(res.Endurance) != 1 || res.Endurance[0].Name != "NVM" {
		t.Fatalf("endurance = %+v, want NVM", res.Endurance)
	}
	if res.Endurance[0].TotalWrites == 0 {
		t.Fatal("no NVM writes recorded; working set never spilled")
	}
	// The HBM-named aliases must follow the fast tier.
	if res.HBMStats != res.TierStats[2] || res.DDRStats != res.TierStats[0] {
		t.Fatal("legacy stat aliases do not track the topology")
	}
}
