package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"hmem/internal/chaos"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// TestRunReportsInjectedStreamFaultAndStaysClean drives Run through a
// chaos-wrapped trace: the injected mid-stream error must surface with the
// record position and wrap chaos.ErrInjected, and a fault-free run afterward
// must match a fault-free run from before — one poisoned stream never
// corrupts later simulations.
func TestRunReportsInjectedStreamFaultAndStaysClean(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	mkStream := func() trace.Stream {
		g, err := workload.NewGenerator(prof, 0, 5000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}

	reference, err := Run(cfg, []trace.Stream{mkStream()}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := chaos.New(chaos.Plan{Trace: []chaos.TraceFault{
		{AtRecord: 1234, Mode: chaos.ModeError},
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(cfg, []trace.Stream{inj.Stream(mkStream())}, nil, false, nil)
	if err == nil {
		t.Fatal("Run swallowed the injected stream fault")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Run err = %v, does not wrap chaos.ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "record 1234") {
		t.Fatalf("Run err = %q, missing faulted record position", err)
	}
	if got := inj.Stats().Trace; got != 1 {
		t.Fatalf("injected trace faults = %d, want 1", got)
	}

	after, err := Run(cfg, []trace.Stream{mkStream()}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reference, after) {
		t.Fatal("fault-free run after an injected fault diverged from the reference")
	}
}

// TestRunTruncatedStreamEndsEarlyNotBroken: a ModeTruncate fault is a clean
// EOF — the simulation completes with fewer records instead of erroring.
func TestRunTruncatedStreamEndsEarlyNotBroken(t *testing.T) {
	cfg := testConfig()
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, 0, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := chaos.New(chaos.Plan{Trace: []chaos.TraceFault{
		{AtRecord: 500, Mode: chaos.ModeTruncate},
	}})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(cfg, []trace.Stream{g}, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := workload.NewGenerator(prof, 0, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(cfg, []trace.Stream{inj.Stream(g2)}, nil, false, nil)
	if err != nil {
		t.Fatalf("truncated stream errored: %v", err)
	}
	if short.Instructions >= full.Instructions {
		t.Fatalf("truncated run committed %d instructions, full run %d",
			short.Instructions, full.Instructions)
	}
}
