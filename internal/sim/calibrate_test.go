package sim

import (
	"sort"
	"testing"

	"hmem/internal/core"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// TestWorkloadCalibration runs every evaluated workload DDR-only and checks
// that the emergent statistics reproduce the paper's published aggregates:
//
//   - Figure 2: per-workload mean memory AVF spreads by several x, with
//     astar at the low end and milc near the high end.
//   - Figure 4: a material hot∧low-risk population exists in every workload
//     (paper: 9%-39%; lbm is called out as the outlier with few such pages).
//   - Figure 6: hotness and AVF are weakly correlated over the footprint.
//   - Figure 9a: write ratio and AVF of the hottest 1000 pages correlate
//     negatively (paper: ρ = -0.32).
func TestWorkloadCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full workloads")
	}
	cfg := testConfig()
	meanAVF := map[string]float64{}
	for _, spec := range workload.AllSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			suite, err := spec.Build(40000, 0xCA11B)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, suite.Streams(), nil, false, nil)
			if err != nil {
				t.Fatal(err)
			}
			pageStats := res.Stats()
			m := res.MeanAVF()
			meanAVF[spec.Name] = m
			if m < 0.005 || m > 0.40 {
				t.Errorf("mean AVF = %.3f outside the plausible Figure 2 band", m)
			}

			q := core.Quadrants(pageStats)
			if f := q.Frac(core.HotLowRisk); f < 0.04 || f > 0.45 {
				t.Errorf("hot+low-risk fraction = %.2f, want 0.04..0.45 (paper: 9%%-39%%)", f)
			}

			hot := make([]float64, len(pageStats))
			av := make([]float64, len(pageStats))
			for i, p := range pageStats {
				hot[i] = float64(p.Accesses())
				av[i] = p.AVF
			}
			hotCorr := stats.Pearson(hot, av)
			if hotCorr < -0.3 || hotCorr > 0.92 {
				t.Errorf("hotness-AVF correlation = %.2f, want weak-to-moderate (paper: 0.08)", hotCorr)
			}

			// Figure 9a methodology: write ratio vs AVF over the top-1000
			// hottest pages.
			byHot := append([]core.PageStats(nil), pageStats...)
			sort.Slice(byHot, func(i, j int) bool { return byHot[i].Accesses() > byHot[j].Accesses() })
			n := 1000
			if n > len(byHot) {
				n = len(byHot)
			}
			wr := make([]float64, n)
			av1k := make([]float64, n)
			for i := 0; i < n; i++ {
				wr[i] = byHot[i].WrRatio()
				av1k[i] = byHot[i].AVF
			}
			wrCorr := stats.Pearson(wr, av1k)
			if wrCorr > -0.10 {
				t.Errorf("writeRatio-AVF correlation (top1000) = %.2f, want clearly negative (paper: -0.32)", wrCorr)
			}
			t.Logf("meanAVF=%.3f hotLow=%.2f corr(h,avf)=%.2f corr(wr,avf|top1k)=%.2f",
				m, q.Frac(core.HotLowRisk), hotCorr, wrCorr)
		})
	}
	if len(meanAVF) == len(workload.AllSpecs()) {
		if meanAVF["astar"] >= meanAVF["milc"] {
			t.Errorf("AVF ordering violated: astar %.3f >= milc %.3f",
				meanAVF["astar"], meanAVF["milc"])
		}
		if meanAVF["milc"] < 2.5*meanAVF["astar"] {
			t.Errorf("AVF spread too small: milc %.3f vs astar %.3f (paper: 22.5%% vs 1.7%%)",
				meanAVF["milc"], meanAVF["astar"])
		}
	}
}
