package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"hmem/internal/avf"
	"hmem/internal/core"
	"hmem/internal/memsim"
	"hmem/internal/obs"
	"hmem/internal/trace"
)

// Migrator is the interval-driven migration hook (§6 mechanisms). The
// simulator invokes OnAccess for every memory access and Decide at every
// IntervalCycles boundary; mechanisms with multiple internal intervals
// (Cross Counters) fire their coarser epoch internally on every Nth call.
//
// The per-access path runs on dense page indices: Run binds the placement's
// core.PageTable to the migrator before simulation starts, OnAccess receives
// interned indices, and Decide translates back to page ids (the public
// currency of placement decisions and snapshots).
type Migrator interface {
	Name() string
	// Bind attaches the run's interning table before the first access.
	// Indices passed to OnAccess are issued by this table.
	Bind(pt *core.PageTable)
	// OnAccess observes one access; inHBM reflects the page's tier at
	// access time (risk units that only track HBM use it to filter).
	OnAccess(pi core.PageIndex, write bool, inHBM bool)
	// Decide returns the pages to move into and out of HBM.
	Decide(now int64, placement *Placement) (in, out []uint64)
	// IntervalCycles is the finest decision interval in CPU cycles.
	IntervalCycles() int64
}

// Config parameterizes a run.
type Config struct {
	// HBM and DDR are the tier configurations (Table 1, possibly scaled).
	// They are ignored when Topology is set.
	HBM, DDR memsim.Config
	// Topology, when non-nil, replaces the HBM/DDR pair with an N-tier
	// machine: tier timings, capacities, allocation order, and the fast
	// (migration-target) tier all come from the topology. Nil keeps the
	// paper's two-tier default (tier 0 = DDR, tier 1 = HBM).
	Topology *core.Topology
	// IssueWidth is the non-memory IPC ceiling (Table 1: 4-wide).
	IssueWidth int
	// MaxOutstanding bounds in-flight reads per core, approximating the
	// MLP a 128-entry ROB sustains.
	MaxOutstanding int
	// WriteBufferCycles bounds how far a channel's backlog may run ahead of
	// a core issuing a write before the core stalls (finite write buffers).
	// 0 disables throttling.
	WriteBufferCycles int64
	// MigrationCostDiv scales per-page migration cost down at reduced time
	// scale: experiments shrink simulated time ~100x relative to the
	// paper's simpoints, so the absolute per-page transfer cost must shrink
	// proportionally to preserve the paper's migration-overhead-to-interval
	// ratio (~7%% of a 100 ms interval for 47K pages, §6.1). 0 or 1 means
	// full cost.
	MigrationCostDiv int
}

// DefaultConfig returns the Table 1 machine at a capacity scale divisor
// (scaleDiv=1 reproduces the paper's 1 GB + 16 GB; the experiments default
// to 64, i.e. 16 MB HBM + 256 MB DDR).
func DefaultConfig(scaleDiv int) Config {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return Config{
		HBM:               memsim.HBM(uint64(1<<30) / uint64(scaleDiv)),
		DDR:               memsim.DDR3(uint64(16<<30) / uint64(scaleDiv)),
		IssueWidth:        4,
		MaxOutstanding:    8,
		WriteBufferCycles: 512,
		// Time is scaled harder than capacity (runs are ~100x shorter than
		// a 100 ms interval); see the field comment.
		MigrationCostDiv: scaleDiv / 2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Topology != nil {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	} else {
		if err := c.HBM.Validate(); err != nil {
			return err
		}
		if err := c.DDR.Validate(); err != nil {
			return err
		}
	}
	if c.IssueWidth <= 0 {
		return fmt.Errorf("sim: IssueWidth must be positive")
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("sim: MaxOutstanding must be positive")
	}
	return nil
}

// tierConfigs returns the per-tier memsim configurations in tier order plus
// the fast-tier index — [DDR, HBM] and 1 when no topology is installed.
func (c Config) tierConfigs() ([]memsim.Config, int) {
	if c.Topology != nil {
		out := make([]memsim.Config, len(c.Topology.Tiers))
		for i, td := range c.Topology.Tiers {
			out[i] = td.Mem
		}
		return out, c.Topology.FastTier
	}
	return []memsim.Config{c.DDR, c.HBM}, 1
}

// FastPages returns the fast (migration-target) tier's capacity in pages —
// the budget placement policies select against.
func (c Config) FastPages() uint64 {
	if c.Topology != nil {
		return c.Topology.FastPages()
	}
	return c.HBM.Pages()
}

// IntervalSample is one measurement-interval snapshot (taken at migration
// interval boundaries when a migrator is installed).
type IntervalSample struct {
	// EndCycle is the boundary cycle.
	EndCycle int64
	// Reads/Writes are the requests issued during the interval.
	Reads, Writes uint64
	// HBMFraction is the share of the interval's requests served by HBM.
	HBMFraction float64
	// PagesMoved is how many pages the boundary's migration decision moved.
	PagesMoved int
	// TouchedPages counts distinct pages accessed during the interval.
	TouchedPages int
	// HotSetChurn is the fraction of this interval's hot set (pages with
	// above-mean access counts) absent from the previous interval's hot
	// set — the paper's "the set of top hot pages changes considerably
	// from interval to interval" observation, quantified.
	HotSetChurn float64
}

// Result is the outcome of one run.
type Result struct {
	// Cycles is the wall-clock of the slowest core, including migration
	// pauses and final drain.
	Cycles int64
	// Instructions is the total committed instruction count (gaps plus one
	// per memory instruction) across cores.
	Instructions uint64
	// IPC is Instructions / Cycles / cores — per-core average IPC.
	IPC float64
	// Snapshot is the tier-attributed per-page AVF census.
	Snapshot []avf.PageAVF
	// PagesMigrated counts migrated pages; MigrationPauses the stalls paid.
	PagesMigrated   uint64
	MigrationPauses int64
	// HBMStats and DDRStats expose the fast tier's and tier 0's memory
	// controller counters (the two tiers of the default topology);
	// TierStats carries every tier's counters in tier order.
	HBMStats, DDRStats memsim.Stats
	TierStats          []memsim.Stats
	// Reads and Writes count memory requests issued.
	Reads, Writes uint64
	// HBMAccessFraction is the share of requests served by the fast tier.
	HBMAccessFraction float64
	// Endurance summarizes per-frame wear for write-budgeted tiers (nil for
	// topologies without endurance accounting, including the default).
	Endurance []TierEndurance
	// CoreIPC is the per-core IPC vector (instructions of core i over the
	// run's wall-clock).
	CoreIPC []float64
	// Intervals holds per-interval samples (only for migration runs).
	Intervals []IntervalSample
}

// MeanAVF returns the mean page AVF of the run (Figure 2 metric).
func (r Result) MeanAVF() float64 {
	if len(r.Snapshot) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Snapshot {
		sum += p.AVF
	}
	return sum / float64(len(r.Snapshot))
}

// Stats converts the snapshot into policy inputs.
func (r Result) Stats() []core.PageStats {
	s := core.FromSnapshot(r.Snapshot)
	core.SortByPage(s)
	return s
}

type coreState struct {
	stream      trace.Stream
	time        int64
	done        bool
	outstanding []*memsim.Request
	outTier     []avf.Tier
	insts       uint64

	// Request recycling: reads return to reqFree once Completed; posted
	// writes park in writeRing until the controller retires them. Both pools
	// are bounded by the ROB window and the channels' queue depths, so the
	// steady-state access path performs no Request allocation.
	reqFree   []*memsim.Request
	writeRing []*memsim.Request
}

// getRequest returns a recycled Request when one is available, reclaiming
// any posted writes the memory controller has since retired.
func (c *coreState) getRequest(line uint64, write bool, arrival int64) *memsim.Request {
	for len(c.writeRing) > 0 && c.writeRing[0].Finished() {
		c.reqFree = append(c.reqFree, c.writeRing[0])
		c.writeRing = c.writeRing[1:]
	}
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		r.Reset(line, write, arrival)
		return r
	}
	return &memsim.Request{Line: line, Write: write, Arrival: arrival}
}

// Run simulates streams (one per core) against the configured HMA.
// initialHBM pages are preplaced in HBM (pin pins them against migration);
// mig may be nil for static placements.
func Run(cfg Config, streams []trace.Stream, initialHBM []uint64, pin bool, mig Migrator) (Result, error) {
	return RunCtx(context.Background(), cfg, streams, initialHBM, pin, mig)
}

// simMetrics holds the registry handles a run touches, hoisted out of the
// loop so the per-access path never consults the context. The zero value
// (no registry in ctx) makes every record call a cheap nil check.
type simMetrics struct {
	runs, epochs, migrated *obs.Counter
}

func newSimMetrics(ctx context.Context) simMetrics {
	reg := obs.RegistryFrom(ctx)
	if reg == nil {
		return simMetrics{}
	}
	return simMetrics{
		runs:     reg.Counter("hmem_sim_runs_total", "Completed simulator runs."),
		epochs:   reg.Counter("hmem_sim_epochs_total", "Migration-interval boundaries crossed."),
		migrated: reg.Counter("hmem_sim_pages_migrated_total", "Pages moved between tiers by migration decisions."),
	}
}

// RunCtx is Run with observability: the run is wrapped in a "sim.run" span,
// every migration-interval boundary closes a "sim.epoch" span carrying the
// boundary cycle, pages moved, and distinct pages touched, and a registry in
// ctx accumulates run/epoch/migration counters. The per-access hot loop is
// untouched — all context lookups happen once, before the first access — so
// with no tracer or registry installed RunCtx costs exactly what Run did.
// ctx is not consulted for cancellation (runs have no preemption points).
func RunCtx(ctx context.Context, cfg Config, streams []trace.Stream, initialHBM []uint64, pin bool, mig Migrator) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if len(streams) == 0 {
		return Result{}, errors.New("sim: no core streams")
	}

	// All observability state is resolved here, once; the per-access loop
	// below never consults the context.
	traced := obs.Enabled(ctx)
	metrics := newSimMetrics(ctx)
	var runSpan, epochSpan *obs.Span
	if traced {
		policy := "static"
		if mig != nil {
			policy = mig.Name()
		}
		ctx, runSpan = obs.Start(ctx, "sim.run",
			obs.Int("cores", int64(len(streams))), obs.Str("policy", policy))
		// The deferred closure only exists when traced: an unconditional
		// defer would box runSpan/epochSpan (both reassigned below) and
		// charge the untraced path heap allocations it must not make.
		defer func() {
			epochSpan.End()
			runSpan.End()
		}()
	}

	tierCfgs, fast := cfg.tierConfigs()
	mems := make([]*memsim.Memory, len(tierCfgs))
	for i, tc := range tierCfgs {
		mems[i] = memsim.New(tc)
	}
	fastTier := avf.Tier(fast)
	var placement *Placement
	if cfg.Topology != nil {
		placement = NewTopologyPlacement(cfg.Topology)
	} else {
		placement = NewPlacement(cfg.HBM.Pages(), cfg.DDR.Pages())
	}
	if err := placement.Preplace(initialHBM, pin); err != nil {
		return Result{}, err
	}
	pt := placement.PageTable()
	tracker := avf.NewTrackerN(len(tierCfgs))

	cores := make([]*coreState, len(streams))
	for i, s := range streams {
		cores[i] = &coreState{stream: s}
	}

	var res Result
	var nextInterval int64
	iv := newIntervalState()
	concurrent := false
	if mig != nil {
		if mig.IntervalCycles() <= 0 {
			return Result{}, fmt.Errorf("sim: migrator %s has non-positive interval", mig.Name())
		}
		mig.Bind(pt)
		nextInterval = mig.IntervalCycles()
		if traced {
			_, epochSpan = obs.Start(ctx, "sim.epoch")
		}
		// Hardware mechanisms (MemPod-style remap tables) migrate without
		// an OS pause; their traffic still contends in the memory system.
		if cm, ok := mig.(interface{ MigratesConcurrently() bool }); ok && cm.MigratesConcurrently() {
			concurrent = true
		}
	}

	active := len(cores)
	for active > 0 {
		// Pick the core with the smallest local clock.
		var c *coreState
		for _, cand := range cores {
			if cand.done {
				continue
			}
			if c == nil || cand.time < c.time {
				c = cand
			}
		}

		// Interval boundary: once the laggard core passes it, every core
		// has, so the decision uses a consistent global state.
		if mig != nil && c.time >= nextInterval {
			in, out := mig.Decide(nextInterval, placement)
			moved := applyMigration(cores, mems, placement, tracker, in, out, concurrent, cfg.MigrationCostDiv, &res)
			sample := iv.sample(nextInterval, moved)
			res.Intervals = append(res.Intervals, sample)
			if metrics.epochs != nil {
				metrics.epochs.Inc()
				metrics.migrated.Add(uint64(moved))
			}
			if traced {
				epochSpan.SetAttrs(
					obs.Int("end_cycle", nextInterval),
					obs.Int("moved", int64(moved)),
					obs.Int("touched", int64(sample.TouchedPages)))
				epochSpan.End()
				_, epochSpan = obs.Start(ctx, "sim.epoch")
			}
			nextInterval += mig.IntervalCycles()
			continue
		}

		rec, err := c.stream.Next()
		if errors.Is(err, io.EOF) {
			c.done = true
			active--
			continue
		}
		if err != nil {
			return Result{}, fmt.Errorf("sim: core stream: %w", err)
		}

		// Execute the non-memory gap at the issue-width ceiling.
		c.time += int64(rec.Gap) / int64(cfg.IssueWidth)
		c.insts += uint64(rec.Gap) + 1

		// The hot path: one sparse→dense translation (Intern), then every
		// bookkeeping structure below is a flat array index.
		pi := placement.Intern(rec.Page())
		lineInPage := int(rec.Line() % trace.LinesPerPage)
		tier, frame, err := placement.LookupIndex(pi)
		if err != nil {
			return Result{}, fmt.Errorf("sim: placing page %d: %w", rec.Page(), err)
		}
		write := rec.Kind.IsWrite()

		tracker.Access(uint32(pi), lineInPage, c.time, write, tier)
		if mig != nil {
			mig.OnAccess(pi, write, tier == fastTier)
			iv.observe(pi, write, tier == fastTier)
		}

		req := c.getRequest(frame*trace.LinesPerPage+uint64(lineInPage), write, c.time)
		mem := mems[tier]
		mem.Enqueue(req)
		if write {
			placement.RecordWrite(tier, frame)
			c.writeRing = append(c.writeRing, req)
			res.Writes++
			if cfg.WriteBufferCycles > 0 {
				if lag := mem.Horizon(req.Line) - c.time; lag > cfg.WriteBufferCycles {
					c.time = mem.Horizon(req.Line) - cfg.WriteBufferCycles
				}
			}
		} else {
			res.Reads++
			// Reads occupy the outstanding window; block on the oldest
			// when the window is full (ROB head stall).
			c.outstanding = append(c.outstanding, req)
			c.outTier = append(c.outTier, tier)
			if len(c.outstanding) > cfg.MaxOutstanding {
				oldest := c.outstanding[0]
				oldTier := c.outTier[0]
				c.outstanding = c.outstanding[1:]
				c.outTier = c.outTier[1:]
				if fin := mems[oldTier].Complete(oldest); fin > c.time {
					c.time = fin
				}
				c.reqFree = append(c.reqFree, oldest)
			}
		}
		if tier == fastTier {
			res.HBMAccessFraction++ // accumulate count; normalized below
		}
	}

	// Drain: every core waits for its remaining reads.
	for _, c := range cores {
		for i, req := range c.outstanding {
			if fin := mems[c.outTier[i]].Complete(req); fin > c.time {
				c.time = fin
			}
		}
	}
	for _, m := range mems {
		m.Drain()
	}

	var last int64 = 1
	for _, c := range cores {
		res.Instructions += c.insts
		if c.time > last {
			last = c.time
		}
	}
	res.Cycles = last
	res.IPC = float64(res.Instructions) / float64(last) / float64(len(cores))
	res.CoreIPC = make([]float64, len(cores))
	for i, c := range cores {
		res.CoreIPC[i] = float64(c.insts) / float64(last)
	}
	res.Snapshot = tracker.Snapshot(last, pt.IDs())
	res.PagesMigrated = placement.Migrations()
	res.TierStats = make([]memsim.Stats, len(mems))
	for i, m := range mems {
		res.TierStats[i] = m.Stats()
	}
	res.HBMStats = res.TierStats[fast]
	res.DDRStats = res.TierStats[0]
	res.Endurance = placement.Endurance()
	if total := res.Reads + res.Writes; total > 0 {
		res.HBMAccessFraction /= float64(total)
	}
	if metrics.runs != nil {
		metrics.runs.Inc()
	}
	if traced {
		runSpan.SetAttrs(
			obs.Int("cycles", res.Cycles),
			obs.Float("ipc", res.IPC),
			obs.Int("pages_migrated", int64(res.PagesMigrated)),
			obs.Int("epochs", int64(len(res.Intervals))))
	}
	return res, nil
}

// applyMigration executes a migration decision. OS-assisted mechanisms
// stall every core for the transfer time of the slowest participating tier
// (§6.1: "the cost of migrating a page ... is governed by the slowest
// memory in the system"); concurrent hardware mechanisms skip the stall but
// still inject the transfer traffic into the participating memory systems.
// Participants are the fast tier plus the allocation chain — both tiers of
// the default topology.
func applyMigration(cores []*coreState, mems []*memsim.Memory, placement *Placement,
	tracker *avf.Tracker, in, out []uint64, concurrent bool, costDiv int, res *Result) int {
	// Migrate filters pinned/mismatched entries and reports actual moves.
	moved := placement.Migrate(in, out)
	if moved == 0 {
		return 0
	}
	pt := placement.PageTable()
	fastIdx := placement.FastTier()
	fast := avf.Tier(fastIdx)
	for _, page := range in {
		if pi, ok := pt.Find(page); ok && placement.InHBMIndex(pi) {
			tracker.MigratePage(uint32(pi), fast)
		}
	}
	for _, page := range out {
		if pi, ok := pt.Find(page); ok {
			if t, placed := placement.TierOfIndex(pi); placed && t != fast {
				tracker.MigratePage(uint32(pi), t)
			}
		}
	}
	pause := mems[fastIdx].BulkTransferCycles(moved)
	for _, t := range placement.AllocTiers() {
		if t == fastIdx {
			continue
		}
		if b := mems[t].BulkTransferCycles(moved); b > pause {
			pause = b
		}
	}
	if costDiv > 1 {
		pause /= int64(costDiv)
	}
	mems[fastIdx].RecordBulkTransfer(moved, pause)
	for _, t := range placement.AllocTiers() {
		if t != fastIdx {
			mems[t].RecordBulkTransfer(moved, pause)
		}
	}
	if concurrent {
		return moved
	}
	var latest int64
	for _, c := range cores {
		if !c.done && c.time > latest {
			latest = c.time
		}
	}
	resume := latest + pause
	for _, c := range cores {
		if !c.done && c.time < resume {
			c.time = resume
		}
	}
	for _, m := range mems {
		m.AdvanceTo(resume)
	}
	res.MigrationPauses += pause
	return moved
}
