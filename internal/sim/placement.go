// Package sim is the full-system simulator: 16 trace-driven cores with an
// analytic out-of-order model, the two-tier memory system from memsim, AVF
// tracking, activity counters, and interval-driven migration hooks. It is
// the stand-in for the paper's extended Ramulator (§3.1).
package sim

import (
	"fmt"
	"sort"

	"hmem/internal/avf"
)

// location is a page's current home: a tier and a frame within that tier.
type location struct {
	tier  avf.Tier
	frame uint64
}

// Placement is the system page table: it maps global page ids to tier-local
// frames, allocates frames on first touch (DDR by default), and performs
// migrations. Pinned pages (program annotations, §7) never migrate.
type Placement struct {
	hbmCapacity uint64
	ddrCapacity uint64
	loc         map[uint64]location
	hbmFree     []uint64
	ddrFree     []uint64
	hbmResident map[uint64]bool
	pinned      map[uint64]bool
	migrations  uint64
}

// NewPlacement builds a page table over the two tiers' capacities in pages.
func NewPlacement(hbmPages, ddrPages uint64) *Placement {
	p := &Placement{
		hbmCapacity: hbmPages,
		ddrCapacity: ddrPages,
		loc:         make(map[uint64]location),
		hbmResident: make(map[uint64]bool),
		pinned:      make(map[uint64]bool),
	}
	// Free lists hand out frames in descending order so frame 0 is used
	// first (pop from the tail).
	p.hbmFree = make([]uint64, hbmPages)
	for i := range p.hbmFree {
		p.hbmFree[i] = hbmPages - 1 - uint64(i)
	}
	p.ddrFree = make([]uint64, ddrPages)
	for i := range p.ddrFree {
		p.ddrFree[i] = ddrPages - 1 - uint64(i)
	}
	return p
}

// Preplace installs pages in HBM before the measured region begins — the
// paper's warm-start ("we assume a good pre-measurement placement"). Pages
// beyond capacity are rejected with an error. pin marks them immovable
// (annotation-based placement).
func (p *Placement) Preplace(pages []uint64, pin bool) error {
	for _, page := range pages {
		if _, exists := p.loc[page]; exists {
			return fmt.Errorf("sim: page %d placed twice", page)
		}
		if len(p.hbmFree) == 0 {
			return fmt.Errorf("sim: HBM capacity %d exceeded during preplacement", p.hbmCapacity)
		}
		frame := p.hbmFree[len(p.hbmFree)-1]
		p.hbmFree = p.hbmFree[:len(p.hbmFree)-1]
		p.loc[page] = location{tier: avf.TierHBM, frame: frame}
		p.hbmResident[page] = true
		if pin {
			p.pinned[page] = true
		}
	}
	return nil
}

// Lookup returns a page's tier and frame, allocating a DDR frame on first
// touch. It panics if DDR is out of frames — a configuration error, since
// experiments size DDR to hold every footprint.
func (p *Placement) Lookup(page uint64) (avf.Tier, uint64) {
	if l, ok := p.loc[page]; ok {
		return l.tier, l.frame
	}
	if len(p.ddrFree) == 0 {
		panic(fmt.Sprintf("sim: DDR capacity %d pages exhausted", p.ddrCapacity))
	}
	frame := p.ddrFree[len(p.ddrFree)-1]
	p.ddrFree = p.ddrFree[:len(p.ddrFree)-1]
	p.loc[page] = location{tier: avf.TierDDR, frame: frame}
	return avf.TierDDR, frame
}

// InHBM reports whether page currently resides in HBM.
func (p *Placement) InHBM(page uint64) bool { return p.hbmResident[page] }

// Pinned reports whether page is pinned (annotation).
func (p *Placement) Pinned(page uint64) bool { return p.pinned[page] }

// HBMPages returns the HBM-resident pages in ascending order.
func (p *Placement) HBMPages() []uint64 {
	out := make([]uint64, 0, len(p.hbmResident))
	for page := range p.hbmResident {
		out = append(out, page)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HBMFreePages returns the number of unallocated HBM frames.
func (p *Placement) HBMFreePages() int { return len(p.hbmFree) }

// HBMCapacity returns the HBM tier size in pages.
func (p *Placement) HBMCapacity() uint64 { return p.hbmCapacity }

// Migrations returns the total pages moved so far.
func (p *Placement) Migrations() uint64 { return p.migrations }

// Migrate applies a migration decision: out-pages leave HBM for DDR,
// in-pages enter HBM from DDR. Pinned pages and requests that don't match
// the page's current tier are skipped. If HBM lacks room for every in-page
// after the out-pages leave, the surplus in-pages are dropped (the hardware
// would do the same: swaps are paired). It returns the number of pages
// actually moved.
func (p *Placement) Migrate(in, out []uint64) int {
	moved := 0
	for _, page := range out {
		l, ok := p.loc[page]
		if !ok || l.tier != avf.TierHBM || p.pinned[page] {
			continue
		}
		if len(p.ddrFree) == 0 {
			break
		}
		p.hbmFree = append(p.hbmFree, l.frame)
		frame := p.ddrFree[len(p.ddrFree)-1]
		p.ddrFree = p.ddrFree[:len(p.ddrFree)-1]
		p.loc[page] = location{tier: avf.TierDDR, frame: frame}
		delete(p.hbmResident, page)
		moved++
	}
	for _, page := range in {
		l, ok := p.loc[page]
		if !ok || l.tier != avf.TierDDR || p.pinned[page] {
			continue
		}
		if len(p.hbmFree) == 0 {
			break
		}
		p.ddrFree = append(p.ddrFree, l.frame)
		frame := p.hbmFree[len(p.hbmFree)-1]
		p.hbmFree = p.hbmFree[:len(p.hbmFree)-1]
		p.loc[page] = location{tier: avf.TierHBM, frame: frame}
		p.hbmResident[page] = true
		moved++
	}
	p.migrations += uint64(moved)
	return moved
}
