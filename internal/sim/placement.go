// Package sim is the full-system simulator: 16 trace-driven cores with an
// analytic out-of-order model, the tiered memory system from memsim, AVF
// tracking, activity counters, and interval-driven migration hooks. It is
// the stand-in for the paper's extended Ramulator (§3.1).
package sim

import (
	"errors"
	"fmt"
	"sort"

	"hmem/internal/avf"
	"hmem/internal/core"
)

// Per-page state flags in Placement.flags.
const (
	pagePlaced uint8 = 1 << iota // a frame has been assigned
	pagePinned                   // never migrates (annotation)
)

// Placement is the system page table over an N-tier topology: it maps global
// page ids to (tier, frame), allocates frames on first touch following the
// topology's allocation order (spilling to the next tier when one runs out
// of frames), and performs migrations into and out of the fast tier. Pinned
// pages (program annotations, §7) never migrate.
//
// Placement owns the run's core.PageTable: page ids are interned to dense
// indices on first sight and all per-page state (tier, frame, pin) lives in
// flat slices indexed by them, so the per-access LookupIndex path performs
// no map operations and no allocations in steady state. The id-keyed
// methods (Preplace, Migrate, InHBM, HBMPages, ...) remain the public
// interval/driver API; the HBM-named methods answer for the fast tier.
//
// Tiers with a write budget get per-frame wear counters (RecordWrite); the
// default topology has none, so the write path pays one boolean check.
type Placement struct {
	pt *core.PageTable

	// Static tier shape (from the topology).
	names      []string
	capacity   []uint64 // pages per tier
	allocOrder []int
	fast       int

	// Per-page state, indexed by PageIndex.
	flags []uint8
	tier  []uint8  // valid iff pagePlaced
	frame []uint64 // valid iff pagePlaced

	// Per-tier state.
	free     [][]uint64 // free frames, descending so frame 0 is used first
	resident []int

	// Endurance accounting: wear[t] is per-frame write counts, non-nil only
	// for tiers with a budget; hasWear gates the whole path off for
	// topologies without endurance-limited tiers.
	hasWear bool
	budget  []uint64
	wear    [][]uint32

	migrations uint64
}

// NewPlacement builds a page table over the paper's two tiers (tier 0 DDR,
// tier 1 HBM) with the given capacities in pages — the pre-topology
// constructor, kept as the two-tier fast path for direct sim users.
func NewPlacement(hbmPages, ddrPages uint64) *Placement {
	return newPlacement(
		[]string{"DDR", "HBM"},
		[]uint64{ddrPages, hbmPages},
		[]uint64{0, 0},
		[]int{0}, 1)
}

// NewTopologyPlacement builds a page table over a validated topology.
func NewTopologyPlacement(topo *core.Topology) *Placement {
	names := make([]string, len(topo.Tiers))
	capacity := make([]uint64, len(topo.Tiers))
	budget := make([]uint64, len(topo.Tiers))
	for i, td := range topo.Tiers {
		names[i] = td.Name
		capacity[i] = td.Mem.Pages()
		budget[i] = td.WriteBudget
	}
	order := append([]int(nil), topo.AllocOrder...)
	return newPlacement(names, capacity, budget, order, topo.FastTier)
}

func newPlacement(names []string, capacity, budget []uint64, allocOrder []int, fast int) *Placement {
	p := &Placement{
		pt:         core.NewPageTable(),
		names:      names,
		capacity:   capacity,
		allocOrder: allocOrder,
		fast:       fast,
		free:       make([][]uint64, len(capacity)),
		resident:   make([]int, len(capacity)),
		budget:     budget,
		wear:       make([][]uint32, len(capacity)),
	}
	for t, pages := range capacity {
		// Free lists hand out frames in descending order so frame 0 is used
		// first (pop from the tail).
		fl := make([]uint64, pages)
		for i := range fl {
			fl[i] = pages - 1 - uint64(i)
		}
		p.free[t] = fl
		if budget[t] > 0 {
			p.wear[t] = make([]uint32, pages)
			p.hasWear = true
		}
	}
	return p
}

// PageTable returns the run's interning table. The simulator shares it with
// the AVF tracker, the interval tracker, and the migrator so every structure
// indexes the same dense space.
func (p *Placement) PageTable() *core.PageTable { return p.pt }

// NumTiers returns the topology's tier count.
func (p *Placement) NumTiers() int { return len(p.capacity) }

// FastTier returns the fast (migration-target) tier index.
func (p *Placement) FastTier() int { return p.fast }

// AllocTiers returns the first-touch allocation order.
func (p *Placement) AllocTiers() []int { return p.allocOrder }

// TierName returns tier t's display name, with a stable "tier<N>" fallback.
func (p *Placement) TierName(t int) string {
	if t >= 0 && t < len(p.names) {
		return p.names[t]
	}
	return fmt.Sprintf("tier%d", t)
}

// CapacityOf returns tier t's size in pages.
func (p *Placement) CapacityOf(t int) uint64 { return p.capacity[t] }

// FreeOf returns the number of unallocated frames in tier t.
func (p *Placement) FreeOf(t int) int { return len(p.free[t]) }

// ResidentOf returns the number of pages resident in tier t.
func (p *Placement) ResidentOf(t int) int { return p.resident[t] }

// ensure grows the per-index state to cover index i.
func (p *Placement) ensure(i int) {
	if i < len(p.flags) {
		return
	}
	n := len(p.flags) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	flags := make([]uint8, n)
	tier := make([]uint8, n)
	frame := make([]uint64, n)
	copy(flags, p.flags)
	copy(tier, p.tier)
	copy(frame, p.frame)
	p.flags, p.tier, p.frame = flags, tier, frame
}

// Preplace installs pages in the fast tier before the measured region begins
// — the paper's warm-start ("we assume a good pre-measurement placement").
// Pages beyond capacity are rejected with an error. pin marks them immovable
// (annotation-based placement).
func (p *Placement) Preplace(pages []uint64, pin bool) error {
	fast := p.fast
	for _, page := range pages {
		pi := p.pt.Intern(page)
		i := int(pi)
		p.ensure(i)
		if p.flags[i]&pagePlaced != 0 {
			return fmt.Errorf("sim: page %d placed twice", page)
		}
		fl := p.free[fast]
		if len(fl) == 0 {
			return fmt.Errorf("sim: %s capacity %d exceeded during preplacement", p.names[fast], p.capacity[fast])
		}
		frame := fl[len(fl)-1]
		p.free[fast] = fl[:len(fl)-1]
		p.flags[i] = pagePlaced
		if pin {
			p.flags[i] |= pagePinned
		}
		p.tier[i] = uint8(fast)
		p.frame[i] = frame
		p.resident[fast]++
	}
	return nil
}

// Intern returns the dense index for page, interning it on first sight.
// The per-access caller interns once and then uses index-keyed calls only.
func (p *Placement) Intern(page uint64) core.PageIndex {
	pi := p.pt.Intern(page)
	p.ensure(int(pi))
	return pi
}

// ErrDDRExhausted reports that a run's footprint outgrew the allocation
// tiers — a workload/configuration mismatch. It is returned (not panicked)
// so a misconfigured request fails one evaluation, not the process hosting
// it. Topology-aware callers can errors.As into *ErrTierExhausted for the
// overflowing tier; errors.Is against this sentinel keeps working.
var ErrDDRExhausted = errors.New("sim: DDR capacity exhausted")

// ErrTierExhausted reports which tier ran out of frames on a first-touch
// allocation after the whole allocation order was tried. It matches
// ErrDDRExhausted under errors.Is — exhaustion of the allocation chain is
// the same terminal condition the two-tier code signalled with the sentinel.
type ErrTierExhausted struct {
	Tier     int    // tier index of the last allocation candidate
	Name     string // its display name
	Capacity uint64 // its size in pages
}

// Error renders the same shape the two-tier sentinel path produced
// ("sim: DDR capacity exhausted (N pages)" for the default topology).
func (e *ErrTierExhausted) Error() string {
	return fmt.Sprintf("sim: %s capacity exhausted (%d pages)", e.Name, e.Capacity)
}

// Is reports equivalence to the legacy ErrDDRExhausted sentinel.
func (e *ErrTierExhausted) Is(target error) bool { return target == ErrDDRExhausted }

// LookupIndex returns the tier and frame of the page interned at pi,
// allocating a frame on first touch following the topology's allocation
// order and spilling to the next tier when one is full. If every allocation
// tier is out of frames it returns *ErrTierExhausted (matching
// ErrDDRExhausted under errors.Is) — a configuration error, since
// experiments size the allocation tiers to hold every footprint. The error
// path is cold; the steady-state lookup stays allocation-free. The index
// must come from this placement's Intern (or PageTable).
func (p *Placement) LookupIndex(pi core.PageIndex) (avf.Tier, uint64, error) {
	i := int(pi)
	if i >= len(p.flags) {
		p.ensure(i)
	}
	f := p.flags[i]
	if f&pagePlaced != 0 {
		return avf.Tier(p.tier[i]), p.frame[i], nil
	}
	return p.allocate(i, f)
}

// allocate performs the first-touch allocation for LookupIndex. It is kept
// out of line so the warm lookup above stays small enough to inline.
func (p *Placement) allocate(i int, f uint8) (avf.Tier, uint64, error) {
	for _, t := range p.allocOrder {
		fl := p.free[t]
		if n := len(fl); n > 0 {
			frame := fl[n-1]
			p.free[t] = fl[:n-1]
			p.flags[i] = f | pagePlaced
			p.tier[i] = uint8(t)
			p.frame[i] = frame
			p.resident[t]++
			return avf.Tier(t), frame, nil
		}
	}
	last := p.allocOrder[len(p.allocOrder)-1]
	return avf.Tier(last), 0, &ErrTierExhausted{Tier: last, Name: p.names[last], Capacity: p.capacity[last]}
}

// Lookup returns a page's tier and frame by id, allocating a frame on first
// touch (see LookupIndex).
func (p *Placement) Lookup(page uint64) (avf.Tier, uint64, error) {
	return p.LookupIndex(p.Intern(page))
}

// TierOfIndex returns the tier of the page interned at pi, if placed.
func (p *Placement) TierOfIndex(pi core.PageIndex) (avf.Tier, bool) {
	i := int(pi)
	if i >= len(p.flags) || p.flags[i]&pagePlaced == 0 {
		return 0, false
	}
	return avf.Tier(p.tier[i]), true
}

// InHBMIndex reports whether the page interned at pi resides in the fast
// tier (HBM in the default topology).
func (p *Placement) InHBMIndex(pi core.PageIndex) bool {
	i := int(pi)
	return i < len(p.flags) && p.flags[i]&pagePlaced != 0 && int(p.tier[i]) == p.fast
}

// InHBM reports whether page currently resides in the fast tier.
func (p *Placement) InHBM(page uint64) bool {
	pi, ok := p.pt.Find(page)
	return ok && p.InHBMIndex(pi)
}

// Pinned reports whether page is pinned (annotation).
func (p *Placement) Pinned(page uint64) bool {
	pi, ok := p.pt.Find(page)
	if !ok {
		return false
	}
	i := int(pi)
	return i < len(p.flags) && p.flags[i]&pagePinned != 0
}

// TierPages returns tier t's resident pages in ascending page-id order.
func (p *Placement) TierPages(t int) []uint64 {
	out := make([]uint64, 0, p.resident[t])
	ids := p.pt.IDs()
	for i, f := range p.flags {
		if i >= len(ids) {
			break
		}
		if f&pagePlaced != 0 && int(p.tier[i]) == t {
			out = append(out, ids[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HBMPages returns the fast tier's resident pages in ascending order.
func (p *Placement) HBMPages() []uint64 { return p.TierPages(p.fast) }

// HBMFreePages returns the number of unallocated fast-tier frames.
func (p *Placement) HBMFreePages() int { return len(p.free[p.fast]) }

// HBMCapacity returns the fast tier's size in pages.
func (p *Placement) HBMCapacity() uint64 { return p.capacity[p.fast] }

// Migrations returns the total pages moved so far.
func (p *Placement) Migrations() uint64 { return p.migrations }

// RecordWrite charges one demand write against tier t's frame for endurance
// accounting. It is a no-op (one boolean check) for topologies without a
// write budget anywhere, keeping the default hot path untouched.
func (p *Placement) RecordWrite(t avf.Tier, frame uint64) {
	if !p.hasWear {
		return
	}
	p.noteWear(int(t), frame)
}

func (p *Placement) noteWear(t int, frame uint64) {
	w := p.wear[t]
	if w == nil || frame >= uint64(len(w)) {
		return
	}
	w[frame]++
}

// TierEndurance summarizes one endurance-limited tier's wear at the end of
// a run. Only tiers with a write budget report.
type TierEndurance struct {
	Tier            int    `json:"tier"`
	Name            string `json:"name"`
	WriteBudget     uint64 `json:"write_budget"`
	TotalWrites     uint64 `json:"total_writes"`
	MaxFrameWrites  uint64 `json:"max_frame_writes"`
	ExhaustedFrames uint64 `json:"exhausted_frames"` // frames at or past the budget
}

// Endurance reports per-tier wear for every write-budgeted tier, in tier
// order. Nil when the topology has no endurance-limited tier.
func (p *Placement) Endurance() []TierEndurance {
	if !p.hasWear {
		return nil
	}
	var out []TierEndurance
	for t, w := range p.wear {
		if w == nil {
			continue
		}
		e := TierEndurance{Tier: t, Name: p.names[t], WriteBudget: p.budget[t]}
		for _, n := range w {
			e.TotalWrites += uint64(n)
			if uint64(n) > e.MaxFrameWrites {
				e.MaxFrameWrites = uint64(n)
			}
			if uint64(n) >= p.budget[t] {
				e.ExhaustedFrames++
			}
		}
		out = append(out, e)
	}
	return out
}

// Migrate applies a migration decision: out-pages leave the fast tier for
// the first allocation tier with room, in-pages enter the fast tier from
// wherever they reside. Pinned pages and requests that don't match the
// page's current tier are skipped. If the fast tier lacks room for every
// in-page after the out-pages leave, the surplus in-pages are dropped (the
// hardware would do the same: swaps are paired). It returns the number of
// pages actually moved.
func (p *Placement) Migrate(in, out []uint64) int {
	moved := 0
	fast := p.fast
	for _, page := range out {
		pi, ok := p.pt.Find(page)
		if !ok {
			continue
		}
		i := int(pi)
		if i >= len(p.flags) {
			continue
		}
		f := p.flags[i]
		if f&pagePlaced == 0 || int(p.tier[i]) != fast || f&pagePinned != 0 {
			continue
		}
		dst := -1
		for _, t := range p.allocOrder {
			if t != fast && len(p.free[t]) > 0 {
				dst = t
				break
			}
		}
		if dst < 0 {
			break
		}
		p.free[fast] = append(p.free[fast], p.frame[i])
		fl := p.free[dst]
		frame := fl[len(fl)-1]
		p.free[dst] = fl[:len(fl)-1]
		p.tier[i] = uint8(dst)
		p.frame[i] = frame
		p.resident[fast]--
		p.resident[dst]++
		if p.hasWear {
			p.noteWear(dst, frame) // the transfer writes the destination frame
		}
		moved++
	}
	for _, page := range in {
		pi, ok := p.pt.Find(page)
		if !ok {
			continue
		}
		i := int(pi)
		if i >= len(p.flags) {
			continue
		}
		f := p.flags[i]
		if f&pagePlaced == 0 || int(p.tier[i]) == fast || f&pagePinned != 0 {
			continue
		}
		fl := p.free[fast]
		if len(fl) == 0 {
			break
		}
		src := int(p.tier[i])
		p.free[src] = append(p.free[src], p.frame[i])
		frame := fl[len(fl)-1]
		p.free[fast] = fl[:len(fl)-1]
		p.tier[i] = uint8(fast)
		p.frame[i] = frame
		p.resident[src]--
		p.resident[fast]++
		if p.hasWear {
			p.noteWear(fast, frame)
		}
		moved++
	}
	p.migrations += uint64(moved)
	return moved
}
