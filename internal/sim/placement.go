// Package sim is the full-system simulator: 16 trace-driven cores with an
// analytic out-of-order model, the two-tier memory system from memsim, AVF
// tracking, activity counters, and interval-driven migration hooks. It is
// the stand-in for the paper's extended Ramulator (§3.1).
package sim

import (
	"errors"
	"fmt"
	"sort"

	"hmem/internal/avf"
	"hmem/internal/core"
)

// Per-page state flags in Placement.flags.
const (
	pagePlaced uint8 = 1 << iota // a frame has been assigned
	pageHBM                      // resident in HBM (valid iff pagePlaced)
	pagePinned                   // never migrates (annotation)
)

// Placement is the system page table: it maps global page ids to tier-local
// frames, allocates frames on first touch (DDR by default), and performs
// migrations. Pinned pages (program annotations, §7) never migrate.
//
// Placement owns the run's core.PageTable: page ids are interned to dense
// indices on first sight and all per-page state (tier, frame, pin) lives in
// flat slices indexed by them, so the per-access LookupIndex path performs
// no map operations and no allocations in steady state. The id-keyed
// methods (Preplace, Migrate, InHBM, HBMPages, ...) remain the public
// interval/driver API.
type Placement struct {
	pt          *core.PageTable
	hbmCapacity uint64
	ddrCapacity uint64
	flags       []uint8  // indexed by PageIndex
	frame       []uint64 // indexed by PageIndex, valid iff pagePlaced
	hbmFree     []uint64
	ddrFree     []uint64
	hbmResident int
	migrations  uint64
}

// NewPlacement builds a page table over the two tiers' capacities in pages.
func NewPlacement(hbmPages, ddrPages uint64) *Placement {
	p := &Placement{
		pt:          core.NewPageTable(),
		hbmCapacity: hbmPages,
		ddrCapacity: ddrPages,
	}
	// Free lists hand out frames in descending order so frame 0 is used
	// first (pop from the tail).
	p.hbmFree = make([]uint64, hbmPages)
	for i := range p.hbmFree {
		p.hbmFree[i] = hbmPages - 1 - uint64(i)
	}
	p.ddrFree = make([]uint64, ddrPages)
	for i := range p.ddrFree {
		p.ddrFree[i] = ddrPages - 1 - uint64(i)
	}
	return p
}

// PageTable returns the run's interning table. The simulator shares it with
// the AVF tracker, the interval tracker, and the migrator so every structure
// indexes the same dense space.
func (p *Placement) PageTable() *core.PageTable { return p.pt }

// ensure grows the per-index state to cover index i.
func (p *Placement) ensure(i int) {
	if i < len(p.flags) {
		return
	}
	n := len(p.flags) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	flags := make([]uint8, n)
	frame := make([]uint64, n)
	copy(flags, p.flags)
	copy(frame, p.frame)
	p.flags, p.frame = flags, frame
}

// Preplace installs pages in HBM before the measured region begins — the
// paper's warm-start ("we assume a good pre-measurement placement"). Pages
// beyond capacity are rejected with an error. pin marks them immovable
// (annotation-based placement).
func (p *Placement) Preplace(pages []uint64, pin bool) error {
	for _, page := range pages {
		pi := p.pt.Intern(page)
		i := int(pi)
		p.ensure(i)
		if p.flags[i]&pagePlaced != 0 {
			return fmt.Errorf("sim: page %d placed twice", page)
		}
		if len(p.hbmFree) == 0 {
			return fmt.Errorf("sim: HBM capacity %d exceeded during preplacement", p.hbmCapacity)
		}
		frame := p.hbmFree[len(p.hbmFree)-1]
		p.hbmFree = p.hbmFree[:len(p.hbmFree)-1]
		p.flags[i] = pagePlaced | pageHBM
		if pin {
			p.flags[i] |= pagePinned
		}
		p.frame[i] = frame
		p.hbmResident++
	}
	return nil
}

// Intern returns the dense index for page, interning it on first sight.
// The per-access caller interns once and then uses index-keyed calls only.
func (p *Placement) Intern(page uint64) core.PageIndex {
	pi := p.pt.Intern(page)
	p.ensure(int(pi))
	return pi
}

// ErrDDRExhausted reports that a run's footprint outgrew the DDR tier — a
// workload/configuration mismatch. It is returned (not panicked) so a
// misconfigured request fails one evaluation, not the process hosting it.
var ErrDDRExhausted = errors.New("sim: DDR capacity exhausted")

// LookupIndex returns the tier and frame of the page interned at pi,
// allocating a DDR frame on first touch. If DDR is out of frames it returns
// an error wrapping ErrDDRExhausted — a configuration error, since
// experiments size DDR to hold every footprint. The error path is cold; the
// steady-state lookup stays allocation-free. The index must come from this
// placement's Intern (or PageTable).
func (p *Placement) LookupIndex(pi core.PageIndex) (avf.Tier, uint64, error) {
	i := int(pi)
	if i >= len(p.flags) {
		p.ensure(i)
	}
	f := p.flags[i]
	if f&pagePlaced != 0 {
		if f&pageHBM != 0 {
			return avf.TierHBM, p.frame[i], nil
		}
		return avf.TierDDR, p.frame[i], nil
	}
	if len(p.ddrFree) == 0 {
		return avf.TierDDR, 0, fmt.Errorf("%w (%d pages)", ErrDDRExhausted, p.ddrCapacity)
	}
	frame := p.ddrFree[len(p.ddrFree)-1]
	p.ddrFree = p.ddrFree[:len(p.ddrFree)-1]
	p.flags[i] = f | pagePlaced
	p.frame[i] = frame
	return avf.TierDDR, frame, nil
}

// Lookup returns a page's tier and frame by id, allocating a DDR frame on
// first touch (see LookupIndex).
func (p *Placement) Lookup(page uint64) (avf.Tier, uint64, error) {
	return p.LookupIndex(p.Intern(page))
}

// InHBMIndex reports whether the page interned at pi resides in HBM.
func (p *Placement) InHBMIndex(pi core.PageIndex) bool {
	i := int(pi)
	return i < len(p.flags) && p.flags[i]&(pagePlaced|pageHBM) == pagePlaced|pageHBM
}

// InHBM reports whether page currently resides in HBM.
func (p *Placement) InHBM(page uint64) bool {
	pi, ok := p.pt.Find(page)
	return ok && p.InHBMIndex(pi)
}

// Pinned reports whether page is pinned (annotation).
func (p *Placement) Pinned(page uint64) bool {
	pi, ok := p.pt.Find(page)
	if !ok {
		return false
	}
	i := int(pi)
	return i < len(p.flags) && p.flags[i]&pagePinned != 0
}

// HBMPages returns the HBM-resident pages in ascending order.
func (p *Placement) HBMPages() []uint64 {
	out := make([]uint64, 0, p.hbmResident)
	ids := p.pt.IDs()
	for i, f := range p.flags {
		if i >= len(ids) {
			break
		}
		if f&(pagePlaced|pageHBM) == pagePlaced|pageHBM {
			out = append(out, ids[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HBMFreePages returns the number of unallocated HBM frames.
func (p *Placement) HBMFreePages() int { return len(p.hbmFree) }

// HBMCapacity returns the HBM tier size in pages.
func (p *Placement) HBMCapacity() uint64 { return p.hbmCapacity }

// Migrations returns the total pages moved so far.
func (p *Placement) Migrations() uint64 { return p.migrations }

// Migrate applies a migration decision: out-pages leave HBM for DDR,
// in-pages enter HBM from DDR. Pinned pages and requests that don't match
// the page's current tier are skipped. If HBM lacks room for every in-page
// after the out-pages leave, the surplus in-pages are dropped (the hardware
// would do the same: swaps are paired). It returns the number of pages
// actually moved.
func (p *Placement) Migrate(in, out []uint64) int {
	moved := 0
	for _, page := range out {
		pi, ok := p.pt.Find(page)
		if !ok {
			continue
		}
		i := int(pi)
		if i >= len(p.flags) {
			continue
		}
		f := p.flags[i]
		if f&(pagePlaced|pageHBM) != pagePlaced|pageHBM || f&pagePinned != 0 {
			continue
		}
		if len(p.ddrFree) == 0 {
			break
		}
		p.hbmFree = append(p.hbmFree, p.frame[i])
		frame := p.ddrFree[len(p.ddrFree)-1]
		p.ddrFree = p.ddrFree[:len(p.ddrFree)-1]
		p.flags[i] = f &^ pageHBM
		p.frame[i] = frame
		p.hbmResident--
		moved++
	}
	for _, page := range in {
		pi, ok := p.pt.Find(page)
		if !ok {
			continue
		}
		i := int(pi)
		if i >= len(p.flags) {
			continue
		}
		f := p.flags[i]
		if f&pagePlaced == 0 || f&pageHBM != 0 || f&pagePinned != 0 {
			continue
		}
		if len(p.hbmFree) == 0 {
			break
		}
		p.ddrFree = append(p.ddrFree, p.frame[i])
		frame := p.hbmFree[len(p.hbmFree)-1]
		p.hbmFree = p.hbmFree[:len(p.hbmFree)-1]
		p.flags[i] = f | pageHBM
		p.frame[i] = frame
		p.hbmResident++
		moved++
	}
	p.migrations += uint64(moved)
	return moved
}
