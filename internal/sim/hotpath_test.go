package sim

import (
	"context"
	"testing"

	"hmem/internal/avf"
	"hmem/internal/core"
	"hmem/internal/obs"
)

// TestPerAccessPathZeroAllocs verifies the tentpole invariant of the flat
// hot-path layout: once the page working set has been interned and every
// per-page slice has grown to cover it, an access performs no heap
// allocation in any of the per-access structures (placement lookup, AVF
// tracking, interval hotness tracking).
func TestPerAccessPathZeroAllocs(t *testing.T) {
	const pages = 256
	p := NewPlacement(32, 1024)
	tracker := avf.NewTracker()
	iv := newIntervalState()

	// Warm: intern the working set, touch every structure so backing
	// storage reaches steady state, and run one interval boundary so the
	// hot-set scratch is sized too.
	var now int64
	touch := func() {
		for pg := uint64(0); pg < pages; pg++ {
			pi := p.Intern(pg)
			tier, _, _ := p.LookupIndex(pi)
			now++
			write := pg%3 == 0
			tracker.Access(uint32(pi), int(pg%64), now, write, tier)
			iv.observe(pi, write, tier == avf.TierHBM)
		}
	}
	touch()
	iv.sample(now, 0)
	touch()

	pg := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		pi := p.Intern(pg)
		tier, _, _ := p.LookupIndex(pi)
		now++
		tracker.Access(uint32(pi), int(pg%64), now, pg%3 == 0, tier)
		iv.observe(pi, pg%3 == 0, tier == avf.TierHBM)
		pg = (pg + 1) % pages
	})
	if allocs != 0 {
		t.Fatalf("per-access path allocated %.1f times per access; want 0", allocs)
	}
}

// TestObsDisabledAddsZeroAllocs re-runs the per-access gate with every
// observability seam RunCtx threads through the loop present in its
// DISABLED state: the once-per-run Enabled/registry resolution resolved
// against a bare context, the nil-counter guards, and nil-safe span calls.
// Tracing compiled in but switched off must cost zero allocations per
// access — the PR-3 hot-path invariant survives the observability layer.
func TestObsDisabledAddsZeroAllocs(t *testing.T) {
	ctx := context.Background()
	traced := obs.Enabled(ctx)
	if traced {
		t.Fatal("bare context reports tracing enabled")
	}
	metrics := newSimMetrics(ctx)
	var epochSpan *obs.Span

	const pages = 256
	p := NewPlacement(32, 1024)
	tracker := avf.NewTracker()
	iv := newIntervalState()
	var now int64
	touch := func() {
		for pg := uint64(0); pg < pages; pg++ {
			pi := p.Intern(pg)
			tier, _, _ := p.LookupIndex(pi)
			now++
			write := pg%3 == 0
			tracker.Access(uint32(pi), int(pg%64), now, write, tier)
			iv.observe(pi, write, tier == avf.TierHBM)
		}
	}
	touch()
	iv.sample(now, 0)
	touch()

	pg := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		// The disabled observability seams, exactly as RunCtx guards them.
		if metrics.epochs != nil {
			metrics.epochs.Inc()
			metrics.migrated.Add(1)
		}
		if traced {
			epochSpan.End()
			_, epochSpan = obs.Start(ctx, "sim.epoch")
		}
		epochSpan.End() // nil-safe no-op outside the guard too

		pi := p.Intern(pg)
		tier, _, _ := p.LookupIndex(pi)
		now++
		tracker.Access(uint32(pi), int(pg%64), now, pg%3 == 0, tier)
		iv.observe(pi, pg%3 == 0, tier == avf.TierHBM)
		pg = (pg + 1) % pages
	})
	if allocs != 0 {
		t.Fatalf("per-access path with disabled tracing allocated %.1f times per access; want 0", allocs)
	}
	if metrics.runs != nil {
		metrics.runs.Inc()
	}
}

// TestIntervalSampleReusesStorage checks that interval boundaries (sample +
// the epoch-based reset) settle into an allocation-free steady state once
// the hot-set scratch has grown to the working set.
func TestIntervalSampleReusesStorage(t *testing.T) {
	const pages = 64
	iv := newIntervalState()
	var now int64
	warm := func() {
		for pg := core.PageIndex(0); pg < pages; pg++ {
			iv.observe(pg, pg%2 == 0, pg%4 == 0)
		}
		now += 1000
		iv.sample(now, 0)
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("interval sample allocated %.1f times per interval; want 0", allocs)
	}
}
