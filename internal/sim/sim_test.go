package sim

import (
	"errors"
	"testing"

	"hmem/internal/avf"
	"hmem/internal/core"
	"hmem/internal/memsim"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

func testConfig() Config {
	return Config{
		HBM:            memsim.HBM(4 << 20),    // 4 MiB = 1024 pages
		DDR:            memsim.DDR3(512 << 20), // 512 MiB = 131072 pages
		IssueWidth:     4,
		MaxOutstanding: 8,
	}
}

// ---- Placement unit tests ---------------------------------------------------

func TestPlacementFirstTouchGoesToDDR(t *testing.T) {
	p := NewPlacement(4, 8)
	tier, frame, err := p.Lookup(100)
	if err != nil {
		t.Fatal(err)
	}
	if tier != avf.TierDDR {
		t.Fatalf("first touch tier = %v", tier)
	}
	if frame >= 8 {
		t.Fatalf("frame %d out of range", frame)
	}
	// Stable on re-lookup.
	t2, f2, err := p.Lookup(100)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != tier || f2 != frame {
		t.Fatal("lookup not stable")
	}
}

func TestPlacementPreplace(t *testing.T) {
	p := NewPlacement(2, 8)
	if err := p.Preplace([]uint64{5, 6}, false); err != nil {
		t.Fatal(err)
	}
	if !p.InHBM(5) || !p.InHBM(6) {
		t.Fatal("preplaced pages not in HBM")
	}
	if p.HBMFreePages() != 0 {
		t.Fatalf("HBM free = %d", p.HBMFreePages())
	}
	if err := p.Preplace([]uint64{7}, false); err == nil {
		t.Fatal("overflow preplacement accepted")
	}
	if err := p.Preplace([]uint64{5}, false); err == nil {
		t.Fatal("double placement accepted")
	}
	if got := p.HBMPages(); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("HBMPages = %v", got)
	}
}

func TestPlacementFramesUnique(t *testing.T) {
	p := NewPlacement(8, 64)
	seen := map[uint64]bool{}
	for page := uint64(0); page < 64; page++ {
		tier, frame, err := p.Lookup(page)
		if err != nil {
			t.Fatal(err)
		}
		if tier != avf.TierDDR {
			t.Fatal("expected DDR")
		}
		if seen[frame] {
			t.Fatalf("frame %d reused", frame)
		}
		seen[frame] = true
	}
}

func TestPlacementDDRExhaustionReturnsError(t *testing.T) {
	p := NewPlacement(1, 1)
	if _, _, err := p.Lookup(0); err != nil {
		t.Fatal(err)
	}
	_, _, err := p.Lookup(1)
	if !errors.Is(err, ErrDDRExhausted) {
		t.Fatalf("err = %v, want ErrDDRExhausted", err)
	}
}

// TestRunSurfacesDDRExhaustion drives a full Run against a DDR tier too
// small for the workload's footprint: the run must fail with a returned
// error (not a panic), so a misconfigured request fails one evaluation
// rather than the process hosting it.
func TestRunSurfacesDDRExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.DDR = memsim.DDR3(64 << 12) // 64 pages — far below any footprint
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, 0, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(cfg, []trace.Stream{g}, nil, false, nil)
	if !errors.Is(err, ErrDDRExhausted) {
		t.Fatalf("Run err = %v, want ErrDDRExhausted", err)
	}
}

func TestMigrateSwapsAndRespectsPins(t *testing.T) {
	p := NewPlacement(2, 8)
	if err := p.Preplace([]uint64{10}, true); err != nil { // pinned
		t.Fatal(err)
	}
	if err := p.Preplace([]uint64{11}, false); err != nil {
		t.Fatal(err)
	}
	p.Lookup(20)
	p.Lookup(21)

	// Try to evict both HBM pages and bring both DDR pages in; only the
	// unpinned slot can turn over, and only one free frame appears.
	moved := p.Migrate([]uint64{20, 21}, []uint64{10, 11})
	if p.InHBM(10) != true {
		t.Fatal("pinned page evicted")
	}
	if p.InHBM(11) {
		t.Fatal("unpinned page should have been evicted")
	}
	inCount := 0
	for _, page := range []uint64{20, 21} {
		if p.InHBM(page) {
			inCount++
		}
	}
	if inCount != 1 {
		t.Fatalf("in-migrations = %d, want 1 (one free frame)", inCount)
	}
	if moved != 2 { // one out + one in
		t.Fatalf("moved = %d", moved)
	}
	if p.Migrations() != 2 {
		t.Fatalf("Migrations() = %d", p.Migrations())
	}
}

func TestMigrateIgnoresBogusRequests(t *testing.T) {
	p := NewPlacement(2, 8)
	p.Lookup(1) // in DDR
	// Evicting a DDR page or inserting an HBM-resident page is a no-op.
	if moved := p.Migrate(nil, []uint64{1, 999}); moved != 0 {
		t.Fatalf("bogus out migrated %d", moved)
	}
	if err := p.Preplace([]uint64{5}, false); err != nil {
		t.Fatal(err)
	}
	if moved := p.Migrate([]uint64{5, 888}, nil); moved != 0 {
		t.Fatalf("bogus in migrated %d", moved)
	}
}

// ---- Full-run tests ---------------------------------------------------------

func buildSuite(t *testing.T, name string, records int) *workload.Suite {
	t.Helper()
	spec, err := workload.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	suite, err := spec.Build(records, 0xC0FFEE)
	if err != nil {
		t.Fatal(err)
	}
	return suite
}

func TestRunDDROnly(t *testing.T) {
	suite := buildSuite(t, "astar", 3000)
	res, err := Run(testConfig(), suite.Streams(), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Cycles <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Reads == 0 || res.Writes == 0 {
		t.Fatal("no traffic simulated")
	}
	if res.HBMAccessFraction != 0 {
		t.Fatalf("DDR-only run touched HBM: %v", res.HBMAccessFraction)
	}
	if len(res.Snapshot) == 0 {
		t.Fatal("no AVF snapshot")
	}
	if res.MeanAVF() <= 0 || res.MeanAVF() >= 1 {
		t.Fatalf("MeanAVF = %v", res.MeanAVF())
	}
	if got := res.Instructions; got < uint64(3000*16) {
		t.Fatalf("instructions = %d", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() Result {
		suite := buildSuite(t, "gcc", 2000)
		res, err := Run(testConfig(), suite.Streams(), nil, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.IPC != b.IPC || a.Reads != b.Reads {
		t.Fatalf("nondeterministic: %v vs %v cycles", a.Cycles, b.Cycles)
	}
}

func TestHotPlacementImprovesIPC(t *testing.T) {
	// Profile on DDR-only, then place the hottest pages in HBM: IPC must
	// improve (the Figure 5 left-axis effect).
	cfg := testConfig()
	suite := buildSuite(t, "mcf", 4000)
	base, err := Run(cfg, suite.Streams(), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	hot := core.PerfFocused{}.Select(base.Stats(), int(cfg.HBM.Pages()))

	suite2 := buildSuite(t, "mcf", 4000)
	placed, err := Run(cfg, suite2.Streams(), hot, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if placed.HBMAccessFraction < 0.15 {
		t.Fatalf("hot placement captured only %.0f%% of accesses", placed.HBMAccessFraction*100)
	}
	if placed.IPC <= base.IPC {
		t.Fatalf("hot placement IPC %.4f not better than DDR-only %.4f", placed.IPC, base.IPC)
	}
}

// swapMigrator is a trivial test migrator: every interval it moves the given
// page into HBM.
type swapMigrator struct {
	page     uint64
	interval int64
	decided  int
}

func (s *swapMigrator) Name() string                        { return "test-swap" }
func (s *swapMigrator) Bind(*core.PageTable)                {}
func (s *swapMigrator) OnAccess(core.PageIndex, bool, bool) {}
func (s *swapMigrator) IntervalCycles() int64               { return s.interval }
func (s *swapMigrator) Decide(_ int64, p *Placement) (in, out []uint64) {
	s.decided++
	if !p.InHBM(s.page) {
		return []uint64{s.page}, nil
	}
	return nil, nil
}

// firstTouchedPage returns a page the workload certainly accesses.
func firstTouchedPage(t *testing.T, name string) uint64 {
	t.Helper()
	probe := buildSuite(t, name, 1)
	rec, err := probe.Streams()[0].Next()
	if err != nil {
		t.Fatal(err)
	}
	return rec.Page()
}

func TestMigratorHooksFire(t *testing.T) {
	suite := buildSuite(t, "astar", 3000)
	mig := &swapMigrator{page: firstTouchedPage(t, "astar"), interval: 20000}
	res, err := Run(testConfig(), suite.Streams(), nil, false, mig)
	if err != nil {
		t.Fatal(err)
	}
	if mig.decided == 0 {
		t.Fatal("migrator never consulted")
	}
	if res.PagesMigrated == 0 {
		t.Fatal("no pages migrated")
	}
	if res.MigrationPauses <= 0 {
		t.Fatal("migration pause not charged")
	}
}

func TestMigrationPauseCostsCycles(t *testing.T) {
	suite1 := buildSuite(t, "astar", 3000)
	base, err := Run(testConfig(), suite1.Streams(), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A pathological migrator that thrashes one page in and out.
	suite2 := buildSuite(t, "astar", 3000)
	thrash := &thrashMigrator{a: firstTouchedPage(t, "astar"), interval: 5000}
	hit, err := Run(testConfig(), suite2.Streams(), nil, false, thrash)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cycles <= base.Cycles {
		t.Fatalf("thrashing migrations should cost cycles: %d vs %d", hit.Cycles, base.Cycles)
	}
}

type thrashMigrator struct {
	a        uint64
	interval int64
}

func (m *thrashMigrator) Name() string                        { return "thrash" }
func (m *thrashMigrator) Bind(*core.PageTable)                {}
func (m *thrashMigrator) OnAccess(core.PageIndex, bool, bool) {}
func (m *thrashMigrator) IntervalCycles() int64               { return m.interval }
func (m *thrashMigrator) Decide(_ int64, p *Placement) (in, out []uint64) {
	if p.InHBM(m.a) {
		return nil, []uint64{m.a}
	}
	return []uint64{m.a}, nil
}

func TestPinnedPagesSurviveMigration(t *testing.T) {
	suite := buildSuite(t, "astar", 2000)
	mig := &evictAllMigrator{interval: 10000}
	res, err := Run(testConfig(), suite.Streams(), []uint64{0, 1}, true, mig)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	if mig.sawPinned {
		t.Fatal("pinned pages were evicted")
	}
}

type evictAllMigrator struct {
	interval  int64
	sawPinned bool
}

func (m *evictAllMigrator) Name() string                        { return "evict-all" }
func (m *evictAllMigrator) Bind(*core.PageTable)                {}
func (m *evictAllMigrator) OnAccess(core.PageIndex, bool, bool) {}
func (m *evictAllMigrator) IntervalCycles() int64               { return m.interval }
func (m *evictAllMigrator) Decide(_ int64, p *Placement) (in, out []uint64) {
	hbm := p.HBMPages()
	if !p.InHBM(0) || !p.InHBM(1) {
		m.sawPinned = true
	}
	return nil, hbm
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.IssueWidth = 0
	if _, err := Run(cfg, []trace.Stream{trace.NewSliceStream(nil)}, nil, false, nil); err == nil {
		t.Fatal("bad IssueWidth accepted")
	}
	cfg = testConfig()
	cfg.MaxOutstanding = 0
	if cfg.Validate() == nil {
		t.Fatal("bad MaxOutstanding accepted")
	}
	if _, err := Run(testConfig(), nil, nil, false, nil); err == nil {
		t.Fatal("empty stream list accepted")
	}
	bad := &swapMigrator{interval: 0}
	if _, err := Run(testConfig(), []trace.Stream{trace.NewSliceStream(nil)}, nil, false, bad); err == nil {
		t.Fatal("zero-interval migrator accepted")
	}
}

func TestDefaultConfigScales(t *testing.T) {
	full := DefaultConfig(1)
	if full.HBM.CapacityBytes != 1<<30 || full.DDR.CapacityBytes != 16<<30 {
		t.Fatalf("full scale wrong: %+v", full)
	}
	scaled := DefaultConfig(64)
	if scaled.HBM.CapacityBytes != 16<<20 || scaled.DDR.CapacityBytes != 256<<20 {
		t.Fatalf("scaled wrong: %d, %d", scaled.HBM.CapacityBytes, scaled.DDR.CapacityBytes)
	}
	if DefaultConfig(0).HBM.CapacityBytes != 1<<30 {
		t.Fatal("scaleDiv<1 must clamp to 1")
	}
	ratio := float64(scaled.DDR.CapacityBytes) / float64(scaled.HBM.CapacityBytes)
	if ratio != 16 {
		t.Fatalf("capacity ratio = %v, want 16", ratio)
	}
}

func BenchmarkRunAstar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spec, _ := workload.SpecByName("astar")
		suite, _ := spec.Build(2000, 1)
		if _, err := Run(testConfig(), suite.Streams(), nil, false, nil); err != nil {
			b.Fatal(err)
		}
	}
}
