package sim

import (
	"testing"

	"hmem/internal/memsim"
	"hmem/internal/trace"
)

// writeFlood builds a trace of back-to-back writes from one core — the
// pattern that would run away without finite write buffers.
func writeFlood(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: 0, Addr: uint64(i) * trace.LineSize, Kind: trace.Write}
	}
	return recs
}

func TestWriteBufferThrottleBoundsBacklog(t *testing.T) {
	run := func(limit int64) Result {
		cfg := testConfig()
		cfg.WriteBufferCycles = limit
		res, err := Run(cfg, []trace.Stream{trace.NewSliceStream(writeFlood(20000))}, nil, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unthrottled := run(0)
	throttled := run(512)
	// With throttling the core is paced by the memory system, so the run
	// takes at least as long on the core clock...
	if throttled.Cycles < unthrottled.Cycles {
		t.Fatalf("throttling should not shorten the run: %d vs %d",
			throttled.Cycles, unthrottled.Cycles)
	}
	// ...and both runs issue the same work.
	if throttled.Writes != unthrottled.Writes {
		t.Fatal("throttle changed issued traffic")
	}
}

func TestMemsimHorizonTracksBacklog(t *testing.T) {
	cfg := memsim.DDR3(1 << 20)
	m := memsim.New(cfg)
	if h := m.Horizon(0); h != 0 {
		t.Fatalf("idle horizon = %d", h)
	}
	// Flood one channel; the horizon must move ahead of arrivals.
	for i := 0; i < 200; i++ {
		m.Enqueue(&memsim.Request{Line: uint64(i) * uint64(cfg.Channels), Write: true, Arrival: 0})
	}
	m.Drain()
	if h := m.Horizon(0); h <= 0 {
		t.Fatalf("horizon did not advance: %d", h)
	}
}
