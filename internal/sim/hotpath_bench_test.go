package sim

import (
	"testing"

	"hmem/internal/avf"
)

// BenchmarkPlacementLookupIndex measures the warm page-location lookup on
// the flat flags/frame arrays.
func BenchmarkPlacementLookupIndex(b *testing.B) {
	p := NewPlacement(1024, 16384)
	const pages = 8192
	for pg := uint64(0); pg < pages; pg++ {
		p.Lookup(pg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi := p.Intern(uint64(i % pages))
		p.LookupIndex(pi)
	}
}

// BenchmarkPerAccessPath measures the full per-access bookkeeping chain the
// simulator core executes for one trace record (excluding the DRAM timing
// model): intern, placement lookup, AVF tracking, interval hotness.
func BenchmarkPerAccessPath(b *testing.B) {
	p := NewPlacement(1024, 16384)
	tracker := avf.NewTracker()
	iv := newIntervalState()
	const pages = 8192
	var now int64
	for pg := uint64(0); pg < pages; pg++ {
		pi := p.Intern(pg)
		tier, _, _ := p.LookupIndex(pi)
		now++
		tracker.Access(uint32(pi), int(pg%64), now, false, tier)
		iv.observe(pi, false, tier == avf.TierHBM)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := uint64(i % pages)
		pi := p.Intern(pg)
		tier, _, _ := p.LookupIndex(pi)
		now++
		write := i%3 == 0
		tracker.Access(uint32(pi), int(pg%64), now, write, tier)
		iv.observe(pi, write, tier == avf.TierHBM)
	}
}

// BenchmarkPerAccessPathThreeTier is the same chain over a three-tier
// topology with endurance accounting live: spilled placement, N-tier AVF
// attribution, and the RecordWrite wear path. Gated alongside the two-tier
// bench to keep the topology generalization honest.
func BenchmarkPerAccessPathThreeTier(b *testing.B) {
	p := NewTopologyPlacement(threeTierTopo(16384, 4096, 1024))
	tracker := avf.NewTrackerN(p.NumTiers())
	iv := newIntervalState()
	fast := avf.Tier(p.FastTier())
	const pages = 8192
	var now int64
	for pg := uint64(0); pg < pages; pg++ {
		pi := p.Intern(pg)
		tier, frame, _ := p.LookupIndex(pi)
		now++
		p.RecordWrite(tier, frame)
		tracker.Access(uint32(pi), int(pg%64), now, false, tier)
		iv.observe(pi, false, tier == fast)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg := uint64(i % pages)
		pi := p.Intern(pg)
		tier, frame, _ := p.LookupIndex(pi)
		now++
		write := i%3 == 0
		if write {
			p.RecordWrite(tier, frame)
		}
		tracker.Access(uint32(pi), int(pg%64), now, write, tier)
		iv.observe(pi, write, tier == fast)
	}
}
