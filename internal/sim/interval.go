package sim

// intervalState accumulates one measurement interval's activity and derives
// the IntervalSample at each boundary.
type intervalState struct {
	counts  map[uint64]uint64
	reads   uint64
	writes  uint64
	hbmHits uint64
	prevHot map[uint64]bool
}

func newIntervalState() *intervalState {
	return &intervalState{
		counts:  make(map[uint64]uint64),
		prevHot: make(map[uint64]bool),
	}
}

// observe records one access.
func (iv *intervalState) observe(page uint64, write, inHBM bool) {
	iv.counts[page]++
	if write {
		iv.writes++
	} else {
		iv.reads++
	}
	if inHBM {
		iv.hbmHits++
	}
}

// sample closes the interval at endCycle and resets the accumulators.
func (iv *intervalState) sample(endCycle int64, moved int) IntervalSample {
	s := IntervalSample{
		EndCycle:     endCycle,
		Reads:        iv.reads,
		Writes:       iv.writes,
		PagesMoved:   moved,
		TouchedPages: len(iv.counts),
	}
	if total := iv.reads + iv.writes; total > 0 {
		s.HBMFraction = float64(iv.hbmHits) / float64(total)
	}

	// Hot set: pages above the interval's mean access count (the same
	// threshold the §6.1 migration mechanism uses).
	var sum uint64
	for _, c := range iv.counts {
		sum += c
	}
	hot := make(map[uint64]bool)
	if len(iv.counts) > 0 {
		mean := float64(sum) / float64(len(iv.counts))
		for p, c := range iv.counts {
			if float64(c) > mean {
				hot[p] = true
			}
		}
	}
	if len(hot) > 0 && len(iv.prevHot) > 0 {
		fresh := 0
		for p := range hot {
			if !iv.prevHot[p] {
				fresh++
			}
		}
		s.HotSetChurn = float64(fresh) / float64(len(hot))
	}

	iv.prevHot = hot
	iv.counts = make(map[uint64]uint64)
	iv.reads, iv.writes, iv.hbmHits = 0, 0, 0
	return s
}
