package sim

import "hmem/internal/core"

// intervalState accumulates one measurement interval's activity and derives
// the IntervalSample at each boundary. State is dense over interned page
// indices: per-access work is two array writes (epoch-stamped counts plus a
// touched list), with no map operations and no steady-state allocations.
// The previous interval's hot set is an epoch-stamped array too, so the
// churn computation allocates nothing per boundary.
type intervalState struct {
	counts  []uint32 // per-index access count, valid iff mark matches
	mark    []uint64
	epoch   uint64
	touched []core.PageIndex
	reads   uint64
	writes  uint64
	hbmHits uint64
	// hotMark[i] == hotEpoch marks membership in the previous interval's
	// hot set; prevHotLen is that set's size.
	hotMark    []uint64
	hotEpoch   uint64
	prevHotLen int
}

func newIntervalState() *intervalState {
	return &intervalState{epoch: 1, hotEpoch: 1}
}

// ensure grows the per-index arrays to cover index i.
func (iv *intervalState) ensure(i int) {
	if i < len(iv.counts) {
		return
	}
	n := len(iv.counts) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	counts := make([]uint32, n)
	mark := make([]uint64, n)
	hotMark := make([]uint64, n)
	copy(counts, iv.counts)
	copy(mark, iv.mark)
	copy(hotMark, iv.hotMark)
	iv.counts, iv.mark, iv.hotMark = counts, mark, hotMark
}

// observe records one access to the page interned at pi.
func (iv *intervalState) observe(pi core.PageIndex, write, inHBM bool) {
	i := int(pi)
	if i >= len(iv.counts) {
		iv.ensure(i)
	}
	if iv.mark[i] != iv.epoch {
		iv.mark[i] = iv.epoch
		iv.counts[i] = 0
		iv.touched = append(iv.touched, pi)
	}
	iv.counts[i]++
	if write {
		iv.writes++
	} else {
		iv.reads++
	}
	if inHBM {
		iv.hbmHits++
	}
}

// sample closes the interval at endCycle and resets the accumulators.
func (iv *intervalState) sample(endCycle int64, moved int) IntervalSample {
	s := IntervalSample{
		EndCycle:     endCycle,
		Reads:        iv.reads,
		Writes:       iv.writes,
		PagesMoved:   moved,
		TouchedPages: len(iv.touched),
	}
	if total := iv.reads + iv.writes; total > 0 {
		s.HBMFraction = float64(iv.hbmHits) / float64(total)
	}

	// Hot set: pages above the interval's mean access count (the same
	// threshold the §6.1 migration mechanism uses).
	var sum uint64
	for _, pi := range iv.touched {
		sum += uint64(iv.counts[pi])
	}
	hotLen := 0
	fresh := 0
	nextHotEpoch := iv.hotEpoch + 1
	if len(iv.touched) > 0 {
		mean := float64(sum) / float64(len(iv.touched))
		for _, pi := range iv.touched {
			if float64(iv.counts[pi]) > mean {
				hotLen++
				if iv.hotMark[pi] != iv.hotEpoch {
					fresh++
				}
				iv.hotMark[pi] = nextHotEpoch
			}
		}
	}
	if hotLen > 0 && iv.prevHotLen > 0 {
		s.HotSetChurn = float64(fresh) / float64(hotLen)
	}

	iv.hotEpoch = nextHotEpoch
	iv.prevHotLen = hotLen
	iv.epoch++
	iv.touched = iv.touched[:0]
	iv.reads, iv.writes, iv.hbmHits = 0, 0, 0
	return s
}
