package sim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"hmem/internal/avf"
	"hmem/internal/xrand"
)

// placed reports whether the placement has assigned a frame to page.
func placed(p *Placement, page uint64) bool {
	pi, ok := p.pt.Find(page)
	return ok && int(pi) < len(p.flags) && p.flags[pi]&pagePlaced != 0
}

// churnProperty drives the page table through random lookup/migrate
// sequences and checks the structural invariants that every policy and
// mechanism relies on:
//
//   - a frame is never assigned to two pages in the same tier;
//   - HBM occupancy never exceeds capacity;
//   - pinned pages never leave HBM;
//   - every page's location stays consistent with InHBM/HBMPages;
//   - frame accounting conserves capacity (free + resident == capacity).
func churnProperty(seed uint64) error {
	rng := xrand.New(seed)
	const hbmCap = 8
	const ddrCap = 64
	const pages = 48
	p := NewPlacement(hbmCap, ddrCap)

	// Preplace a few pages, pin half of them.
	var pinned []uint64
	for i := uint64(0); i < 4; i++ {
		pin := i%2 == 0
		if err := p.Preplace([]uint64{i}, pin); err != nil {
			return err
		}
		if pin {
			pinned = append(pinned, i)
		}
	}

	for step := 0; step < 400; step++ {
		switch rng.Intn(3) {
		case 0:
			p.Lookup(rng.Uint64n(pages))
		case 1:
			in := []uint64{rng.Uint64n(pages)}
			out := []uint64{rng.Uint64n(pages)}
			p.Migrate(in, out)
		default:
			p.Migrate(nil, p.HBMPages())
		}

		// Invariants.
		hbm := p.HBMPages()
		if uint64(len(hbm)) > hbmCap {
			return fmt.Errorf("step %d: HBM residency %d exceeds capacity %d", step, len(hbm), hbmCap)
		}
		if got := len(hbm) + p.HBMFreePages(); got != hbmCap {
			return fmt.Errorf("step %d: HBM frames leaked: %d resident + free", step, got)
		}
		seenFrames := map[[2]uint64]bool{}
		for pg := uint64(0); pg < pages; pg++ {
			if !placed(p, pg) {
				continue
			}
			tier, frame, err := p.Lookup(pg)
			if err != nil {
				return fmt.Errorf("step %d: lookup page %d: %w", step, pg, err)
			}
			key := [2]uint64{uint64(tier), frame}
			if seenFrames[key] {
				return fmt.Errorf("step %d: frame %d aliased in tier %v", step, frame, tier)
			}
			seenFrames[key] = true
			if (tier == avf.TierHBM) != p.InHBM(pg) {
				return fmt.Errorf("step %d: page %d tier disagrees with InHBM", step, pg)
			}
		}
		for _, pg := range pinned {
			if !p.InHBM(pg) {
				return fmt.Errorf("step %d: pinned page %d left HBM", step, pg)
			}
		}
	}
	return nil
}

// TestPlacementInvariantsUnderRandomChurn checks churnProperty serially via
// testing/quick, then re-runs it from NumCPU goroutines concurrently (each
// on an independent Placement) so `go test -race` catches any accidental
// shared state between instances of the flat structures.
func TestPlacementInvariantsUnderRandomChurn(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		f := func(seed uint64) bool {
			if err := churnProperty(seed); err != nil {
				t.Log(err)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		workers := runtime.NumCPU()
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seed := uint64(w * 100); seed < uint64(w*100+10); seed++ {
					if err := churnProperty(seed); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestPlacementConservation checks frame accounting: free + resident counts
// always sum to capacity.
func TestPlacementConservation(t *testing.T) {
	rng := xrand.New(5)
	p := NewPlacement(16, 128)
	for i := uint64(0); i < 100; i++ {
		p.Lookup(i)
	}
	for step := 0; step < 300; step++ {
		in := []uint64{rng.Uint64n(100)}
		out := []uint64{rng.Uint64n(100)}
		p.Migrate(in, out)
		if got := len(p.HBMPages()) + p.HBMFreePages(); got != 16 {
			t.Fatalf("step %d: HBM frames leaked: %d", step, got)
		}
	}
}
