package sim

import (
	"testing"
	"testing/quick"

	"hmem/internal/avf"
	"hmem/internal/xrand"
)

// TestPlacementInvariantsUnderRandomChurn drives the page table through
// random lookup/migrate sequences and checks the structural invariants that
// every policy and mechanism relies on:
//
//   - a frame is never assigned to two pages in the same tier;
//   - HBM occupancy never exceeds capacity;
//   - pinned pages never leave HBM;
//   - every page's location stays consistent with InHBM/HBMPages.
func TestPlacementInvariantsUnderRandomChurn(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		const hbmCap = 8
		const ddrCap = 64
		const pages = 48
		p := NewPlacement(hbmCap, ddrCap)

		// Preplace a few pages, pin half of them.
		var pinned []uint64
		for i := uint64(0); i < 4; i++ {
			pin := i%2 == 0
			if err := p.Preplace([]uint64{i}, pin); err != nil {
				return false
			}
			if pin {
				pinned = append(pinned, i)
			}
		}

		for step := 0; step < 400; step++ {
			switch rng.Intn(3) {
			case 0:
				p.Lookup(rng.Uint64n(pages))
			case 1:
				in := []uint64{rng.Uint64n(pages)}
				out := []uint64{rng.Uint64n(pages)}
				p.Migrate(in, out)
			default:
				p.Migrate(nil, p.HBMPages())
			}

			// Invariants.
			hbm := p.HBMPages()
			if uint64(len(hbm)) > hbmCap {
				return false
			}
			seenFrames := map[[2]uint64]bool{}
			for pg := uint64(0); pg < pages; pg++ {
				if _, ok := p.loc[pg]; !ok {
					continue
				}
				tier, frame := p.Lookup(pg)
				key := [2]uint64{uint64(tier), frame}
				if seenFrames[key] {
					return false // frame aliasing
				}
				seenFrames[key] = true
				if (tier == avf.TierHBM) != p.InHBM(pg) {
					return false
				}
			}
			for _, pg := range pinned {
				if !p.InHBM(pg) {
					return false // pin violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementConservation checks frame accounting: free + resident counts
// always sum to capacity.
func TestPlacementConservation(t *testing.T) {
	rng := xrand.New(5)
	p := NewPlacement(16, 128)
	for i := uint64(0); i < 100; i++ {
		p.Lookup(i)
	}
	for step := 0; step < 300; step++ {
		in := []uint64{rng.Uint64n(100)}
		out := []uint64{rng.Uint64n(100)}
		p.Migrate(in, out)
		if got := len(p.HBMPages()) + p.HBMFreePages(); got != 16 {
			t.Fatalf("step %d: HBM frames leaked: %d", step, got)
		}
	}
}
