package sim

import (
	"testing"

	"hmem/internal/workload"
)

func TestIntervalSamplesCollected(t *testing.T) {
	suite := buildSuite(t, "soplex", 8000)
	mig := &swapMigrator{page: firstTouchedPage(t, "soplex"), interval: 50000}
	res, err := Run(testConfig(), suite.Streams(), nil, false, mig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) < 2 {
		t.Fatalf("intervals sampled = %d, want several", len(res.Intervals))
	}
	var prevEnd int64
	for i, s := range res.Intervals {
		if s.EndCycle <= prevEnd {
			t.Fatalf("interval %d: non-increasing end cycle", i)
		}
		prevEnd = s.EndCycle
		if s.Reads+s.Writes == 0 {
			continue // pathological empty interval is allowed
		}
		if s.TouchedPages == 0 {
			t.Fatalf("interval %d: traffic without touched pages", i)
		}
		if s.HBMFraction < 0 || s.HBMFraction > 1 {
			t.Fatalf("interval %d: HBM fraction %v", i, s.HBMFraction)
		}
		if s.HotSetChurn < 0 || s.HotSetChurn > 1 {
			t.Fatalf("interval %d: churn %v", i, s.HotSetChurn)
		}
	}
}

func TestIntervalHotSetChurnIsMaterial(t *testing.T) {
	// The paper motivates dynamic migration with heavy inter-interval hot
	// set churn ("triggering an average of 47,014 migrations every
	// interval"). Our generators must reproduce a non-trivial churn.
	suite := buildSuite(t, "mix1", 20000)
	mig := &swapMigrator{page: firstTouchedPage(t, "mix1"), interval: 200000}
	res, err := Run(testConfig(), suite.Streams(), nil, false, mig)
	if err != nil {
		t.Fatal(err)
	}
	churnSum, n := 0.0, 0
	for _, s := range res.Intervals[1:] { // first interval has no predecessor
		if s.HotSetChurn > 0 {
			churnSum += s.HotSetChurn
			n++
		}
	}
	if n == 0 {
		t.Skip("not enough intervals for churn measurement")
	}
	if mean := churnSum / float64(n); mean < 0.05 {
		t.Fatalf("mean hot-set churn %.3f too small to motivate migration", mean)
	}
}

func TestPerCoreIPC(t *testing.T) {
	suite := buildSuite(t, "gcc", 3000)
	res, err := Run(testConfig(), suite.Streams(), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoreIPC) != workload.Cores {
		t.Fatalf("CoreIPC entries = %d", len(res.CoreIPC))
	}
	var sum float64
	for i, v := range res.CoreIPC {
		if v <= 0 {
			t.Fatalf("core %d IPC = %v", i, v)
		}
		sum += v
	}
	// The aggregate per-core average must equal the mean of the vector.
	mean := sum / float64(len(res.CoreIPC))
	if diff := mean - res.IPC; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("CoreIPC mean %v != IPC %v", mean, res.IPC)
	}
}

func TestIntervalsEmptyWithoutMigrator(t *testing.T) {
	suite := buildSuite(t, "gcc", 1000)
	res, err := Run(testConfig(), suite.Streams(), nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals) != 0 {
		t.Fatalf("static run collected %d interval samples", len(res.Intervals))
	}
}
