package ecc

// ChipKill is a Reed-Solomon single-symbol-correct code over GF(2^8).
// The DDRx tier transfers a 144-bit beat-pair on its 72-bit bus from 18 x4
// chips; grouping each chip's two 4-bit beats gives 18 8-bit symbols:
// 16 data symbols + 2 check symbols. Any error confined to one symbol — up
// to all 8 bits of one chip — is corrected, which is exactly the
// "single-ChipKill" property of Table 1. Errors spanning two or more chips
// are uncorrectable; the decoder detects most such patterns (RS distance 3
// guarantees single correction; double-symbol detection is probabilistic,
// documented in DESIGN.md as the deviation from the b-adjacent SSC-DSD code
// of Dell's white paper).

// ChipKill code geometry.
const (
	CKDataSymbols  = 16
	CKCheckSymbols = 2
	CKSymbols      = CKDataSymbols + CKCheckSymbols
)

// CKWord is one chipkill codeword: 18 symbols, data in [0,16), checks at
// indices 16 and 17.
type CKWord [CKSymbols]byte

// ckGen is the generator polynomial (x - α^0)(x - α^1) = x^2 + g1·x + g0.
var ckGen = func() [3]byte {
	// (x + 1)(x + α) over GF(256): coefficients [g0, g1, 1].
	a := gfPow(1)
	return [3]byte{gfMul(1, a), 1 ^ a, 1}
}()

// EncodeChipKill encodes 16 data symbols into a systematic codeword.
func EncodeChipKill(data [CKDataSymbols]byte) CKWord {
	// Systematic RS encoding: remainder of data·x^2 divided by generator.
	var rem [2]byte
	for _, d := range data {
		feedback := d ^ rem[0]
		rem[0] = rem[1] ^ gfMul(feedback, ckGen[1])
		rem[1] = gfMul(feedback, ckGen[0])
	}
	var w CKWord
	copy(w[:CKDataSymbols], data[:])
	w[CKDataSymbols] = rem[0]
	w[CKDataSymbols+1] = rem[1]
	return w
}

// ckEval evaluates the received word as a polynomial at α^j. The codeword
// symbol at index i is the coefficient of x^(n-1-i).
func ckEval(w CKWord, j int) byte {
	var acc byte
	x := gfPow(j)
	for _, c := range w[:] {
		acc = gfMul(acc, x) ^ c
	}
	return acc
}

// DecodeChipKill decodes a possibly-corrupted codeword, returning the data
// symbols and the decoder's verdict. Any single-symbol error (1-8 bit flips
// within one chip) is corrected. Multi-symbol errors are uncorrectable and
// usually detected; patterns that alias to a valid single-symbol correction
// emerge as Corrected with wrong data (silent corruption), which callers
// with ground truth can observe.
func DecodeChipKill(w CKWord) (data [CKDataSymbols]byte, outcome Outcome) {
	s0 := ckEval(w, 0)
	s1 := ckEval(w, 1)

	switch {
	case s0 == 0 && s1 == 0:
		outcome = OK
	case s0 != 0 && s1 != 0:
		// Single-error hypothesis: error magnitude s0 at polynomial degree
		// log(s1/s0); degree d corresponds to symbol index n-1-d.
		deg := gfLog[gfDiv(s1, s0)]
		idx := CKSymbols - 1 - deg
		if idx >= 0 && idx < CKSymbols {
			w[idx] ^= s0
			outcome = Corrected
		} else {
			outcome = DetectedUncorrectable
		}
	default:
		// Exactly one syndrome zero: impossible for a single symbol error,
		// so at least two symbols are corrupt.
		outcome = DetectedUncorrectable
	}

	copy(data[:], w[:CKDataSymbols])
	return data, outcome
}
