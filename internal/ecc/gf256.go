// Package ecc implements the two error-correction codes of the paper's
// Table 1 memory tiers as real, bit-level codecs:
//
//   - Hsiao-style SEC-DED(72,64) — single-error-correct, double-error-detect
//     — the HBM tier's protection [21].
//   - A Reed-Solomon single-symbol-correct code over GF(2^8), RS(18,16) —
//     ChipKill-class symbol correction for the x4 DDRx tier [10]: 16 data
//     symbols + 2 check symbols, one 8-bit symbol per DRAM chip per burst
//     pair, so any single-chip failure (any number of bits within one
//     symbol) is correctable.
//
// The fault simulator adjudicates millions of fault patterns per study; it
// uses fast pattern-counting rules that are cross-validated against these
// codecs by the package tests.
package ecc

// gf256 arithmetic with the AES-adjacent primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D), precomputed exp/log tables.

// The tables are built by a variable initializer (not func init) so that
// other package-level initializers depending on gfMul/gfPow — like the
// chipkill generator polynomial — are ordered after them by the spec's
// initialization-dependency rules.
var gfExp, gfLog = buildGFTables()

func buildGFTables() ([512]byte, [256]int) {
	var exp [512]byte
	var log [256]int
	x := 1
	for i := 0; i < 255; i++ {
		exp[i] = byte(x)
		log[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		exp[i] = exp[i-255]
	}
	log[0] = -1
	return exp, log
}

// gfMul multiplies in GF(256).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides a by b in GF(256); b must be non-zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

// gfPow returns alpha^(e mod 255) where alpha is the primitive element.
func gfPow(e int) byte {
	e %= 255
	if e < 0 {
		e += 255
	}
	return gfExp[e]
}
