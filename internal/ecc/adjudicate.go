package ecc

import "math/bits"

// Fast adjudication rules used by the fault simulator, which must classify
// millions of fault patterns per study. The package tests cross-validate
// these rules against the real codecs above.

// Scheme selects an error-correction scheme for adjudication.
type Scheme uint8

// Available schemes. None models unprotected memory.
const (
	None Scheme = iota
	SECDED
	ChipKillSSC
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case None:
		return "none"
	case SECDED:
		return "sec-ded"
	case ChipKillSSC:
		return "chipkill-ssc"
	default:
		return "scheme(?)"
	}
}

// AdjudicateSECDED classifies an error pattern over one 72-bit word given
// the number of flipped bits: 0 -> OK, 1 -> Corrected, 2 -> Detected,
// >=3 -> uncorrectable (the real decoder usually miscorrects, which is at
// least as bad).
func AdjudicateSECDED(flippedBits int) Outcome {
	switch {
	case flippedBits <= 0:
		return OK
	case flippedBits == 1:
		return Corrected
	case flippedBits == 2:
		return DetectedUncorrectable
	default:
		return Miscorrected
	}
}

// AdjudicateChipKill classifies an error pattern over one chipkill word
// given a bitmask of affected symbols (one bit per chip): errors confined to
// one chip are corrected, anything wider is uncorrectable.
func AdjudicateChipKill(symbolMask uint32) Outcome {
	switch bits.OnesCount32(symbolMask) {
	case 0:
		return OK
	case 1:
		return Corrected
	default:
		return DetectedUncorrectable
	}
}

// IsUncorrectable reports whether an outcome leaves wrong data reachable by
// software (the condition that, multiplied by AVF, produces the paper's SER).
func IsUncorrectable(o Outcome) bool {
	return o == DetectedUncorrectable || o == Miscorrected
}
