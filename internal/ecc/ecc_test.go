package ecc

import (
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

// ---- GF(256) ---------------------------------------------------------------

func TestGFFieldAxioms(t *testing.T) {
	rng := xrand.New(1)
	for i := 0; i < 2000; i++ {
		a := byte(rng.Uint64())
		b := byte(rng.Uint64())
		c := byte(rng.Uint64())
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatal("multiplication not associative")
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatal("multiplication not distributive over XOR")
		}
		if gfMul(a, 1) != a {
			t.Fatal("1 is not the multiplicative identity")
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatal("division is not multiplication inverse")
		}
	}
}

func TestGFExpLogRoundTrip(t *testing.T) {
	for x := 1; x < 256; x++ {
		if gfExp[gfLog[x]] != byte(x) {
			t.Fatalf("exp(log(%d)) = %d", x, gfExp[gfLog[x]])
		}
	}
	if gfLog[0] != -1 {
		t.Fatal("log(0) sentinel wrong")
	}
}

func TestGFPrimitiveElementOrder(t *testing.T) {
	// alpha generates the full multiplicative group: no repeats before 255.
	seen := map[byte]bool{}
	for e := 0; e < 255; e++ {
		v := gfPow(e)
		if seen[v] {
			t.Fatalf("alpha^%d repeats value %d", e, v)
		}
		seen[v] = true
	}
	if gfPow(255) != 1 || gfPow(0) != 1 {
		t.Fatal("alpha order is not 255")
	}
	if gfPow(-3) != gfPow(252) {
		t.Fatal("negative exponent wrap wrong")
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(5, 0)
}

// ---- SEC-DED ----------------------------------------------------------------

func TestSECDEDRoundTripClean(t *testing.T) {
	f := func(data uint64) bool {
		got, out := DecodeSECDED(EncodeSECDED(data))
		return got == data && out == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 50; trial++ {
		data := rng.Uint64()
		cw := EncodeSECDED(data)
		for pos := 0; pos < 72; pos++ {
			got, out := DecodeSECDED(cw.FlipBit(pos))
			if out != Corrected {
				t.Fatalf("bit %d: outcome %v, want Corrected", pos, out)
			}
			if got != data {
				t.Fatalf("bit %d: data corrupted after correction", pos)
			}
		}
	}
}

func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		data := rng.Uint64()
		cw := EncodeSECDED(data)
		for a := 0; a < 72; a++ {
			for b := a + 1; b < 72; b++ {
				_, out := DecodeSECDED(cw.FlipBit(a).FlipBit(b))
				if out != DetectedUncorrectable {
					t.Fatalf("bits (%d,%d): outcome %v, want detected", a, b, out)
				}
			}
		}
	}
}

func TestSECDEDTripleBitIsHazardous(t *testing.T) {
	// With 3 flipped bits the decoder must never report OK; it either
	// detects or (believing a single error) miscorrects to wrong data.
	rng := xrand.New(4)
	miscorrections := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		data := rng.Uint64()
		cw := EncodeSECDED(data)
		a := rng.Intn(72)
		b := (a + 1 + rng.Intn(71)) % 72
		c := (b + 1 + rng.Intn(70)) % 72
		if c == a {
			c = (c + 1) % 72
		}
		got, out := DecodeSECDED(cw.FlipBit(a).FlipBit(b).FlipBit(c))
		if out == OK {
			t.Fatal("triple error reported clean")
		}
		if out == Corrected && got != data {
			miscorrections++
		}
	}
	if miscorrections == 0 {
		t.Fatal("expected some triple-bit miscorrections (SEC-DED limitation)")
	}
}

func TestSECDEDXorHelper(t *testing.T) {
	cw := EncodeSECDED(0xDEADBEEF)
	e := Codeword72{Lo: 1 << 5}
	if cw.Xor(e) != cw.FlipBit(5) {
		t.Fatal("Xor and FlipBit disagree")
	}
}

// ---- ChipKill ----------------------------------------------------------------

func randSymbols(rng *xrand.RNG) [CKDataSymbols]byte {
	var d [CKDataSymbols]byte
	for i := range d {
		d[i] = byte(rng.Uint64())
	}
	return d
}

func TestChipKillRoundTripClean(t *testing.T) {
	rng := xrand.New(5)
	for i := 0; i < 2000; i++ {
		data := randSymbols(rng)
		got, out := DecodeChipKill(EncodeChipKill(data))
		if out != OK || got != data {
			t.Fatalf("clean decode failed: %v", out)
		}
	}
}

func TestChipKillCodewordsHaveZeroSyndromes(t *testing.T) {
	rng := xrand.New(6)
	for i := 0; i < 500; i++ {
		w := EncodeChipKill(randSymbols(rng))
		if ckEval(w, 0) != 0 || ckEval(w, 1) != 0 {
			t.Fatal("valid codeword has non-zero syndrome")
		}
	}
}

func TestChipKillCorrectsAnySingleSymbol(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		data := randSymbols(rng)
		cw := EncodeChipKill(data)
		sym := rng.Intn(CKSymbols)
		errVal := byte(1 + rng.Intn(255)) // any non-zero pattern: 1..8 bits
		corrupted := cw
		corrupted[sym] ^= errVal
		got, out := DecodeChipKill(corrupted)
		if out != Corrected {
			t.Fatalf("symbol %d pattern %02x: outcome %v", sym, errVal, out)
		}
		if got != data {
			t.Fatalf("symbol %d: data wrong after correction", sym)
		}
	}
}

func TestChipKillWholeChipFailure(t *testing.T) {
	// All 8 bits of one chip wrong — the marquee ChipKill scenario.
	rng := xrand.New(8)
	data := randSymbols(rng)
	cw := EncodeChipKill(data)
	for sym := 0; sym < CKSymbols; sym++ {
		corrupted := cw
		corrupted[sym] ^= 0xFF
		got, out := DecodeChipKill(corrupted)
		if out != Corrected || got != data {
			t.Fatalf("chip %d total failure not corrected: %v", sym, out)
		}
	}
}

func TestChipKillDoubleSymbolNeverSilentlyOK(t *testing.T) {
	rng := xrand.New(9)
	detected, aliased := 0, 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		data := randSymbols(rng)
		cw := EncodeChipKill(data)
		a := rng.Intn(CKSymbols)
		b := (a + 1 + rng.Intn(CKSymbols-1)) % CKSymbols
		cw[a] ^= byte(1 + rng.Intn(255))
		cw[b] ^= byte(1 + rng.Intn(255))
		got, out := DecodeChipKill(cw)
		switch {
		case out == OK:
			t.Fatal("double-symbol error decoded as clean")
		case out == DetectedUncorrectable:
			detected++
		case out == Corrected && got != data:
			aliased++ // silent corruption: known RS(18,16) limitation
		case out == Corrected && got == data:
			t.Fatal("double-symbol error 'corrected' to right data: impossible")
		}
	}
	if detected == 0 {
		t.Fatal("no double-symbol errors detected at all")
	}
	// Most double errors must be detected, not aliased.
	if float64(detected)/float64(trials) < 0.5 {
		t.Fatalf("only %d/%d double errors detected", detected, trials)
	}
	t.Logf("double-symbol: %d detected, %d aliased of %d", detected, aliased, trials)
}

func TestChipKillPropertySingleSymbol(t *testing.T) {
	rng := xrand.New(10)
	f := func(seed uint64) bool {
		r := xrand.New(seed ^ rng.Uint64())
		data := randSymbols(r)
		cw := EncodeChipKill(data)
		sym := r.Intn(CKSymbols)
		cw[sym] ^= byte(1 + r.Intn(255))
		got, out := DecodeChipKill(cw)
		return out == Corrected && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// ---- Adjudication cross-validation ------------------------------------------

func TestAdjudicateSECDEDMatchesCodec(t *testing.T) {
	rng := xrand.New(11)
	for flips := 0; flips <= 2; flips++ {
		for trial := 0; trial < 300; trial++ {
			data := rng.Uint64()
			cw := EncodeSECDED(data)
			positions := rng.Perm(72)[:flips]
			for _, p := range positions {
				cw = cw.FlipBit(p)
			}
			got, out := DecodeSECDED(cw)
			want := AdjudicateSECDED(flips)
			if out != want {
				t.Fatalf("flips=%d: codec %v, adjudicator %v", flips, out, want)
			}
			if want == Corrected && got != data {
				t.Fatal("correction returned wrong data")
			}
		}
	}
	// >= 3 flips: adjudicator says uncorrectable. The codec may report
	// Corrected (miscorrection) or, for even flip counts that alias to a
	// valid codeword, even OK — but never with the right data.
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64()
		cw := EncodeSECDED(data)
		flips := 3 + rng.Intn(4)
		for _, p := range rng.Perm(72)[:flips] {
			cw = cw.FlipBit(p)
		}
		got, out := DecodeSECDED(cw)
		if (out == OK || out == Corrected) && got == data {
			t.Fatal(">=3 flips cannot yield the right data")
		}
		if out == OK && flips%2 == 1 {
			t.Fatal("odd-weight error decoded as clean (parity must catch it)")
		}
		if !IsUncorrectable(AdjudicateSECDED(flips)) {
			t.Fatal("adjudicator must flag >=3 flips uncorrectable")
		}
	}
}

func TestAdjudicateChipKillMatchesCodec(t *testing.T) {
	rng := xrand.New(12)
	// One symbol.
	for trial := 0; trial < 300; trial++ {
		data := randSymbols(rng)
		cw := EncodeChipKill(data)
		sym := rng.Intn(CKSymbols)
		cw[sym] ^= byte(1 + rng.Intn(255))
		_, out := DecodeChipKill(cw)
		if want := AdjudicateChipKill(1 << uint(sym)); out != want {
			t.Fatalf("single symbol: codec %v, adjudicator %v", out, want)
		}
	}
	// Zero symbols.
	if AdjudicateChipKill(0) != OK {
		t.Fatal("empty mask must be OK")
	}
	// Two symbols: adjudicator says uncorrectable; codec must agree that
	// the data is not recoverable (detected or aliased, never clean).
	if !IsUncorrectable(AdjudicateChipKill(0b11)) {
		t.Fatal("two-symbol mask must be uncorrectable")
	}
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		OK: "ok", Corrected: "corrected",
		DetectedUncorrectable: "detected-uncorrectable",
		Miscorrected:          "miscorrected",
		Outcome(99):           "outcome(?)",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	schemes := map[Scheme]string{None: "none", SECDED: "sec-ded", ChipKillSSC: "chipkill-ssc", Scheme(9): "scheme(?)"}
	for s, want := range schemes {
		if s.String() != want {
			t.Errorf("scheme %d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestIsUncorrectable(t *testing.T) {
	if IsUncorrectable(OK) || IsUncorrectable(Corrected) {
		t.Fatal("correctable outcomes flagged uncorrectable")
	}
	if !IsUncorrectable(DetectedUncorrectable) || !IsUncorrectable(Miscorrected) {
		t.Fatal("uncorrectable outcomes not flagged")
	}
}

func BenchmarkEncodeSECDED(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodeSECDED(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeSECDED(b *testing.B) {
	cw := EncodeSECDED(0xDEADBEEFCAFEF00D).FlipBit(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeSECDED(cw)
	}
}

func BenchmarkDecodeChipKill(b *testing.B) {
	rng := xrand.New(1)
	cw := EncodeChipKill(randSymbols(rng))
	cw[3] ^= 0x5A
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeChipKill(cw)
	}
}
