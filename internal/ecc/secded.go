package ecc

import "math/bits"

// SECDED72 is the (72,64) single-error-correct double-error-detect code used
// by the HBM tier. It is an extended Hamming code: seven check bits at
// codeword positions 1,2,4,...,64 plus an overall parity bit at position 0.
// Data bits occupy the remaining 64 positions.
//
// A Codeword72 stores the 72 bits as Lo (codeword bits 0..63) and Hi
// (codeword bits 64..71 in its low byte).
type Codeword72 struct {
	Lo uint64
	Hi uint8
}

// Bit returns codeword bit i (0..71).
func (c Codeword72) Bit(i int) uint {
	if i < 64 {
		return uint(c.Lo>>uint(i)) & 1
	}
	return uint(c.Hi>>uint(i-64)) & 1
}

// FlipBit returns the codeword with bit i (0..71) inverted.
func (c Codeword72) FlipBit(i int) Codeword72 {
	if i < 64 {
		c.Lo ^= 1 << uint(i)
	} else {
		c.Hi ^= 1 << uint(i-64)
	}
	return c
}

// Xor returns the bitwise XOR of two codewords (error-pattern application).
func (c Codeword72) Xor(e Codeword72) Codeword72 {
	return Codeword72{Lo: c.Lo ^ e.Lo, Hi: c.Hi ^ e.Hi}
}

// dataPositions lists the 64 codeword positions holding data bits: positions
// 1..71 that are not powers of two and not the overall-parity position 0.
var dataPositions = func() [64]int {
	var out [64]int
	n := 0
	for p := 1; p < 72 && n < 64; p++ {
		if p&(p-1) == 0 { // 1,2,4,...,64 are check positions
			continue
		}
		out[n] = p
		n++
	}
	if n != 64 {
		panic("ecc: SECDED construction broken")
	}
	return out
}()

// EncodeSECDED encodes 64 data bits into a 72-bit codeword.
func EncodeSECDED(data uint64) Codeword72 {
	var cw Codeword72
	// Scatter data bits.
	for i, pos := range dataPositions {
		if data>>uint(i)&1 != 0 {
			cw = cw.FlipBit(pos)
		}
	}
	// Hamming check bits: bit at position 2^k covers positions with bit k
	// set in their index.
	for k := uint(0); k < 7; k++ {
		parity := uint(0)
		for p := 1; p < 72; p++ {
			if p&(1<<k) != 0 && p != 1<<k {
				parity ^= cw.Bit(p)
			}
		}
		if parity != 0 {
			cw = cw.FlipBit(1 << k)
		}
	}
	// Overall parity at position 0 makes total weight even.
	total := uint(bits.OnesCount64(cw.Lo)) ^ uint(bits.OnesCount8(cw.Hi))
	if total&1 != 0 {
		cw = cw.FlipBit(0)
	}
	return cw
}

// Outcome classifies a decode attempt.
type Outcome uint8

// Decode outcomes. Miscorrect means the decoder "corrected" to the wrong
// word without noticing — silent data corruption. Decoders can only return
// it when the caller knows the original data (tests and fault studies do).
const (
	OK Outcome = iota
	Corrected
	DetectedUncorrectable
	Miscorrected
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case DetectedUncorrectable:
		return "detected-uncorrectable"
	case Miscorrected:
		return "miscorrected"
	default:
		return "outcome(?)"
	}
}

// DecodeSECDED decodes a possibly-corrupted codeword. It returns the decoded
// data and what the decoder *believes* happened (OK, Corrected, or
// DetectedUncorrectable). With three or more bit errors the decoder may
// return Corrected with wrong data; callers who know the ground truth can
// detect that (see the tests and faultsim).
func DecodeSECDED(cw Codeword72) (data uint64, outcome Outcome) {
	// Syndrome: XOR of positions of set bits (positions 1..71).
	syndrome := 0
	for p := 1; p < 72; p++ {
		if cw.Bit(p) != 0 {
			syndrome ^= p
		}
	}
	totalParity := uint(bits.OnesCount64(cw.Lo)+bits.OnesCount8(cw.Hi)) & 1

	switch {
	case syndrome == 0 && totalParity == 0:
		outcome = OK
	case totalParity == 1:
		// Odd number of errors: assume single, correct at syndrome position
		// (syndrome 0 with odd parity means the parity bit itself flipped).
		if syndrome < 72 {
			cw = cw.FlipBit(syndrome)
			outcome = Corrected
		} else {
			outcome = DetectedUncorrectable
		}
	default:
		// Non-zero syndrome with even parity: double error detected.
		outcome = DetectedUncorrectable
	}

	for i, pos := range dataPositions {
		if cw.Bit(pos) != 0 {
			data |= 1 << uint(i)
		}
	}
	return data, outcome
}
