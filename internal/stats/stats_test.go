package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !approx(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !approx(got, 2, 1e-12) {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 8, 0, -1}); !approx(got, 4, 1e-12) {
		t.Errorf("GeoMean skipping non-positive = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := GeoMean([]float64{0, -2}); got != 0 {
		t.Errorf("GeoMean(all non-positive) = %v", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance(nil) != 0 {
		t.Error("Variance(nil) != 0")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Errorf("Pearson positive = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !approx(got, -1, 1e-12) {
		t.Errorf("Pearson negative = %v, want -1", got)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	r := xrand.New(123)
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	if got := Pearson(xs, ys); math.Abs(got) > 0.03 {
		t.Errorf("Pearson of independent series = %v, want ~0", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Errorf("Pearson(nil,nil) = %v, want 0", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestPearsonBounds(t *testing.T) {
	r := xrand.New(7)
	f := func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		n := 3 + rr.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64()
			ys[i] = rr.NormFloat64()
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p, want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {-5, 15}, {120, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); !approx(got, 5, 1e-9) {
		t.Errorf("interpolated percentile = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, -1, 2}
	h := Histogram(xs, 0, 1, 2)
	// -1 clamps to bin 0; 2 clamps to bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v, want [3 3]", h)
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatalf("Histogram loses samples: %d != %d", total, len(xs))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		min, max float64
		bins     int
	}{{0, 1, 0}, {1, 1, 4}, {2, 1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Histogram(%v,%v,%v): expected panic", c.min, c.max, c.bins)
				}
			}()
			Histogram(nil, c.min, c.max, c.bins)
		}()
	}
}

func TestSumMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Sum(xs); !approx(got, 11, 1e-12) {
		t.Errorf("Sum = %v", got)
	}
	min, max := MinMax(xs)
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v)", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = (%v, %v)", min, max)
	}
}
