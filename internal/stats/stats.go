// Package stats provides the small statistical toolkit the experiments need:
// means, geometric means, Pearson correlation (used for the paper's
// hotness-AVF ρ≈0.08 and write-ratio-AVF ρ≈-0.32 claims), percentiles, and
// histogram binning (Figure 9b).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries make the
// geometric mean undefined; they are skipped and the mean is computed over
// the remaining entries (0 if none remain).
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the lengths differ, and returns 0 when either series has
// zero variance (correlation undefined).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram bins xs into nbins equal-width bins over [min, max]. Values
// outside the range clamp to the first/last bin. It returns the per-bin
// counts. nbins must be positive and max must exceed min.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	if nbins <= 0 {
		panic("stats: Histogram with nbins <= 0")
	}
	if max <= min {
		panic("stats: Histogram with max <= min")
	}
	counts := make([]int, nbins)
	width := (max - min) / float64(nbins)
	for _, x := range xs {
		b := int((x - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MinMax returns the minimum and maximum of xs, or (0, 0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
