// Package service implements hmemd, the placement-advisory HTTP service:
// a JSON API over the hmem facade that a fleet operator (or the paper's
// imagined OS policy daemon) can query for workload × policy evaluations
// without linking the simulator into their own process.
//
// The service is three cooperating pieces:
//
//   - synchronous evaluation endpoints (/v1/evaluate, /v1/compare) that run
//     on the caller's request goroutine, deduplicated by a process-lifetime
//     singleflight result cache — two concurrent identical requests perform
//     one simulation;
//   - an async job queue (/v1/jobs) for the long-running experiment drivers
//     (regenerating a paper figure can take minutes), bounded in depth and
//     drained by a fixed worker pool, with NDJSON progress streaming;
//   - observability (/metrics in Prometheus text format, /healthz) plus
//     graceful shutdown that drains in-flight jobs while refusing new work.
//
// Everything is stdlib-only, matching the repository's no-dependency rule.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmem"
	"hmem/internal/exec"
	"hmem/internal/obs"
)

// Config tunes a Service. The zero value is usable: default options, 1 MiB
// body limit, a 16-deep job queue drained by one worker.
type Config struct {
	// Defaults are the engine options used when a request carries no
	// overrides. Requests may override RecordsPerCore etc. per call; each
	// distinct resolved option set gets its own engine (and caches).
	Defaults hmem.Options
	// MaxBodyBytes bounds request bodies (<=0 = 1 MiB).
	MaxBodyBytes int64
	// QueueDepth bounds the async job queue (<=0 = 16). A full queue
	// rejects submissions with 429 rather than blocking the client.
	QueueDepth int
	// JobWorkers is the number of goroutines draining the job queue
	// (0 = 1; negative = none, for tests that inspect queued state).
	JobWorkers int
	// JournalDir, when non-empty, enables the durable job journal: every
	// submission and state transition appends one NDJSON line to
	// <dir>/journal.ndjson, and New replays the file so a killed daemon
	// restarts with its jobs intact — terminal jobs answer GET again,
	// interrupted ones re-enqueue exactly once.
	JournalDir string
	// TaskWrap, when set, wraps each job's execution closure. It is the
	// fault-injection seam chaos tests use to make the experiment driver
	// panic, stall, or fail on demand.
	TaskWrap func(func() error) func() error
	// TraceWrap, when set, wraps every trace stream a simulation consumes,
	// keyed by workload name — the per-item fault-injection seam batch chaos
	// tests use (wrap one workload's streams with a chaos injector and only
	// that batch item fails). Installed on every engine this service
	// creates; results computed under a wrap are cached like any other, so
	// this is for tests and fault drills only.
	TraceWrap func(workloadName string, s hmem.TraceStream) hmem.TraceStream
	// WrapJournalWriter, when set, decorates the journal's append writer
	// (fault-injection seam for disk-failure tests).
	WrapJournalWriter func(io.Writer) io.Writer
	// TraceBuffer is the capacity of the in-memory span ring buffer behind
	// GET /v1/jobs/{id}/trace (<=0 = 4096 spans). One ring serves every job;
	// spans carry the job id as their trace id.
	TraceBuffer int
	// SpanWriter, when set, additionally streams every finished span as one
	// NDJSON line (hmemd's -trace-log flag). Write failures degrade to the
	// dropped-spans counter; they never fail the traced job.
	SpanWriter io.Writer
	// Role selects clustering: RoleStandalone (default, also ""),
	// RoleCoordinator, or RoleWorker. Standalone behavior is byte-identical
	// to the pre-cluster daemon.
	Role string
	// Cluster tunes the coordinator/worker machinery; ignored when
	// standalone.
	Cluster ClusterConfig
	// Admission tunes the cost-based admission controller (zero value =
	// defaults; see AdmissionConfig).
	Admission AdmissionConfig
}

const (
	defaultMaxBodyBytes = 1 << 20
	defaultQueueDepth   = 16
	defaultTraceBuffer  = 4096
)

// Service is the hmemd HTTP handler plus its job queue and caches. Create
// with New, mount via Handler, stop with Shutdown.
type Service struct {
	cfg Config
	mux *http.ServeMux

	// engines maps an options digest to its long-lived engine so every
	// request shape shares one memoized runner per option set.
	enginesMu sync.Mutex
	engines   map[string]*hmem.Engine
	// enginesByPatch short-circuits engineFor: OptionsPatch value →
	// *patchResolution, skipping the probe engine and digest per request.
	enginesByPatch sync.Map

	// results collapses identical evaluate requests — concurrent and
	// repeated — into one simulation. Keyed by digest|workload|policy.
	results exec.Memo[string, hmem.Result]

	// encodedResults caches the marshaled form of successful results for
	// the batch stream, which would otherwise re-encode each warm hit
	// twice (payload + envelope). Same keys as results, bytes are
	// immutable once stored.
	encodedResults sync.Map

	jobs jobStore

	// queue feeds submitted jobs to the worker pool. Guarded by queueMu so
	// Shutdown can close it exactly once while submissions are in flight.
	queueMu     sync.Mutex
	queue       chan *job
	queueClosed bool
	workers     sync.WaitGroup

	// closing flips at Shutdown: new work is refused with 503 while
	// in-flight requests and queued jobs drain.
	closing atomic.Bool
	// baseCtx cancels job execution when a drain deadline expires.
	baseCtx    context.Context
	cancelBase context.CancelFunc

	// journal is nil unless Config.JournalDir is set.
	journal  *journal
	recovery RecoveryStats

	// jobPanics counts experiment drivers that panicked inside a worker;
	// jobRetries counts interrupted jobs re-enqueued by journal replay.
	jobPanics  atomic.Uint64
	jobRetries atomic.Uint64

	// registry backs /metrics; met holds the daemon's registered families.
	// Engine-level series (hmem_*) land in the same registry because job and
	// evaluate contexts carry it.
	registry *obs.Registry
	met      *serviceMetrics

	// ring buffers every job's spans (trace id = job id); spanExp is the
	// exporter job tracers write to (the ring, plus Config.SpanWriter).
	ring    *obs.Ring
	spanExp obs.Exporter

	// cluster is nil on standalone nodes; see cluster.go.
	cluster *clusterState

	// adm is the cost-based admission controller; resolvedDefaults are the
	// fully-resolved default engine options its cost model prices against.
	adm              *admission
	resolvedDefaults hmem.Options
}

// New builds a Service and starts its job workers.
func New(cfg Config) (*Service, error) {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	workers := cfg.JobWorkers
	if workers == 0 {
		workers = 1
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = defaultTraceBuffer
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	s := &Service{
		cfg:        cfg,
		engines:    map[string]*hmem.Engine{},
		baseCtx:    baseCtx,
		cancelBase: cancel,
		registry:   reg,
		met:        newServiceMetrics(reg),
		ring:       obs.NewRing(cfg.TraceBuffer),
	}
	s.spanExp = obs.Exporter(s.ring)
	if cfg.SpanWriter != nil {
		s.spanExp = obs.Multi{s.ring, obs.NewNDJSON(cfg.SpanWriter)}
	}
	// Clustering first: engines created below may need the coordinator's
	// delegate installed from their very first use.
	if err := s.initCluster(); err != nil {
		cancel()
		return nil, err
	}
	// Validate the configured defaults once, up front: a bad default option
	// set should fail service start, not every request. The resolved option
	// set anchors the admission cost model's unit (one default evaluate).
	defEngine, _, err := s.engineFor(nil)
	if err != nil {
		cancel()
		s.stopCluster()
		return nil, fmt.Errorf("service: invalid default options: %w", err)
	}
	s.resolvedDefaults = defEngine.Options()
	s.adm = newAdmission(cfg.Admission)
	s.jobs.init()

	// Replay the journal (if configured) before anything can submit or run:
	// restored jobs must be visible, and interrupted ones re-enqueued, ahead
	// of any new traffic. A missing/corrupt journal dir fails startup —
	// silently running without the durability the operator asked for would
	// be worse than not starting.
	var requeue []*job
	if cfg.JournalDir != "" {
		// The replay runs under a "startup"-trace span so operators tailing
		// the span log (-trace-log) see recovery cost and outcome like any
		// other phase; attrs carry what compaction and replay found.
		tr := obs.NewTracer("startup", s.spanExp)
		_, sp := obs.Start(obs.WithTracer(context.Background(), tr), "journal.replay")
		jl, recs, jstats, err := openJournal(cfg.JournalDir, cfg.WrapJournalWriter)
		if err != nil {
			cancel()
			return nil, err
		}
		s.journal = jl
		s.recovery.CorruptLines = jstats.corruptLines
		s.recovery.CompactedRecords = jstats.compacted
		requeue = s.replayJournal(recs)
		sp.SetAttrs(
			obs.Int("restored", int64(s.recovery.Restored)),
			obs.Int("requeued", int64(s.recovery.Requeued)),
			obs.Int("corrupt_lines", int64(s.recovery.CorruptLines)),
			obs.Int("compacted_records", int64(s.recovery.CompactedRecords)))
		sp.End()
		s.met.spansDropped.Add(tr.Dropped())
	}
	// The queue must hold every replayed job even when there are more of
	// them than QueueDepth, or replay would deadlock before workers start.
	depth := cfg.QueueDepth
	if len(requeue) > depth {
		depth = len(requeue)
	}
	s.queue = make(chan *job, depth)
	for _, j := range requeue {
		s.queue <- j
	}

	s.mux = s.routes()
	for i := 0; i < workers; i++ {
		s.workers.Add(1)
		go s.runJobs()
	}
	return s, nil
}

// Recovery reports what the startup journal replay restored. Zero when no
// journal is configured (or it was empty).
func (s *Service) Recovery() RecoveryStats { return s.recovery }

// Handler returns the root HTTP handler (all routes, with the metrics
// middleware applied).
func (s *Service) Handler() http.Handler { return s.instrument(s.mux) }

// Shutdown stops accepting new work (evaluations and job submissions get
// 503), waits for queued and in-flight jobs to drain, and — if ctx expires
// first — cancels job contexts so workers stop starting new simulations.
// It is safe to call once; the HTTP server's own Shutdown handles in-flight
// synchronous requests.
func (s *Service) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.queueMu.Lock()
	if !s.queueClosed {
		s.queueClosed = true
		close(s.queue)
	}
	s.queueMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancelBase()
		s.stopCluster()
		s.journal.close()
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel the job context so in-flight drivers stop
		// launching new simulations, then wait for the workers to notice.
		s.cancelBase()
		<-done
		s.stopCluster()
		s.journal.close()
		return ctx.Err()
	}
}

// routes wires the API. Go 1.22 pattern routing gives us method dispatch
// and path values without a router dependency.
func (s *Service) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("POST /v1/cluster/register", s.handleClusterRegister)
	mux.HandleFunc("POST /v1/cluster/deregister", s.handleClusterDeregister)
	mux.HandleFunc("GET /v1/cluster/workers", s.handleClusterWorkers)
	mux.HandleFunc("POST /v1/cluster/shard", s.handleClusterShard)
	mux.HandleFunc("GET /v1/cluster/cache/{key}", s.handleClusterCache)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// --- wire types ---

// EvaluateRequest asks for one workload × policy evaluation.
type EvaluateRequest struct {
	Workload string          `json:"workload"`
	Policy   hmem.PolicyName `json:"policy"`
	Options  *OptionsPatch   `json:"options,omitempty"`
}

// CompareRequest asks for one workload under several policies.
type CompareRequest struct {
	Workload string            `json:"workload"`
	Policies []hmem.PolicyName `json:"policies"`
	Options  *OptionsPatch     `json:"options,omitempty"`
}

// OptionsPatch is the subset of engine options a request may override.
// Omitted (zero) fields keep the server's defaults. Parallel is
// deliberately absent: it never changes results, only scheduling, and
// letting clients set it would fragment the result cache.
type OptionsPatch struct {
	ScaleDiv       int    `json:"scale_div,omitempty"`
	RecordsPerCore int    `json:"records_per_core,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	FaultTrials    int    `json:"fault_trials,omitempty"`
	// Topology selects the memory topology by name; GET /v1/topologies
	// lists the choices. Empty keeps the server default (hbm-ddr).
	Topology string `json:"topology,omitempty"`
}

func (p *OptionsPatch) apply(o hmem.Options) hmem.Options {
	if p == nil {
		return o
	}
	if p.ScaleDiv > 0 {
		o.ScaleDiv = p.ScaleDiv
	}
	if p.RecordsPerCore > 0 {
		o.RecordsPerCore = p.RecordsPerCore
	}
	if p.Seed != 0 {
		o.Seed = p.Seed
	}
	if p.FaultTrials > 0 {
		o.FaultTrials = p.FaultTrials
	}
	if p.Topology != "" {
		o.Topology = p.Topology
	}
	return o
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// --- engines and the result cache ---

// optionsDigest canonically fingerprints a resolved option set. Parallel is
// normalized out: it only changes scheduling, never a result, so requests
// differing only in worker count share cache entries.
func optionsDigest(o hmem.Options) string {
	o.Parallel = 0
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", o)))
	return hex.EncodeToString(sum[:8])
}

// engineFor returns the process-lifetime engine for an option patch,
// creating it on first use. The digest of the engine's resolved options is
// the cache-key prefix for its results.
//
// The patch → (engine, digest) resolution is cached: OptionsPatch is a
// small comparable struct, and resolving it from scratch (a probe engine
// plus a reflective digest) per request dominated the warm path once
// batches carried many items per request. Entries are keyed by patch
// value — distinct patches resolving to the same options share the engine
// through the digest map as before.
func (s *Service) engineFor(patch *OptionsPatch) (*hmem.Engine, string, error) {
	key := OptionsPatch{}
	if patch != nil {
		key = *patch
	}
	if v, ok := s.enginesByPatch.Load(key); ok {
		r := v.(*patchResolution)
		return r.engine, r.digest, nil
	}
	opts := s.cfg.Defaults
	if patch != nil {
		opts = patch.apply(opts)
	}
	e, digest, err := s.engineForOptions(opts)
	if err != nil {
		return nil, "", err
	}
	s.enginesByPatch.Store(key, &patchResolution{engine: e, digest: digest})
	return e, digest, nil
}

// patchResolution is one cached engineFor answer.
type patchResolution struct {
	engine *hmem.Engine
	digest string
}

// engineForOptions is engineFor on a fully-resolved option set — also the
// entry workers use to rebuild a shard's engine from its wire options. On
// coordinators every new engine gets the cluster delegate, so its expensive
// blocks fan out to workers from the first request.
func (s *Service) engineForOptions(opts hmem.Options) (*hmem.Engine, string, error) {
	probe, err := hmem.NewEngine(&opts)
	if err != nil {
		return nil, "", err
	}
	digest := optionsDigest(probe.Options())
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	if e, ok := s.engines[digest]; ok {
		return e, digest, nil
	}
	if s.cluster != nil && s.cluster.sched != nil {
		d, err := newClusterDelegate(s, probe.Options(), digest)
		if err != nil {
			return nil, "", err
		}
		probe.SetDelegate(d)
	}
	if s.cfg.TraceWrap != nil {
		probe.SetTraceWrap(s.cfg.TraceWrap)
	}
	s.engines[digest] = probe
	return probe, digest, nil
}

// engineStats sums the memo counters of every engine (for /metrics).
func (s *Service) engineStats() exec.MemoStats {
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	var total exec.MemoStats
	for _, e := range s.engines {
		total = total.Add(e.CacheStats())
	}
	return total
}

// TraceStats sums the trace-delivery counters of every engine: generator
// runs (opens) versus simulations served a coalesced replay (hits). Feeds
// hmemd_trace_opens_total / hmemd_coalesce_hits_total and the coalescing
// correctness tests.
func (s *Service) TraceStats() hmem.TraceStats {
	s.enginesMu.Lock()
	defer s.enginesMu.Unlock()
	var total hmem.TraceStats
	for _, e := range s.engines {
		total = total.Add(e.TraceStats())
	}
	return total
}

// resultKey is the result-cache key for one evaluation; the admission cost
// model probes the same key to price cache hits as free.
func resultKey(digest, workloadName string, policy hmem.PolicyName) string {
	return digest + "|" + workloadName + "|" + string(policy)
}

// costUnit prices one evaluation of the given resolved options in units of a
// default-shaped evaluation: simulation time scales with the trace length
// (records per core) and the fault-study trial count, weighted evenly.
func (s *Service) costUnit(opts hmem.Options) float64 {
	u := 0.0
	if d := s.resolvedDefaults.RecordsPerCore; d > 0 {
		u += 0.5 * float64(opts.RecordsPerCore) / float64(d)
	} else {
		u += 0.5
	}
	if d := s.resolvedDefaults.FaultTrials; d > 0 {
		u += 0.5 * float64(opts.FaultTrials) / float64(d)
	} else {
		u += 0.5
	}
	return u
}

// evaluateCost prices one evaluate request: a result already finished or in
// flight shares existing work and is free; fresh work costs one unit scaled
// by the request's options.
func (s *Service) evaluateCost(digest, workloadName string, policy hmem.PolicyName, opts hmem.Options) float64 {
	if s.results.Known(resultKey(digest, workloadName, policy)) {
		return 0
	}
	return s.costUnit(opts)
}

// jobCost prices one experiment job: a flat multiple of the unit, since a
// figure driver fans out to many evaluations.
func (s *Service) jobCost(opts hmem.Options) float64 {
	return s.adm.jobFactor * s.costUnit(opts)
}

// evaluateCached runs one evaluation through the result cache: concurrent
// and repeated identical requests share a single simulation.
func (s *Service) evaluateCached(ctx context.Context, e *hmem.Engine, digest, workloadName string, policy hmem.PolicyName) (hmem.Result, error) {
	key := resultKey(digest, workloadName, policy)
	return s.results.DoCtx(ctx, key, func() (hmem.Result, error) {
		// Background, not ctx: the result is shared with every requester of
		// the key, so one caller's cancellation must not be cached. The
		// registry rides along so engine metrics (hmem_*) land on /metrics.
		return e.Evaluate(obs.WithRegistry(context.Background(), s.registry), workloadName, policy)
	})
}

// ResultCacheStats exposes the evaluate-cache counters (tests and /metrics).
func (s *Service) ResultCacheStats() exec.MemoStats { return s.results.Stats() }

// --- validation ---

// knownTargets holds the valid workload and policy names, built once: the
// lists are static, and rebuilding them per validation was a measurable
// slice of the warm request path once batches multiplied validations per
// request.
var (
	knownOnce      sync.Once
	knownWorkloads map[string]bool
	knownPolicies  map[hmem.PolicyName]bool
)

func buildKnownTargets() {
	knownWorkloads = make(map[string]bool)
	for _, w := range hmem.Workloads() {
		knownWorkloads[w] = true
	}
	for _, b := range hmem.Benchmarks() {
		knownWorkloads[b] = true
	}
	knownPolicies = make(map[hmem.PolicyName]bool, len(hmem.Policies()))
	for _, q := range hmem.Policies() {
		knownPolicies[q] = true
	}
}

func knownWorkload(name string) bool {
	knownOnce.Do(buildKnownTargets)
	return knownWorkloads[name]
}

func knownPolicy(p hmem.PolicyName) bool {
	knownOnce.Do(buildKnownTargets)
	return knownPolicies[p]
}

// validateTarget 400s unknown workloads/policies before any simulation (or
// cache entry) happens, with the valid choices in the message.
func validateTarget(workloadName string, policies ...hmem.PolicyName) error {
	if !knownWorkload(workloadName) {
		return fmt.Errorf("unknown workload %q (GET /v1/workloads lists the choices)", workloadName)
	}
	for _, p := range policies {
		if !knownPolicy(p) {
			return fmt.Errorf("unknown policy %q (GET /v1/policies lists the choices)", p)
		}
	}
	return nil
}

// --- handlers ---

func (s *Service) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"workloads":  hmem.Workloads(),
		"benchmarks": hmem.Benchmarks(),
	})
}

func (s *Service) handlePolicies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"policies": hmem.Policies()})
}

// handleTopologies lists the selectable memory topologies (built-in plus any
// registered from files at startup), with tier summaries at the server's
// default capacity scale.
func (s *Service) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	topos, err := hmem.DescribeTopologies(s.cfg.Defaults.ScaleDiv)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"topologies": topos})
}

func (s *Service) handleExperiments(w http.ResponseWriter, r *http.Request) {
	e, _, err := s.engineFor(nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": e.ExperimentIDs()})
}

func (s *Service) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfClosing(w) {
		return
	}
	var req EvaluateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if err := validateTarget(req.Workload, req.Policy); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, digest, err := s.engineFor(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cost := s.evaluateCost(digest, req.Workload, req.Policy, e.Options())
	if !s.admitCost(w, cost) {
		return
	}
	start := time.Now()
	res, err := s.evaluateCached(r.Context(), e, digest, req.Workload, req.Policy)
	s.adm.release(cost, time.Since(start))
	if err != nil {
		writeEvaluationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfClosing(w) {
		return
	}
	var req CompareRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Policies) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("policies must be non-empty"))
		return
	}
	if err := validateTarget(req.Workload, req.Policies...); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, digest, err := s.engineFor(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Compare is priced per policy: policies whose result is already cached
	// (or in flight) are free, the rest cost one unit each.
	var cost float64
	for _, p := range req.Policies {
		cost += s.evaluateCost(digest, req.Workload, p, e.Options())
	}
	if !s.admitCost(w, cost) {
		return
	}
	start := time.Now()
	// Compare goes policy-by-policy through the same result cache the
	// evaluate endpoint uses, so mixed evaluate/compare traffic shares
	// simulations. The engine's own memoization already collapses the
	// underlying profiling run.
	results, err := exec.Map(r.Context(), e.Options().Parallel, len(req.Policies), func(i int) (hmem.Result, error) {
		return s.evaluateCached(r.Context(), e, digest, req.Workload, req.Policies[i])
	})
	s.adm.release(cost, time.Since(start))
	if err != nil {
		writeEvaluationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// handleHealthz reports the service's rung on the ok → degraded → shedding
// ladder (draining, during shutdown, outranks them all). Degraded still
// answers 200 — the node serves cheap work and sync evaluations, it has only
// closed the expensive job endpoint; shedding and draining answer 503 so
// load balancers rotate traffic away.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.currentHealth()
	code := http.StatusOK
	if st == healthShedding || st == healthDraining {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": healthName(st)})
}

// currentHealth folds shutdown state over the admission controller's ladder.
func (s *Service) currentHealth() int {
	if s.closing.Load() {
		return healthDraining
	}
	return s.adm.healthState()
}

// refuseIfClosing 503s work submitted after Shutdown began.
func (s *Service) refuseIfClosing(w http.ResponseWriter) bool {
	if s.closing.Load() {
		writeRetryableError(w, http.StatusServiceUnavailable, 1, errors.New("server is draining"))
		return true
	}
	return false
}

// admitCost runs one costed request through health gating and budget
// admission. In the shedding state all fresh work (cost > 0) is refused with
// 503 — cached answers still flow; under that, the budget sheds the excess
// with 429. Both carry a drain-rate-derived Retry-After. On true the caller
// owes s.adm.release(cost, elapsed).
func (s *Service) admitCost(w http.ResponseWriter, cost float64) bool {
	if cost > 0 && s.adm.healthState() == healthShedding {
		secs := retryAfterSeconds(s.adm.inflight()-s.adm.budget+cost, s.adm.drain.rate())
		writeRetryableError(w, http.StatusServiceUnavailable, secs,
			errors.New("server is shedding load"))
		return false
	}
	ok, secs := s.adm.admit(cost)
	if !ok {
		writeRetryableError(w, http.StatusTooManyRequests, secs,
			errors.New("admission: in-flight cost over budget; retry later"))
		return false
	}
	return true
}

// --- plumbing ---

// readJSON decodes a bounded request body, rejecting trailing garbage and
// unknown fields (a typoed option name should 400, not silently default).
func (s *Service) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %v", err))
		return false
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		writeError(w, http.StatusBadRequest, errors.New("invalid request body: trailing data"))
		return false
	}
	return true
}

// writeEvaluationError maps engine failures: caller cancellation is 499-ish
// (client gone, nothing to write), everything else is a 500.
func writeEvaluationError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The client went away; any status we write is unread. Use 499 in
		// the nginx tradition so metrics distinguish it from server faults.
		w.WriteHeader(499)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// writeRetryableError is writeError plus a Retry-After hint in seconds, for
// transient refusals (cost shed, queue pressure, draining) the client should
// back off from and retry rather than surface. Callers derive the hint from
// the measured drain rate via retryAfterSeconds; 1 is the honest floor.
func writeRetryableError(w http.ResponseWriter, code, retryAfterSecs int, err error) {
	if retryAfterSecs < 1 {
		retryAfterSecs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs))
	writeError(w, code, err)
}

// --- metrics middleware ---

// instrument wraps the mux with request counting and latency observation.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.met.observe(routeLabel(r), rec.code, time.Since(start))
	})
}

// routeLabel collapses paths with IDs so metrics stay low-cardinality.
func routeLabel(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		if strings.HasSuffix(path, "/trace") {
			path = "/v1/jobs/{id}/trace"
		} else {
			path = "/v1/jobs/{id}"
		}
	}
	if strings.HasPrefix(path, "/v1/cluster/cache/") {
		path = "/v1/cluster/cache/{key}"
	}
	return r.Method + " " + path
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so NDJSON streaming works through
// the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
