package service

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmem/internal/chaos"
	"hmem/internal/obs"
)

// TestSpanWriterFaultDegradesToDroppedCounter: a failing NDJSON span sink —
// a full disk under -trace-log — must cost spans, never jobs. The fault is
// injected into the span writer via the chaos injector; the job still
// completes, the loss is counted on /metrics, and later spans (and the
// in-memory ring) are unaffected.
func TestSpanWriterFaultDegradesToDroppedCounter(t *testing.T) {
	inj, err := chaos.New(chaos.Plan{Write: []chaos.WriteFault{
		{AtWrite: 0, Mode: chaos.ModeError},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.SpanWriter = inj.Writer(io.Discard)
	svc, c := newTestServer(t, cfg)
	ctx := context.Background()

	// hwcost emits exactly one span; its export hits the poisoned write 0.
	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "hwcost"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, c, st.ID); got.State != JobDone || got.Result == nil {
		t.Fatalf("job with failing span sink = %s (%s), want done with result", got.State, got.Error)
	}
	page := metricsPage(t, c.BaseURL)
	if !strings.Contains(page, "hmemd_spans_dropped_total 1") {
		t.Fatalf("metrics missing dropped span:\n%s", page)
	}
	if got := inj.Stats().Write; got != 1 {
		t.Fatalf("injected write faults = %d, want 1", got)
	}
	// The multi-exporter attempts every sink: the ring kept the span the
	// writer lost, so the trace endpoint still serves it.
	spans, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "experiment.hwcost" {
		t.Fatalf("ring spans after writer fault = %+v, want the hwcost span", spans)
	}

	// A second job writes past the injected fault: no further drops.
	st2, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, c, st2.ID); got.State != JobDone {
		t.Fatalf("follow-up job = %s (%s), want done", got.State, got.Error)
	}
	page = metricsPage(t, c.BaseURL)
	if !strings.Contains(page, "hmemd_spans_dropped_total 1") {
		t.Fatalf("dropped counter moved without a fault:\n%s", page)
	}
	_ = svc
}

// migrationJobConfig is a config whose jobs run real simulations with many
// migration epochs quickly: one low-intensity workload, a small trace, and
// a migration interval far below the default so epoch boundaries are dense.
func migrationJobConfig() Config {
	cfg := tinyConfig()
	cfg.Defaults.Workloads = []string{"astar"}
	cfg.Defaults.FCIntervalCycles = 20000
	cfg.Defaults.MEAIntervalCycles = 5000
	return cfg
}

// TestJobProgressAndTrace is the observability acceptance test: a submitted
// migration job exposes live progress while running — in GET /v1/jobs/{id}
// and in the watch stream — and GET /v1/jobs/{id}/trace afterwards returns
// the run's spans, including at least one sim.epoch span per simulated
// epoch boundary.
func TestJobProgressAndTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := migrationJobConfig()
	// The tiny job finishes in tens of milliseconds — far too fast for a
	// polling GET to reliably land inside the running window. TaskWrap (the
	// same seam the chaos suite uses) holds the job open after its driver
	// returns: state is still "running" and the last progress report is
	// still live, so the mid-run assertions below are deterministic.
	held := make(chan struct{})
	release := make(chan struct{})
	cfg.TaskWrap = func(run func() error) func() error {
		return func() error {
			err := run()
			close(held)
			<-release
			return err
		}
	}
	_, c := newTestServer(t, cfg)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "figure12"})
	if err != nil {
		t.Fatal(err)
	}

	// Watch in the background, recording every progress heartbeat.
	type watchOut struct {
		final      JobStatus
		err        error
		heartbeats []obs.Progress
	}
	watchCh := make(chan watchOut, 1)
	go func() {
		var out watchOut
		out.final, out.err = c.WaitJob(ctx, st.ID, func(ev JobEvent) {
			if ev.Progress != nil {
				out.heartbeats = append(out.heartbeats, *ev.Progress)
			}
		})
		watchCh <- out
	}()

	// With the job held mid-run, the plain GET must expose live progress.
	<-held
	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobRunning || got.Progress == nil {
		t.Fatalf("held job = %s progress=%+v (%s), want running with progress", got.State, got.Progress, got.Error)
	}
	if got.Progress.Phase == "" {
		t.Fatalf("live progress has no phase: %+v", got.Progress)
	}
	close(release)

	out := <-watchCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.final.State != JobDone {
		t.Fatalf("job = %s (%s), want done", out.final.State, out.final.Error)
	}
	if out.final.Progress != nil {
		t.Fatalf("terminal status still carries progress: %+v", out.final.Progress)
	}
	if len(out.heartbeats) == 0 {
		t.Fatal("watch stream delivered no progress heartbeats")
	}
	for _, p := range out.heartbeats {
		if p.Percent < 0 || p.Percent > 1 {
			t.Fatalf("heartbeat percent %v out of range", p.Percent)
		}
	}

	spans, err := c.JobTrace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range spans {
		counts[sp.Name]++
	}
	if counts["experiment.figure12"] != 1 {
		t.Fatalf("span census %v: want exactly one experiment.figure12 root", counts)
	}
	if counts["sim.run"] == 0 || counts["exec.task"] == 0 || counts["faultsim.study"] == 0 {
		t.Fatalf("span census %v: missing engine spans", counts)
	}
	// The migration run crosses many interval boundaries at this interval;
	// each one must have closed an epoch span.
	if counts["sim.epoch"] < 2 {
		t.Fatalf("span census %v: want >=2 sim.epoch spans from the migration run", counts)
	}
}

// TestRestartResetsProgress: progress is deliberately in-memory only. A
// daemon killed mid-job replays the journal, re-enqueues the job, and the
// restored job reports no progress until its re-run starts reporting anew.
func TestRestartResetsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	cfg := migrationJobConfig()
	cfg.JournalDir = dir
	// Hold the job open mid-run (same seam as TestJobProgressAndTrace) so
	// the journal snapshot below is taken while the job is reliably still
	// running — not after a fast run has already journalled its result.
	held := make(chan struct{})
	release := make(chan struct{})
	cfg.TaskWrap = func(run func() error) func() error {
		return func() error {
			err := run()
			close(held)
			<-release
			return err
		}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		// The abandoned daemon drains on its own time after the test body.
		ts.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		_ = svc.Shutdown(shutdownCtx)
	}()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "figure12"})
	if err != nil {
		t.Fatal(err)
	}
	<-held
	got, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobRunning || got.Progress == nil {
		t.Fatalf("held job = %s progress=%+v, want running with progress", got.State, got.Progress)
	}

	// Crash image: copy the journal as it stands mid-run (the live daemon
	// keeps its own file; the copy is the state a kill would leave behind)
	// and start a fresh daemon on it.
	data, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, journalFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := migrationJobConfig()
	cfg2.JournalDir = dir2
	cfg2.JobWorkers = -1 // inspect the replayed state before anything re-runs
	svc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc2.Shutdown(shutdownCtx)
	}()

	if rec := svc2.Recovery(); rec.Requeued != 1 {
		t.Fatalf("recovery = %+v, want the interrupted job requeued", rec)
	}
	j, ok := svc2.jobs.get(st.ID)
	if !ok {
		t.Fatalf("job %s missing after replay", st.ID)
	}
	restored := svc2.jobs.statusOf(j)
	if restored.State != JobQueued {
		t.Fatalf("replayed job state = %s, want queued", restored.State)
	}
	if restored.Progress != nil {
		t.Fatalf("replayed job still carries pre-crash progress: %+v", restored.Progress)
	}
}
