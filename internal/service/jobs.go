package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hmem/internal/report"
)

// Job states. A job moves queued -> running -> done|failed; cancelled marks
// jobs still queued when a drain deadline expired.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobRequest submits an experiment run: one of the table/figure drivers
// listed by GET /v1/experiments, optionally with option overrides.
type JobRequest struct {
	Experiment string        `json:"experiment"`
	Options    *OptionsPatch `json:"options,omitempty"`
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID         string        `json:"id"`
	Experiment string        `json:"experiment"`
	State      string        `json:"state"`
	Error      string        `json:"error,omitempty"`
	Result     *report.Table `json:"result,omitempty"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
}

// JobEvent is one line of the NDJSON progress stream: a state transition.
type JobEvent struct {
	Seq   int    `json:"seq"`
	JobID string `json:"job_id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// job is the server-side record. All fields are guarded by the store mutex;
// notify is closed-and-replaced on every event so watchers can block on it.
type job struct {
	id         string
	experiment string
	options    *OptionsPatch

	state      string
	err        string
	result     *report.Table
	createdAt  time.Time
	startedAt  *time.Time
	finishedAt *time.Time

	events []JobEvent
	notify chan struct{}
}

func (j *job) status() JobStatus {
	return JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		State:      j.state,
		Error:      j.err,
		Result:     j.result,
		CreatedAt:  j.createdAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
	}
}

func terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCancelled
}

// jobStore owns every job ever submitted (jobs are few and small — the
// result tables — so process-lifetime retention is fine for an advisory
// daemon; a restart clears them).
type jobStore struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []*job
	next  int
}

func (st *jobStore) init() {
	st.byID = map[string]*job{}
}

func (st *jobStore) add(experiment string, options *OptionsPatch) *job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	j := &job{
		id:         fmt.Sprintf("job-%d", st.next),
		experiment: experiment,
		options:    options,
		state:      JobQueued,
		createdAt:  time.Now().UTC(),
		notify:     make(chan struct{}),
	}
	j.events = append(j.events, JobEvent{Seq: 1, JobID: j.id, State: JobQueued})
	st.byID[j.id] = j
	st.order = append(st.order, j)
	return j
}

// statusOf snapshots a job under the store lock (workers mutate jobs
// concurrently with handlers reading them).
func (st *jobStore) statusOf(j *job) JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return j.status()
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}

func (st *jobStore) list() []JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]JobStatus, 0, len(st.order))
	for _, j := range st.order {
		out = append(out, j.status())
	}
	return out
}

// transition records a state change, appends the event, and wakes watchers.
func (st *jobStore) transition(j *job, state, errMsg string, result *report.Table) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now().UTC()
	j.state = state
	j.err = errMsg
	if result != nil {
		j.result = result
	}
	switch state {
	case JobRunning:
		j.startedAt = &now
	case JobDone, JobFailed, JobCancelled:
		j.finishedAt = &now
	}
	j.events = append(j.events, JobEvent{
		Seq: len(j.events) + 1, JobID: j.id, State: state, Error: errMsg,
	})
	old := j.notify
	j.notify = make(chan struct{})
	close(old)
}

// snapshotEvents returns the events at or after fromSeq plus the channel
// that closes on the next transition.
func (st *jobStore) snapshotEvents(j *job, fromSeq int) ([]JobEvent, string, chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []JobEvent
	for _, ev := range j.events {
		if ev.Seq >= fromSeq {
			out = append(out, ev)
		}
	}
	return out, j.state, j.notify
}

// countByState tallies jobs per state (for /metrics).
func (st *jobStore) countByState() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]int{
		JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0, JobCancelled: 0,
	}
	for _, j := range st.order {
		out[j.state]++
	}
	return out
}

// --- handlers ---

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfClosing(w) {
		return
	}
	var req JobRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	e, _, err := s.engineFor(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	known := false
	for _, id := range e.ExperimentIDs() {
		if id == req.Experiment {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown experiment %q (GET /v1/experiments lists the choices)", req.Experiment))
		return
	}

	j := s.jobs.add(req.Experiment, req.Options)
	// Enqueue under the mutex so a concurrent Shutdown can't close the
	// channel between our closing-check and the send.
	s.queueMu.Lock()
	if s.queueClosed {
		s.queueMu.Unlock()
		s.jobs.transition(j, JobCancelled, "server is draining", nil)
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	select {
	case s.queue <- j:
		s.queueMu.Unlock()
	default:
		s.queueMu.Unlock()
		s.jobs.transition(j, JobCancelled, "job queue full", nil)
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job queue full (depth %d); retry later", s.cfg.QueueDepth))
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.statusOf(j))
}

func (s *Service) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("watch") != "" {
		s.watchJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.statusOf(j))
}

// watchJob streams the job's state transitions as NDJSON until the job
// reaches a terminal state or the client disconnects. The final status
// (with the result table) is one plain GET away once the stream ends.
func (s *Service) watchJob(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	nextSeq := 1
	for {
		events, state, notify := s.jobs.snapshotEvents(j, nextSeq)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
			nextSeq = ev.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// runJobs is one worker draining the queue until Shutdown closes it.
func (s *Service) runJobs() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.baseCtx.Err() != nil {
			// Drain deadline already passed: mark the remainder cancelled.
			s.jobs.transition(j, JobCancelled, "server shut down before the job started", nil)
			continue
		}
		s.jobs.transition(j, JobRunning, "", nil)
		e, _, err := s.engineFor(j.options)
		if err != nil {
			s.jobs.transition(j, JobFailed, err.Error(), nil)
			continue
		}
		table, err := e.RunExperiment(s.baseCtx, j.experiment)
		if err != nil {
			s.jobs.transition(j, JobFailed, err.Error(), nil)
			continue
		}
		s.jobs.transition(j, JobDone, "", table)
	}
}
