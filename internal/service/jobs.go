package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hmem/internal/exec"
	"hmem/internal/obs"
	"hmem/internal/report"
)

// Job states. A job moves queued -> running -> done|failed; cancelled marks
// jobs still queued when a drain deadline expired.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// JobRequest submits an experiment run: one of the table/figure drivers
// listed by GET /v1/experiments, optionally with option overrides.
type JobRequest struct {
	Experiment string        `json:"experiment"`
	Options    *OptionsPatch `json:"options,omitempty"`
	// TimeoutMS, when positive, bounds the job's execution: a run that
	// exceeds it fails with a deadline error instead of occupying a worker
	// forever.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey makes the submission safe to retry: re-submitting the
	// same key with the same request returns the existing job instead of
	// enqueueing a duplicate; the same key with a different request is a
	// 409 conflict. A key held by a cancelled job — one rejected for queue
	// pressure or draining before it ever ran — is freed, so the retry that
	// rejection invited creates a fresh job rather than being handed the
	// dead one.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// fingerprint canonically identifies the request's content, for detecting
// idempotency-key reuse across different requests.
func (r JobRequest) fingerprint() string {
	opts, _ := json.Marshal(r.Options)
	return fmt.Sprintf("%s|%s|%d", r.Experiment, opts, r.TimeoutMS)
}

// JobStatus is the wire form of a job. Progress is only present while the
// job is running; it is in-memory only (never journaled), so a daemon
// restart resets it along with the run it described.
type JobStatus struct {
	ID         string        `json:"id"`
	Experiment string        `json:"experiment"`
	State      string        `json:"state"`
	Error      string        `json:"error,omitempty"`
	Result     *report.Table `json:"result,omitempty"`
	Progress   *obs.Progress `json:"progress,omitempty"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
}

// JobEvent is one line of the NDJSON progress stream: a state transition, or
// — when Progress is set — a progress heartbeat within the running state
// (heartbeats reuse the seq of the transition they elaborate).
type JobEvent struct {
	Seq      int           `json:"seq"`
	JobID    string        `json:"job_id"`
	State    string        `json:"state"`
	Error    string        `json:"error,omitempty"`
	Progress *obs.Progress `json:"progress,omitempty"`
}

// job is the server-side record. All fields are guarded by the store mutex;
// notify is closed-and-replaced on every event so watchers can block on it.
type job struct {
	id          string
	experiment  string
	options     *OptionsPatch
	timeoutMS   int64
	idemKey     string
	fingerprint string

	state      string
	err        string
	result     *report.Table
	progress   *obs.Progress
	createdAt  time.Time
	startedAt  *time.Time
	finishedAt *time.Time

	events []JobEvent
	notify chan struct{}
}

func (j *job) status() JobStatus {
	return JobStatus{
		ID:         j.id,
		Experiment: j.experiment,
		State:      j.state,
		Error:      j.err,
		Result:     j.result,
		Progress:   j.progress,
		CreatedAt:  j.createdAt,
		StartedAt:  j.startedAt,
		FinishedAt: j.finishedAt,
	}
}

func terminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCancelled
}

// jobStore owns every job ever submitted (jobs are few and small — the
// result tables — so process-lifetime retention is fine for an advisory
// daemon; with a journal configured, a restart restores them).
type jobStore struct {
	mu    sync.Mutex
	byID  map[string]*job
	byKey map[string]*job // idempotency key -> job
	order []*job
	next  int
}

func (st *jobStore) init() {
	st.byID = map[string]*job{}
	st.byKey = map[string]*job{}
}

// errKeyConflict marks an idempotency key reused with a different request.
var errKeyConflict = errors.New("idempotency key already used by a different request")

// add creates a queued job, honoring idempotency keys: re-submitting a key
// with the same fingerprint returns the existing job (existed=true); a
// different fingerprint returns errKeyConflict. The check-and-insert is
// atomic under the store lock so concurrent duplicate submissions collapse
// to one job.
func (st *jobStore) add(req JobRequest) (j *job, existed bool, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fp := req.fingerprint()
	if req.IdempotencyKey != "" {
		// A cancelled job never ran and never will; if it kept its key, the
		// retry a queue-full 429 or draining 503 explicitly invites would get
		// a 200 for work that was silently dropped — so cancellation frees
		// the key (in memory here, and across restarts because replayed
		// cancelled jobs hit this same check).
		if prev, ok := st.byKey[req.IdempotencyKey]; ok && prev.state != JobCancelled {
			if prev.fingerprint != fp {
				return nil, false, errKeyConflict
			}
			return prev, true, nil
		}
	}
	st.next++
	j = &job{
		id:          fmt.Sprintf("job-%d", st.next),
		experiment:  req.Experiment,
		options:     req.Options,
		timeoutMS:   req.TimeoutMS,
		idemKey:     req.IdempotencyKey,
		fingerprint: fp,
		state:       JobQueued,
		createdAt:   time.Now().UTC(),
		notify:      make(chan struct{}),
	}
	j.events = append(j.events, JobEvent{Seq: 1, JobID: j.id, State: JobQueued})
	st.byID[j.id] = j
	if j.idemKey != "" {
		st.byKey[j.idemKey] = j
	}
	st.order = append(st.order, j)
	return j, false, nil
}

// restore inserts a journal-reconstructed job. Replay runs before the
// workers and handlers start, but takes the lock anyway for consistency.
func (st *jobStore) restore(j *job) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.fingerprint = JobRequest{
		Experiment: j.experiment, Options: j.options, TimeoutMS: j.timeoutMS,
	}.fingerprint()
	st.byID[j.id] = j
	if j.idemKey != "" {
		st.byKey[j.idemKey] = j
	}
	st.order = append(st.order, j)
}

// resumeIDs advances the id counter past every restored job so new ids never
// collide with journaled ones.
func (st *jobStore) resumeIDs(maxSeen int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if maxSeen > st.next {
		st.next = maxSeen
	}
}

// statusOf snapshots a job under the store lock (workers mutate jobs
// concurrently with handlers reading them).
func (st *jobStore) statusOf(j *job) JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	return j.status()
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byID[id]
	return j, ok
}

// list returns a newest-first page of job statuses plus the pre-paging
// total. limit <= 0 means "everything from offset"; an offset past the end
// returns an empty page, not an error.
func (st *jobStore) list(limit, offset int) ([]JobStatus, int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	total := len(st.order)
	if offset < 0 {
		offset = 0
	}
	n := total - offset
	if n < 0 {
		n = 0
	}
	if limit > 0 && n > limit {
		n = limit
	}
	out := make([]JobStatus, 0, n)
	// st.order is oldest-first; walk backwards so page 0 is the newest jobs.
	for i := total - 1 - offset; i >= 0 && len(out) < n; i-- {
		out = append(out, st.order[i].status())
	}
	return out, total
}

// transition records a state change, appends the event, and wakes watchers.
// Progress describes the run segment in flight, so every transition clears
// it: a fresh running state starts from nothing, and a terminal state's
// story is its result, not a stale percentage.
func (st *jobStore) transition(j *job, state, errMsg string, result *report.Table) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now().UTC()
	j.state = state
	j.err = errMsg
	j.progress = nil
	if result != nil {
		j.result = result
	}
	switch state {
	case JobRunning:
		j.startedAt = &now
	case JobDone, JobFailed, JobCancelled:
		j.finishedAt = &now
	}
	j.events = append(j.events, JobEvent{
		Seq: len(j.events) + 1, JobID: j.id, State: state, Error: errMsg,
	})
	old := j.notify
	j.notify = make(chan struct{})
	close(old)
}

// setProgress publishes a progress report for a running job and wakes
// watchers. The pointer is replaced, never mutated, so snapshots taken under
// the lock stay immutable afterwards. Reports for a job that already left
// the running state (a straggling worker callback) are dropped.
func (st *jobStore) setProgress(j *job, p obs.Progress) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j.state != JobRunning {
		return
	}
	j.progress = &p
	old := j.notify
	j.notify = make(chan struct{})
	close(old)
}

// snapshotEvents returns the events at or after fromSeq, the current state
// and progress, plus the channel that closes on the next transition or
// progress report.
func (st *jobStore) snapshotEvents(j *job, fromSeq int) ([]JobEvent, string, *obs.Progress, chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []JobEvent
	for _, ev := range j.events {
		if ev.Seq >= fromSeq {
			out = append(out, ev)
		}
	}
	return out, j.state, j.progress, j.notify
}

// oldestQueuedAge reports how long the longest-waiting queued job has been
// waiting (0 when nothing is queued) — the /metrics staleness signal.
func (st *jobStore) oldestQueuedAge() time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	var oldest time.Time
	for _, j := range st.order {
		if j.state == JobQueued && (oldest.IsZero() || j.createdAt.Before(oldest)) {
			oldest = j.createdAt
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest)
}

// countByState tallies jobs per state (for /metrics).
func (st *jobStore) countByState() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]int{
		JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0, JobCancelled: 0,
	}
	for _, j := range st.order {
		out[j.state]++
	}
	return out
}

// --- handlers ---

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfClosing(w) {
		return
	}
	// Jobs are the most expensive thing this daemon runs, so they are the
	// first casualty of degraded health: refuse before even reading the
	// body, with a hint derived from how fast jobs are finishing.
	if st := s.adm.healthState(); st != healthOK {
		writeRetryableError(w, http.StatusServiceUnavailable,
			retryAfterSeconds(1, s.adm.jobsDrain.rate()),
			fmt.Errorf("server is %s; job submission is disabled", healthName(st)))
		return
	}
	var req JobRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	e, _, err := s.engineFor(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	known := false
	for _, id := range e.ExperimentIDs() {
		if id == req.Experiment {
			known = true
			break
		}
	}
	if !known {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown experiment %q (GET /v1/experiments lists the choices)", req.Experiment))
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, errors.New("timeout_ms must be non-negative"))
		return
	}

	j, existed, err := s.jobs.add(req)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if existed {
		// Idempotent replay of a submission we already accepted: report the
		// job as it stands, with 200 distinguishing it from a fresh 202.
		writeJSON(w, http.StatusOK, s.jobs.statusOf(j))
		return
	}
	// Journal before acknowledging: a 202 promises the job survives us.
	s.journal.append(journalRecord{
		Op: "submit", JobID: j.id, At: j.createdAt,
		Experiment: j.experiment, Options: j.options,
		IdemKey: j.idemKey, TimeoutMS: j.timeoutMS,
	})
	// Enqueue under the mutex so a concurrent Shutdown can't close the
	// channel between our closing-check and the send.
	s.queueMu.Lock()
	if s.queueClosed {
		s.queueMu.Unlock()
		s.setJobState(j, JobCancelled, "server is draining", nil)
		writeRetryableError(w, http.StatusServiceUnavailable, 1, errors.New("server is draining"))
		return
	}
	select {
	case s.queue <- j:
		s.queueMu.Unlock()
	default:
		s.queueMu.Unlock()
		s.setJobState(j, JobCancelled, "job queue full", nil)
		// The hint is the measured time for one job to drain from the queue
		// (one slot must free up before a retry can land).
		writeRetryableError(w, http.StatusTooManyRequests,
			retryAfterSeconds(1, s.adm.jobsDrain.rate()),
			fmt.Errorf("job queue full (depth %d); retry later", s.cfg.QueueDepth))
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobs.statusOf(j))
}

// handleListJobs serves a newest-first page of jobs. Without limit/offset
// the full history is returned (backward compatible); job-heavy soak runs
// pass limit so polling the listing stays O(page), not O(jobs ever
// submitted).
func (s *Service) handleListJobs(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jobs, total := s.jobs.list(limit, offset)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "total": total})
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%s must be a non-negative integer, got %q", name, v)
	}
	return n, nil
}

func (s *Service) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	if r.URL.Query().Get("watch") != "" {
		s.watchJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, s.jobs.statusOf(j))
}

// watchJob streams the job's state transitions — interleaved with progress
// heartbeats while it runs — as NDJSON until the job reaches a terminal
// state or the client disconnects. The final status (with the result table)
// is one plain GET away once the stream ends.
func (s *Service) watchJob(w http.ResponseWriter, r *http.Request, j *job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	nextSeq := 1
	var lastProgress *obs.Progress
	for {
		events, state, progress, notify := s.jobs.snapshotEvents(j, nextSeq)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
			nextSeq = ev.Seq + 1
		}
		// setProgress replaces the pointer on every report, so pointer
		// identity is exactly "something new since the last loop".
		if progress != nil && progress != lastProgress {
			lastProgress = progress
			ev := JobEvent{Seq: nextSeq - 1, JobID: j.id, State: state, Progress: progress}
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(state) {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobTrace serves the job's spans still held in the daemon's ring
// buffer (per-job tracers use the job id as trace id, so the snapshot is an
// exact filter). An old job whose spans were overwritten returns an empty
// list, not an error.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %q", r.PathValue("id")))
		return
	}
	spans := s.ring.Snapshot(j.id)
	if spans == nil {
		spans = []obs.SpanData{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace": j.id, "spans": spans})
}

// setJobState applies a state transition and journals it.
func (s *Service) setJobState(j *job, state, errMsg string, result *report.Table) {
	s.jobs.transition(j, state, errMsg, result)
	s.journal.append(journalRecord{
		Op: "state", JobID: j.id, At: time.Now().UTC(),
		State: state, Error: errMsg, Result: result,
	})
}

// panicStackLimit bounds the stack captured into a failed job's error: the
// top frames name the broken invariant, the rest is scheduler noise.
const panicStackLimit = 4096

// runJobs is one worker draining the queue until Shutdown closes it.
func (s *Service) runJobs() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runOneJob(j)
	}
}

// runOneJob executes one job with the failure domain of exactly that job: a
// panicking experiment driver fails its own request with the captured stack
// and the worker moves on; a configured deadline fails a runaway run; both
// leave the daemon healthy.
func (s *Service) runOneJob(j *job) {
	if s.baseCtx.Err() != nil {
		// Drain deadline already passed: mark the remainder cancelled.
		s.setJobState(j, JobCancelled, "server shut down before the job started", nil)
		return
	}
	s.setJobState(j, JobRunning, "", nil)
	e, _, err := s.engineFor(j.options)
	if err != nil {
		s.setJobState(j, JobFailed, err.Error(), nil)
		return
	}
	// An executing job weighs on the admission budget like the fan-out of
	// evaluations it is: sustained job load pushes the node into degraded
	// (new submissions refused) and, at the budget, into shedding. The job
	// itself was 202-acknowledged, so it is charged, never shed.
	cost := s.jobCost(e.Options())
	jobStart := time.Now()
	s.adm.charge(cost)
	defer func() {
		s.adm.release(cost, time.Since(jobStart))
		s.adm.jobsDrain.observe(1)
	}()
	ctx := s.baseCtx
	if j.timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(j.timeoutMS)*time.Millisecond)
		defer cancel()
	}
	// Each job gets its own tracer (trace id = job id) over the shared
	// exporter, so GET /v1/jobs/{id}/trace can filter the ring precisely.
	// Span ends feed the per-phase histogram; progress callbacks feed the
	// job's live progress field.
	tracer := obs.NewTracer(j.id, s.spanExp)
	tracer.OnEnd(func(sd obs.SpanData) {
		s.met.jobPhase.With(sd.Name).Observe(float64(sd.DurationNS) / 1e9)
	})
	ctx = obs.WithTracer(ctx, tracer)
	ctx = obs.WithRegistry(ctx, s.registry)
	ctx = obs.WithProgress(ctx, func(p obs.Progress) { s.jobs.setProgress(j, p) })
	var table *report.Table
	run := func() error {
		var runErr error
		table, runErr = e.RunExperiment(ctx, j.experiment)
		return runErr
	}
	if s.cfg.TaskWrap != nil {
		run = s.cfg.TaskWrap(run)
	}
	err = exec.Protect(run)
	s.met.spansDropped.Add(tracer.Dropped())
	var pe *exec.PanicError
	switch {
	case errors.As(err, &pe):
		s.jobPanics.Add(1)
		stack := pe.Stack
		if len(stack) > panicStackLimit {
			stack = stack[:panicStackLimit] + "\n[stack truncated]"
		}
		s.setJobState(j, JobFailed, fmt.Sprintf("panic: %v\n%s", pe.Value, stack), nil)
	case errors.Is(err, context.DeadlineExceeded) && j.timeoutMS > 0 && s.baseCtx.Err() == nil:
		s.setJobState(j, JobFailed, fmt.Sprintf("job deadline (%dms) exceeded", j.timeoutMS), nil)
	case err != nil:
		s.setJobState(j, JobFailed, err.Error(), nil)
	default:
		s.setJobState(j, JobDone, "", table)
	}
}
