package service

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"hmem"
)

// evaluateRaw posts one /v1/evaluate request and returns the raw response
// body bytes — the ground truth the batch path must reproduce byte for
// byte.
func evaluateRaw(t *testing.T, baseURL string, it BatchItem) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"workload":%q,"policy":%q}`, it.Workload, it.Policy)
	resp, err := http.Post(baseURL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate %s/%s: status %d: %s", it.Workload, it.Policy, resp.StatusCode, raw)
	}
	return raw
}

// batchItemGrid builds n evaluate items cycling a small workload × policy
// grid, so large batches repeat keys (exercising in-batch dedup) while
// small ones stay distinct.
func batchItemGrid(n int) []BatchItem {
	workloads := []string{"astar", "mcf", "soplex", "milc"}
	policies := []hmem.PolicyName{hmem.PolicyDDROnly, hmem.PolicyPerfFocused, hmem.PolicyBalanced, hmem.PolicyWr2Ratio}
	items := make([]BatchItem, n)
	for i := range items {
		items[i] = BatchItem{
			ID:       fmt.Sprintf("item-%d", i),
			Workload: workloads[i%len(workloads)],
			Policy:   policies[(i/len(workloads))%len(policies)],
		}
	}
	return items
}

// TestBatchDifferential is the batch path's anchor: a batch of N items is
// byte-identical to N sequential /v1/evaluate calls, across batch sizes and
// server parallelism. The sequential bodies are writeJSON output (marshal +
// newline), so the comparison is append(item.Result, '\n') — the exact
// bytes either path puts on the wire.
func TestBatchDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not a -short test")
	}
	sizes := []int{1, 16, 256}
	parallels := []int{1, runtime.NumCPU()}
	for _, par := range parallels {
		for _, n := range sizes {
			t.Run(fmt.Sprintf("items=%d/parallel=%d", n, par), func(t *testing.T) {
				cfg := tinyConfig()
				cfg.Defaults.RecordsPerCore = 1200
				cfg.Defaults.FaultTrials = 800
				cfg.Defaults.Parallel = par
				_, c := newTestServer(t, cfg)
				items := batchItemGrid(n)

				results, sum, err := c.CollectBatch(context.Background(), BatchRequest{Items: items})
				if err != nil {
					t.Fatal(err)
				}
				if sum.Items != n || sum.Errors != 0 {
					t.Fatalf("summary = %+v, want %d items, 0 errors", sum, n)
				}
				if len(results) != n {
					t.Fatalf("got %d result lines, want %d", len(results), n)
				}
				for i, res := range results {
					if res.Seq != i+1 || res.Index != i || res.ID != items[i].ID {
						t.Fatalf("line %d: seq=%d index=%d id=%q, want seq=%d index=%d id=%q",
							i, res.Seq, res.Index, res.ID, i+1, i, items[i].ID)
					}
					if res.Error != "" {
						t.Fatalf("item %d failed: %s", i, res.Error)
					}
					want := evaluateRaw(t, c.BaseURL, items[i])
					got := append(bytes.Clone(res.Result), '\n')
					if !bytes.Equal(got, want) {
						t.Fatalf("item %d (%s/%s): batch bytes differ from /v1/evaluate\nbatch: %s\nseq:   %s",
							i, items[i].Workload, items[i].Policy, got, want)
					}
				}
			})
		}
	}
}

// TestBatchCoalescing pins the tentpole's server half: K same-workload,
// different-policy items generate the trace exactly once (the plan
// materialization), every simulation replays it, and the results are still
// byte-identical to an uncoalesced server evaluating the same items one at
// a time.
func TestBatchCoalescing(t *testing.T) {
	policies := []hmem.PolicyName{hmem.PolicyPerfFocused, hmem.PolicyBalanced, hmem.PolicyWrRatio, hmem.PolicyWr2Ratio}
	items := make([]BatchItem, len(policies))
	for i, p := range policies {
		items[i] = BatchItem{ID: string(p), Workload: "astar", Policy: p}
	}

	svc, c := newTestServer(t, tinyConfig())
	results, sum, err := c.CollectBatch(context.Background(), BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Errors != 0 {
		t.Fatalf("summary = %+v, want no errors", sum)
	}
	st := svc.TraceStats()
	if st.Opens != 1 {
		t.Fatalf("batch opened the trace %d times, want exactly 1 (coalesced plan)", st.Opens)
	}
	if st.CoalesceHits < uint64(len(items)) {
		t.Fatalf("coalesce hits = %d, want at least %d (one per item)", st.CoalesceHits, len(items))
	}

	// The counters are exported: the metrics page must carry both families.
	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, family := range []string{"hmemd_trace_opens_total 1", "hmemd_coalesce_hits_total", "hmemd_batch_requests_total 1"} {
		if !strings.Contains(string(page), family) {
			t.Errorf("metrics page missing %q", family)
		}
	}

	// Same items on a server that never coalesces (plain sequential
	// /v1/evaluate): bytes must match — coalescing is invisible in results.
	_, plain := newTestServer(t, tinyConfig())
	for i, res := range results {
		want := evaluateRaw(t, plain.BaseURL, items[i])
		got := append(bytes.Clone(res.Result), '\n')
		if !bytes.Equal(got, want) {
			t.Fatalf("policy %s: coalesced bytes differ from uncoalesced evaluation", items[i].Policy)
		}
	}
}

// TestBatchCompareItems checks the compare flavor: a Policies item carries
// the same payload /v1/compare would produce, and mixes freely with
// evaluate items in one batch.
func TestBatchCompareItems(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()
	items := []BatchItem{
		{ID: "cmp", Workload: "astar", Policies: []hmem.PolicyName{hmem.PolicyDDROnly, hmem.PolicyBalanced}},
		{ID: "one", Workload: "astar", Policy: hmem.PolicyDDROnly},
	}
	results, sum, err := c.CollectBatch(ctx, BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Items != 2 || sum.Errors != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	cmp, err := results[0].Comparisons()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp) != 2 {
		t.Fatalf("compare item returned %d results, want 2", len(cmp))
	}
	single, err := results[1].Evaluation()
	if err != nil {
		t.Fatal(err)
	}
	// The compare item's ddr-only entry and the evaluate item are the same
	// cached computation.
	if !reflect.DeepEqual(cmp[0], single) {
		t.Fatal("compare and evaluate disagree on the same workload × policy")
	}
}

// TestBatchThroughput is the acceptance ratio: on a same-workload
// multi-policy profile, the batch path over a pooled client must clear at
// least 2× the ops/sec of one-request-per-round-trip sequential
// evaluation. Steady state (warm result cache) is measured, so the ratio
// isolates the request path — pipelining N items over one request versus N
// round trips — rather than simulation time; each side takes its best of
// several rounds, which filters scheduler and GC interference on small
// machines.
func TestBatchThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement is not a -short test")
	}
	policies := []hmem.PolicyName{
		hmem.PolicyDDROnly, hmem.PolicyPerfFocused, hmem.PolicyReliabilityFocused,
		hmem.PolicyBalanced, hmem.PolicyWrRatio, hmem.PolicyWr2Ratio,
		hmem.PolicyPerfMigration, hmem.PolicyFCMigration, hmem.PolicyCCMigration,
		hmem.PolicyAnnotation,
	}
	items := make([]BatchItem, len(policies))
	for i, p := range policies {
		items[i] = BatchItem{ID: string(p), Workload: "mcf", Policy: p}
	}
	ctx := context.Background()

	_, base := newTestServer(t, tinyConfig())
	pooled := NewPooledClient(base.BaseURL, 8)
	// Warm the result cache: after this, both sides serve identical cached
	// evaluations and differ only in transport.
	if _, sum, err := pooled.CollectBatch(ctx, BatchRequest{Items: items}); err != nil || sum.Errors != 0 {
		t.Fatalf("warm-up batch: err=%v summary=%+v", err, sum)
	}

	const rounds = 8
	best := func(run func() error) time.Duration {
		min := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			if err := run(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < min {
				min = d
			}
		}
		return min
	}

	seqBest := best(func() error {
		for _, it := range items {
			if _, err := pooled.Evaluate(ctx, EvaluateRequest{Workload: it.Workload, Policy: it.Policy}); err != nil {
				return err
			}
		}
		return nil
	})
	batchBest := best(func() error {
		_, sum, err := pooled.CollectBatch(ctx, BatchRequest{Items: items})
		if err != nil {
			return err
		}
		if sum.Errors != 0 {
			return fmt.Errorf("batch summary: %+v", sum)
		}
		return nil
	})

	ops := float64(len(items))
	ratio := float64(seqBest) / float64(batchBest)
	t.Logf("sequential %v (%.0f ops/s), batch %v (%.0f ops/s), speedup %.2fx",
		seqBest, ops/seqBest.Seconds(), batchBest, ops/batchBest.Seconds(), ratio)
	if ratio < 2 {
		t.Fatalf("batch speedup %.2fx, acceptance floor is 2x (sequential %v vs batch %v per %d ops)",
			ratio, seqBest, batchBest, len(items))
	}
}

// TestBatchValidation: malformed batches 400 before any work or admission
// charge.
func TestBatchValidation(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	cases := []struct {
		name string
		body string
	}{
		{"not json", `{nope`},
		{"empty items", `{"items":[]}`},
		{"unknown field", `{"items":[{"workload":"astar","policy":"ddr-only"}],"bogus":1}`},
		{"trailing data", `{"items":[{"workload":"astar","policy":"ddr-only"}]}{}`},
		{"no policy", `{"items":[{"workload":"astar"}]}`},
		{"both policy and policies", `{"items":[{"workload":"astar","policy":"ddr-only","policies":["balanced"]}]}`},
		{"unknown workload", `{"items":[{"workload":"nope","policy":"ddr-only"}]}`},
		{"unknown policy", `{"items":[{"workload":"astar","policy":"nope"}]}`},
		{"bad option patch", `{"items":[{"workload":"astar","policy":"ddr-only","options":{"topology":"nope"}}]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(c.BaseURL+"/v1/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	// Oversized item count is refused by the decoder, not the body limit.
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"workload":"astar","policy":"ddr-only"}`)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(c.BaseURL+"/v1/batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}
