package service

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Health states for the ok → degraded → shedding ladder /healthz and
// hmemd_health_state expose. Draining (shutdown in progress) sits above them
// all and is reported separately.
const (
	healthOK = iota
	healthDegraded
	healthShedding
	healthDraining
)

func healthName(st int) string {
	switch st {
	case healthOK:
		return "ok"
	case healthDegraded:
		return "degraded"
	case healthShedding:
		return "shedding"
	case healthDraining:
		return "draining"
	}
	return "unknown"
}

// AdmissionConfig tunes the cost-based admission controller. The zero value
// gives sane defaults; admission cannot be disabled (with an effectively
// infinite budget it just never sheds).
type AdmissionConfig struct {
	// Budget is the in-flight cost ceiling in units of one default-shaped
	// evaluation (<=0 = 4 × GOMAXPROCS, floored at 32 so a single running
	// job — JobCostFactor units — cannot push a small machine into
	// degraded health by itself). A request arriving while in-flight cost
	// is at or above the budget is shed with 429 + Retry-After; cost-0
	// requests (memo hits) are always admitted.
	Budget float64
	// DegradedRatio is the in-flight/budget fraction at which /healthz
	// reports degraded and job submission is refused (<=0 = 0.75).
	DegradedRatio float64
	// SheddingRatio is the fraction at which /healthz reports shedding and
	// every costed endpoint is refused (<=0 = 1.0).
	SheddingRatio float64
	// HealthHold is how long a crossed threshold keeps its health state
	// after load drops back under it (<=0 = 2s) — hysteresis so the state
	// does not flap request-to-request.
	HealthHold time.Duration
	// JobCostFactor prices one experiment job in evaluation units
	// (<=0 = 8): a figure driver fans out to many evaluations.
	JobCostFactor float64
	// Now is the clock (nil = time.Now) — the test seam.
	Now func() time.Time
}

const (
	defaultDegradedRatio = 0.75
	defaultSheddingRatio = 1.0
	defaultHealthHold    = 2 * time.Second
	defaultJobCostFactor = 8
	// maxRetryAfterSecs caps the drain-rate-derived hint: past a minute the
	// estimate is noise and clients should poll, not sleep.
	maxRetryAfterSecs = 60
	// ewmaAlpha is the smoothing factor for the drain-rate and latency
	// estimators: new sample weighted 1/5, matching a ~5-observation memory.
	ewmaAlpha = 0.2
)

// admission is the server-side cost-based admission controller: it tracks
// the summed cost of admitted in-flight work against a budget, sheds the
// excess, estimates the drain rate from completions so refusals carry an
// honest Retry-After, and stamps the degraded/shedding health states when
// load crosses their thresholds.
//
// The under-budget path (admit, release, healthState) is allocation-free —
// the AllocsPerRun gate in admission_test pins that.
type admission struct {
	budget     float64
	degradedAt float64 // cost threshold, not ratio
	sheddingAt float64
	hold       time.Duration
	jobFactor  float64
	now        func() time.Time

	// inflightBits holds math.Float64bits of the summed in-flight cost,
	// updated by CAS so admit/release stay lock- and allocation-free.
	inflightBits atomic.Uint64
	admitted     atomic.Uint64
	shed         atomic.Uint64

	// latencyBits is an EWMA of admitted-request latency in seconds
	// (float64 bits) — the "recent latency" signal /metrics exposes.
	latencyBits atomic.Uint64

	// degradedUntil / sheddingUntil hold the UnixNano until which the state
	// is pinned; crossing a threshold re-stamps now+hold. Reading health is
	// then just two atomic loads against the clock — self-recovering with no
	// timer goroutine.
	degradedUntil atomic.Int64
	sheddingUntil atomic.Int64

	// drain estimates completed cost units per second; jobsDrain estimates
	// completed jobs per second (the queue-full Retry-After hint).
	drain     ewmaRate
	jobsDrain ewmaRate
}

func newAdmission(cfg AdmissionConfig) *admission {
	budget := cfg.Budget
	if budget <= 0 {
		budget = 4 * float64(runtime.GOMAXPROCS(0))
		if budget < 32 {
			budget = 32
		}
	}
	dr := cfg.DegradedRatio
	if dr <= 0 {
		dr = defaultDegradedRatio
	}
	sr := cfg.SheddingRatio
	if sr <= 0 {
		sr = defaultSheddingRatio
	}
	hold := cfg.HealthHold
	if hold <= 0 {
		hold = defaultHealthHold
	}
	jf := cfg.JobCostFactor
	if jf <= 0 {
		jf = defaultJobCostFactor
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	a := &admission{
		budget:     budget,
		degradedAt: dr * budget,
		sheddingAt: sr * budget,
		hold:       hold,
		jobFactor:  jf,
		now:        now,
	}
	a.drain.now = now
	a.jobsDrain.now = now
	return a
}

// admit tries to reserve cost against the budget. A request arriving while
// in-flight cost is already at or above budget is refused (shed) with a
// drain-rate-derived Retry-After hint in seconds; the request that crosses
// the line is still admitted, so a single over-budget request cannot starve
// an idle server. Cost-0 requests (memo hits) are always admitted. Every
// admitted cost must be returned via release exactly once.
func (a *admission) admit(cost float64) (ok bool, retryAfterSecs int) {
	for {
		old := a.inflightBits.Load()
		cur := math.Float64frombits(old)
		if cost > 0 && cur >= a.budget {
			a.shed.Add(1)
			a.stampHealth(cur + cost)
			return false, retryAfterSeconds(cur+cost-a.budget, a.drain.rate())
		}
		if a.inflightBits.CompareAndSwap(old, math.Float64bits(cur+cost)) {
			a.admitted.Add(1)
			a.stampHealth(cur + cost)
			return true, 0
		}
	}
}

// charge reserves cost unconditionally — for work the server already
// committed to (a 202-acknowledged job entering execution) that cannot be
// shed anymore but must still weigh on the health state and future
// admissions. Pair with release.
func (a *admission) charge(cost float64) {
	for {
		old := a.inflightBits.Load()
		cur := math.Float64frombits(old)
		if a.inflightBits.CompareAndSwap(old, math.Float64bits(cur+cost)) {
			a.stampHealth(cur + cost)
			return
		}
	}
}

// release returns an admitted (or charged) cost and feeds the estimators
// with the completion: cost units drained over d, and the latency EWMA.
func (a *admission) release(cost float64, d time.Duration) {
	if cost > 0 {
		for {
			old := a.inflightBits.Load()
			next := math.Float64frombits(old) - cost
			if next < 0 {
				next = 0 // defensive: a double release must not wedge admission
			}
			if a.inflightBits.CompareAndSwap(old, math.Float64bits(next)) {
				break
			}
		}
		a.drain.observe(cost)
	}
	if d > 0 {
		secs := d.Seconds()
		for {
			old := a.latencyBits.Load()
			cur := math.Float64frombits(old)
			next := secs
			if cur > 0 {
				next = cur + ewmaAlpha*(secs-cur)
			}
			if a.latencyBits.CompareAndSwap(old, math.Float64bits(next)) {
				break
			}
		}
	}
}

// inflight reads the current summed in-flight cost.
func (a *admission) inflight() float64 {
	return math.Float64frombits(a.inflightBits.Load())
}

// latencyEWMA reads the smoothed admitted-request latency in seconds.
func (a *admission) latencyEWMA() float64 {
	return math.Float64frombits(a.latencyBits.Load())
}

// stampHealth pins degraded/shedding for the hold window when load crosses
// their thresholds. Called on every admission-path event; allocation-free.
func (a *admission) stampHealth(load float64) {
	if load >= a.sheddingAt {
		until := a.now().Add(a.hold).UnixNano()
		a.sheddingUntil.Store(until)
		a.degradedUntil.Store(until)
	} else if load >= a.degradedAt {
		a.degradedUntil.Store(a.now().Add(a.hold).UnixNano())
	}
}

// healthState reads the current rung of the ok → degraded → shedding ladder.
func (a *admission) healthState() int {
	now := a.now().UnixNano()
	if now < a.sheddingUntil.Load() {
		return healthShedding
	}
	if now < a.degradedUntil.Load() {
		return healthDegraded
	}
	return healthOK
}

// retryAfterSeconds converts an over-budget excess (in cost units) and a
// measured drain rate (units per second) into an honest Retry-After hint:
// the ceiling of the time the backlog needs to drain, clamped to [1, 60]
// seconds. An unmeasured rate (no completions yet) or no excess degrades to
// the pre-adaptive constant 1. Pure — pinned by a table-driven test.
func retryAfterSeconds(excess, rate float64) int {
	if excess <= 0 || rate <= 0 || math.IsNaN(excess) || math.IsNaN(rate) {
		return 1
	}
	secs := math.Ceil(excess / rate)
	if secs < 1 {
		return 1
	}
	if secs > maxRetryAfterSecs {
		return maxRetryAfterSecs
	}
	return int(secs)
}

// ewmaRate estimates an event rate (units per second) as an EWMA of
// instantaneous rates between observations. A mutex serializes the
// (last, rate) pair; Lock/Unlock do not allocate, keeping release on the
// zero-alloc admission path.
type ewmaRate struct {
	now func() time.Time

	mu      sync.Mutex
	last    time.Time
	pending float64 // units completed since the last rate sample
	ewma    float64
}

// observe records units completed at the current instant.
func (e *ewmaRate) observe(units float64) {
	now := e.now()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		// First completion: no interval yet, just start the clock.
		e.last = now
		return
	}
	e.pending += units
	dt := now.Sub(e.last).Seconds()
	if dt <= 0 {
		// Same-instant completion: credit the units to the next interval —
		// a rate over zero elapsed time would blow up.
		return
	}
	inst := e.pending / dt
	if e.ewma == 0 {
		e.ewma = inst
	} else {
		e.ewma += ewmaAlpha * (inst - e.ewma)
	}
	e.pending = 0
	e.last = now
}

// rate reads the current estimate (0 until two observations have landed).
func (e *ewmaRate) rate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma
}
