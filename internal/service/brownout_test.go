package service

import (
	"context"
	"strings"
	"testing"
	"time"

	"hmem"
	"hmem/internal/breaker"
	"hmem/internal/chaos"
)

// TestClusterBrownoutBreakerAndRecovery is the brownout acceptance test: one
// of two workers turns straggler (injected latency far beyond the shard
// timeout), and the coordinator must (1) open that worker's breaker within the
// sliding window, (2) keep every admitted evaluation byte-identical to
// standalone, (3) keep retry+hedge amplification bounded by total placements,
// and (4) re-close the breaker within a probe cycle once the brownout ends.
func TestClusterBrownoutBreakerAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations across multiple in-process nodes")
	}
	cases := []struct {
		workload string
		policy   hmem.PolicyName
	}{
		{"astar", "cc-migration"},
		{"mix1", "balanced"},
	}
	// Shrink the simulations so a healthy shard execution fits the shard
	// timeout with room to spare even under -race on a loaded machine — the
	// browned-out worker must be the only one timing out. The standalone
	// reference and the coordinator must share these options byte-for-byte.
	shrink := func(cfg Config) Config {
		cfg.Defaults.RecordsPerCore = 600
		cfg.Defaults.FaultTrials = 300
		return cfg
	}
	cfg := shrink(clusterTestConfig(RoleStandalone))
	cfg.Role = ""
	_, standalone := newTestServer(t, cfg)
	var want [][]byte
	for _, tc := range cases {
		want = append(want, evaluateJSON(t, standalone, tc.workload, tc.policy))
	}

	sd := chaos.NewSlowdown(nil)
	coordCfg := shrink(clusterTestConfig(RoleCoordinator))
	// This test outlives the helper's 2s liveness TTL (brownout dispatches
	// burn their timeout one by one) and startWorkers registers without a
	// heartbeat loop, so pin membership for the duration.
	coordCfg.Cluster.TTL = 10 * time.Minute
	coordCfg.Cluster.Transport = sd
	coordCfg.Cluster.RequestTimeout = 2 * time.Second
	coordCfg.Cluster.PeerTimeout = 100 * time.Millisecond
	coordCfg.Cluster.StealAfter = time.Second
	coordCfg.Cluster.HedgeQuantile = 0.9
	coordCfg.Cluster.Breaker = breaker.Config{
		Window:         10,
		MinSamples:     3,
		FailureRatio:   0.5,
		OpenFor:        400 * time.Millisecond,
		ProbeBudget:    1,
		ProbeSuccesses: 1,
	}
	coord, cc := newTestServer(t, coordCfg)
	workerSvcs, urls := startWorkers(t, coord, 2)

	// Brownout: w1 stays registered and alive but answers far slower than the
	// shard timeout allows. Every dispatch to it times out; w2 is healthy.
	w1Host := strings.TrimPrefix(urls[0], "http://")
	sd.SetDelay(w1Host, 8*time.Second)

	for i, tc := range cases {
		got := evaluateJSON(t, cc, tc.workload, tc.policy)
		if string(got) != string(want[i]) {
			t.Errorf("brownout: %s/%s differs from standalone\nstandalone: %s\ncluster:    %s",
				tc.workload, tc.policy, want[i], got)
		}
	}

	stats := coord.cluster.sched.Stats()
	opens, _, _ := coord.cluster.breakers.Totals()
	if opens == 0 {
		t.Fatalf("brownout never opened w1's breaker (placed=%d retries=%d)", stats.Placed, stats.Retries)
	}
	if stats.Retries+stats.Hedges == 0 {
		t.Error("no shard was retried or hedged off the browned-out worker")
	}
	// Amplification: every hedge and retry is itself one placement, so the
	// duplicates can never exceed the primaries. (The acceptance bound is
	// hedges+retries <= 2x placed; this is the stronger structural bound.)
	if stats.Hedges+stats.Retries > stats.Placed {
		t.Errorf("amplification: hedges=%d + retries=%d > placed=%d",
			stats.Hedges, stats.Retries, stats.Placed)
	}
	if n := workerSvcs[0].cluster.executed.Load(); n != 0 {
		t.Errorf("browned-out worker completed %d shards inside the timeout, want 0", n)
	}

	// Recovery: end the brownout and keep offering fresh work. Each placement
	// whose ring owner is w1 becomes a half-open probe; with ProbeSuccesses=1
	// the first one that lands re-closes the breaker. In-flight brownout
	// dispatches trickle failures in for up to one shard timeout after the
	// clear (each reopening the quarantine), so the loop generates unlimited
	// fresh work — a unique fault_trials per iteration defeats every cache —
	// until the probes win.
	sd.Clear()
	time.Sleep(500 * time.Millisecond) // let the quarantine (OpenFor) lapse
	deadline := time.Now().Add(30 * time.Second)
	closed := func() bool {
		for _, st := range coord.cluster.breakers.States() {
			if st != breaker.Closed {
				return false
			}
		}
		return true
	}
	for fresh := 0; !closed(); fresh++ {
		if time.Now().After(deadline) {
			t.Fatalf("breakers never re-closed after the brownout ended: %v",
				coord.cluster.breakers.States())
		}
		workload := "astar"
		if fresh%2 == 1 {
			workload = "mix1"
		}
		_, err := cc.Evaluate(context.Background(), EvaluateRequest{
			Workload: workload,
			Policy:   "cc-migration",
			Options:  &OptionsPatch{FaultTrials: 100 + fresh},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, closes, _ := coord.cluster.breakers.Totals(); closes == 0 {
		t.Error("breaker totals report no closes after recovery")
	}
}
