package service

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The golden exposition test freezes the /metrics contract: every family
// name, HELP/TYPE line, label set, and series — in exact render order — plus
// every value that is deterministic for a fixed request sequence. Timing-
// dependent values (histogram buckets and sums, and anything touched by the
// scrape loop itself) are masked to "X" before comparison, so the golden
// pins structure everywhere and values wherever determinism allows.
//
// Regenerate after an intentional contract change with:
//
//	go test ./internal/service/ -run TestMetricsGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/metrics.golden from the live rendering")

// maskMetricsPage replaces timing-dependent sample values with "X":
//   - histogram _bucket and _sum lines (latencies vary run to run);
//   - the admission latency and drain-rate gauges (EWMAs of wall time);
//   - every line mentioning the "GET /metrics" route (the assertion loop
//     below scrapes an unpredictable number of times).
//
// Histogram _count lines and all other series keep their exact values.
func maskMetricsPage(page string) string {
	var out strings.Builder
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			out.WriteString(line)
			out.WriteString("\n")
			continue
		}
		mask := strings.Contains(line, `route="GET /metrics"`)
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name := line[:i]
			if strings.HasSuffix(name, "_bucket") || strings.HasSuffix(name, "_sum") ||
				name == "hmemd_admission_latency_seconds" || name == "hmemd_admission_drain_rate" {
				mask = true
			}
		}
		if mask {
			if i := strings.LastIndex(line, " "); i >= 0 {
				line = line[:i] + " X"
			}
		}
		out.WriteString(line)
		out.WriteString("\n")
	}
	s := out.String()
	return strings.TrimSuffix(s, "\n")
}

func TestMetricsGolden(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := t.Context()

	// A fixed request sequence: one health probe, then one instant job
	// (hwcost is a prebuilt table — no simulations, exactly one span) run to
	// completion via submit + watch + final fetch.
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunJob(ctx, JobRequest{Experiment: "hwcost"}, nil); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "metrics.golden")
	scrape := func() string {
		resp, err := http.Get(c.BaseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return maskMetricsPage(string(body))
	}

	// The first scrape cannot match: the "GET /metrics" route series only
	// materializes once a scrape has been observed, and middleware
	// observations from the watch stream may still be landing. Scrape until
	// the page settles onto the golden.
	scrape()
	if *updateGolden {
		time.Sleep(50 * time.Millisecond)
		page := scrape()
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(page+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	wantBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSuffix(string(wantBytes), "\n")

	deadline := time.Now().Add(5 * time.Second)
	var got string
	for {
		got = scrape()
		if got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("masked /metrics never settled onto the golden.\n%s", diffLines(want, got))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// diffLines renders a minimal line diff for golden mismatches.
func diffLines(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  want: %s\n  got:  %s\n", i+1, w, g)
		}
	}
	if b.Len() == 0 {
		return "(no line-level differences; lengths differ?)"
	}
	return b.String()
}
