package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hmem"
)

// tinyConfig keeps server-side simulations small enough for test wall time
// while still exercising the full stack.
func tinyConfig() Config {
	return Config{
		Defaults: hmem.Options{RecordsPerCore: 3000, FaultTrials: 2000},
	}
}

// newTestServer starts a Service on an httptest server and hands back a
// client wired to it. Cleanup shuts both down.
func newTestServer(t *testing.T, cfg Config) (*Service, *Client) {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
		ts.Close()
	})
	return svc, &Client{BaseURL: ts.URL}
}

func TestListEndpoints(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	workloads, benchmarks, err := c.Workloads(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(workloads) != 14 || len(benchmarks) != 17 {
		t.Fatalf("workloads=%d benchmarks=%d, want 14/17", len(workloads), len(benchmarks))
	}
	policies, err := c.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 10 {
		t.Fatalf("policies = %d, want 10", len(policies))
	}
	experiments, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(experiments) != 23 {
		t.Fatalf("experiments = %d, want 23", len(experiments))
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	cases := []struct {
		name string
		req  EvaluateRequest
	}{
		{"unknown workload", EvaluateRequest{Workload: "nope", Policy: hmem.PolicyDDROnly}},
		{"unknown policy", EvaluateRequest{Workload: "astar", Policy: "nope"}},
	}
	for _, tc := range cases {
		_, err := c.Evaluate(ctx, tc.req)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want 400", tc.name, err)
		}
	}

	// Malformed body, unknown fields, and trailing garbage all 400.
	for _, body := range []string{"{not json", `{"workload":"astar","policy":"ddr-only","bogus":1}`, `{"workload":"astar","policy":"ddr-only"}{}`} {
		resp, err := http.Post(c.BaseURL+"/v1/evaluate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestBodyLimit(t *testing.T) {
	cfg := tinyConfig()
	cfg.MaxBodyBytes = 64
	_, c := newTestServer(t, cfg)
	big := fmt.Sprintf(`{"workload":%q,"policy":"ddr-only"}`, strings.Repeat("x", 200))
	resp, err := http.Post(c.BaseURL+"/v1/evaluate", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

// TestConcurrentIdenticalEvaluatesShareOneSimulation is the issue's
// acceptance test: two concurrent identical evaluate requests perform one
// simulation — the result cache reports exactly one miss and one hit.
func TestConcurrentIdenticalEvaluatesShareOneSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	svc, c := newTestServer(t, tinyConfig())
	ctx := context.Background()
	req := EvaluateRequest{Workload: "astar", Policy: hmem.PolicyDDROnly}

	var wg sync.WaitGroup
	results := make([]hmem.Result, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Evaluate(ctx, req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("concurrent identical requests disagree: %+v vs %+v", results[0], results[1])
	}
	stats := svc.ResultCacheStats()
	if stats.Misses != 1 || stats.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 miss and 1 hit", stats)
	}

	// A third identical request is a pure cache hit.
	if _, err := c.Evaluate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if stats := svc.ResultCacheStats(); stats.Hits != 2 || stats.Misses != 1 {
		t.Fatalf("cache stats after third request = %+v", stats)
	}
}

// TestResultBytesIdenticalAcrossRestartAndParallelism: the same request body
// yields byte-identical response JSON across server restarts and at any
// Parallel setting (determinism is the repo's core invariant; the service
// must not launder it away).
func TestResultBytesIdenticalAcrossRestartAndParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	body := `{"workload":"astar","policies":["ddr-only","perf-focused"]}`
	fetch := func(cfg Config) string {
		t.Helper()
		_, c := newTestServer(t, cfg)
		resp, err := http.Post(c.BaseURL+"/v1/compare", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}

	first := fetch(tinyConfig())
	second := fetch(tinyConfig()) // fresh Service = a restart
	serialCfg := tinyConfig()
	serialCfg.Defaults.Parallel = 1
	serial := fetch(serialCfg)

	if first != second {
		t.Fatalf("restart changed bytes:\n%s\nvs\n%s", first, second)
	}
	if first != serial {
		t.Fatalf("parallelism changed bytes:\n%s\nvs\n%s", first, serial)
	}
}

func TestJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	cfg.Defaults.Workloads = []string{"astar"}
	_, c := newTestServer(t, cfg)
	ctx := context.Background()

	var events []JobEvent
	table, err := c.RunJob(ctx, JobRequest{Experiment: "figure5"}, func(ev JobEvent) {
		events = append(events, ev)
	})
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) == 0 {
		t.Fatal("job returned no table")
	}
	if !strings.Contains(table.Title, "Figure 5") {
		t.Fatalf("unexpected table: %q", table.Title)
	}
	// The NDJSON stream replays the full queued -> running -> done history,
	// interleaved with progress heartbeats (Progress set) while running.
	var states []string
	var transitions []JobEvent
	for _, ev := range events {
		if ev.Progress == nil {
			states = append(states, ev.State)
			transitions = append(transitions, ev)
			continue
		}
		if ev.State != JobRunning {
			t.Fatalf("progress heartbeat in state %q", ev.State)
		}
		if ev.Progress.Percent < 0 || ev.Progress.Percent > 1 {
			t.Fatalf("progress percent %v out of range", ev.Progress.Percent)
		}
	}
	want := []string{JobQueued, JobRunning, JobDone}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Fatalf("transition states = %v, want %v", states, want)
	}
	for i, ev := range transitions {
		if ev.Seq != i+1 {
			t.Fatalf("transition %d has seq %d", i, ev.Seq)
		}
	}
}

func TestJobValidation(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	_, err := c.SubmitJob(ctx, JobRequest{Experiment: "not-an-experiment"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
	_, err = c.Job(ctx, "job-999")
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404", err)
	}
}

// TestQueueFull: with no workers draining, submissions past QueueDepth get
// 429 and the overflow job is marked cancelled.
func TestQueueFull(t *testing.T) {
	cfg := tinyConfig()
	cfg.QueueDepth = 2
	cfg.JobWorkers = -1 // no drain
	svc, c := newTestServer(t, cfg)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429", err)
	}
	jobs, _ := svc.jobs.list(0, 0)
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	// list is newest-first, so the overflow job (submitted last) leads.
	if jobs[0].State != JobCancelled {
		t.Fatalf("overflow job state = %s, want cancelled", jobs[0].State)
	}
}

// TestShutdownDrainsQueuedJobs: Shutdown refuses new work with 503 but
// finishes jobs already queued (table1 is cheap — pure config, no sim).
func TestShutdownDrainsQueuedJobs(t *testing.T) {
	svc, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, time.Minute)
	defer cancel()
	if err := svc.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The queued job completed during the drain.
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("job state after drain = %s (%s), want done", final.State, final.Error)
	}

	// New work is refused while draining/closed.
	_, err = c.Evaluate(ctx, EvaluateRequest{Workload: "astar", Policy: hmem.PolicyDDROnly})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("evaluate after shutdown: %v, want 503", err)
	}
	_, err = c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after shutdown: %v, want 503", err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained = %d, want 503", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()
	req := EvaluateRequest{Workload: "astar", Policy: hmem.PolicyDDROnly}
	if _, err := c.Evaluate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(ctx, req); err != nil { // cache hit
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)

	for _, want := range []string{
		"hmemd_result_cache_hits_total 1",
		"hmemd_result_cache_misses_total 1",
		"hmemd_job_queue_depth 0",
		`hmemd_jobs{state="queued"} 0`,
		`hmemd_requests_total{route="POST /v1/evaluate",code="200"} 2`,
		`hmemd_request_duration_seconds_count{route="POST /v1/evaluate"} 2`,
		"hmemd_engine_memo_misses_total",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q\n%s", want, page)
		}
	}
}

func TestClientRetriesIdempotentCalls(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"policies": []string{"ddr-only"}})
	}))
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: time.Millisecond}
	if _, err := c.Policies(context.Background()); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}

	// Non-idempotent submission must NOT retry.
	calls = 0
	_, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1"})
	if err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("SubmitJob retried: %d calls", calls)
	}

	// 4xx responses are not retryable either.
	calls = 0
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts2.Close()
	c2 := &Client{BaseURL: ts2.URL, Retries: 3, Backoff: time.Millisecond}
	if _, err := c2.Policies(context.Background()); err == nil {
		t.Fatal("expected error")
	}
	if calls != 1 {
		t.Fatalf("400 retried: %d calls", calls)
	}
}

// TestTopologiesEndpointAndThreeTierEvaluate covers the topology surface:
// GET /v1/topologies lists both built-ins with their tier summaries, and an
// evaluate with the dram-nvm topology returns a result carrying NVM
// endurance counters while the default topology result omits them.
func TestTopologiesEndpointAndThreeTierEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	topos, err := c.Topologies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]hmem.TopologySummary{}
	for _, tp := range topos {
		byName[tp.Name] = tp
	}
	def, ok := byName["hbm-ddr"]
	if !ok || len(def.Tiers) != 2 || def.FastTier != 1 {
		t.Fatalf("hbm-ddr summary = %+v", def)
	}
	dn, ok := byName["dram-nvm"]
	if !ok || len(dn.Tiers) != 3 || dn.FastTier != 2 {
		t.Fatalf("dram-nvm summary = %+v", dn)
	}
	if dn.Tiers[0].WriteBudget == 0 {
		t.Fatalf("dram-nvm NVM tier has no write budget: %+v", dn.Tiers[0])
	}

	res, err := c.Evaluate(ctx, EvaluateRequest{
		Workload: "astar", Policy: hmem.PolicyCCMigration,
		Options: &OptionsPatch{Topology: "dram-nvm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Endurance) != 1 || res.Endurance[0].Name != "NVM" {
		t.Fatalf("three-tier result endurance = %+v, want one NVM entry", res.Endurance)
	}

	// The default topology's wire format is unchanged: no endurance key.
	plain, err := c.Evaluate(ctx, EvaluateRequest{Workload: "astar", Policy: hmem.PolicyDDROnly})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Endurance != nil {
		t.Fatalf("default result carries endurance: %+v", plain.Endurance)
	}
	data, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "endurance") {
		t.Fatalf("default result encoding grew an endurance field: %s", data)
	}

	// Unknown topology names are a client error, not a server fault.
	_, err = c.Evaluate(ctx, EvaluateRequest{
		Workload: "astar", Policy: hmem.PolicyDDROnly,
		Options: &OptionsPatch{Topology: "no-such"},
	})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown topology err = %v, want 400", err)
	}
}
