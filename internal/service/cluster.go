package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hmem"
	"hmem/internal/breaker"
	"hmem/internal/cluster"
	"hmem/internal/experiments"
	"hmem/internal/faultsim"
	"hmem/internal/obs"
)

// Roles a hmemd process can serve. Standalone (the default, and the value
// for "") computes everything in-process — byte-identical to the
// pre-cluster daemon. A coordinator decomposes expensive blocks into shards
// and places them on registered workers, falling back to local computation
// whenever no worker can take a shard. A worker executes shards for a
// coordinator; its own synchronous API keeps working.
const (
	RoleStandalone  = "standalone"
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
)

// ClusterConfig tunes the coordinator/worker machinery. The zero value
// gives sane defaults everywhere.
type ClusterConfig struct {
	// TTL is how long a worker stays in the ring without a heartbeat
	// (<=0 = cluster.DefaultTTL).
	TTL time.Duration
	// HealthEvery is the liveness sweep interval (<=0 = 1s).
	HealthEvery time.Duration
	// StealAfter launches a duplicate of a straggling shard on the next
	// ring candidate (<=0 = 2m; work-stealing for stuck-but-alive workers).
	StealAfter time.Duration
	// MaxAttempts bounds distinct workers tried per shard (<=0 = 3).
	MaxAttempts int
	// RequestTimeout bounds one shard POST (<=0 = 10m).
	RequestTimeout time.Duration
	// PeerTimeout bounds one peer-cache probe (<=0 = 2s).
	PeerTimeout time.Duration
	// Transport, when set, replaces the scheduler's HTTP transport — the
	// chaos seam partition tests cut.
	Transport http.RoundTripper
	// Logf receives placement decisions (nil = silent).
	Logf func(format string, args ...any)
	// Breaker tunes the per-worker circuit breakers guarding placement
	// (zero value = breaker package defaults: 20-outcome window, 50%
	// failure ratio after 5 samples, 5s quarantine, 1 probe, 2 successes
	// to close).
	Breaker breaker.Config
	// HedgeQuantile, when in (0,1), derives the straggler-hedge delay from
	// observed shard latency (HedgeMultiplier × that quantile, clamped to
	// [StealAfter/4, StealAfter]) instead of the fixed StealAfter.
	HedgeQuantile float64
	// HedgeMultiplier scales the latency quantile into the hedge delay
	// (<=0 = 2).
	HedgeMultiplier float64
	// HedgeRatio is the hedge credit earned per primary dispatch (<=0 =
	// 0.25) — the global budget keeping hedges from amplifying overload.
	HedgeRatio float64
	// HedgeBurst is the up-front hedge allowance (<=0 = 2).
	HedgeBurst int
}

// clusterState is the per-role cluster machinery hanging off a Service.
// reg/sched are non-nil only on coordinators; the shard cache serves
// GET /v1/cluster/cache/{key} on any clustered role.
type clusterState struct {
	role     string
	reg      *cluster.Registry  // coordinator: worker membership + ring
	sched    *cluster.Scheduler // coordinator: shard placement
	breakers *breaker.Set       // coordinator: per-worker circuit breakers
	cache    cluster.Cache      // worker: executed-shard results, peer-servable

	executed atomic.Uint64 // shards this node ran for a coordinator
	inflight atomic.Int64  // shard executions currently running

	stop     chan struct{}
	stopOnce sync.Once
	swept    sync.WaitGroup
}

// initCluster builds the role's machinery. Called from New before routes.
func (s *Service) initCluster() error {
	role := s.cfg.Role
	if role == "" {
		role = RoleStandalone
	}
	switch role {
	case RoleStandalone:
		return nil
	case RoleCoordinator, RoleWorker:
	default:
		return fmt.Errorf("service: unknown role %q (want standalone, coordinator, or worker)", s.cfg.Role)
	}
	cs := &clusterState{role: role, stop: make(chan struct{})}
	if role == RoleCoordinator {
		cc := s.cfg.Cluster
		ttl := cc.TTL
		if ttl <= 0 {
			ttl = cluster.DefaultTTL
		}
		stealAfter := cc.StealAfter
		if stealAfter <= 0 {
			stealAfter = 2 * time.Minute
		}
		httpClient := &http.Client{Transport: cc.Transport}
		cs.reg = cluster.NewRegistry(ttl)
		// Per-worker circuit breakers: transitions land on /metrics as the
		// hmemd_breaker_state gauge, in the span stream as breaker.transition
		// spans, and in the operator log.
		breakers := &breaker.Set{
			Config: cc.Breaker,
			OnTransition: func(peer string, from, to breaker.State) {
				s.met.breakerState.With(peer).Set(float64(to))
				tr := obs.NewTracer("breaker", s.spanExp)
				_, sp := obs.Start(obs.WithTracer(context.Background(), tr), "breaker.transition",
					obs.Str("peer", peer), obs.Str("from", from.String()), obs.Str("to", to.String()))
				sp.End()
				s.met.spansDropped.Add(tr.Dropped())
				if cc.Logf != nil {
					cc.Logf("cluster: worker %s breaker %s -> %s", peer, from, to)
				}
			},
		}
		cs.breakers = breakers
		cs.sched = &cluster.Scheduler{
			Registry:        cs.reg,
			Client:          httpClient,
			MaxAttempts:     cc.MaxAttempts,
			StealAfter:      stealAfter,
			HedgeQuantile:   cc.HedgeQuantile,
			HedgeMultiplier: cc.HedgeMultiplier,
			HedgeRatio:      cc.HedgeRatio,
			HedgeBurst:      cc.HedgeBurst,
			Breakers:        breakers,
			RequestTimeout:  cc.RequestTimeout,
			PeerTimeout:     cc.PeerTimeout,
			Logf:            cc.Logf,
		}
		every := cc.HealthEvery
		if every <= 0 {
			every = time.Second
		}
		cs.swept.Add(1)
		go func() {
			defer cs.swept.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-cs.stop:
					return
				case <-t.C:
					cs.reg.Expire()
				}
			}
		}()
	}
	s.cluster = cs
	return nil
}

// stopCluster halts the health sweeper; idempotent.
func (s *Service) stopCluster() {
	if s.cluster == nil {
		return
	}
	s.cluster.stopOnce.Do(func() { close(s.cluster.stop) })
	s.cluster.swept.Wait()
}

// Role reports the configured cluster role.
func (s *Service) Role() string {
	if s.cluster == nil {
		return RoleStandalone
	}
	return s.cluster.role
}

// ClusterLoad reports the in-flight shard executions on this node — the
// load figure a worker self-reports in heartbeats.
func (s *Service) ClusterLoad() int {
	if s.cluster == nil {
		return 0
	}
	return int(s.cluster.inflight.Load())
}

// ClusterWorkers exposes the live worker snapshot (tests and cmd/hmemd).
func (s *Service) ClusterWorkers() []cluster.Worker {
	if s.cluster == nil || s.cluster.reg == nil {
		return nil
	}
	return s.cluster.reg.Snapshot()
}

// --- coordinator-side delegate ---

// clusterDelegate adapts one engine's delegable blocks onto the shard
// scheduler. Each engine gets its own delegate because shards carry the
// engine's resolved options (and their digest) so a worker can rebuild the
// identical engine — or refuse with a digest mismatch.
type clusterDelegate struct {
	s       *Service
	digest  string
	options json.RawMessage
	par     int
}

func newClusterDelegate(s *Service, opts hmem.Options, digest string) (*clusterDelegate, error) {
	par := opts.Parallel
	// Workers schedule with their own parallelism; shipping the
	// coordinator's would only fragment nothing (Parallel never changes
	// results) but zeroing it keeps the wire form canonical.
	opts.Parallel = 0
	raw, err := json.Marshal(opts)
	if err != nil {
		return nil, err
	}
	return &clusterDelegate{s: s, digest: digest, options: raw, par: par}, nil
}

// runShard places one shard, translating "cluster cannot take this" into
// ErrNotDelegated so the runner recomputes locally. Any other error is the
// shard's deterministic outcome (worker-side simulation failure, digest
// mismatch) and propagates.
func (d *clusterDelegate) runShard(ctx context.Context, sh cluster.Shard) ([]byte, error) {
	raw, err := d.s.cluster.sched.Run(ctx, sh)
	if errors.Is(err, cluster.ErrNoWorkers) {
		return nil, experiments.ErrNotDelegated
	}
	return raw, err
}

func (d *clusterDelegate) RunBlock(ctx context.Context, key experiments.BlockKey) (*experiments.BlockPayload, error) {
	sh := cluster.Shard{
		Kind:     cluster.Kind(key.Kind),
		Digest:   d.digest,
		Options:  d.options,
		Workload: key.Workload,
		Policy:   key.Policy,
	}
	raw, err := d.runShard(ctx, sh)
	if err != nil {
		return nil, err
	}
	var p experiments.BlockPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("service: undecodable %s shard payload: %w", sh.Kind, err)
	}
	return &p, nil
}

func (d *clusterDelegate) RunStudyShards(ctx context.Context, tier int, jobs []faultsim.ShardJob) ([]faultsim.ShardTally, error) {
	shards := make([]cluster.Shard, len(jobs))
	for i, j := range jobs {
		shards[i] = cluster.Shard{
			Kind:    cluster.KindFaultShard,
			Digest:  d.digest,
			Options: d.options,
			Tier:    tier,
			K:       j.K,
			Index:   j.Shard,
			Trials:  j.N,
		}
	}
	out := make([]faultsim.ShardTally, len(jobs))
	raws, err := d.s.cluster.sched.RunAll(ctx, d.par, shards)
	if err != nil {
		if errors.Is(err, cluster.ErrNoWorkers) {
			return nil, experiments.ErrNotDelegated
		}
		return nil, err
	}
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &out[i]); err != nil {
			return nil, fmt.Errorf("service: undecodable fault-shard payload: %w", err)
		}
	}
	return out, nil
}

// --- handlers ---

// requireCluster 412s endpoints for roles that do not serve them.
func (s *Service) requireCluster(w http.ResponseWriter, roles ...string) *clusterState {
	if s.cluster != nil {
		for _, r := range roles {
			if s.cluster.role == r {
				return s.cluster
			}
		}
	}
	writeError(w, http.StatusPreconditionFailed,
		fmt.Errorf("cluster: this node is %q; endpoint needs role %v", s.Role(), roles))
	return nil
}

// handleClusterRegister is the worker -> coordinator join/heartbeat. The
// same body serves both: a known ID refreshes liveness and load, a new one
// joins the ring.
func (s *Service) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	cs := s.requireCluster(w, RoleCoordinator)
	if cs == nil {
		return
	}
	var req cluster.RegisterRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	isNew, err := cs.reg.Register(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	code := http.StatusOK
	if isNew {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{"workers": cs.reg.Len(), "ttl_seconds": s.clusterTTL().Seconds()})
}

func (s *Service) clusterTTL() time.Duration {
	if s.cfg.Cluster.TTL > 0 {
		return s.cfg.Cluster.TTL
	}
	return cluster.DefaultTTL
}

// handleClusterDeregister removes a worker immediately (clean drain beats
// waiting out the TTL).
func (s *Service) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	cs := s.requireCluster(w, RoleCoordinator)
	if cs == nil {
		return
	}
	var req struct {
		ID string `json:"id"`
	}
	if !s.readJSON(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": cs.reg.Deregister(req.ID)})
}

func (s *Service) handleClusterWorkers(w http.ResponseWriter, _ *http.Request) {
	cs := s.requireCluster(w, RoleCoordinator)
	if cs == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": cs.reg.Snapshot()})
}

// handleClusterShard executes one shard — the worker side of the wire.
// Results are cached (and peer-servable) by shard key; duplicate dispatches
// of an in-flight shard coalesce onto the running computation.
func (s *Service) handleClusterShard(w http.ResponseWriter, r *http.Request) {
	cs := s.requireCluster(w, RoleWorker)
	if cs == nil {
		return
	}
	if s.refuseIfClosing(w) { // 503: the scheduler retries elsewhere
		return
	}
	var sh cluster.Shard
	if !s.readJSON(w, r, &sh) {
		return
	}
	if err := sh.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	cs.inflight.Add(1)
	defer cs.inflight.Add(-1)
	raw, err := cs.cache.Do(r.Context(), sh.Key(), func() ([]byte, error) {
		return s.executeShard(r.Context(), sh)
	})
	if err != nil {
		var mismatch *digestMismatchError
		if errors.As(err, &mismatch) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cs.executed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// digestMismatchError marks option-set skew between coordinator and worker;
// it maps to 409 so the scheduler fails the shard instead of retrying a
// deterministic disagreement on another node.
type digestMismatchError struct{ want, got string }

func (e *digestMismatchError) Error() string {
	return fmt.Sprintf("cluster: options digest mismatch (coordinator %s, this worker resolves %s); binaries or defaults differ", e.want, e.got)
}

// executeShard rebuilds the engine the shard's options describe, guards the
// digest, and runs the block through the engine's own memoized paths — so a
// worker's cache warms exactly as local traffic would warm it.
func (s *Service) executeShard(ctx context.Context, sh cluster.Shard) ([]byte, error) {
	var opts hmem.Options
	if len(sh.Options) == 0 {
		return nil, errors.New("cluster: shard carries no options")
	}
	if err := json.Unmarshal(sh.Options, &opts); err != nil {
		return nil, fmt.Errorf("cluster: undecodable shard options: %w", err)
	}
	e, digest, err := s.engineForOptions(opts)
	if err != nil {
		return nil, err
	}
	if digest != sh.Digest {
		return nil, &digestMismatchError{want: sh.Digest, got: digest}
	}
	// The registry rides along so engine metrics (hmem_*) land on /metrics
	// on workers too; memo sharing semantics inside the block paths handle
	// cancellation the same way local traffic does.
	runCtx := obs.WithRegistry(ctx, s.registry)
	switch sh.Kind {
	case cluster.KindFaultShard:
		tally, err := e.RunStudyShard(sh.Tier, faultsim.ShardJob{K: sh.K, Shard: sh.Index, N: sh.Trials})
		if err != nil {
			return nil, err
		}
		return json.Marshal(tally)
	default:
		p, err := e.ExecuteBlock(runCtx, experiments.BlockKey{
			Kind:     experiments.BlockKind(sh.Kind),
			Workload: sh.Workload,
			Policy:   sh.Policy,
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(p)
	}
}

// handleClusterCache serves this node's cached shard results to peers: a
// coordinator (or a sibling coordinator) probes before re-dispatching work
// another round already paid for.
func (s *Service) handleClusterCache(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusPreconditionFailed, errors.New("cluster: standalone node has no shard cache"))
		return
	}
	key := r.PathValue("key")
	raw, ok := s.cluster.cache.Peek(key)
	if !ok && s.cluster.sched != nil {
		raw, ok = s.cluster.sched.Peek(key)
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no cached result for %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}
