package service

// POST /v1/batch — the high-throughput request path. One request carries N
// evaluate/compare items; results stream back as NDJSON, one seq-tagged
// line per item in item order plus a terminal summary line, so a client
// pipelines N evaluations over a single connection instead of paying N
// round trips. Server side, items that share a workload trace but differ
// in policy are coalesced onto one replay plan (Engine.AcquireTracePlan):
// the trace is generated once and every policy's cachesim→memsim→avf chain
// replays it. The batch is priced into the admission controller as the sum
// of its non-coalesced items — each distinct fresh result key costs one
// options-scaled unit; duplicates within the batch and already-cached keys
// are free. Item failures are isolated: an item's error rides its own
// result line while the rest of the batch completes.
//
// The stream replays identically on reconnect (results are cached and
// emission order is item order), so the client's seq-dedup reconnect
// machinery — the same scheme the job watch stream uses — resumes a
// severed batch with no lost or duplicated items.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hmem"
	"hmem/internal/exec"
)

// maxBatchItems bounds one batch request. The body limit bounds it too;
// this makes the contract explicit and keeps the per-item bookkeeping
// slices small.
const maxBatchItems = 4096

// BatchItem is one evaluation inside a batch request: an evaluate item
// (Policy set) or a compare item (Policies set) — exactly one of the two.
// ID is an opaque client token echoed back on the item's result line so
// pipelined callers can match responses without positional bookkeeping.
type BatchItem struct {
	ID       string            `json:"id,omitempty"`
	Workload string            `json:"workload"`
	Policy   hmem.PolicyName   `json:"policy,omitempty"`
	Policies []hmem.PolicyName `json:"policies,omitempty"`
	Options  *OptionsPatch     `json:"options,omitempty"`
}

// policySet returns the item's policies, evaluate and compare alike.
func (it *BatchItem) policySet() []hmem.PolicyName {
	if len(it.Policies) > 0 {
		return it.Policies
	}
	return []hmem.PolicyName{it.Policy}
}

// validate checks the item's structural invariants and target names.
func (it *BatchItem) validate() error {
	if it.Policy != "" && len(it.Policies) > 0 {
		return errors.New("set policy or policies, not both")
	}
	if it.Policy == "" && len(it.Policies) == 0 {
		return errors.New("one of policy or policies is required")
	}
	return validateTarget(it.Workload, it.policySet()...)
}

// BatchRequest asks for N evaluations in one round trip.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchResult is one NDJSON line of the batch response stream: a per-item
// result (Result for evaluate items, Results for compare items, Error when
// the item failed), or the terminal summary line (Done non-nil). Seq is
// index+1 for item lines and items+1 for the terminal line — the dedup
// token the client's reconnect machinery keys on. Result payloads are
// raw JSON: the bytes are exactly what /v1/evaluate would have returned
// for the same item, which the differential test pins.
type BatchResult struct {
	Seq     int             `json:"seq"`
	Index   int             `json:"index"`
	ID      string          `json:"id,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Results json.RawMessage `json:"results,omitempty"`
	Error   string          `json:"error,omitempty"`
	Done    *BatchSummary   `json:"done,omitempty"`
}

// Evaluation decodes an evaluate item's result payload.
func (r *BatchResult) Evaluation() (hmem.Result, error) {
	var out hmem.Result
	if err := json.Unmarshal(r.Result, &out); err != nil {
		return hmem.Result{}, fmt.Errorf("hmemd: decoding batch result: %w", err)
	}
	return out, nil
}

// Comparisons decodes a compare item's result payload.
func (r *BatchResult) Comparisons() ([]hmem.Result, error) {
	var out []hmem.Result
	if err := json.Unmarshal(r.Results, &out); err != nil {
		return nil, fmt.Errorf("hmemd: decoding batch results: %w", err)
	}
	return out, nil
}

// BatchSummary is the stream's terminal line.
type BatchSummary struct {
	Items  int `json:"items"`
	Errors int `json:"errors"`
}

// decodeBatchRequest parses and validates a batch request body. Standalone
// (rather than inline in the handler) so FuzzBatchRequest can drive the
// exact production decode path on raw bytes.
func decodeBatchRequest(body []byte) (*BatchRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); !errors.Is(err, io.EOF) {
		return nil, errors.New("invalid request body: trailing data")
	}
	if len(req.Items) == 0 {
		return nil, errors.New("items must be non-empty")
	}
	if len(req.Items) > maxBatchItems {
		return nil, fmt.Errorf("batch has %d items; the limit is %d", len(req.Items), maxBatchItems)
	}
	for i := range req.Items {
		if err := req.Items[i].validate(); err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	return &req, nil
}

// encodeBatchLine renders one NDJSON frame of the batch stream.
func encodeBatchLine(res BatchResult) ([]byte, error) {
	buf, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// decodeBatchLine parses one NDJSON frame; the trailing newline is
// optional. Unknown fields are rejected so the framing round trip
// (FuzzBatchFrame) catches client/server drift.
func decodeBatchLine(line []byte) (BatchResult, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var res BatchResult
	if err := dec.Decode(&res); err != nil {
		return BatchResult{}, err
	}
	return res, nil
}

// batchFailure renders an item that never produced a result (skipped by
// cancellation, or its task died before recording an outcome).
func batchFailure(it BatchItem, index int, err error) BatchResult {
	return BatchResult{Seq: index + 1, Index: index, ID: it.ID, Error: err.Error()}
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.refuseIfClosing(w) {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %v", err))
		return
	}
	req, err := decodeBatchRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items := req.Items

	// Resolve every item's engine up front: a bad option patch 400s the
	// whole batch before any admission charge or stream byte.
	type itemExec struct {
		engine *hmem.Engine
		digest string
	}
	execs := make([]itemExec, len(items))
	for i := range items {
		e, digest, err := s.engineFor(items[i].Options)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("item %d: %w", i, err))
			return
		}
		execs[i] = itemExec{engine: e, digest: digest}
	}

	// Price the batch as the sum of its non-coalesced items: each distinct
	// fresh result key costs one options-scaled unit; duplicates within the
	// batch and keys already cached (or in flight) are free. fresh tracks
	// which (engine, workload) groups carry any fresh work at all — only
	// those are worth a replay plan.
	type planKey struct{ digest, workload string }
	var cost float64
	seen := make(map[string]bool)
	fresh := make(map[planKey]bool)
	for i := range items {
		it := &items[i]
		for _, p := range it.policySet() {
			key := resultKey(execs[i].digest, it.Workload, p)
			if seen[key] {
				continue
			}
			seen[key] = true
			if c := s.evaluateCost(execs[i].digest, it.Workload, p, execs[i].engine.Options()); c > 0 {
				cost += c
				fresh[planKey{execs[i].digest, it.Workload}] = true
			}
		}
	}
	if !s.admitCost(w, cost) {
		return
	}
	start := time.Now()
	defer func() { s.adm.release(cost, time.Since(start)) }()
	s.met.batchRequests.Inc()

	// Pin one replay plan per (engine, workload) group with fresh work, so
	// items sharing a trace but differing in policy drive all their
	// simulation chains off a single trace pass. Acquisition failure is not
	// fatal — those items run uncoalesced and surface their own errors.
	ctx := r.Context()
	plans := make(map[planKey]func())
	for i := range items {
		pk := planKey{execs[i].digest, items[i].Workload}
		if _, ok := plans[pk]; ok || !fresh[pk] {
			continue
		}
		if release, err := execs[i].engine.AcquireTracePlan(ctx, items[i].Workload); err == nil {
			plans[pk] = release
		}
	}
	defer func() {
		for _, release := range plans {
			release()
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Items execute in parallel with per-item error isolation; the emitter
	// below streams each line as soon as its item — and every earlier one —
	// has settled, so the stream is in item order but the work is not
	// serialized.
	outcomes := make([]BatchResult, len(items))
	done := make([]chan struct{}, len(items))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go func() {
		errs := exec.Settle(ctx, s.resolvedDefaults.Parallel, len(items), func(i int) error {
			outcomes[i] = s.runBatchItem(ctx, items[i], execs[i].engine, execs[i].digest, i)
			close(done[i])
			return nil
		})
		// Tasks that never recorded an outcome — skipped by cancellation or
		// killed by a panic — get their error here and unblock the emitter.
		for i, err := range errs {
			if err != nil {
				outcomes[i] = batchFailure(items[i], i, err)
				close(done[i])
			}
		}
	}()

	errCount := 0
	for i := range items {
		select {
		case <-done[i]:
		case <-ctx.Done():
			return // client gone; any status we write is unread
		}
		line, err := encodeBatchLine(outcomes[i])
		if err != nil {
			line, _ = encodeBatchLine(batchFailure(items[i], i, err))
		}
		outcome := "ok"
		if outcomes[i].Error != "" {
			errCount++
			outcome = "error"
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		// Flush only when the stream is about to idle: if the next line (or
		// the terminal summary) follows immediately, it carries these bytes
		// and the per-line syscall is saved. Fresh, slow items still flush
		// every line, so streaming latency is unchanged where it matters.
		if flusher != nil && i+1 < len(items) {
			select {
			case <-done[i+1]:
			default:
				flusher.Flush()
			}
		}
		s.met.batchItems.With(outcome).Inc()
	}
	line, err := encodeBatchLine(BatchResult{
		Seq:  len(items) + 1,
		Done: &BatchSummary{Items: len(items), Errors: errCount},
	})
	if err != nil {
		return
	}
	_, _ = w.Write(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// runBatchItem executes one item through the shared result cache and
// renders its line. Errors are the item's, never the batch's.
func (s *Service) runBatchItem(ctx context.Context, it BatchItem, e *hmem.Engine, digest string, index int) BatchResult {
	out := BatchResult{Seq: index + 1, Index: index, ID: it.ID}
	if len(it.Policies) > 0 {
		results, err := exec.Map(ctx, e.Options().Parallel, len(it.Policies), func(j int) (hmem.Result, error) {
			return s.evaluateCached(ctx, e, digest, it.Workload, it.Policies[j])
		})
		if err != nil {
			out.Error = err.Error()
			return out
		}
		raw, err := json.Marshal(results)
		if err != nil {
			out.Error = err.Error()
			return out
		}
		out.Results = raw
		return out
	}
	key := resultKey(digest, it.Workload, it.Policy)
	if raw, ok := s.encodedResults.Load(key); ok {
		out.Result = raw.(json.RawMessage)
		return out
	}
	res, err := s.evaluateCached(ctx, e, digest, it.Workload, it.Policy)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	raw, err := json.Marshal(res)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	s.encodedResults.Store(key, json.RawMessage(raw))
	out.Result = raw
	return out
}
