package service

import (
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the drain-rate-derived hint: the ceiling of
// excess/rate clamped to [1, 60], degrading to the pre-adaptive constant 1
// whenever either input is unusable.
func TestRetryAfterSeconds(t *testing.T) {
	nan := 0.0
	nan /= nan
	cases := []struct {
		name         string
		excess, rate float64
		want         int
	}{
		{"no excess", 0, 5, 1},
		{"negative excess", -3, 5, 1},
		{"unmeasured rate", 4, 0, 1},
		{"negative rate", 4, -1, 1},
		{"nan excess", nan, 5, 1},
		{"nan rate", 4, nan, 1},
		{"exact division", 10, 5, 2},
		{"ceiling", 11, 5, 3},
		{"sub-second drain floors at 1", 0.5, 10, 1},
		{"clamped at 60", 1000, 1, 60},
		{"just under clamp", 59.5, 1, 60},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.excess, tc.rate); got != tc.want {
			t.Errorf("%s: retryAfterSeconds(%v, %v) = %d, want %d",
				tc.name, tc.excess, tc.rate, got, tc.want)
		}
	}
}

// admClock is a hand-cranked clock for admission tests.
type admClock struct{ t time.Time }

func (c *admClock) now() time.Time          { return c.t }
func (c *admClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newAdmClock() *admClock                { return &admClock{t: time.Unix(1000, 0)} }

func TestEwmaRate(t *testing.T) {
	clock := newAdmClock()
	var e ewmaRate
	e.now = clock.now

	if got := e.rate(); got != 0 {
		t.Fatalf("fresh rate = %v, want 0", got)
	}
	// First observation only starts the clock.
	e.observe(4)
	if got := e.rate(); got != 0 {
		t.Fatalf("rate after one observation = %v, want 0", got)
	}
	// 8 units over 2s -> 4/s, adopted directly as the first sample.
	clock.advance(2 * time.Second)
	e.observe(8)
	if got := e.rate(); got != 4 {
		t.Fatalf("rate = %v, want 4", got)
	}
	// Same-instant completions accumulate into the next interval instead of
	// dividing by zero: 2+2 units over the following 1s -> inst 4/s, EWMA
	// unchanged at 4.
	e.observe(2)
	clock.advance(time.Second)
	e.observe(2)
	if got := e.rate(); got != 4 {
		t.Fatalf("rate after same-instant credit = %v, want 4", got)
	}
	// A slower interval pulls the EWMA down by alpha: 1 unit over 1s ->
	// inst 1, ewma = 4 + 0.2*(1-4) = 3.4.
	clock.advance(time.Second)
	e.observe(1)
	if got := e.rate(); got < 3.39 || got > 3.41 {
		t.Fatalf("rate after slow interval = %v, want ~3.4", got)
	}
}

func TestAdmissionShedAndRetryAfter(t *testing.T) {
	clock := newAdmClock()
	a := newAdmission(AdmissionConfig{Budget: 10, Now: clock.now})

	// Under budget: admitted, even when the request itself crosses the line.
	ok, _ := a.admit(9)
	if !ok {
		t.Fatal("first request shed under budget")
	}
	ok, _ = a.admit(4) // 9 < 10, crossing to 13 is allowed
	if !ok {
		t.Fatal("line-crossing request shed")
	}
	// At/over budget: shed. No completions yet, so the hint degrades to 1.
	ok, retry := a.admit(1)
	if ok {
		t.Fatal("over-budget request admitted")
	}
	if retry != 1 {
		t.Fatalf("Retry-After with unmeasured drain = %d, want 1", retry)
	}
	// Cost-0 requests (memo hits) always pass.
	if ok, _ := a.admit(0); !ok {
		t.Fatal("cost-0 request shed")
	}
	a.release(0, time.Millisecond)

	// Train the drain estimator: two releases 1s apart -> ~4 units/s.
	a.release(9, time.Second)
	clock.advance(time.Second)
	a.release(4, time.Second)
	a.charge(14) // back over budget with a known rate
	_, retry = a.admit(2)
	// excess = 14+2-10 = 6 units at 4/s -> ceil(1.5) = 2s.
	if retry != 2 {
		t.Fatalf("Retry-After = %d, want 2 (6 units at 4/s)", retry)
	}

	if got := a.inflight(); got != 14 {
		t.Fatalf("inflight = %v, want 14", got)
	}
	// Double release clamps at zero rather than wedging admission open.
	a.release(20, 0)
	a.release(20, 0)
	if got := a.inflight(); got != 0 {
		t.Fatalf("inflight after over-release = %v, want 0", got)
	}
}

func TestAdmissionHealthLadder(t *testing.T) {
	clock := newAdmClock()
	hold := 2 * time.Second
	a := newAdmission(AdmissionConfig{Budget: 10, HealthHold: hold, Now: clock.now})

	if got := a.healthState(); got != healthOK {
		t.Fatalf("fresh state = %s, want ok", healthName(got))
	}
	// 7.5/10 crosses the 0.75 degraded ratio.
	a.charge(8)
	if got := a.healthState(); got != healthDegraded {
		t.Fatalf("state at 8/10 = %s, want degraded", healthName(got))
	}
	// Crossing the shedding ratio stamps both rungs.
	a.charge(3)
	if got := a.healthState(); got != healthShedding {
		t.Fatalf("state at 11/10 = %s, want shedding", healthName(got))
	}
	// Load drops, but the hold pins the state: hysteresis against flapping.
	a.release(11, time.Second)
	if got := a.healthState(); got != healthShedding {
		t.Fatalf("state inside hold = %s, want shedding", healthName(got))
	}
	clock.advance(hold + time.Millisecond)
	if got := a.healthState(); got != healthOK {
		t.Fatalf("state after hold = %s, want ok", healthName(got))
	}
	// Degraded alone does not stamp shedding.
	a.charge(8)
	a.release(8, time.Second)
	if got := a.healthState(); got != healthDegraded {
		t.Fatalf("state = %s, want degraded", healthName(got))
	}
	clock.advance(hold + time.Millisecond)
	if got := a.healthState(); got != healthOK {
		t.Fatalf("state after degraded hold = %s, want ok", healthName(got))
	}
}

// TestAdmissionFastPathAllocs gates the under-budget admission path at zero
// allocations: admit, healthState, and release must not allocate, or every
// request (and the AllocsPerRun acceptance criterion) pays for it.
func TestAdmissionFastPathAllocs(t *testing.T) {
	a := newAdmission(AdmissionConfig{Budget: 1 << 30})
	if got := testing.AllocsPerRun(200, func() {
		ok, _ := a.admit(1)
		if !ok {
			t.Fatal("admit refused under a huge budget")
		}
		_ = a.healthState()
		a.release(1, time.Microsecond)
	}); got != 0 {
		t.Fatalf("admission fast path allocates %v per run, want 0", got)
	}
}
