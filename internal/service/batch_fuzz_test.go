package service

import (
	"bytes"
	"testing"
)

// FuzzBatchRequest drives the exact production decode path for POST
// /v1/batch bodies. The invariants: no panic on any input, and every body
// the decoder accepts satisfies the handler's preconditions (non-empty,
// bounded, every item structurally valid) — the handler relies on them
// without re-checking.
func FuzzBatchRequest(f *testing.F) {
	f.Add([]byte(`{"items":[{"workload":"astar","policy":"ddr-only"}]}`))
	f.Add([]byte(`{"items":[{"id":"x","workload":"mcf","policies":["ddr-only","balanced"]}]}`))
	f.Add([]byte(`{"items":[{"workload":"astar","policy":"balanced","options":{"records_per_core":1000,"seed":7}}]}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{"items":[{"workload":"astar","policy":"ddr-only"}]}{}`))
	f.Add([]byte(`{"items":[{"workload":"astar","policy":"ddr-only","policies":["balanced"]}]}`))
	f.Add([]byte(`{"items":null}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeBatchRequest(body)
		if err != nil {
			return
		}
		if len(req.Items) == 0 || len(req.Items) > maxBatchItems {
			t.Fatalf("accepted a batch of %d items", len(req.Items))
		}
		for i := range req.Items {
			it := &req.Items[i]
			if it.Policy != "" && len(it.Policies) > 0 {
				t.Fatalf("item %d accepted with both policy and policies", i)
			}
			if it.Policy == "" && len(it.Policies) == 0 {
				t.Fatalf("item %d accepted with no policy", i)
			}
			if err := it.validate(); err != nil {
				t.Fatalf("accepted item %d fails validate: %v", i, err)
			}
		}
	})
}

// FuzzBatchFrame round-trips NDJSON stream frames through the same
// encode/decode pair the server and client use. Any frame the decoder
// accepts must re-encode to a fixed point: encode(decode(encode(v))) ==
// encode(v). That pins the wire framing — a field added on one side but
// not the other, or asymmetric omitempty handling, breaks the fixed point
// before it breaks a user.
func FuzzBatchFrame(f *testing.F) {
	f.Add([]byte(`{"seq":1,"index":0,"id":"a","result":{"workload":"astar","policy":"ddr-only","ipc":1.5}}`))
	f.Add([]byte(`{"seq":2,"index":1,"results":[{"ipc":1},{"ipc":2}]}`))
	f.Add([]byte(`{"seq":3,"index":2,"id":"x","error":"boom"}`))
	f.Add([]byte(`{"seq":4,"done":{"items":3,"errors":1}}`))
	f.Add([]byte(`{"seq":0}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, line []byte) {
		v1, err := decodeBatchLine(line)
		if err != nil {
			return
		}
		b1, err := encodeBatchLine(v1)
		if err != nil {
			// A decoded frame can hold RawMessage fragments that only
			// re-marshal if they were valid JSON; the decoder guarantees
			// that, so encode must succeed.
			t.Fatalf("decoded frame fails to encode: %v", err)
		}
		v2, err := decodeBatchLine(b1)
		if err != nil {
			t.Fatalf("our own encoding fails to decode: %v\nframe: %s", err, b1)
		}
		b2, err := encodeBatchLine(v2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("framing is not a fixed point:\nfirst:  %s\nsecond: %s", b1, b2)
		}
	})
}
