package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// shedConfig builds the per-role config for the shed tests: one queue slot
// and no drain workers, so the second submission overflows deterministically.
func shedConfig(role string) Config {
	var cfg Config
	if role == RoleCoordinator {
		cfg = clusterTestConfig(RoleCoordinator)
	} else {
		cfg = tinyConfig()
	}
	cfg.QueueDepth = 1
	cfg.JobWorkers = -1
	return cfg
}

// requestCount reads hmemd_requests_total{route,code} from /metrics.
func requestCount(t *testing.T, baseURL, route string, code int) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`hmemd_requests_total{route=%q,code=%q}`, route, fmt.Sprint(code))
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, want) {
			var n int
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, want), "%d", &n); err != nil {
				t.Fatalf("unparsable metric line %q", line)
			}
			return n
		}
	}
	return 0
}

// TestShedPaths pins the load-shedding contract at both roles: a queue-full
// submission is a 429 and a draining daemon's submission is a 503, each
// carrying a Retry-After hint and each landing in the right
// hmemd_requests_total{route,code} family — the numbers the load harness's
// shed taxonomy keys off.
func TestShedPaths(t *testing.T) {
	for _, role := range []string{RoleStandalone, RoleCoordinator} {
		t.Run(role+"/queue-full-429", func(t *testing.T) {
			_, c := newTestServer(t, shedConfig(role))
			ctx := context.Background()

			if _, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"}); err != nil {
				t.Fatalf("first submit: %v", err)
			}
			_, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("overflow submit err = %v, want 429", err)
			}
			if apiErr.RetryAfter != time.Second {
				t.Fatalf("429 Retry-After = %v, want 1s", apiErr.RetryAfter)
			}
			if n := requestCount(t, c.BaseURL, "POST /v1/jobs", http.StatusTooManyRequests); n != 1 {
				t.Fatalf("requests_total{POST /v1/jobs,429} = %d, want 1", n)
			}
			if n := requestCount(t, c.BaseURL, "POST /v1/jobs", http.StatusAccepted); n != 1 {
				t.Fatalf("requests_total{POST /v1/jobs,202} = %d, want 1", n)
			}
		})

		t.Run(role+"/draining-503", func(t *testing.T) {
			svc, c := newTestServer(t, shedConfig(role))
			// Shutdown returns with the httptest server still serving, and
			// `closing` stays true forever after — exactly the drain window a
			// client can race into.
			if err := svc.Shutdown(context.Background()); err != nil {
				t.Fatalf("shutdown: %v", err)
			}

			_, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1"})
			var apiErr *APIError
			if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("draining submit err = %v, want 503", err)
			}
			if apiErr.RetryAfter != time.Second {
				t.Fatalf("503 Retry-After = %v, want 1s", apiErr.RetryAfter)
			}
			if n := requestCount(t, c.BaseURL, "POST /v1/jobs", http.StatusServiceUnavailable); n != 1 {
				t.Fatalf("requests_total{POST /v1/jobs,503} = %d, want 1", n)
			}
		})
	}
}
