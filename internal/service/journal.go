package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmem/internal/report"
)

// journalFileName is the append-only NDJSON log inside Config.JournalDir.
const journalFileName = "journal.ndjson"

// maxJobAttempts bounds how many times a journaled job may be (re)started.
// A job that was running at three consecutive crashes is treated as poison —
// the likeliest explanation is that the job itself kills the process — and
// is failed on replay instead of re-enqueued a fourth time.
const maxJobAttempts = 3

// journalRecord is one NDJSON line. Two ops share the type:
//
//   - "submit" records a job's existence and its full request, written
//     before the submission is acknowledged;
//   - "state" records a state transition (and, for done, the result table).
//
// Seq is assigned by the journal and strictly increases across restarts, so
// replay can order records without trusting file position, and re-enqueued
// runs are distinguishable from the original submission.
type journalRecord struct {
	Seq   int64     `json:"seq"`
	Op    string    `json:"op"`
	JobID string    `json:"job_id"`
	At    time.Time `json:"at"`

	// submit fields
	Experiment string        `json:"experiment,omitempty"`
	Options    *OptionsPatch `json:"options,omitempty"`
	IdemKey    string        `json:"idempotency_key,omitempty"`
	TimeoutMS  int64         `json:"timeout_ms,omitempty"`

	// state fields
	State  string        `json:"state,omitempty"`
	Error  string        `json:"error,omitempty"`
	Result *report.Table `json:"result,omitempty"`
}

// journal is the durable, append-only job log. Appends are best-effort by
// design: a full disk must degrade the durability guarantee (jobs submitted
// during the outage are lost on restart), never the daemon — failures are
// counted and surfaced on /metrics instead of propagated.
//
// Writes go through the OS page cache without fsync: the journal protects
// against process death (crash, OOM-kill, SIGKILL), which is the failure
// mode hmemd can do something about. Machine-level crash consistency would
// buy little for an advisory cache that can always recompute.
type journal struct {
	mu  sync.Mutex
	f   *os.File
	w   io.Writer
	seq int64

	appendErrs atomic.Uint64
}

// openJournal reads dir's existing journal (if any) and opens it for append.
// A torn trailing line — what a crash mid-append leaves behind — is skipped,
// as is any other unparsable line: a best-effort journal must not brick the
// daemon that owns it. wrap, when non-nil, decorates the append writer
// (fault-injection seam).
func openJournal(dir string, wrap func(io.Writer) io.Writer) (*journal, []journalRecord, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("service: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	var recs []journalRecord
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				continue
			}
			recs = append(recs, rec)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("service: reading journal: %w", err)
	}
	// File order is already seq order for an intact journal; sort anyway so
	// a hand-edited or concatenated journal still replays coherently.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("service: opening journal: %w", err)
	}
	jl := &journal{f: f, w: f}
	if wrap != nil {
		jl.w = wrap(f)
	}
	for _, r := range recs {
		if r.Seq > jl.seq {
			jl.seq = r.Seq
		}
	}
	return jl, recs, nil
}

// append assigns the next sequence number and writes one line. Safe on a nil
// journal (journalling disabled). Errors are absorbed into the append-error
// counter.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.seq++
	rec.Seq = jl.seq
	data, err := json.Marshal(rec)
	if err == nil {
		data = append(data, '\n')
		_, err = jl.w.Write(data)
	}
	if err != nil {
		jl.appendErrs.Add(1)
	}
}

// appendErrors reports how many appends have been dropped. Safe on nil.
func (jl *journal) appendErrors() uint64 {
	if jl == nil {
		return 0
	}
	return jl.appendErrs.Load()
}

// close releases the journal file. Safe on nil.
func (jl *journal) close() {
	if jl != nil && jl.f != nil {
		jl.f.Close()
	}
}

// RecoveryStats summarizes a startup journal replay, for the daemon's
// one-line recovery log and tests.
type RecoveryStats struct {
	// Restored is the total number of jobs reconstructed from the journal.
	Restored int
	// Terminal of those were already done/failed/cancelled; their results
	// are served from memory again but they are not re-run.
	Terminal int
	// Requeued jobs were queued or running at the crash and have been
	// re-enqueued exactly once.
	Requeued int
	// PoisonFailed jobs hit maxJobAttempts and were failed instead of
	// re-enqueued.
	PoisonFailed int
}

// replayedJob pairs a reconstructed job with how many times it had entered
// the running state before the crash.
type replayedJob struct {
	j        *job
	attempts int
}

// replayJournal rebuilds the job store from journal records and returns the
// jobs that must be re-enqueued, in original submission order. Terminal jobs
// are restored for GET /v1/jobs/{id}; interrupted ones either requeue (with
// a fresh journaled "queued" transition, so attempts accumulate across
// repeated crashes) or — at maxJobAttempts — fail as poison.
func (s *Service) replayJournal(recs []journalRecord) []*job {
	byID := map[string]*replayedJob{}
	var order []*replayedJob
	maxID := 0
	for _, rec := range recs {
		switch rec.Op {
		case "submit":
			if rec.JobID == "" || byID[rec.JobID] != nil {
				continue
			}
			j := &job{
				id:         rec.JobID,
				experiment: rec.Experiment,
				options:    rec.Options,
				idemKey:    rec.IdemKey,
				timeoutMS:  rec.TimeoutMS,
				state:      JobQueued,
				createdAt:  rec.At,
				notify:     make(chan struct{}),
			}
			j.events = append(j.events, JobEvent{Seq: 1, JobID: j.id, State: JobQueued})
			rj := &replayedJob{j: j}
			byID[rec.JobID] = rj
			order = append(order, rj)
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.JobID, "job-")); err == nil && n > maxID {
				maxID = n
			}
		case "state":
			rj := byID[rec.JobID]
			if rj == nil {
				continue
			}
			j := rj.j
			at := rec.At
			j.state = rec.State
			j.err = rec.Error
			if rec.Result != nil {
				j.result = rec.Result
			}
			switch rec.State {
			case JobRunning:
				rj.attempts++
				j.startedAt = &at
			case JobDone, JobFailed, JobCancelled:
				j.finishedAt = &at
			}
			j.events = append(j.events, JobEvent{
				Seq: len(j.events) + 1, JobID: j.id, State: rec.State, Error: rec.Error,
			})
		}
	}

	var requeue []*job
	for _, rj := range order {
		j := rj.j
		s.jobs.restore(j)
		s.recovery.Restored++
		if terminal(j.state) {
			s.recovery.Terminal++
			continue
		}
		if rj.attempts >= maxJobAttempts {
			s.setJobState(j, JobFailed, fmt.Sprintf(
				"interrupted %d times by daemon restarts; not retrying (poison job)", rj.attempts), nil)
			s.recovery.PoisonFailed++
			continue
		}
		// Journal the fresh queued state so the *next* crash still sees the
		// accumulated running count and the requeue itself is exactly-once:
		// a replayed journal never contains a requeue decision, only states.
		if j.state != JobQueued {
			s.jobRetries.Add(1)
		}
		s.setJobState(j, JobQueued, "", nil)
		s.recovery.Requeued++
		requeue = append(requeue, j)
	}
	s.jobs.resumeIDs(maxID)
	return requeue
}
