package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmem/internal/report"
)

// journalFileName is the append-only NDJSON log inside Config.JournalDir.
const journalFileName = "journal.ndjson"

// maxJobAttempts bounds how many times a journaled job may be (re)started.
// A job that was running at three consecutive crashes is treated as poison —
// the likeliest explanation is that the job itself kills the process — and
// is failed on replay instead of re-enqueued a fourth time.
const maxJobAttempts = 3

// journalRecord is one NDJSON line. Two ops share the type:
//
//   - "submit" records a job's existence and its full request, written
//     before the submission is acknowledged;
//   - "state" records a state transition (and, for done, the result table).
//
// Seq is assigned by the journal and strictly increases across restarts, so
// replay can order records without trusting file position, and re-enqueued
// runs are distinguishable from the original submission.
type journalRecord struct {
	Seq   int64     `json:"seq"`
	Op    string    `json:"op"`
	JobID string    `json:"job_id"`
	At    time.Time `json:"at"`

	// submit fields
	Experiment string        `json:"experiment,omitempty"`
	Options    *OptionsPatch `json:"options,omitempty"`
	IdemKey    string        `json:"idempotency_key,omitempty"`
	TimeoutMS  int64         `json:"timeout_ms,omitempty"`

	// state fields
	State  string        `json:"state,omitempty"`
	Error  string        `json:"error,omitempty"`
	Result *report.Table `json:"result,omitempty"`

	// Attempts is only written by the startup compaction rewrite: it carries
	// the number of running transitions the compacted-away history contained,
	// so poison detection keeps counting across compactions.
	Attempts int `json:"attempts,omitempty"`
}

// journal is the durable job log: append-only while the daemon runs,
// compacted down to each job's current state on the next startup so a
// long-lived daemon's replay time and disk use stay proportional to the
// number of jobs, not the number of transitions. Appends are best-effort by
// design: a full disk must degrade the durability guarantee, never the
// daemon — a failed write is retried once, then counted and surfaced on
// /metrics instead of propagated. A lost "submit" loses that job on
// restart; a lost terminal "state" record is worse — the journal still says
// running, so a restart re-executes a job that in fact finished. That
// violation of at-most-once is bounded (maxJobAttempts poisons a repeat
// offender) and is the price of never blocking the serving path on disk.
//
// Writes go through the OS page cache without fsync: the journal protects
// against process death (crash, OOM-kill, SIGKILL), which is the failure
// mode hmemd can do something about. Machine-level crash consistency would
// buy little for an advisory cache that can always recompute.
type journal struct {
	mu  sync.Mutex
	f   *os.File
	w   io.Writer
	seq int64
	// dirty is set after a failed or short write: the file may end in a torn
	// fragment, so the next write leads with '\n' to sever it from the
	// fragment instead of gluing two records into one unparsable line.
	dirty bool

	appendErrs atomic.Uint64
}

// journalOpenStats reports what opening the journal found and cleaned up.
type journalOpenStats struct {
	// corruptLines is how many unparsable lines were skipped: one torn tail
	// is expected after a crash mid-append, anything more is corruption an
	// operator should know turned the replay lossy.
	corruptLines int
	// compacted is how many superseded or orphaned records the startup
	// rewrite dropped.
	compacted int
}

// openJournal reads dir's existing journal (if any), compacts it, and opens
// it for append. A torn trailing line — what a crash mid-append leaves
// behind — is skipped, as is any other unparsable line: a best-effort
// journal must not brick the daemon that owns it; the skips are counted so
// operators can tell a clean replay from a lossy one. wrap, when non-nil,
// decorates the append writer (fault-injection seam).
func openJournal(dir string, wrap func(io.Writer) io.Writer) (*journal, []journalRecord, journalOpenStats, error) {
	var stats journalOpenStats
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("service: creating journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFileName)
	var recs []journalRecord
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				stats.corruptLines++
				continue
			}
			recs = append(recs, rec)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, stats, fmt.Errorf("service: reading journal: %w", err)
	}
	// File order is already seq order for an intact journal; sort anyway so
	// a hand-edited or concatenated journal still replays coherently.
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	var maxSeq int64
	for _, r := range recs {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}

	// Compact before opening for append: without this the file accumulates
	// every transition ever (plus one requeue record per interrupted job per
	// restart) and replay cost grows without bound for a long-lived daemon.
	// The rewrite is atomic (tmp + rename) and best-effort — if it fails the
	// old file is still valid, just larger, and appends continue past its
	// original tail.
	kept := compactRecords(recs)
	stats.compacted = len(recs) - len(kept)
	if stats.compacted > 0 || stats.corruptLines > 0 {
		if rewriteJournal(path, kept) == nil {
			recs = kept
		} else {
			stats.compacted = 0
		}
	} else {
		recs = kept
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("service: opening journal: %w", err)
	}
	// Compaction preserves original sequence numbers, so resuming from the
	// pre-compaction maximum keeps seq strictly increasing either way.
	jl := &journal{f: f, w: f, seq: maxSeq}
	if wrap != nil {
		jl.w = wrap(f)
	}
	return jl, recs, stats, nil
}

// compactRecords collapses a record list to the minimum that replays
// identically: per job, its submit record — carrying the accumulated count
// of compacted-away running transitions in Attempts — plus its latest state
// record (with the result table for done jobs). Original sequence numbers
// are preserved. Orphaned state records, whose submit line was lost to
// corruption, are dropped: without a request to re-run there is nothing
// replay could do with them.
func compactRecords(recs []journalRecord) []journalRecord {
	type agg struct {
		submit   journalRecord
		last     *journalRecord
		attempts int
	}
	byID := map[string]*agg{}
	var order []*agg
	for _, rec := range recs {
		switch rec.Op {
		case "submit":
			if rec.JobID == "" || byID[rec.JobID] != nil {
				continue
			}
			a := &agg{submit: rec, attempts: rec.Attempts}
			byID[rec.JobID] = a
			order = append(order, a)
		case "state":
			a := byID[rec.JobID]
			if a == nil {
				continue
			}
			if rec.State == JobRunning {
				a.attempts++
			}
			r := rec
			a.last = &r
		}
	}
	var out []journalRecord
	for _, a := range order {
		sub := a.submit
		sub.Attempts = a.attempts
		if a.last != nil && a.last.State == JobRunning {
			// The kept running record is counted again at replay.
			sub.Attempts--
		}
		out = append(out, sub)
		if a.last != nil {
			out = append(out, *a.last)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// rewriteJournal atomically replaces the journal file with recs.
func rewriteJournal(path string, recs []journalRecord) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// append assigns the next sequence number and writes one line. Safe on a nil
// journal (journalling disabled). A failed write is retried once — a dropped
// terminal record does not just lose a result, it re-executes the job on
// restart — and each failed attempt is absorbed into the append-error
// counter. A result table json cannot encode (NaN/Inf cells) costs the
// record its result, never the transition: replay must still see the job as
// finished.
func (jl *journal) append(rec journalRecord) {
	if jl == nil {
		return
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	jl.seq++
	rec.Seq = jl.seq
	data, err := json.Marshal(rec)
	if err != nil && rec.Result != nil {
		rec.Result = nil
		data, err = json.Marshal(rec)
	}
	if err != nil {
		jl.appendErrs.Add(1)
		return
	}
	data = append(data, '\n')
	for attempt := 0; attempt < 2; attempt++ {
		line := data
		if jl.dirty {
			line = append([]byte{'\n'}, data...)
		}
		if _, werr := jl.w.Write(line); werr == nil {
			jl.dirty = false
			return
		}
		jl.dirty = true
		jl.appendErrs.Add(1)
	}
}

// size reports the journal file's current size in bytes. Safe on nil; a
// stat failure reads as 0 (the gauge is advisory).
func (jl *journal) size() int64 {
	if jl == nil || jl.f == nil {
		return 0
	}
	fi, err := jl.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// appendErrors reports how many appends have been dropped. Safe on nil.
func (jl *journal) appendErrors() uint64 {
	if jl == nil {
		return 0
	}
	return jl.appendErrs.Load()
}

// close releases the journal file. Safe on nil.
func (jl *journal) close() {
	if jl != nil && jl.f != nil {
		jl.f.Close()
	}
}

// RecoveryStats summarizes a startup journal replay, for the daemon's
// one-line recovery log and tests.
type RecoveryStats struct {
	// Restored is the total number of jobs reconstructed from the journal.
	Restored int
	// Terminal of those were already done/failed/cancelled; their results
	// are served from memory again but they are not re-run.
	Terminal int
	// Requeued jobs were queued or running at the crash and have been
	// re-enqueued exactly once.
	Requeued int
	// PoisonFailed jobs hit maxJobAttempts and were failed instead of
	// re-enqueued.
	PoisonFailed int
	// CorruptLines is how many unparsable journal lines replay skipped. One
	// is the expected torn tail of a crash mid-append; more means the replay
	// was lossy (a skipped submit drops that job and orphans its states).
	CorruptLines int
	// CompactedRecords is how many superseded records the startup rewrite
	// dropped to keep the journal's size bounded.
	CompactedRecords int
}

// replayedJob pairs a reconstructed job with how many times it had entered
// the running state before the crash.
type replayedJob struct {
	j        *job
	attempts int
}

// replayJournal rebuilds the job store from journal records and returns the
// jobs that must be re-enqueued, in original submission order. Terminal jobs
// are restored for GET /v1/jobs/{id}; interrupted ones either requeue (with
// a fresh journaled "queued" transition, so attempts accumulate across
// repeated crashes) or — at maxJobAttempts — fail as poison.
func (s *Service) replayJournal(recs []journalRecord) []*job {
	byID := map[string]*replayedJob{}
	var order []*replayedJob
	maxID := 0
	for _, rec := range recs {
		switch rec.Op {
		case "submit":
			if rec.JobID == "" || byID[rec.JobID] != nil {
				continue
			}
			j := &job{
				id:         rec.JobID,
				experiment: rec.Experiment,
				options:    rec.Options,
				idemKey:    rec.IdemKey,
				timeoutMS:  rec.TimeoutMS,
				state:      JobQueued,
				createdAt:  rec.At,
				notify:     make(chan struct{}),
			}
			j.events = append(j.events, JobEvent{Seq: 1, JobID: j.id, State: JobQueued})
			// Attempts carries running transitions a previous startup
			// compacted away; state records below add the rest.
			rj := &replayedJob{j: j, attempts: rec.Attempts}
			byID[rec.JobID] = rj
			order = append(order, rj)
			if n, err := strconv.Atoi(strings.TrimPrefix(rec.JobID, "job-")); err == nil && n > maxID {
				maxID = n
			}
		case "state":
			rj := byID[rec.JobID]
			if rj == nil {
				continue
			}
			j := rj.j
			at := rec.At
			j.state = rec.State
			j.err = rec.Error
			if rec.Result != nil {
				j.result = rec.Result
			}
			switch rec.State {
			case JobRunning:
				rj.attempts++
				j.startedAt = &at
			case JobDone, JobFailed, JobCancelled:
				j.finishedAt = &at
			}
			j.events = append(j.events, JobEvent{
				Seq: len(j.events) + 1, JobID: j.id, State: rec.State, Error: rec.Error,
			})
		}
	}

	var requeue []*job
	for _, rj := range order {
		j := rj.j
		s.jobs.restore(j)
		s.recovery.Restored++
		if terminal(j.state) {
			s.recovery.Terminal++
			continue
		}
		if rj.attempts >= maxJobAttempts {
			s.setJobState(j, JobFailed, fmt.Sprintf(
				"interrupted %d times by daemon restarts; not retrying (poison job)", rj.attempts), nil)
			s.recovery.PoisonFailed++
			continue
		}
		// Journal the fresh queued state so the *next* crash still sees the
		// accumulated running count and the requeue itself is exactly-once:
		// a replayed journal never contains a requeue decision, only states.
		if j.state != JobQueued {
			s.jobRetries.Add(1)
		}
		s.setJobState(j, JobQueued, "", nil)
		s.recovery.Requeued++
		requeue = append(requeue, j)
	}
	s.jobs.resumeIDs(maxID)
	return requeue
}
