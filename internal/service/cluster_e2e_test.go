package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmem"
	"hmem/internal/chaos"
	"hmem/internal/cluster"
)

// clusterTestConfig is tinyConfig restricted to two workloads so the
// fan-out stays test-sized, with fast liveness sweeps.
func clusterTestConfig(role string) Config {
	cfg := tinyConfig()
	cfg.Defaults.Workloads = []string{"astar", "mix1"}
	cfg.Role = role
	cfg.Cluster = ClusterConfig{
		TTL:         2 * time.Second,
		HealthEvery: 25 * time.Millisecond,
	}
	return cfg
}

// startWorkers brings up n worker nodes and registers them with the
// coordinator, returning their services and base URLs.
func startWorkers(t *testing.T, coord *Service, n int) ([]*Service, []string) {
	t.Helper()
	var svcs []*Service
	var urls []string
	for i := 0; i < n; i++ {
		w, err := New(clusterTestConfig(RoleWorker))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			_ = w.Shutdown(ctx)
			ts.Close()
		})
		id := "w" + string(rune('1'+i))
		if _, err := coord.cluster.reg.Register(cluster.RegisterRequest{ID: id, URL: ts.URL}); err != nil {
			t.Fatal(err)
		}
		svcs = append(svcs, w)
		urls = append(urls, ts.URL)
	}
	return svcs, urls
}

// evaluateJSON runs one evaluation and returns the result's canonical JSON.
func evaluateJSON(t *testing.T, c *Client, workload string, policy hmem.PolicyName) []byte {
	t.Helper()
	res, err := c.Evaluate(context.Background(), EvaluateRequest{Workload: workload, Policy: policy})
	if err != nil {
		t.Fatalf("evaluate %s/%s: %v", workload, policy, err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestClusterByteIdenticalToStandalone is the subsystem's whole correctness
// contract: the same evaluation — profiling, policy run, migration run, and
// the sharded fault study behind the SER figure — must produce
// byte-identical results standalone, with one worker, and with three.
func TestClusterByteIdenticalToStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations across multiple in-process nodes")
	}
	cases := []struct {
		workload string
		policy   hmem.PolicyName
	}{
		{"astar", "cc-migration"},
		{"mix1", "balanced"},
	}

	cfg := clusterTestConfig(RoleStandalone)
	cfg.Role = ""
	_, standalone := newTestServer(t, cfg)
	var want [][]byte
	for _, tc := range cases {
		want = append(want, evaluateJSON(t, standalone, tc.workload, tc.policy))
	}

	for _, workers := range []int{1, 3} {
		coord, cc := newTestServer(t, clusterTestConfig(RoleCoordinator))
		workerSvcs, _ := startWorkers(t, coord, workers)
		for i, tc := range cases {
			got := evaluateJSON(t, cc, tc.workload, tc.policy)
			if string(got) != string(want[i]) {
				t.Errorf("%d workers: %s/%s differs from standalone\nstandalone: %s\ncluster:    %s",
					workers, tc.workload, tc.policy, want[i], got)
			}
		}
		stats := coord.cluster.sched.Stats()
		if stats.Placed == 0 {
			t.Errorf("%d workers: coordinator placed no shards — delegation never happened", workers)
		}
		var executed uint64
		for _, w := range workerSvcs {
			executed += w.cluster.executed.Load()
		}
		if executed == 0 {
			t.Errorf("%d workers: no worker executed a shard", workers)
		}
	}
}

// TestClusterBatchByteIdentical routes a batch through a coordinator: each
// item shards independently across the ring (coalescing no-ops under the
// cluster delegate — a plan would serialize what the ring parallelizes),
// and every item's bytes still match a standalone server's batch answer.
func TestClusterBatchByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations across multiple in-process nodes")
	}
	items := []BatchItem{
		{ID: "a", Workload: "astar", Policy: "cc-migration"},
		{ID: "b", Workload: "astar", Policy: "balanced"},
		{ID: "c", Workload: "mix1", Policy: "perf-focused"},
	}
	ctx := context.Background()

	cfg := clusterTestConfig(RoleStandalone)
	cfg.Role = ""
	standaloneSvc, standalone := newTestServer(t, cfg)
	want, wantSum, err := standalone.CollectBatch(ctx, BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if wantSum.Errors != 0 {
		t.Fatalf("standalone summary = %+v", wantSum)
	}
	if st := standaloneSvc.TraceStats(); st.CoalesceHits == 0 {
		t.Error("standalone batch never coalesced — the contrast below is vacuous")
	}

	coord, cc := newTestServer(t, clusterTestConfig(RoleCoordinator))
	workerSvcs, _ := startWorkers(t, coord, 2)
	got, gotSum, err := cc.CollectBatch(ctx, BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if gotSum != wantSum {
		t.Fatalf("cluster summary = %+v, want %+v", gotSum, wantSum)
	}
	for i := range want {
		if string(got[i].Result) != string(want[i].Result) || got[i].ID != want[i].ID {
			t.Errorf("item %s: cluster bytes differ from standalone\nstandalone: %s\ncluster:    %s",
				want[i].ID, want[i].Result, got[i].Result)
		}
	}
	// The work really sharded: the ring placed and executed, and no item was
	// served from a coordinator-side plan. (Opens may be nonzero: a shard
	// that exhausts the ring falls back to a local fresh build by design.
	// CoalesceHits is the coalescing invariant — with the delegate installed,
	// AcquireTracePlan no-ops, so nothing can replay locally.)
	if coord.cluster.sched.Stats().Placed == 0 {
		t.Error("coordinator placed no shards for the batch")
	}
	var executed uint64
	for _, w := range workerSvcs {
		executed += w.cluster.executed.Load()
	}
	if executed == 0 {
		t.Error("no worker executed a shard for the batch")
	}
	if st := coord.TraceStats(); st.CoalesceHits != 0 {
		t.Errorf("coordinator served %d coalesce hits; delegated items must not coalesce locally", st.CoalesceHits)
	}
}

// TestClusterSurvivesWorkerKill cuts one of two workers off mid-run: every
// shard it owned must be re-placed on the survivor exactly once, and the
// final answer must still be byte-identical to standalone.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations across multiple in-process nodes")
	}
	cfg := clusterTestConfig(RoleStandalone)
	cfg.Role = ""
	_, standalone := newTestServer(t, cfg)
	want := evaluateJSON(t, standalone, "astar", "cc-migration")

	part := chaos.NewPartition(nil)
	coordCfg := clusterTestConfig(RoleCoordinator)
	coordCfg.Cluster.Transport = part
	coord, cc := newTestServer(t, coordCfg)
	workerSvcs, urls := startWorkers(t, coord, 2)

	// Warm nothing; partition w1 before the run so every shard the ring
	// hands it fails over to w2 on first contact — the deterministic
	// equivalent of killing the process mid-grid.
	w1Host := strings.TrimPrefix(urls[0], "http://")
	part.Block(w1Host)

	got := evaluateJSON(t, cc, "astar", "cc-migration")
	if string(got) != string(want) {
		t.Errorf("result after worker kill differs from standalone\nstandalone: %s\ncluster:    %s", want, got)
	}

	stats := coord.cluster.sched.Stats()
	if stats.Retries == 0 {
		t.Error("no shard was retried — the partition never bit")
	}
	// Exactly once: every failed dispatch moved to the one survivor, so
	// placements = executions on w2 + the failed attempts, and w1 ran
	// nothing.
	if n := workerSvcs[0].cluster.executed.Load(); n != 0 {
		t.Errorf("partitioned worker executed %d shards, want 0", n)
	}
	w2 := workerSvcs[1].cluster.executed.Load()
	if w2 == 0 {
		t.Error("survivor executed nothing")
	}
	if stats.Retries+w2 != stats.Placed {
		t.Errorf("placed=%d retries=%d survivor-executed=%d: each dead shard should re-place exactly once",
			stats.Placed, stats.Retries, w2)
	}
	if part.Dropped() == 0 {
		t.Error("partition dropped no requests")
	}

	// Heal and re-evaluate: the coordinator's dispatch cache answers
	// without any new placement.
	part.Heal()
	before := coord.cluster.sched.Stats().Placed
	_ = evaluateJSON(t, cc, "astar", "cc-migration")
	if after := coord.cluster.sched.Stats().Placed; after != before {
		t.Errorf("re-evaluation re-placed shards (%d -> %d), want cache hit", before, after)
	}
}

// TestClusterRegistrationLifecycle exercises the membership endpoints the
// way cmd/hmemd's heartbeat loop drives them, including TTL expiry.
func TestClusterRegistrationLifecycle(t *testing.T) {
	cfg := clusterTestConfig(RoleCoordinator)
	cfg.Cluster.TTL = 150 * time.Millisecond
	coord, cc := newTestServer(t, cfg)
	ctx := context.Background()

	ttl, err := cc.ClusterRegister(ctx, cluster.RegisterRequest{ID: "w1", URL: "http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if ttl != 150*time.Millisecond {
		t.Fatalf("ttl = %s, want 150ms", ttl)
	}
	if _, err := cc.ClusterRegister(ctx, cluster.RegisterRequest{ID: "w2", URL: "http://127.0.0.1:2"}); err != nil {
		t.Fatal(err)
	}
	ws, err := cc.ClusterWorkers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("workers = %d, want 2", len(ws))
	}
	if err := cc.ClusterDeregister(ctx, "w2"); err != nil {
		t.Fatal(err)
	}
	if ws, _ = cc.ClusterWorkers(ctx); len(ws) != 1 {
		t.Fatalf("after deregister: workers = %d, want 1", len(ws))
	}
	// Stop heartbeating w1 and let the sweeper expire it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ws, _ = cc.ClusterWorkers(ctx); len(ws) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never expired; still %v", ws)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if s := coord.cluster.reg.Stats(); s.Expiries != 1 {
		t.Fatalf("expiries = %d, want 1", s.Expiries)
	}
}

// TestClusterEndpointsRefuseWrongRole locks in the role discipline: a
// standalone node has no cluster surface, and a coordinator never executes
// shards itself (that way lies delegate recursion).
func TestClusterEndpointsRefuseWrongRole(t *testing.T) {
	_, standalone := newTestServer(t, tinyConfig())
	ctx := context.Background()
	if _, err := standalone.ClusterWorkers(ctx); err == nil {
		t.Error("standalone served /v1/cluster/workers")
	}
	if _, err := standalone.ClusterRegister(ctx, cluster.RegisterRequest{ID: "w", URL: "http://x:1"}); err == nil {
		t.Error("standalone accepted a registration")
	}

	coordCfg := clusterTestConfig(RoleCoordinator)
	coord, cc := newTestServer(t, coordCfg)
	if coord.Role() != RoleCoordinator {
		t.Fatalf("role = %q", coord.Role())
	}
	var out json.RawMessage
	err := cc.do(ctx, "POST", "/v1/cluster/shard", cluster.Shard{Kind: cluster.KindProfile, Workload: "astar", Digest: "x"}, &out)
	if err == nil {
		t.Error("coordinator executed a shard")
	}

	badCfg := tinyConfig()
	badCfg.Role = "supervisor"
	if _, err := New(badCfg); err == nil {
		t.Error("unknown role accepted")
	}
}

// TestClusterShardDigestMismatch is the skew guard: a worker whose resolved
// options digest differently must refuse the shard rather than answer with
// silently different numbers.
func TestClusterShardDigestMismatch(t *testing.T) {
	_, wc := newTestServer(t, clusterTestConfig(RoleWorker))
	opts := clusterTestConfig(RoleWorker).Defaults
	raw, err := json.Marshal(opts)
	if err != nil {
		t.Fatal(err)
	}
	sh := cluster.Shard{Kind: cluster.KindProfile, Workload: "astar", Digest: "deadbeef", Options: raw}
	var out json.RawMessage
	err = wc.do(context.Background(), "POST", "/v1/cluster/shard", sh, &out)
	apiErr, ok := err.(*APIError)
	if !ok || apiErr.StatusCode != 409 {
		t.Fatalf("digest mismatch: got %v, want 409", err)
	}
	if !strings.Contains(apiErr.Message, "digest mismatch") {
		t.Fatalf("unexpected message %q", apiErr.Message)
	}
}
