package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hmem"
	"hmem/internal/chaos"
)

// TestBatchReconnectAfterSeveredStream severs the first batch connection one
// NDJSON line into the stream and asserts EvaluateBatch reconnects, replays
// the (deterministic, cached) stream, and still delivers every item exactly
// once plus the terminal summary — the same Seq-dedup contract the job
// watch stream keeps.
func TestBatchReconnectAfterSeveredStream(t *testing.T) {
	svc, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var batches atomic.Int64
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/v1/batch") && batches.Add(1) == 1 {
			inner.ServeHTTP(&severOnce{ResponseWriter: w}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
		ts.Close()
	})
	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: 10 * time.Millisecond}

	items := []BatchItem{
		{ID: "a", Workload: "astar", Policy: hmem.PolicyDDROnly},
		{ID: "b", Workload: "astar", Policy: hmem.PolicyBalanced},
		{ID: "c", Workload: "mcf", Policy: hmem.PolicyDDROnly},
		{ID: "d", Workload: "mcf", Policy: hmem.PolicyBalanced},
	}
	seen := make(map[int]int)
	sum, err := c.EvaluateBatch(context.Background(), BatchRequest{Items: items}, func(r BatchResult) {
		seen[r.Index]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := batches.Load(); got < 2 {
		t.Fatalf("batch POSTs = %d, want at least 2 (sever must force a reconnect)", got)
	}
	if sum.Items != len(items) || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want %d items, 0 errors", sum, len(items))
	}
	for i := range items {
		if seen[i] != 1 {
			t.Errorf("item %d delivered %d times, want exactly once", i, seen[i])
		}
	}
	if len(seen) != len(items) {
		t.Errorf("delivered %d distinct items, want %d", len(seen), len(items))
	}
}

// TestBatchItemFaultIsolation injects a trace fault into exactly one
// workload via the Config.TraceWrap seam and asserts the blast radius is
// one item: the faulted item carries its error on its own result line
// while the rest of the batch — including another policy on a healthy
// workload — completes normally.
func TestBatchItemFaultIsolation(t *testing.T) {
	inj, err := chaos.New(chaos.Plan{
		Trace: []chaos.TraceFault{{AtRecord: 10, Mode: chaos.ModeError}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.TraceWrap = func(workloadName string, s hmem.TraceStream) hmem.TraceStream {
		if workloadName == "mcf" {
			return inj.Stream(s)
		}
		return s
	}
	_, c := newTestServer(t, cfg)

	items := []BatchItem{
		{ID: "ok-1", Workload: "astar", Policy: hmem.PolicyDDROnly},
		{ID: "bad", Workload: "mcf", Policy: hmem.PolicyDDROnly},
		{ID: "ok-2", Workload: "soplex", Policy: hmem.PolicyBalanced},
	}
	results, sum, err := c.CollectBatch(context.Background(), BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Items != 3 || sum.Errors != 1 {
		t.Fatalf("summary = %+v, want 3 items with exactly 1 error", sum)
	}
	for _, res := range results {
		switch res.ID {
		case "bad":
			if res.Error == "" {
				t.Error("faulted item carried no error")
			} else if !strings.Contains(res.Error, "injected") {
				t.Errorf("faulted item error = %q, want the injected trace fault", res.Error)
			}
			if len(res.Result) != 0 {
				t.Error("faulted item carried a result payload")
			}
		default:
			if res.Error != "" {
				t.Errorf("healthy item %s failed: %s", res.ID, res.Error)
			}
			if _, err := res.Evaluation(); err != nil {
				t.Errorf("healthy item %s: %v", res.ID, err)
			}
		}
	}
	if inj.Stats().Trace == 0 {
		t.Error("injector never fired; the fault seam is not wired")
	}
}
