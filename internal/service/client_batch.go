package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// NewPooledClient returns a Client tuned for high-throughput batch
// traffic: a dedicated transport whose per-host connection pool is deep
// enough that concurrent batches and their NDJSON streams ride warm
// keep-alive connections instead of paying a dial per request. conns
// bounds the idle pool (<=0 = 64). The returned client is a plain Client —
// set Retries/Breaker as usual.
func NewPooledClient(baseURL string, conns int) *Client {
	if conns <= 0 {
		conns = 64
	}
	return &Client{
		BaseURL: baseURL,
		HTTPClient: &http.Client{
			Timeout: 5 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        conns,
				MaxIdleConnsPerHost: conns,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		Retries: 2,
	}
}

// EvaluateBatch posts N evaluations as one pipelined request and streams
// the per-item results, invoking onResult (nil is fine) for each item line
// exactly once — in item order — across however many connections the
// stream takes. Matching is by the server's echoed index and opaque item
// ID, verified against the submitted items.
//
// A batch stream severed mid-flight is not a failure of the evaluations —
// results are deterministic and cached server side, so EvaluateBatch
// re-posts the same batch up to Retries times with the usual jittered
// backoff and deduplicates replayed lines by Seq, exactly like the job
// watch stream's reconnect machinery.
func (c *Client) EvaluateBatch(ctx context.Context, req BatchRequest, onResult func(BatchResult)) (BatchSummary, error) {
	if len(req.Items) == 0 {
		return BatchSummary{}, errors.New("hmemd: empty batch")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return BatchSummary{}, fmt.Errorf("hmemd: encoding batch: %w", err)
	}
	lastSeq := 0
	delay := c.backoff()
	for attempt := 0; ; attempt++ {
		sum, err := c.batchOnce(ctx, req.Items, body, &lastSeq, onResult)
		if err == nil {
			return sum, nil
		}
		if ctx.Err() != nil {
			return BatchSummary{}, ctx.Err()
		}
		if attempt >= c.Retries || !retryable(err) {
			return BatchSummary{}, err
		}
		wait := c.jitteredWait(delay, err)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return BatchSummary{}, ctx.Err()
		}
		delay *= 2
	}
}

// CollectBatch is EvaluateBatch gathering the item lines into a slice, in
// item order.
func (c *Client) CollectBatch(ctx context.Context, req BatchRequest) ([]BatchResult, BatchSummary, error) {
	out := make([]BatchResult, 0, len(req.Items))
	sum, err := c.EvaluateBatch(ctx, req, func(r BatchResult) { out = append(out, r) })
	if err != nil {
		return nil, BatchSummary{}, err
	}
	return out, sum, nil
}

// batchOnce runs one batch connection until the terminal summary line
// (returned) or the stream dies (error). lastSeq carries dedup state
// across reconnects: replayed lines at or below it are skipped.
func (c *Client) batchOnce(ctx context.Context, items []BatchItem, body []byte, lastSeq *int, onResult func(BatchResult)) (BatchSummary, error) {
	var done func(bool)
	if c.Breaker != nil {
		var ok bool
		done, ok = c.Breaker.Allow()
		if !ok {
			return BatchSummary{}, ErrCircuitOpen
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.BaseURL, "/")+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		if done != nil {
			done(false)
		}
		return BatchSummary{}, fmt.Errorf("hmemd: building batch request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	// A large batch can outlive any fixed client timeout; rely on ctx.
	hc := *c.httpClient()
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		if done != nil {
			done(false)
		}
		return BatchSummary{}, fmt.Errorf("hmemd: posting batch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		apiErr := &APIError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		if done != nil {
			done(!retryable(apiErr))
		}
		return BatchSummary{}, apiErr
	}
	// Connection established and answered coherently; mid-stream failures
	// below are the pipe's fault, not evidence against the host.
	if done != nil {
		done(true)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev BatchResult
		if err := dec.Decode(&ev); err != nil {
			// EOF before the terminal line is a severed stream too: a healthy
			// batch always ends with its summary.
			return BatchSummary{}, fmt.Errorf("hmemd: reading batch results: %w", err)
		}
		if ev.Done != nil {
			return *ev.Done, nil
		}
		if ev.Seq <= *lastSeq {
			continue
		}
		// Opaque request matching: the server echoes each item's index and
		// ID; a mismatch means the stream is answering a different batch.
		if ev.Index < 0 || ev.Index >= len(items) || ev.ID != items[ev.Index].ID {
			return BatchSummary{}, fmt.Errorf(
				"hmemd: batch stream mismatch: seq %d carries index %d id %q", ev.Seq, ev.Index, ev.ID)
		}
		*lastSeq = ev.Seq
		if onResult != nil {
			onResult(ev)
		}
	}
}
