package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// TestJobsList covers GET /v1/jobs end to end through the typed client:
// every submitted job shows up with its state, and terminal jobs keep
// appearing after they finish.
func TestJobsList(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	jobs, total, err := c.Jobs(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 || total != 0 {
		t.Fatalf("fresh daemon lists %d jobs (total %d), want 0", len(jobs), total)
	}

	// table1 is pure configuration rendering — cheap enough to run inline.
	first, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, first.ID, nil); err != nil {
		t.Fatal(err)
	}
	second, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1", Options: &OptionsPatch{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, second.ID, nil); err != nil {
		t.Fatal(err)
	}

	jobs, total, err = c.Jobs(ctx, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || total != 2 {
		t.Fatalf("listed %d jobs (total %d), want 2", len(jobs), total)
	}
	byID := map[string]JobStatus{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	for _, id := range []string{first.ID, second.ID} {
		j, ok := byID[id]
		if !ok {
			t.Fatalf("job %s missing from list", id)
		}
		if j.State != JobDone {
			t.Fatalf("job %s listed as %s, want done", id, j.State)
		}
		if j.Experiment != "table1" {
			t.Fatalf("job %s experiment = %q", id, j.Experiment)
		}
	}
}

// TestJobsListPagination pins the limit/offset contract: pages are
// newest-first windows over the full history, total reports the pre-paging
// count, an offset past the end is an empty page, and garbage parameters
// are a 400 rather than a silent full listing.
func TestJobsListPagination(t *testing.T) {
	svc, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	// Five distinct cheap jobs, submitted in order; ids are job-1..job-5.
	var ids []string
	for i := 0; i < 5; i++ {
		st, err := c.SubmitJob(ctx, JobRequest{
			Experiment: "table1",
			Options:    &OptionsPatch{Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.WaitJob(ctx, st.ID, nil); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	cases := []struct {
		name          string
		limit, offset int
		want          []string // expected ids, newest first
	}{
		{"everything", 0, 0, []string{ids[4], ids[3], ids[2], ids[1], ids[0]}},
		{"first page", 2, 0, []string{ids[4], ids[3]}},
		{"second page", 2, 2, []string{ids[2], ids[1]}},
		{"tail page", 2, 4, []string{ids[0]}},
		{"offset past end", 2, 10, nil},
		{"offset only", 0, 3, []string{ids[1], ids[0]}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			jobs, total, err := c.Jobs(ctx, tc.limit, tc.offset)
			if err != nil {
				t.Fatal(err)
			}
			if total != 5 {
				t.Fatalf("total = %d, want 5", total)
			}
			var got []string
			for _, j := range jobs {
				got = append(got, j.ID)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("page = %v, want %v", got, tc.want)
			}
		})
	}

	// Garbage parameters 400.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for _, q := range []string{"limit=banana", "offset=-1", "limit=-3"} {
		resp, err := http.Get(ts.URL + "/v1/jobs?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/jobs?%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestDrainTimeoutBoundsWedgedJob: a job wedged inside its driver (the
// chaos TaskWrap stall seam) cannot hold Shutdown past the caller's
// deadline — the contract behind hmemd's -drain-timeout flag.
func TestDrainTimeoutBoundsWedgedJob(t *testing.T) {
	release := make(chan struct{})
	cfg := tinyConfig()
	cfg.TaskWrap = func(fn func() error) func() error {
		return func() error {
			<-release // wedge until the test lets go
			return fn()
		}
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer close(release)
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picks the job up and blocks inside the stall.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- svc.Shutdown(drainCtx) }()
	// Let the drain deadline expire while the job is still wedged, then
	// check Shutdown is reporting the timeout rather than hanging. The
	// worker is released only afterwards, so a passing result proves the
	// bound and not luck.
	<-drainCtx.Done()
	select {
	case err := <-shutdownErr:
		t.Fatalf("shutdown returned %v before the wedged job was released", err)
	case <-time.After(20 * time.Millisecond):
	}
	release <- struct{}{}
	if err := <-shutdownErr; err != context.DeadlineExceeded {
		t.Fatalf("shutdown error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shutdown took %s despite the 200ms drain deadline", elapsed)
	}
}
