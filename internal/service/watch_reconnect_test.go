package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hmem/internal/chaos"
)

// severOnce wraps the first watch connection's ResponseWriter and kills the
// connection (via the net/http-sanctioned http.ErrAbortHandler panic) right
// after the first NDJSON line goes out — the client sees a stream torn
// mid-flight, after real event bytes arrived.
type severOnce struct {
	http.ResponseWriter
	wroteLine bool
}

func (s *severOnce) Write(p []byte) (int, error) {
	if s.wroteLine {
		panic(http.ErrAbortHandler)
	}
	if i := strings.IndexByte(string(p), '\n'); i >= 0 {
		s.wroteLine = true
		n, err := s.ResponseWriter.Write(p[:i+1])
		if f, ok := s.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		return n, err
	}
	return s.ResponseWriter.Write(p)
}

func (s *severOnce) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestWatchReconnectAfterSeveredStream severs the first watch connection one
// event into the NDJSON stream and asserts WaitJob reconnects, replays, and
// still hands onEvent each transition exactly once (dedup by Seq).
func TestWatchReconnectAfterSeveredStream(t *testing.T) {
	svc, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var watches atomic.Int64
	inner := svc.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("watch") == "1" && watches.Add(1) == 1 {
			inner.ServeHTTP(&severOnce{ResponseWriter: w}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
		ts.Close()
	})
	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: 10 * time.Millisecond}
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "hwcost"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]string{} // transition seq -> state
	var order []int
	final, err := c.WaitJob(ctx, st.ID, func(ev JobEvent) {
		if ev.Progress != nil {
			return // heartbeats may repeat across reconnects by design
		}
		if prev, dup := seen[ev.Seq]; dup {
			t.Errorf("transition seq %d (%s) delivered twice (first as %s)", ev.Seq, ev.State, prev)
		}
		seen[ev.Seq] = ev.State
		order = append(order, ev.Seq)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if got := watches.Load(); got < 2 {
		t.Fatalf("saw %d watch connections, want >= 2 (reconnect after sever)", got)
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("transition seqs out of order: %v", order)
		}
	}
	states := make([]string, 0, len(order))
	for _, seq := range order {
		states = append(states, seen[seq])
	}
	if want := []string{JobQueued, JobRunning, JobDone}; len(states) != len(want) {
		t.Fatalf("transitions = %v, want %v", states, want)
	} else {
		for i := range want {
			if states[i] != want[i] {
				t.Fatalf("transitions = %v, want %v", states, want)
			}
		}
	}
}

// TestWatchReconnectAfterDroppedConnection is the same contract driven from
// the client side: a chaos plan drops the first watch attempt's connection
// before any bytes flow, and WaitJob rides it out.
func TestWatchReconnectAfterDroppedConnection(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "hwcost"})
	if err != nil {
		t.Fatal(err)
	}
	// Requests through the chaos transport: index 0 is the first watch
	// attempt (SubmitJob above used the default transport).
	inj, err := chaos.New(chaos.Plan{HTTP: []chaos.HTTPFault{
		{AtRequest: 0, Mode: chaos.ModeDrop},
	}})
	if err != nil {
		t.Fatal(err)
	}
	c.HTTPClient = &http.Client{Transport: inj.RoundTripper(nil), Timeout: 5 * time.Minute}
	c.Retries = 3
	c.Backoff = 10 * time.Millisecond

	seen := map[int]bool{}
	final, err := c.WaitJob(ctx, st.ID, func(ev JobEvent) {
		if ev.Progress != nil {
			return
		}
		if seen[ev.Seq] {
			t.Errorf("transition seq %d delivered twice", ev.Seq)
		}
		seen[ev.Seq] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if got := inj.Stats().HTTP; got != 1 {
		t.Fatalf("injected %d faults, want 1 (the dropped watch)", got)
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d distinct transitions, want 3 (queued, running, done)", len(seen))
	}
}
