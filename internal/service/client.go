package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hmem"
	"hmem/internal/breaker"
	"hmem/internal/cluster"
	"hmem/internal/obs"
	"hmem/internal/report"
)

// ErrCircuitOpen reports a request refused locally because the client's
// circuit breaker has quarantined the server; nothing was sent. The retry
// machinery treats it as retryable (the breaker half-opens on its own
// schedule), so a bounded retry loop rides out short quarantines.
var ErrCircuitOpen = errors.New("hmemd: circuit breaker open; request not sent")

// Client is a typed hmemd client. The zero Retries/Backoff give one attempt;
// set Retries for bounded retry-with-backoff on idempotent calls (every GET,
// Evaluate, and Compare — evaluations are deterministic and cached server
// side, so re-asking is safe; SubmitJob is NOT retried because a lost
// response would double-enqueue the run).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 5-minute timeout (simulations
	// are slow; the per-call ctx is the sharper knife).
	HTTPClient *http.Client
	// Retries is the number of ADDITIONAL attempts for idempotent calls on
	// transport errors or 5xx/429 responses.
	Retries int
	// Backoff is the initial retry delay, doubled per attempt (default
	// 100ms).
	Backoff time.Duration
	// Rand supplies the random bits for retry-backoff jitter: it must return
	// a uniform value in [0, n). Nil uses math/rand/v2's process-global
	// source — the right default for a fleet of independent clients, whose
	// jitter exists to decorrelate them. Set a seeded source (e.g. a locked
	// xrand stream) to make retry timing a pure function of the seed; the
	// load harness does this so soak runs replay byte for byte.
	Rand func(n uint64) uint64
	// Breaker, when set, gates every request through a circuit breaker
	// (one Client speaks to one BaseURL, so this is the per-host breaker).
	// Requests refused by an open breaker fail fast with ErrCircuitOpen.
	// Success feeding the breaker is "the server answered coherently":
	// non-retryable API errors (4xx verdicts) count as healthy, transport
	// failures and 5xx/429 count against the host.
	Breaker *breaker.Breaker
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

func (c *Client) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 100 * time.Millisecond
}

// randN draws the jitter bits from the configured source (seedable) or the
// process-global one.
func (c *Client) randN(n uint64) uint64 {
	if c.Rand != nil {
		return c.Rand(n)
	}
	return rand.Uint64N(n)
}

// jitteredWait computes one retry's wait: the current backoff delay jittered
// uniformly over [delay/2, delay], raised to the server's Retry-After hint
// when it asks for longer. Split out so the jitter math is testable as a
// pure function of the Rand source.
func (c *Client) jitteredWait(delay time.Duration, err error) time.Duration {
	wait := delay/2 + time.Duration(c.randN(uint64(delay/2)+1))
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfter > wait {
		wait = apiErr.RetryAfter
	}
	return wait
}

// APIError is a non-2xx response with the server's error message.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent). The
	// retry loop waits at least this long before the next attempt.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("hmemd: HTTP %d: %s", e.StatusCode, e.Message)
}

// retryable reports whether a fresh attempt could succeed: transport errors,
// 5xx (transient server trouble), and 429 (queue pressure).
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500 || apiErr.StatusCode == http.StatusTooManyRequests
	}
	return true // transport-level failure
}

// do performs one breaker-gated round trip and decodes a 2xx JSON body into
// out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	if c.Breaker != nil {
		done, ok := c.Breaker.Allow()
		if !ok {
			return ErrCircuitOpen
		}
		err := c.doOnce(ctx, method, path, in, out)
		done(err == nil || !retryable(err))
		return err
	}
	return c.doOnce(ctx, method, path, in, out)
}

// doOnce performs one round trip and decodes a 2xx JSON body into out.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("hmemd: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.BaseURL, "/")+path, body)
	if err != nil {
		return fmt.Errorf("hmemd: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("hmemd: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &APIError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("hmemd: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// parseRetryAfter reads the header's delay-seconds form (the only form this
// server emits); the HTTP-date form and garbage parse to zero.
func parseRetryAfter(v string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// doIdempotent is do with bounded retry-with-backoff. The backoff doubles
// per attempt and is jittered (uniform over [delay/2, delay]) so a fleet of
// clients bounced by the same outage doesn't reconverge in lockstep; a
// server Retry-After hint raises the wait when it asks for longer.
func (c *Client) doIdempotent(ctx context.Context, method, path string, in, out any) error {
	delay := c.backoff()
	var err error
	for attempt := 0; ; attempt++ {
		err = c.do(ctx, method, path, in, out)
		if err == nil || attempt >= c.Retries || !retryable(err) {
			return err
		}
		wait := c.jitteredWait(delay, err)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
		delay *= 2
	}
}

// Workloads lists the evaluable workload and benchmark names.
func (c *Client) Workloads(ctx context.Context) (workloads, benchmarks []string, err error) {
	var out struct {
		Workloads  []string `json:"workloads"`
		Benchmarks []string `json:"benchmarks"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/workloads", nil, &out); err != nil {
		return nil, nil, err
	}
	return out.Workloads, out.Benchmarks, nil
}

// Policies lists the placement policy names.
func (c *Client) Policies(ctx context.Context) ([]hmem.PolicyName, error) {
	var out struct {
		Policies []hmem.PolicyName `json:"policies"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/policies", nil, &out); err != nil {
		return nil, err
	}
	return out.Policies, nil
}

// Experiments lists the runnable experiment ids for SubmitJob.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var out struct {
		Experiments []string `json:"experiments"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out.Experiments, nil
}

// Topologies lists the memory topologies the server can simulate.
func (c *Client) Topologies(ctx context.Context) ([]hmem.TopologySummary, error) {
	var out struct {
		Topologies []hmem.TopologySummary `json:"topologies"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/topologies", nil, &out); err != nil {
		return nil, err
	}
	return out.Topologies, nil
}

// Evaluate runs one workload × policy on the server. Idempotent (the server
// caches by request shape), so it retries on transient failures.
func (c *Client) Evaluate(ctx context.Context, req EvaluateRequest) (hmem.Result, error) {
	var out hmem.Result
	if err := c.doIdempotent(ctx, http.MethodPost, "/v1/evaluate", req, &out); err != nil {
		return hmem.Result{}, err
	}
	return out, nil
}

// Compare runs one workload under several policies.
func (c *Client) Compare(ctx context.Context, req CompareRequest) ([]hmem.Result, error) {
	var out struct {
		Results []hmem.Result `json:"results"`
	}
	if err := c.doIdempotent(ctx, http.MethodPost, "/v1/compare", req, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// SubmitJob enqueues an experiment run. Without an IdempotencyKey it is NOT
// retried — a response lost after the server enqueued would double-submit.
// With a key set the server deduplicates resubmissions, so transient
// failures retry like any idempotent call.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (JobStatus, error) {
	var out JobStatus
	call := c.do
	if req.IdempotencyKey != "" {
		call = c.doIdempotent
	}
	if err := call(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return JobStatus{}, err
	}
	return out, nil
}

// Job fetches one job's status (including the result table once done).
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var out JobStatus
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return JobStatus{}, err
	}
	return out, nil
}

// Jobs lists jobs the daemon knows about — queued, running, and terminal
// (including journal-restored ones), newest first. limit bounds the page
// (0 = everything) and offset skips that many newest jobs, so a poller can
// page through a long-lived daemon's history without O(total-jobs) GETs.
// total is the job count before paging.
func (c *Client) Jobs(ctx context.Context, limit, offset int) (jobs []JobStatus, total int, err error) {
	var out struct {
		Jobs  []JobStatus `json:"jobs"`
		Total int         `json:"total"`
	}
	path := "/v1/jobs"
	if limit > 0 || offset > 0 {
		path += fmt.Sprintf("?limit=%d&offset=%d", limit, offset)
	}
	if err := c.doIdempotent(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, 0, err
	}
	return out.Jobs, out.Total, nil
}

// ClusterRegister joins (or heartbeats) this process as a worker in a
// coordinator's placement ring. The returned TTL is how long the
// registration stays live without another heartbeat.
func (c *Client) ClusterRegister(ctx context.Context, req cluster.RegisterRequest) (ttl time.Duration, err error) {
	var out struct {
		TTLSeconds float64 `json:"ttl_seconds"`
	}
	// Registration is idempotent by design (a re-send is a heartbeat), so
	// the retry loop is safe and desirable across coordinator restarts.
	if err := c.doIdempotent(ctx, http.MethodPost, "/v1/cluster/register", req, &out); err != nil {
		return 0, err
	}
	return time.Duration(out.TTLSeconds * float64(time.Second)), nil
}

// ClusterDeregister removes a worker from the ring immediately (clean
// drain; otherwise the TTL sweep collects it).
func (c *Client) ClusterDeregister(ctx context.Context, id string) error {
	return c.doIdempotent(ctx, http.MethodPost, "/v1/cluster/deregister",
		map[string]string{"id": id}, &struct {
			Removed bool `json:"removed"`
		}{})
}

// ClusterWorkers lists the coordinator's live workers.
func (c *Client) ClusterWorkers(ctx context.Context) ([]cluster.Worker, error) {
	var out struct {
		Workers []cluster.Worker `json:"workers"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/cluster/workers", nil, &out); err != nil {
		return nil, err
	}
	return out.Workers, nil
}

// JobTrace fetches the job's tracing spans still held in the daemon's ring
// buffer. Spans for an old job may have been overwritten; that returns an
// empty slice, not an error.
func (c *Client) JobTrace(ctx context.Context, id string) ([]obs.SpanData, error) {
	var out struct {
		Spans []obs.SpanData `json:"spans"`
	}
	if err := c.doIdempotent(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &out); err != nil {
		return nil, err
	}
	return out.Spans, nil
}

// WaitJob streams the job's NDJSON progress events, invoking onEvent per
// transition or progress heartbeat (nil is fine), until the job reaches a
// terminal state; it then fetches and returns the final status.
//
// A watch stream severed mid-flight — the connection dropped, a proxy gave
// up, the decoder hit a torn line — is not a failure of the job, just of the
// pipe. Job state is idempotent to re-read (the server replays every
// transition from the start), so WaitJob reconnects up to Retries times with
// the same jittered backoff as other idempotent calls, deduplicating
// transitions by their Seq so onEvent sees each one exactly once across
// however many connections it took.
func (c *Client) WaitJob(ctx context.Context, id string, onEvent func(JobEvent)) (JobStatus, error) {
	lastSeq := 0
	delay := c.backoff()
	for attempt := 0; ; attempt++ {
		err := c.watchOnce(ctx, id, &lastSeq, onEvent)
		if err == nil {
			// Terminal state observed; the final status (with result table)
			// is one plain GET away.
			return c.Job(ctx, id)
		}
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if attempt >= c.Retries || !retryable(err) {
			return JobStatus{}, err
		}
		wait := c.jitteredWait(delay, err)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
		delay *= 2
	}
}

// watchOnce runs one watch connection until a terminal event (nil) or the
// stream dies (error). lastSeq carries transition dedup state across
// reconnects: replayed transitions at or below it are skipped; progress
// heartbeats (which reuse their transition's seq) are always forwarded —
// they are point-in-time telemetry, not history.
func (c *Client) watchOnce(ctx context.Context, id string, lastSeq *int, onEvent func(JobEvent)) error {
	var done func(bool)
	if c.Breaker != nil {
		var ok bool
		done, ok = c.Breaker.Allow()
		if !ok {
			return ErrCircuitOpen
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.BaseURL, "/")+"/v1/jobs/"+id+"?watch=1", nil)
	if err != nil {
		if done != nil {
			done(false)
		}
		return fmt.Errorf("hmemd: building watch request: %w", err)
	}
	// Watching can outlive any fixed client timeout; rely on ctx instead.
	hc := *c.httpClient()
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		if done != nil {
			done(false)
		}
		return fmt.Errorf("hmemd: watching job %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		msg := resp.Status
		if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		apiErr := &APIError{
			StatusCode: resp.StatusCode,
			Message:    msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		if done != nil {
			done(!retryable(apiErr))
		}
		return apiErr
	}
	// The connection was established and answered coherently; mid-stream
	// failures below are the pipe's fault, not evidence against the host.
	if done != nil {
		done(true)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev JobEvent
		if err := dec.Decode(&ev); err != nil {
			// EOF before a terminal event is a severed stream too: the server
			// never ends a healthy watch early.
			return fmt.Errorf("hmemd: reading job %s events: %w", id, err)
		}
		isProgress := ev.Progress != nil
		if isProgress || ev.Seq > *lastSeq {
			if !isProgress {
				*lastSeq = ev.Seq
			}
			if onEvent != nil {
				onEvent(ev)
			}
		}
		if terminal(ev.State) {
			return nil
		}
	}
}

// RunJob is SubmitJob + WaitJob + result extraction in one call.
func (c *Client) RunJob(ctx context.Context, req JobRequest, onEvent func(JobEvent)) (*report.Table, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, err
	}
	final, err := c.WaitJob(ctx, st.ID, onEvent)
	if err != nil {
		return nil, err
	}
	if final.State != JobDone {
		return nil, fmt.Errorf("hmemd: job %s %s: %s", final.ID, final.State, final.Error)
	}
	return final.Result, nil
}

// Healthz reports whether the server answers its health endpoint with 200.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}
