package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hmem/internal/xrand"
)

// flakyServer fails the first n requests with code (plus headers), then
// serves a valid /v1/policies body.
func flakyServer(t *testing.T, n int, code int, headers map[string]string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) <= int64(n) {
			for k, v := range headers {
				w.Header().Set(k, v)
			}
			w.WriteHeader(code)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"policies": []string{"ddr-only"}})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestClientHonorsRetryAfter: a Retry-After hint longer than the computed
// backoff stretches the wait; the client must not hammer a server that asked
// for breathing room.
func TestClientHonorsRetryAfter(t *testing.T) {
	ts, calls := flakyServer(t, 1, http.StatusServiceUnavailable, map[string]string{"Retry-After": "1"})
	c := &Client{BaseURL: ts.URL, Retries: 2, Backoff: time.Millisecond}

	start := time.Now()
	if _, err := c.Policies(context.Background()); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= 1s (Retry-After ignored)", elapsed)
	}
}

// TestClientRetryAfterGarbageFallsBackToBackoff: an unparsable Retry-After
// degrades to the normal jittered backoff rather than an error or a stall.
func TestClientRetryAfterGarbageFallsBackToBackoff(t *testing.T) {
	ts, calls := flakyServer(t, 1, http.StatusServiceUnavailable,
		map[string]string{"Retry-After": "Wed, 21 Oct 2015 07:28:00 GMT"})
	c := &Client{BaseURL: ts.URL, Retries: 2, Backoff: time.Millisecond}

	start := time.Now()
	if _, err := c.Policies(context.Background()); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("garbage Retry-After stalled the retry for %v", elapsed)
	}
}

// TestClientCancelDuringBackoff: cancelling the context while the client
// sleeps between attempts returns promptly with ctx.Err() — the backoff is
// interruptible.
func TestClientCancelDuringBackoff(t *testing.T) {
	ts, calls := flakyServer(t, 100, http.StatusServiceUnavailable, nil)
	c := &Client{BaseURL: ts.URL, Retries: 5, Backoff: 10 * time.Second}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // land inside the first backoff sleep
		cancel()
	}()
	start := time.Now()
	_, err := c.Policies(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to unblock the backoff", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before retrying)", got)
	}
}

// TestClientSubmitJobRetriesOnlyWithIdempotencyKey: a keyless SubmitJob on a
// flaky server is one attempt (a lost response could double-enqueue); the
// same call with a key retries to success because the server deduplicates.
func TestClientSubmitJobRetriesOnlyWithIdempotencyKey(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(JobStatus{ID: "job-1", State: JobQueued})
	}))
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: time.Millisecond}

	_, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("keyless submit err = %v, want 503 passthrough", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("keyless SubmitJob made %d calls, want 1", got)
	}

	calls.Store(0)
	st, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1", IdempotencyKey: "k"})
	if err != nil {
		t.Fatalf("keyed submit did not retry: %v", err)
	}
	if st.ID != "job-1" || calls.Load() != 2 {
		t.Fatalf("keyed submit: id=%s calls=%d, want job-1 after 2 calls", st.ID, calls.Load())
	}
}

// TestClientJitterIsSeedable: the backoff jitter is a pure function of the
// client's Rand source — two clients threaded with identical seeded streams
// compute identical wait sequences, which is what makes a seeded load run
// (including its retries) replayable end to end.
func TestClientJitterIsSeedable(t *testing.T) {
	waits := func(seed uint64) []time.Duration {
		rng := xrand.New(seed)
		c := &Client{
			Backoff: 100 * time.Millisecond,
			Rand:    func(n uint64) uint64 { return rng.Uint64n(n) },
		}
		var out []time.Duration
		delay := c.backoff()
		for i := 0; i < 8; i++ {
			out = append(out, c.jitteredWait(delay, errors.New("transport")))
			delay *= 2
		}
		return out
	}
	a, b := waits(42), waits(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wait %d differs for the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	other := waits(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestClientJitterBounds: with or without a seeded source, the computed wait
// stays within [delay/2, delay] — and a Retry-After hint longer than that
// range wins.
func TestClientJitterBounds(t *testing.T) {
	rng := xrand.New(7)
	for _, c := range []*Client{
		{Backoff: 80 * time.Millisecond},
		{Backoff: 80 * time.Millisecond, Rand: func(n uint64) uint64 { return rng.Uint64n(n) }},
	} {
		for i := 0; i < 100; i++ {
			w := c.jitteredWait(c.backoff(), errors.New("transport"))
			if w < 40*time.Millisecond || w > 80*time.Millisecond {
				t.Fatalf("wait %v outside [40ms, 80ms]", w)
			}
		}
		w := c.jitteredWait(c.backoff(), &APIError{StatusCode: 503, RetryAfter: time.Second})
		if w != time.Second {
			t.Fatalf("Retry-After hint ignored: wait = %v, want 1s", w)
		}
	}
}
