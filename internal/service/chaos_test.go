package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hmem"
	"hmem/internal/chaos"
)

// metricsPage fetches /metrics as text.
func metricsPage(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// waitTerminal polls a job until it leaves the queue/run states.
func waitTerminal(t *testing.T, c *Client, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if terminal(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// TestJobPanicIsolation is the first acceptance criterion: an injected panic
// in one job's experiment driver fails exactly that job — with the captured
// stack in its error — while the daemon keeps serving: the next job runs to
// completion, /healthz stays 200, and the panic is counted on /metrics.
func TestJobPanicIsolation(t *testing.T) {
	inj, err := chaos.New(chaos.Plan{Tasks: []chaos.TaskFault{{AtCall: 0, Mode: chaos.ModePanic}}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.TaskWrap = inj.Task
	_, c := newTestServer(t, cfg)
	ctx := context.Background()

	first, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}

	st := waitTerminal(t, c, first.ID)
	if st.State != JobFailed {
		t.Fatalf("panicked job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic:") || !strings.Contains(st.Error, "injected panic") {
		t.Fatalf("panicked job error = %q, want panic message", st.Error)
	}
	if !strings.Contains(st.Error, "runOneJob") && !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("panicked job error carries no stack:\n%s", st.Error)
	}

	st2 := waitTerminal(t, c, second.ID)
	if st2.State != JobDone {
		t.Fatalf("follow-up job state = %s (%s), want done", st2.State, st2.Error)
	}

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz after panic: %v", err)
	}
	page := metricsPage(t, c.BaseURL)
	if !strings.Contains(page, "hmemd_job_panics_total 1") {
		t.Fatalf("metrics missing panic count:\n%s", page)
	}
	if got := inj.Stats().Tasks; got != 1 {
		t.Fatalf("injected task faults = %d, want 1", got)
	}
}

// TestJobDeadline: a per-job timeout fails a runaway run with a deadline
// error instead of occupying the worker forever.
func TestJobDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	cfg := tinyConfig()
	cfg.Defaults.Workloads = []string{"astar"}
	_, c := newTestServer(t, cfg)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "figure5", TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c, st.ID)
	if final.State != JobFailed {
		t.Fatalf("job state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deadline (1ms) exceeded") {
		t.Fatalf("job error = %q, want deadline message", final.Error)
	}
	// The worker survives: a fresh, untimed job still completes.
	st2, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, c, st2.ID); got.State != JobDone {
		t.Fatalf("follow-up job state = %s (%s), want done", got.State, got.Error)
	}
}

// TestSubmitIdempotencyKey: re-submitting the same key with the same body
// returns the existing job (200, same id); the same key with a different
// body is a 409.
func TestSubmitIdempotencyKey(t *testing.T) {
	cfg := tinyConfig()
	cfg.JobWorkers = -1 // keep jobs queued so states are deterministic
	_, c := newTestServer(t, cfg)

	submit := func(body string) (int, JobStatus) {
		resp, err := http.Post(c.BaseURL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		_ = json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	req := `{"experiment":"table1","idempotency_key":"k1"}`
	code, first := submit(req)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	code, replay := submit(req)
	if code != http.StatusOK {
		t.Fatalf("replayed submit = %d, want 200", code)
	}
	if replay.ID != first.ID {
		t.Fatalf("replayed submit made a new job: %s vs %s", replay.ID, first.ID)
	}
	code, _ = submit(`{"experiment":"figure5","idempotency_key":"k1"}`)
	if code != http.StatusConflict {
		t.Fatalf("conflicting submit = %d, want 409", code)
	}
	// A keyless duplicate still enqueues separately.
	code, dup := submit(`{"experiment":"table1"}`)
	if code != http.StatusAccepted || dup.ID == first.ID {
		t.Fatalf("keyless submit = %d id %s", code, dup.ID)
	}
}

// TestKeyedSubmitBounceFreesKey: a keyed submission bounced for queue
// pressure is cancelled before it ever runs, and that cancellation frees the
// key. The retry the 429 invites must never be answered 200 with the dead
// job — it either bounces again or, once there is room, enqueues a fresh
// job. The same holds across a restart that replays the cancelled job from
// the journal.
func TestKeyedSubmitBounceFreesKey(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := tinyConfig()
	cfg.JournalDir = dir
	cfg.QueueDepth = 1
	cfg.JobWorkers = -1 // keep the queue full by hand
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c := &Client{BaseURL: ts.URL}

	if _, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1"}); err != nil {
		t.Fatal(err) // fills the queue
	}
	keyed := JobRequest{Experiment: "table1", IdempotencyKey: "bounced"}
	_, err = c.SubmitJob(ctx, keyed)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("keyed submit into a full queue = %v, want 429", err)
	}
	// Retry while still full: another 429, never a 200 with the cancelled job.
	_, err = c.SubmitJob(ctx, keyed)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("retry while full = %v, want 429 (a 200 would hand back a job that will never run)", err)
	}
	// Make room; the same key must now enqueue a fresh, live job.
	<-svc.queue
	st, err := c.SubmitJob(ctx, keyed)
	if err != nil {
		t.Fatalf("retry with room = %v, want accepted", err)
	}
	if st.State != JobQueued {
		t.Fatalf("retried job state = %s, want queued", st.State)
	}
	ts.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, time.Minute)
	_ = svc.Shutdown(shutdownCtx)
	cancel()

	// Restart: the journal holds cancelled jobs under other keys from the
	// bounces above. A key that died with a cancelled job must stay free
	// after replay too.
	dir2 := t.TempDir()
	cfg2 := tinyConfig()
	cfg2.JournalDir = dir2
	cfg2.QueueDepth = 1
	cfg2.JobWorkers = -1
	svc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	c2 := &Client{BaseURL: ts2.URL}
	if _, err := c2.SubmitJob(ctx, JobRequest{Experiment: "table1"}); err != nil {
		t.Fatal(err)
	}
	_, err = c2.SubmitJob(ctx, keyed)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("keyed submit = %v, want 429", err)
	}
	ts2.Close()
	shutdownCtx2, cancel2 := context.WithTimeout(ctx, time.Minute)
	_ = svc2.Shutdown(shutdownCtx2)
	cancel2()

	cfg3 := tinyConfig()
	cfg3.JournalDir = dir2
	svc3, err := New(cfg3) // with a worker: the requeued filler drains
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(svc3.Handler())
	defer func() {
		ts3.Close()
		shutdownCtx3, cancel3 := context.WithTimeout(ctx, time.Minute)
		defer cancel3()
		_ = svc3.Shutdown(shutdownCtx3)
	}()
	c3 := &Client{BaseURL: ts3.URL}
	st3, err := c3.SubmitJob(ctx, keyed)
	if err != nil {
		t.Fatalf("keyed submit after restart = %v, want accepted (key burned by replayed cancelled job?)", err)
	}
	if st3.State == JobCancelled {
		t.Fatal("keyed submit after restart returned the replayed cancelled job")
	}
	if got := waitTerminal(t, c3, st3.ID); got.State != JobDone {
		t.Fatalf("retried job after restart = %s (%s), want done", got.State, got.Error)
	}
}

// readJournal parses every intact line of a journal directory's log.
func readJournal(t *testing.T, dir string) []journalRecord {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalFileName))
	if err != nil {
		t.Fatal(err)
	}
	var recs []journalRecord
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad journal line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestJournalSurvivesRestart is the second acceptance criterion: jobs
// accepted before a crash are neither lost nor double-run. Phase 1 accepts
// jobs with no workers (the crash strikes before any runs); phase 2 restarts
// on the same journal and must run each exactly once; phase 3 restarts again
// and must restore the terminal results without re-running anything.
func TestJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Phase 1: accept 3 jobs, then die with all of them still queued.
	cfg := tinyConfig()
	cfg.JournalDir = dir
	cfg.JobWorkers = -1
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c := &Client{BaseURL: ts.URL}
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1", IdempotencyKey: fmt.Sprintf("key-%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	ts.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, time.Minute)
	_ = svc.Shutdown(shutdownCtx)
	cancel()

	// Phase 2: restart with a worker; every job must run exactly once.
	cfg2 := tinyConfig()
	cfg2.JournalDir = dir
	svc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rec := svc2.Recovery()
	if rec.Restored != 3 || rec.Requeued != 3 || rec.Terminal != 0 || rec.PoisonFailed != 0 {
		t.Fatalf("phase-2 recovery = %+v", rec)
	}
	ts2 := httptest.NewServer(svc2.Handler())
	c2 := &Client{BaseURL: ts2.URL}
	for _, id := range ids {
		if st := waitTerminal(t, c2, id); st.State != JobDone {
			t.Fatalf("job %s after restart = %s (%s), want done", id, st.State, st.Error)
		}
	}
	page := metricsPage(t, c2.BaseURL)
	if !strings.Contains(page, "hmemd_journal_replayed_jobs 3") {
		t.Fatalf("metrics missing replay count:\n%s", page)
	}
	// An idempotent resubmission after the restart still maps to the old job.
	st, err := c2.SubmitJob(ctx, JobRequest{Experiment: "table1", IdempotencyKey: "key-0"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != ids[0] {
		t.Fatalf("idempotency key lost across restart: %s vs %s", st.ID, ids[0])
	}
	ts2.Close()
	shutdownCtx2, cancel2 := context.WithTimeout(ctx, time.Minute)
	_ = svc2.Shutdown(shutdownCtx2)
	cancel2()

	// The journal must show each job started exactly once.
	runs := map[string]int{}
	dones := map[string]int{}
	for _, r := range readJournal(t, dir) {
		if r.Op == "state" && r.State == JobRunning {
			runs[r.JobID]++
		}
		if r.Op == "state" && r.State == JobDone {
			dones[r.JobID]++
		}
	}
	for _, id := range ids {
		if runs[id] != 1 || dones[id] != 1 {
			t.Fatalf("job %s: %d runs, %d dones (want exactly 1 each)", id, runs[id], dones[id])
		}
	}

	// Phase 3: restart once more; the terminal jobs restore — results and
	// all — and nothing is re-enqueued.
	cfg3 := tinyConfig()
	cfg3.JournalDir = dir
	svc3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	rec3 := svc3.Recovery()
	if rec3.Restored != 3 || rec3.Terminal != 3 || rec3.Requeued != 0 {
		t.Fatalf("phase-3 recovery = %+v", rec3)
	}
	ts3 := httptest.NewServer(svc3.Handler())
	c3 := &Client{BaseURL: ts3.URL}
	for _, id := range ids {
		st, err := c3.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone || st.Result == nil {
			t.Fatalf("job %s after second restart = %s (result %v)", id, st.State, st.Result != nil)
		}
	}
	ts3.Close()
	shutdownCtx3, cancel3 := context.WithTimeout(ctx, time.Minute)
	_ = svc3.Shutdown(shutdownCtx3)
	cancel3()
}

// TestJournalReplayRequeuesInterruptedAndPoisonsRepeatOffenders: a job that
// was mid-run at the crash re-enqueues (counted as a retry); a job that was
// running at maxJobAttempts consecutive crashes is failed as poison instead
// of being re-enqueued a fourth time.
func TestJournalReplayRequeuesInterruptedAndPoisons(t *testing.T) {
	dir := t.TempDir()
	lines := []journalRecord{
		{Seq: 1, Op: "submit", JobID: "job-1", Experiment: "table1"},
		{Seq: 2, Op: "state", JobID: "job-1", State: JobRunning},
		{Seq: 3, Op: "submit", JobID: "job-2", Experiment: "table1"},
		{Seq: 4, Op: "state", JobID: "job-2", State: JobRunning},
		{Seq: 5, Op: "state", JobID: "job-2", State: JobQueued},
		{Seq: 6, Op: "state", JobID: "job-2", State: JobRunning},
		{Seq: 7, Op: "state", JobID: "job-2", State: JobQueued},
		{Seq: 8, Op: "state", JobID: "job-2", State: JobRunning},
	}
	var buf strings.Builder
	for _, rec := range lines {
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	// A torn trailing line — the crash struck mid-append — must be skipped.
	buf.WriteString(`{"seq":9,"op":"state","job_id":"job-1","sta`)
	if err := os.WriteFile(filepath.Join(dir, journalFileName), []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := tinyConfig()
	cfg.JournalDir = dir
	cfg.JobWorkers = -1 // inspect states without running anything
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()
	rec := svc.Recovery()
	if rec.Restored != 2 || rec.Requeued != 1 || rec.PoisonFailed != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
	j1, ok := svc.jobs.get("job-1")
	if !ok || svc.jobs.statusOf(j1).State != JobQueued {
		t.Fatalf("interrupted job not requeued: %+v", svc.jobs.statusOf(j1))
	}
	j2, ok := svc.jobs.get("job-2")
	if !ok {
		t.Fatal("poison job missing")
	}
	st2 := svc.jobs.statusOf(j2)
	if st2.State != JobFailed || !strings.Contains(st2.Error, "interrupted 3 times") {
		t.Fatalf("poison job = %s (%s)", st2.State, st2.Error)
	}
	// New submissions never collide with replayed ids.
	j3, _, err := svc.jobs.add(JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if j3.id == "job-1" || j3.id == "job-2" {
		t.Fatalf("id collision: %s", j3.id)
	}
	if svc.jobRetries.Load() != 1 {
		t.Fatalf("jobRetries = %d, want 1", svc.jobRetries.Load())
	}
}

// TestJournalCompactsOnStartup: the journal does not grow without bound —
// a restart rewrites it down to one submit plus one current-state line per
// job, preserving results and the accumulated attempt count poison
// detection needs.
func TestJournalCompactsOnStartup(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Run one job to completion: the journal holds its full lifecycle
	// (submit, queued→running→done) before any compaction.
	cfg := tinyConfig()
	cfg.JournalDir = dir
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	c := &Client{BaseURL: ts.URL}
	st, err := c.SubmitJob(ctx, JobRequest{Experiment: "table1", IdempotencyKey: "keep"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, c, st.ID); got.State != JobDone {
		t.Fatalf("job = %s (%s), want done", got.State, got.Error)
	}
	ts.Close()
	shutdownCtx, cancel := context.WithTimeout(ctx, time.Minute)
	_ = svc.Shutdown(shutdownCtx)
	cancel()
	if before := readJournal(t, dir); len(before) <= 2 {
		t.Fatalf("pre-compaction journal has %d records, expected a full lifecycle", len(before))
	}

	// Restart: the file shrinks to submit + done, the result and the
	// idempotency key survive, and the one completed run is carried in the
	// submit record's attempt count.
	cfg2 := tinyConfig()
	cfg2.JournalDir = dir
	cfg2.JobWorkers = -1
	svc2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		shutdownCtx2, cancel2 := context.WithTimeout(ctx, time.Minute)
		defer cancel2()
		_ = svc2.Shutdown(shutdownCtx2)
	}()
	rec := svc2.Recovery()
	if rec.Restored != 1 || rec.Terminal != 1 || rec.CompactedRecords == 0 {
		t.Fatalf("recovery = %+v, want 1 terminal job and compacted records", rec)
	}
	after := readJournal(t, dir)
	if len(after) != 2 {
		t.Fatalf("compacted journal has %d records, want 2 (submit + done):\n%+v", len(after), after)
	}
	if after[0].Op != "submit" || after[0].IdemKey != "keep" || after[0].Attempts != 1 {
		t.Fatalf("compacted submit = %+v, want idempotency key and 1 attempt", after[0])
	}
	if after[1].Op != "state" || after[1].State != JobDone || after[1].Result == nil {
		t.Fatalf("compacted state = %+v, want done with result", after[1])
	}
	j, ok := svc2.jobs.get(st.ID)
	if !ok {
		t.Fatal("job missing after compacting restart")
	}
	if got := svc2.jobs.statusOf(j); got.State != JobDone || got.Result == nil {
		t.Fatalf("restored job = %s (result %v), want done with result", got.State, got.Result != nil)
	}
}

// TestJournalRetriesFailedAppendAndSeversTornWrites: a dropped terminal
// record does not just lose a result — it re-executes the job on restart —
// so a failed write retries once, and the retry after a short write leads
// with a newline so the torn fragment cannot swallow the re-written record.
func TestJournalRetriesFailedAppendAndSeversTornWrites(t *testing.T) {
	dir := t.TempDir()
	inj, err := chaos.New(chaos.Plan{Write: []chaos.WriteFault{
		{AtWrite: 0, Mode: chaos.ModeError}, // submit's first attempt fails outright
		{AtWrite: 2, Mode: chaos.ModeShort}, // done's first attempt tears mid-line
	}})
	if err != nil {
		t.Fatal(err)
	}
	jl, _, _, err := openJournal(dir, inj.Writer)
	if err != nil {
		t.Fatal(err)
	}
	jl.append(journalRecord{Op: "submit", JobID: "job-1", Experiment: "table1"})
	jl.append(journalRecord{Op: "state", JobID: "job-1", State: JobDone})
	jl.close()
	if got := jl.appendErrors(); got != 2 {
		t.Fatalf("append errors = %d, want 2 (one per failed attempt)", got)
	}

	jl2, recs, stats, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl2.close()
	if stats.corruptLines != 1 {
		t.Fatalf("corrupt lines = %d, want exactly the one torn fragment", stats.corruptLines)
	}
	if len(recs) != 2 || recs[0].Op != "submit" || recs[1].State != JobDone {
		t.Fatalf("replayed records = %+v, want the retried submit and done", recs)
	}
}

// TestJournalAppendFailureDegradesGracefully: a failing journal disk loses
// durability, not the daemon — jobs still run, and the drops are counted.
func TestJournalAppendFailureDegradesGracefully(t *testing.T) {
	inj, err := chaos.New(chaos.Plan{Write: []chaos.WriteFault{
		{AtWrite: 0, Mode: chaos.ModeError},
		{AtWrite: 1, Mode: chaos.ModeShort},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.JournalDir = t.TempDir()
	cfg.WrapJournalWriter = inj.Writer
	_, c := newTestServer(t, cfg)

	st, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if got := waitTerminal(t, c, st.ID); got.State != JobDone {
		t.Fatalf("job under journal faults = %s (%s), want done", got.State, got.Error)
	}
	page := metricsPage(t, c.BaseURL)
	if !strings.Contains(page, "hmemd_journal_append_errors_total 2") {
		t.Fatalf("metrics missing append-error count:\n%s", page)
	}
}

// TestChaosHTTPFaultsRecoverByteIdentical: a client retrying through
// injected connection drops and 5xx responses must land on exactly the bytes
// a fault-free request yields — transient transport chaos never changes
// results.
func TestChaosHTTPFaultsRecoverByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	_, c := newTestServer(t, tinyConfig())
	ctx := context.Background()
	req := EvaluateRequest{Workload: "astar", Policy: hmem.PolicyDDROnly}

	clean, err := c.Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	inj, err := chaos.New(chaos.Plan{HTTP: []chaos.HTTPFault{
		{AtRequest: 0, Mode: chaos.ModeDrop},
		{AtRequest: 1, Mode: chaos.ModeError, Code: 503},
	}})
	if err != nil {
		t.Fatal(err)
	}
	chaotic := &Client{
		BaseURL:    c.BaseURL,
		HTTPClient: &http.Client{Transport: inj.RoundTripper(nil), Timeout: 5 * time.Minute},
		Retries:    3,
		Backoff:    time.Millisecond,
	}
	recovered, err := chaotic.Evaluate(ctx, req)
	if err != nil {
		t.Fatalf("retries did not recover: %v", err)
	}
	if got := inj.Stats().HTTP; got != 2 {
		t.Fatalf("injected http faults = %d, want 2", got)
	}

	a, _ := json.Marshal(clean)
	b, _ := json.Marshal(recovered)
	if string(a) != string(b) {
		t.Fatalf("chaos changed result bytes:\n%s\nvs\n%s", a, b)
	}
}

// TestSubmitRejectsNegativeTimeout closes the validation gap for the new
// field.
func TestSubmitRejectsNegativeTimeout(t *testing.T) {
	_, c := newTestServer(t, tinyConfig())
	_, err := c.SubmitJob(context.Background(), JobRequest{Experiment: "table1", TimeoutMS: -1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400", err)
	}
}
