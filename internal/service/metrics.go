package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// metrics is a hand-rolled Prometheus-text registry: request counts and a
// latency histogram per (route, status), rendered deterministically. The
// stdlib-only rule keeps the real client library out; the exposition format
// is simple enough to emit by hand.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]uint64        // "route|code" -> count
	latencies map[string]*latencyHisto // route -> histogram
}

// latencyBounds are the histogram's upper bounds in seconds. Simulations
// take seconds-to-minutes, list endpoints microseconds, so the buckets span
// both regimes.
var latencyBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300}

type latencyHisto struct {
	buckets []uint64 // one per bound, plus +Inf
	sum     float64
	count   uint64
}

func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.requests == nil {
		m.requests = map[string]uint64{}
		m.latencies = map[string]*latencyHisto{}
	}
	m.requests[fmt.Sprintf("%s|%d", route, code)]++
	h := m.latencies[route]
	if h == nil {
		h = &latencyHisto{buckets: make([]uint64, len(latencyBounds)+1)}
		m.latencies[route] = h
	}
	secs := d.Seconds()
	h.sum += secs
	h.count++
	idx := len(latencyBounds)
	for i, bound := range latencyBounds {
		if secs <= bound {
			idx = i
			break
		}
	}
	h.buckets[idx]++
}

// handleMetrics renders the exposition page. Map iteration is randomized, so
// every family sorts its series — scrapes are byte-stable for a fixed state.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	s.metrics.mu.Lock()
	b.WriteString("# HELP hmemd_requests_total HTTP requests served, by route and status code.\n")
	b.WriteString("# TYPE hmemd_requests_total counter\n")
	for _, key := range sortedKeys(s.metrics.requests) {
		route, code, _ := strings.Cut(key, "|")
		fmt.Fprintf(&b, "hmemd_requests_total{route=%q,code=%q} %d\n",
			route, code, s.metrics.requests[key])
	}
	b.WriteString("# HELP hmemd_request_duration_seconds HTTP request latency.\n")
	b.WriteString("# TYPE hmemd_request_duration_seconds histogram\n")
	for _, route := range sortedKeys(s.metrics.latencies) {
		h := s.metrics.latencies[route]
		cum := uint64(0)
		for i, bound := range latencyBounds {
			cum += h.buckets[i]
			fmt.Fprintf(&b, "hmemd_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n",
				route, bound, cum)
		}
		cum += h.buckets[len(latencyBounds)]
		fmt.Fprintf(&b, "hmemd_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(&b, "hmemd_request_duration_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(&b, "hmemd_request_duration_seconds_count{route=%q} %d\n", route, h.count)
	}
	s.metrics.mu.Unlock()

	rc := s.results.Stats()
	b.WriteString("# HELP hmemd_result_cache_hits_total Evaluate requests served from the result cache (finished or in-flight).\n")
	b.WriteString("# TYPE hmemd_result_cache_hits_total counter\n")
	fmt.Fprintf(&b, "hmemd_result_cache_hits_total %d\n", rc.Hits)
	b.WriteString("# HELP hmemd_result_cache_misses_total Evaluate requests that started a simulation.\n")
	b.WriteString("# TYPE hmemd_result_cache_misses_total counter\n")
	fmt.Fprintf(&b, "hmemd_result_cache_misses_total %d\n", rc.Misses)

	es := s.engineStats()
	b.WriteString("# HELP hmemd_engine_memo_hits_total Engine-level memo hits (profiles, policy runs, fault studies) across all engines.\n")
	b.WriteString("# TYPE hmemd_engine_memo_hits_total counter\n")
	fmt.Fprintf(&b, "hmemd_engine_memo_hits_total %d\n", es.Hits)
	b.WriteString("# HELP hmemd_engine_memo_misses_total Engine-level memo misses across all engines.\n")
	b.WriteString("# TYPE hmemd_engine_memo_misses_total counter\n")
	fmt.Fprintf(&b, "hmemd_engine_memo_misses_total %d\n", es.Misses)

	b.WriteString("# HELP hmemd_job_queue_depth Jobs waiting in the queue.\n")
	b.WriteString("# TYPE hmemd_job_queue_depth gauge\n")
	fmt.Fprintf(&b, "hmemd_job_queue_depth %d\n", len(s.queue))

	counts := s.jobs.countByState()
	b.WriteString("# HELP hmemd_jobs Jobs by state.\n")
	b.WriteString("# TYPE hmemd_jobs gauge\n")
	for _, state := range []string{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled} {
		fmt.Fprintf(&b, "hmemd_jobs{state=%q} %d\n", state, counts[state])
	}

	b.WriteString("# HELP hmemd_job_panics_total Jobs whose experiment driver panicked (isolated to the job; the daemon stayed up).\n")
	b.WriteString("# TYPE hmemd_job_panics_total counter\n")
	fmt.Fprintf(&b, "hmemd_job_panics_total %d\n", s.jobPanics.Load())
	b.WriteString("# HELP hmemd_job_retries_total Interrupted jobs re-enqueued by journal replay at startup.\n")
	b.WriteString("# TYPE hmemd_job_retries_total counter\n")
	fmt.Fprintf(&b, "hmemd_job_retries_total %d\n", s.jobRetries.Load())
	b.WriteString("# HELP hmemd_journal_replayed_jobs Jobs restored from the journal at startup.\n")
	b.WriteString("# TYPE hmemd_journal_replayed_jobs gauge\n")
	fmt.Fprintf(&b, "hmemd_journal_replayed_jobs %d\n", s.recovery.Restored)
	b.WriteString("# HELP hmemd_journal_corrupt_lines Unparsable journal lines skipped by the startup replay (1 is a normal torn tail; more means lossy recovery).\n")
	b.WriteString("# TYPE hmemd_journal_corrupt_lines gauge\n")
	fmt.Fprintf(&b, "hmemd_journal_corrupt_lines %d\n", s.recovery.CorruptLines)
	b.WriteString("# HELP hmemd_journal_append_errors_total Failed journal write attempts (each append retries once before dropping the record).\n")
	b.WriteString("# TYPE hmemd_journal_append_errors_total counter\n")
	fmt.Fprintf(&b, "hmemd_journal_append_errors_total %d\n", s.journal.appendErrors())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
