package service

import (
	"net/http"
	"strconv"
	"time"

	"hmem/internal/obs"
)

// latencyBounds are the request-latency histogram's upper bounds in seconds.
// Simulations take seconds-to-minutes, list endpoints microseconds, so the
// buckets span both regimes. Job phases live in the same range, so the phase
// histogram shares them.
var latencyBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60, 300}

// serviceMetrics is every /metrics family the daemon exports, registered
// once at startup on the shared obs.Registry so the page is complete (all
// names, types, and label-less series present at zero) from the very first
// scrape — the property the golden exposition test freezes.
//
// Families fall in two groups: live handles the serving path updates
// directly (requests, latency, job phases, dropped spans), and mirrors of
// counters owned elsewhere (memo caches, job store, journal) that
// handleMetrics copies in just before rendering via Counter.Set.
type serviceMetrics struct {
	requests *obs.CounterVec
	latency  *obs.HistogramVec

	jobPhase     *obs.HistogramVec
	spansDropped *obs.Counter

	resultHits, resultMisses *obs.Counter
	engineHits, engineMisses *obs.Counter

	batchRequests *obs.Counter
	batchItems    *obs.CounterVec
	traceOpens    *obs.Counter
	coalesceHits  *obs.Counter

	queueDepth     *obs.Gauge
	queueOldestAge *obs.Gauge
	jobsByState    *obs.GaugeVec
	jobPanics      *obs.Counter
	jobRetries     *obs.Counter

	journalReplayed   *obs.Gauge
	journalCorrupt    *obs.Gauge
	journalAppendErrs *obs.Counter
	journalSize       *obs.Gauge

	clusterWorkers        *obs.Gauge
	clusterExpiries       *obs.Counter
	clusterShardsPlaced   *obs.Counter
	clusterShardsExecuted *obs.Counter
	clusterRetries        *obs.Counter
	clusterSteals         *obs.Counter
	clusterPeerHits       *obs.Counter
	clusterCacheHits      *obs.Counter
	clusterCacheMisses    *obs.Counter
	clusterInflight       *obs.Gauge

	admissionInflight  *obs.Gauge
	admissionBudget    *obs.Gauge
	admissionAdmitted  *obs.Counter
	admissionShed      *obs.Counter
	admissionDrainRate *obs.Gauge
	admissionLatency   *obs.Gauge
	healthState        *obs.Gauge

	breakerState   *obs.GaugeVec
	breakerOpens   *obs.Counter
	breakerCloses  *obs.Counter
	breakerRefused *obs.Counter
	hedges         *obs.Counter
	breakerSkips   *obs.Counter
}

func newServiceMetrics(reg *obs.Registry) *serviceMetrics {
	m := &serviceMetrics{
		requests: reg.CounterVec("hmemd_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		latency: reg.HistogramVec("hmemd_request_duration_seconds",
			"HTTP request latency.", latencyBounds, "route"),
		jobPhase: reg.HistogramVec("hmemd_job_phase_seconds",
			"Wall time of job execution phases, from tracing spans.", latencyBounds, "phase"),
		spansDropped: reg.Counter("hmemd_spans_dropped_total",
			"Tracing spans the exporter failed to accept (dropped, never failing the job)."),
		resultHits: reg.Counter("hmemd_result_cache_hits_total",
			"Evaluate requests served from the result cache (finished or in-flight)."),
		resultMisses: reg.Counter("hmemd_result_cache_misses_total",
			"Evaluate requests that started a simulation."),
		engineHits: reg.Counter("hmemd_engine_memo_hits_total",
			"Engine-level memo hits (profiles, policy runs, fault studies) across all engines."),
		engineMisses: reg.Counter("hmemd_engine_memo_misses_total",
			"Engine-level memo misses across all engines."),
		batchRequests: reg.Counter("hmemd_batch_requests_total",
			"Batch requests accepted by POST /v1/batch (validated and admitted)."),
		batchItems: reg.CounterVec("hmemd_batch_items_total",
			"Batch items streamed, by terminal outcome.", "outcome"),
		traceOpens: reg.Counter("hmemd_trace_opens_total",
			"Workload trace generations across all engines (coalescing-plan materializations included)."),
		coalesceHits: reg.Counter("hmemd_coalesce_hits_total",
			"Simulations served a trace replay from an active coalescing plan instead of regenerating."),
		queueDepth: reg.Gauge("hmemd_job_queue_depth",
			"Jobs waiting in the queue."),
		queueOldestAge: reg.Gauge("hmemd_job_queue_oldest_age_seconds",
			"Age of the oldest still-queued job (0 when the queue is empty)."),
		jobsByState: reg.GaugeVec("hmemd_jobs",
			"Jobs by state.", "state"),
		jobPanics: reg.Counter("hmemd_job_panics_total",
			"Jobs whose experiment driver panicked (isolated to the job; the daemon stayed up)."),
		jobRetries: reg.Counter("hmemd_job_retries_total",
			"Interrupted jobs re-enqueued by journal replay at startup."),
		journalReplayed: reg.Gauge("hmemd_journal_replayed_jobs",
			"Jobs restored from the journal at startup."),
		journalCorrupt: reg.Gauge("hmemd_journal_corrupt_lines",
			"Unparsable journal lines skipped by the startup replay (1 is a normal torn tail; more means lossy recovery)."),
		journalAppendErrs: reg.Counter("hmemd_journal_append_errors_total",
			"Failed journal write attempts (each append retries once before dropping the record)."),
		journalSize: reg.Gauge("hmemd_journal_size_bytes",
			"Current size of the job journal file."),
		// Cluster families are registered on every role (zero when
		// standalone) so the exposition page keeps one stable shape.
		clusterWorkers: reg.Gauge("hmemd_cluster_workers",
			"Live workers in the coordinator's placement ring."),
		clusterExpiries: reg.Counter("hmemd_cluster_worker_expiries_total",
			"Workers dropped from the ring after missing their liveness TTL."),
		clusterShardsPlaced: reg.Counter("hmemd_cluster_shards_placed_total",
			"Shards this coordinator dispatched to workers (successful placements)."),
		clusterShardsExecuted: reg.Counter("hmemd_cluster_shards_executed_total",
			"Shards this worker executed for a coordinator."),
		clusterRetries: reg.Counter("hmemd_cluster_retries_total",
			"Shard dispatches retried on another worker after a transient failure."),
		clusterSteals: reg.Counter("hmemd_cluster_steals_total",
			"Duplicate dispatches launched against straggling workers (work stealing)."),
		clusterPeerHits: reg.Counter("hmemd_cluster_peer_hits_total",
			"Shards answered from a peer's result cache instead of dispatching."),
		clusterCacheHits: reg.Counter("hmemd_cluster_cache_hits_total",
			"Shard-cache hits on this node (coordinator dispatch memo plus worker result cache)."),
		clusterCacheMisses: reg.Counter("hmemd_cluster_cache_misses_total",
			"Shard-cache misses on this node."),
		clusterInflight: reg.Gauge("hmemd_cluster_inflight_shards",
			"Shard executions currently running on this worker."),
		admissionInflight: reg.Gauge("hmemd_admission_inflight_cost",
			"Summed cost of admitted in-flight work, in units of one default-shaped evaluation."),
		admissionBudget: reg.Gauge("hmemd_admission_cost_budget",
			"In-flight cost ceiling; at or above it new costed requests are shed."),
		admissionAdmitted: reg.Counter("hmemd_admission_admitted_total",
			"Requests admitted by the cost-based admission controller."),
		admissionShed: reg.Counter("hmemd_admission_shed_total",
			"Requests shed over budget (429/503 with a drain-rate-derived Retry-After)."),
		admissionDrainRate: reg.Gauge("hmemd_admission_drain_rate",
			"EWMA of completed cost units per second — the denominator of the Retry-After hint."),
		admissionLatency: reg.Gauge("hmemd_admission_latency_seconds",
			"EWMA of admitted-request latency."),
		healthState: reg.Gauge("hmemd_health_state",
			"Current health rung: 0 ok, 1 degraded, 2 shedding, 3 draining."),
		// Breaker and hedge families are registered on every role (zero when
		// standalone) for the same stable-shape reason as the cluster ones.
		breakerState: reg.GaugeVec("hmemd_breaker_state",
			"Per-worker circuit breaker state: 0 closed, 1 open, 2 half-open.", "peer"),
		breakerOpens: reg.Counter("hmemd_breaker_opens_total",
			"Circuit breaker closed -> open transitions (worker quarantined)."),
		breakerCloses: reg.Counter("hmemd_breaker_closes_total",
			"Circuit breaker half-open -> closed transitions (worker recovered)."),
		breakerRefused: reg.Counter("hmemd_breaker_refusals_total",
			"Calls refused outright by an open or probe-saturated breaker."),
		hedges: reg.Counter("hmemd_hedges_total",
			"Duplicate shard dispatches launched against stragglers (hedged requests)."),
		breakerSkips: reg.Counter("hmemd_cluster_breaker_skips_total",
			"Placement candidates skipped because their breaker refused the dispatch."),
	}
	// Pre-touch the batch outcome series so the exposition page keeps one
	// stable shape from the very first scrape.
	m.batchItems.With("ok").Add(0)
	m.batchItems.With("error").Add(0)
	return m
}

// observe records one served request.
func (m *serviceMetrics) observe(route string, code int, d time.Duration) {
	m.requests.With(route, strconv.Itoa(code)).Inc()
	m.latency.With(route).Observe(d.Seconds())
}

// jobStates are rendered even at zero so dashboards never see a vanishing
// series.
var jobStates = []string{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}

// syncMetrics copies externally-owned counters into their registry mirrors.
// Called just before rendering; every source is monotonic or a point-in-time
// gauge, so the copy is safe to repeat.
func (s *Service) syncMetrics() {
	m := s.met
	rc := s.results.Stats()
	m.resultHits.Set(rc.Hits)
	m.resultMisses.Set(rc.Misses)
	es := s.engineStats()
	m.engineHits.Set(es.Hits)
	m.engineMisses.Set(es.Misses)
	ts := s.TraceStats()
	m.traceOpens.Set(ts.Opens)
	m.coalesceHits.Set(ts.CoalesceHits)
	m.queueDepth.Set(float64(len(s.queue)))
	m.queueOldestAge.Set(s.jobs.oldestQueuedAge().Seconds())
	counts := s.jobs.countByState()
	for _, state := range jobStates {
		m.jobsByState.With(state).Set(float64(counts[state]))
	}
	m.jobPanics.Set(s.jobPanics.Load())
	m.jobRetries.Set(s.jobRetries.Load())
	m.journalReplayed.Set(float64(s.recovery.Restored))
	m.journalCorrupt.Set(float64(s.recovery.CorruptLines))
	m.journalAppendErrs.Set(s.journal.appendErrors())
	m.journalSize.Set(float64(s.journal.size()))
	m.admissionInflight.Set(s.adm.inflight())
	m.admissionBudget.Set(s.adm.budget)
	m.admissionAdmitted.Set(s.adm.admitted.Load())
	m.admissionShed.Set(s.adm.shed.Load())
	m.admissionDrainRate.Set(s.adm.drain.rate())
	m.admissionLatency.Set(s.adm.latencyEWMA())
	m.healthState.Set(float64(s.currentHealth()))
	if cs := s.cluster; cs != nil {
		hits, misses := cs.cache.Stats()
		if cs.reg != nil {
			rs := cs.reg.Stats()
			m.clusterWorkers.Set(float64(rs.Live))
			m.clusterExpiries.Set(rs.Expiries)
		}
		if cs.sched != nil {
			ss := cs.sched.Stats()
			m.clusterShardsPlaced.Set(ss.Placed)
			m.clusterRetries.Set(ss.Retries)
			m.clusterSteals.Set(ss.Steals)
			m.hedges.Set(ss.Hedges)
			m.breakerSkips.Set(ss.BreakerSkips)
			m.clusterPeerHits.Set(ss.PeerHits)
			hits += ss.CacheHits
			misses += ss.CacheMisses
		}
		if cs.breakers != nil {
			opens, closes, refused := cs.breakers.Totals()
			m.breakerOpens.Set(opens)
			m.breakerCloses.Set(closes)
			m.breakerRefused.Set(refused)
			for peer, st := range cs.breakers.States() {
				m.breakerState.With(peer).Set(float64(st))
			}
		}
		m.clusterShardsExecuted.Set(cs.executed.Load())
		m.clusterCacheHits.Set(hits)
		m.clusterCacheMisses.Set(misses)
		m.clusterInflight.Set(float64(cs.inflight.Load()))
	}
}

// handleMetrics renders the exposition page from the registry. Rendering is
// deterministic (families by name, series by label values) so scrapes are
// byte-stable for a fixed state.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.syncMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.registry.RenderText(w)
}
