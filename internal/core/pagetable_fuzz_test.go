package core

import (
	"encoding/binary"
	"testing"
)

// FuzzPageTable drives the interning table with an arbitrary page-id
// sequence (8 bytes per id, little-endian) and checks its contract:
//
//   - the same id always interns to the same index (stable within a run);
//   - indices are dense: the i-th distinct id gets index i;
//   - no aliasing: distinct ids never share an index, and ID() inverts
//     Intern() exactly;
//   - Find agrees with Intern without side effects.
func FuzzPageTable(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 0, 64)
	for _, id := range []uint64{0, 1, 1, 2, 1 << 40, 0xffffffffffffffff, 4096, 8192} {
		seed = binary.LittleEndian.AppendUint64(seed, id)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		pt := NewPageTable()
		want := make(map[uint64]PageIndex)
		var order []uint64
		for len(data) >= 8 {
			id := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]

			prev, seen := want[id]
			if ix, ok := pt.Find(id); ok != seen {
				t.Fatalf("Find(%#x) ok=%v disagrees with history (seen=%v)", id, ok, seen)
			} else if ok && ix != prev {
				t.Fatalf("Find(%#x) = %d, want %d", id, ix, prev)
			}

			ix := pt.Intern(id)
			if seen {
				if ix != prev {
					t.Fatalf("Intern(%#x) = %d, previously %d (unstable)", id, ix, prev)
				}
			} else {
				if int(ix) != len(order) {
					t.Fatalf("Intern(%#x) = %d, want dense next index %d", id, ix, len(order))
				}
				want[id] = ix
				order = append(order, id)
			}
			if back := pt.ID(ix); back != id {
				t.Fatalf("ID(%d) = %#x, want %#x (aliasing)", ix, back, id)
			}
		}
		if pt.Len() != len(order) {
			t.Fatalf("Len() = %d, want %d distinct ids", pt.Len(), len(order))
		}
		ids := pt.IDs()
		if len(ids) != len(order) {
			t.Fatalf("IDs() has %d entries, want %d", len(ids), len(order))
		}
		for i, id := range order {
			if ids[i] != id {
				t.Fatalf("IDs()[%d] = %#x, want %#x (insertion order broken)", i, ids[i], id)
			}
		}
	})
}
