package core

import "testing"

// TestFullCountersResetReusesStorage pins the satellite bugfix: Reset must
// recycle the backing storage (epoch bump + touched-list truncation), so a
// counter unit that is reset every interval performs zero net allocations
// once its slices cover the working set.
func TestFullCountersResetReusesStorage(t *testing.T) {
	const pages = 128
	fc := NewFullCounters(16)
	pt := NewPageTable()
	cycle := func() {
		for pg := uint64(0); pg < pages; pg++ {
			fc.Observe(pt.Intern(pg), pg%2 == 0)
		}
		fc.Reset()
	}
	cycle() // grow to steady state
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Fatalf("observe+reset cycle allocated %.1f times; want 0", allocs)
	}
}

// TestFullCountersObserveZeroAllocs checks the per-access half alone: once a
// page index is covered by the flat arrays, Observe never allocates.
func TestFullCountersObserveZeroAllocs(t *testing.T) {
	fc := NewFullCounters(16)
	pt := NewPageTable()
	for pg := uint64(0); pg < 64; pg++ {
		fc.Observe(pt.Intern(pg), false)
	}
	pg := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		fc.Observe(pt.Intern(pg), pg%2 == 0)
		pg = (pg + 1) % 64
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per access; want 0", allocs)
	}
}

// TestPageTableInternZeroAllocsWhenWarm checks that re-interning a known
// page is a pure probe: no growth, no allocation.
func TestPageTableInternZeroAllocsWhenWarm(t *testing.T) {
	pt := NewPageTable()
	const pages = 500
	for pg := uint64(0); pg < pages; pg++ {
		pt.Intern(pg * 4096)
	}
	pg := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		pt.Intern(pg * 4096)
		pg = (pg + 1) % pages
	})
	if allocs != 0 {
		t.Fatalf("warm Intern allocated %.1f times per access; want 0", allocs)
	}
}
