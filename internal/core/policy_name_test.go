package core

import (
	"reflect"
	"testing"
)

func TestPolicyByName(t *testing.T) {
	for _, p := range StaticPolicies() {
		got, ok := PolicyByName(p.Name())
		if !ok || !reflect.DeepEqual(got, p) {
			t.Errorf("PolicyByName(%q) = %v, %v; want the policy back", p.Name(), got, ok)
		}
	}
	got, ok := PolicyByName("perf-fraction-0.125")
	if !ok || !reflect.DeepEqual(got, PerfFraction{F: 0.125}) {
		t.Errorf("perf-fraction-0.125: got %v, %v", got, ok)
	}
	for _, name := range []string{"", "unknown", "perf-fraction-", "perf-fraction-x", "perf-fraction-0.1"} {
		// "perf-fraction-0.1" renders back as "perf-fraction-0.100", so the
		// name does not round-trip and resolution must refuse it.
		if _, ok := PolicyByName(name); ok {
			t.Errorf("PolicyByName(%q) = true, want false", name)
		}
	}
}
