package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"hmem/internal/faultsim"
	"hmem/internal/memsim"
)

// TierDesc describes one memory tier of a topology: its display name, the
// memsim timing/geometry configuration that sizes and times it, and the
// reliability model faultsim uses to price a page's residence there. The
// struct is plain data with JSON tags so topologies can be loaded from files
// (hmemd -topology-file, cmd/experiments -topology-file).
type TierDesc struct {
	// Name labels the tier in placement errors, tables, and metrics.
	Name string `json:"name"`
	// Mem is the tier's memsim configuration (capacity, channels, timing).
	Mem memsim.Config `json:"mem"`
	// Org is the protected-rank organization the Monte-Carlo fault study
	// runs to derive the tier's uncorrectable FIT per GB. Ignored when
	// FITPerGB is set.
	Org faultsim.Organization `json:"org,omitempty"`
	// FaultSeed seeds the tier's fault study. Distinct per-tier seeds keep
	// the studies independent; the built-in defaults reproduce the paper's
	// studies bit-identically.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// FITPerGB, when positive, fixes the tier's uncorrectable FIT per GB
	// directly and skips the Monte-Carlo study — for topology files that
	// carry field-measured rates.
	FITPerGB float64 `json:"fit_per_gb,omitempty"`
	// WriteBudget, when positive, is the per-frame write endurance budget
	// (endurance-limited technologies such as PCM-class NVM). The placement
	// layer counts writes per frame and reports budget overruns; zero means
	// unlimited endurance and costs nothing on the write path.
	WriteBudget uint64 `json:"write_budget,omitempty"`
}

// Topology is an ordered list of memory tiers plus the placement semantics
// that bind them: which tier is the fast (migration-target) tier and in what
// order first-touch allocation fills tiers, spilling to the next when one
// runs out of frames. Tier order is load-bearing: tier indices are the dense
// avf.Tier values every per-access structure is keyed by, and all
// floating-point aggregation iterates tiers in ascending index, so a given
// topology produces bit-identical results everywhere.
type Topology struct {
	// Name identifies the topology (registry key, service API value).
	Name string `json:"name"`
	// Tiers lists the tiers; the slice index is the tier id.
	Tiers []TierDesc `json:"tiers"`
	// FastTier indexes the performance tier migration mechanisms fill —
	// the generalization of "HBM" in the two-tier default.
	FastTier int `json:"fast_tier"`
	// AllocOrder is the first-touch allocation order: a page lands in the
	// first listed tier with a free frame and spills down the list. The
	// default topology allocates in DDR only (never spilling into HBM),
	// matching the paper's first-touch-to-slow-tier policy.
	AllocOrder []int `json:"alloc_order"`
}

// Built-in topology names.
const (
	// DefaultTopologyName is the paper's two-tier HBM/DDR machine.
	DefaultTopologyName = "hbm-ddr"
	// DRAMNVMTopologyName is the three-tier HBM/DRAM/NVM expansion scenario
	// with endurance accounting on the NVM tier.
	DRAMNVMTopologyName = "dram-nvm"
)

// Validate reports construction errors. A validated topology is safe to hand
// to the simulator: every index is in range, every tier sized and timed.
func (t *Topology) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("core: topology needs a name")
	}
	if len(t.Tiers) < 2 {
		return fmt.Errorf("core: topology %s: need at least 2 tiers, got %d", t.Name, len(t.Tiers))
	}
	seen := make(map[string]bool, len(t.Tiers))
	for i, td := range t.Tiers {
		if td.Name == "" {
			return fmt.Errorf("core: topology %s: tier %d needs a name", t.Name, i)
		}
		if seen[td.Name] {
			return fmt.Errorf("core: topology %s: duplicate tier name %q", t.Name, td.Name)
		}
		seen[td.Name] = true
		if err := td.Mem.Validate(); err != nil {
			return fmt.Errorf("core: topology %s: tier %s: %w", t.Name, td.Name, err)
		}
		if td.FITPerGB < 0 {
			return fmt.Errorf("core: topology %s: tier %s: FITPerGB must be non-negative", t.Name, td.Name)
		}
		if td.FITPerGB == 0 {
			if err := td.Org.Validate(); err != nil {
				return fmt.Errorf("core: topology %s: tier %s: %w", t.Name, td.Name, err)
			}
		}
	}
	if t.FastTier < 0 || t.FastTier >= len(t.Tiers) {
		return fmt.Errorf("core: topology %s: FastTier %d out of range [0,%d)", t.Name, t.FastTier, len(t.Tiers))
	}
	if len(t.AllocOrder) == 0 {
		return fmt.Errorf("core: topology %s: AllocOrder must not be empty", t.Name)
	}
	inOrder := make(map[int]bool, len(t.AllocOrder))
	for _, ti := range t.AllocOrder {
		if ti < 0 || ti >= len(t.Tiers) {
			return fmt.Errorf("core: topology %s: AllocOrder tier %d out of range [0,%d)", t.Name, ti, len(t.Tiers))
		}
		if inOrder[ti] {
			return fmt.Errorf("core: topology %s: AllocOrder repeats tier %d", t.Name, ti)
		}
		inOrder[ti] = true
	}
	return nil
}

// TierName returns tier i's display name, with a stable "tier<N>" fallback
// for out-of-range indices.
func (t *Topology) TierName(i int) string {
	if i >= 0 && i < len(t.Tiers) {
		return t.Tiers[i].Name
	}
	return fmt.Sprintf("tier%d", i)
}

// NumTiers returns the tier count.
func (t *Topology) NumTiers() int { return len(t.Tiers) }

// TotalPages sums tier capacities in pages.
func (t *Topology) TotalPages() uint64 {
	var total uint64
	for _, td := range t.Tiers {
		total += td.Mem.Pages()
	}
	return total
}

// FastPages returns the fast tier's capacity in pages.
func (t *Topology) FastPages() uint64 { return t.Tiers[t.FastTier].Mem.Pages() }

// ParseTopology decodes and validates a topology from JSON.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("core: parsing topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// DefaultTopology returns the paper's Table 1 machine as a topology: tier 0
// is off-package DDR3 with ChipKill, tier 1 on-package HBM with SEC-DED.
// The tier order, fault seeds, and DDR-only allocation order are exactly the
// values the pre-topology code hardwired, so the default topology reproduces
// every figure and table byte-identically.
func DefaultTopology(scaleDiv int) *Topology {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return &Topology{
		Name: DefaultTopologyName,
		Tiers: []TierDesc{
			{
				Name:      "DDR",
				Mem:       memsim.DDR3(uint64(16<<30) / uint64(scaleDiv)),
				Org:       faultsim.DDR3ChipKill(),
				FaultSeed: 0xD0D0,
			},
			{
				Name:      "HBM",
				Mem:       memsim.HBM(uint64(1<<30) / uint64(scaleDiv)),
				Org:       faultsim.HBMSecDed(),
				FaultSeed: 0x4B1D,
			},
		},
		FastTier:   1,
		AllocOrder: []int{0},
	}
}

// DRAMNVMTopology returns the built-in three-tier expansion scenario: a
// PCM-class NVM capacity tier with a per-frame write budget (tier 0), a
// DDR3 DRAM middle tier that takes first touches (tier 1), and the HBM
// performance tier (tier 2). First-touch allocation fills DRAM and spills
// to NVM; migration mechanisms promote into HBM exactly as they do in the
// two-tier default.
func DRAMNVMTopology(scaleDiv int) *Topology {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return &Topology{
		Name: DRAMNVMTopologyName,
		Tiers: []TierDesc{
			{
				Name:      "NVM",
				Mem:       memsim.NVM(uint64(16<<30) / uint64(scaleDiv)),
				Org:       faultsim.NVMDimm(),
				FaultSeed: 0x7733,
				// PCM-class endurance scaled to simulation length: the
				// placement layer reports frames whose write count crosses
				// this budget.
				WriteBudget: 4096,
			},
			{
				Name:      "DRAM",
				Mem:       memsim.DDR3(uint64(2<<30) / uint64(scaleDiv)),
				Org:       faultsim.DDR3ChipKill(),
				FaultSeed: 0xD0D0,
			},
			{
				Name:      "HBM",
				Mem:       memsim.HBM(uint64(1<<30) / uint64(scaleDiv)),
				Org:       faultsim.HBMSecDed(),
				FaultSeed: 0x4B1D,
			},
		},
		FastTier:   2,
		AllocOrder: []int{1, 0},
	}
}

// The process-level topology registry: the built-ins plus any custom
// topologies loaded from files. Built-ins are constructed per request so the
// caller's scale divisor applies; registered topologies are stored as given
// (their capacities are explicit) and scaleDiv is ignored for them.
var (
	topoMu     sync.Mutex
	topoCustom = map[string]*Topology{}
)

// RegisterTopology validates t and adds it to the registry under its name.
// Built-in names cannot be shadowed; re-registering the same custom name
// replaces it (reloading a file is not an error).
func RegisterTopology(t *Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Name == DefaultTopologyName || t.Name == DRAMNVMTopologyName {
		return fmt.Errorf("core: topology name %q is built in", t.Name)
	}
	topoMu.Lock()
	defer topoMu.Unlock()
	topoCustom[t.Name] = t
	return nil
}

// TopologyByName resolves a topology: the built-ins are constructed at
// scaleDiv; registered topologies are returned as registered. Unknown names
// report the valid set.
func TopologyByName(name string, scaleDiv int) (*Topology, error) {
	switch name {
	case DefaultTopologyName:
		return DefaultTopology(scaleDiv), nil
	case DRAMNVMTopologyName:
		return DRAMNVMTopology(scaleDiv), nil
	}
	topoMu.Lock()
	t, ok := topoCustom[name]
	topoMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown topology %q (valid: %s)", name, knownTopologies())
	}
	return t, nil
}

// TopologyNames lists the resolvable topology names: built-ins first, then
// registered customs in sorted order.
func TopologyNames() []string {
	out := []string{DefaultTopologyName, DRAMNVMTopologyName}
	topoMu.Lock()
	for name := range topoCustom {
		out = append(out, name)
	}
	topoMu.Unlock()
	sort.Strings(out[2:])
	return out
}

func knownTopologies() string {
	names := TopologyNames()
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
