package core

import (
	"math"
	"testing"
	"testing/quick"

	"hmem/internal/avf"
	"hmem/internal/faultsim"
	"hmem/internal/xrand"
)

func TestPageStatsRatios(t *testing.T) {
	p := PageStats{Reads: 100, Writes: 400}
	if p.Accesses() != 500 {
		t.Fatalf("Accesses = %d", p.Accesses())
	}
	if got := p.WrRatio(); got != 4 {
		t.Fatalf("WrRatio = %v", got)
	}
	if got := p.Wr2Ratio(); got != 1600 {
		t.Fatalf("Wr2Ratio = %v", got)
	}
	// The §5.4.2 example: p1 = 4:1, p2 = 400:200. Wr ratio prefers p1,
	// Wr² ratio prefers p2.
	p1 := PageStats{Writes: 4, Reads: 1}
	p2 := PageStats{Writes: 400, Reads: 200}
	if !(p1.WrRatio() > p2.WrRatio()) {
		t.Fatal("Wr ratio should prefer p1")
	}
	if !(p2.Wr2Ratio() > p1.Wr2Ratio()) {
		t.Fatal("Wr2 ratio should prefer p2")
	}
	// Never-read pages.
	wOnly := PageStats{Writes: 7}
	if wOnly.WrRatio() != 7 || wOnly.Wr2Ratio() != 49 {
		t.Fatalf("write-only ratios = %v, %v", wOnly.WrRatio(), wOnly.Wr2Ratio())
	}
}

func TestMeans(t *testing.T) {
	stats := []PageStats{
		{Page: 1, Reads: 10, AVF: 0.2},
		{Page: 2, Reads: 30, AVF: 0.6},
	}
	if got := MeanHotness(stats); got != 20 {
		t.Fatalf("MeanHotness = %v", got)
	}
	if got := MeanAVF(stats); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("MeanAVF = %v", got)
	}
	if MeanHotness(nil) != 0 || MeanAVF(nil) != 0 {
		t.Fatal("empty means must be 0")
	}
}

func TestQuadrantClassification(t *testing.T) {
	stats := []PageStats{
		{Page: 0, Reads: 100, AVF: 0.1}, // hot, low
		{Page: 1, Reads: 100, AVF: 0.9}, // hot, high
		{Page: 2, Reads: 1, AVF: 0.1},   // cold, low
		{Page: 3, Reads: 1, AVF: 0.9},   // cold, high
	}
	q := Quadrants(stats)
	for i, want := range []Quadrant{HotLowRisk, HotHighRisk, ColdLowRisk, ColdHighRisk} {
		if got := q.Classify(stats[i]); got != want {
			t.Errorf("page %d: %v, want %v", i, got, want)
		}
		if q.Count[want] != 1 {
			t.Errorf("quadrant %v count = %d", want, q.Count[want])
		}
		if math.Abs(q.Frac(want)-0.25) > 1e-12 {
			t.Errorf("quadrant %v frac = %v", want, q.Frac(want))
		}
	}
	if q.Total != 4 {
		t.Fatalf("Total = %d", q.Total)
	}
}

func TestQuadrantFracEmpty(t *testing.T) {
	var q QuadrantSummary
	if q.Frac(HotLowRisk) != 0 {
		t.Fatal("empty census must give 0 fractions")
	}
}

func TestQuadrantStrings(t *testing.T) {
	names := map[Quadrant]string{
		HotLowRisk: "hot+low-risk", HotHighRisk: "hot+high-risk",
		ColdLowRisk: "cold+low-risk", ColdHighRisk: "cold+high-risk",
		Quadrant(9): "quadrant(?)",
	}
	for q, want := range names {
		if q.String() != want {
			t.Errorf("%d: %q", q, q.String())
		}
	}
}

func syntheticStats(n int, seed uint64) []PageStats {
	rng := xrand.New(seed)
	out := make([]PageStats, n)
	for i := range out {
		out[i] = PageStats{
			Page:   uint64(i),
			Reads:  rng.Uint64n(1000),
			Writes: rng.Uint64n(400),
			AVF:    rng.Float64(),
		}
	}
	return out
}

func TestPolicyCapacityInvariant(t *testing.T) {
	stats := syntheticStats(500, 1)
	for _, pol := range StaticPolicies() {
		for _, cap := range []int{0, 1, 100, 500, 1000} {
			sel := pol.Select(stats, cap)
			if len(sel) > cap {
				t.Errorf("%s: selected %d > capacity %d", pol.Name(), len(sel), cap)
			}
			if len(sel) > len(stats) {
				t.Errorf("%s: selected more pages than exist", pol.Name())
			}
			seen := map[uint64]bool{}
			for _, p := range sel {
				if seen[p] {
					t.Errorf("%s: duplicate page %d", pol.Name(), p)
				}
				seen[p] = true
			}
		}
	}
}

func TestPolicyDeterminism(t *testing.T) {
	stats := syntheticStats(300, 2)
	for _, pol := range StaticPolicies() {
		a := pol.Select(stats, 128)
		b := pol.Select(stats, 128)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", pol.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic order", pol.Name())
			}
		}
	}
}

func TestPerfFocusedPicksHottest(t *testing.T) {
	stats := []PageStats{
		{Page: 10, Reads: 5},
		{Page: 11, Reads: 500},
		{Page: 12, Reads: 50},
	}
	sel := PerfFocused{}.Select(stats, 2)
	if len(sel) != 2 || sel[0] != 11 || sel[1] != 12 {
		t.Fatalf("selection = %v", sel)
	}
}

func TestPerfFractionScalesCapacity(t *testing.T) {
	stats := syntheticStats(100, 3)
	full := PerfFraction{F: 1}.Select(stats, 40)
	half := PerfFraction{F: 0.5}.Select(stats, 40)
	none := PerfFraction{F: 0}.Select(stats, 40)
	if len(full) != 40 || len(half) != 20 || len(none) != 0 {
		t.Fatalf("lengths = %d/%d/%d", len(full), len(half), len(none))
	}
	// Out-of-range F clamps.
	if got := (PerfFraction{F: 2}).Select(stats, 10); len(got) != 10 {
		t.Fatal("F>1 must clamp")
	}
	if got := (PerfFraction{F: -1}).Select(stats, 10); len(got) != 0 {
		t.Fatal("F<0 must clamp")
	}
}

func TestReliabilityFocusedPicksLowestAVF(t *testing.T) {
	stats := []PageStats{
		{Page: 1, AVF: 0.9, Reads: 1000},
		{Page: 2, AVF: 0.05, Reads: 1},
		{Page: 3, AVF: 0.4, Reads: 10},
	}
	sel := ReliabilityFocused{}.Select(stats, 2)
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("selection = %v, want [2 3] (lowest AVF first)", sel)
	}
}

func TestBalancedStaysInQuadrant(t *testing.T) {
	// 10 hot/low, lots of capacity: balanced must not exceed the quadrant.
	var stats []PageStats
	for i := 0; i < 10; i++ {
		stats = append(stats, PageStats{Page: uint64(i), Reads: 1000, AVF: 0.01})
	}
	for i := 10; i < 100; i++ {
		stats = append(stats, PageStats{Page: uint64(i), Reads: 1, AVF: 0.9})
	}
	sel := Balanced{}.Select(stats, 50)
	if len(sel) != 10 {
		t.Fatalf("balanced selected %d pages, want 10 (quadrant-bound)", len(sel))
	}
	q := Quadrants(stats)
	byPage := map[uint64]PageStats{}
	for _, s := range stats {
		byPage[s.Page] = s
	}
	for _, p := range sel {
		if q.Classify(byPage[p]) != HotLowRisk {
			t.Fatalf("page %d outside hot+low-risk quadrant", p)
		}
	}
}

func TestWrRatioVsWr2RatioSelection(t *testing.T) {
	// Paper's p1/p2 example at scale: Wr picks the high-ratio cold page,
	// Wr² picks the high-traffic page.
	stats := []PageStats{
		{Page: 1, Writes: 4, Reads: 1},
		{Page: 2, Writes: 400, Reads: 200},
	}
	if sel := (WrRatio{}).Select(stats, 1); sel[0] != 1 {
		t.Fatalf("WrRatio picked %d", sel[0])
	}
	if sel := (Wr2Ratio{}).Select(stats, 1); sel[0] != 2 {
		t.Fatalf("Wr2Ratio picked %d", sel[0])
	}
}

func TestDDROnlySelectsNothing(t *testing.T) {
	if sel := (DDROnly{}).Select(syntheticStats(10, 4), 5); len(sel) != 0 {
		t.Fatal("ddr-only must select nothing")
	}
}

func TestPolicyNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range StaticPolicies() {
		if seen[p.Name()] {
			t.Fatalf("duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestSatCounter(t *testing.T) {
	c := NewSatCounter(8)
	for i := 0; i < 300; i++ {
		c.Inc()
	}
	if c.Value() != 255 {
		t.Fatalf("8-bit counter = %d, want saturation at 255", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSatCounterWidthPanics(t *testing.T) {
	for _, bits := range []int{0, 33, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewSatCounter(bits)
		}()
	}
}

func TestSatCounterMonotoneProperty(t *testing.T) {
	f := func(incs uint16, bits uint8) bool {
		b := int(bits%32) + 1
		c := NewSatCounter(b)
		prev := uint32(0)
		for i := 0; i < int(incs); i++ {
			c.Inc()
			if c.Value() < prev {
				return false
			}
			prev = c.Value()
		}
		return c.Value() <= uint32(1)<<uint(b)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFullCounters(t *testing.T) {
	pt := NewPageTable()
	fc := NewFullCounters(8)
	p5, p9 := pt.Intern(5), pt.Intern(9)
	fc.Observe(p5, false)
	fc.Observe(p5, false)
	fc.Observe(p5, true)
	fc.Observe(p9, true)
	snap := fc.Snapshot(pt)
	if len(snap) != 2 || fc.TouchedPages() != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Page != 5 || snap[0].Reads != 2 || snap[0].Writes != 1 {
		t.Fatalf("page 5 stats = %+v", snap[0])
	}
	if snap[1].Page != 9 || snap[1].Writes != 1 {
		t.Fatalf("page 9 stats = %+v", snap[1])
	}
	fc.Reset()
	if fc.TouchedPages() != 0 {
		t.Fatal("reset failed")
	}
	if got := fc.Snapshot(pt); len(got) != 0 {
		t.Fatalf("post-reset snapshot = %+v", got)
	}
}

func TestFullCountersSaturate(t *testing.T) {
	pt := NewPageTable()
	fc := NewFullCounters(8)
	p1 := pt.Intern(1)
	for i := 0; i < 1000; i++ {
		fc.Observe(p1, false)
	}
	if got := fc.Snapshot(pt)[0].Reads; got != 255 {
		t.Fatalf("reads = %d, want 255", got)
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// §6.3: 17 GB HMA = 4.25M pages -> 8.5 MB total FC storage, 4.25 MB
	// additional over a perf-only design.
	totalPages := 17 * (1 << 30) / 4096
	if got := FCCostBytes(totalPages); got != 8912896 { // 8.5 MiB
		t.Fatalf("FC cost = %d bytes", got)
	}
	if got := FCAdditionalCostBytes(totalPages); got != totalPages {
		t.Fatalf("FC additional cost = %d", got)
	}
	// §6.4.2: 1 GB HBM = 262144 pages -> 512 KB risk counters + 100 KB MEA
	// + 64 KB remap cache = 676 KB.
	hbmPages := (1 << 30) / 4096
	want := 512*1024 + 100*1024 + 64*1024
	if got := CCCostBytes(hbmPages); got != want {
		t.Fatalf("CC cost = %d bytes, want %d (676 KB)", got, want)
	}
	// The headline comparison: CC is ~6x cheaper than FC's additional cost.
	if !(CCCostBytes(hbmPages) < FCAdditionalCostBytes(totalPages)) {
		t.Fatal("CC must cost less than FC")
	}
}

func TestSERModel(t *testing.T) {
	m := SERModel{Fits: faultsim.TierFITs{DDRPerGB: 1, HBMPerGB: 100}}
	snap := []avf.PageAVF{
		{Page: 1, AVF: 0.5, ByTier: []float64{0.5, 0}},   // all DDR
		{Page: 2, AVF: 0.5, ByTier: []float64{0, 0.5}},   // all HBM
		{Page: 3, AVF: 0.4, ByTier: []float64{0.2, 0.2}}, // split
	}
	got := m.SER(snap)
	want := (1*0.5 + 100*0.5 + 1*0.2 + 100*0.2) * pageGB
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("SER = %v, want %v", got, want)
	}
	base := m.SERAllDDR(snap)
	wantBase := (0.5 + 0.5 + 0.4) * pageGB
	if math.Abs(base-wantBase) > 1e-15 {
		t.Fatalf("SERAllDDR = %v, want %v", base, wantBase)
	}
	if !(got > base) {
		t.Fatal("placing AVF in HBM must raise SER")
	}
}

func TestSERStatic(t *testing.T) {
	m := SERModel{Fits: faultsim.TierFITs{DDRPerGB: 1, HBMPerGB: 10}}
	stats := []PageStats{
		{Page: 1, AVF: 0.5},
		{Page: 2, AVF: 0.3},
	}
	inHBM := map[uint64]bool{2: true}
	got := m.SERStatic(stats, inHBM)
	want := (1*0.5 + 10*0.3) * pageGB
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("SERStatic = %v, want %v", got, want)
	}
	// Moving the high-AVF page in instead must be worse.
	worse := m.SERStatic(stats, map[uint64]bool{1: true})
	if !(worse > got) {
		t.Fatal("placing higher-AVF page in HBM must raise SER")
	}
}

func TestFromSnapshot(t *testing.T) {
	snap := []avf.PageAVF{{Page: 7, AVF: 0.25, Reads: 3, Writes: 4}}
	stats := FromSnapshot(snap)
	if len(stats) != 1 || stats[0].Page != 7 || stats[0].AVF != 0.25 ||
		stats[0].Reads != 3 || stats[0].Writes != 4 {
		t.Fatalf("FromSnapshot = %+v", stats)
	}
}

func TestSortByPage(t *testing.T) {
	stats := []PageStats{{Page: 3}, {Page: 1}, {Page: 2}}
	SortByPage(stats)
	for i, want := range []uint64{1, 2, 3} {
		if stats[i].Page != want {
			t.Fatalf("order = %v", stats)
		}
	}
}
