package core

import "testing"

// BenchmarkPageTableIntern measures the warm interning cost: the one
// sparse→dense translation every access pays.
func BenchmarkPageTableIntern(b *testing.B) {
	pt := NewPageTable()
	const pages = 4096
	for pg := uint64(0); pg < pages; pg++ {
		pt.Intern(pg * 4096)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt.Intern(uint64(i%pages) * 4096)
	}
}

// BenchmarkFullCountersObserve measures one counter update on the flat
// array path (the FC mechanism's per-access cost).
func BenchmarkFullCountersObserve(b *testing.B) {
	fc := NewFullCounters(8)
	const pages = 4096
	for pg := PageIndex(0); pg < pages; pg++ {
		fc.Observe(pg, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Observe(PageIndex(i%pages), i%3 == 0)
	}
}

// BenchmarkFullCountersSnapshotReset measures one interval turnover:
// snapshot of a 4K-page working set plus the epoch-stamp reset.
func BenchmarkFullCountersSnapshotReset(b *testing.B) {
	pt := NewPageTable()
	const pages = 4096
	for pg := uint64(0); pg < pages; pg++ {
		pt.Intern(pg)
	}
	fc := NewFullCounters(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := PageIndex(0); pg < pages; pg++ {
			fc.Observe(pg, pg%3 == 0)
		}
		_ = fc.Snapshot(pt)
		fc.Reset()
	}
}
