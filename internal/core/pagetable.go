package core

// PageTable interns sparse 64-bit page ids into dense uint32 indices so the
// per-access bookkeeping (activity counters, placement, AVF tracking, MEA,
// interval hotness) can live in flat slices instead of Go maps. Indices are
// assigned in first-touch order, are stable for the lifetime of the table,
// and are dense: after N distinct interns the live indices are exactly
// 0..N-1.
//
// The table is a linear-probing open-addressing hash over plain slices: one
// probe sequence per access, no Go map machinery, and zero allocations in
// steady state (growth is amortized and stops once the footprint is seen).
// It is the single sparse→dense translation on the simulator's hot path;
// everything downstream indexes arrays.

// PageIndex is a dense index assigned to a page id by a PageTable. Indices
// from different tables are not comparable.
type PageIndex uint32

// NoPageIndex is the sentinel for "not interned" in sparse slot arrays.
const NoPageIndex = PageIndex(^uint32(0))

const emptyPageSlot = ^uint32(0)

// PageTable maps page ids to dense indices. The zero value is not usable;
// construct with NewPageTable. Not safe for concurrent use.
type PageTable struct {
	ids  []uint64 // dense: index -> page id
	keys []uint64 // open-addressing slot keys
	vals []uint32 // parallel to keys; emptyPageSlot marks a free slot
	mask uint64   // len(keys)-1, len is a power of two
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	const initial = 1 << 10
	t := &PageTable{
		keys: make([]uint64, initial),
		vals: make([]uint32, initial),
		mask: initial - 1,
	}
	for i := range t.vals {
		t.vals[i] = emptyPageSlot
	}
	return t
}

// hashPage is the splitmix64 finalizer — a full-avalanche mixer so page ids
// that differ only in high bits still spread across slots.
func hashPage(id uint64) uint64 {
	id ^= id >> 30
	id *= 0xbf58476d1ce4e5b9
	id ^= id >> 27
	id *= 0x94d049bb133111eb
	id ^= id >> 31
	return id
}

// Intern returns the dense index for id, assigning the next free index on
// first sight. Steady state (id already interned) performs no allocation.
func (t *PageTable) Intern(id uint64) PageIndex {
	slot := hashPage(id) & t.mask
	for {
		v := t.vals[slot]
		if v == emptyPageSlot {
			break
		}
		if t.keys[slot] == id {
			return PageIndex(v)
		}
		slot = (slot + 1) & t.mask
	}
	ix := uint32(len(t.ids))
	t.ids = append(t.ids, id)
	t.keys[slot] = id
	t.vals[slot] = ix
	// Grow at 3/4 load so probe chains stay short.
	if uint64(len(t.ids))*4 >= uint64(len(t.keys))*3 {
		t.grow()
	}
	return PageIndex(ix)
}

// Find returns the dense index for id without interning it.
func (t *PageTable) Find(id uint64) (PageIndex, bool) {
	slot := hashPage(id) & t.mask
	for {
		v := t.vals[slot]
		if v == emptyPageSlot {
			return 0, false
		}
		if t.keys[slot] == id {
			return PageIndex(v), true
		}
		slot = (slot + 1) & t.mask
	}
}

// ID returns the page id interned at index ix. It panics on an index the
// table never issued — that is a corrupted-index bug upstream.
func (t *PageTable) ID(ix PageIndex) uint64 {
	return t.ids[ix]
}

// Len returns the number of distinct page ids interned.
func (t *PageTable) Len() int { return len(t.ids) }

// IDs returns the dense index→id mapping as a slice: IDs()[ix] is the page
// id of index ix. The slice is the table's backing store — callers must not
// mutate it, and its length grows with future interns.
func (t *PageTable) IDs() []uint64 { return t.ids }

func (t *PageTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	n := uint64(len(oldKeys)) * 2
	t.keys = make([]uint64, n)
	t.vals = make([]uint32, n)
	t.mask = n - 1
	for i := range t.vals {
		t.vals[i] = emptyPageSlot
	}
	for i, v := range oldVals {
		if v == emptyPageSlot {
			continue
		}
		id := oldKeys[i]
		slot := hashPage(id) & t.mask
		for t.vals[slot] != emptyPageSlot {
			slot = (slot + 1) & t.mask
		}
		t.keys[slot] = id
		t.vals[slot] = v
	}
}
