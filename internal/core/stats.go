// Package core implements the paper's primary contribution: quantifying
// page hotness and page risk (AVF), the quadrant analysis of §4.2, the
// write-ratio risk heuristics of §5.3, the static reliability-aware
// placement policies of §4-5, the saturating hardware counters of §6, and
// the SER model that scores a placement (Equation 2 aggregated over pages).
package core

import (
	"sort"

	"hmem/internal/avf"
	"hmem/internal/faultsim"
)

// PageStats is the per-page profile every policy consumes: raw access
// counts (hotness) and, when produced by an oracle profiling run, AVF.
type PageStats struct {
	Page   uint64
	Reads  uint64
	Writes uint64
	// AVF is the page's architectural vulnerability factor in [0,1].
	AVF float64
}

// Accesses returns raw hotness: reads + writes (§4.2 "we estimate page
// hotness using raw access counts (reads and writes)").
func (p PageStats) Accesses() uint64 { return p.Reads + p.Writes }

// WrRatio returns the §5.4.1 risk proxy Wr/Rd. Pages never read get the
// write count itself (the limit of W/R as R→1), keeping the ranking total.
func (p PageStats) WrRatio() float64 {
	if p.Reads == 0 {
		return float64(p.Writes)
	}
	return float64(p.Writes) / float64(p.Reads)
}

// Wr2Ratio returns the §5.4.2 proxy Wr²/Rd, which still proxies (low) AVF
// but weights absolute write traffic, avoiding cold pages.
func (p PageStats) Wr2Ratio() float64 {
	w := float64(p.Writes)
	if p.Reads == 0 {
		return w * w
	}
	return w * w / float64(p.Reads)
}

// FromSnapshot converts an AVF tracker snapshot into policy inputs.
func FromSnapshot(snap []avf.PageAVF) []PageStats {
	out := make([]PageStats, len(snap))
	for i, s := range snap {
		out[i] = PageStats{Page: s.Page, Reads: s.Reads, Writes: s.Writes, AVF: s.AVF}
	}
	return out
}

// SortByPage orders stats by page id (canonical order for determinism).
func SortByPage(stats []PageStats) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Page < stats[j].Page })
}

// MeanHotness returns the mean access count — the paper's hot/cold threshold
// ("We split the memory footprint of each workload around mean hotness").
func MeanHotness(stats []PageStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum uint64
	for _, s := range stats {
		sum += s.Accesses()
	}
	return float64(sum) / float64(len(stats))
}

// MeanAVF returns the mean page AVF — the paper's risk threshold.
func MeanAVF(stats []PageStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range stats {
		sum += s.AVF
	}
	return sum / float64(len(stats))
}

// SERModel scores placements: SER = Σ_pages FITunc(tier) × AVF-share(tier)
// (Equation 2 with the FIT term specialized per tier by the fault study).
// Absolute units are FIT-per-page-GB; only ratios are meaningful, matching
// the paper's "relative to DDRx-only" reporting.
type SERModel struct {
	Fits faultsim.TierFITs
}

// pageGB is the capacity of one 4 KiB page in GB.
const pageGB = 4096.0 / (1 << 30)

// SER scores a finished run from the AVF tracker's tier-attributed snapshot.
func (m SERModel) SER(snap []avf.PageAVF) float64 {
	total := 0.0
	for _, p := range snap {
		total += m.Fits.DDRPerGB * p.ByTier[avf.TierDDR] * pageGB
		total += m.Fits.HBMPerGB * p.ByTier[avf.TierHBM] * pageGB
	}
	return total
}

// SERAllDDR scores the DDR-only baseline for the same snapshot: every
// page's full AVF charged at the DDR tier's uncorrectable FIT.
func (m SERModel) SERAllDDR(snap []avf.PageAVF) float64 {
	total := 0.0
	for _, p := range snap {
		total += m.Fits.DDRPerGB * p.AVF * pageGB
	}
	return total
}

// SERStatic scores a static placement against profile stats: pages in HBM
// (per inHBM) are charged at the HBM rate for their whole AVF.
func (m SERModel) SERStatic(stats []PageStats, inHBM map[uint64]bool) float64 {
	total := 0.0
	for _, s := range stats {
		fit := m.Fits.DDRPerGB
		if inHBM[s.Page] {
			fit = m.Fits.HBMPerGB
		}
		total += fit * s.AVF * pageGB
	}
	return total
}
