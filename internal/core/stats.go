// Package core implements the paper's primary contribution: quantifying
// page hotness and page risk (AVF), the quadrant analysis of §4.2, the
// write-ratio risk heuristics of §5.3, the static reliability-aware
// placement policies of §4-5, the saturating hardware counters of §6, and
// the SER model that scores a placement (Equation 2 aggregated over pages).
package core

import (
	"sort"

	"hmem/internal/avf"
	"hmem/internal/faultsim"
)

// PageStats is the per-page profile every policy consumes: raw access
// counts (hotness) and, when produced by an oracle profiling run, AVF.
type PageStats struct {
	Page   uint64
	Reads  uint64
	Writes uint64
	// AVF is the page's architectural vulnerability factor in [0,1].
	AVF float64
}

// Accesses returns raw hotness: reads + writes (§4.2 "we estimate page
// hotness using raw access counts (reads and writes)").
func (p PageStats) Accesses() uint64 { return p.Reads + p.Writes }

// WrRatio returns the §5.4.1 risk proxy Wr/Rd. Pages never read get the
// write count itself (the limit of W/R as R→1), keeping the ranking total.
func (p PageStats) WrRatio() float64 {
	if p.Reads == 0 {
		return float64(p.Writes)
	}
	return float64(p.Writes) / float64(p.Reads)
}

// Wr2Ratio returns the §5.4.2 proxy Wr²/Rd, which still proxies (low) AVF
// but weights absolute write traffic, avoiding cold pages.
func (p PageStats) Wr2Ratio() float64 {
	w := float64(p.Writes)
	if p.Reads == 0 {
		return w * w
	}
	return w * w / float64(p.Reads)
}

// FromSnapshot converts an AVF tracker snapshot into policy inputs.
func FromSnapshot(snap []avf.PageAVF) []PageStats {
	out := make([]PageStats, len(snap))
	for i, s := range snap {
		out[i] = PageStats{Page: s.Page, Reads: s.Reads, Writes: s.Writes, AVF: s.AVF}
	}
	return out
}

// SortByPage orders stats by page id (canonical order for determinism).
func SortByPage(stats []PageStats) {
	sort.Slice(stats, func(i, j int) bool { return stats[i].Page < stats[j].Page })
}

// MeanHotness returns the mean access count — the paper's hot/cold threshold
// ("We split the memory footprint of each workload around mean hotness").
func MeanHotness(stats []PageStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum uint64
	for _, s := range stats {
		sum += s.Accesses()
	}
	return float64(sum) / float64(len(stats))
}

// MeanAVF returns the mean page AVF — the paper's risk threshold.
func MeanAVF(stats []PageStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range stats {
		sum += s.AVF
	}
	return sum / float64(len(stats))
}

// SERModel scores placements: SER = Σ_pages FITunc(tier) × AVF-share(tier)
// (Equation 2 with the FIT term specialized per tier by the fault study).
// Absolute units are FIT-per-page-GB; only ratios are meaningful, matching
// the paper's "relative to DDRx-only" reporting. The model iterates a
// page's tier shares in ascending tier index — the same accumulation order
// for any topology, so scores are bit-reproducible.
type SERModel struct {
	Fits faultsim.TierFITs
	// Fast is the fast tier's index for static scoring (SERStatic); zero
	// means the default topology's HBM tier (index 1).
	Fast int
}

// fastTier returns the fast tier index, defaulting to the two-tier HBM.
func (m SERModel) fastTier() int {
	if m.Fast > 0 {
		return m.Fast
	}
	return int(avf.TierHBM)
}

// pageGB is the capacity of one 4 KiB page in GB.
const pageGB = 4096.0 / (1 << 30)

// SER scores a finished run from the AVF tracker's tier-attributed snapshot.
func (m SERModel) SER(snap []avf.PageAVF) float64 {
	total := 0.0
	for _, p := range snap {
		for t := range p.ByTier {
			total += m.Fits.Of(t) * p.ByTier[t] * pageGB
		}
	}
	return total
}

// SERAllDDR scores the slow-tier-only baseline for the same snapshot: every
// page's full AVF charged at tier 0's uncorrectable FIT (DDR in the default
// topology).
func (m SERModel) SERAllDDR(snap []avf.PageAVF) float64 {
	total := 0.0
	for _, p := range snap {
		total += m.Fits.Of(0) * p.AVF * pageGB
	}
	return total
}

// SERStatic scores a static placement against profile stats: pages in the
// fast tier (per inHBM) are charged at the fast tier's rate for their whole
// AVF, everything else at tier 0's rate.
func (m SERModel) SERStatic(stats []PageStats, inHBM map[uint64]bool) float64 {
	base, fastFit := m.Fits.Of(0), m.Fits.Of(m.fastTier())
	total := 0.0
	for _, s := range stats {
		fit := base
		if inHBM[s.Page] {
			fit = fastFit
		}
		total += fit * s.AVF * pageGB
	}
	return total
}
