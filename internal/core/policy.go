package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Policy is a static (profile-guided) placement: given per-page statistics
// and the HBM capacity in pages, it returns the pages to place in HBM. The
// remainder goes to DDRx. Implementations must be deterministic.
type Policy interface {
	Name() string
	Select(stats []PageStats, capacityPages int) []uint64
}

// rankBy returns up to capacity pages ordered by a descending key, breaking
// ties by page id so selections are deterministic.
func rankBy(stats []PageStats, capacity int, key func(PageStats) float64) []uint64 {
	if capacity <= 0 || len(stats) == 0 {
		return nil
	}
	idx := make([]int, len(stats))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := key(stats[idx[a]]), key(stats[idx[b]])
		if ka != kb {
			return ka > kb
		}
		return stats[idx[a]].Page < stats[idx[b]].Page
	})
	if capacity > len(idx) {
		capacity = len(idx)
	}
	out := make([]uint64, capacity)
	for i := 0; i < capacity; i++ {
		out[i] = stats[idx[i]].Page
	}
	return out
}

// DDROnly places nothing in HBM — the reliability-optimal, slowest baseline.
type DDROnly struct{}

// Name implements Policy.
func (DDROnly) Name() string { return "ddr-only" }

// Select implements Policy.
func (DDROnly) Select([]PageStats, int) []uint64 { return nil }

// PerfFocused fills HBM with the hottest pages — the §4.2 state-of-the-art
// baseline (1.6× IPC, 287× SER).
type PerfFocused struct{}

// Name implements Policy.
func (PerfFocused) Name() string { return "perf-focused" }

// Select implements Policy.
func (PerfFocused) Select(stats []PageStats, capacity int) []uint64 {
	return rankBy(stats, capacity, func(p PageStats) float64 { return float64(p.Accesses()) })
}

// PerfFraction places only the top F fraction of HBM capacity with hot
// pages, leaving the rest of HBM empty — the Figure 1 sweep knob.
type PerfFraction struct{ F float64 }

// Name implements Policy (distinct per fraction so result caches keyed by
// policy name stay correct).
func (p PerfFraction) Name() string { return fmt.Sprintf("perf-fraction-%.3f", p.F) }

// Select implements Policy.
func (p PerfFraction) Select(stats []PageStats, capacity int) []uint64 {
	f := p.F
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return PerfFocused{}.Select(stats, int(f*float64(capacity)))
}

// ReliabilityFocused fills HBM with low-risk pages: "places all low-risk
// pages (i.e., pages with AVF below a certain threshold) in HBM" (§5.1).
// With HBM capacity binding, the threshold resolves to "the capacity lowest
// AVF pages". Hotness is ignored entirely, which is why the paper's version
// hauls cold pages into HBM (SER ÷5 at a 17% IPC cost).
type ReliabilityFocused struct{}

// Name implements Policy.
func (ReliabilityFocused) Name() string { return "reliability-focused" }

// Select implements Policy.
func (ReliabilityFocused) Select(stats []PageStats, capacity int) []uint64 {
	return rankBy(stats, capacity, func(p PageStats) float64 { return -p.AVF })
}

// Balanced restricts HBM to the hot∧low-risk quadrant, ranked by hotness
// (§5.2). It never overflows the quadrant even when HBM has room left —
// the paper calls this out as the source of its conservatism.
type Balanced struct{}

// Name implements Policy.
func (Balanced) Name() string { return "balanced" }

// Select implements Policy.
func (Balanced) Select(stats []PageStats, capacity int) []uint64 {
	q := Quadrants(stats)
	eligible := make([]PageStats, 0, len(stats))
	for _, p := range stats {
		if q.Classify(p) == HotLowRisk {
			eligible = append(eligible, p)
		}
	}
	return rankBy(eligible, capacity, func(p PageStats) float64 { return float64(p.Accesses()) })
}

// WrRatio ranks by the §5.4.1 Wr/Rd AVF proxy (SER ÷1.8, 8.1% IPC loss —
// still picks cold low-risk pages).
type WrRatio struct{}

// Name implements Policy.
func (WrRatio) Name() string { return "wr-ratio" }

// Select implements Policy.
func (WrRatio) Select(stats []PageStats, capacity int) []uint64 {
	return rankBy(stats, capacity, PageStats.WrRatio)
}

// Wr2Ratio ranks by the §5.4.2 Wr²/Rd proxy, biasing toward hot pages
// (SER ÷1.6 at just 1% IPC loss — the paper's best static heuristic).
type Wr2Ratio struct{}

// Name implements Policy.
func (Wr2Ratio) Name() string { return "wr2-ratio" }

// Select implements Policy.
func (Wr2Ratio) Select(stats []PageStats, capacity int) []uint64 {
	return rankBy(stats, capacity, PageStats.Wr2Ratio)
}

// StaticPolicies returns the paper's static placement lineup in evaluation
// order.
func StaticPolicies() []Policy {
	return []Policy{
		DDROnly{}, PerfFocused{}, ReliabilityFocused{}, Balanced{}, WrRatio{}, Wr2Ratio{},
	}
}

// PolicyByName resolves a policy Name() back to the policy — the inverse
// needed to execute a policy run from a wire descriptor on another node.
// Every named lineup policy resolves; "perf-fraction-F" resolves only when
// the parsed fraction renders back to the same name (true for the eighths
// Figure 1 sweeps; a fraction that loses precision at three decimals would
// silently select a different page set, so it reports false instead).
func PolicyByName(name string) (Policy, bool) {
	for _, p := range StaticPolicies() {
		if p.Name() == name {
			return p, true
		}
	}
	if rest, ok := strings.CutPrefix(name, "perf-fraction-"); ok {
		f, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, false
		}
		p := PerfFraction{F: f}
		if p.Name() == name {
			return p, true
		}
	}
	return nil, false
}
