package core

// Quadrant analysis (§4.2, Figure 4): the footprint is split around mean
// hotness and mean AVF into four populations. The upper-left population —
// hot and low-risk — is the opportunity this paper exploits: "hot and
// low-risk pages account for anywhere between 9% and 39% of the entire
// memory footprint".

// Quadrant identifies one cell of the hotness/risk plane.
type Quadrant uint8

// The four quadrants.
const (
	HotLowRisk Quadrant = iota
	HotHighRisk
	ColdLowRisk
	ColdHighRisk
)

// String names the quadrant.
func (q Quadrant) String() string {
	switch q {
	case HotLowRisk:
		return "hot+low-risk"
	case HotHighRisk:
		return "hot+high-risk"
	case ColdLowRisk:
		return "cold+low-risk"
	case ColdHighRisk:
		return "cold+high-risk"
	default:
		return "quadrant(?)"
	}
}

// QuadrantSummary is the Figure 4 census of one workload.
type QuadrantSummary struct {
	MeanHotness float64
	MeanAVF     float64
	Count       [4]int
	Total       int
}

// Classify places one page given the thresholds. Pages exactly at a
// threshold fall on the cold/low side, matching a strict ">" hot test.
func (s QuadrantSummary) Classify(p PageStats) Quadrant {
	hot := float64(p.Accesses()) > s.MeanHotness
	high := p.AVF > s.MeanAVF
	switch {
	case hot && !high:
		return HotLowRisk
	case hot && high:
		return HotHighRisk
	case !hot && !high:
		return ColdLowRisk
	default:
		return ColdHighRisk
	}
}

// Frac returns the fraction of pages in quadrant q.
func (s QuadrantSummary) Frac(q Quadrant) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Count[q]) / float64(s.Total)
}

// Quadrants computes the census with mean-hotness/mean-AVF thresholds.
func Quadrants(stats []PageStats) QuadrantSummary {
	s := QuadrantSummary{
		MeanHotness: MeanHotness(stats),
		MeanAVF:     MeanAVF(stats),
		Total:       len(stats),
	}
	for _, p := range stats {
		s.Count[s.Classify(p)]++
	}
	return s
}
