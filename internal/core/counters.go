package core

// Hardware activity counters (§6.1-§6.4). The paper's mechanisms are
// modeled bit-faithfully: 8-bit saturating read/write counters per page for
// the Full Counter mechanism, 16-bit risk counters for the Cross Counter
// mechanism's HBM-resident reliability unit. The same constants drive the
// §6.3/§6.4.2 hardware-cost table.

// SatCounter is a saturating hardware counter of a configurable bit width.
type SatCounter struct {
	v   uint32
	max uint32
}

// NewSatCounter returns a counter saturating at 2^bits - 1.
func NewSatCounter(bits int) SatCounter {
	if bits <= 0 || bits > 32 {
		panic("core: counter width must be 1..32 bits")
	}
	return SatCounter{max: 1<<uint(bits) - 1}
}

// Inc adds one, sticking at the maximum ("we assume the counters to be
// saturating, so they do not overflow").
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Value returns the current count.
func (c *SatCounter) Value() uint32 { return c.v }

// Reset zeroes the counter (interval boundary).
func (c *SatCounter) Reset() { c.v = 0 }

// PageCounters is one page's read/write counter pair.
type PageCounters struct {
	R, W SatCounter
}

// FullCounters tracks reads and writes per page — the §6.2 FC mechanism.
// The backing store is sparse (only touched pages), but the hardware cost
// is computed from the architected page count.
type FullCounters struct {
	bits  int
	pages map[uint64]*PageCounters
}

// NewFullCounters builds the tracker with the given counter width (the
// paper sizes 8-bit counters after observing 6 bits suffice).
func NewFullCounters(bits int) *FullCounters {
	if bits <= 0 || bits > 32 {
		panic("core: counter width must be 1..32 bits")
	}
	return &FullCounters{bits: bits, pages: make(map[uint64]*PageCounters)}
}

// Observe records one access.
func (f *FullCounters) Observe(page uint64, write bool) {
	pc := f.pages[page]
	if pc == nil {
		r := NewSatCounter(f.bits)
		w := NewSatCounter(f.bits)
		pc = &PageCounters{R: r, W: w}
		f.pages[page] = pc
	}
	if write {
		pc.W.Inc()
	} else {
		pc.R.Inc()
	}
}

// Snapshot exports the interval's counters as PageStats (AVF unknown: the
// runtime mechanism estimates risk via WrRatio instead).
func (f *FullCounters) Snapshot() []PageStats {
	out := make([]PageStats, 0, len(f.pages))
	for page, pc := range f.pages {
		out = append(out, PageStats{Page: page, Reads: uint64(pc.R.Value()), Writes: uint64(pc.W.Value())})
	}
	SortByPage(out)
	return out
}

// Reset clears all counters for the next interval.
func (f *FullCounters) Reset() { f.pages = make(map[uint64]*PageCounters) }

// TouchedPages returns how many distinct pages were observed this interval.
func (f *FullCounters) TouchedPages() int { return len(f.pages) }

// ---- Hardware cost (§6.3, §6.4.2) ------------------------------------------

// FCCostBytes returns the storage for the FC mechanism: two 8-bit counters
// (16 bits) per architected page. For the paper's 17 GB HMA (4.25 M pages)
// this is 8.5 MB, of which 4.25 MB is the *additional* cost over a
// performance-only design that needs just one counter per page.
func FCCostBytes(totalPages int) int { return totalPages * 2 }

// FCAdditionalCostBytes is the extra storage versus a perf-only tracker.
func FCAdditionalCostBytes(totalPages int) int { return totalPages }

// CCCostBytes returns the Cross Counter mechanism's storage: 16-bit risk
// counters for HBM pages only, plus the MEA unit (~100 KB) and its 64 KB
// remap-table cache (§6.4.2: 512 KB + 100 KB + 64 KB = 676 KB for 262K HBM
// pages).
func CCCostBytes(hbmPages int) int {
	const meaUnit = 100 * 1024
	const remapCache = 64 * 1024
	return hbmPages*2 + meaUnit + remapCache
}
