package core

// Hardware activity counters (§6.1-§6.4). The paper's mechanisms are
// modeled bit-faithfully: 8-bit saturating read/write counters per page for
// the Full Counter mechanism, 16-bit risk counters for the Cross Counter
// mechanism's HBM-resident reliability unit. The same constants drive the
// §6.3/§6.4.2 hardware-cost table.
//
// The tracker is keyed by dense PageIndex (see PageTable) and stores its
// state in flat slices: one bounds check and two array writes per access,
// no map operations and no allocations in steady state. Interval resets
// are O(touched) via an epoch stamp — entries are lazily zeroed on first
// touch of the next interval instead of eagerly cleared or reallocated.

// SatCounter is a saturating hardware counter of a configurable bit width.
type SatCounter struct {
	v   uint32
	max uint32
}

// NewSatCounter returns a counter saturating at 2^bits - 1.
func NewSatCounter(bits int) SatCounter {
	if bits <= 0 || bits > 32 {
		panic("core: counter width must be 1..32 bits")
	}
	return SatCounter{max: 1<<uint(bits) - 1}
}

// Inc adds one, sticking at the maximum ("we assume the counters to be
// saturating, so they do not overflow").
func (c *SatCounter) Inc() {
	if c.v < c.max {
		c.v++
	}
}

// Value returns the current count.
func (c *SatCounter) Value() uint32 { return c.v }

// Reset zeroes the counter (interval boundary).
func (c *SatCounter) Reset() { c.v = 0 }

// FullCounters tracks reads and writes per page — the §6.2 FC mechanism.
// The backing store is dense over interned page indices (only touched pages
// ever get an index), but the hardware cost is computed from the architected
// page count. The zero value is unusable; construct with NewFullCounters.
type FullCounters struct {
	max     uint32 // saturation value, 2^bits - 1
	reads   []uint32
	writes  []uint32
	mark    []uint64 // epoch stamp: entry is live iff mark[i] == epoch
	epoch   uint64
	touched []PageIndex // indices observed this interval, first-touch order
}

// NewFullCounters builds the tracker with the given counter width (the
// paper sizes 8-bit counters after observing 6 bits suffice).
func NewFullCounters(bits int) *FullCounters {
	if bits <= 0 || bits > 32 {
		panic("core: counter width must be 1..32 bits")
	}
	return &FullCounters{max: 1<<uint(bits) - 1, epoch: 1}
}

// Observe records one access to the page interned at pi.
func (f *FullCounters) Observe(pi PageIndex, write bool) {
	i := int(pi)
	if i >= len(f.mark) {
		f.ensure(i + 1)
	}
	if f.mark[i] != f.epoch {
		f.mark[i] = f.epoch
		f.reads[i], f.writes[i] = 0, 0
		f.touched = append(f.touched, pi)
	}
	if write {
		if f.writes[i] < f.max {
			f.writes[i]++
		}
	} else {
		if f.reads[i] < f.max {
			f.reads[i]++
		}
	}
}

// ensure grows the backing arrays to hold at least n entries. Growth is
// amortized doubling so a run allocates O(log footprint) times total.
func (f *FullCounters) ensure(n int) {
	cap := len(f.mark) * 2
	if cap < n {
		cap = n
	}
	if cap < 64 {
		cap = 64
	}
	reads := make([]uint32, cap)
	writes := make([]uint32, cap)
	mark := make([]uint64, cap)
	copy(reads, f.reads)
	copy(writes, f.writes)
	copy(mark, f.mark)
	f.reads, f.writes, f.mark = reads, writes, mark
}

// Snapshot exports the interval's counters as PageStats (AVF unknown: the
// runtime mechanism estimates risk via WrRatio instead). pt must be the
// table that issued the indices fed to Observe; the result is ordered by
// page id for deterministic downstream aggregation.
func (f *FullCounters) Snapshot(pt *PageTable) []PageStats {
	out := make([]PageStats, 0, len(f.touched))
	for _, pi := range f.touched {
		i := int(pi)
		out = append(out, PageStats{
			Page:   pt.ID(pi),
			Reads:  uint64(f.reads[i]),
			Writes: uint64(f.writes[i]),
		})
	}
	SortByPage(out)
	return out
}

// Reset clears all counters for the next interval. It is O(1) and performs
// no allocation: the touched list is truncated in place and stale entries
// are invalidated by bumping the epoch stamp.
func (f *FullCounters) Reset() {
	f.epoch++
	f.touched = f.touched[:0]
}

// TouchedPages returns how many distinct pages were observed this interval.
func (f *FullCounters) TouchedPages() int { return len(f.touched) }

// ---- Hardware cost (§6.3, §6.4.2) ------------------------------------------

// FCCostBytes returns the storage for the FC mechanism: two 8-bit counters
// (16 bits) per architected page. For the paper's 17 GB HMA (4.25 M pages)
// this is 8.5 MB, of which 4.25 MB is the *additional* cost over a
// performance-only design that needs just one counter per page.
func FCCostBytes(totalPages int) int { return totalPages * 2 }

// FCAdditionalCostBytes is the extra storage versus a perf-only tracker.
func FCAdditionalCostBytes(totalPages int) int { return totalPages }

// CCCostBytes returns the Cross Counter mechanism's storage: 16-bit risk
// counters for HBM pages only, plus the MEA unit (~100 KB) and its 64 KB
// remap-table cache (§6.4.2: 512 KB + 100 KB + 64 KB = 676 KB for 262K HBM
// pages).
func CCCostBytes(hbmPages int) int {
	const meaUnit = 100 * 1024
	const remapCache = 64 * 1024
	return hbmPages*2 + meaUnit + remapCache
}
