package core

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

func TestDefaultTopologyMatchesHardwiredMachine(t *testing.T) {
	topo := DefaultTopology(64)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Name != DefaultTopologyName || len(topo.Tiers) != 2 {
		t.Fatalf("default topology shape: %+v", topo)
	}
	if topo.Tiers[0].Name != "DDR" || topo.Tiers[1].Name != "HBM" {
		t.Fatalf("tier order: %s, %s (tier indices are load-bearing)", topo.Tiers[0].Name, topo.Tiers[1].Name)
	}
	if topo.FastTier != 1 {
		t.Fatalf("fast tier = %d, want 1 (HBM)", topo.FastTier)
	}
	// DDR-only first-touch allocation: the pre-topology behavior.
	if !reflect.DeepEqual(topo.AllocOrder, []int{0}) {
		t.Fatalf("alloc order = %v, want [0]", topo.AllocOrder)
	}
	if topo.Tiers[0].FaultSeed != 0xD0D0 || topo.Tiers[1].FaultSeed != 0x4B1D {
		t.Fatal("fault seeds drifted from the paper studies")
	}
	if got := topo.FastPages(); got != (1<<30)/64/4096 {
		t.Fatalf("fast pages = %d", got)
	}
	if got := topo.TotalPages(); got != (17<<30)/64/4096 {
		t.Fatalf("total pages = %d", got)
	}
}

func TestDRAMNVMTopology(t *testing.T) {
	topo := DRAMNVMTopology(64)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Tiers) != 3 || topo.FastTier != 2 {
		t.Fatalf("dram-nvm shape: %+v", topo)
	}
	if topo.Tiers[0].WriteBudget == 0 {
		t.Fatal("NVM tier has no write budget")
	}
	if !reflect.DeepEqual(topo.AllocOrder, []int{1, 0}) {
		t.Fatalf("alloc order = %v, want DRAM then NVM", topo.AllocOrder)
	}
}

func TestTopologyValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Topology)
		want   string
	}{
		{"no name", func(tp *Topology) { tp.Name = "" }, "needs a name"},
		{"one tier", func(tp *Topology) { tp.Tiers = tp.Tiers[:1] }, "at least 2 tiers"},
		{"unnamed tier", func(tp *Topology) { tp.Tiers[0].Name = "" }, "tier 0 needs a name"},
		{"duplicate tier", func(tp *Topology) { tp.Tiers[1].Name = tp.Tiers[0].Name }, "duplicate tier name"},
		{"bad mem", func(tp *Topology) { tp.Tiers[0].Mem.Channels = 0 }, "Channels"},
		{"negative fit", func(tp *Topology) { tp.Tiers[0].FITPerGB = -1 }, "non-negative"},
		{"fast tier range", func(tp *Topology) { tp.FastTier = 7 }, "FastTier 7 out of range"},
		{"empty alloc order", func(tp *Topology) { tp.AllocOrder = nil }, "AllocOrder must not be empty"},
		{"alloc range", func(tp *Topology) { tp.AllocOrder = []int{5} }, "out of range"},
		{"alloc repeat", func(tp *Topology) { tp.AllocOrder = []int{0, 0} }, "repeats tier 0"},
	}
	for _, tc := range cases {
		topo := DefaultTopology(64)
		tc.mutate(topo)
		err := topo.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestTopologyTierName(t *testing.T) {
	topo := DefaultTopology(64)
	if topo.TierName(1) != "HBM" {
		t.Fatalf("TierName(1) = %q", topo.TierName(1))
	}
	if topo.TierName(9) != "tier9" || topo.TierName(-1) != "tier-1" {
		t.Fatalf("fallback names: %q, %q", topo.TierName(9), topo.TierName(-1))
	}
}

func TestTopologyRegistry(t *testing.T) {
	if err := RegisterTopology(DefaultTopology(64)); err == nil {
		t.Fatal("registered a built-in name")
	}
	custom := DRAMNVMTopology(64)
	custom.Name = "registry-test"
	if err := RegisterTopology(custom); err != nil {
		t.Fatal(err)
	}
	got, err := TopologyByName("registry-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != custom {
		t.Fatal("registry returned a different topology")
	}
	names := TopologyNames()
	if names[0] != DefaultTopologyName || names[1] != DRAMNVMTopologyName {
		t.Fatalf("built-ins not first: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "registry-test" {
			found = true
		}
	}
	if !found {
		t.Fatalf("custom name missing from %v", names)
	}
	if _, err := TopologyByName("no-such-topology", 1); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown-name error = %v", err)
	}
}

// TestTopologyJSONRoundTrip pins the file format: the shipped example file
// parses, validates, and survives a marshal/unmarshal round trip unchanged.
func TestTopologyJSONRoundTrip(t *testing.T) {
	data, err := os.ReadFile("../../examples/topologies/dram-nvm.json")
	if err != nil {
		t.Fatal(err)
	}
	topo, err := ParseTopology(data)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "dram-nvm-example" || len(topo.Tiers) != 3 {
		t.Fatalf("example file shape: %s with %d tiers", topo.Name, len(topo.Tiers))
	}
	out, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseTopology(out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(topo, again) {
		t.Fatal("round trip changed the topology")
	}
}

// FuzzTopologyJSON checks that any byte string either fails ParseTopology or
// yields a topology whose marshalled form round-trips to an equal value —
// the invariant hmemd relies on when accepting topology files.
func FuzzTopologyJSON(f *testing.F) {
	if data, err := os.ReadFile("../../examples/topologies/dram-nvm.json"); err == nil {
		f.Add(data)
	}
	for _, topo := range []*Topology{DefaultTopology(64), DRAMNVMTopology(64)} {
		data, err := json.Marshal(topo)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","tiers":[],"fast_tier":0}`))
	f.Add([]byte(`{"name":"x","tiers":[{"name":"a"},{"name":"a"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		topo, err := ParseTopology(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(topo)
		if err != nil {
			t.Fatalf("valid topology failed to marshal: %v", err)
		}
		again, err := ParseTopology(out)
		if err != nil {
			t.Fatalf("marshalled topology failed to re-parse: %v", err)
		}
		if !reflect.DeepEqual(topo, again) {
			t.Fatalf("round trip changed topology:\n%+v\n%+v", topo, again)
		}
	})
}
