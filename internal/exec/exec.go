// Package exec provides the concurrency primitives behind the experiment
// engine: a generic singleflight memo cache and a bounded worker group.
//
// Every fan-out in the repository — figure drivers sweeping workloads ×
// policies, fault-study shards, facade comparisons, hmemd service requests —
// goes through this package so that three invariants hold everywhere:
//
//   - work sharing: concurrent requests for the same memo key share one
//     in-flight computation instead of racing or duplicating multi-second
//     simulations;
//   - deterministic assembly: Map writes results by index, so the output
//     of a fan-out is a pure function of its inputs regardless of worker
//     count or goroutine scheduling;
//   - prompt cancellation: a cancelled context stops a pool from starting
//     any further task and releases waiters blocked on someone else's
//     in-flight memo computation.
package exec

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"hmem/internal/obs"
)

// Memo is a concurrency-safe, generic singleflight memo cache.
//
// The first caller of Do for a key runs the function; callers arriving while
// it is in flight block and share its outcome. Both values and errors are
// cached permanently: every computation in this repository is a
// deterministic function of its key (and the owning runner's options), so a
// retry could only repeat the same outcome. A panic in the function is also
// cached and re-raised (wrapped in PanicError) in the first caller and every
// waiter — concurrent and subsequent alike — so a broken invariant surfaces
// at every request site instead of deadlocking the waiters.
//
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*memoCall[V]

	hits   atomic.Uint64
	misses atomic.Uint64
}

// memoCall is one (possibly in-flight) computation.
type memoCall[V any] struct {
	done     chan struct{}
	val      V
	err      error
	panicked bool
	panicVal any
}

// MemoStats is a point-in-time snapshot of a memo's request counters. A hit
// is a request served from a finished or in-flight computation; a miss is a
// request that had to start one. hits/(hits+misses) is the work-sharing
// ratio cmd/experiments prints and hmemd's /metrics endpoint exports.
type MemoStats struct {
	Hits   uint64
	Misses uint64
}

// Add returns the element-wise sum, for aggregating several memos.
func (s MemoStats) Add(o MemoStats) MemoStats {
	return MemoStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

// PanicError wraps a panic value recovered from a memoized computation or a
// group task so it can be re-raised in a different goroutine with its origin
// preserved.
type PanicError struct {
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery time.
	// Only Protect fills it; re-raised memo/group panics leave it empty
	// because the original stack is gone by the time they propagate.
	Stack string
}

// Error implements error.
func (p PanicError) Error() string { return fmt.Sprintf("exec: panic in task: %v", p.Value) }

// Protect runs fn and converts a panic into a returned *PanicError carrying
// the recovered value and the panicking goroutine's stack. It is the
// isolation primitive for long-lived worker loops (hmemd's job runner): a
// broken invariant in one task must fail that task's request, not the
// process. Deliberate runtime aborts (runtime.Goexit) are not intercepted.
func Protect(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}

// Do returns the memoized outcome for key, computing it with fn if this is
// the first request. fn runs in the caller's goroutine.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return m.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with cancellation for the *requester*, not the computation:
// a caller whose context is cancelled before the computation starts never
// registers it, and a caller waiting on another goroutine's in-flight
// computation stops waiting and returns ctx.Err(). The computation itself —
// once started — always runs to completion and is cached, because its result
// is shared with every other requester of the key; this is also why fn must
// not observe the caller's context (a cached ctx.Err() would poison the key
// for every future caller).
func (m *Memo[K, V]) DoCtx(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	var zero V
	if err := ctx.Err(); err != nil {
		return zero, err
	}
	m.mu.Lock()
	if m.calls == nil {
		m.calls = make(map[K]*memoCall[V])
	}
	if c, ok := m.calls[key]; ok {
		m.mu.Unlock()
		m.hits.Add(1)
		select {
		case <-c.done:
		case <-ctx.Done():
			return zero, ctx.Err()
		}
		if c.panicked {
			panic(PanicError{Value: c.panicVal})
		}
		return c.val, c.err
	}
	c := &memoCall[V]{done: make(chan struct{})}
	m.calls[key] = c
	m.mu.Unlock()
	m.misses.Add(1)

	defer close(c.done)
	defer func() {
		if r := recover(); r != nil {
			c.panicked = true
			c.panicVal = r
			panic(PanicError{Value: r})
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}

// Len reports how many keys have been requested (including in-flight ones).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.calls)
}

// Known reports whether key has a finished or in-flight computation — i.e.
// whether a Do for it would share existing work rather than start new work.
// Admission control uses this to price memo hits as near-free without
// perturbing the hit/miss counters.
func (m *Memo[K, V]) Known(key K) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.calls[key]
	return ok
}

// Stats returns the current hit/miss counters.
func (m *Memo[K, V]) Stats() MemoStats {
	return MemoStats{Hits: m.hits.Load(), Misses: m.misses.Load()}
}

// Group runs tasks on at most a fixed number of goroutines, propagating the
// first failure and cancelling tasks that have not started yet. It is a
// dependency-free analogue of errgroup.Group with a concurrency limit and
// context cancellation.
type Group struct {
	ctx  context.Context
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error

	mu       sync.Mutex
	panicked bool
	panicVal any
	done     chan struct{}
}

// Workers resolves a requested worker count: non-positive means "one worker
// per CPU".
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// NewGroup returns a group running at most workers tasks concurrently
// (non-positive workers = runtime.NumCPU()). Cancelling ctx prevents any
// not-yet-started task from running; Wait then reports ctx's error (unless
// a task already failed first). Tasks already running are not interrupted —
// simulations have no preemption points, and their results are discarded on
// error anyway.
func NewGroup(ctx context.Context, workers int) *Group {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Group{
		ctx:  ctx,
		sem:  make(chan struct{}, Workers(workers)),
		done: make(chan struct{}),
	}
}

// fail records the group's first failure and cancels pending tasks.
func (g *Group) fail(err error, panicVal any, panicked bool) {
	g.once.Do(func() {
		g.mu.Lock()
		g.err = err
		g.panicked = panicked
		g.panicVal = panicVal
		g.mu.Unlock()
		close(g.done)
	})
}

// Go schedules fn. Tasks that have not yet started when another task fails —
// or when the group's context is cancelled — are skipped.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		select {
		case <-g.done:
			return
		case <-g.ctx.Done():
			g.fail(g.ctx.Err(), nil, false)
			return
		case g.sem <- struct{}{}:
		}
		defer func() { <-g.sem }()
		select {
		case <-g.done:
			return
		case <-g.ctx.Done():
			g.fail(g.ctx.Err(), nil, false)
			return
		default:
		}
		defer func() {
			if r := recover(); r != nil {
				g.fail(nil, r, true)
			}
		}()
		if err := fn(); err != nil {
			g.fail(err, nil, false)
		}
	}()
}

// Wait blocks until every scheduled task has finished or been skipped and
// returns the first error (a task's error, or the context's if cancellation
// struck first). If a task panicked, Wait re-raises the panic (wrapped in
// PanicError) in the waiting goroutine.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.panicked {
		panic(PanicError{Value: g.panicVal})
	}
	return g.err
}

// fanout observes one Map/ForEach dispatch: each task gets a leaf
// "exec.task" span (tasks take fn(i int) with no context, so these spans
// cannot parent work inside the task — they record dispatch and wall time
// only), and each completion reports fan-out progress to the context's sink,
// with the phase defaulting to the enclosing span's name.
type fanout struct {
	ctx  context.Context
	n    int
	done atomic.Int64
}

// newFanout returns the dispatch observer, or nil when ctx carries neither
// a tracer nor a progress sink. The nil return is load-bearing: Map and
// ForEach fall back to the exact uninstrumented task closure, so a bare
// context pays zero extra allocations — per task and per call — with the
// observability layer compiled in (the hmembench gate pins allocs/op
// exactly).
func newFanout(ctx context.Context, n int) *fanout {
	if !obs.Enabled(ctx) && !obs.Reporting(ctx) {
		return nil
	}
	return &fanout{ctx: ctx, n: n}
}

// start opens the task's span (nil when tracing is off; obs.Span is
// nil-safe).
func (f *fanout) start(i int) *obs.Span {
	if !obs.Enabled(f.ctx) {
		return nil
	}
	_, sp := obs.Start(f.ctx, "exec.task", obs.Int("index", int64(i)))
	return sp
}

// finish closes the task's span and, on success, reports fan-out progress.
func (f *fanout) finish(sp *obs.Span, err error) {
	sp.End()
	if err != nil {
		return
	}
	done := f.done.Add(1)
	obs.ReportProgress(f.ctx, obs.Progress{
		Percent: float64(done) / float64(f.n),
		Records: done,
	})
}

// Map evaluates fn(0..n-1) on at most workers goroutines and returns the
// results in index order — the fan-out/fan-in used by every figure driver.
// On error (or ctx cancellation) the first failure is returned and the
// partial results discarded. When ctx carries obs facilities, each task is
// recorded as an "exec.task" span and completions report progress.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	g := NewGroup(ctx, workers)
	if f := newFanout(ctx, n); f != nil {
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() error {
				sp := f.start(i)
				v, err := fn(i)
				f.finish(sp, err)
				if err != nil {
					return err
				}
				out[i] = v
				return nil
			})
		}
	} else {
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() error {
				v, err := fn(i)
				if err != nil {
					return err
				}
				out[i] = v
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// Settle evaluates fn(0..n-1) on at most workers goroutines and returns
// every task's error by index — the error-isolating cousin of ForEach for
// fan-outs where one item's failure must not abort the rest (the batch
// endpoint's per-item execution). Unlike Map/ForEach, a failing or
// panicking task never cancels its siblings: panics are converted to
// *PanicError in that task's slot via Protect, and only tasks that have not
// yet started when ctx is cancelled are skipped with ctx.Err(). The
// returned slice always has length n; nil entries are tasks that completed
// without error.
func Settle(ctx context.Context, workers, n int, fn func(i int) error) []error {
	errs := make([]error, n)
	sem := make(chan struct{}, Workers(workers))
	var wg sync.WaitGroup
	f := newFanout(ctx, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			if f != nil {
				sp := f.start(i)
				errs[i] = Protect(func() error { return fn(i) })
				f.finish(sp, errs[i])
				return
			}
			errs[i] = Protect(func() error { return fn(i) })
		}()
	}
	wg.Wait()
	return errs
}

// ForEach evaluates fn(0..n-1) on at most workers goroutines and returns
// the first error. Observed the same way as Map.
func ForEach(ctx context.Context, workers, n int, fn func(i int) error) error {
	g := NewGroup(ctx, workers)
	if f := newFanout(ctx, n); f != nil {
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() error {
				sp := f.start(i)
				err := fn(i)
				f.finish(sp, err)
				return err
			})
		}
	} else {
		for i := 0; i < n; i++ {
			i := i
			g.Go(func() error { return fn(i) })
		}
	}
	return g.Wait()
}
