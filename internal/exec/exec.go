// Package exec provides the concurrency primitives behind the experiment
// engine: a generic singleflight memo cache and a bounded worker group.
//
// Every fan-out in the repository — figure drivers sweeping workloads ×
// policies, fault-study shards, facade comparisons — goes through this
// package so that two invariants hold everywhere:
//
//   - work sharing: concurrent requests for the same memo key share one
//     in-flight computation instead of racing or duplicating multi-second
//     simulations;
//   - deterministic assembly: Map writes results by index, so the output
//     of a fan-out is a pure function of its inputs regardless of worker
//     count or goroutine scheduling.
package exec

import (
	"fmt"
	"runtime"
	"sync"
)

// Memo is a concurrency-safe, generic singleflight memo cache.
//
// The first caller of Do for a key runs the function; callers arriving while
// it is in flight block and share its outcome. Both values and errors are
// cached permanently: every computation in this repository is a
// deterministic function of its key (and the owning runner's options), so a
// retry could only repeat the same outcome. A panic in the function is also
// cached and re-raised (wrapped in PanicError) in the first caller and every
// waiter — concurrent and subsequent alike — so a broken invariant surfaces
// at every request site instead of deadlocking the waiters.
//
// The zero value is ready to use.
type Memo[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*memoCall[V]
}

// memoCall is one (possibly in-flight) computation.
type memoCall[V any] struct {
	done     chan struct{}
	val      V
	err      error
	panicked bool
	panicVal any
}

// PanicError wraps a panic value recovered from a memoized computation or a
// group task so it can be re-raised in a different goroutine with its origin
// preserved.
type PanicError struct {
	Value any
}

// Error implements error.
func (p PanicError) Error() string { return fmt.Sprintf("exec: panic in task: %v", p.Value) }

// Do returns the memoized outcome for key, computing it with fn if this is
// the first request. fn runs in the caller's goroutine.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.calls == nil {
		m.calls = make(map[K]*memoCall[V])
	}
	if c, ok := m.calls[key]; ok {
		m.mu.Unlock()
		<-c.done
		if c.panicked {
			panic(PanicError{Value: c.panicVal})
		}
		return c.val, c.err
	}
	c := &memoCall[V]{done: make(chan struct{})}
	m.calls[key] = c
	m.mu.Unlock()

	defer close(c.done)
	defer func() {
		if r := recover(); r != nil {
			c.panicked = true
			c.panicVal = r
			panic(PanicError{Value: r})
		}
	}()
	c.val, c.err = fn()
	return c.val, c.err
}

// Len reports how many keys have been requested (including in-flight ones).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.calls)
}

// Group runs tasks on at most a fixed number of goroutines, propagating the
// first failure and cancelling tasks that have not started yet. It is a
// dependency-free analogue of errgroup.Group with a concurrency limit.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error

	mu       sync.Mutex
	panicked bool
	panicVal any
	done     chan struct{}
}

// Workers resolves a requested worker count: non-positive means "one worker
// per CPU".
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// NewGroup returns a group running at most workers tasks concurrently
// (non-positive workers = runtime.NumCPU()).
func NewGroup(workers int) *Group {
	return &Group{
		sem:  make(chan struct{}, Workers(workers)),
		done: make(chan struct{}),
	}
}

// fail records the group's first failure and cancels pending tasks.
func (g *Group) fail(err error, panicVal any, panicked bool) {
	g.once.Do(func() {
		g.mu.Lock()
		g.err = err
		g.panicked = panicked
		g.panicVal = panicVal
		g.mu.Unlock()
		close(g.done)
	})
}

// Go schedules fn. Tasks that have not yet started when another task fails
// are skipped; tasks already running are not interrupted (simulations have
// no preemption points, and their results are discarded on error anyway).
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		select {
		case <-g.done:
			return
		case g.sem <- struct{}{}:
		}
		defer func() { <-g.sem }()
		select {
		case <-g.done:
			return
		default:
		}
		defer func() {
			if r := recover(); r != nil {
				g.fail(nil, r, true)
			}
		}()
		if err := fn(); err != nil {
			g.fail(err, nil, false)
		}
	}()
}

// Wait blocks until every scheduled task has finished or been skipped and
// returns the first error. If a task panicked, Wait re-raises the panic
// (wrapped in PanicError) in the waiting goroutine.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.panicked {
		panic(PanicError{Value: g.panicVal})
	}
	return g.err
}

// Map evaluates fn(0..n-1) on at most workers goroutines and returns the
// results in index order — the fan-out/fan-in used by every figure driver.
// On error the first failure is returned and the partial results discarded.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	g := NewGroup(workers)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error {
			v, err := fn(i)
			if err != nil {
				return err
			}
			out[i] = v
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach evaluates fn(0..n-1) on at most workers goroutines and returns
// the first error.
func ForEach(workers, n int, fn func(i int) error) error {
	g := NewGroup(workers)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error { return fn(i) })
	}
	return g.Wait()
}
