package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoSingleFlight: many concurrent callers of the same key share one
// execution and all observe its value.
func TestMemoSingleFlight(t *testing.T) {
	var m Memo[string, int]
	var executions atomic.Int64
	gate := make(chan struct{})

	const callers = 64
	var wg sync.WaitGroup
	results := make([]int, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i], errs[i] = m.Do("key", func() (int, error) {
				executions.Add(1)
				return 42, nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("function executed %d times, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d: got (%d, %v), want (42, nil)", i, results[i], errs[i])
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// TestMemoDistinctKeys: distinct keys execute independently, once each.
func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, int]
	var executions atomic.Int64

	const keys = 32
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for k := 0; k < keys; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				v, err := m.Do(k, func() (int, error) {
					executions.Add(1)
					return k * k, nil
				})
				if err != nil || v != k*k {
					t.Errorf("key %d: got (%d, %v)", k, v, err)
				}
			}(k)
		}
	}
	wg.Wait()
	if n := executions.Load(); n != keys {
		t.Fatalf("executions = %d, want %d", n, keys)
	}
}

// TestMemoErrorCached: a failed computation is cached — later callers get
// the same error without a re-execution (computations are deterministic, so
// retrying could only fail identically).
func TestMemoErrorCached(t *testing.T) {
	var m Memo[string, int]
	var executions atomic.Int64
	boom := errors.New("boom")

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Do("bad", func() (int, error) {
				executions.Add(1)
				return 0, boom
			}); !errors.Is(err, boom) {
				t.Errorf("got err %v, want boom", err)
			}
		}()
	}
	wg.Wait()
	// A later (sequential) caller still sees the cached error.
	if _, err := m.Do("bad", func() (int, error) {
		executions.Add(1)
		return 7, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("cached error lost: %v", err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("failed fn executed %d times, want 1", n)
	}
}

// TestMemoPanicPropagation: a panicking computation re-raises in the leader,
// every concurrent waiter, and every subsequent caller, all without
// re-execution.
func TestMemoPanicPropagation(t *testing.T) {
	var m Memo[string, int]
	var executions, caught atomic.Int64

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					t.Error("caller did not panic")
					return
				}
				pe, ok := r.(PanicError)
				if !ok || pe.Value != "kaboom" {
					t.Errorf("unexpected panic payload %v", r)
					return
				}
				caught.Add(1)
			}()
			m.Do("explosive", func() (int, error) {
				executions.Add(1)
				panic("kaboom")
			})
		}()
	}
	wg.Wait()
	if n := caught.Load(); n != callers {
		t.Fatalf("%d callers caught the panic, want %d", n, callers)
	}

	// A fresh caller after the fact panics too, still without re-running.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("subsequent caller did not panic")
			}
		}()
		m.Do("explosive", func() (int, error) { executions.Add(1); return 0, nil })
	}()
	if n := executions.Load(); n != 1 {
		t.Fatalf("panicking fn executed %d times, want 1", n)
	}
}

// TestGroupBoundsConcurrency: at most `workers` tasks run at once.
func TestGroupBoundsConcurrency(t *testing.T) {
	const workers, tasks = 3, 24
	g := NewGroup(context.Background(), workers)
	var cur, peak atomic.Int64
	for i := 0; i < tasks; i++ {
		g.Go(func() error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			runtime.Gosched()
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, workers)
	}
}

// TestGroupFirstErrorWinsAndCancels: the first error is reported and tasks
// not yet started are skipped.
func TestGroupFirstErrorWinsAndCancels(t *testing.T) {
	g := NewGroup(context.Background(), 1) // serialize so "later" tasks are provably unstarted
	boom := errors.New("boom")
	var ran atomic.Int64
	g.Go(func() error { ran.Add(1); return boom })
	for i := 0; i < 50; i++ {
		g.Go(func() error { ran.Add(1); return nil })
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	// The failing task ran; with one worker and immediate failure, at least
	// the tail of the queue must have been skipped.
	if n := ran.Load(); n == 51 {
		t.Fatal("no tasks were cancelled after the first error")
	}
}

// TestGroupPanicSurfacesInWait: a panicking task does not crash the worker
// goroutine silently — Wait re-raises it.
func TestGroupPanicSurfacesInWait(t *testing.T) {
	g := NewGroup(context.Background(), 2)
	g.Go(func() error { panic("worker exploded") })
	defer func() {
		r := recover()
		pe, ok := r.(PanicError)
		if !ok || pe.Value != "worker exploded" {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned instead of panicking")
}

// TestMapOrderIndependentOfScheduling: Map returns results in index order
// at any worker count.
func TestMapOrderIndependentOfScheduling(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), workers, 100, func(i int) (string, error) {
			runtime.Gosched()
			return fmt.Sprintf("item-%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if want := fmt.Sprintf("item-%d", i); v != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, v, want)
			}
		}
	}
}

// TestMapError: an error aborts the fan-out.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || out != nil {
		t.Fatalf("Map = (%v, %v), want (nil, boom)", out, err)
	}
}

// TestForEach covers the no-result fan-out.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 8, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := sum.Load(); s != 4950 {
		t.Fatalf("sum = %d, want 4950", s)
	}
}

// TestWorkersResolution: non-positive requests resolve to NumCPU.
func TestWorkersResolution(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Fatal("non-positive workers should resolve to NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("positive workers should pass through")
	}
}

// TestGroupContextCancelStopsPool: cancelling the group's context skips every
// task that has not started yet and Wait reports the cancellation promptly.
// Run under -race this also checks the cancel path for data races.
func TestGroupContextCancelStopsPool(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroup(ctx, 2)
	var started atomic.Int64
	release := make(chan struct{})
	firstRunning := make(chan struct{}, 2)

	const tasks = 200
	for i := 0; i < tasks; i++ {
		g.Go(func() error {
			started.Add(1)
			firstRunning <- struct{}{}
			<-release // hold both workers until the test cancels
			return nil
		})
	}
	<-firstRunning // at least one task is occupying the pool
	cancel()
	close(release)
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// Both workers may have picked up a task before cancel landed; everything
	// else must have been skipped.
	if n := started.Load(); n > 2 {
		t.Fatalf("%d tasks started after cancellation, want <= 2", n)
	}
}

// TestMapContextPreCancelled: a cancelled context means no task runs at all.
func TestMapContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	out, err := Map(ctx, 4, 50, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("Map = (%v, %v), want (nil, context.Canceled)", out, err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", n)
	}
}

// TestMemoStats: the leader is a miss, every sharer (in-flight or after the
// fact) is a hit.
func TestMemoStats(t *testing.T) {
	var m Memo[string, int]
	gate := make(chan struct{})
	leaderIn := make(chan struct{})

	go m.Do("key", func() (int, error) {
		close(leaderIn)
		<-gate
		return 1, nil
	})
	<-leaderIn

	// A concurrent waiter shares the in-flight computation: that is a hit.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err := m.Do("key", func() (int, error) { return 99, nil }); v != 1 || err != nil {
			t.Errorf("waiter got (%d, %v), want (1, nil)", v, err)
		}
	}()
	for m.Stats().Hits == 0 { // waiter registers its hit before blocking
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	// A subsequent caller hits the finished entry.
	if _, err := m.Do("key", func() (int, error) { return 99, nil }); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("Stats = %+v, want {Hits:2 Misses:1}", s)
	}
	sum := m.Stats().Add(MemoStats{Hits: 1, Misses: 2})
	if sum.Hits != 3 || sum.Misses != 3 {
		t.Fatalf("Add = %+v, want {Hits:3 Misses:3}", sum)
	}
}

// TestMemoDoCtxWaiterAbandons: a waiter whose context is cancelled stops
// waiting on the in-flight leader; the leader's result still lands in the
// cache for later callers.
func TestMemoDoCtxWaiterAbandons(t *testing.T) {
	var m Memo[string, int]
	gate := make(chan struct{})
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})

	go func() {
		m.Do("slow", func() (int, error) {
			close(leaderIn)
			<-gate
			return 7, nil
		})
		close(leaderOut)
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.DoCtx(ctx, "slow", func() (int, error) { return 0, nil })
		done <- err
	}()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v, want context.Canceled", err)
	}

	close(gate)
	<-leaderOut
	// The computation was not poisoned by the waiter's cancellation.
	v, err := m.DoCtx(context.Background(), "slow", func() (int, error) { return 0, nil })
	if v != 7 || err != nil {
		t.Fatalf("post-cancel caller got (%d, %v), want (7, nil)", v, err)
	}
}

// TestMemoDoCtxPreCancelled: a cancelled context never registers (or runs)
// the computation, so a later caller still computes fresh.
func TestMemoDoCtxPreCancelled(t *testing.T) {
	var m Memo[string, int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.DoCtx(ctx, "k", func() (int, error) {
		t.Error("fn ran under a pre-cancelled context")
		return 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m.Len() != 0 {
		t.Fatalf("cancelled request registered a call entry (Len=%d)", m.Len())
	}
	if v, err := m.Do("k", func() (int, error) { return 3, nil }); v != 3 || err != nil {
		t.Fatalf("later caller got (%d, %v), want (3, nil)", v, err)
	}
}
