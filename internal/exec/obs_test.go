package exec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"hmem/internal/obs"
)

// TestMapEmitsSpansAndProgress drives a fan-out with the full observability
// stack installed — tracer into a ring, a progress sink — across many
// workers. Designed to run under -race: span export and progress reporting
// happen concurrently from every worker.
func TestMapEmitsSpansAndProgress(t *testing.T) {
	const n = 64
	ring := obs.NewRing(2 * n)
	tracer := obs.NewTracer("fanout", ring)
	ctx := obs.WithTracer(context.Background(), tracer)

	var mu sync.Mutex
	var reports []obs.Progress
	ctx = obs.WithProgress(ctx, func(p obs.Progress) {
		mu.Lock()
		reports = append(reports, p)
		mu.Unlock()
	})

	out, err := Map(ctx, 8, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}

	spans := ring.Snapshot("fanout")
	if len(spans) != n {
		t.Fatalf("got %d exec.task spans, want %d", len(spans), n)
	}
	seen := make(map[int64]bool)
	for _, sp := range spans {
		if sp.Name != "exec.task" {
			t.Fatalf("unexpected span %q", sp.Name)
		}
		if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "index" {
			t.Fatalf("span attrs = %v", sp.Attrs)
		}
		seen[sp.Attrs[0].Val.(int64)] = true
	}
	if len(seen) != n {
		t.Fatalf("%d distinct task indices, want %d", len(seen), n)
	}

	if len(reports) != n {
		t.Fatalf("%d progress reports, want %d", len(reports), n)
	}
	var sawFull bool
	for _, p := range reports {
		if p.Percent < 0 || p.Percent > 1 {
			t.Fatalf("progress percent %v out of range", p.Percent)
		}
		if p.Percent == 1 && p.Records == n {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no progress report reached 100%")
	}
}

// TestMapFailureSkipsProgress checks that a failing task produces its span
// (dispatch happened) but no completion progress, and that the fan-out's
// error semantics are unchanged by observation.
func TestMapFailureSkipsProgress(t *testing.T) {
	ring := obs.NewRing(16)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer("fail", ring))
	var reports int
	ctx = obs.WithProgress(ctx, func(obs.Progress) { reports++ })

	boom := errors.New("boom")
	_, err := Map(ctx, 1, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if reports > 2 {
		t.Fatalf("%d progress reports from a failed fan-out of 3", reports)
	}
}

// TestForEachUntracedIsUninstrumented pins the disabled path: no tracer and
// no sink in ctx means no spans and no reports, with the loop body running
// exactly as before.
func TestForEachUntracedIsUninstrumented(t *testing.T) {
	var ran [8]bool
	if err := ForEach(context.Background(), 4, 8, func(i int) error {
		ran[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, ok := range ran {
		if !ok {
			t.Fatalf("task %d never ran", i)
		}
	}
}
