package exec

import (
	"errors"
	"strings"
	"testing"
)

func TestProtectPassesThroughResults(t *testing.T) {
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("boom")
	if err := Protect(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestProtectConvertsPanicToError(t *testing.T) {
	err := Protect(func() error { panic("invariant broken") })
	if err == nil {
		t.Fatal("panic not converted")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T, want *PanicError", err)
	}
	if pe.Value != "invariant broken" {
		t.Fatalf("Value = %v", pe.Value)
	}
	if !strings.Contains(pe.Stack, "TestProtectConvertsPanicToError") {
		t.Fatalf("Stack does not name the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "invariant broken") {
		t.Fatalf("Error() = %q", err.Error())
	}
}
