package chaos

import (
	"fmt"
	"io"
	"sync"
)

// faultWriter decorates an io.Writer with the plan's write faults.
type faultWriter struct {
	inj *Injector
	dst io.Writer

	mu  sync.Mutex
	pos int
}

// Writer wraps dst with the plan's write faults, standing in for a
// filesystem that fills up or loses its disk mid-append. Each call returns
// an independent wrapper whose fault indices count that wrapper's Write
// calls. ModeError fails the write outright; ModeShort writes half the
// buffer and then fails (a torn append — what a crash mid-write leaves
// behind). The wrapper is safe for concurrent use iff dst is.
func (inj *Injector) Writer(dst io.Writer) io.Writer {
	return &faultWriter{inj: inj, dst: dst}
}

// Write implements io.Writer.
func (w *faultWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	idx := w.pos
	w.pos++
	w.mu.Unlock()
	for _, f := range w.inj.plan.Write {
		if f.AtWrite != idx {
			continue
		}
		switch f.Mode {
		case ModeError:
			w.inj.writeFaults.Add(1)
			return 0, fmt.Errorf("%w: write %d", ErrInjected, idx)
		case ModeShort:
			w.inj.writeFaults.Add(1)
			n, err := w.dst.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("%w: torn write %d after %d bytes", ErrInjected, idx, n)
		}
	}
	return w.dst.Write(p)
}
