package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSlowdownDelaysOnlyTargetedHost(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer other.Close()

	sd := NewSlowdown(nil)
	client := &http.Client{Transport: sd}
	slowedHost := srv.Listener.Addr().String()
	sd.SetDelay(slowedHost, 80*time.Millisecond)

	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("slowed request took %v, want >= 80ms", d)
	}
	if got := sd.Delayed(); got != 1 {
		t.Fatalf("Delayed() = %d, want 1", got)
	}

	// The untargeted host is untouched.
	start = time.Now()
	resp, err = client.Get(other.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("untargeted request took %v, want fast", d)
	}
	if got := sd.Delayed(); got != 1 {
		t.Fatalf("Delayed() = %d after untargeted request, want still 1", got)
	}

	// Clear restores the slowed host.
	sd.Clear()
	start = time.Now()
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("cleared request took %v, want fast", d)
	}
}

// TestSlowdownHonorsContext pins that a caller deadline fires during the
// injected sleep — the property that turns a brownout into breaker evidence:
// the scheduler's per-request timeout expires and the dispatch fails.
func TestSlowdownHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	sd := NewSlowdown(nil)
	sd.SetDelay(srv.Listener.Addr().String(), 10*time.Second)
	client := &http.Client{Transport: sd}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("request through a 10s slowdown with a 50ms deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline took %v to fire, want ~50ms", d)
	}
}

// TestHTTPFaultWindow pins ThroughRequest semantics: the fault fires on every
// request in [AtRequest, ThroughRequest] and nothing outside it.
func TestHTTPFaultWindow(t *testing.T) {
	inj, err := New(Plan{HTTP: []HTTPFault{
		{AtRequest: 1, ThroughRequest: 3, Mode: ModeError, Code: 503},
	}})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(inj.Handler(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	})))
	defer srv.Close()

	wantCodes := []int{200, 503, 503, 503, 200}
	for i, want := range wantCodes {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("request %d: code %d, want %d", i, resp.StatusCode, want)
		}
	}
	if got := inj.Stats().HTTP; got != 3 {
		t.Fatalf("injected %d HTTP faults, want 3", got)
	}
}

func TestHTTPFaultWindowValidation(t *testing.T) {
	_, err := New(Plan{HTTP: []HTTPFault{
		{AtRequest: 5, ThroughRequest: 2, Mode: ModeError},
	}})
	if err == nil {
		t.Fatal("inverted window validated")
	}
}
