package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// httpFaultFor pops the fault (if any) scheduled for the next request. The
// request counter is shared between Handler and RoundTripper wrappers of one
// Injector: a plan addresses one exchange sequence, whichever side it is
// wired into.
func (inj *Injector) httpFaultFor() (HTTPFault, bool) {
	idx := int(inj.httpReqs.Add(1)) - 1
	for _, f := range inj.plan.HTTP {
		if f.matches(idx) {
			return f, true
		}
	}
	return HTTPFault{}, false
}

// Handler wraps h with the plan's HTTP faults on the server side.
//
// ModeLatency delays the response; ModeError short-circuits with the
// configured status (default 503) and a Retry-After hint; ModeDrop severs
// the connection without writing a response (the client sees io.EOF /
// connection reset), via the net/http-sanctioned http.ErrAbortHandler panic.
func (inj *Injector) Handler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := inj.httpFaultFor()
		if !ok {
			h.ServeHTTP(w, r)
			return
		}
		switch f.Mode {
		case ModeLatency:
			inj.httpFaults.Add(1)
			time.Sleep(time.Duration(f.LatencyMS) * time.Millisecond)
			h.ServeHTTP(w, r)
		case ModeError:
			inj.httpFaults.Add(1)
			code := f.Code
			if code == 0 {
				code = http.StatusServiceUnavailable
			}
			w.Header().Set("Retry-After", "1")
			http.Error(w, "chaos: injected fault", code)
		case ModeDrop:
			inj.httpFaults.Add(1)
			panic(http.ErrAbortHandler)
		}
	})
}

// RoundTripper wraps rt with the plan's HTTP faults on the client side,
// for chaos-testing clients against a healthy server. A nil rt wraps
// http.DefaultTransport.
func (inj *Injector) RoundTripper(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return roundTripFunc(func(req *http.Request) (*http.Response, error) {
		f, ok := inj.httpFaultFor()
		if !ok {
			return rt.RoundTrip(req)
		}
		switch f.Mode {
		case ModeLatency:
			inj.httpFaults.Add(1)
			time.Sleep(time.Duration(f.LatencyMS) * time.Millisecond)
			return rt.RoundTrip(req)
		case ModeError:
			inj.httpFaults.Add(1)
			code := f.Code
			if code == 0 {
				code = http.StatusServiceUnavailable
			}
			// Drain and close the request body as a real transport would.
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return &http.Response{
				StatusCode: code,
				Status:     strconv.Itoa(code) + " " + http.StatusText(code),
				Proto:      "HTTP/1.1",
				ProtoMajor: 1,
				ProtoMinor: 1,
				Header:     http.Header{"Retry-After": []string{"1"}},
				Body:       io.NopCloser(strings.NewReader("chaos: injected fault\n")),
				Request:    req,
			}, nil
		default: // ModeDrop
			inj.httpFaults.Add(1)
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return nil, fmt.Errorf("%w: dropped connection", ErrInjected)
		}
	})
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
