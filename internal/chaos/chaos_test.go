package chaos

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hmem/internal/trace"
)

// sliceStream replays a fixed record slice as a trace.Stream.
type sliceStream struct {
	recs []trace.Record
	pos  int
}

func (s *sliceStream) Next() (trace.Record, error) {
	if s.pos >= len(s.recs) {
		return trace.Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

func testRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{Gap: uint32(i), PC: 0x400000, Addr: uint64(i) << 12, Kind: trace.Read}
	}
	return recs
}

func mustInjector(t *testing.T, p Plan) *Injector {
	t.Helper()
	inj, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestPlanRoundTripsThroughJSON(t *testing.T) {
	p := Plan{
		Seed:  7,
		Trace: []TraceFault{{AtRecord: 3, Mode: ModeCorrupt}},
		Tasks: []TaskFault{{AtCall: 1, Mode: ModePanic}, {AtCall: 2, Mode: ModeDelay, DelayMS: 5}},
		HTTP:  []HTTPFault{{AtRequest: 0, Mode: ModeError, Code: 503}},
		Write: []WriteFault{{AtWrite: 2, Mode: ModeShort}},
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, _ := json.Marshal(back)
	if !bytes.Equal(data, data2) {
		t.Fatalf("plan did not round-trip:\n%s\n%s", data, data2)
	}
}

func TestPlanValidateRejectsBadModes(t *testing.T) {
	bad := []Plan{
		{Trace: []TraceFault{{AtRecord: 0, Mode: "explode"}}},
		{Trace: []TraceFault{{AtRecord: -1, Mode: ModeError}}},
		{Tasks: []TaskFault{{AtCall: 0, Mode: "truncate"}}},
		{HTTP: []HTTPFault{{AtRequest: 0, Mode: "panic"}}},
		{HTTP: []HTTPFault{{AtRequest: 0, Mode: ModeError, Code: 200}}},
		{Write: []WriteFault{{AtWrite: 0, Mode: "drop"}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d accepted", i)
		}
		if _, err := New(p); err == nil {
			t.Errorf("New accepted plan %d", i)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan rejected: %v", err)
	}
}

func TestStreamErrorReportsPosition(t *testing.T) {
	inj := mustInjector(t, Plan{Trace: []TraceFault{{AtRecord: 2, Mode: ModeError}}})
	s := inj.Stream(&sliceStream{recs: testRecords(10)})
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	_, err := s.Next()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	var se *StreamError
	if !errors.As(err, &se) || se.Record != 2 || se.Mode != ModeError {
		t.Fatalf("StreamError = %+v", se)
	}
	// The error is sticky: the stream stays failed, it does not resume.
	if _, err2 := s.Next(); !errors.Is(err2, ErrInjected) {
		t.Fatalf("stream resumed after injected error: %v", err2)
	}
	if got := inj.Stats().Trace; got != 1 {
		t.Fatalf("trace fault count = %d, want 1", got)
	}
}

func TestStreamTruncateEndsEarly(t *testing.T) {
	inj := mustInjector(t, Plan{Trace: []TraceFault{{AtRecord: 4, Mode: ModeTruncate}}})
	recs, err := trace.Collect(inj.Stream(&sliceStream{recs: testRecords(10)}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
}

func TestStreamCorruptIsDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, Trace: []TraceFault{{AtRecord: 1, Mode: ModeCorrupt}}}
	collect := func() []trace.Record {
		inj := mustInjector(t, plan)
		recs, err := trace.Collect(inj.Stream(&sliceStream{recs: testRecords(5)}), 0)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := collect(), collect()
	if len(a) != 5 {
		t.Fatalf("corrupt mode changed record count: %d", len(a))
	}
	clean := testRecords(5)
	if a[1] == clean[1] {
		t.Fatal("record 1 not corrupted")
	}
	if a[0] != clean[0] || a[2] != clean[2] {
		t.Fatal("corruption leaked into neighbouring records")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption not deterministic at record %d", i)
		}
	}
	// A different seed corrupts differently.
	inj2 := mustInjector(t, Plan{Seed: 43, Trace: plan.Trace})
	c, err := trace.Collect(inj2.Stream(&sliceStream{recs: testRecords(5)}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c[1] == a[1] {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestTaskPanicAndErrorFireAtIndices(t *testing.T) {
	inj := mustInjector(t, Plan{Tasks: []TaskFault{
		{AtCall: 1, Mode: ModePanic},
		{AtCall: 2, Mode: ModeError},
	}})
	ran := 0
	task := func() error { ran++; return nil }

	if err := inj.Task(task)(); err != nil || ran != 1 {
		t.Fatalf("call 0: err=%v ran=%d", err, ran)
	}
	func() {
		defer func() {
			r := recover()
			tp, ok := r.(TaskPanic)
			if !ok || tp.Call != 1 {
				t.Fatalf("recover() = %v, want TaskPanic{Call: 1}", r)
			}
		}()
		inj.Task(task)()
		t.Fatal("call 1 did not panic")
	}()
	if err := inj.Task(task)(); !errors.Is(err, ErrInjected) {
		t.Fatalf("call 2: err=%v, want ErrInjected", err)
	}
	if ran != 1 {
		t.Fatalf("faulted calls ran the task: ran=%d", ran)
	}
	if err := inj.Task(task)(); err != nil || ran != 2 {
		t.Fatalf("call 3: err=%v ran=%d", err, ran)
	}
	if got := inj.Stats().Tasks; got != 2 {
		t.Fatalf("task fault count = %d, want 2", got)
	}
}

func TestHandlerInjectsErrorAndDrop(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
	inj := mustInjector(t, Plan{HTTP: []HTTPFault{
		{AtRequest: 1, Mode: ModeError, Code: 502},
		{AtRequest: 2, Mode: ModeDrop},
	}})
	srv := httptest.NewServer(inj.Handler(inner))
	defer srv.Close()

	get := func() (*http.Response, error) { return http.Get(srv.URL) }

	resp, err := get()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 0: %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = get()
	if err != nil {
		t.Fatalf("request 1: %v", err)
	}
	if resp.StatusCode != 502 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("request 1: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	if _, err = get(); err == nil {
		t.Fatal("request 2: dropped connection produced a response")
	}

	resp, err = get()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 3: %v %v", resp, err)
	}
	resp.Body.Close()
	if got := inj.Stats().HTTP; got != 2 {
		t.Fatalf("http fault count = %d, want 2", got)
	}
}

func TestRoundTripperInjectsFaults(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj := mustInjector(t, Plan{HTTP: []HTTPFault{
		{AtRequest: 0, Mode: ModeError},
		{AtRequest: 1, Mode: ModeDrop},
	}})
	client := &http.Client{Transport: inj.RoundTripper(nil)}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("request 0: %v", err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request 0: status %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("request 0 body: %q", body)
	}

	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("request 1: dropped connection produced a response")
	}
	if served != 0 {
		t.Fatalf("faulted requests reached the server: %d", served)
	}

	resp, err = client.Get(srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("request 2: %v %v", resp, err)
	}
	resp.Body.Close()
	if served != 1 {
		t.Fatalf("served = %d, want 1", served)
	}
}

func TestWriterInjectsFailures(t *testing.T) {
	inj := mustInjector(t, Plan{Write: []WriteFault{
		{AtWrite: 1, Mode: ModeError},
		{AtWrite: 2, Mode: ModeShort},
	}})
	var buf bytes.Buffer
	w := inj.Writer(&buf)

	if n, err := w.Write([]byte("aaaa")); err != nil || n != 4 {
		t.Fatalf("write 0: n=%d err=%v", n, err)
	}
	if n, err := w.Write([]byte("bbbb")); !errors.Is(err, ErrInjected) || n != 0 {
		t.Fatalf("write 1: n=%d err=%v, want injected error", n, err)
	}
	n, err := w.Write([]byte("cccc"))
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("write 2: n=%d err=%v, want torn write of 2 bytes", n, err)
	}
	if n, err := w.Write([]byte("dddd")); err != nil || n != 4 {
		t.Fatalf("write 3: n=%d err=%v", n, err)
	}
	if got := buf.String(); got != "aaaaccdddd" {
		t.Fatalf("buffer = %q, want %q", got, "aaaaccdddd")
	}
	if got := inj.Stats().Write; got != 2 {
		t.Fatalf("write fault count = %d, want 2", got)
	}
}
