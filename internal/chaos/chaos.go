// Package chaos is a deterministic fault injector for hardening tests.
//
// A single JSON-serializable Plan describes every fault to inject — at which
// trace record, task call, HTTP request, or write the fault fires and what
// shape it takes. An Injector built from the plan hands out decorators for
// the seams the rest of the repository already exposes:
//
//   - Stream wraps a trace.Stream and truncates, corrupts, or errors it at
//     configured record indices;
//   - Task wraps a func() error (the shape of every worker-pool task) with
//     injected panics, delays, and errors;
//   - Handler / RoundTripper wrap HTTP server and client paths with added
//     latency, synthetic 5xx responses, and dropped connections;
//   - Writer wraps an io.Writer with injected write failures, standing in
//     for a filesystem that fills up or yanks the disk mid-append.
//
// Everything is deterministic: the same plan injects the same faults with the
// same corrupted bytes on every run, so a chaos test that passes locally
// passes in CI, and a failure reproduces from the plan alone. Corruption
// bits derive from Plan.Seed and the record index via xrand, never from a
// shared mutable generator, so injection is also independent of goroutine
// scheduling.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"hmem/internal/trace"
	"hmem/internal/xrand"
)

// ErrInjected is the sentinel wrapped by every fault this package injects,
// so tests can assert "this failure was mine" with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// Fault modes. Not every mode applies to every seam; Plan.Validate checks
// the combinations.
const (
	// ModeError makes the decorated call return an injected error.
	ModeError = "error"
	// ModeTruncate ends a stream early with io.EOF (silent truncation).
	ModeTruncate = "truncate"
	// ModeCorrupt flips deterministic bits in a stream record.
	ModeCorrupt = "corrupt"
	// ModePanic panics inside a task.
	ModePanic = "panic"
	// ModeDelay sleeps before running a task or serving a request.
	ModeDelay = "delay"
	// ModeLatency is ModeDelay's name on the HTTP seam.
	ModeLatency = "latency"
	// ModeDrop severs an HTTP exchange without a response.
	ModeDrop = "drop"
	// ModeShort writes half the buffer, then fails (torn write).
	ModeShort = "short"
)

// TraceFault injects one fault into a wrapped trace.Stream.
type TraceFault struct {
	// AtRecord is the 0-based record index at which the fault fires.
	AtRecord int `json:"at_record"`
	// Mode is ModeError, ModeTruncate, or ModeCorrupt.
	Mode string `json:"mode"`
}

// TaskFault injects one fault into a wrapped task closure.
type TaskFault struct {
	// AtCall is the 0-based call index (across all wrapped tasks of one
	// Injector) at which the fault fires.
	AtCall int `json:"at_call"`
	// Mode is ModePanic, ModeDelay, or ModeError.
	Mode string `json:"mode"`
	// DelayMS is the injected delay for ModeDelay.
	DelayMS int64 `json:"delay_ms,omitempty"`
}

// HTTPFault injects one fault into a wrapped handler or round tripper.
type HTTPFault struct {
	// AtRequest is the 0-based request index at which the fault fires.
	AtRequest int `json:"at_request"`
	// ThroughRequest, when > 0, widens the fault into a window: it fires on
	// every request with AtRequest <= index <= ThroughRequest. Zero keeps the
	// original exact-index behavior. Windows are what brownout plans use — a
	// bounded stretch of degraded service that ends on its own.
	ThroughRequest int `json:"through_request,omitempty"`
	// Mode is ModeLatency, ModeError, or ModeDrop.
	Mode string `json:"mode"`
	// LatencyMS is the added latency for ModeLatency.
	LatencyMS int64 `json:"latency_ms,omitempty"`
	// Code is the synthetic status for ModeError (default 503).
	Code int `json:"code,omitempty"`
}

// matches reports whether the fault fires at request index idx.
func (f HTTPFault) matches(idx int) bool {
	if f.ThroughRequest > 0 {
		return idx >= f.AtRequest && idx <= f.ThroughRequest
	}
	return idx == f.AtRequest
}

// WriteFault injects one fault into a wrapped io.Writer.
type WriteFault struct {
	// AtWrite is the 0-based Write call index at which the fault fires.
	AtWrite int `json:"at_write"`
	// Mode is ModeError or ModeShort.
	Mode string `json:"mode"`
}

// Plan is a complete, JSON-serializable fault schedule. The zero plan
// injects nothing.
type Plan struct {
	// Seed drives the deterministic corruption bits.
	Seed  uint64       `json:"seed,omitempty"`
	Trace []TraceFault `json:"trace,omitempty"`
	Tasks []TaskFault  `json:"tasks,omitempty"`
	HTTP  []HTTPFault  `json:"http,omitempty"`
	Write []WriteFault `json:"write,omitempty"`
}

// Validate checks every fault names a known mode for its seam and a
// non-negative firing index.
func (p Plan) Validate() error {
	for i, f := range p.Trace {
		if f.AtRecord < 0 {
			return fmt.Errorf("chaos: trace fault %d: negative at_record", i)
		}
		switch f.Mode {
		case ModeError, ModeTruncate, ModeCorrupt:
		default:
			return fmt.Errorf("chaos: trace fault %d: unknown mode %q", i, f.Mode)
		}
	}
	for i, f := range p.Tasks {
		if f.AtCall < 0 {
			return fmt.Errorf("chaos: task fault %d: negative at_call", i)
		}
		switch f.Mode {
		case ModePanic, ModeDelay, ModeError:
		default:
			return fmt.Errorf("chaos: task fault %d: unknown mode %q", i, f.Mode)
		}
	}
	for i, f := range p.HTTP {
		if f.AtRequest < 0 {
			return fmt.Errorf("chaos: http fault %d: negative at_request", i)
		}
		if f.ThroughRequest > 0 && f.ThroughRequest < f.AtRequest {
			return fmt.Errorf("chaos: http fault %d: through_request %d before at_request %d",
				i, f.ThroughRequest, f.AtRequest)
		}
		switch f.Mode {
		case ModeLatency, ModeError, ModeDrop:
		default:
			return fmt.Errorf("chaos: http fault %d: unknown mode %q", i, f.Mode)
		}
		if f.Mode == ModeError && f.Code != 0 && (f.Code < 400 || f.Code > 599) {
			return fmt.Errorf("chaos: http fault %d: code %d outside 4xx/5xx", i, f.Code)
		}
	}
	for i, f := range p.Write {
		if f.AtWrite < 0 {
			return fmt.Errorf("chaos: write fault %d: negative at_write", i)
		}
		switch f.Mode {
		case ModeError, ModeShort:
		default:
			return fmt.Errorf("chaos: write fault %d: unknown mode %q", i, f.Mode)
		}
	}
	return nil
}

// Stats counts faults actually injected, by seam.
type Stats struct {
	Trace uint64
	Tasks uint64
	HTTP  uint64
	Write uint64
}

// Injector hands out fault-injecting decorators driven by one Plan.
//
// Stream and Writer wrappers each carry their own private record/write
// counter (faults fire at indices within that wrapper); task and HTTP
// counters are shared across all wrappers from the same Injector, because a
// worker pool or server sees one global call sequence. All counters are
// atomic: wrappers may be used from concurrent goroutines.
type Injector struct {
	plan Plan

	taskCalls atomic.Int64
	httpReqs  atomic.Int64

	traceFaults atomic.Uint64
	taskFaults  atomic.Uint64
	httpFaults  atomic.Uint64
	writeFaults atomic.Uint64
}

// New builds an Injector for plan.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{plan: plan}, nil
}

// Plan returns the injector's fault schedule.
func (inj *Injector) Plan() Plan { return inj.plan }

// Stats snapshots how many faults fired so far.
func (inj *Injector) Stats() Stats {
	return Stats{
		Trace: inj.traceFaults.Load(),
		Tasks: inj.taskFaults.Load(),
		HTTP:  inj.httpFaults.Load(),
		Write: inj.writeFaults.Load(),
	}
}

// StreamError reports an injected mid-stream fault with the record position
// at which it fired, so the consumer's error message can localize the damage.
type StreamError struct {
	// Record is the 0-based index of the record at which the fault fired.
	Record int
	// Mode is the injected fault's mode.
	Mode string
}

// Error implements error.
func (e *StreamError) Error() string {
	return fmt.Sprintf("chaos: injected %s fault at record %d", e.Mode, e.Record)
}

// Unwrap ties StreamError to ErrInjected for errors.Is.
func (e *StreamError) Unwrap() error { return ErrInjected }

// corruptRecord deterministically flips bits in rec: the flipped bits are a
// pure function of (seed, record index), never of call order.
func corruptRecord(seed uint64, idx int, rec trace.Record) trace.Record {
	rng := xrand.New(xrand.Derive(seed, 0xC0, uint64(idx)))
	rec.Addr ^= rng.Uint64()
	rec.Gap ^= uint32(rng.Uint64())
	if rng.Bool(0.5) {
		rec.Kind = trace.Kind(rng.Uint64n(3))
	}
	return rec
}

// faultStream decorates a trace.Stream with the plan's trace faults.
type faultStream struct {
	inj *Injector
	src trace.Stream
	pos int
	err error // sticky after an injected error
}

// Stream wraps src with the plan's trace faults. Each call returns an
// independent wrapper whose fault indices count from that wrapper's first
// record.
func (inj *Injector) Stream(src trace.Stream) trace.Stream {
	return &faultStream{inj: inj, src: src}
}

// Next implements trace.Stream.
func (s *faultStream) Next() (trace.Record, error) {
	if s.err != nil {
		return trace.Record{}, s.err
	}
	idx := s.pos
	for _, f := range s.inj.plan.Trace {
		if f.AtRecord != idx {
			continue
		}
		switch f.Mode {
		case ModeError:
			s.inj.traceFaults.Add(1)
			s.err = &StreamError{Record: idx, Mode: ModeError}
			return trace.Record{}, s.err
		case ModeTruncate:
			s.inj.traceFaults.Add(1)
			s.err = io.EOF
			return trace.Record{}, s.err
		case ModeCorrupt:
			rec, err := s.src.Next()
			if err != nil {
				return trace.Record{}, err
			}
			s.inj.traceFaults.Add(1)
			s.pos++
			return corruptRecord(s.inj.plan.Seed, idx, rec), nil
		}
	}
	rec, err := s.src.Next()
	if err != nil {
		return trace.Record{}, err
	}
	s.pos++
	return rec, nil
}
