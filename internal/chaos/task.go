package chaos

import (
	"fmt"
	"time"
)

// TaskPanic is the value an injected ModePanic task panics with, so a
// recovery path can recognize (and a test can assert) a chaos-made panic.
type TaskPanic struct {
	// Call is the 0-based task-call index at which the panic fired.
	Call int
}

// String makes captured panic values readable in logs and job errors.
func (p TaskPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at task call %d", p.Call)
}

// Task wraps fn with the plan's task faults. The call counter is shared
// across every task wrapped by this Injector: AtCall indices address the
// global submission order, matching how a worker pool sees jobs.
//
// ModeDelay sleeps, then runs fn; ModeError returns an injected error
// without running fn; ModePanic panics with a TaskPanic value.
func (inj *Injector) Task(fn func() error) func() error {
	return func() error {
		idx := int(inj.taskCalls.Add(1)) - 1
		for _, f := range inj.plan.Tasks {
			if f.AtCall != idx {
				continue
			}
			switch f.Mode {
			case ModePanic:
				inj.taskFaults.Add(1)
				panic(TaskPanic{Call: idx})
			case ModeDelay:
				inj.taskFaults.Add(1)
				time.Sleep(time.Duration(f.DelayMS) * time.Millisecond)
			case ModeError:
				inj.taskFaults.Add(1)
				return fmt.Errorf("%w: task call %d", ErrInjected, idx)
			}
		}
		return fn()
	}
}
