package chaos

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Slowdown is a client-side brownout: requests to slowed hosts are delayed by
// a configured amount before reaching the real transport, while everything
// else passes through untouched. It is the latency sibling of Partition —
// addressed by host and togglable at runtime — for chaos tests that need a
// worker to stay alive but turn straggler: slow it 10×, watch breakers open
// and hedges fire, then clear the delay and watch recovery.
//
// Wire it in as an http.RoundTripper (e.g. service.ClusterConfig.Transport).
// Safe for concurrent use.
type Slowdown struct {
	rt http.RoundTripper

	mu     sync.Mutex
	delays map[string]time.Duration

	delayed atomic.Uint64
}

// NewSlowdown wraps rt (nil = http.DefaultTransport) with no hosts slowed.
func NewSlowdown(rt http.RoundTripper) *Slowdown {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &Slowdown{rt: rt, delays: make(map[string]time.Duration)}
}

// SetDelay injects d of extra latency before every request to host
// ("host:port" as it appears in request URLs). A non-positive d clears it.
func (s *Slowdown) SetDelay(host string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d <= 0 {
		delete(s.delays, host)
		return
	}
	s.delays[host] = d
}

// Clear removes the injected delay from the given hosts (no hosts = all).
func (s *Slowdown) Clear(hosts ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(hosts) == 0 {
		clear(s.delays)
		return
	}
	for _, h := range hosts {
		delete(s.delays, h)
	}
}

// Delayed counts requests that were slowed down.
func (s *Slowdown) Delayed() uint64 { return s.delayed.Load() }

// RoundTrip implements http.RoundTripper. The delay honors the request
// context: a caller timeout fires during the injected sleep exactly as it
// would during a real stall.
func (s *Slowdown) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	d := s.delays[req.URL.Host]
	s.mu.Unlock()
	if d > 0 {
		s.delayed.Add(1)
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		}
	}
	return s.rt.RoundTrip(req)
}
