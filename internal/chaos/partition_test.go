package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestPartitionBlocksAndHeals(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := srv.Listener.Addr().String()

	p := NewPartition(nil)
	client := &http.Client{Transport: p}

	get := func() error {
		resp, err := client.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		return err
	}

	if err := get(); err != nil {
		t.Fatalf("unpartitioned request failed: %v", err)
	}
	p.Block(host)
	err := get()
	if err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partition error should wrap ErrInjected, got %v", err)
	}
	p.Block("other:1") // unrelated hosts do not interfere
	if err := get(); err == nil {
		t.Fatal("still partitioned, request succeeded")
	}
	p.Heal(host)
	if err := get(); err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	p.Block(host)
	p.Heal() // heal-all
	if err := get(); err != nil {
		t.Fatalf("heal-all request failed: %v", err)
	}
	if got := p.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
}
