package chaos

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
)

// Partition is a client-side network partition: requests to blocked hosts
// fail with a transport error (as a real partition looks to net/http) while
// everything else passes through. Unlike the Injector's request-indexed
// faults it is addressed by host and togglable at runtime, which is what
// cluster chaos tests need — cut a worker off mid-shard, watch the
// coordinator re-place its work, then heal the link.
//
// Wire it in as an http.RoundTripper (e.g. service.ClusterConfig.Transport).
// Safe for concurrent use.
type Partition struct {
	rt http.RoundTripper

	mu      sync.Mutex
	blocked map[string]struct{}

	dropped atomic.Uint64
}

// NewPartition wraps rt (nil = http.DefaultTransport) with no hosts blocked.
func NewPartition(rt http.RoundTripper) *Partition {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &Partition{rt: rt, blocked: make(map[string]struct{})}
}

// Block cuts connectivity to the given hosts ("host:port" as it appears in
// request URLs) until Heal.
func (p *Partition) Block(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range hosts {
		p.blocked[h] = struct{}{}
	}
}

// Heal restores connectivity to the given hosts (no hosts = heal all).
func (p *Partition) Heal(hosts ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(hosts) == 0 {
		clear(p.blocked)
		return
	}
	for _, h := range hosts {
		delete(p.blocked, h)
	}
}

// Dropped counts requests refused while their host was blocked.
func (p *Partition) Dropped() uint64 { return p.dropped.Load() }

// RoundTrip implements http.RoundTripper.
func (p *Partition) RoundTrip(req *http.Request) (*http.Response, error) {
	p.mu.Lock()
	_, cut := p.blocked[req.URL.Host]
	p.mu.Unlock()
	if !cut {
		return p.rt.RoundTrip(req)
	}
	p.dropped.Add(1)
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	return nil, fmt.Errorf("%w: partitioned from %s", ErrInjected, req.URL.Host)
}
