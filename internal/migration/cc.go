package migration

import (
	"sort"

	"hmem/internal/core"
	"hmem/internal/mea"
	"hmem/internal/sim"
)

// CrossCounter is the §6.4 hardware-cost-optimized mechanism: a performance
// unit built on a k-entry MEA summary pushes a small set of globally hot
// pages into HBM every MEA-interval, while a reliability unit keeps full
// 16-bit read/write counters for HBM residents only and, every FC-interval,
// flushes the pages it has classified as high-risk (or cold) back to DDR.
// Migrations are performed by the hardware remap table concurrently with
// execution (MemPod-style), so cores do not take an OS pause; the traffic
// still contends with demand requests in the memory system.
type CrossCounter struct {
	meaInterval int64
	fcRatio     int // FC interval = fcRatio × MEA interval
	tick        int
	perf        *mea.Tracker
	risk        *core.FullCounters
	pt          *core.PageTable
	hotScratch  []mea.Entry
	hotPages    []pageCount
	pendingOut  []uint64
	// blocked maps pages the reliability unit classified high-risk to the
	// epoch of that verdict; the performance unit's in-migration query
	// skips them for blockEpochs epochs (§6.4.3: "the performance unit
	// also queries the reliability unit"). Without this memory, a hot
	// high-risk page bounces back one MEA interval after every flush and
	// the mechanism never reduces exposure — the pathology the paper
	// describes for astar, here bounded.
	blocked     map[uint64]int
	epoch       int
	blockEpochs int
	evictFactor float64
}

// NewCrossCounter builds the CC mechanism: a 32-entry MEA unit deciding
// every meaIntervalCycles, and a risk epoch every fcRatio MEA intervals
// (the paper: 50 µs and 100 ms — a ratio of 2000 at full scale; experiments
// preserve a large ratio at reduced scale).
func NewCrossCounter(meaIntervalCycles int64, fcRatio int, meaEntries int) *CrossCounter {
	if fcRatio < 1 {
		fcRatio = 1
	}
	if meaEntries <= 0 {
		meaEntries = 32
	}
	return &CrossCounter{
		meaInterval: meaIntervalCycles,
		fcRatio:     fcRatio,
		perf:        mea.New(meaEntries),
		risk:        core.NewFullCounters(16),
		blocked:     make(map[uint64]int),
		blockEpochs: 4,
		evictFactor: 0.5,
	}
}

// Name implements sim.Migrator.
func (c *CrossCounter) Name() string { return "cc-reliability" }

// Bind implements sim.Migrator.
func (c *CrossCounter) Bind(pt *core.PageTable) { c.pt = pt }

// SetBlockEpochs overrides how many FC epochs a high-risk verdict keeps a
// page out of HBM (default 4; 0 disables the blacklist entirely). Exposed
// for the ablation study.
func (c *CrossCounter) SetBlockEpochs(n int) {
	if n < 0 {
		n = 0
	}
	c.blockEpochs = n
}

// SetEvictHysteresis overrides the eviction threshold factor: a resident is
// flushed when its Wr/Rd falls below factor x the epoch mean (default 0.5;
// 1.0 reproduces a strict mean split). Exposed for the ablation study.
func (c *CrossCounter) SetEvictHysteresis(f float64) {
	if f <= 0 {
		f = 1
	}
	c.evictFactor = f
}

// IntervalCycles implements sim.Migrator (the fine-grained MEA interval).
func (c *CrossCounter) IntervalCycles() int64 { return c.meaInterval }

// MigratesConcurrently marks CC's migrations as hardware-performed: no OS
// pause, only memory-system contention (see sim.pauseAll).
func (c *CrossCounter) MigratesConcurrently() bool { return true }

// OnAccess implements sim.Migrator: the performance unit sees every access;
// the reliability unit tracks only HBM residents.
func (c *CrossCounter) OnAccess(pi core.PageIndex, write bool, inHBM bool) {
	c.perf.Observe(uint32(pi))
	if inHBM {
		c.risk.Observe(pi, write)
	}
}

// pageCount is one MEA entry resolved to its page id.
type pageCount struct {
	page  uint64
	count uint64
}

// hotSet resolves the MEA unit's tracked entries to page ids, ordered by
// descending residual count (ties by page id) — the deterministic ranking
// the id-keyed summary used to produce directly.
func (c *CrossCounter) hotSet() []pageCount {
	c.hotScratch = c.perf.Hot(c.hotScratch[:0])
	c.hotPages = c.hotPages[:0]
	for _, e := range c.hotScratch {
		c.hotPages = append(c.hotPages, pageCount{page: c.pt.ID(core.PageIndex(e.Index)), count: e.Count})
	}
	sort.Slice(c.hotPages, func(i, j int) bool {
		if c.hotPages[i].count != c.hotPages[j].count {
			return c.hotPages[i].count > c.hotPages[j].count
		}
		return c.hotPages[i].page < c.hotPages[j].page
	})
	return c.hotPages
}

// Decide implements sim.Migrator. Every MEA interval the performance unit
// migrates its hot set into HBM, paired against any pending high-risk pages
// identified at the last FC epoch (or cold HBM pages when none are pending).
func (c *CrossCounter) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	c.tick++
	epoch := c.tick%c.fcRatio == 0
	if epoch {
		c.epoch++
		c.pendingOut = c.riskEpoch(placement)
		if c.blockEpochs > 0 {
			for _, page := range c.pendingOut {
				c.blocked[page] = c.epoch
			}
		}
		for page, at := range c.blocked {
			if c.epoch-at >= c.blockEpochs {
				delete(c.blocked, page)
			}
		}
	}

	for _, e := range c.hotSet() {
		if _, bad := c.blocked[e.page]; !bad && !placement.InHBM(e.page) {
			in = append(in, e.page)
		}
	}
	c.perf.Reset()

	if epoch {
		// "At FC-interval, both performance and reliability units work
		// together to move cold and high-risk pages out of HBM": flush the
		// whole pending list now.
		out = c.drainPending(len(c.pendingOut))
	} else {
		// Between epochs, evictions happen only to make room for the
		// performance unit's in-migrations.
		need := len(in) - placement.HBMFreePages()
		if need < 0 {
			need = 0
		}
		out = c.drainPending(need)
	}

	budget := placement.HBMFreePages() + len(out)
	if len(in) > budget {
		in = in[:budget] // surplus retries next MEA interval
	}
	return in, out
}

// drainPending removes up to n pages from the pending high-risk list (all
// of them at an FC epoch flush where n exceeds the list).
func (c *CrossCounter) drainPending(n int) []uint64 {
	if n > len(c.pendingOut) {
		n = len(c.pendingOut)
	}
	out := c.pendingOut[:n]
	c.pendingOut = c.pendingOut[n:]
	return out
}

// riskEpoch classifies every HBM resident with the reliability unit's
// counters: pages that are high-risk (write ratio below the epoch mean) or
// entirely cold leave HBM.
func (c *CrossCounter) riskEpoch(placement *sim.Placement) []uint64 {
	snap := c.risk.Snapshot(c.pt)
	defer c.risk.Reset()
	if len(snap) == 0 {
		return nil
	}
	meanRisk := meanWrRatio(snap)
	stats := make(map[uint64]core.PageStats, len(snap))
	for _, s := range snap {
		stats[s.Page] = s
	}
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		s, touched := stats[page]
		s.Page = page
		// Hysteresis (as in the FC mechanism) so a uniformly low-risk
		// resident set does not churn against its own mean.
		if !touched || s.WrRatio() < c.evictFactor*meanRisk {
			outCand = append(outCand, s)
		}
	}
	// Unlike the in-migration path, eviction is uncapped: leaving a
	// high-risk page in HBM for another full FC epoch is exactly the
	// reliability exposure the mechanism exists to bound (§6.4.3).
	return pagesByHotnessAsc(outCand)
}
