package migration

import (
	"testing"

	"hmem/internal/core"
	"hmem/internal/sim"
)

func TestCCBlacklistBlocksReadmission(t *testing.T) {
	cc := NewCrossCounter(1000, 1, 8) // every tick is an epoch
	placement := sim.NewPlacement(4, 64)
	if err := placement.Preplace([]uint64{100, 101}, false); err != nil {
		t.Fatal(err)
	}
	// Resident 100 is read-heavy (high risk); 101 is writey and anchors
	// the epoch's mean risk above zero.
	feed(cc, placement, 100, 50, 0, true)
	feed(cc, placement, 101, 5, 45, true)
	_, out := cc.Decide(1000, placement)
	if len(out) != 1 || out[0] != 100 {
		t.Fatalf("out = %v, want [100]", out)
	}
	if moved := placement.Migrate(nil, out); moved != 1 {
		t.Fatal("eviction failed")
	}
	// Page 100 is now DDR-resident and still hot: MEA wants it back, but
	// the blacklist must veto re-admission.
	for tick := 0; tick < 3; tick++ {
		feed(cc, placement, 100, 50, 0, false)
		feed(cc, placement, 101, 5, 45, true)
		in, _ := cc.Decide(int64(2000+tick*1000), placement)
		for _, pg := range in {
			if pg == 100 {
				t.Fatalf("tick %d: blacklisted page re-admitted", tick)
			}
		}
	}
	// After blockEpochs epochs the verdict expires and the page may return.
	for tick := 0; tick < 8; tick++ {
		feed(cc, placement, 100, 50, 0, false)
		feed(cc, placement, 101, 5, 45, true)
		in, _ := cc.Decide(int64(6000+tick*1000), placement)
		for _, pg := range in {
			if pg == 100 {
				return // re-admitted eventually: expiry works
			}
		}
	}
	t.Fatal("blacklist never expired")
}

func TestCCBlacklistDisabled(t *testing.T) {
	cc := NewCrossCounter(1000, 1, 8)
	cc.SetBlockEpochs(0)
	placement := sim.NewPlacement(4, 64)
	if err := placement.Preplace([]uint64{100, 101}, false); err != nil {
		t.Fatal(err)
	}
	feed(cc, placement, 100, 50, 0, true)
	feed(cc, placement, 101, 5, 45, true)
	_, out := cc.Decide(1000, placement)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	placement.Migrate(nil, out)
	// Without the blacklist the hot high-risk page bounces right back.
	feed(cc, placement, 100, 50, 0, false)
	in, _ := cc.Decide(2000, placement)
	found := false
	for _, pg := range in {
		if pg == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("without blacklist the page should be re-admitted immediately")
	}
	// Negative values clamp to 0 (disabled) rather than panicking.
	cc.SetBlockEpochs(-5)
}

func TestCCEvictHysteresis(t *testing.T) {
	// With strict mean eviction (factor 1.0), a uniform low-risk resident
	// population churns against its own mean; with the default 0.5 factor
	// it stays put.
	build := func(factor float64) []uint64 {
		cc := NewCrossCounter(1000, 1, 8)
		cc.SetEvictHysteresis(factor)
		placement := sim.NewPlacement(8, 64)
		// Four residents with slightly different but uniformly writey mixes.
		for i, w := range []int{40, 42, 44, 46} {
			page := uint64(100 + i)
			if err := placement.Preplace([]uint64{page}, false); err != nil {
				t.Fatal(err)
			}
			feed(cc, placement, page, 10, w, true)
		}
		_, out := cc.Decide(1000, placement)
		return out
	}
	strict := build(1.0)
	hysteresis := build(0.5)
	if len(strict) == 0 {
		t.Fatal("strict mean split should evict the below-mean half")
	}
	if len(hysteresis) != 0 {
		t.Fatalf("hysteresis should keep a uniformly low-risk set: evicted %v", hysteresis)
	}
	// Non-positive factor falls back to strict behavior, not a panic.
	cc := NewCrossCounter(1000, 1, 8)
	cc.SetEvictHysteresis(0)
}

func TestPagesByHotnessAscOrdering(t *testing.T) {
	stats := []core.PageStats{
		{Page: 3, Reads: 50},
		{Page: 1, Reads: 5},
		{Page: 2, Reads: 5},
		{Page: 4},
	}
	got := pagesByHotnessAsc(stats)
	want := []uint64{4, 1, 2, 3} // coldest first, ties by page id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestMeanWrRatio(t *testing.T) {
	if got := meanWrRatio(nil); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
	snap := []core.PageStats{
		{Reads: 10, Writes: 20}, // 2.0
		{Reads: 10, Writes: 0},  // 0.0
	}
	if got := meanWrRatio(snap); got != 1 {
		t.Fatalf("mean = %v, want 1", got)
	}
}
