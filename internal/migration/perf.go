// Package migration implements the paper's dynamic data-migration
// mechanisms (§6): the performance-focused full-counter baseline modeled on
// Meswani et al.'s HMA [40], the reliability-aware Full Counter mechanism
// (§6.2), and the hardware-cheap Cross Counter mechanism combining an MEA
// hotness unit with HBM-only risk counters (§6.4).
//
// Interval lengths are constructor parameters: the paper uses 100 ms FC
// intervals and 50 µs MEA intervals at 3.2 GHz; the experiments package
// scales both down while preserving their ratio (DESIGN.md §3).
package migration

import (
	"hmem/internal/core"
	"hmem/internal/sim"
)

// Perf is the performance-focused migration baseline (§6.1): raw access
// counters per page; at every interval, pages hotter than the interval mean
// migrate into HBM, displacing the coldest HBM residents.
type Perf struct {
	interval int64
	counters *core.FullCounters
	pt       *core.PageTable
	// maxSwap bounds pages moved per interval (0 = unbounded, the paper's
	// HMA swaps everything above threshold).
	maxSwap int
}

// NewPerf builds the baseline with the given interval in CPU cycles.
func NewPerf(intervalCycles int64) *Perf {
	return &Perf{interval: intervalCycles, counters: core.NewFullCounters(8)}
}

// Name implements sim.Migrator.
func (p *Perf) Name() string { return "perf-migration" }

// Bind implements sim.Migrator.
func (p *Perf) Bind(pt *core.PageTable) { p.pt = pt }

// IntervalCycles implements sim.Migrator.
func (p *Perf) IntervalCycles() int64 { return p.interval }

// OnAccess implements sim.Migrator.
func (p *Perf) OnAccess(pi core.PageIndex, write bool, _ bool) {
	p.counters.Observe(pi, write)
}

// Decide implements sim.Migrator: swap cold HBM residents for hot DDR pages,
// using the interval's mean page hotness as the threshold ("We use dynamic
// mean page hotness levels during each interval to determine the threshold").
func (p *Perf) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	snap := p.counters.Snapshot(p.pt)
	defer p.counters.Reset()
	if len(snap) == 0 {
		return nil, nil
	}
	mean := core.MeanHotness(snap)

	counts := make(map[uint64]uint64, len(snap))
	for _, s := range snap {
		counts[s.Page] = s.Accesses()
	}

	// In: DDR pages above mean hotness, hottest first.
	var inCand []core.PageStats
	for _, s := range snap {
		if float64(s.Accesses()) > mean && !placement.InHBM(s.Page) {
			inCand = append(inCand, s)
		}
	}
	in = core.PerfFocused{}.Select(inCand, len(inCand))

	// Out: HBM residents at or below mean hotness (untouched residents
	// count as zero), coldest first.
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		c := counts[page]
		if float64(c) <= mean {
			outCand = append(outCand, core.PageStats{Page: page, Reads: c})
		}
	}
	out = pagesByHotnessAsc(outCand)

	// Bound interval churn: the paper's HMA turns over ~18% of HBM per
	// interval (47K of 262K pages); allow up to a quarter of HBM.
	maxSwap := p.maxSwap
	if maxSwap <= 0 {
		maxSwap = int(placement.HBMCapacity() / 4)
		if maxSwap < 1 {
			maxSwap = 1
		}
	}
	if len(out) > maxSwap {
		out = out[:maxSwap]
	}
	// Pair the swap: we can bring in only as many as leave plus free room.
	budget := len(out) + placement.HBMFreePages()
	if len(in) > budget {
		in = in[:budget]
	}
	if len(in) > maxSwap {
		in = in[:maxSwap]
	}
	return in, out
}
