package migration

import (
	"context"
	"reflect"
	"testing"

	"hmem/internal/memsim"
	"hmem/internal/obs"
	"hmem/internal/sim"
	"hmem/internal/trace"
)

// This file extends the differential suite to the observability layer:
// tracing and metrics must be pure observers. A run with a tracer, a
// registry, and a span exporter installed must make byte-identical migration
// decisions and produce byte-identical results to the same run without them
// — and it must actually emit the spans it promises (one sim.epoch per
// interval boundary).

func diffRunCtx(t *testing.T, ctx context.Context, recs [][]trace.Record, mig *decisionRecorder) sim.Result {
	t.Helper()
	cfg := sim.Config{
		HBM:            memsim.HBM(256 << 10),
		DDR:            memsim.DDR3(16 << 20),
		IssueWidth:     4,
		MaxOutstanding: 8,
	}
	streams := make([]trace.Stream, len(recs))
	for i, r := range recs {
		streams[i] = trace.NewSliceStream(r)
	}
	res, err := sim.RunCtx(ctx, cfg, streams, []uint64{0, 1, 2, 3}, true, mig)
	if err != nil {
		t.Fatalf("sim.RunCtx: %v", err)
	}
	return res
}

// TestTracingInertOnDecisions runs every mechanism on identical seeded
// traces twice — tracing off (sim.Run) and tracing fully on (tracer into a
// ring, registry installed) — and requires identical decision sequences,
// IPC, cycles, migration counts, and AVF snapshots.
func TestTracingInertOnDecisions(t *testing.T) {
	mechanisms := []struct {
		name string
		mk   func() sim.Migrator
	}{
		{"perf-baseline", func() sim.Migrator { return NewPerf(20000) }},
		{"full-counter", func() sim.Migrator { return NewFullCounter(20000) }},
		{"cross-counter", func() sim.Migrator { return NewCrossCounter(5000, 4, 8) }},
	}
	for _, tc := range mechanisms {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				recs := diffTrace(seed, 2, 6000)

				offRec := &decisionRecorder{m: tc.mk()}
				off := diffRun(t, recs, offRec)

				ring := obs.NewRing(1 << 14)
				tracer := obs.NewTracer("inert-test", ring)
				ctx := obs.WithTracer(context.Background(), tracer)
				ctx = obs.WithRegistry(ctx, obs.NewRegistry())
				onRec := &decisionRecorder{m: tc.mk()}
				on := diffRunCtx(t, ctx, recs, onRec)

				if len(offRec.decisions) != len(onRec.decisions) {
					t.Fatalf("seed %d: %d decisions untraced vs %d traced",
						seed, len(offRec.decisions), len(onRec.decisions))
				}
				for i := range offRec.decisions {
					a, b := offRec.decisions[i], onRec.decisions[i]
					if !reflect.DeepEqual(a.in, b.in) || !reflect.DeepEqual(a.out, b.out) {
						t.Fatalf("seed %d: decision %d diverges under tracing:\n off in=%v out=%v\n  on in=%v out=%v",
							seed, i, a.in, a.out, b.in, b.out)
					}
				}
				if off.IPC != on.IPC || off.Cycles != on.Cycles {
					t.Errorf("seed %d: IPC/cycles %v/%d untraced vs %v/%d traced",
						seed, off.IPC, off.Cycles, on.IPC, on.Cycles)
				}
				if off.PagesMigrated != on.PagesMigrated {
					t.Errorf("seed %d: migrated %d untraced vs %d traced",
						seed, off.PagesMigrated, on.PagesMigrated)
				}
				if !reflect.DeepEqual(off.Snapshot, on.Snapshot) {
					t.Errorf("seed %d: AVF snapshots diverge under tracing", seed)
				}

				// The traced run must also deliver its spans: one sim.run,
				// and one sim.epoch per interval boundary it reported.
				if d := tracer.Dropped(); d != 0 {
					t.Fatalf("seed %d: %d spans dropped by an in-memory ring", seed, d)
				}
				spans := ring.Snapshot("inert-test")
				var runs, epochs int
				for _, sp := range spans {
					switch sp.Name {
					case "sim.run":
						runs++
					case "sim.epoch":
						epochs++
					}
				}
				if runs != 1 {
					t.Fatalf("seed %d: %d sim.run spans, want 1", seed, runs)
				}
				// The trailing partial epoch's span is ended at run close, so
				// the count is boundaries + 1.
				if want := len(on.Intervals) + 1; epochs != want {
					t.Fatalf("seed %d: %d sim.epoch spans for %d boundaries, want %d",
						seed, epochs, len(on.Intervals), want)
				}
			}
		})
	}
}
