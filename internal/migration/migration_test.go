package migration

import (
	"testing"

	"hmem/internal/memsim"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

func simConfig() sim.Config {
	return sim.Config{
		HBM:            memsim.HBM(4 << 20),
		DDR:            memsim.DDR3(512 << 20),
		IssueWidth:     4,
		MaxOutstanding: 8,
	}
}

// feed binds m to placement's page table and feeds it a page's accesses.
// Bind is idempotent, so repeated feeds against the same placement are fine.
func feed(m sim.Migrator, placement *sim.Placement, page uint64, reads, writes int, inHBM bool) {
	m.Bind(placement.PageTable())
	pi := placement.PageTable().Intern(page)
	for i := 0; i < reads; i++ {
		m.OnAccess(pi, false, inHBM)
	}
	for i := 0; i < writes; i++ {
		m.OnAccess(pi, true, inHBM)
	}
}

func TestPerfMigratorSwapsHotForCold(t *testing.T) {
	p := NewPerf(1000)
	placement := sim.NewPlacement(2, 16)
	if err := placement.Preplace([]uint64{100, 101}, false); err != nil {
		t.Fatal(err)
	}
	// Page 100 in HBM is cold (1 access); page 5 in DDR is very hot.
	placement.Lookup(5)
	feed(p, placement, 100, 1, 0, true)
	feed(p, placement, 101, 50, 0, true) // hot resident stays
	feed(p, placement, 5, 60, 0, false)
	in, out := p.Decide(1000, placement)
	if len(in) != 1 || in[0] != 5 {
		t.Fatalf("in = %v, want [5]", in)
	}
	found := false
	for _, pg := range out {
		if pg == 101 {
			t.Fatal("hot resident 101 evicted")
		}
		if pg == 100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("cold resident 100 not evicted: out = %v", out)
	}
}

func TestPerfMigratorEvictsUntouchedResidents(t *testing.T) {
	p := NewPerf(1000)
	placement := sim.NewPlacement(2, 16)
	if err := placement.Preplace([]uint64{100}, false); err != nil {
		t.Fatal(err)
	}
	placement.Lookup(5)
	feed(p, placement, 5, 10, 0, false) // page 100 never touched this interval
	_, out := p.Decide(1000, placement)
	if len(out) != 1 || out[0] != 100 {
		t.Fatalf("out = %v, want [100]", out)
	}
}

func TestPerfMigratorCountersResetEachInterval(t *testing.T) {
	p := NewPerf(1000)
	placement := sim.NewPlacement(2, 16)
	placement.Lookup(5)
	feed(p, placement, 5, 10, 0, false)
	p.Decide(1000, placement)
	// New interval: no accesses -> no decisions.
	in, out := p.Decide(2000, placement)
	if len(in) != 0 || len(out) != 0 {
		t.Fatalf("stale counters: in=%v out=%v", in, out)
	}
}

func TestPerfMigratorRespectsCapacityBudget(t *testing.T) {
	p := NewPerf(1000)
	placement := sim.NewPlacement(2, 64)
	// 10 hot DDR pages, empty HBM with 2 frames: at most 2 come in.
	for pg := uint64(0); pg < 10; pg++ {
		placement.Lookup(pg)
		feed(p, placement, pg, int(10+pg*10), 0, false)
	}
	in, _ := p.Decide(1000, placement)
	if len(in) > 2 {
		t.Fatalf("in = %v exceeds HBM capacity", in)
	}
}

func TestFullCounterKeepsHotLowRisk(t *testing.T) {
	f := NewFullCounter(1000)
	placement := sim.NewPlacement(4, 64)
	if err := placement.Preplace([]uint64{100, 101}, false); err != nil {
		t.Fatal(err)
	}
	placement.Lookup(5)
	placement.Lookup(6)
	// 100: hot + write-heavy (low risk) resident -> stays.
	feed(f, placement, 100, 20, 45, true)
	// 101: read-only (high risk) and below mean hotness -> evicted.
	feed(f, placement, 101, 50, 0, true)
	// 5: hot + write-heavy in DDR -> comes in.
	feed(f, placement, 5, 15, 45, false)
	// 6: read-only in DDR -> stays out.
	feed(f, placement, 6, 50, 0, false)
	in, out := f.Decide(1000, placement)
	if len(in) != 1 || in[0] != 5 {
		t.Fatalf("in = %v, want [5]", in)
	}
	wantOut := map[uint64]bool{101: true}
	for _, pg := range out {
		if !wantOut[pg] {
			t.Fatalf("unexpected eviction of %d (out=%v)", pg, out)
		}
	}
	if len(out) != 1 {
		t.Fatalf("out = %v, want [101]", out)
	}
}

func TestCrossCounterMEADrivesInMigrations(t *testing.T) {
	cc := NewCrossCounter(1000, 4, 8)
	placement := sim.NewPlacement(4, 64)
	placement.Lookup(5)
	cc.Bind(placement.PageTable())
	pi5 := placement.PageTable().Intern(5)
	for i := 0; i < 100; i++ {
		cc.OnAccess(pi5, false, false)
	}
	in, out := cc.Decide(1000, placement)
	if len(in) != 1 || in[0] != 5 {
		t.Fatalf("in = %v, want [5]", in)
	}
	if len(out) != 0 {
		t.Fatalf("no risk epoch yet, out = %v", out)
	}
}

func TestCrossCounterRiskEpochFlushesHighRisk(t *testing.T) {
	cc := NewCrossCounter(1000, 2, 8)
	placement := sim.NewPlacement(4, 64)
	if err := placement.Preplace([]uint64{100, 101}, false); err != nil {
		t.Fatal(err)
	}
	// 100 is read-heavy in HBM (high risk), 101 write-heavy (low risk).
	feed(cc, placement, 100, 50, 0, true)
	feed(cc, placement, 101, 5, 45, true)
	// Tick 1: no risk epoch (ratio 2).
	if _, out := cc.Decide(1000, placement); len(out) != 0 {
		t.Fatalf("early risk flush: %v", out)
	}
	// Tick 2: risk epoch fires; 100 must be pending-out and flushed.
	feed(cc, placement, 100, 50, 0, true)
	feed(cc, placement, 101, 5, 45, true)
	_, out := cc.Decide(2000, placement)
	foundBad, foundGood := false, false
	for _, pg := range out {
		if pg == 100 {
			foundBad = true
		}
		if pg == 101 {
			foundGood = true
		}
	}
	if !foundBad {
		t.Fatalf("high-risk resident not flushed: out = %v", out)
	}
	if foundGood {
		t.Fatalf("low-risk resident flushed: out = %v", out)
	}
}

func TestCrossCounterIsConcurrent(t *testing.T) {
	var m sim.Migrator = NewCrossCounter(1000, 2, 8)
	cm, ok := m.(interface{ MigratesConcurrently() bool })
	if !ok || !cm.MigratesConcurrently() {
		t.Fatal("CC must migrate concurrently")
	}
	// The OS-assisted mechanisms must not claim concurrency.
	for _, osm := range []sim.Migrator{NewPerf(1000), NewFullCounter(1000)} {
		if cm, ok := osm.(interface{ MigratesConcurrently() bool }); ok && cm.MigratesConcurrently() {
			t.Fatalf("%s must not be concurrent", osm.Name())
		}
	}
}

func TestMigratorNames(t *testing.T) {
	names := map[string]bool{}
	for _, m := range []sim.Migrator{NewPerf(1), NewFullCounter(1), NewCrossCounter(1, 1, 1)} {
		if m.Name() == "" || names[m.Name()] {
			t.Fatalf("bad or duplicate name %q", m.Name())
		}
		names[m.Name()] = true
		if m.IntervalCycles() != 1 {
			t.Fatalf("%s: interval = %d", m.Name(), m.IntervalCycles())
		}
	}
}

// End-to-end: the three mechanisms run inside the simulator and produce the
// paper's ordering on a real workload: perf-migration has the best IPC;
// the reliability-aware mechanisms trade a little IPC for less HBM-exposed
// AVF.
func TestMechanismsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end migration comparison")
	}
	cfg := simConfig()
	run := func(m sim.Migrator) sim.Result {
		spec, err := workload.SpecByName("soplex")
		if err != nil {
			t.Fatal(err)
		}
		suite, err := spec.Build(20000, 0xE2E)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(cfg, suite.Streams(), nil, false, m)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perf := run(NewPerf(400000))
	fc := run(NewFullCounter(400000))
	cc := run(NewCrossCounter(8000, 50, 32))

	if perf.PagesMigrated == 0 || fc.PagesMigrated == 0 || cc.PagesMigrated == 0 {
		t.Fatalf("migrations: perf=%d fc=%d cc=%d", perf.PagesMigrated, fc.PagesMigrated, cc.PagesMigrated)
	}
	hbmAVF := func(r sim.Result) float64 {
		s := 0.0
		for _, p := range r.Snapshot {
			s += p.ByTier[1]
		}
		return s
	}
	if !(hbmAVF(fc) < hbmAVF(perf)) {
		t.Errorf("FC should expose less AVF in HBM than perf: %.4f vs %.4f", hbmAVF(fc), hbmAVF(perf))
	}
	t.Logf("IPC perf=%.3f fc=%.3f cc=%.3f; HBM-AVF perf=%.3f fc=%.3f cc=%.3f; migrations %d/%d/%d",
		perf.IPC, fc.IPC, cc.IPC, hbmAVF(perf), hbmAVF(fc), hbmAVF(cc),
		perf.PagesMigrated, fc.PagesMigrated, cc.PagesMigrated)
}
