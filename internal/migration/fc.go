package migration

import (
	"sort"

	"hmem/internal/core"
	"hmem/internal/sim"
)

// pagesByHotnessAsc returns page ids ordered coldest-first (ties by id).
func pagesByHotnessAsc(stats []core.PageStats) []uint64 {
	sort.Slice(stats, func(i, j int) bool {
		ai, aj := stats[i].Accesses(), stats[j].Accesses()
		if ai != aj {
			return ai < aj
		}
		return stats[i].Page < stats[j].Page
	})
	out := make([]uint64, len(stats))
	for i, s := range stats {
		out[i] = s.Page
	}
	return out
}

// FullCounter is the reliability-aware migration mechanism of §6.2: the
// baseline's counters split into read and write sets, giving both hotness
// (R+W) and runtime risk (Wr/Rd) per page. At every interval it exchanges
// cold-or-high-risk HBM residents for hot-and-low-risk DDR pages, using the
// interval's mean hotness and mean risk as thresholds.
type FullCounter struct {
	interval int64
	counters *core.FullCounters
	pt       *core.PageTable
}

// NewFullCounter builds the FC mechanism with the given interval.
func NewFullCounter(intervalCycles int64) *FullCounter {
	return &FullCounter{interval: intervalCycles, counters: core.NewFullCounters(8)}
}

// Name implements sim.Migrator.
func (f *FullCounter) Name() string { return "fc-reliability" }

// Bind implements sim.Migrator.
func (f *FullCounter) Bind(pt *core.PageTable) { f.pt = pt }

// IntervalCycles implements sim.Migrator.
func (f *FullCounter) IntervalCycles() int64 { return f.interval }

// OnAccess implements sim.Migrator.
func (f *FullCounter) OnAccess(pi core.PageIndex, write bool, _ bool) {
	f.counters.Observe(pi, write)
}

// Decide implements sim.Migrator.
func (f *FullCounter) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	snap := f.counters.Snapshot(f.pt)
	defer f.counters.Reset()
	if len(snap) == 0 {
		return nil, nil
	}
	meanHot := core.MeanHotness(snap)
	meanRisk := meanWrRatio(snap)
	// A page is low-risk when writes dominate reads (§5.3: high write ratio
	// -> more dead intervals -> low AVF). In-migration demands Wr/Rd at or
	// above the interval mean; eviction uses a half-mean hysteresis so a
	// uniformly low-risk HBM population does not churn against its own
	// mean.
	lowRisk := func(s core.PageStats) bool { return s.WrRatio() >= meanRisk }
	evictRisk := func(s core.PageStats) bool { return s.WrRatio() < 0.5*meanRisk }

	stats := make(map[uint64]core.PageStats, len(snap))
	for _, s := range snap {
		stats[s.Page] = s
	}

	// In: hot AND low-risk pages currently in DDR, hottest first.
	var inCand []core.PageStats
	for _, s := range snap {
		if float64(s.Accesses()) > meanHot && lowRisk(s) && !placement.InHBM(s.Page) {
			inCand = append(inCand, s)
		}
	}
	in = core.PerfFocused{}.Select(inCand, len(inCand))

	// Out: HBM residents that are cold OR high-risk; evict the riskiest/
	// coldest first (cold untouched pages have zero counts).
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		s := stats[page]
		s.Page = page
		if float64(s.Accesses()) <= meanHot || evictRisk(s) {
			outCand = append(outCand, s)
		}
	}
	out = pagesByHotnessAsc(outCand)

	// Same churn bound as the performance-focused baseline.
	maxSwap := int(placement.HBMCapacity() / 4)
	if maxSwap < 1 {
		maxSwap = 1
	}
	if len(out) > maxSwap {
		out = out[:maxSwap]
	}
	budget := len(out) + placement.HBMFreePages()
	if len(in) > budget {
		in = in[:budget]
	}
	if len(in) > maxSwap {
		in = in[:maxSwap]
	}
	return in, out
}

// meanWrRatio returns the mean Wr/Rd over the interval's touched pages.
func meanWrRatio(snap []core.PageStats) float64 {
	if len(snap) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range snap {
		sum += s.WrRatio()
	}
	return sum / float64(len(snap))
}
