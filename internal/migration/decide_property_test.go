package migration

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"hmem/internal/memsim"
	"hmem/internal/sim"
	"hmem/internal/trace"
)

// disjointRecorder wraps a migrator and checks, at every Decide, the
// structural properties all mechanisms must uphold: the in and out sets are
// each duplicate-free and mutually disjoint (a page cannot move both ways
// in one decision), in-pages are not already HBM residents, and out-pages
// are not pinned.
type disjointRecorder struct {
	decisionRecorder
	err error
}

func (r *disjointRecorder) Decide(now int64, placement *sim.Placement) (in, out []uint64) {
	in, out = r.decisionRecorder.Decide(now, placement)
	if r.err != nil {
		return in, out
	}
	seen := make(map[uint64]int, len(in)+len(out))
	for _, p := range in {
		if seen[p]&1 != 0 {
			r.err = fmt.Errorf("%s: page %d duplicated in the in set %v", r.Name(), p, in)
			return in, out
		}
		seen[p] |= 1
		if placement.InHBM(p) {
			r.err = fmt.Errorf("%s: in-page %d is already an HBM resident", r.Name(), p)
			return in, out
		}
	}
	for _, p := range out {
		if seen[p]&2 != 0 {
			r.err = fmt.Errorf("%s: page %d duplicated in the out set %v", r.Name(), p, out)
			return in, out
		}
		seen[p] |= 2
		if seen[p]&1 != 0 {
			r.err = fmt.Errorf("%s: page %d in both in=%v and out=%v", r.Name(), p, in, out)
			return in, out
		}
		if placement.Pinned(p) {
			r.err = fmt.Errorf("%s: out-page %d is pinned", r.Name(), p)
			return in, out
		}
	}
	return in, out
}

// decideProperty runs every mechanism over one random trace and returns the
// first violated decision invariant.
func decideProperty(seed uint64) error {
	recs := diffTrace(seed, 2, 3000)
	migs := []sim.Migrator{
		NewPerf(15000),
		NewFullCounter(15000),
		NewCrossCounter(4000, 3, 8),
	}
	for _, m := range migs {
		rec := &disjointRecorder{decisionRecorder: decisionRecorder{m: m}}
		cfg := sim.Config{
			HBM:            memsim.HBM(256 << 10),
			DDR:            memsim.DDR3(16 << 20),
			IssueWidth:     4,
			MaxOutstanding: 8,
		}
		streams := make([]trace.Stream, len(recs))
		for i, r := range recs {
			streams[i] = trace.NewSliceStream(r)
		}
		if _, err := sim.Run(cfg, streams, []uint64{0, 1}, true, rec); err != nil {
			return fmt.Errorf("%s: sim.Run: %w", m.Name(), err)
		}
		if rec.err != nil {
			return rec.err
		}
		if len(rec.decisions) == 0 {
			return fmt.Errorf("%s: trace produced no decisions (vacuous run)", m.Name())
		}
	}
	return nil
}

// TestDecideInOutDisjointProperty checks the decision invariants with
// testing/quick serially, then re-runs the property from NumCPU goroutines
// so `go test -race` catches any shared state between migrator instances.
func TestDecideInOutDisjointProperty(t *testing.T) {
	t.Run("serial", func(t *testing.T) {
		f := func(seed uint64) bool {
			if err := decideProperty(seed); err != nil {
				t.Log(err)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("parallel", func(t *testing.T) {
		workers := runtime.NumCPU()
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for seed := uint64(w*50 + 1); seed <= uint64(w*50+3); seed++ {
					if err := decideProperty(seed); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}
