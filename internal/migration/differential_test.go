package migration

import (
	"reflect"
	"sort"
	"testing"

	"hmem/internal/core"
	"hmem/internal/memsim"
	"hmem/internal/sim"
	"hmem/internal/trace"
	"hmem/internal/xrand"
)

// This file is the differential test locking in the dense-index refactor:
// the pre-refactor, map-keyed bookkeeping is preserved here as a reference
// implementation, and every migration mechanism is run on identical random
// traces through both the flat production path and the reference path. The
// two runs must agree on every migration decision and on the final
// SER-relevant outputs (AVF snapshot, IPC, migrated-page count).

// ---- Reference (map-backed) counter structures ------------------------------

// refCounters is the pre-refactor FullCounters: a page-id-keyed map of
// saturating read/write counters, reallocated on every interval reset.
type refCounters struct {
	max    uint32
	counts map[uint64]*refCount
}

type refCount struct {
	reads, writes uint32
}

func newRefCounters(bits int) *refCounters {
	return &refCounters{max: 1<<uint(bits) - 1, counts: make(map[uint64]*refCount)}
}

func (r *refCounters) Observe(page uint64, write bool) {
	c := r.counts[page]
	if c == nil {
		c = &refCount{}
		r.counts[page] = c
	}
	if write {
		if c.writes < r.max {
			c.writes++
		}
	} else {
		if c.reads < r.max {
			c.reads++
		}
	}
}

func (r *refCounters) Snapshot() []core.PageStats {
	out := make([]core.PageStats, 0, len(r.counts))
	for page, c := range r.counts {
		out = append(out, core.PageStats{Page: page, Reads: uint64(c.reads), Writes: uint64(c.writes)})
	}
	core.SortByPage(out)
	return out
}

func (r *refCounters) Reset() { r.counts = make(map[uint64]*refCount) }

// refMEA is the pre-refactor page-id-keyed Misra-Gries summary with the
// same decrement-all semantics as the flat tracker: a miss with a full
// table decrements every entry, evicts those that reach zero, and does NOT
// adopt the new page.
type refMEA struct {
	k      int
	counts map[uint64]uint64
}

func newRefMEA(k int) *refMEA { return &refMEA{k: k, counts: make(map[uint64]uint64)} }

func (m *refMEA) Observe(page uint64) {
	if _, ok := m.counts[page]; ok {
		m.counts[page]++
		return
	}
	if len(m.counts) < m.k {
		m.counts[page] = 1
		return
	}
	for p, c := range m.counts {
		if c <= 1 {
			delete(m.counts, p)
		} else {
			m.counts[p] = c - 1
		}
	}
}

// Hot returns the tracked set ordered by descending count, ties by page id —
// the deterministic ranking the id-keyed summary produced directly.
func (m *refMEA) Hot() []pageCount {
	out := make([]pageCount, 0, len(m.counts))
	for p, c := range m.counts {
		out = append(out, pageCount{page: p, count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].page < out[j].page
	})
	return out
}

func (m *refMEA) Reset() { m.counts = make(map[uint64]uint64) }

// ---- Reference migrators ----------------------------------------------------

// refPerf mirrors Perf.Decide on the map-backed counters.
type refPerf struct {
	interval int64
	counters *refCounters
	pt       *core.PageTable
}

func (p *refPerf) Name() string            { return "ref-perf" }
func (p *refPerf) Bind(pt *core.PageTable) { p.pt = pt }
func (p *refPerf) IntervalCycles() int64   { return p.interval }
func (p *refPerf) OnAccess(pi core.PageIndex, write bool, _ bool) {
	p.counters.Observe(p.pt.ID(pi), write)
}

func (p *refPerf) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	snap := p.counters.Snapshot()
	defer p.counters.Reset()
	if len(snap) == 0 {
		return nil, nil
	}
	mean := core.MeanHotness(snap)
	counts := make(map[uint64]uint64, len(snap))
	for _, s := range snap {
		counts[s.Page] = s.Accesses()
	}
	var inCand []core.PageStats
	for _, s := range snap {
		if float64(s.Accesses()) > mean && !placement.InHBM(s.Page) {
			inCand = append(inCand, s)
		}
	}
	in = core.PerfFocused{}.Select(inCand, len(inCand))
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		c := counts[page]
		if float64(c) <= mean {
			outCand = append(outCand, core.PageStats{Page: page, Reads: c})
		}
	}
	out = pagesByHotnessAsc(outCand)
	maxSwap := int(placement.HBMCapacity() / 4)
	if maxSwap < 1 {
		maxSwap = 1
	}
	if len(out) > maxSwap {
		out = out[:maxSwap]
	}
	budget := len(out) + placement.HBMFreePages()
	if len(in) > budget {
		in = in[:budget]
	}
	if len(in) > maxSwap {
		in = in[:maxSwap]
	}
	return in, out
}

// refFC mirrors FullCounter.Decide on the map-backed counters.
type refFC struct {
	interval int64
	counters *refCounters
	pt       *core.PageTable
}

func (f *refFC) Name() string            { return "ref-fc" }
func (f *refFC) Bind(pt *core.PageTable) { f.pt = pt }
func (f *refFC) IntervalCycles() int64   { return f.interval }
func (f *refFC) OnAccess(pi core.PageIndex, write bool, _ bool) {
	f.counters.Observe(f.pt.ID(pi), write)
}

func (f *refFC) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	snap := f.counters.Snapshot()
	defer f.counters.Reset()
	if len(snap) == 0 {
		return nil, nil
	}
	meanHot := core.MeanHotness(snap)
	meanRisk := meanWrRatio(snap)
	lowRisk := func(s core.PageStats) bool { return s.WrRatio() >= meanRisk }
	evictRisk := func(s core.PageStats) bool { return s.WrRatio() < 0.5*meanRisk }
	stats := make(map[uint64]core.PageStats, len(snap))
	for _, s := range snap {
		stats[s.Page] = s
	}
	var inCand []core.PageStats
	for _, s := range snap {
		if float64(s.Accesses()) > meanHot && lowRisk(s) && !placement.InHBM(s.Page) {
			inCand = append(inCand, s)
		}
	}
	in = core.PerfFocused{}.Select(inCand, len(inCand))
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		s := stats[page]
		s.Page = page
		if float64(s.Accesses()) <= meanHot || evictRisk(s) {
			outCand = append(outCand, s)
		}
	}
	out = pagesByHotnessAsc(outCand)
	maxSwap := int(placement.HBMCapacity() / 4)
	if maxSwap < 1 {
		maxSwap = 1
	}
	if len(out) > maxSwap {
		out = out[:maxSwap]
	}
	budget := len(out) + placement.HBMFreePages()
	if len(in) > budget {
		in = in[:budget]
	}
	if len(in) > maxSwap {
		in = in[:maxSwap]
	}
	return in, out
}

// refCC mirrors CrossCounter.Decide on the map-backed MEA summary and risk
// counters, including the blacklist and pending-eviction machinery.
type refCC struct {
	meaInterval int64
	fcRatio     int
	tick        int
	perf        *refMEA
	risk        *refCounters
	pt          *core.PageTable
	pendingOut  []uint64
	blocked     map[uint64]int
	epoch       int
	blockEpochs int
	evictFactor float64
}

func newRefCC(meaIntervalCycles int64, fcRatio int, meaEntries int) *refCC {
	return &refCC{
		meaInterval: meaIntervalCycles,
		fcRatio:     fcRatio,
		perf:        newRefMEA(meaEntries),
		risk:        newRefCounters(16),
		blocked:     make(map[uint64]int),
		blockEpochs: 4,
		evictFactor: 0.5,
	}
}

func (c *refCC) Name() string               { return "ref-cc" }
func (c *refCC) Bind(pt *core.PageTable)    { c.pt = pt }
func (c *refCC) IntervalCycles() int64      { return c.meaInterval }
func (c *refCC) MigratesConcurrently() bool { return true }
func (c *refCC) OnAccess(pi core.PageIndex, write bool, inHBM bool) {
	page := c.pt.ID(pi)
	c.perf.Observe(page)
	if inHBM {
		c.risk.Observe(page, write)
	}
}

func (c *refCC) Decide(_ int64, placement *sim.Placement) (in, out []uint64) {
	c.tick++
	epoch := c.tick%c.fcRatio == 0
	if epoch {
		c.epoch++
		c.pendingOut = c.riskEpoch(placement)
		if c.blockEpochs > 0 {
			for _, page := range c.pendingOut {
				c.blocked[page] = c.epoch
			}
		}
		for page, at := range c.blocked {
			if c.epoch-at >= c.blockEpochs {
				delete(c.blocked, page)
			}
		}
	}
	for _, e := range c.perf.Hot() {
		if _, bad := c.blocked[e.page]; !bad && !placement.InHBM(e.page) {
			in = append(in, e.page)
		}
	}
	c.perf.Reset()
	if epoch {
		out = c.drainPending(len(c.pendingOut))
	} else {
		need := len(in) - placement.HBMFreePages()
		if need < 0 {
			need = 0
		}
		out = c.drainPending(need)
	}
	budget := placement.HBMFreePages() + len(out)
	if len(in) > budget {
		in = in[:budget]
	}
	return in, out
}

func (c *refCC) drainPending(n int) []uint64 {
	if n > len(c.pendingOut) {
		n = len(c.pendingOut)
	}
	out := c.pendingOut[:n]
	c.pendingOut = c.pendingOut[n:]
	return out
}

func (c *refCC) riskEpoch(placement *sim.Placement) []uint64 {
	snap := c.risk.Snapshot()
	defer c.risk.Reset()
	if len(snap) == 0 {
		return nil
	}
	meanRisk := meanWrRatio(snap)
	stats := make(map[uint64]core.PageStats, len(snap))
	for _, s := range snap {
		stats[s.Page] = s
	}
	var outCand []core.PageStats
	for _, page := range placement.HBMPages() {
		if placement.Pinned(page) {
			continue
		}
		s, touched := stats[page]
		s.Page = page
		if !touched || s.WrRatio() < c.evictFactor*meanRisk {
			outCand = append(outCand, s)
		}
	}
	return pagesByHotnessAsc(outCand)
}

// ---- Decision recording -----------------------------------------------------

type decision struct {
	in, out []uint64
}

// decisionRecorder wraps a migrator and captures every Decide outcome. It
// forwards the MigratesConcurrently capability so CC keeps its pause-free
// migration semantics under recording.
type decisionRecorder struct {
	m         sim.Migrator
	decisions []decision
}

func (r *decisionRecorder) Name() string                                { return r.m.Name() }
func (r *decisionRecorder) Bind(pt *core.PageTable)                     { r.m.Bind(pt) }
func (r *decisionRecorder) IntervalCycles() int64                       { return r.m.IntervalCycles() }
func (r *decisionRecorder) OnAccess(pi core.PageIndex, w bool, in bool) { r.m.OnAccess(pi, w, in) }

func (r *decisionRecorder) MigratesConcurrently() bool {
	if cm, ok := r.m.(interface{ MigratesConcurrently() bool }); ok {
		return cm.MigratesConcurrently()
	}
	return false
}

func (r *decisionRecorder) Decide(now int64, placement *sim.Placement) (in, out []uint64) {
	in, out = r.m.Decide(now, placement)
	r.decisions = append(r.decisions, decision{
		in:  append([]uint64(nil), in...),
		out: append([]uint64(nil), out...),
	})
	return in, out
}

// ---- The differential runs --------------------------------------------------

// diffTrace builds one random multi-core trace: pages drawn from a working
// set larger than HBM, one-third writes, short gaps.
func diffTrace(seed uint64, cores, records int) [][]trace.Record {
	rng := xrand.New(seed)
	out := make([][]trace.Record, cores)
	for c := range out {
		recs := make([]trace.Record, records)
		for i := range recs {
			kind := trace.Read
			switch rng.Intn(3) {
			case 0:
				kind = trace.Write
			case 1:
				if rng.Intn(4) == 0 {
					kind = trace.InstFetch
				}
			}
			recs[i] = trace.Record{
				Gap:  uint32(rng.Intn(12)),
				Kind: kind,
				Addr: rng.Uint64n(300)*trace.PageSize +
					rng.Uint64n(trace.LinesPerPage)*trace.LineSize,
			}
		}
		out[c] = recs
	}
	return out
}

func diffRun(t *testing.T, recs [][]trace.Record, mig *decisionRecorder) sim.Result {
	t.Helper()
	cfg := sim.Config{
		HBM:            memsim.HBM(256 << 10), // 64 pages: far smaller than the working set
		DDR:            memsim.DDR3(16 << 20),
		IssueWidth:     4,
		MaxOutstanding: 8,
	}
	streams := make([]trace.Stream, len(recs))
	for i, r := range recs {
		streams[i] = trace.NewSliceStream(r)
	}
	res, err := sim.Run(cfg, streams, []uint64{0, 1, 2, 3}, true, mig)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

// TestDifferentialFlatVsMapBacked runs each mechanism on identical random
// traces through the flat production path and the map-backed reference and
// requires byte-identical decisions and final metrics.
// diffRunTopo is diffRun over a three-tier topology: a small DRAM middle
// tier that forces first touches to spill into the NVM capacity tier, with
// the same 64-page fast HBM tier as the two-tier harness.
func diffRunTopo(t *testing.T, recs [][]trace.Record, mig *decisionRecorder) sim.Result {
	t.Helper()
	cfg := sim.Config{
		Topology: &core.Topology{
			Name: "diff-3tier",
			Tiers: []core.TierDesc{
				{Name: "NVM", Mem: memsim.NVM(16 << 20), FITPerGB: 900, WriteBudget: 64},
				{Name: "DRAM", Mem: memsim.DDR3(1 << 20), FITPerGB: 66},
				{Name: "HBM", Mem: memsim.HBM(256 << 10), FITPerGB: 350},
			},
			FastTier:   2,
			AllocOrder: []int{1, 0},
		},
		IssueWidth:     4,
		MaxOutstanding: 8,
	}
	streams := make([]trace.Stream, len(recs))
	for i, r := range recs {
		streams[i] = trace.NewSliceStream(r)
	}
	res, err := sim.Run(cfg, streams, []uint64{0, 1, 2, 3}, true, mig)
	if err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	return res
}

// TestDifferentialThreeTier runs the same flat-vs-reference comparison over
// the three-tier spill topology: the mechanisms only see fast-tier residency,
// so their decisions must be identical to the map-backed reference there too.
func TestDifferentialThreeTier(t *testing.T) {
	cases := []struct {
		name string
		mkN  func() sim.Migrator
		mkR  func() sim.Migrator
	}{
		{"full-counter", func() sim.Migrator { return NewFullCounter(20000) },
			func() sim.Migrator { return &refFC{interval: 20000, counters: newRefCounters(8)} }},
		{"cross-counter", func() sim.Migrator { return NewCrossCounter(5000, 4, 8) },
			func() sim.Migrator { return newRefCC(5000, 4, 8) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			recs := diffTrace(7, 2, 6000)
			newRec := &decisionRecorder{m: tc.mkN()}
			refRec := &decisionRecorder{m: tc.mkR()}
			got := diffRunTopo(t, recs, newRec)
			want := diffRunTopo(t, recs, refRec)

			if len(newRec.decisions) != len(refRec.decisions) {
				t.Fatalf("%d decisions vs reference %d", len(newRec.decisions), len(refRec.decisions))
			}
			for i := range newRec.decisions {
				n, r := newRec.decisions[i], refRec.decisions[i]
				if !reflect.DeepEqual(n.in, r.in) || !reflect.DeepEqual(n.out, r.out) {
					t.Fatalf("decision %d diverges:\n flat in=%v out=%v\n  ref in=%v out=%v",
						i, n.in, n.out, r.in, r.out)
				}
			}
			if got.IPC != want.IPC || got.Cycles != want.Cycles {
				t.Errorf("IPC/cycles diverge: %v/%d vs %v/%d", got.IPC, got.Cycles, want.IPC, want.Cycles)
			}
			if !reflect.DeepEqual(got.Snapshot, want.Snapshot) {
				t.Errorf("AVF snapshots diverge (%d vs %d pages)", len(got.Snapshot), len(want.Snapshot))
			}
			if !reflect.DeepEqual(got.Endurance, want.Endurance) {
				t.Errorf("endurance diverges: %+v vs %+v", got.Endurance, want.Endurance)
			}
			if len(got.Endurance) != 1 || got.Endurance[0].TotalWrites == 0 {
				t.Errorf("three-tier run recorded no NVM wear: %+v", got.Endurance)
			}
		})
	}
}

func TestDifferentialFlatVsMapBacked(t *testing.T) {
	cases := []struct {
		name string
		mkN  func() sim.Migrator
		mkR  func() sim.Migrator
	}{
		{"perf-baseline", func() sim.Migrator { return NewPerf(20000) },
			func() sim.Migrator { return &refPerf{interval: 20000, counters: newRefCounters(8)} }},
		{"full-counter", func() sim.Migrator { return NewFullCounter(20000) },
			func() sim.Migrator { return &refFC{interval: 20000, counters: newRefCounters(8)} }},
		{"cross-counter", func() sim.Migrator { return NewCrossCounter(5000, 4, 8) },
			func() sim.Migrator { return newRefCC(5000, 4, 8) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				recs := diffTrace(seed, 2, 6000)
				newRec := &decisionRecorder{m: tc.mkN()}
				refRec := &decisionRecorder{m: tc.mkR()}
				got := diffRun(t, recs, newRec)
				want := diffRun(t, recs, refRec)

				if len(newRec.decisions) != len(refRec.decisions) {
					t.Fatalf("seed %d: %d decisions vs reference %d",
						seed, len(newRec.decisions), len(refRec.decisions))
				}
				for i := range newRec.decisions {
					n, r := newRec.decisions[i], refRec.decisions[i]
					if !reflect.DeepEqual(n.in, r.in) || !reflect.DeepEqual(n.out, r.out) {
						t.Fatalf("seed %d: decision %d diverges:\n flat in=%v out=%v\n  ref in=%v out=%v",
							seed, i, n.in, n.out, r.in, r.out)
					}
				}
				if got.IPC != want.IPC {
					t.Errorf("seed %d: IPC %v vs reference %v", seed, got.IPC, want.IPC)
				}
				if got.Cycles != want.Cycles {
					t.Errorf("seed %d: cycles %d vs reference %d", seed, got.Cycles, want.Cycles)
				}
				if got.PagesMigrated != want.PagesMigrated {
					t.Errorf("seed %d: migrated %d vs reference %d", seed, got.PagesMigrated, want.PagesMigrated)
				}
				// The SER score is a deterministic function of the snapshot;
				// identical snapshots pin identical SER for any FIT setting.
				if !reflect.DeepEqual(got.Snapshot, want.Snapshot) {
					t.Errorf("seed %d: AVF snapshots diverge (%d vs %d pages)",
						seed, len(got.Snapshot), len(want.Snapshot))
				}
			}
		})
	}
}
