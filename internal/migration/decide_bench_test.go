package migration

import (
	"testing"

	"hmem/internal/sim"
)

// benchDecide measures one interval turnover for a mechanism: feeding a
// working set of accesses and taking the migration decision.
func benchDecide(b *testing.B, mig sim.Migrator) {
	placement := sim.NewPlacement(256, 8192)
	mig.Bind(placement.PageTable())
	const pages = 2048
	for pg := uint64(0); pg < pages; pg++ {
		placement.Lookup(pg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := uint64(0); pg < pages; pg++ {
			pi := placement.Intern(pg)
			mig.OnAccess(pi, pg%3 == 0, placement.InHBMIndex(pi))
		}
		in, out := mig.Decide(int64(i+1)*100000, placement)
		placement.Migrate(in, out)
	}
}

func BenchmarkMigratorDecide(b *testing.B) {
	b.Run("perf-baseline", func(b *testing.B) { benchDecide(b, NewPerf(100000)) })
	b.Run("full-counter", func(b *testing.B) { benchDecide(b, NewFullCounter(100000)) })
	b.Run("cross-counter", func(b *testing.B) { benchDecide(b, NewCrossCounter(100000, 4, 32)) })
}
