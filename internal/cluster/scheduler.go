package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hmem/internal/breaker"
	"hmem/internal/exec"
	"hmem/internal/obs"
)

// ErrNoWorkers reports that a shard could not be placed: the registry is
// empty, or every candidate failed at the transport level. The caller (the
// service's cluster delegate) falls back to local computation — a coordinator
// alone is still a correct, if slower, hmemd.
var ErrNoWorkers = errors.New("cluster: no live workers to place shard on")

// WorkerError is an application-level failure returned by a worker: the
// shard was delivered and the computation itself failed. Shards are
// deterministic, so the same failure would reproduce on every node — the
// scheduler propagates it instead of burning the remaining candidates.
type WorkerError struct {
	Status  int
	Message string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker HTTP %d: %s", e.Status, e.Message)
}

// retryableStatus reports worker responses worth trying elsewhere: 429/503
// are load shedding or drain, not verdicts about the shard.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Scheduler places shards on registered workers and collects their results.
// Placement is consistent-hash by shard key (repeat shards land on the node
// whose memo already holds the result); failures retry on the next ring
// candidate; stragglers are raced against a duplicate dispatch
// (work-stealing) — all safe because shard results are pure functions of
// their descriptors. Results are cached success-only, so one transient
// outage never poisons a key. Safe for concurrent use.
type Scheduler struct {
	// Registry supplies live workers and ring placement.
	Registry *Registry
	// Client is the HTTP client for worker calls (wrap its Transport with
	// chaos.RoundTripper or Partition to inject faults). Nil uses a default
	// client with no overall timeout — per-call contexts bound each request.
	Client *http.Client
	// MaxAttempts bounds the distinct workers tried per shard (<=0 means 3),
	// mirroring the journal's bounded attempt counting so a poison shard
	// cannot ricochet around the cluster forever.
	MaxAttempts int
	// StealAfter launches a duplicate dispatch (a hedge) on the next ring
	// candidate when the owner has not answered within this duration
	// (0 disables hedging). First success wins; the loser's result is
	// discarded. With HedgeQuantile set, StealAfter becomes the fallback
	// and ceiling for the adaptive delay rather than the delay itself.
	StealAfter time.Duration
	// HedgeQuantile, when in (0,1), derives the hedge delay from observed
	// shard latency instead of the fixed StealAfter: delay =
	// HedgeMultiplier × that latency quantile, clamped to
	// [HedgeMin, HedgeMax]. Zero keeps the fixed StealAfter delay.
	HedgeQuantile float64
	// HedgeMultiplier scales the latency quantile into the hedge delay
	// (<=0 = 2): hedging at 2× the p95 only duplicates genuine outliers.
	HedgeMultiplier float64
	// HedgeMin / HedgeMax clamp the adaptive delay (<=0 = StealAfter/4 and
	// StealAfter respectively), so a burst of fast cache-adjacent shards
	// cannot collapse the delay to microseconds and duplicate everything.
	HedgeMin time.Duration
	HedgeMax time.Duration
	// HedgeRatio is the hedge credit earned per primary dispatch
	// (<=0 = 0.25): at most one hedge per 1/ratio placements beyond the
	// burst allowance, the global budget that stops hedges from amplifying
	// an overload.
	HedgeRatio float64
	// HedgeBurst is the up-front hedge allowance (<=0 = 2) so the first
	// straggler of a run can still be hedged before any credit accrues.
	HedgeBurst int
	// Breakers, when set, quarantines failing workers: placement skips
	// candidates whose breaker refuses, dispatch outcomes feed it (transport
	// failures and retryable statuses count against the worker; application
	// errors do not — the shard, not the worker, is broken). Workers with an
	// open breaker are probed by the breaker's half-open trickle instead of
	// being binary-expired from the ring.
	Breakers *breaker.Set
	// RequestTimeout bounds one shard POST (<=0 means 10 minutes —
	// simulations are slow, wedged workers are not).
	RequestTimeout time.Duration
	// PeerTimeout bounds one peer-cache GET (<=0 means 2 seconds).
	PeerTimeout time.Duration
	// Logf, when set, receives placement decisions worth an operator's
	// attention (retries, steals, fallbacks).
	Logf func(format string, args ...any)

	cache Cache

	placed, retries, hedges, peerHits, breakerSkips atomic.Uint64

	// hedgeEarnedMilli/hedgeSpent implement the global hedge budget in
	// milli-tokens: each placement earns HedgeRatio×1000, each hedge spends
	// 1000, and HedgeBurst×1000 is free up front.
	hedgeEarnedMilli atomic.Uint64
	hedgeSpent       atomic.Uint64

	// lat samples successful shard round-trip latencies for the adaptive
	// hedge delay.
	lat latencyWindow
}

func (s *Scheduler) maxAttempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return 3
}

func (s *Scheduler) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *Scheduler) requestTimeout() time.Duration {
	if s.RequestTimeout > 0 {
		return s.RequestTimeout
	}
	return 10 * time.Minute
}

func (s *Scheduler) peerTimeout() time.Duration {
	if s.PeerTimeout > 0 {
		return s.PeerTimeout
	}
	return 2 * time.Second
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Scheduler) hedgeMultiplier() float64 {
	if s.HedgeMultiplier > 0 {
		return s.HedgeMultiplier
	}
	return 2
}

func (s *Scheduler) hedgeMin() time.Duration {
	if s.HedgeMin > 0 {
		return s.HedgeMin
	}
	return s.StealAfter / 4
}

func (s *Scheduler) hedgeMax() time.Duration {
	if s.HedgeMax > 0 {
		return s.HedgeMax
	}
	return s.StealAfter
}

func (s *Scheduler) hedgeRatio() float64 {
	if s.HedgeRatio > 0 {
		return s.HedgeRatio
	}
	return 0.25
}

func (s *Scheduler) hedgeBurst() int {
	if s.HedgeBurst > 0 {
		return s.HedgeBurst
	}
	return 2
}

// hedgeDelay picks this dispatch's hedge delay: the latency-quantile-derived
// adaptive delay when configured and enough samples exist, the fixed
// StealAfter otherwise. Zero disables hedging entirely.
func (s *Scheduler) hedgeDelay() time.Duration {
	if s.StealAfter <= 0 {
		return 0
	}
	if s.HedgeQuantile <= 0 || s.HedgeQuantile >= 1 {
		return s.StealAfter
	}
	q, ok := s.lat.quantile(s.HedgeQuantile)
	if !ok {
		return s.StealAfter
	}
	d := time.Duration(s.hedgeMultiplier() * q * float64(time.Second))
	if min := s.hedgeMin(); d < min {
		d = min
	}
	if max := s.hedgeMax(); max > 0 && d > max {
		d = max
	}
	return d
}

// earnHedge credits the budget for one primary placement.
func (s *Scheduler) earnHedge() {
	s.hedgeEarnedMilli.Add(uint64(s.hedgeRatio() * 1000))
}

// spendHedge tries to debit one hedge from the global budget.
func (s *Scheduler) spendHedge() bool {
	for {
		spent := s.hedgeSpent.Load()
		if (spent+1)*1000 > uint64(s.hedgeBurst())*1000+s.hedgeEarnedMilli.Load() {
			return false
		}
		if s.hedgeSpent.CompareAndSwap(spent, spent+1) {
			return true
		}
	}
}

// workerHealthy is the breaker's success predicate for one dispatch: nil is
// healthy, and so is a non-retryable WorkerError — the worker answered, the
// shard itself is deterministically broken. Transport failures, timeouts,
// and 429/503 count against the worker.
func workerHealthy(err error) bool {
	if err == nil {
		return true
	}
	var werr *WorkerError
	return errors.As(err, &werr) && !retryableStatus(werr.Status)
}

// latencyWindow is a fixed-capacity ring of recent successful shard
// latencies (seconds). quantile sorts a copy; with fewer than
// hedgeMinSamples entries it reports no estimate so early dispatches fall
// back to the fixed delay.
type latencyWindow struct {
	mu      sync.Mutex
	samples [latencyWindowCap]float64
	head, n int
}

const (
	latencyWindowCap = 128
	hedgeMinSamples  = 8
)

func (lw *latencyWindow) observe(d time.Duration) {
	lw.mu.Lock()
	lw.samples[lw.head] = d.Seconds()
	lw.head = (lw.head + 1) % latencyWindowCap
	if lw.n < latencyWindowCap {
		lw.n++
	}
	lw.mu.Unlock()
}

func (lw *latencyWindow) quantile(q float64) (float64, bool) {
	lw.mu.Lock()
	if lw.n < hedgeMinSamples {
		lw.mu.Unlock()
		return 0, false
	}
	tmp := make([]float64, lw.n)
	copy(tmp, lw.samples[:lw.n])
	lw.mu.Unlock()
	sort.Float64s(tmp)
	idx := int(q * float64(len(tmp)-1))
	return tmp[idx], true
}

// Peek exposes the scheduler's completed-shard cache, so a coordinator also
// answers peer-cache lookups.
func (s *Scheduler) Peek(key string) ([]byte, bool) { return s.cache.Peek(key) }

// Run places one shard and returns its raw result payload. Concurrent calls
// for the same shard share one dispatch; a completed shard is served from
// cache without touching the network.
func (s *Scheduler) Run(ctx context.Context, sh Shard) ([]byte, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	key := sh.Key()
	return s.cache.Do(ctx, key, func() ([]byte, error) {
		// Detach: the dispatch outcome is shared with every requester of the
		// key, so it must not record one caller's cancellation. Observability
		// (spans, progress) rides along.
		return s.dispatch(obs.Detach(ctx), sh, key)
	})
}

// RunAll places shards on at most workers concurrent dispatches and returns
// payloads in shard order — the deterministic merge the cluster's
// byte-identity rests on.
func (s *Scheduler) RunAll(ctx context.Context, workers int, shards []Shard) ([][]byte, error) {
	return exec.Map(ctx, workers, len(shards), func(i int) ([]byte, error) {
		return s.Run(ctx, shards[i])
	})
}

// dispatch drives one shard to completion: peer-cache scan, then placement
// on the ring owner with bounded retry-on-another-worker and hedging of
// stragglers, both consulting per-worker circuit breakers so quarantined
// workers are skipped rather than tried.
func (s *Scheduler) dispatch(ctx context.Context, sh Shard, key string) ([]byte, error) {
	if obs.Enabled(ctx) {
		var sp *obs.Span
		ctx, sp = obs.Start(ctx, "cluster.shard",
			obs.Str("key", key), obs.Str("shard", sh.String()))
		defer sp.End()
	}
	cands := s.Registry.Owners(key, s.maxAttempts())
	if len(cands) == 0 {
		return nil, ErrNoWorkers
	}
	if b, ok := s.peerLookup(ctx, key); ok {
		return b, nil
	}

	type outcome struct {
		body []byte
		err  error
		from Worker
	}
	ch := make(chan outcome, len(cands))
	inflight, next := 0, 0
	// launchNext starts the dispatch on the next candidate whose breaker
	// admits it, reporting the worker it landed on. Breaker-refused
	// candidates are consumed (skipped), so an open breaker quarantines its
	// worker from placement entirely.
	launchNext := func() (Worker, bool) {
		for next < len(cands) {
			w := cands[next]
			next++
			var done func(bool)
			if s.Breakers != nil {
				var ok bool
				done, ok = s.Breakers.Get(w.ID).Allow()
				if !ok {
					s.breakerSkips.Add(1)
					s.logf("cluster: shard %s skipping %s (breaker open)", key, w.ID)
					continue
				}
			}
			s.placed.Add(1)
			s.earnHedge()
			inflight++
			go func(w Worker, done func(bool)) {
				start := time.Now()
				body, err := s.post(ctx, w, sh)
				if done != nil {
					done(workerHealthy(err))
				}
				if err == nil {
					s.lat.observe(time.Since(start))
				}
				ch <- outcome{body: body, err: err, from: w}
			}(w, done)
			return w, true
		}
		return Worker{}, false
	}
	if _, ok := launchNext(); !ok {
		return nil, fmt.Errorf("%w (all %d candidates quarantined by breakers)", ErrNoWorkers, len(cands))
	}
	var hedgeT <-chan time.Time
	if d := s.hedgeDelay(); d > 0 && next < len(cands) {
		hedgeT = time.After(d)
	}
	var lastErr error
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				return out.body, nil
			}
			var werr *WorkerError
			if errors.As(out.err, &werr) && !retryableStatus(werr.Status) {
				// Deterministic application failure: same everywhere.
				return nil, out.err
			}
			lastErr = out.err
			if w, ok := launchNext(); ok {
				s.retries.Add(1)
				s.logf("cluster: shard %s failed on %s (%v), retrying on %s",
					key, out.from.ID, out.err, w.ID)
			}
		case <-hedgeT:
			hedgeT = nil
			if next < len(cands) && s.spendHedge() {
				if w, ok := launchNext(); ok {
					s.hedges.Add(1)
					s.logf("cluster: shard %s straggling on %s, hedging onto %s",
						key, cands[0].ID, w.ID)
				}
			}
		}
	}
	return nil, fmt.Errorf("%w (tried %d; last: %v)", ErrNoWorkers, next, lastErr)
}

// peerLookup scans live workers for an already-memoized result before any
// recompute: ring candidates first (most likely holders), then the rest in
// ID order. Misses are cheap 404s; a hit skips a whole simulation.
func (s *Scheduler) peerLookup(ctx context.Context, key string) ([]byte, bool) {
	seen := make(map[string]struct{})
	scan := append(s.Registry.Owners(key, s.maxAttempts()), s.Registry.Snapshot()...)
	for _, w := range scan {
		if _, dup := seen[w.ID]; dup {
			continue
		}
		seen[w.ID] = struct{}{}
		cctx, cancel := context.WithTimeout(ctx, s.peerTimeout())
		body, err := s.get(cctx, w.URL+"/v1/cluster/cache/"+key)
		cancel()
		if err == nil {
			s.peerHits.Add(1)
			return body, true
		}
	}
	return nil, false
}

// post delivers a shard to one worker and returns the raw result payload.
func (s *Scheduler) post(ctx context.Context, w Worker, sh Shard) ([]byte, error) {
	buf, err := json.Marshal(sh)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding shard: %w", err)
	}
	cctx, cancel := context.WithTimeout(ctx, s.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		strings.TrimRight(w.URL, "/")+"/v1/cluster/shard", bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("cluster: building shard request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: posting shard to %s: %w", w.ID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading shard response from %s: %w", w.ID, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &WorkerError{Status: resp.StatusCode, Message: msg}
	}
	return body, nil
}

// get fetches one peer-cache entry; any non-200 is a miss.
func (s *Scheduler) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: peer cache HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
}

// maxShardResponse bounds one shard payload (a sim.Result with snapshots is
// O(pages); 64 MB is far above any real payload, low enough to stop a
// misbehaving peer from exhausting memory).
const maxShardResponse = 64 << 20

// SchedulerStats is a point-in-time snapshot of placement activity, mirrored
// onto /metrics by the service.
type SchedulerStats struct {
	// Placed counts shard dispatches sent to workers (including retries and
	// hedges).
	Placed uint64
	// Retries counts re-placements after a failed dispatch.
	Retries uint64
	// Hedges counts duplicate dispatches launched against stragglers.
	Hedges uint64
	// Steals is the pre-hedging name for Hedges, kept so existing callers
	// and dashboards keep working.
	Steals uint64
	// BreakerSkips counts placement candidates passed over because their
	// worker's breaker refused.
	BreakerSkips uint64
	// PeerHits counts shards answered from another node's cache.
	PeerHits uint64
	// CacheHits/CacheMisses are the coordinator-side shard cache counters.
	CacheHits, CacheMisses uint64
}

// Stats returns the placement counters.
func (s *Scheduler) Stats() SchedulerStats {
	hits, misses := s.cache.Stats()
	hedges := s.hedges.Load()
	return SchedulerStats{
		Placed:       s.placed.Load(),
		Retries:      s.retries.Load(),
		Hedges:       hedges,
		Steals:       hedges,
		BreakerSkips: s.breakerSkips.Load(),
		PeerHits:     s.peerHits.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
	}
}
