package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"hmem/internal/exec"
	"hmem/internal/obs"
)

// ErrNoWorkers reports that a shard could not be placed: the registry is
// empty, or every candidate failed at the transport level. The caller (the
// service's cluster delegate) falls back to local computation — a coordinator
// alone is still a correct, if slower, hmemd.
var ErrNoWorkers = errors.New("cluster: no live workers to place shard on")

// WorkerError is an application-level failure returned by a worker: the
// shard was delivered and the computation itself failed. Shards are
// deterministic, so the same failure would reproduce on every node — the
// scheduler propagates it instead of burning the remaining candidates.
type WorkerError struct {
	Status  int
	Message string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("cluster: worker HTTP %d: %s", e.Status, e.Message)
}

// retryableStatus reports worker responses worth trying elsewhere: 429/503
// are load shedding or drain, not verdicts about the shard.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// Scheduler places shards on registered workers and collects their results.
// Placement is consistent-hash by shard key (repeat shards land on the node
// whose memo already holds the result); failures retry on the next ring
// candidate; stragglers are raced against a duplicate dispatch
// (work-stealing) — all safe because shard results are pure functions of
// their descriptors. Results are cached success-only, so one transient
// outage never poisons a key. Safe for concurrent use.
type Scheduler struct {
	// Registry supplies live workers and ring placement.
	Registry *Registry
	// Client is the HTTP client for worker calls (wrap its Transport with
	// chaos.RoundTripper or Partition to inject faults). Nil uses a default
	// client with no overall timeout — per-call contexts bound each request.
	Client *http.Client
	// MaxAttempts bounds the distinct workers tried per shard (<=0 means 3),
	// mirroring the journal's bounded attempt counting so a poison shard
	// cannot ricochet around the cluster forever.
	MaxAttempts int
	// StealAfter launches a duplicate dispatch on the next ring candidate
	// when the owner has not answered within this duration (0 disables
	// stealing). First success wins; the loser's result is discarded.
	StealAfter time.Duration
	// RequestTimeout bounds one shard POST (<=0 means 10 minutes —
	// simulations are slow, wedged workers are not).
	RequestTimeout time.Duration
	// PeerTimeout bounds one peer-cache GET (<=0 means 2 seconds).
	PeerTimeout time.Duration
	// Logf, when set, receives placement decisions worth an operator's
	// attention (retries, steals, fallbacks).
	Logf func(format string, args ...any)

	cache Cache

	placed, retries, steals, peerHits atomic.Uint64
}

func (s *Scheduler) maxAttempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return 3
}

func (s *Scheduler) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *Scheduler) requestTimeout() time.Duration {
	if s.RequestTimeout > 0 {
		return s.RequestTimeout
	}
	return 10 * time.Minute
}

func (s *Scheduler) peerTimeout() time.Duration {
	if s.PeerTimeout > 0 {
		return s.PeerTimeout
	}
	return 2 * time.Second
}

func (s *Scheduler) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Peek exposes the scheduler's completed-shard cache, so a coordinator also
// answers peer-cache lookups.
func (s *Scheduler) Peek(key string) ([]byte, bool) { return s.cache.Peek(key) }

// Run places one shard and returns its raw result payload. Concurrent calls
// for the same shard share one dispatch; a completed shard is served from
// cache without touching the network.
func (s *Scheduler) Run(ctx context.Context, sh Shard) ([]byte, error) {
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	key := sh.Key()
	return s.cache.Do(ctx, key, func() ([]byte, error) {
		// Detach: the dispatch outcome is shared with every requester of the
		// key, so it must not record one caller's cancellation. Observability
		// (spans, progress) rides along.
		return s.dispatch(obs.Detach(ctx), sh, key)
	})
}

// RunAll places shards on at most workers concurrent dispatches and returns
// payloads in shard order — the deterministic merge the cluster's
// byte-identity rests on.
func (s *Scheduler) RunAll(ctx context.Context, workers int, shards []Shard) ([][]byte, error) {
	return exec.Map(ctx, workers, len(shards), func(i int) ([]byte, error) {
		return s.Run(ctx, shards[i])
	})
}

// dispatch drives one shard to completion: peer-cache scan, then placement
// on the ring owner with bounded retry-on-another-worker and optional
// work-stealing.
func (s *Scheduler) dispatch(ctx context.Context, sh Shard, key string) ([]byte, error) {
	if obs.Enabled(ctx) {
		var sp *obs.Span
		ctx, sp = obs.Start(ctx, "cluster.shard",
			obs.Str("key", key), obs.Str("shard", sh.String()))
		defer sp.End()
	}
	cands := s.Registry.Owners(key, s.maxAttempts())
	if len(cands) == 0 {
		return nil, ErrNoWorkers
	}
	if b, ok := s.peerLookup(ctx, key); ok {
		return b, nil
	}

	type outcome struct {
		body []byte
		err  error
		from Worker
	}
	ch := make(chan outcome, len(cands))
	launch := func(w Worker) {
		s.placed.Add(1)
		go func() {
			body, err := s.post(ctx, w, sh)
			ch <- outcome{body: body, err: err, from: w}
		}()
	}
	launch(cands[0])
	inflight, next := 1, 1
	var stealT <-chan time.Time
	if s.StealAfter > 0 && next < len(cands) {
		stealT = time.After(s.StealAfter)
	}
	var lastErr error
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				return out.body, nil
			}
			var werr *WorkerError
			if errors.As(out.err, &werr) && !retryableStatus(werr.Status) {
				// Deterministic application failure: same everywhere.
				return nil, out.err
			}
			lastErr = out.err
			if next < len(cands) {
				s.retries.Add(1)
				s.logf("cluster: shard %s failed on %s (%v), retrying on %s",
					key, out.from.ID, out.err, cands[next].ID)
				launch(cands[next])
				inflight++
				next++
			}
		case <-stealT:
			stealT = nil
			if next < len(cands) {
				s.steals.Add(1)
				s.logf("cluster: shard %s straggling on %s, stealing onto %s",
					key, cands[0].ID, cands[next].ID)
				launch(cands[next])
				inflight++
				next++
			}
		}
	}
	return nil, fmt.Errorf("%w (tried %d; last: %v)", ErrNoWorkers, next, lastErr)
}

// peerLookup scans live workers for an already-memoized result before any
// recompute: ring candidates first (most likely holders), then the rest in
// ID order. Misses are cheap 404s; a hit skips a whole simulation.
func (s *Scheduler) peerLookup(ctx context.Context, key string) ([]byte, bool) {
	seen := make(map[string]struct{})
	scan := append(s.Registry.Owners(key, s.maxAttempts()), s.Registry.Snapshot()...)
	for _, w := range scan {
		if _, dup := seen[w.ID]; dup {
			continue
		}
		seen[w.ID] = struct{}{}
		cctx, cancel := context.WithTimeout(ctx, s.peerTimeout())
		body, err := s.get(cctx, w.URL+"/v1/cluster/cache/"+key)
		cancel()
		if err == nil {
			s.peerHits.Add(1)
			return body, true
		}
	}
	return nil, false
}

// post delivers a shard to one worker and returns the raw result payload.
func (s *Scheduler) post(ctx context.Context, w Worker, sh Shard) ([]byte, error) {
	buf, err := json.Marshal(sh)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding shard: %w", err)
	}
	cctx, cancel := context.WithTimeout(ctx, s.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		strings.TrimRight(w.URL, "/")+"/v1/cluster/shard", bytes.NewReader(buf))
	if err != nil {
		return nil, fmt.Errorf("cluster: building shard request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: posting shard to %s: %w", w.ID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading shard response from %s: %w", w.ID, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return nil, &WorkerError{Status: resp.StatusCode, Message: msg}
	}
	return body, nil
}

// get fetches one peer-cache entry; any non-200 is a miss.
func (s *Scheduler) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("cluster: peer cache HTTP %d", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
}

// maxShardResponse bounds one shard payload (a sim.Result with snapshots is
// O(pages); 64 MB is far above any real payload, low enough to stop a
// misbehaving peer from exhausting memory).
const maxShardResponse = 64 << 20

// SchedulerStats is a point-in-time snapshot of placement activity, mirrored
// onto /metrics by the service.
type SchedulerStats struct {
	// Placed counts shard dispatches sent to workers (including retries and
	// steals).
	Placed uint64
	// Retries counts re-placements after a failed dispatch.
	Retries uint64
	// Steals counts duplicate dispatches launched for stragglers.
	Steals uint64
	// PeerHits counts shards answered from another node's cache.
	PeerHits uint64
	// CacheHits/CacheMisses are the coordinator-side shard cache counters.
	CacheHits, CacheMisses uint64
}

// Stats returns the placement counters.
func (s *Scheduler) Stats() SchedulerStats {
	hits, misses := s.cache.Stats()
	return SchedulerStats{
		Placed:      s.placed.Load(),
		Retries:     s.retries.Load(),
		Steals:      s.steals.Load(),
		PeerHits:    s.peerHits.Load(),
		CacheHits:   hits,
		CacheMisses: misses,
	}
}
