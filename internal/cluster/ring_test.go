package cluster

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// TestRingDistributionBalance: for 3-16 workers, hashing a large key
// population must load every worker within a reasonable factor of fair
// share — the property that makes consistent hashing usable as a placement
// policy at the cluster sizes this repo targets.
func TestRingDistributionBalance(t *testing.T) {
	const keys = 20000
	for workers := 3; workers <= 16; workers++ {
		r := NewRing(0)
		for i := 0; i < workers; i++ {
			r.Add(fmt.Sprintf("worker-%d", i))
		}
		counts := make(map[string]int)
		for k := 0; k < keys; k++ {
			owner, ok := r.Owner(fmt.Sprintf("shard-key-%d", k))
			if !ok {
				t.Fatalf("workers=%d: no owner for key %d", workers, k)
			}
			counts[owner]++
		}
		if len(counts) != workers {
			t.Errorf("workers=%d: only %d workers ever own a key", workers, len(counts))
		}
		fair := float64(keys) / float64(workers)
		for w, c := range counts {
			ratio := float64(c) / fair
			// 128 vnodes bound imbalance well below 2x in practice; the
			// assertion leaves slack so the test pins the property, not the
			// hash function's exact spread.
			if ratio < 0.5 || ratio > 1.75 {
				t.Errorf("workers=%d: %s owns %d keys (%.2fx fair share)", workers, w, c, ratio)
			}
		}
	}
}

// TestRingMinimalReshuffleOnJoinLeave (testing/quick): adding one worker to
// an n-worker ring may only move keys TO the new worker (never shuffle keys
// between existing ones), and removing it must restore the original
// placement exactly. The moved fraction must be near 1/(n+1).
func TestRingMinimalReshuffleOnJoinLeave(t *testing.T) {
	const keys = 4000
	prop := func(seed uint16, nWorkers uint8) bool {
		n := 3 + int(nWorkers)%14 // 3..16
		r := NewRing(0)
		for i := 0; i < n; i++ {
			r.Add(fmt.Sprintf("w%d-%d", seed, i))
		}
		before := make([]string, keys)
		for k := range before {
			before[k], _ = r.Owner(fmt.Sprintf("key-%d-%d", seed, k))
		}
		joined := fmt.Sprintf("w%d-new", seed)
		r.Add(joined)
		moved := 0
		for k := range before {
			now, _ := r.Owner(fmt.Sprintf("key-%d-%d", seed, k))
			if now != before[k] {
				if now != joined {
					t.Logf("key %d moved between pre-existing workers: %s -> %s", k, before[k], now)
					return false
				}
				moved++
			}
		}
		frac := float64(moved) / float64(keys)
		want := 1.0 / float64(n+1)
		if math.Abs(frac-want) > 0.6*want+0.02 {
			t.Logf("n=%d: moved fraction %.3f, want ~%.3f", n, frac, want)
			return false
		}
		r.Remove(joined)
		for k := range before {
			if now, _ := r.Owner(fmt.Sprintf("key-%d-%d", seed, k)); now != before[k] {
				t.Logf("key %d not restored after leave: %s != %s", k, now, before[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRingDeterministicAcrossInsertionOrder: ring placement is a pure
// function of the member set — the coordinator's placement cannot depend on
// the order workers happened to register.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for _, w := range []string{"w1", "w2", "w3", "w4"} {
		a.Add(w)
	}
	for _, w := range []string{"w4", "w2", "w1", "w3"} {
		b.Add(w)
	}
	for k := 0; k < 1000; k++ {
		key := fmt.Sprintf("key-%d", k)
		oa, _ := a.Owner(key)
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %q: owner %s vs %s depending on insertion order", key, oa, ob)
		}
	}
}

// TestRingOwners: the failover walk yields distinct nodes, owner first,
// capped at membership.
func TestRingOwners(t *testing.T) {
	r := NewRing(0)
	if got := r.Owners("k", 3); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
	r.Add("a")
	r.Add("b")
	r.Add("c")
	owners := r.Owners("some-key", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners cap: got %d, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Errorf("duplicate owner %s", o)
		}
		seen[o] = true
	}
	first, ok := r.Owner("some-key")
	if !ok || first != owners[0] {
		t.Errorf("Owner = %s/%v, want %s", first, ok, owners[0])
	}
	r.Remove("a")
	r.Remove("b")
	r.Remove("c")
	if r.Len() != 0 {
		t.Errorf("Len after removing all = %d", r.Len())
	}
	if _, ok := r.Owner("some-key"); ok {
		t.Error("Owner on emptied ring should report false")
	}
}
