package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Kind names the unit of distributable work. Each kind is one of the
// engine's memoized building blocks — the same decomposition the in-process
// memo caches collapse on, so a shard executed anywhere hits (or fills) the
// same cache entry it would locally.
type Kind string

const (
	// KindProfile is a workload's DDR-only oracle profiling run.
	KindProfile Kind = "profile"
	// KindStatic is a static-policy placement run (workload × policy).
	KindStatic Kind = "static"
	// KindDynamic is a migration-mechanism run (workload × mechanism).
	KindDynamic Kind = "dynamic"
	// KindAnnotation is the annotation-guided placement run of §4.4.
	KindAnnotation Kind = "annotation"
	// KindFaultShard is one Monte-Carlo stratum shard of a tier's fault
	// study (faultsim.ShardJob): stratum K, shard Index, Trials trials.
	KindFaultShard Kind = "fault-shard"
)

// Shard describes one unit of work completely: any node holding the same
// binary and the same options reproduces its result bit for bit. Options
// carries the submitting engine's option patch verbatim; Digest is the
// canonical digest of the resolved options, checked by the executing node so
// a coordinator and a misconfigured worker can never silently mix results
// computed under different defaults.
type Shard struct {
	Kind    Kind            `json:"kind"`
	Digest  string          `json:"digest"`
	Options json.RawMessage `json:"options,omitempty"`

	// Workload and Policy select the simulation for profile/static/dynamic/
	// annotation kinds (Policy holds the mechanism name for dynamic runs).
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`

	// Tier, K, Index, Trials select a fault-study Monte-Carlo shard.
	Tier   int `json:"tier,omitempty"`
	K      int `json:"k,omitempty"`
	Index  int `json:"index,omitempty"`
	Trials int `json:"trials,omitempty"`
}

// Key returns the shard's canonical cache key: a hex digest, stable across
// processes and safe in URL paths. Every cache in the cluster — coordinator
// dispatch memo, worker shard cache, peer lookups — is keyed by it.
func (s Shard) Key() string {
	var b strings.Builder
	b.WriteString(string(s.Kind))
	b.WriteByte('|')
	b.WriteString(s.Digest)
	b.WriteByte('|')
	b.WriteString(s.Workload)
	b.WriteByte('|')
	b.WriteString(s.Policy)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Tier))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.K))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Index))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(s.Trials))
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// String renders a human-readable label for logs and spans.
func (s Shard) String() string {
	switch s.Kind {
	case KindFaultShard:
		return fmt.Sprintf("%s tier=%d k=%d shard=%d n=%d", s.Kind, s.Tier, s.K, s.Index, s.Trials)
	case KindProfile:
		return fmt.Sprintf("%s %s", s.Kind, s.Workload)
	default:
		return fmt.Sprintf("%s %s/%s", s.Kind, s.Workload, s.Policy)
	}
}

// Validate rejects descriptors that no node could execute.
func (s Shard) Validate() error {
	switch s.Kind {
	case KindProfile:
		if s.Workload == "" {
			return fmt.Errorf("cluster: %s shard needs a workload", s.Kind)
		}
	case KindStatic, KindDynamic, KindAnnotation:
		if s.Workload == "" {
			return fmt.Errorf("cluster: %s shard needs a workload", s.Kind)
		}
		if s.Policy == "" && s.Kind != KindAnnotation {
			return fmt.Errorf("cluster: %s shard needs a policy", s.Kind)
		}
	case KindFaultShard:
		if s.Trials <= 0 || s.K < 1 {
			return fmt.Errorf("cluster: fault shard needs positive trials and stratum, got n=%d k=%d", s.Trials, s.K)
		}
	default:
		return fmt.Errorf("cluster: unknown shard kind %q", s.Kind)
	}
	if s.Digest == "" {
		return fmt.Errorf("cluster: shard is missing its options digest")
	}
	return nil
}

// RegisterRequest is the worker -> coordinator registration/heartbeat body.
type RegisterRequest struct {
	// ID is the worker's stable identity (ring membership key).
	ID string `json:"id"`
	// URL is the worker's base URL as reachable from the coordinator.
	URL string `json:"url"`
	// Load is the worker's current in-flight shard count.
	Load int `json:"load"`
}

// Validate rejects unusable registrations.
func (r RegisterRequest) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("cluster: registration needs a worker id")
	}
	if !strings.HasPrefix(r.URL, "http://") && !strings.HasPrefix(r.URL, "https://") {
		return fmt.Errorf("cluster: registration needs an http(s) url, got %q", r.URL)
	}
	return nil
}
