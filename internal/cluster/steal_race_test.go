package cluster

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestClusterStealRaceBothSucceed is a race-detector regression for the
// work-stealing window: the owner stalls long enough for a duplicate
// dispatch, then BOTH dispatches succeed. Shard results are deterministic,
// so the two bodies are identical — the contract is that exactly one result
// is merged, the dispatch cache holds exactly one entry, and a repeat Run is
// a pure cache hit with no further network traffic.
func TestClusterStealRaceBothSucceed(t *testing.T) {
	g := NewRegistry(time.Minute)
	owner := newFakeWorker(t, "w1")
	thief := newFakeWorker(t, "w2")

	const payload = `{"result":"deterministic-shard-result"}`
	ownerRelease := make(chan struct{})
	var releaseOnce sync.Once
	owner.respond = func(sh Shard) ([]byte, error) {
		// Stall until the stolen duplicate has landed, then succeed too: the
		// loser's write races the winner's merge, which is exactly what the
		// race detector is here to check.
		<-ownerRelease
		return []byte(payload), nil
	}
	thief.respond = func(sh Shard) ([]byte, error) {
		releaseOnce.Do(func() { close(ownerRelease) })
		return []byte(payload), nil
	}
	owner.register(g)
	thief.register(g)

	// Pick a shard whose ring owner is the stalling worker.
	var sh Shard
	for i := 0; ; i++ {
		sh = testShard(i)
		if o, _ := g.ring.Owner(sh.Key()); o == "w1" {
			break
		}
	}

	s := &Scheduler{Registry: g, StealAfter: 20 * time.Millisecond}
	body, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != payload {
		t.Fatalf("merged body = %s, want the shared deterministic payload", body)
	}

	// Both dispatches ran — wait out the loser (Run returns on the first
	// success; the duplicate may still be finishing).
	deadline := time.Now().Add(5 * time.Second)
	for len(owner.executions()) != 1 || len(thief.executions()) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("executions: owner=%d thief=%d, want 1 and 1",
				len(owner.executions()), len(thief.executions()))
		}
		time.Sleep(time.Millisecond)
	}

	st := s.Stats()
	if st.Placed != 2 || st.Steals != 1 {
		t.Fatalf("stats = %+v, want 2 placed, 1 steal", st)
	}
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want exactly one cache miss and no hits yet", st)
	}
	if cached, ok := s.Peek(sh.Key()); !ok || string(cached) != payload {
		t.Fatalf("dispatch cache entry = %q, %v; want the merged payload", cached, ok)
	}

	// A repeat Run is served from the dispatch cache: same bytes, no new
	// shard POST on either worker.
	again, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != payload {
		t.Fatalf("cached body = %s", again)
	}
	if n := len(owner.executions()) + len(thief.executions()); n != 2 {
		t.Fatalf("executions after cached rerun = %d, want still 2", n)
	}
	if st := s.Stats(); st.CacheHits != 1 || st.Placed != 2 {
		t.Fatalf("stats after rerun = %+v, want 1 hit and no new placements", st)
	}
}
