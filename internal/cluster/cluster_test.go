package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardKeyStableAndDistinct(t *testing.T) {
	a := Shard{Kind: KindStatic, Digest: "d1", Workload: "astar", Policy: "balanced"}
	if a.Key() != a.Key() {
		t.Error("Key not stable")
	}
	variants := []Shard{
		{Kind: KindProfile, Digest: "d1", Workload: "astar"},
		{Kind: KindStatic, Digest: "d2", Workload: "astar", Policy: "balanced"},
		{Kind: KindStatic, Digest: "d1", Workload: "mcf", Policy: "balanced"},
		{Kind: KindStatic, Digest: "d1", Workload: "astar", Policy: "wr-ratio"},
		{Kind: KindFaultShard, Digest: "d1", Tier: 1, K: 2, Index: 0, Trials: 2048},
		{Kind: KindFaultShard, Digest: "d1", Tier: 1, K: 2, Index: 1, Trials: 2048},
	}
	seen := map[string]Shard{a.Key(): a}
	for _, v := range variants {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision: %+v vs %+v", v, prev)
		}
		seen[v.Key()] = v
	}
}

func TestShardJSONRoundTrip(t *testing.T) {
	in := Shard{
		Kind: KindDynamic, Digest: "abc", Workload: "mix1", Policy: "cc-migration",
		Options: json.RawMessage(`{"fault_trials":2000}`),
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Shard
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed shard:\n got %+v\nwant %+v", out, in)
	}
	if in.Key() != out.Key() {
		t.Error("round trip changed key")
	}
}

func TestShardValidate(t *testing.T) {
	valid := []Shard{
		{Kind: KindProfile, Digest: "d", Workload: "astar"},
		{Kind: KindStatic, Digest: "d", Workload: "astar", Policy: "balanced"},
		{Kind: KindAnnotation, Digest: "d", Workload: "astar"},
		{Kind: KindFaultShard, Digest: "d", Tier: 0, K: 1, Index: 0, Trials: 100},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", s, err)
		}
	}
	invalid := []Shard{
		{},
		{Kind: KindProfile, Digest: "d"},
		{Kind: KindStatic, Digest: "d", Workload: "astar"},
		{Kind: KindFaultShard, Digest: "d", K: 0, Trials: 100},
		{Kind: KindProfile, Workload: "astar"},
		{Kind: "nonsense", Digest: "d"},
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v: want error, got nil", s)
		}
	}
}

func TestRegistryLifecycle(t *testing.T) {
	g := NewRegistry(time.Minute)
	isNew, err := g.Register(RegisterRequest{ID: "w1", URL: "http://h1:1", Load: 0})
	if err != nil || !isNew {
		t.Fatalf("first register: new=%v err=%v", isNew, err)
	}
	isNew, err = g.Register(RegisterRequest{ID: "w1", URL: "http://h1:2", Load: 3})
	if err != nil || isNew {
		t.Fatalf("heartbeat: new=%v err=%v", isNew, err)
	}
	snap := g.Snapshot()
	if len(snap) != 1 || snap[0].URL != "http://h1:2" || snap[0].Load != 3 {
		t.Fatalf("snapshot after heartbeat: %+v", snap)
	}
	if _, err := g.Register(RegisterRequest{ID: "", URL: "http://x"}); err == nil {
		t.Error("empty id: want error")
	}
	if _, err := g.Register(RegisterRequest{ID: "w2", URL: "ftp://x"}); err == nil {
		t.Error("non-http url: want error")
	}
	if !g.Deregister("w1") || g.Deregister("w1") {
		t.Error("deregister should succeed once")
	}
	st := g.Stats()
	if st.Joins != 1 || st.Leaves != 1 || st.Live != 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestRegistryExpire(t *testing.T) {
	g := NewRegistry(10 * time.Second)
	now := time.Unix(1000, 0)
	g.now = func() time.Time { return now }
	g.Register(RegisterRequest{ID: "old", URL: "http://old"})
	now = now.Add(8 * time.Second)
	g.Register(RegisterRequest{ID: "fresh", URL: "http://fresh"})
	now = now.Add(5 * time.Second) // old: 13s ago, fresh: 5s ago
	dead := g.Expire()
	if len(dead) != 1 || dead[0].ID != "old" {
		t.Fatalf("Expire = %+v, want [old]", dead)
	}
	if g.Len() != 1 {
		t.Errorf("live after expire = %d", g.Len())
	}
	if st := g.Stats(); st.Expiries != 1 {
		t.Errorf("expiries = %d", st.Expiries)
	}
	// The expired worker must also have left the ring.
	if owners := g.Owners("anything", 5); len(owners) != 1 || owners[0].ID != "fresh" {
		t.Errorf("Owners after expire = %+v", owners)
	}
}

func TestCacheSuccessCachedErrorsRetried(t *testing.T) {
	var c Cache
	calls := 0
	fail := errors.New("transient")
	_, err := c.Do(context.Background(), "k", func() ([]byte, error) { calls++; return nil, fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.Do(context.Background(), "k", func() ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("second Do: %q, %v", v, err)
	}
	v, err = c.Do(context.Background(), "k", func() ([]byte, error) { calls++; return nil, errors.New("never runs") })
	if err != nil || string(v) != "ok" {
		t.Fatalf("cached Do: %q, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (error retried, success cached)", calls)
	}
	if _, ok := c.Peek("k"); !ok {
		t.Error("Peek should find completed entry")
	}
	if _, ok := c.Peek("missing"); ok {
		t.Error("Peek of unknown key should miss")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d/%d, want 1 hit / 2 misses", hits, misses)
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache
	var running atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				running.Add(1)
				<-start
				return []byte("shared"), nil
			})
			if err != nil || string(v) != "shared" {
				t.Errorf("Do: %q, %v", v, err)
			}
		}()
	}
	// Wait until the single computation is in flight, then release it.
	for running.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(start)
	wg.Wait()
	if n := running.Load(); n != 1 {
		t.Errorf("%d computations ran, want 1", n)
	}
}

// fakeWorker is an httptest worker answering shard POSTs and cache GETs.
type fakeWorker struct {
	t        *testing.T
	id       string
	mu       sync.Mutex
	cache    map[string][]byte
	executed []string
	respond  func(sh Shard) ([]byte, error) // nil = echo key
	srv      *httptest.Server
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	f := &fakeWorker{t: t, id: id, cache: make(map[string][]byte)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/shard", func(w http.ResponseWriter, r *http.Request) {
		var sh Shard
		if err := json.NewDecoder(r.Body).Decode(&sh); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		f.executed = append(f.executed, sh.Key())
		f.mu.Unlock()
		body := []byte(`{"from":"` + f.id + `","key":"` + sh.Key() + `"}`)
		if f.respond != nil {
			var err error
			body, err = f.respond(sh)
			if err != nil {
				http.Error(w, `{"error":"`+err.Error()+`"}`, http.StatusInternalServerError)
				return
			}
		}
		f.mu.Lock()
		f.cache[sh.Key()] = body
		f.mu.Unlock()
		w.Write(body)
	})
	mux.HandleFunc("GET /v1/cluster/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		body, ok := f.cache[r.PathValue("key")]
		f.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"miss"}`, http.StatusNotFound)
			return
		}
		w.Write(body)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) executions() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.executed...)
}

func (f *fakeWorker) register(g *Registry) {
	if _, err := g.Register(RegisterRequest{ID: f.id, URL: f.srv.URL}); err != nil {
		f.t.Fatalf("register %s: %v", f.id, err)
	}
}

func testShard(i int) Shard {
	return Shard{Kind: KindProfile, Digest: "dig", Workload: fmt.Sprintf("wl-%d", i)}
}

func TestSchedulerPlacesAndCaches(t *testing.T) {
	g := NewRegistry(time.Minute)
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	w1.register(g)
	w2.register(g)
	s := &Scheduler{Registry: g}

	sh := testShard(1)
	b1, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("repeat run differs: %s vs %s", b1, b2)
	}
	if n := len(w1.executions()) + len(w2.executions()); n != 1 {
		t.Errorf("%d executions, want 1 (second run from coordinator cache)", n)
	}
	st := s.Stats()
	if st.Placed != 1 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSchedulerConsistentPlacement(t *testing.T) {
	g := NewRegistry(time.Minute)
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2"), newFakeWorker(t, "w3")}
	for _, w := range workers {
		w.register(g)
	}
	s := &Scheduler{Registry: g}
	// Each shard must be executed by its ring owner.
	for i := 0; i < 12; i++ {
		sh := testShard(i)
		if _, err := s.Run(context.Background(), sh); err != nil {
			t.Fatal(err)
		}
		owner, _ := g.ring.Owner(sh.Key())
		found := false
		for _, w := range workers {
			for _, k := range w.executions() {
				if k == sh.Key() {
					if w.id != owner {
						t.Errorf("shard %d executed on %s, ring owner is %s", i, w.id, owner)
					}
					found = true
				}
			}
		}
		if !found {
			t.Errorf("shard %d never executed", i)
		}
	}
}

func TestSchedulerRetriesOnDeadWorker(t *testing.T) {
	g := NewRegistry(time.Minute)
	workers := []*fakeWorker{newFakeWorker(t, "w1"), newFakeWorker(t, "w2")}
	for _, w := range workers {
		w.register(g)
	}
	// Find a shard owned by w1, then kill w1's server so the dispatch fails
	// at the transport level and must retry on w2.
	var sh Shard
	for i := 0; ; i++ {
		sh = testShard(i)
		if owner, _ := g.ring.Owner(sh.Key()); owner == "w1" {
			break
		}
	}
	workers[0].srv.Close()
	s := &Scheduler{Registry: g}
	body, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatalf("Run through dead owner: %v", err)
	}
	if want := `"from":"w2"`; !contains(string(body), want) {
		t.Errorf("body %s, want executed by w2", body)
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Errorf("retries = %d, want 1", st.Retries)
	}
}

func TestSchedulerPropagatesApplicationFailure(t *testing.T) {
	g := NewRegistry(time.Minute)
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	w1.respond = func(Shard) ([]byte, error) { return nil, errors.New("bad workload") }
	w2.respond = w1.respond
	w1.register(g)
	w2.register(g)
	s := &Scheduler{Registry: g}
	_, err := s.Run(context.Background(), testShard(1))
	var werr *WorkerError
	if !errors.As(err, &werr) || werr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want WorkerError 500", err)
	}
	// Deterministic failure: exactly one worker was asked.
	if n := len(w1.executions()) + len(w2.executions()); n != 1 {
		t.Errorf("%d executions, want 1 (no retry on application failure)", n)
	}
	// And the failure is not cached: a later Run asks again.
	if _, err := s.Run(context.Background(), testShard(1)); err == nil {
		t.Error("second run should fail again")
	}
	if n := len(w1.executions()) + len(w2.executions()); n != 2 {
		t.Errorf("%d executions after retry, want 2 (errors not cached)", n)
	}
}

func TestSchedulerNoWorkers(t *testing.T) {
	s := &Scheduler{Registry: NewRegistry(time.Minute)}
	_, err := s.Run(context.Background(), testShard(1))
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestSchedulerPeerCacheHit(t *testing.T) {
	g := NewRegistry(time.Minute)
	w1 := newFakeWorker(t, "w1")
	w2 := newFakeWorker(t, "w2")
	w1.register(g)
	w2.register(g)
	sh := testShard(7)
	// Pre-fill the NON-owner's cache: the peer scan must find it and no
	// worker may execute.
	owner, _ := g.ring.Owner(sh.Key())
	other := w1
	if owner == "w1" {
		other = w2
	}
	other.mu.Lock()
	other.cache[sh.Key()] = []byte(`{"from":"peer-cache"}`)
	other.mu.Unlock()

	s := &Scheduler{Registry: g}
	body, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(string(body), "peer-cache") {
		t.Errorf("body %s, want peer-cache payload", body)
	}
	if n := len(w1.executions()) + len(w2.executions()); n != 0 {
		t.Errorf("%d executions, want 0 (answered from peer cache)", n)
	}
	if st := s.Stats(); st.PeerHits != 1 {
		t.Errorf("peer hits = %d, want 1", st.PeerHits)
	}
}

func TestSchedulerStealsFromStraggler(t *testing.T) {
	g := NewRegistry(time.Minute)
	slow := newFakeWorker(t, "w1")
	fast := newFakeWorker(t, "w2")
	release := make(chan struct{})
	var stalled atomic.Bool
	slow.respond = func(sh Shard) ([]byte, error) {
		stalled.Store(true)
		<-release
		return []byte(`{"from":"w1-late"}`), nil
	}
	defer close(release)
	slow.register(g)
	fast.register(g)
	// Pick a shard owned by the slow worker.
	var sh Shard
	for i := 0; ; i++ {
		sh = testShard(i)
		if owner, _ := g.ring.Owner(sh.Key()); owner == "w1" {
			break
		}
	}
	s := &Scheduler{Registry: g, StealAfter: 30 * time.Millisecond}
	body, err := s.Run(context.Background(), sh)
	if err != nil {
		t.Fatal(err)
	}
	if !stalled.Load() {
		t.Fatal("owner never received the shard (test setup broken)")
	}
	if !contains(string(body), `"from":"w2"`) {
		t.Errorf("body %s, want stolen result from w2", body)
	}
	if st := s.Stats(); st.Steals != 1 {
		t.Errorf("steals = %d, want 1", st.Steals)
	}
}

func TestSchedulerRunAllOrdered(t *testing.T) {
	g := NewRegistry(time.Minute)
	newFakeWorker(t, "w1").register(g)
	newFakeWorker(t, "w2").register(g)
	s := &Scheduler{Registry: g}
	shards := make([]Shard, 9)
	for i := range shards {
		shards[i] = testShard(i)
	}
	got, err := s.RunAll(context.Background(), 4, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if !contains(string(b), shards[i].Key()) {
			t.Errorf("result %d out of order: %s", i, b)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
