package cluster

import (
	"context"
	"sync"
	"sync/atomic"
)

// Cache is a singleflight cache of shard result payloads. It differs from
// exec.Memo in one deliberate way: only successes are cached. A shard's
// value is a pure function of its descriptor, but a *dispatch* can fail for
// transient reasons (dead worker, partition, drain) — caching that error
// would poison the key forever, so failures are shared with concurrent
// waiters and then forgotten, letting the next requester try again.
type Cache struct {
	mu       sync.Mutex
	inflight map[string]*cacheCall
	done     map[string][]byte

	hits, misses atomic.Uint64
}

type cacheCall struct {
	ch  chan struct{}
	val []byte
	err error
}

// Do returns the cached payload for key, computing it with fn on a miss.
// Requester semantics match exec.Memo: a caller waiting on someone else's
// in-flight computation stops waiting on ctx cancellation, but the
// computation itself runs to completion (fn must not observe ctx).
func (c *Cache) Do(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if v, ok := c.done[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v, nil
	}
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		select {
		case <-call.ch:
			return call.val, call.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	call := &cacheCall{ch: make(chan struct{})}
	if c.inflight == nil {
		c.inflight = make(map[string]*cacheCall)
	}
	c.inflight[key] = call
	c.mu.Unlock()
	c.misses.Add(1)

	call.val, call.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if call.err == nil {
		if c.done == nil {
			c.done = make(map[string][]byte)
		}
		c.done[key] = call.val
	}
	c.mu.Unlock()
	close(call.ch)
	return call.val, call.err
}

// Peek returns the completed payload for key without computing anything —
// the peer-cache lookup path.
func (c *Cache) Peek(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.done[key]
	return v, ok
}

// Len returns the number of completed entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Stats returns the hit/miss counters (a hit includes joining an in-flight
// computation).
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}
