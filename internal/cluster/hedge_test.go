package cluster

import (
	"testing"
	"time"
)

func TestHedgeDelayAdaptive(t *testing.T) {
	s := &Scheduler{StealAfter: 2 * time.Second, HedgeQuantile: 0.9}

	// Below hedgeMinSamples the fixed StealAfter is the fallback.
	if d := s.hedgeDelay(); d != 2*time.Second {
		t.Fatalf("delay with no samples = %v, want StealAfter", d)
	}
	// 10 samples at 400ms: p90 = 400ms, ×2 multiplier = 800ms — inside the
	// [StealAfter/4, StealAfter] = [500ms, 2s] clamp.
	for i := 0; i < 10; i++ {
		s.lat.observe(400 * time.Millisecond)
	}
	if d := s.hedgeDelay(); d != 800*time.Millisecond {
		t.Fatalf("adaptive delay = %v, want 800ms (2 × p90)", d)
	}
	// Fast shards cannot collapse the delay below StealAfter/4.
	for i := 0; i < latencyWindowCap; i++ {
		s.lat.observe(time.Millisecond)
	}
	if d := s.hedgeDelay(); d != 500*time.Millisecond {
		t.Fatalf("clamped-low delay = %v, want StealAfter/4", d)
	}
	// Slow shards cannot stretch it past StealAfter.
	for i := 0; i < latencyWindowCap; i++ {
		s.lat.observe(10 * time.Second)
	}
	if d := s.hedgeDelay(); d != 2*time.Second {
		t.Fatalf("clamped-high delay = %v, want StealAfter", d)
	}
	// Zero StealAfter disables hedging regardless of samples.
	s.StealAfter = 0
	if d := s.hedgeDelay(); d != 0 {
		t.Fatalf("delay with StealAfter=0 = %v, want 0", d)
	}
}

func TestHedgeBudget(t *testing.T) {
	s := &Scheduler{HedgeBurst: 2, HedgeRatio: 0.25}

	// The burst allowance covers the first two hedges with no credit earned.
	if !s.spendHedge() || !s.spendHedge() {
		t.Fatal("burst allowance refused a hedge")
	}
	if s.spendHedge() {
		t.Fatal("third hedge granted with no earned credit")
	}
	// Three placements earn 0.75 of a token — still short.
	for i := 0; i < 3; i++ {
		s.earnHedge()
	}
	if s.spendHedge() {
		t.Fatal("hedge granted at 0.75 earned tokens")
	}
	// The fourth placement completes the token.
	s.earnHedge()
	if !s.spendHedge() {
		t.Fatal("hedge refused with a full earned token")
	}
	if s.spendHedge() {
		t.Fatal("hedge granted beyond the budget")
	}
}
