package cluster

import (
	"sort"
	"sync"
	"time"
)

// Worker is one registered cluster member as the coordinator sees it.
type Worker struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	// Load is the worker's self-reported in-flight shard count from its most
	// recent heartbeat.
	Load int `json:"load"`
	// LastSeen is the time of the last successful heartbeat.
	LastSeen time.Time `json:"last_seen"`
}

// Registry tracks live workers and keeps the placement ring in sync with
// membership. Liveness is heartbeat-driven: a worker that misses heartbeats
// for longer than the TTL is expired (and its shards re-placed by the
// scheduler's retry path). Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	ttl     time.Duration
	workers map[string]*Worker
	ring    *Ring

	joins, leaves, expiries uint64

	// now is a test seam; nil means time.Now.
	now func() time.Time
}

// DefaultTTL is the heartbeat-miss window after which a worker is declared
// dead. Workers heartbeat every few seconds, so ~3 missed beats.
const DefaultTTL = 10 * time.Second

// NewRegistry returns an empty registry (ttl <= 0 uses DefaultTTL).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Registry{
		ttl:     ttl,
		workers: make(map[string]*Worker),
		ring:    NewRing(0),
	}
}

func (g *Registry) clock() time.Time {
	if g.now != nil {
		return g.now()
	}
	return time.Now()
}

// Register adds or refreshes a worker and reports whether it was new. A
// re-registration with a changed URL (worker restarted on a new port) keeps
// its ring position — the ID is the placement identity.
func (g *Registry) Register(req RegisterRequest) (isNew bool, err error) {
	if err := req.Validate(); err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	w, ok := g.workers[req.ID]
	if !ok {
		w = &Worker{ID: req.ID}
		g.workers[req.ID] = w
		g.ring.Add(req.ID)
		g.joins++
	}
	w.URL = req.URL
	w.Load = req.Load
	w.LastSeen = g.clock()
	return !ok, nil
}

// Deregister removes a worker (graceful drain) and reports whether it was
// present.
func (g *Registry) Deregister(id string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.workers[id]; !ok {
		return false
	}
	delete(g.workers, id)
	g.ring.Remove(id)
	g.leaves++
	return true
}

// Expire removes every worker whose last heartbeat is older than the TTL and
// returns the removed set (sorted by ID).
func (g *Registry) Expire() []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	cutoff := g.clock().Add(-g.ttl)
	var dead []Worker
	for id, w := range g.workers {
		if w.LastSeen.Before(cutoff) {
			dead = append(dead, *w)
			delete(g.workers, id)
			g.ring.Remove(id)
			g.expiries++
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].ID < dead[j].ID })
	return dead
}

// Snapshot returns the live workers sorted by ID.
func (g *Registry) Snapshot() []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Worker, 0, len(g.workers))
	for _, w := range g.workers {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the live worker count.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.workers)
}

// Owners returns up to n distinct placement candidates for key: the ring
// owner first, then failover candidates clockwise.
func (g *Registry) Owners(key string, n int) []Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := g.ring.Owners(key, n)
	out := make([]Worker, 0, len(ids))
	for _, id := range ids {
		if w, ok := g.workers[id]; ok {
			out = append(out, *w)
		}
	}
	return out
}

// RegistryStats is a point-in-time snapshot of membership churn, mirrored
// onto /metrics by the service.
type RegistryStats struct {
	Live     int
	Joins    uint64
	Leaves   uint64
	Expiries uint64
}

// Stats returns the churn counters.
func (g *Registry) Stats() RegistryStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return RegistryStats{
		Live:     len(g.workers),
		Joins:    g.joins,
		Leaves:   g.leaves,
		Expiries: g.expiries,
	}
}
