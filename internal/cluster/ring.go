// Package cluster is the distribution layer that scales hmemd from one
// process to a coordinator/worker fleet. It is deliberately small and
// dependency-free (stdlib plus the repo's own exec/obs primitives): a
// consistent-hash ring for shard placement, a worker registry with
// TTL-based liveness, a shard descriptor codec, and a scheduler that
// dispatches shards over HTTP with peer-cache lookup, bounded
// retry-on-another-worker, and work-stealing for stragglers.
//
// The correctness contract mirrors the rest of the repository: every shard
// is a pure function of its descriptor, so placement, retries, duplicate
// (stolen) executions, and worker churn can change wall-clock time but
// never bytes. The merge order of shard results is fixed by shard index,
// making cluster output byte-identical to standalone output at any worker
// count.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per ring member. 128 keeps the
// per-worker load imbalance within a few percent for the 3-16 worker
// clusters this targets while the ring stays tiny (a few KB).
const DefaultReplicas = 128

// Ring is a consistent-hash ring with virtual nodes. Placement goals, in
// order: (1) a shard key maps to the same worker as long as that worker is
// alive, so repeated identical shards land where the memo already holds the
// result; (2) a join or leave remaps only ~1/N of the key space. Not safe
// for concurrent use — the Registry serializes access.
type Ring struct {
	replicas int
	hashes   []uint64          // sorted vnode positions
	owner    map[uint64]string // vnode position -> node
	vlabel   map[uint64]string // vnode position -> label (collision tie-break)
	nodes    map[string]struct{}
}

// NewRing returns an empty ring (replicas <= 0 uses DefaultReplicas).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		vlabel:   make(map[uint64]string),
		nodes:    make(map[string]struct{}),
	}
}

// hashKey maps a string to a ring position. sha256 rather than a fast
// non-cryptographic hash: placement happens once per shard (simulations are
// seconds), and uniformity is what bounds worker imbalance.
func hashKey(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		label := node + "#" + strconv.Itoa(i)
		h := hashKey(label)
		// On the (astronomically unlikely) vnode hash collision, keep the
		// lexicographically smaller label so ring state is independent of
		// insertion order.
		if cur, ok := r.vlabel[h]; ok && cur <= label {
			continue
		}
		if _, ok := r.vlabel[h]; !ok {
			r.hashes = append(r.hashes, h)
		}
		r.vlabel[h] = label
		r.owner[h] = node
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a node and its vnodes (idempotent).
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	keep := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			delete(r.vlabel, h)
			continue
		}
		keep = append(keep, h)
	}
	r.hashes = keep
	// A removed node may have shadowed another's colliding vnode; re-adding
	// the survivors restores those positions. Collisions are ~2^-64 per pair,
	// so this loop body effectively never runs, but determinism is cheap.
	for other := range r.nodes {
		missing := false
		for i := 0; i < r.replicas; i++ {
			if _, ok := r.vlabel[hashKey(other+"#"+strconv.Itoa(i))]; !ok {
				missing = true
				break
			}
		}
		if missing {
			delete(r.nodes, other)
			r.Add(other)
		}
	}
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners walks clockwise from key's position and returns up to n distinct
// nodes: the owner first, then the natural failover/steal candidates in
// deterministic order.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if _, ok := seen[node]; ok {
			continue
		}
		seen[node] = struct{}{}
		out = append(out, node)
	}
	return out
}
