// Package cachesim implements the cache hierarchy used to filter CPU-level
// traces down to main-memory traffic, standing in for the Moola multicore
// cache simulator in the paper's methodology (§3.1: "to only capture the
// main memory activity, we perform cache filtering using Moola").
//
// The model is a classic set-associative, true-LRU, write-back,
// write-allocate cache. Hierarchies compose private L1 I/D caches with a
// shared L2 (Table 1: 32 KB 2-way L1I, 16 KB 4-way L1D, 16 MB 16-way L2).
package cachesim

import (
	"fmt"

	"hmem/internal/trace"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineSize  int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cachesim: %s: LineSize must be a positive power of two", c.Name)
	case c.Assoc <= 0:
		return fmt.Errorf("cachesim: %s: Assoc must be positive", c.Name)
	case c.SizeBytes <= 0 || c.SizeBytes%(c.LineSize*c.Assoc) != 0:
		return fmt.Errorf("cachesim: %s: SizeBytes must be a positive multiple of LineSize*Assoc", c.Name)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

type way struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a single set-associative write-back cache. Not safe for
// concurrent use.
type Cache struct {
	cfg     Config
	sets    [][]way
	setMask uint64
	shift   uint
	clock   uint64
	stats   Stats
}

// New builds a cache. Invalid configurations are returned as errors, not
// panicked: cache geometry can come from request-scoped option sets (scale
// divisors), so a bad shape must fail one call, not the process.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.LineSize * cfg.Assoc)
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cachesim: %s: set count %d must be a power of two", cfg.Name, nsets)
	}
	c := &Cache{cfg: cfg, setMask: uint64(nsets - 1)}
	for s := uint(0); 1<<s < cfg.LineSize; s++ {
		c.shift = s + 1
	}
	c.sets = make([][]way, nsets)
	backing := make([]way, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Fill is true when a miss requires fetching the line from below.
	Fill bool
	// Writeback holds the victim's byte address when a dirty line was
	// evicted; valid only when HasWriteback is true.
	Writeback    uint64
	HasWriteback bool
}

// Access performs a read (write=false) or write (write=true) of the line
// containing addr and returns what the next level must do.
func (c *Cache) Access(addr uint64, write bool) Result {
	lineAddr := addr >> c.shift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(len64(c.setMask))
	c.clock++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++

	// Choose victim: first invalid way, else true-LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	res := Result{Fill: true}
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
			victimLine := set[victim].tag<<uint(len64(c.setMask)) | (lineAddr & c.setMask)
			res.Writeback = victimLine << c.shift
			res.HasWriteback = true
		}
	}
	set[victim] = way{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

// Contains reports whether the line holding addr is resident (no LRU side
// effects). Used by tests.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.shift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(len64(c.setMask))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// len64 returns the number of bits needed to represent mask (mask is 2^k-1).
func len64(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// HierarchyConfig configures one core's cache stack. L2 may be shared
// between hierarchies by passing the same *Cache to NewHierarchy.
type HierarchyConfig struct {
	L1I Config
	L1D Config
}

// Table1Hierarchy returns the paper's per-core L1 configuration.
func Table1Hierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{Name: "L1I", SizeBytes: 32 * 1024, Assoc: 2, LineSize: trace.LineSize},
		L1D: Config{Name: "L1D", SizeBytes: 16 * 1024, Assoc: 4, LineSize: trace.LineSize},
	}
}

// Table1L2 returns the paper's shared L2 configuration (16 MB, 16-way).
// A scale divisor shrinks it for reduced-scale experiments.
func Table1L2(scaleDiv int) Config {
	if scaleDiv < 1 {
		scaleDiv = 1
	}
	return Config{Name: "L2", SizeBytes: 16 * 1024 * 1024 / scaleDiv, Assoc: 16, LineSize: trace.LineSize}
}

// Hierarchy filters one core's CPU-level accesses through private L1s and a
// (possibly shared) L2, emitting only main-memory traffic.
type Hierarchy struct {
	l1i, l1d *Cache
	l2       *Cache
}

// NewHierarchy builds a per-core hierarchy on top of a shared L2.
func NewHierarchy(cfg HierarchyConfig, l2 *Cache) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{l1i: l1i, l1d: l1d, l2: l2}, nil
}

// L1I, L1D, and L2 expose the component caches (for stats).
func (h *Hierarchy) L1I() *Cache { return h.l1i }
func (h *Hierarchy) L1D() *Cache { return h.l1d }
func (h *Hierarchy) L2() *Cache  { return h.l2 }

// Filter pushes one CPU-level record through the hierarchy and appends any
// resulting main-memory requests to out (fills as reads, L2 dirty evictions
// as writes), returning the extended slice. The caller owns gap accounting.
func (h *Hierarchy) Filter(rec trace.Record, out []trace.Record) []trace.Record {
	l1 := h.l1d
	if rec.Kind == trace.InstFetch {
		l1 = h.l1i
	}
	r1 := l1.Access(rec.Addr, rec.Kind.IsWrite())
	if r1.HasWriteback {
		// L1 victim is written into L2 (write-back); may cascade.
		out = h.accessL2(trace.Record{Addr: r1.Writeback, PC: rec.PC, Kind: trace.Write}, true, out)
	}
	if r1.Hit {
		return out
	}
	// L1 miss: fill from L2. The fill itself is a read at L2 regardless of
	// whether the missing access was a write (write-allocate).
	return h.accessL2(trace.Record{Addr: rec.Addr, PC: rec.PC, Kind: trace.Read}, false, out)
}

// accessL2 performs an L2 access; isWriteback marks L1 victim installs.
func (h *Hierarchy) accessL2(rec trace.Record, isWriteback bool, out []trace.Record) []trace.Record {
	res := h.l2.Access(rec.Addr, isWriteback)
	if res.HasWriteback {
		out = append(out, trace.Record{Addr: res.Writeback, PC: rec.PC, Kind: trace.Write})
	}
	if res.Fill && !isWriteback {
		out = append(out, trace.Record{Addr: rec.Addr, PC: rec.PC, Kind: trace.Read})
	} else if res.Fill && isWriteback {
		// Dirty L1 victim missed in L2: the line is installed dirty and
		// will reach memory when evicted; no immediate memory read is
		// needed because the victim carries the full line.
		_ = res
	}
	return out
}

// FilterStream adapts a CPU-level trace.Stream into a main-memory-level
// stream, accumulating instruction gaps across filtered (cache-hit)
// requests: a hit still costs roughly one instruction slot, so hits add one
// instruction each to the gap of the next emitted request.
type FilterStream struct {
	src     trace.Stream
	h       *Hierarchy
	pending []trace.Record
	gap     uint64
	done    bool
}

// NewFilterStream wraps src with hierarchy h.
func NewFilterStream(src trace.Stream, h *Hierarchy) *FilterStream {
	return &FilterStream{src: src, h: h}
}

// Next implements trace.Stream.
func (f *FilterStream) Next() (trace.Record, error) {
	for {
		if len(f.pending) > 0 {
			out := f.pending[0]
			f.pending = f.pending[1:]
			out.Gap = clampGap(f.gap)
			f.gap = 0
			return out, nil
		}
		if f.done {
			return trace.Record{}, errEOF
		}
		rec, err := f.src.Next()
		if err != nil {
			f.done = true
			if isEOF(err) {
				return trace.Record{}, errEOF
			}
			return trace.Record{}, err
		}
		f.gap += uint64(rec.Gap)
		before := len(f.pending)
		f.pending = f.h.Filter(rec, f.pending)
		if len(f.pending) == before {
			// Fully filtered: the access cost one instruction slot.
			f.gap++
		}
	}
}
