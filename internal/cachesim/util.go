package cachesim

import (
	"errors"
	"io"
	"math"
)

var errEOF = io.EOF

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// clampGap saturates an accumulated instruction gap into the 32-bit record
// field.
func clampGap(g uint64) uint32 {
	if g > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(g)
}
