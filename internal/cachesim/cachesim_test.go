package cachesim

import (
	"errors"
	"io"
	"testing"
	"testing/quick"

	"hmem/internal/trace"
	"hmem/internal/xrand"
)

func tiny() Config {
	return Config{Name: "T", SizeBytes: 1024, Assoc: 2, LineSize: 64} // 8 sets
}

func mustNew(tb testing.TB, cfg Config) *Cache {
	tb.Helper()
	c, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func mustHierarchy(tb testing.TB, cfg HierarchyConfig, l2 *Cache) *Hierarchy {
	tb.Helper()
	h, err := NewHierarchy(cfg, l2)
	if err != nil {
		tb.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "a", SizeBytes: 1024, Assoc: 2, LineSize: 0},
		{Name: "b", SizeBytes: 1024, Assoc: 2, LineSize: 48},
		{Name: "c", SizeBytes: 1024, Assoc: 0, LineSize: 64},
		{Name: "d", SizeBytes: 0, Assoc: 2, LineSize: 64},
		{Name: "e", SizeBytes: 1000, Assoc: 2, LineSize: 64},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", c.Name)
		}
	}
}

func TestNewRejectsNonPow2Sets(t *testing.T) {
	if _, err := New(Config{Name: "x", SizeBytes: 3 * 64 * 2, Assoc: 2, LineSize: 64}); err == nil { // 3 sets
		t.Fatal("expected error")
	}
	if _, err := New(Config{Name: "y", SizeBytes: 1000, Assoc: 2, LineSize: 64}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustNew(t, tiny())
	r := c.Access(0x1000, false)
	if r.Hit || !r.Fill {
		t.Fatalf("first access should miss+fill: %+v", r)
	}
	r = c.Access(0x1000, false)
	if !r.Hit {
		t.Fatalf("second access should hit: %+v", r)
	}
	// Same line, different byte offset.
	if r = c.Access(0x1004, false); !r.Hit {
		t.Fatalf("same-line access should hit: %+v", r)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, tiny()) // 8 sets, 2-way; set stride = 64*8 = 512
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, tiny())
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false) // evicts line 0 (dirty)
	if !r.HasWriteback || r.Writeback != 0 {
		t.Fatalf("expected writeback of addr 0: %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// Clean eviction: no writeback.
	r = c.Access(1536, false) // evicts 512 (clean)
	if r.HasWriteback {
		t.Fatalf("clean eviction produced writeback: %+v", r)
	}
}

func TestWritebackAddressReconstruction(t *testing.T) {
	c := mustNew(t, tiny())
	addr := uint64(0x13A40) // arbitrary
	c.Access(addr, true)
	set := (addr / 64) & 7
	// Fill the same set until the dirty line is evicted.
	var wb Result
	for i := uint64(1); i < 3; i++ {
		wb = c.Access(addr+i*512, false)
	}
	if !wb.HasWriteback {
		t.Fatal("dirty line never evicted")
	}
	if (wb.Writeback/64)&7 != set {
		t.Fatalf("writeback %x not in victim's set", wb.Writeback)
	}
	if wb.Writeback != addr&^uint64(63) {
		t.Fatalf("writeback addr = %#x, want %#x", wb.Writeback, addr&^uint64(63))
	}
}

func TestMissRateSmallWorkingSet(t *testing.T) {
	c := mustNew(t, tiny())
	// Working set fits: after warmup, all hits.
	for pass := 0; pass < 10; pass++ {
		for line := uint64(0); line < 16; line++ {
			c.Access(line*64, false)
		}
	}
	// Exactly the 16 cold misses; every subsequent pass hits.
	if m := c.Stats().Misses; m != 16 {
		t.Fatalf("resident working set misses = %d, want 16 (cold only)", m)
	}
	// Streaming working set 100x the cache: high miss rate.
	c2 := mustNew(t, tiny())
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < 1600; line++ {
			c2.Access(line*64, false)
		}
	}
	if mr := c2.Stats().MissRate(); mr < 0.99 {
		t.Fatalf("streaming miss rate = %v, want ~1", mr)
	}
}

func TestStatsConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := mustNew(t, tiny())
		rng := xrand.New(seed)
		n := 200 + rng.Intn(800)
		for i := 0; i < n; i++ {
			c.Access(rng.Uint64n(1<<16)&^63, rng.Bool(0.3))
		}
		st := c.Stats()
		return st.Hits+st.Misses == uint64(n) &&
			st.Writebacks <= st.Evictions &&
			st.Evictions <= st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyFiltersHits(t *testing.T) {
	l2 := mustNew(t, Table1L2(16))
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	var out []trace.Record
	// First access misses everywhere -> one memory read.
	out = h.Filter(trace.Record{Addr: 0x8000, Kind: trace.Read}, out)
	if len(out) != 1 || out[0].Kind != trace.Read || out[0].Addr != 0x8000 {
		t.Fatalf("cold miss output = %+v", out)
	}
	// Repeat: L1 hit -> no memory traffic.
	out = h.Filter(trace.Record{Addr: 0x8000, Kind: trace.Read}, nil)
	if len(out) != 0 {
		t.Fatalf("L1 hit produced memory traffic: %+v", out)
	}
}

func TestHierarchyInstFetchUsesL1I(t *testing.T) {
	l2 := mustNew(t, Table1L2(16))
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	h.Filter(trace.Record{Addr: 0x4000, Kind: trace.InstFetch}, nil)
	if h.L1I().Stats().Misses != 1 || h.L1D().Stats().Misses != 0 {
		t.Fatal("instruction fetch did not route to L1I")
	}
	h.Filter(trace.Record{Addr: 0x4000, Kind: trace.Read}, nil)
	if h.L1D().Stats().Misses != 1 {
		t.Fatal("data read did not route to L1D")
	}
}

func TestHierarchyDirtyEvictionReachesMemory(t *testing.T) {
	// Small L2 so we can force evictions quickly.
	l2 := mustNew(t, Config{Name: "L2", SizeBytes: 4096, Assoc: 2, LineSize: 64}) // 32 sets
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	// Dirty a line (write misses L1, fills L2; L1 holds it dirty).
	h.Filter(trace.Record{Addr: 0, Kind: trace.Write}, nil)
	// Force the dirty line out of L1D (16KB/4-way: 64 sets, stride 4096).
	var memWrites int
	for i := uint64(1); i < 400; i++ {
		out := h.Filter(trace.Record{Addr: i * 4096 * 16, Kind: trace.Read}, nil)
		for _, r := range out {
			if r.Kind == trace.Write {
				memWrites++
			}
		}
	}
	if memWrites == 0 {
		t.Fatal("dirty data never reached memory")
	}
}

func TestFilterStreamGapAccumulation(t *testing.T) {
	l2 := mustNew(t, Table1L2(16))
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	src := trace.NewSliceStream([]trace.Record{
		{Gap: 10, Addr: 0x1000, Kind: trace.Read}, // cold miss -> emitted
		{Gap: 5, Addr: 0x1000, Kind: trace.Read},  // hit -> filtered
		{Gap: 7, Addr: 0x1000, Kind: trace.Read},  // hit -> filtered
		{Gap: 3, Addr: 0x2000, Kind: trace.Read},  // cold miss -> emitted
	})
	fs := NewFilterStream(src, h)
	r1, err := fs.Next()
	if err != nil || r1.Addr != 0x1000 || r1.Gap != 10 {
		t.Fatalf("first emission: %+v, %v", r1, err)
	}
	r2, err := fs.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Gap = 5 + 7 (+2 for the two filtered accesses) + 3 = 17.
	if r2.Addr != 0x2000 || r2.Gap != 17 {
		t.Fatalf("second emission: %+v, want gap 17", r2)
	}
	if _, err := fs.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestFilterStreamEOFIsSticky(t *testing.T) {
	l2 := mustNew(t, Table1L2(16))
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	fs := NewFilterStream(trace.NewSliceStream(nil), h)
	for i := 0; i < 3; i++ {
		if _, err := fs.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("call %d: expected EOF, got %v", i, err)
		}
	}
}

func TestSharedL2AcrossHierarchies(t *testing.T) {
	l2 := mustNew(t, Table1L2(16))
	h1 := mustHierarchy(t, Table1Hierarchy(), l2)
	h2 := mustHierarchy(t, Table1Hierarchy(), l2)
	// Core 1 brings a line into shared L2.
	h1.Filter(trace.Record{Addr: 0xA000, Kind: trace.Read}, nil)
	// Core 2 misses L1 but should hit shared L2 -> no memory traffic.
	out := h2.Filter(trace.Record{Addr: 0xA000, Kind: trace.Read}, nil)
	if len(out) != 0 {
		t.Fatalf("shared L2 miss: %+v", out)
	}
}

func TestFilterReducesTraffic(t *testing.T) {
	l2 := mustNew(t, Table1L2(64))
	h := mustHierarchy(t, Table1Hierarchy(), l2)
	rng := xrand.New(42)
	// 80/20 locality: most accesses to a small hot set.
	emitted := 0
	const n = 20000
	for i := 0; i < n; i++ {
		var addr uint64
		if rng.Bool(0.8) {
			addr = rng.Uint64n(64) * 64 // hot: 4 KB
		} else {
			addr = rng.Uint64n(1<<22) &^ 63
		}
		out := h.Filter(trace.Record{Addr: addr, Kind: trace.Read}, nil)
		emitted += len(out)
	}
	if ratio := float64(emitted) / n; ratio > 0.5 {
		t.Fatalf("cache filtered only %.0f%% of traffic", 100*(1-ratio))
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mustNew(b, Table1L2(1))
	rng := xrand.New(3)
	addrs := make([]uint64, 1<<14)
	for i := range addrs {
		addrs[i] = rng.Uint64n(1<<28) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<14-1)], i&7 == 0)
	}
}

func BenchmarkHierarchyFilter(b *testing.B) {
	l2 := mustNew(b, Table1L2(4))
	h := mustHierarchy(b, Table1Hierarchy(), l2)
	rng := xrand.New(3)
	buf := make([]trace.Record, 0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = h.Filter(trace.Record{Addr: rng.Uint64n(1<<26) &^ 63, Kind: trace.Read}, buf[:0])
	}
}
