package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text trace format: one record per line,
//
//	<gap> <kind> <pc-hex> <addr-hex>
//
// e.g. "125 R 0x400040 0x7f3a1000". Lines starting with '#' and blank lines
// are ignored. The format exists for interop with external tools and for
// eyeballing traces; the binary format (trace.Writer/Reader) is the fast
// path.

// WriteText serializes a stream of records as text.
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# hmem text trace: gap kind pc addr")
	for i, r := range recs {
		if _, err := fmt.Fprintf(bw, "%d %s 0x%x 0x%x\n", r.Gap, r.Kind, r.PC, r.Addr); err != nil {
			return fmt.Errorf("trace: writing text record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ErrBadTextRecord indicates a malformed text-trace line.
var ErrBadTextRecord = errors.New("trace: malformed text record")

// ParseTextRecord decodes one text-format line.
func ParseTextRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("%w: %q (want 4 fields)", ErrBadTextRecord, line)
	}
	gap, err := strconv.ParseUint(fields[0], 10, 32)
	if err != nil {
		return Record{}, fmt.Errorf("%w: gap in %q: %v", ErrBadTextRecord, line, err)
	}
	var kind Kind
	switch fields[1] {
	case "R":
		kind = Read
	case "W":
		kind = Write
	case "I":
		kind = InstFetch
	default:
		return Record{}, fmt.Errorf("%w: kind %q", ErrBadTextRecord, fields[1])
	}
	pc, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: pc in %q: %v", ErrBadTextRecord, line, err)
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), 16, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: addr in %q: %v", ErrBadTextRecord, line, err)
	}
	return Record{Gap: uint32(gap), Kind: kind, PC: pc, Addr: addr}, nil
}

// TextReader decodes a text trace as a Stream.
type TextReader struct {
	s    *bufio.Scanner
	line int
}

// NewTextReader wraps r.
func NewTextReader(r io.Reader) *TextReader {
	return &TextReader{s: bufio.NewScanner(r)}
}

// Next implements Stream.
func (t *TextReader) Next() (Record, error) {
	for t.s.Scan() {
		t.line++
		line := strings.TrimSpace(t.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseTextRecord(line)
		if err != nil {
			return Record{}, fmt.Errorf("line %d: %w", t.line, err)
		}
		return rec, nil
	}
	if err := t.s.Err(); err != nil {
		return Record{}, fmt.Errorf("trace: reading text trace: %w", err)
	}
	return Record{}, io.EOF
}
