package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

func TestGranularityHelpers(t *testing.T) {
	r := Record{Addr: 2*PageSize + 3*LineSize + 7}
	if got := r.Line(); got != 2*LinesPerPage+3 {
		t.Errorf("Line() = %d", got)
	}
	if got := r.Page(); got != 2 {
		t.Errorf("Page() = %d", got)
	}
	if PageOfLine(r.Line()) != r.Page() {
		t.Error("PageOfLine inconsistent with Page")
	}
	if LineOf(r.Addr) != r.Line() || PageOf(r.Addr) != r.Page() {
		t.Error("free functions inconsistent with methods")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Read: "R", Write: "W", InstFetch: "I", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Read.IsWrite() || InstFetch.IsWrite() || !Write.IsWrite() {
		t.Error("IsWrite wrong")
	}
}

func TestSliceStream(t *testing.T) {
	recs := []Record{{Gap: 1}, {Gap: 2}, {Gap: 3}}
	s := NewSliceStream(recs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := 0; i < 3; i++ {
		r, err := s.Next()
		if err != nil || r.Gap != uint32(i+1) {
			t.Fatalf("record %d: %v %v", i, r, err)
		}
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
	s.Reset()
	if r, err := s.Next(); err != nil || r.Gap != 1 {
		t.Fatalf("after Reset: %v %v", r, err)
	}
}

func TestCollectAndLimit(t *testing.T) {
	recs := make([]Record, 10)
	for i := range recs {
		recs[i].Gap = uint32(i)
	}
	got, err := Collect(NewSliceStream(recs), 0)
	if err != nil || len(got) != 10 {
		t.Fatalf("Collect unbounded: %d, %v", len(got), err)
	}
	got, err = Collect(NewSliceStream(recs), 4)
	if err != nil || len(got) != 4 {
		t.Fatalf("Collect bounded: %d, %v", len(got), err)
	}
	lim := Limit(NewSliceStream(recs), 3)
	got, err = Collect(lim, 0)
	if err != nil || len(got) != 3 {
		t.Fatalf("Limit: %d, %v", len(got), err)
	}
	// Limit larger than stream just drains it.
	got, err = Collect(Limit(NewSliceStream(recs), 100), 0)
	if err != nil || len(got) != 10 {
		t.Fatalf("Limit oversize: %d, %v", len(got), err)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := xrand.New(99)
	recs := make([]Record, 1000)
	for i := range recs {
		recs[i] = Record{
			Gap:  uint32(rng.Uint64n(1 << 20)),
			PC:   rng.Uint64(),
			Addr: rng.Uint64(),
			Kind: Kind(rng.Intn(3)),
		}
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(recs) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(gap uint32, pc, addr uint64, kindRaw uint8) bool {
		rec := Record{Gap: gap, PC: pc, Addr: addr, Kind: Kind(kindRaw % 3)}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if w.Write(rec) != nil || w.Close() != nil {
			return false
		}
		rd, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return false
		}
		got, err := rd.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRACEFILE___")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
}

func TestShortHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("HME")))
	if err == nil {
		t.Fatal("expected error on short header")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Addr: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the last few bytes off the record.
	data := buf.Bytes()[:buf.Len()-5]
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("expected ErrTruncated, got %v", err)
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF on empty trace, got %v", err)
	}
}

func BenchmarkWriterWrite(b *testing.B) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	r := Record{Gap: 100, PC: 0x400000, Addr: 0x10000, Kind: Read}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReaderNext(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 4096; i++ {
		_ = w.Write(Record{Gap: uint32(i), Addr: uint64(i) * 64})
	}
	_ = w.Close()
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd, _ := NewReader(bytes.NewReader(data))
		for {
			if _, err := rd.Next(); err != nil {
				break
			}
		}
	}
}
