package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

func TestTextRoundTrip(t *testing.T) {
	rng := xrand.New(44)
	recs := make([]Record, 200)
	for i := range recs {
		recs[i] = Record{
			Gap:  uint32(rng.Uint64n(1 << 20)),
			PC:   rng.Uint64(),
			Addr: rng.Uint64(),
			Kind: Kind(rng.Intn(3)),
		}
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	r := NewTextReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestTextRoundTripProperty(t *testing.T) {
	f := func(gap uint32, pc, addr uint64, kindRaw uint8) bool {
		want := Record{Gap: gap, PC: pc, Addr: addr, Kind: Kind(kindRaw % 3)}
		var buf bytes.Buffer
		if WriteText(&buf, []Record{want}) != nil {
			return false
		}
		got, err := NewTextReader(&buf).Next()
		return err == nil && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n  \n10 R 0x400 0x1000\n# trailing comment\n5 W 0x404 0x2040\n"
	r := NewTextReader(strings.NewReader(in))
	a, err := r.Next()
	if err != nil || a.Gap != 10 || a.Kind != Read || a.Addr != 0x1000 {
		t.Fatalf("first = %+v, %v", a, err)
	}
	b, err := r.Next()
	if err != nil || b.Gap != 5 || b.Kind != Write || b.PC != 0x404 {
		t.Fatalf("second = %+v, %v", b, err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestParseTextRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"1 2 3",
		"x R 0x1 0x2",
		"1 Q 0x1 0x2",
		"1 R zz 0x2",
		"1 R 0x1 zz",
		"1 R 0x1 0x2 extra",
	}
	for _, line := range bad {
		if _, err := ParseTextRecord(line); !errors.Is(err, ErrBadTextRecord) {
			t.Errorf("%q: expected ErrBadTextRecord, got %v", line, err)
		}
	}
}

func TestTextReaderReportsLineNumbers(t *testing.T) {
	r := NewTextReader(strings.NewReader("# ok\n10 R 0x1 0x2\ngarbage here\n"))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("expected line-3 error, got %v", err)
	}
}

func TestTextInstFetch(t *testing.T) {
	rec, err := ParseTextRecord("7 I 0xdead 0xbeef")
	if err != nil || rec.Kind != InstFetch {
		t.Fatalf("got %+v, %v", rec, err)
	}
}
