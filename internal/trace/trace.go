// Package trace defines the memory-trace representation shared by the whole
// simulator: the per-request record, per-core streams, and a compact binary
// on-disk format.
//
// The record layout mirrors the paper's trace contents (§3.1): "the number of
// intervening non-memory instructions, program counter, memory address, and
// request type ... for every memory request". Addresses are byte addresses;
// the memory system operates at 64-byte cache-line granularity and placement
// policies at 4 KiB page granularity, so helpers for both roundings live
// here.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Architectural granularities used throughout the simulator.
const (
	// LineSize is the cache-line size in bytes; DRAM requests move one line.
	LineSize = 64
	// PageSize is the OS page size in bytes; placement decisions move pages.
	PageSize = 4096
	// LinesPerPage is the number of cache lines in one page.
	LinesPerPage = PageSize / LineSize
)

// Kind distinguishes request types in a trace.
type Kind uint8

const (
	// Read is a data read (cache-line fill).
	Read Kind = iota
	// Write is a data write (dirty line write-back from the CPU's view).
	Write
	// InstFetch is an instruction fetch. The cache filter treats it as a
	// read through the I-cache; the memory system treats it as a read.
	InstFetch
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "R"
	case Write:
		return "W"
	case InstFetch:
		return "I"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsWrite reports whether the request modifies memory.
func (k Kind) IsWrite() bool { return k == Write }

// Record is one memory request in a trace.
type Record struct {
	// Gap is the number of non-memory instructions executed by the core
	// since its previous memory request.
	Gap uint32
	// PC is the program counter of the requesting instruction.
	PC uint64
	// Addr is the byte address accessed.
	Addr uint64
	// Kind is the request type.
	Kind Kind
}

// Line returns the cache-line index of the record's address.
func (r Record) Line() uint64 { return r.Addr / LineSize }

// Page returns the 4 KiB page index of the record's address.
func (r Record) Page() uint64 { return r.Addr / PageSize }

// LineOf returns the cache-line index of a byte address.
func LineOf(addr uint64) uint64 { return addr / LineSize }

// PageOf returns the 4 KiB page index of a byte address.
func PageOf(addr uint64) uint64 { return addr / PageSize }

// PageOfLine returns the page index containing a cache-line index.
func PageOfLine(line uint64) uint64 { return line / LinesPerPage }

// Stream produces a sequence of records for one core. Implementations
// include on-the-fly workload generators, file readers, and the cache
// filter. Next returns io.EOF after the final record.
type Stream interface {
	Next() (Record, error)
}

// SliceStream adapts a materialized record slice into a Stream.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream returns a Stream over recs. The slice is not copied.
func NewSliceStream(recs []Record) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Record, error) {
	if s.pos >= len(s.recs) {
		return Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Len returns the total number of records in the stream.
func (s *SliceStream) Len() int { return len(s.recs) }

// Collect drains a stream into a slice, stopping at io.EOF or after max
// records (max <= 0 means unbounded). Any error other than io.EOF is
// returned with the records read so far.
func Collect(s Stream, max int) ([]Record, error) {
	var out []Record
	for max <= 0 || len(out) < max {
		r, err := s.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Limit wraps a stream so that it yields at most n records.
func Limit(s Stream, n int) Stream { return &limitStream{s: s, left: n} }

type limitStream struct {
	s    Stream
	left int
}

func (l *limitStream) Next() (Record, error) {
	if l.left <= 0 {
		return Record{}, io.EOF
	}
	r, err := l.s.Next()
	if err == nil {
		l.left--
	}
	return r, err
}

// ---- Binary encoding -------------------------------------------------------
//
// The on-disk format is a little-endian framed stream:
//
//	magic  [8]byte  "HMEMTRC1"
//	record *        { gap uint32, kind uint8, pad [3]byte, pc uint64, addr uint64 }
//
// Fixed 24-byte records keep the reader allocation-free and seekable.

var magic = [8]byte{'H', 'M', 'E', 'M', 'T', 'R', 'C', '1'}

const recordSize = 24

// ErrBadMagic indicates the input is not an hmem trace file.
var ErrBadMagic = errors.New("trace: bad magic (not an hmem trace file)")

// ErrTruncated indicates a record was cut short at end of input.
var ErrTruncated = errors.New("trace: truncated record")

// Writer serializes records to an io.Writer in the binary trace format.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   int
}

// NewWriter writes the file header and returns a Writer. Close must be
// called to flush buffered output.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint32(b[0:4], r.Gap)
	b[4] = byte(r.Kind)
	b[5], b[6], b[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(b[8:16], r.PC)
	binary.LittleEndian.PutUint64(b[16:24], r.Addr)
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int { return w.n }

// Close flushes buffered output. It does not close the underlying writer.
func (w *Writer) Close() error { return w.w.Flush() }

// Reader decodes records from an io.Reader in the binary trace format.
// It implements Stream.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next implements Stream, returning io.EOF cleanly at end of file.
func (r *Reader) Next() (Record, error) {
	n, err := io.ReadFull(r.r, r.buf[:])
	if err != nil {
		if errors.Is(err, io.EOF) && n == 0 {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return Record{}, ErrTruncated
		}
		return Record{}, fmt.Errorf("trace: reading record: %w", err)
	}
	b := r.buf[:]
	return Record{
		Gap:  binary.LittleEndian.Uint32(b[0:4]),
		Kind: Kind(b[4]),
		PC:   binary.LittleEndian.Uint64(b[8:16]),
		Addr: binary.LittleEndian.Uint64(b[16:24]),
	}, nil
}
