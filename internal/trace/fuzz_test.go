package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzTraceText checks the text trace codec both ways. For arbitrary input
// bytes, parsing must never panic; for every input that parses, a
// print→parse round trip must reproduce the records exactly (the format is
// canonical: WriteText output always re-parses to the same records).
func FuzzTraceText(f *testing.F) {
	f.Add("125 R 0x400040 0x7f3a1000")
	f.Add("0 W 0x0 0x0")
	f.Add("4294967295 I 0xffffffffffffffff 0xffffffffffffffff")
	f.Add("# comment line\n\n12 R 0x1 0x2\n9 W 0x3 0x4000")
	f.Add("not a record")
	f.Add("1 X 0x1 0x2")
	f.Add("1 R 0x1")
	f.Add("-3 R 0x1 0x2")
	f.Fuzz(func(t *testing.T, input string) {
		// Pass 1: decode arbitrary input; errors are fine, panics are not.
		var recs []Record
		r := NewTextReader(strings.NewReader(input))
		for {
			rec, err := r.Next()
			if err != nil {
				break // io.EOF or a malformed line: either ends the stream
			}
			recs = append(recs, rec)
		}
		if len(recs) == 0 {
			return
		}

		// Pass 2: what we decoded must survive print→parse unchanged.
		var buf bytes.Buffer
		if err := WriteText(&buf, recs); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		back := NewTextReader(bytes.NewReader(buf.Bytes()))
		for i, want := range recs {
			got, err := back.Next()
			if err != nil {
				t.Fatalf("record %d lost in round trip: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d round trip: got %+v, want %+v", i, got, want)
			}
		}
		if _, err := back.Next(); err != io.EOF {
			t.Fatalf("round trip produced extra records (err=%v)", err)
		}
	})
}

// FuzzTraceBinary checks the binary codec the same way: a write→read round
// trip over records decoded from arbitrary bytes must be lossless.
func FuzzTraceBinary(f *testing.F) {
	f.Add([]byte{})
	var seed bytes.Buffer
	w, err := NewWriter(&seed)
	if err != nil {
		f.Fatal(err)
	}
	_ = w.Write(Record{Gap: 7, Kind: Write, PC: 0x400, Addr: 0x1234})
	_ = w.Write(Record{Gap: 0, Kind: InstFetch, PC: 1, Addr: 1 << 40})
	_ = w.Close()
	f.Add(seed.Bytes())
	f.Fuzz(func(t *testing.T, input []byte) {
		var recs []Record
		r, err := NewReader(bytes.NewReader(input))
		if err != nil {
			return // not a trace file; rejecting is the correct outcome
		}
		for {
			rec, err := r.Next()
			if err != nil {
				break
			}
			recs = append(recs, rec)
			if len(recs) > 1<<16 {
				break // bound fuzz memory on adversarial long inputs
			}
		}
		if len(recs) == 0 {
			return
		}
		var buf bytes.Buffer
		bw, err := NewWriter(&buf)
		if err != nil {
			t.Fatalf("NewWriter: %v", err)
		}
		for _, rec := range recs {
			if err := bw.Write(rec); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		back, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("NewReader round trip: %v", err)
		}
		for i, want := range recs {
			got, err := back.Next()
			if err != nil {
				t.Fatalf("record %d lost in round trip: %v", i, err)
			}
			if got != want {
				t.Fatalf("record %d round trip: got %+v, want %+v", i, got, want)
			}
		}
	})
}
