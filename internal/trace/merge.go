package trace

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
)

// Interleave merges per-core streams into one stream ordered by approximate
// issue time: each stream carries its own instruction clock (the cumulative
// gaps, divided by issueWidth), and the merge always emits the record of the
// core with the smallest clock — the same discipline the full simulator
// uses to order cores. The per-core relative order is preserved exactly.
//
// Multicore trace files written through Interleave can be replayed
// single-streamed by tools that don't model cores.
func Interleave(streams []Stream, issueWidth int) Stream {
	if issueWidth < 1 {
		issueWidth = 1
	}
	m := &merger{width: int64(issueWidth)}
	for i, s := range streams {
		m.sources = append(m.sources, &mergeSource{stream: s, index: i})
	}
	return m
}

type mergeSource struct {
	stream Stream
	index  int
	clock  int64
	next   Record
	ok     bool
}

type merger struct {
	sources []*mergeSource
	heap    srcHeap
	width   int64
	primed  bool
	err     error
}

type srcHeap []*mergeSource

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].index < h[j].index
}
func (h srcHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x any)   { *h = append(*h, x.(*mergeSource)) }
func (h *srcHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// advance pulls the next record of src, updating its clock.
func (m *merger) advance(src *mergeSource) error {
	rec, err := src.stream.Next()
	if errors.Is(err, io.EOF) {
		src.ok = false
		return nil
	}
	if err != nil {
		return fmt.Errorf("trace: interleave source %d: %w", src.index, err)
	}
	src.clock += int64(rec.Gap)/m.width + 1
	src.next = rec
	src.ok = true
	return nil
}

// Next implements Stream.
func (m *merger) Next() (Record, error) {
	if m.err != nil {
		return Record{}, m.err
	}
	if !m.primed {
		m.primed = true
		for _, src := range m.sources {
			if err := m.advance(src); err != nil {
				m.err = err
				return Record{}, err
			}
			if src.ok {
				heap.Push(&m.heap, src)
			}
		}
	}
	if m.heap.Len() == 0 {
		return Record{}, io.EOF
	}
	src := heap.Pop(&m.heap).(*mergeSource)
	out := src.next
	if err := m.advance(src); err != nil {
		m.err = err
		return Record{}, err
	}
	if src.ok {
		heap.Push(&m.heap, src)
	}
	return out, nil
}
