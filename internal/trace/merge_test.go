package trace

import (
	"errors"
	"io"
	"strings"
	"testing"

	"hmem/internal/xrand"
)

func TestInterleavePreservesPerSourceOrder(t *testing.T) {
	rng := xrand.New(8)
	const sources = 4
	const perSource = 500
	var streams []Stream
	want := map[uint64][]uint64{} // source id -> expected addr sequence
	for s := uint64(0); s < sources; s++ {
		recs := make([]Record, perSource)
		for i := range recs {
			recs[i] = Record{
				Gap:  uint32(rng.Intn(200)),
				PC:   s, // tag the source in the PC field
				Addr: s<<32 | uint64(i),
			}
			want[s] = append(want[s], recs[i].Addr)
		}
		streams = append(streams, NewSliceStream(recs))
	}
	merged, err := Collect(Interleave(streams, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != sources*perSource {
		t.Fatalf("merged %d records, want %d", len(merged), sources*perSource)
	}
	got := map[uint64][]uint64{}
	for _, r := range merged {
		got[r.PC] = append(got[r.PC], r.Addr)
	}
	for s := uint64(0); s < sources; s++ {
		if len(got[s]) != perSource {
			t.Fatalf("source %d: %d records", s, len(got[s]))
		}
		for i := range got[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("source %d reordered at %d", s, i)
			}
		}
	}
}

func TestInterleaveBalancesByGap(t *testing.T) {
	// A fast source (small gaps) must appear more often early than a slow
	// one (large gaps).
	fast := make([]Record, 100)
	slow := make([]Record, 100)
	for i := range fast {
		fast[i] = Record{Gap: 4, PC: 1}
		slow[i] = Record{Gap: 400, PC: 2}
	}
	merged, err := Collect(Interleave([]Stream{NewSliceStream(fast), NewSliceStream(slow)}, 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	fastInFirstQuarter := 0
	for _, r := range merged[:50] {
		if r.PC == 1 {
			fastInFirstQuarter++
		}
	}
	if fastInFirstQuarter < 40 {
		t.Fatalf("fast source only %d of first 50 merged records", fastInFirstQuarter)
	}
}

func TestInterleaveEmptyAndSingle(t *testing.T) {
	if _, err := Interleave(nil, 4).Next(); !errors.Is(err, io.EOF) {
		t.Fatal("empty merge should EOF")
	}
	recs := []Record{{Addr: 1}, {Addr: 2}}
	merged, err := Collect(Interleave([]Stream{NewSliceStream(recs)}, 0), 0)
	if err != nil || len(merged) != 2 || merged[0].Addr != 1 {
		t.Fatalf("single-source merge: %v, %v", merged, err)
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	build := func() []Record {
		var streams []Stream
		for s := 0; s < 3; s++ {
			rng := xrand.New(uint64(s) + 10)
			recs := make([]Record, 200)
			for i := range recs {
				recs[i] = Record{Gap: uint32(rng.Intn(100)), Addr: uint64(s)<<32 | uint64(i)}
			}
			streams = append(streams, NewSliceStream(recs))
		}
		out, err := Collect(Interleave(streams, 4), 0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic merge at %d", i)
		}
	}
}

type errStream struct{}

func (errStream) Next() (Record, error) { return Record{}, errors.New("boom") }

func TestInterleavePropagatesErrors(t *testing.T) {
	m := Interleave([]Stream{errStream{}}, 4)
	if _, err := m.Next(); err == nil {
		t.Fatal("expected error")
	}
	// Error is sticky.
	if _, err := m.Next(); err == nil {
		t.Fatal("expected sticky error")
	}
}

// failAfterStream yields n records, then fails with errBoom forever.
type failAfterStream struct {
	n    int
	seen int
}

var errBoom = errors.New("boom")

func (s *failAfterStream) Next() (Record, error) {
	if s.seen >= s.n {
		return Record{}, errBoom
	}
	s.seen++
	return Record{Gap: 1, Addr: uint64(s.seen)}, nil
}

func TestInterleaveWrapsMidStreamSourceError(t *testing.T) {
	good := make([]Record, 50)
	for i := range good {
		good[i] = Record{Gap: 1, Addr: 1000 + uint64(i)}
	}
	m := Interleave([]Stream{NewSliceStream(good), &failAfterStream{n: 3}}, 4)

	var err error
	emitted := 0
	for {
		if _, err = m.Next(); err != nil {
			break
		}
		emitted++
	}
	if errors.Is(err, io.EOF) {
		t.Fatal("failing source drained as clean EOF")
	}
	// The wrapped chain keeps the cause and names the offending source.
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, does not wrap the source error", err)
	}
	if !strings.Contains(err.Error(), "interleave source 1") {
		t.Fatalf("err = %v, does not name source 1", err)
	}
	if emitted == 0 {
		t.Fatal("no records emitted before the failure")
	}
	// Sticky: the merge stays failed with the same error.
	if _, again := m.Next(); !errors.Is(again, errBoom) {
		t.Fatalf("sticky err = %v", again)
	}
	// Collect surfaces the same wrapped error.
	if _, err := Collect(Interleave([]Stream{&failAfterStream{n: 3}}, 4), 0); !errors.Is(err, errBoom) {
		t.Fatalf("Collect err = %v", err)
	}
}
