package mea

import (
	"sort"
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

// hotSorted drains the summary into the deterministic ranking consumers use:
// descending residual count, ties by index (tests use identity index→id).
func hotSorted(tr *Tracker) []Entry {
	hot := tr.Hot(nil)
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Count != hot[j].Count {
			return hot[i].Count > hot[j].Count
		}
		return hot[i].Index < hot[j].Index
	})
	return hot
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestTracksHeavyHitter(t *testing.T) {
	tr := New(4)
	// One page with 50% frequency among uniform noise must be tracked.
	rng := xrand.New(1)
	for i := 0; i < 10000; i++ {
		if rng.Bool(0.5) {
			tr.Observe(777)
		} else {
			tr.Observe(uint32(rng.Uint64n(1000)))
		}
	}
	hot := hotSorted(tr)
	if len(hot) == 0 || hot[0].Index != 777 {
		t.Fatalf("heavy hitter not at top: %+v", hot)
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	// Any element with frequency > n/(k+1) must survive in the summary.
	k := 8
	tr := New(k)
	const n = 9000
	// Element 42 appears n/4 times > n/9.
	rng := xrand.New(2)
	heavy := 0
	for i := 0; i < n; i++ {
		if i%4 == 0 {
			tr.Observe(42)
			heavy++
		} else {
			tr.Observe(uint32(1000 + rng.Uint64n(5000)))
		}
	}
	if tr.Observed() != n {
		t.Fatalf("observed = %d", tr.Observed())
	}
	for _, e := range tr.Hot(nil) {
		if e.Index == 42 {
			return
		}
	}
	t.Fatalf("element with freq %d/%d (> n/(k+1)=%d) lost", heavy, n, n/(k+1))
}

func TestCounterBudgetNeverExceeded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		k := 1 + rng.Intn(16)
		tr := New(k)
		for i := 0; i < 2000; i++ {
			tr.Observe(uint32(rng.Uint64n(500)))
			if tr.Len() > k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHotOrderingDeterministic(t *testing.T) {
	build := func() []Entry {
		tr := New(8)
		rng := xrand.New(3)
		for i := 0; i < 5000; i++ {
			tr.Observe(uint32(rng.Uint64n(100)))
		}
		return hotSorted(tr)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("nondeterministic summary size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic ordering")
		}
	}
	// Descending counts.
	for i := 1; i < len(a); i++ {
		if a[i].Count > a[i-1].Count {
			t.Fatal("Hot() not sorted by count")
		}
	}
}

func TestReset(t *testing.T) {
	tr := New(4)
	tr.Observe(1)
	tr.Observe(1)
	tr.Reset()
	if len(tr.Hot(nil)) != 0 || tr.Observed() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDecrementEvictsSingletons(t *testing.T) {
	tr := New(2)
	tr.Observe(1) // counts: 1->1
	tr.Observe(2) // counts: 1->1, 2->1
	tr.Observe(3) // full: decrement all -> both evicted, 3 not adopted
	if tr.Len() != 0 {
		t.Fatalf("expected empty summary, got %d entries", tr.Len())
	}
	tr.Observe(4)
	if tr.Len() != 1 {
		t.Fatal("counter not reusable after eviction")
	}
}

func TestCostBytes(t *testing.T) {
	// 32 entries, 16-bit counters + 52-bit tag = 68 bits -> 9 bytes/entry.
	if got := CostBytes(32, 16); got != 32*9 {
		t.Fatalf("CostBytes = %d", got)
	}
	// MEA hardware is tiny next to full counters over millions of pages.
	if CostBytes(32, 16) > 1024 {
		t.Fatal("MEA unit should be under 1 KB")
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := New(32)
	rng := xrand.New(1)
	pages := make([]uint32, 1<<12)
	for i := range pages {
		pages[i] = uint32(rng.Uint64n(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(pages[i&(1<<12-1)])
	}
}

// TestObserveAndResetZeroAllocs checks the Misra-Gries unit's hot path: once
// the slot table covers the index space, Observe and Reset never allocate.
func TestObserveAndResetZeroAllocs(t *testing.T) {
	tr := New(8)
	for pi := uint32(0); pi < 64; pi++ {
		tr.Observe(pi)
	}
	tr.Reset()
	pi := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Observe(pi)
		pi = (pi + 1) % 64
	})
	if allocs != 0 {
		t.Fatalf("Observe allocated %.1f times per access; want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, tr.Reset); allocs != 0 {
		t.Fatalf("Reset allocated %.1f times; want 0", allocs)
	}
}
