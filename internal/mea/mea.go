// Package mea implements the Majority Element Algorithm (Misra-Gries
// frequent-elements summary [6,33]) used by MemPod [50] and by this paper's
// Cross Counter mechanism (§6.4) as the low-cost hotness tracker: a fixed
// set of counters tracks the most frequently touched pages of the current
// interval with strong theoretical guarantees and O(k) state, in contrast to
// a full counter per addressable page.
//
// The tracker is keyed by dense page indices (core.PageTable interning —
// passed as raw uint32 to keep this package leaf-level). The k entries live
// in two flat arrays and a reverse slot array indexed by page index answers
// "is this page tracked?" in one load — the per-access path performs no map
// operations and no allocations once the footprint has been seen.
package mea

// noSlot marks a page index with no MEA entry.
const noSlot = int32(-1)

// Tracker is a k-counter Misra-Gries summary over dense page indices. The
// zero value is unusable; construct with New. Not safe for concurrent use.
type Tracker struct {
	k        int
	idx      []uint32 // entry -> dense page index (first n in use)
	cnt      []uint64 // entry -> residual count
	n        int      // entries in use, <= k
	slot     []int32  // dense page index -> entry position, noSlot if absent
	observed uint64
}

// New returns a tracker with k counters (MemPod and the paper use 32).
// It panics if k <= 0.
func New(k int) *Tracker {
	if k <= 0 {
		panic("mea: k must be positive")
	}
	return &Tracker{
		k:   k,
		idx: make([]uint32, k),
		cnt: make([]uint64, k),
	}
}

// K returns the counter budget.
func (t *Tracker) K() int { return t.k }

// Observed returns the number of observations in the current interval.
func (t *Tracker) Observed() uint64 { return t.observed }

// ensure grows the reverse slot array to cover page index i.
func (t *Tracker) ensure(i int) {
	if i < len(t.slot) {
		return
	}
	n := len(t.slot) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	slot := make([]int32, n)
	copy(slot, t.slot)
	for j := len(t.slot); j < n; j++ {
		slot[j] = noSlot
	}
	t.slot = slot
}

// Observe feeds one access to the page interned at dense index pi. Classic
// Misra-Gries update: increment a tracked entry, adopt the page if a counter
// is free, otherwise decrement every counter (evicting zeros).
func (t *Tracker) Observe(pi uint32) {
	t.observed++
	i := int(pi)
	if i >= len(t.slot) {
		t.ensure(i)
	}
	if s := t.slot[i]; s != noSlot {
		t.cnt[s]++
		return
	}
	if t.n < t.k {
		t.idx[t.n] = pi
		t.cnt[t.n] = 1
		t.slot[i] = int32(t.n)
		t.n++
		return
	}
	// Decrement-all: compact survivors in place, freeing zeroed entries.
	w := 0
	for r := 0; r < t.n; r++ {
		if t.cnt[r] <= 1 {
			t.slot[t.idx[r]] = noSlot
			continue
		}
		t.idx[w] = t.idx[r]
		t.cnt[w] = t.cnt[r] - 1
		t.slot[t.idx[w]] = int32(w)
		w++
	}
	t.n = w
}

// Entry is one tracked page with its residual counter.
type Entry struct {
	Index uint32 // dense page index
	Count uint64
}

// Hot appends the tracked entries to dst and returns it. Entries come out
// in internal (insertion) order: callers that need a deterministic ranking
// resolve indices to page ids and sort by (count desc, page id asc) — see
// migration.CrossCounter — because dense index order is first-touch order,
// not id order.
func (t *Tracker) Hot(dst []Entry) []Entry {
	for e := 0; e < t.n; e++ {
		dst = append(dst, Entry{Index: t.idx[e], Count: t.cnt[e]})
	}
	return dst
}

// Reset clears the summary for the next MEA interval without allocating.
func (t *Tracker) Reset() {
	for e := 0; e < t.n; e++ {
		t.slot[t.idx[e]] = noSlot
	}
	t.n = 0
	t.observed = 0
}

// Len returns the number of entries currently tracked.
func (t *Tracker) Len() int { return t.n }

// CostBytes returns the hardware cost of a k-entry MEA unit with the given
// counter width in bits plus a page-id tag (52 bits for 4 KiB pages in a
// 64-bit space), rounded up per entry.
func CostBytes(k, counterBits int) int {
	const tagBits = 52
	perEntry := (counterBits + tagBits + 7) / 8
	return k * perEntry
}
