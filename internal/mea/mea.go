// Package mea implements the Majority Element Algorithm (Misra-Gries
// frequent-elements summary [6,33]) used by MemPod [50] and by this paper's
// Cross Counter mechanism (§6.4) as the low-cost hotness tracker: a fixed
// set of counters tracks the most frequently touched pages of the current
// interval with strong theoretical guarantees and O(k) state, in contrast to
// a full counter per addressable page.
package mea

import "sort"

// Tracker is a k-counter Misra-Gries summary over page ids. The zero value
// is unusable; construct with New. Not safe for concurrent use.
type Tracker struct {
	k        int
	counts   map[uint64]uint64
	observed uint64
}

// New returns a tracker with k counters (MemPod and the paper use 32).
// It panics if k <= 0.
func New(k int) *Tracker {
	if k <= 0 {
		panic("mea: k must be positive")
	}
	return &Tracker{k: k, counts: make(map[uint64]uint64, k+1)}
}

// K returns the counter budget.
func (t *Tracker) K() int { return t.k }

// Observed returns the number of observations in the current interval.
func (t *Tracker) Observed() uint64 { return t.observed }

// Observe feeds one page access. Classic Misra-Gries update: increment a
// tracked entry, adopt the page if a counter is free, otherwise decrement
// every counter (evicting zeros).
func (t *Tracker) Observe(page uint64) {
	t.observed++
	if _, ok := t.counts[page]; ok {
		t.counts[page]++
		return
	}
	if len(t.counts) < t.k {
		t.counts[page] = 1
		return
	}
	for p, c := range t.counts {
		if c <= 1 {
			delete(t.counts, p)
		} else {
			t.counts[p] = c - 1
		}
	}
}

// Entry is one tracked page with its residual counter.
type Entry struct {
	Page  uint64
	Count uint64
}

// Hot returns the tracked pages ordered by descending residual count
// (ties by page id). These are the interval's migration candidates.
func (t *Tracker) Hot() []Entry {
	out := make([]Entry, 0, len(t.counts))
	for p, c := range t.counts {
		out = append(out, Entry{Page: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Page < out[j].Page
	})
	return out
}

// Reset clears the summary for the next MEA interval.
func (t *Tracker) Reset() {
	t.counts = make(map[uint64]uint64, t.k+1)
	t.observed = 0
}

// CostBytes returns the hardware cost of a k-entry MEA unit with the given
// counter width in bits plus a page-id tag (52 bits for 4 KiB pages in a
// 64-bit space), rounded up per entry.
func CostBytes(k, counterBits int) int {
	const tagBits = 52
	perEntry := (counterBits + tagBits + 7) / 8
	return k * perEntry
}
