// Package avf computes the Architectural Vulnerability Factor of memory at
// cache-line granularity and aggregates it per 4 KiB page, following §4.1 of
// the paper: "we perform AVF analysis on memory at a cache line granularity
// because memory reads and writes occur at cache line granularity. We sum the
// AVF of individual cache lines to compose the AVF of a page."
//
// The ACE-interval rules come from Figure 3: the interval between two
// consecutive accesses to a line is ACE (architecturally correct execution —
// a particle strike there becomes a program-visible error) iff the interval
// ends in a read. Write→read and read→read gaps are ACE; read→write and
// write→write gaps are dead (the strike is masked by the overwrite). The
// tail after a line's final access is dead, as is any prefix before its first
// observed access.
//
// Because dynamic schemes move pages between tiers mid-run, every ACE
// interval is attributed to the tier the page occupied when the interval
// started, splitting a page's soft-error exposure across tiers.
//
// The tracker is keyed by dense page indices (core.PageTable interning —
// passed here as raw uint32 to keep this package import-free) and stores
// per-page state in flat slices: the per-access path is array indexing, no
// map operations, and no allocations once the footprint has been seen. Tiers
// are dense small integers too — the tracker supports any tier count
// (NewTrackerN) with per-tier ACE totals in flat [tier][pageIndex] slices,
// so the N-tier generalization costs the hot path nothing. Page ids reappear
// only at Snapshot time, when the caller provides the dense index→id
// mapping.
package avf

import (
	"sort"
	"strconv"

	"hmem/internal/trace"
)

// Tier identifies one memory tier of the HMA by dense index. The index is
// the position in the run's topology (core.Topology.Tiers); display names
// come from the topology, with the two paper tiers below as the default.
type Tier uint8

// The two tiers of the paper's default configuration.
const (
	TierDDR Tier = iota // off-package, high-reliability (ChipKill)
	TierHBM             // on-package, high-bandwidth, low-reliability (SEC-DED)
	numTiers
)

// String returns the tier's name: the paper's names for the default pair,
// and a stable "tier<N>" for any other index (topology-aware callers should
// prefer the topology's display names).
func (t Tier) String() string {
	switch t {
	case TierDDR:
		return "DDR"
	case TierHBM:
		return "HBM"
	default:
		return "tier" + strconv.Itoa(int(t))
	}
}

type pageState struct {
	lastAccess [trace.LinesPerPage]int64
	// lineTier records, per line, the tier the page was in at the line's
	// last access — the tier an interval ending at the next access to that
	// line is charged to.
	lineTier [trace.LinesPerPage]uint8
	// touched marks lines that have been accessed at least once.
	touched uint64
	// reads/writes give per-page access counts for cross-checks.
	reads, writes uint64
}

// Tracker accumulates ACE time for every page index it observes. The zero
// value is not usable; construct with NewTracker (two tiers) or NewTrackerN.
// Not safe for concurrent use.
type Tracker struct {
	pages []pageState // indexed by dense page index
	// ace accumulates ACE cycles as flat [tier][pageIndex] slices — dense in
	// the same index space as pages, so charging an interval is two array
	// indexes regardless of tier count.
	ace      [][]int64
	observed int // entries with at least one access
}

// NewTracker returns an empty tracker over the paper's two tiers.
func NewTracker() *Tracker {
	return NewTrackerN(int(numTiers))
}

// NewTrackerN returns an empty tracker over tiers memory tiers.
func NewTrackerN(tiers int) *Tracker {
	if tiers < 1 || tiers > 256 {
		panic("avf: tier count out of range")
	}
	return &Tracker{ace: make([][]int64, tiers)}
}

// NumTiers returns the tracker's tier count.
func (t *Tracker) NumTiers() int { return len(t.ace) }

// ensure grows the state slices to cover index i.
func (t *Tracker) ensure(i int) {
	if i < len(t.pages) {
		return
	}
	n := len(t.pages) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	pages := make([]pageState, n)
	copy(pages, t.pages)
	t.pages = pages
	for tier := range t.ace {
		ace := make([]int64, n)
		copy(ace, t.ace[tier])
		t.ace[tier] = ace
	}
}

// Access records an access to line lineInPage (0..63) of the page interned
// at dense index pi, at cycle `at`, residing in tier. Accesses to a line
// arrive in nearly non-decreasing time order; a timestamp earlier than the
// line's last access is treated as concurrent with it (clamped to a
// zero-length interval), because the simulator's per-core clocks can skew
// by one record's gap plus stalls between picking a core and recording its
// access, and the ordering of two cores' accesses within that skew is
// arbitrary.
func (t *Tracker) Access(pi uint32, lineInPage int, at int64, write bool, tier Tier) {
	if lineInPage < 0 || lineInPage >= trace.LinesPerPage {
		panic("avf: line index out of page")
	}
	if int(tier) >= len(t.ace) {
		panic("avf: tier out of range for tracker")
	}
	i := int(pi)
	if i >= len(t.pages) {
		t.ensure(i)
	}
	ps := &t.pages[i]
	if ps.touched == 0 && ps.reads == 0 && ps.writes == 0 {
		t.observed++
	}
	bit := uint64(1) << uint(lineInPage)
	if ps.touched&bit != 0 {
		last := ps.lastAccess[lineInPage]
		if at < last {
			at = last
		}
		if !write {
			// Interval ends in a read: ACE, charged to the tier the page
			// occupied when the interval started.
			t.ace[ps.lineTier[lineInPage]][i] += at - last
		}
	}
	ps.lastAccess[lineInPage] = at
	ps.lineTier[lineInPage] = uint8(tier)
	ps.touched |= bit
	if write {
		ps.writes++
	} else {
		ps.reads++
	}
}

// MigratePage re-tags a page's open intervals to a new tier. An ACE interval
// that spans the migration is charged wholly to the destination tier: at
// migration time the interval's outcome (read or write) is still unknown, so
// a faithful split is impossible without lookahead. Migrations are rare per
// page relative to accesses, so the attribution error is small (documented
// in DESIGN.md).
func (t *Tracker) MigratePage(pi uint32, to Tier) {
	i := int(pi)
	if i >= len(t.pages) {
		return
	}
	ps := &t.pages[i]
	if ps.touched == 0 {
		return
	}
	for l := range ps.lineTier {
		ps.lineTier[l] = uint8(to)
	}
}

// PageAVF describes one page's vulnerability over a run of totalCycles.
type PageAVF struct {
	Page   uint64
	AVF    float64   // whole-page AVF in [0,1]
	ByTier []float64 // tier-attributed AVF shares (by tier index); sum == AVF
	Reads  uint64
	Writes uint64
}

// Snapshot returns the per-page AVF over a run that lasted totalCycles,
// ordered by page id (a deterministic order keeps downstream floating-point
// aggregation bit-reproducible: per-page tier shares accumulate in ascending
// tier index). ids is the dense index→page-id mapping (core.PageTable.IDs);
// indices the tracker never saw an access for are skipped. totalCycles must
// be positive.
func (t *Tracker) Snapshot(totalCycles int64, ids []uint64) []PageAVF {
	if totalCycles <= 0 {
		panic("avf: Snapshot with non-positive duration")
	}
	denom := float64(trace.LinesPerPage) * float64(totalCycles)
	tiers := len(t.ace)
	out := make([]PageAVF, 0, t.observed)
	// One backing array for every page's ByTier keeps the snapshot to O(1)
	// allocations instead of one per page.
	shares := make([]float64, t.observed*tiers)
	for i := range t.pages {
		ps := &t.pages[i]
		if ps.touched == 0 {
			continue
		}
		p := PageAVF{Page: ids[i], Reads: ps.reads, Writes: ps.writes}
		p.ByTier, shares = shares[:tiers:tiers], shares[tiers:]
		for tier := 0; tier < tiers; tier++ {
			p.ByTier[tier] = float64(t.ace[tier][i]) / denom
			p.AVF += p.ByTier[tier]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// PageCount returns the number of distinct pages observed.
func (t *Tracker) PageCount() int { return t.observed }

// MeanAVF returns the mean page AVF over totalCycles — the paper's Figure 2
// metric ("Average AVF of memory"). ids is as for Snapshot.
func (t *Tracker) MeanAVF(totalCycles int64, ids []uint64) float64 {
	if t.observed == 0 {
		return 0
	}
	sum := 0.0
	snap := t.Snapshot(totalCycles, ids)
	for _, p := range snap {
		sum += p.AVF
	}
	return sum / float64(len(snap))
}
