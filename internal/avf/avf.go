// Package avf computes the Architectural Vulnerability Factor of memory at
// cache-line granularity and aggregates it per 4 KiB page, following §4.1 of
// the paper: "we perform AVF analysis on memory at a cache line granularity
// because memory reads and writes occur at cache line granularity. We sum the
// AVF of individual cache lines to compose the AVF of a page."
//
// The ACE-interval rules come from Figure 3: the interval between two
// consecutive accesses to a line is ACE (architecturally correct execution —
// a particle strike there becomes a program-visible error) iff the interval
// ends in a read. Write→read and read→read gaps are ACE; read→write and
// write→write gaps are dead (the strike is masked by the overwrite). The
// tail after a line's final access is dead, as is any prefix before its first
// observed access.
//
// Because dynamic schemes move pages between tiers mid-run, every ACE
// interval is attributed to the tier the page occupied when the interval
// started, splitting a page's soft-error exposure across tiers.
//
// The tracker is keyed by dense page indices (core.PageTable interning —
// passed here as raw uint32 to keep this package import-free) and stores
// per-page state in one flat slice: the per-access path is a single array
// index, no map operations, and no allocations once the footprint has been
// seen. Page ids reappear only at Snapshot time, when the caller provides
// the dense index→id mapping.
package avf

import (
	"sort"

	"hmem/internal/trace"
)

// Tier identifies one memory tier of the HMA.
type Tier uint8

// The two tiers of the paper's configuration.
const (
	TierDDR Tier = iota // off-package, high-reliability (ChipKill)
	TierHBM             // on-package, high-bandwidth, low-reliability (SEC-DED)
	numTiers
)

// String returns the tier's name.
func (t Tier) String() string {
	switch t {
	case TierDDR:
		return "DDR"
	case TierHBM:
		return "HBM"
	default:
		return "Tier(?)"
	}
}

type pageState struct {
	lastAccess [trace.LinesPerPage]int64
	// tierBits records, per line, the tier the page was in at the line's
	// last access (bit set = HBM).
	tierBits uint64
	// touched marks lines that have been accessed at least once.
	touched uint64
	// ace accumulates ACE cycles per tier across all lines of the page.
	ace [numTiers]int64
	// reads/writes give per-page access counts for cross-checks.
	reads, writes uint64
}

// Tracker accumulates ACE time for every page index it observes. The zero
// value is not usable; construct with NewTracker. Not safe for concurrent
// use.
type Tracker struct {
	pages    []pageState // indexed by dense page index
	observed int         // entries with at least one access
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{}
}

// ensure grows the state slice to cover index i.
func (t *Tracker) ensure(i int) {
	if i < len(t.pages) {
		return
	}
	n := len(t.pages) * 2
	if n <= i {
		n = i + 1
	}
	if n < 64 {
		n = 64
	}
	pages := make([]pageState, n)
	copy(pages, t.pages)
	t.pages = pages
}

// Access records an access to line lineInPage (0..63) of the page interned
// at dense index pi, at cycle `at`, residing in tier. Accesses to a line
// must be fed in non-decreasing time order; the tracker panics on time
// travel since that indicates a simulator bug upstream.
func (t *Tracker) Access(pi uint32, lineInPage int, at int64, write bool, tier Tier) {
	if lineInPage < 0 || lineInPage >= trace.LinesPerPage {
		panic("avf: line index out of page")
	}
	i := int(pi)
	if i >= len(t.pages) {
		t.ensure(i)
	}
	ps := &t.pages[i]
	if ps.touched == 0 && ps.reads == 0 && ps.writes == 0 {
		t.observed++
	}
	bit := uint64(1) << uint(lineInPage)
	if ps.touched&bit != 0 {
		last := ps.lastAccess[lineInPage]
		if at < last {
			panic("avf: accesses out of time order")
		}
		if !write {
			// Interval ends in a read: ACE, charged to the tier the page
			// occupied when the interval started.
			startTier := TierDDR
			if ps.tierBits&bit != 0 {
				startTier = TierHBM
			}
			ps.ace[startTier] += at - last
		}
	}
	ps.lastAccess[lineInPage] = at
	ps.touched |= bit
	if tier == TierHBM {
		ps.tierBits |= bit
	} else {
		ps.tierBits &^= bit
	}
	if write {
		ps.writes++
	} else {
		ps.reads++
	}
}

// MigratePage re-tags a page's open intervals to a new tier. An ACE interval
// that spans the migration is charged wholly to the destination tier: at
// migration time the interval's outcome (read or write) is still unknown, so
// a faithful split is impossible without lookahead. Migrations are rare per
// page relative to accesses, so the attribution error is small (documented
// in DESIGN.md).
func (t *Tracker) MigratePage(pi uint32, to Tier) {
	i := int(pi)
	if i >= len(t.pages) {
		return
	}
	ps := &t.pages[i]
	if ps.touched == 0 {
		return
	}
	if to == TierHBM {
		ps.tierBits = ^uint64(0)
	} else {
		ps.tierBits = 0
	}
}

// PageAVF describes one page's vulnerability over a run of totalCycles.
type PageAVF struct {
	Page   uint64
	AVF    float64           // whole-page AVF in [0,1]
	ByTier [numTiers]float64 // tier-attributed AVF shares; sum == AVF
	Reads  uint64
	Writes uint64
}

// Snapshot returns the per-page AVF over a run that lasted totalCycles,
// ordered by page id (a deterministic order keeps downstream floating-point
// aggregation bit-reproducible). ids is the dense index→page-id mapping
// (core.PageTable.IDs); indices the tracker never saw an access for are
// skipped. totalCycles must be positive.
func (t *Tracker) Snapshot(totalCycles int64, ids []uint64) []PageAVF {
	if totalCycles <= 0 {
		panic("avf: Snapshot with non-positive duration")
	}
	denom := float64(trace.LinesPerPage) * float64(totalCycles)
	out := make([]PageAVF, 0, t.observed)
	for i := range t.pages {
		ps := &t.pages[i]
		if ps.touched == 0 {
			continue
		}
		p := PageAVF{Page: ids[i], Reads: ps.reads, Writes: ps.writes}
		for tier := Tier(0); tier < numTiers; tier++ {
			p.ByTier[tier] = float64(ps.ace[tier]) / denom
			p.AVF += p.ByTier[tier]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// PageCount returns the number of distinct pages observed.
func (t *Tracker) PageCount() int { return t.observed }

// MeanAVF returns the mean page AVF over totalCycles — the paper's Figure 2
// metric ("Average AVF of memory"). ids is as for Snapshot.
func (t *Tracker) MeanAVF(totalCycles int64, ids []uint64) float64 {
	if t.observed == 0 {
		return 0
	}
	sum := 0.0
	snap := t.Snapshot(totalCycles, ids)
	for _, p := range snap {
		sum += p.AVF
	}
	return sum / float64(len(snap))
}
