package avf

import (
	"math"
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

// identityIDs is the dense index→page-id mapping for tests that use small
// integers as both: index i is page id i.
func identityIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

// lineAVF runs a sequence of (time, write) events on a single line and
// returns the page AVF scaled back up to line granularity.
func lineAVF(t *testing.T, total int64, events []struct {
	at    int64
	write bool
}) float64 {
	t.Helper()
	tr := NewTracker()
	for _, e := range events {
		tr.Access(0, 0, e.at, e.write, TierDDR)
	}
	snap := tr.Snapshot(total, identityIDs(1))
	if len(snap) != 1 {
		t.Fatalf("expected 1 page, got %d", len(snap))
	}
	return snap[0].AVF * 64 // undo the per-page line averaging
}

func TestFigure3aUnmaskedReads(t *testing.T) {
	// WR1@0, RD1@30, RD2@50, WR2@80, total 100.
	// ACE: [0,30] + [30,50] = 50 cycles -> line AVF 0.5.
	got := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{0, true}, {30, false}, {50, false}, {80, true}})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Figure 3a AVF = %v, want 0.5", got)
	}
}

func TestFigure3bMaskedByWrite(t *testing.T) {
	// WR1@0, WR2@60, RD@70: the strike between the writes is masked.
	// ACE: only [60,70] -> 0.1.
	got := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{0, true}, {60, true}, {70, false}})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Figure 3b AVF = %v, want 0.1", got)
	}
}

func TestFigure3cdSameHotnessDifferentAVF(t *testing.T) {
	// Both lines have 2 writes + 2 reads (same hotness), but different
	// orderings give different AVFs — the paper's core observation.
	c := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{0, true}, {10, true}, {20, false}, {90, false}}) // W W R...R: ACE [10,20]+[20,90]=80
	d := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{0, true}, {10, false}, {80, true}, {90, false}}) // W R W R: ACE [0,10]+[80,90]=20
	if !(c > d) {
		t.Fatalf("expected pattern (c) %v > pattern (d) %v", c, d)
	}
	if math.Abs(c-0.8) > 1e-12 || math.Abs(d-0.2) > 1e-12 {
		t.Fatalf("c = %v (want 0.8), d = %v (want 0.2)", c, d)
	}
}

func TestTailAfterLastAccessIsDead(t *testing.T) {
	got := lineAVF(t, 1000, []struct {
		at    int64
		write bool
	}{{0, true}, {10, false}})
	if math.Abs(got-0.01) > 1e-12 {
		t.Fatalf("AVF = %v, want 0.01 (tail must not count)", got)
	}
}

func TestPrefixBeforeFirstAccessIsDead(t *testing.T) {
	got := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{90, false}})
	if got != 0 {
		t.Fatalf("AVF = %v, want 0 (read with no prior access opens no interval)", got)
	}
}

func TestWriteOnlyLineHasZeroAVF(t *testing.T) {
	got := lineAVF(t, 100, []struct {
		at    int64
		write bool
	}{{0, true}, {50, true}, {99, true}})
	if got != 0 {
		t.Fatalf("write-only AVF = %v, want 0", got)
	}
}

func TestPageAveragesLines(t *testing.T) {
	tr := NewTracker()
	// Line 0: fully ACE over [0,100]; other 63 lines untouched.
	tr.Access(7, 0, 0, true, TierDDR)
	tr.Access(7, 0, 100, false, TierDDR)
	snap := tr.Snapshot(100, identityIDs(8))
	want := 1.0 / 64
	if math.Abs(snap[0].AVF-want) > 1e-12 {
		t.Fatalf("page AVF = %v, want %v", snap[0].AVF, want)
	}
}

func TestTierAttribution(t *testing.T) {
	tr := NewTracker()
	tr.Access(1, 0, 0, true, TierHBM)    // interval starts in HBM
	tr.Access(1, 0, 40, false, TierHBM)  // [0,40] ACE -> HBM
	tr.MigratePage(1, TierDDR)           // move page to DDR
	tr.Access(1, 0, 100, false, TierDDR) // [40,100] ACE -> DDR (start re-tagged)
	snap := tr.Snapshot(160, identityIDs(2))
	p := snap[0]
	denominator := 64.0 * 160
	if math.Abs(p.ByTier[TierHBM]-40/denominator) > 1e-12 {
		t.Fatalf("HBM share = %v, want %v", p.ByTier[TierHBM], 40/denominator)
	}
	if math.Abs(p.ByTier[TierDDR]-60/denominator) > 1e-12 {
		t.Fatalf("DDR share = %v, want %v", p.ByTier[TierDDR], 60/denominator)
	}
	if math.Abs(p.AVF-(p.ByTier[0]+p.ByTier[1])) > 1e-15 {
		t.Fatal("tier shares must sum to page AVF")
	}
}

func TestMigrateUnknownPageIsNoop(t *testing.T) {
	tr := NewTracker()
	tr.MigratePage(99, TierHBM) // must not panic or create state
	if tr.PageCount() != 0 {
		t.Fatal("MigratePage created a page")
	}
}

func TestAccessCountsTracked(t *testing.T) {
	tr := NewTracker()
	tr.Access(3, 1, 0, true, TierDDR)
	tr.Access(3, 1, 5, false, TierDDR)
	tr.Access(3, 2, 9, false, TierDDR)
	p := tr.Snapshot(10, identityIDs(4))[0]
	if p.Reads != 2 || p.Writes != 1 {
		t.Fatalf("counts = R%d/W%d, want R2/W1", p.Reads, p.Writes)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	t.Run("line out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewTracker().Access(0, 64, 0, false, TierDDR)
	})
	t.Run("bad tier", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewTracker().Access(0, 0, 0, false, Tier(7))
	})
	t.Run("bad snapshot duration", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewTracker().Snapshot(0, nil)
	})
}

func TestAVFBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		tr := NewTracker()
		const total = 10000
		n := 50 + rng.Intn(500)
		// Per (page,line) we must feed non-decreasing times; use a global
		// non-decreasing clock which trivially satisfies that.
		at := int64(0)
		for i := 0; i < n; i++ {
			at += int64(rng.Intn(20))
			if at >= total {
				break
			}
			tr.Access(uint32(rng.Uint64n(4)), rng.Intn(64), at, rng.Bool(0.4), Tier(rng.Intn(2)))
		}
		for _, p := range tr.Snapshot(total, identityIDs(4)) {
			if p.AVF < 0 || p.AVF > 1 {
				return false
			}
			if p.ByTier[0] < 0 || p.ByTier[1] < 0 {
				return false
			}
			if math.Abs(p.AVF-(p.ByTier[0]+p.ByTier[1])) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreWritesLowerAVFProperty(t *testing.T) {
	// The paper's §5.3 heuristic rationale: with accesses at a fixed rate,
	// raising the write fraction lowers AVF.
	avfFor := func(writeP float64) float64 {
		rng := xrand.New(7)
		tr := NewTracker()
		const total = 100000
		for at := int64(0); at < total; at += 50 {
			tr.Access(0, int(rng.Uint64n(64)), at, rng.Bool(writeP), TierDDR)
		}
		return tr.Snapshot(total, identityIDs(1))[0].AVF
	}
	low, high := avfFor(0.1), avfFor(0.9)
	if low <= high {
		t.Fatalf("AVF(writeP=0.1)=%v should exceed AVF(writeP=0.9)=%v", low, high)
	}
}

func TestMeanAVF(t *testing.T) {
	tr := NewTracker()
	if tr.MeanAVF(100, nil) != 0 {
		t.Fatal("empty tracker mean must be 0")
	}
	// Page 0: line fully ACE; page 1: untouched except one dead write.
	tr.Access(0, 0, 0, true, TierDDR)
	tr.Access(0, 0, 100, false, TierDDR)
	tr.Access(1, 0, 0, true, TierDDR)
	want := (1.0/64 + 0) / 2
	if got := tr.MeanAVF(100, identityIDs(2)); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanAVF = %v, want %v", got, want)
	}
	if tr.PageCount() != 2 {
		t.Fatalf("PageCount = %d", tr.PageCount())
	}
}

func TestTierString(t *testing.T) {
	if TierDDR.String() != "DDR" || TierHBM.String() != "HBM" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() != "tier9" {
		t.Fatal("unknown tier name wrong")
	}
}

func BenchmarkAccess(b *testing.B) {
	tr := NewTracker()
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Access(uint32(rng.Uint64n(1024)), int(rng.Uint64n(64)), int64(i), i&3 == 0, TierDDR)
	}
}

// TestAccessZeroAllocsWhenWarm checks the AVF unit's hot path: once a page
// index is covered by the flat state array, Access never allocates.
func TestAccessZeroAllocsWhenWarm(t *testing.T) {
	tr := NewTracker()
	for pi := uint32(0); pi < 64; pi++ {
		tr.Access(pi, 0, int64(pi)+1, false, TierDDR)
	}
	now := int64(100)
	pi := uint32(0)
	allocs := testing.AllocsPerRun(1000, func() {
		now++
		tr.Access(pi, int(now)%64, now, now%3 == 0, TierDDR)
		pi = (pi + 1) % 64
	})
	if allocs != 0 {
		t.Fatalf("Access allocated %.1f times per access; want 0", allocs)
	}
}

// TestSkewedAccessClamps pins the multi-core clock-skew contract: an access
// reported earlier than the line's last access is treated as concurrent with
// it — no panic, zero ACE charged for the inverted interval, and the line's
// clock does not move backwards.
func TestSkewedAccessClamps(t *testing.T) {
	tr := NewTracker()
	tr.Access(0, 0, 100, true, TierDDR)
	tr.Access(0, 0, 90, false, TierDDR) // skewed read: clamped to cycle 100
	tr.Access(0, 0, 160, false, TierDDR)
	p := tr.Snapshot(160, identityIDs(1))[0]
	want := 60.0 / (64.0 * 160) // only [100,160] is ACE
	if math.Abs(p.AVF-want) > 1e-12 {
		t.Fatalf("AVF = %v, want %v (skewed access must charge nothing)", p.AVF, want)
	}
}
