package memsim

import (
	"sort"
	"testing"

	"hmem/internal/xrand"
)

// TestTimingLegality drives a random workload through both tier
// configurations and audits the committed command schedule against the DRAM
// timing rules the simulator claims to honor:
//
//   - the data bus of a channel carries at most one burst at a time;
//   - CAS commands on a channel are spaced by at least tCCD;
//   - row hits reported as hits really address the bank's open row (the
//     audit reconstructs open-row state from the event stream);
//   - a read following a write to the same bank waits at least tWTR after
//     the write's data.
func TestTimingLegality(t *testing.T) {
	for _, cfg := range []Config{DDR3(8 << 20), HBM(8 << 20)} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m := New(cfg)
			var events []ServiceEvent
			m.SetAudit(func(ev ServiceEvent) { events = append(events, ev) })

			rng := xrand.New(0xA0D17)
			var at int64
			for i := 0; i < 5000; i++ {
				at += int64(rng.Intn(12))
				var line uint64
				if rng.Bool(0.5) {
					line = rng.Uint64n(cfg.Lines() / 64) // row-local traffic
				} else {
					line = rng.Uint64n(cfg.Lines())
				}
				m.Enqueue(&Request{Line: line, Write: rng.Bool(0.4), Arrival: at})
			}
			m.Drain()
			if len(events) != 5000 {
				t.Fatalf("audited %d events", len(events))
			}

			tm := cfg.Timing
			perChannel := map[int][]ServiceEvent{}
			for _, ev := range events {
				perChannel[ev.Channel] = append(perChannel[ev.Channel], ev)
			}
			for chIdx, evs := range perChannel {
				byData := append([]ServiceEvent(nil), evs...)
				sort.Slice(byData, func(i, j int) bool { return byData[i].DataStart < byData[j].DataStart })
				openRow := map[int]int64{}
				lastWriteEnd := map[int]int64{}
				var prevDataEnd, prevCAS int64
				prevCAS = -1 << 60
				for i, ev := range byData {
					if ev.DataEnd-ev.DataStart != tm.cc(tm.TBL) {
						t.Fatalf("ch%d ev%d: burst length %d != tBL", chIdx, i, ev.DataEnd-ev.DataStart)
					}
					if ev.DataStart < prevDataEnd {
						t.Fatalf("ch%d ev%d: data bus overlap (%d < %d)", chIdx, i, ev.DataStart, prevDataEnd)
					}
					prevDataEnd = ev.DataEnd
					if ev.CAS-prevCAS < 0 {
						// CAS order can differ from data order only by the
						// CL/CWL difference; tolerate but still check tCCD
						// against the closest earlier CAS below.
						_ = ev
					}
					prevCAS = ev.CAS

					// Row-hit accounting: replay open-row state.
					if ev.RowHit {
						if got, ok := openRow[ev.Bank]; !ok || got != ev.Row {
							t.Fatalf("ch%d ev%d: claimed row hit on bank %d row %d, open=%v",
								chIdx, i, ev.Bank, ev.Row, got)
						}
					}
					openRow[ev.Bank] = ev.Row

					// Write-to-read turnaround on a bank.
					if !ev.Write {
						if wEnd, ok := lastWriteEnd[ev.Bank]; ok && ev.CAS < wEnd+tm.cc(tm.TWTR) {
							t.Fatalf("ch%d ev%d: read CAS %d violates tWTR after write end %d",
								chIdx, i, ev.CAS, wEnd)
						}
					} else {
						lastWriteEnd[ev.Bank] = ev.DataEnd
					}
				}

				// CAS-to-CAS spacing in CAS order.
				byCAS := append([]ServiceEvent(nil), evs...)
				sort.Slice(byCAS, func(i, j int) bool { return byCAS[i].CAS < byCAS[j].CAS })
				for i := 1; i < len(byCAS); i++ {
					if byCAS[i].CAS-byCAS[i-1].CAS < tm.cc(tm.TCCD) {
						t.Fatalf("ch%d: CAS spacing %d < tCCD", chIdx, byCAS[i].CAS-byCAS[i-1].CAS)
					}
				}
			}
		})
	}
}

func TestRefreshFires(t *testing.T) {
	cfg := DDR3(8 << 20)
	m := New(cfg)
	// Spread requests across several refresh intervals.
	span := cfg.Timing.cc(cfg.Timing.TREFI) * 5
	for i := 0; i < 2000; i++ {
		m.Enqueue(&Request{Line: uint64(i) % cfg.Lines(), Arrival: int64(i) * (span / 2000)})
	}
	m.Drain()
	st := m.Stats()
	if st.Refreshes == 0 {
		t.Fatal("no refreshes over five tREFI windows")
	}
	// Roughly one refresh per channel per interval; allow slack for lazy
	// scheduling at the tail.
	maxExpected := uint64(cfg.Channels) * 6
	if st.Refreshes > maxExpected {
		t.Fatalf("refreshes = %d, expected <= %d", st.Refreshes, maxExpected)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := DDR3(8 << 20)
	m := New(cfg)
	r1 := &Request{Line: 0, Arrival: 0}
	m.Enqueue(r1)
	m.Complete(r1)
	// Next access to the same row far in the future, past a refresh: the
	// refresh closed the row, so it must be a miss.
	r2 := &Request{Line: uint64(cfg.Channels), Arrival: cfg.Timing.cc(cfg.Timing.TREFI) * 2}
	m.Enqueue(r2)
	m.Complete(r2)
	if m.Stats().RowHits != 0 {
		t.Fatalf("row survived refresh: %+v", m.Stats())
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DDR3(8 << 20)
	cfg.Timing.TREFI = 0
	cfg.Timing.TRFC = 0
	m := New(cfg)
	for i := 0; i < 100; i++ {
		m.Enqueue(&Request{Line: uint64(i), Arrival: int64(i) * 100000})
	}
	m.Drain()
	if m.Stats().Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}

func TestRefreshConfigValidation(t *testing.T) {
	cfg := DDR3(8 << 20)
	cfg.Timing.TREFI = 100
	cfg.Timing.TRFC = 0
	if cfg.Validate() == nil {
		t.Fatal("tREFI without tRFC accepted")
	}
	cfg.Timing.TREFI = -1
	if cfg.Validate() == nil {
		t.Fatal("negative tREFI accepted")
	}
}

func TestRefreshCostsBandwidth(t *testing.T) {
	// The same saturating stream must take longer with refresh enabled.
	run := func(refresh bool) int64 {
		cfg := DDR3(8 << 20)
		if !refresh {
			cfg.Timing.TREFI = 0
			cfg.Timing.TRFC = 0
		}
		m := New(cfg)
		for i := 0; i < 30000; i++ {
			m.Enqueue(&Request{Line: uint64(i) % cfg.Lines(), Arrival: 0})
		}
		return m.Drain()
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Fatalf("refresh should cost time: with=%d without=%d", with, without)
	}
	overhead := float64(with-without) / float64(without)
	if overhead > 0.15 {
		t.Fatalf("refresh overhead %.1f%% implausibly high", overhead*100)
	}
}

// TestLazyResolutionOrderIndependence: whether requests are resolved via
// Complete (in any order) or a single final Drain, the committed schedule
// must be identical — lazy resolution is an implementation detail, not a
// semantic one.
func TestLazyResolutionOrderIndependence(t *testing.T) {
	cfg := DDR3(1 << 20)
	// Variant A: drain everything at once.
	runA := func() []int64 {
		rng := xrand.New(0x0D5)
		m := New(cfg)
		reqs := make([]*Request, 800)
		for i := range reqs {
			reqs[i] = &Request{Line: rng.Uint64n(cfg.Lines()), Write: rng.Bool(0.3), Arrival: int64(i) * 7}
			m.Enqueue(reqs[i])
		}
		m.Drain()
		out := make([]int64, len(reqs))
		for i, r := range reqs {
			out[i] = r.Finish()
		}
		return out
	}
	runB := func() []int64 {
		rng := xrand.New(0x0D5)
		m := New(cfg)
		reqs := make([]*Request, 800)
		for i := range reqs {
			reqs[i] = &Request{Line: rng.Uint64n(cfg.Lines()), Write: rng.Bool(0.3), Arrival: int64(i) * 7}
			m.Enqueue(reqs[i])
		}
		// Resolve in reverse order via Complete.
		for i := len(reqs) - 1; i >= 0; i-- {
			m.Complete(reqs[i])
		}
		out := make([]int64, len(reqs))
		for i, r := range reqs {
			out[i] = r.Finish()
		}
		return out
	}
	fa, fb := runA(), runB()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("request %d: drain=%d complete-reverse=%d", i, fa[i], fb[i])
		}
	}
}
