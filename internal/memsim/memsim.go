package memsim

import "fmt"

// Request is one cache-line access in flight in a memory tier. Callers
// allocate a Request, Enqueue it, and later obtain its finish time with
// Complete (lazy resolution lets the FR-FCFS scheduler see a window of
// requests before committing to an order).
type Request struct {
	// Line is the tier-local cache-line index (0 .. Config.Lines()-1).
	Line uint64
	// Write marks a write request.
	Write bool
	// Arrival is the CPU cycle the request reached the controller.
	Arrival int64

	finish int64
	seq    uint64
	served bool
	// Geometry is resolved once at Enqueue so the FR-FCFS scan and the
	// command sequencer never re-divide the line address.
	ch, bk int32
	row    int64
}

// Reset prepares a served Request for reuse with new parameters, letting
// callers pool Requests instead of allocating one per access. It panics if
// the request is still in flight.
func (r *Request) Reset(line uint64, write bool, arrival int64) {
	if !r.served {
		panic("memsim: Reset of in-flight request")
	}
	*r = Request{Line: line, Write: write, Arrival: arrival}
}

// Finished reports whether the scheduler has served the request.
func (r *Request) Finished() bool { return r.served }

// Finish returns the completion cycle. It panics if the request has not yet
// been served; use Memory.Complete to force resolution.
func (r *Request) Finish() int64 {
	if !r.served {
		panic("memsim: Finish on unserved request")
	}
	return r.finish
}

// Stats aggregates controller activity for one tier.
type Stats struct {
	Reads, Writes          uint64
	RowHits, RowMisses     uint64 // misses include conflicts (row open to another row)
	RowConflicts           uint64
	TotalReadLatency       uint64 // sum over reads of finish-arrival, CPU cycles
	TotalWriteLatency      uint64
	DataBusBusy            int64 // CPU cycles of data-bus occupancy across channels
	BulkTransfers          uint64
	BulkTransferredPages   uint64
	BulkTransferCyclesPaid int64
	Refreshes              uint64
}

// AvgReadLatency returns the mean read latency in CPU cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

// RowHitRate returns the fraction of requests that hit an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

type bank struct {
	openRow      int64 // -1 when precharged
	casReady     int64 // earliest CAS to the open row (ACT + tRCD)
	preReady     int64 // earliest PRE (tRAS / tRTP / tWR constraints)
	lastWriteEnd int64 // for tWTR write-to-read turnaround
}

type channel struct {
	cfg         *Config
	now         int64 // command scheduling horizon: the channel has made all decisions up to now
	cmdFree     int64
	dataFre     int64
	lastAct     int64 // for tRRD across banks
	nextRefresh int64 // next all-bank refresh deadline (0 = disabled)
	banks       []bank
	pending     []*Request
}

// ServiceEvent describes one serviced request for timing audits: the DRAM
// command times the scheduler committed to. Tests use it to verify timing
// legality (bus exclusivity, CAS spacing, bank cycle constraints).
type ServiceEvent struct {
	Channel, Bank int
	Row           int64
	Write         bool
	RowHit        bool
	CAS           int64 // CAS issue cycle
	DataStart     int64
	DataEnd       int64
}

// cycTiming is the tier's Timing pre-converted to CPU cycles, so the
// per-request command sequencer never multiplies by TCK.
type cycTiming struct {
	cl, cwl, rcd, rp, ras, wr, bl, ccd, rrd, wtr, rtp, refi, rfc int64
}

// Memory simulates one tier. It is not safe for concurrent use.
type Memory struct {
	cfg      Config
	channels []*channel
	seq      uint64
	stats    Stats
	audit    func(ServiceEvent)

	// Geometry constants hoisted out of Config so the per-access address
	// mapping is pure integer arithmetic on local fields.
	nch, lpr, nbk, lines uint64
	ct                   cycTiming
}

// SetAudit installs a hook receiving every serviced request's committed
// command times (nil disables). Intended for tests and debugging.
func (m *Memory) SetAudit(fn func(ServiceEvent)) { m.audit = fn }

// New builds a Memory from cfg. It panics on an invalid configuration, since
// configurations are build-time constants of an experiment.
func New(cfg Config) *Memory {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Memory{cfg: cfg}
	m.nch = uint64(cfg.Channels)
	m.lpr = cfg.LinesPerRow()
	m.nbk = uint64(cfg.RanksPerChannel * cfg.BanksPerRank)
	m.lines = cfg.Lines()
	t := cfg.Timing
	m.ct = cycTiming{
		cl: t.cc(t.TCL), cwl: t.cc(t.TCWL),
		rcd: t.cc(t.TRCD), rp: t.cc(t.TRP), ras: t.cc(t.TRAS), wr: t.cc(t.TWR),
		bl: t.cc(t.TBL), ccd: t.cc(t.TCCD), rrd: t.cc(t.TRRD),
		wtr: t.cc(t.TWTR), rtp: t.cc(t.TRTP),
		refi: t.cc(t.TREFI), rfc: t.cc(t.TRFC),
	}
	m.channels = make([]*channel, cfg.Channels)
	for i := range m.channels {
		// lastAct starts far in the past so the first ACT is not delayed
		// by a phantom tRRD constraint.
		ch := &channel{cfg: &m.cfg, lastAct: -1 << 40}
		if cfg.Timing.TREFI > 0 {
			ch.nextRefresh = cfg.Timing.cc(cfg.Timing.TREFI)
		}
		ch.banks = make([]bank, cfg.RanksPerChannel*cfg.BanksPerRank)
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		m.channels[i] = ch
	}
	return m
}

// Config returns the tier configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns a snapshot of the tier's counters.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (used at measurement-interval boundaries).
func (m *Memory) ResetStats() { m.stats = Stats{} }

// geometry locates a line: channel by low-order interleave (maximizes
// channel-level parallelism for streaming), then column within row, then
// bank interleave on row index (consecutive rows in different banks).
func (m *Memory) geometry(line uint64) (ch, bk int, row int64, col uint64) {
	ch = int(line % m.nch)
	chLine := line / m.nch
	col = chLine % m.lpr
	rowIdx := chLine / m.lpr
	bk = int(rowIdx % m.nbk)
	row = int64(rowIdx / m.nbk)
	return ch, bk, row, col
}

// Enqueue admits a request to its channel's scheduling window. If the window
// is full the scheduler first retires the best candidate to make room. The
// request's Line must be inside the tier; callers map global pages to
// tier-local frames before enqueueing.
func (m *Memory) Enqueue(r *Request) {
	if r.Line >= m.lines {
		panic(fmt.Sprintf("memsim: %s: line %d beyond capacity (%d lines)", m.cfg.Name, r.Line, m.lines))
	}
	if r.served {
		panic("memsim: Enqueue of already-served request")
	}
	m.seq++
	r.seq = m.seq
	chIdx, bk, row, _ := m.geometry(r.Line)
	r.ch, r.bk, r.row = int32(chIdx), int32(bk), row
	ch := m.channels[chIdx]
	for len(ch.pending) >= m.cfg.QueueDepth {
		m.serveOne(ch)
	}
	ch.pending = append(ch.pending, r)
}

// Complete forces resolution of r and returns its finish cycle. Requests on
// the same channel that the FR-FCFS scheduler prefers are served first.
func (m *Memory) Complete(r *Request) int64 {
	if r.served {
		return r.finish
	}
	ch := m.channels[r.ch]
	for !r.served {
		if !m.serveOne(ch) {
			panic("memsim: Complete on request not enqueued")
		}
	}
	return r.finish
}

// Drain serves every pending request on every channel and returns the
// largest finish time observed (0 if nothing was pending).
func (m *Memory) Drain() int64 {
	var last int64
	for _, ch := range m.channels {
		for m.serveOne(ch) {
		}
		if ch.dataFre > last {
			last = ch.dataFre
		}
	}
	return last
}

// serveOne picks and retires one request from ch under FR-FCFS. It returns
// false if the channel has nothing pending.
func (m *Memory) serveOne(ch *channel) bool {
	if len(ch.pending) == 0 {
		return false
	}
	// Advance the horizon to the earliest arrival if the channel is idle
	// ahead of all pending work.
	earliest := ch.pending[0].Arrival
	for _, r := range ch.pending[1:] {
		if r.Arrival < earliest {
			earliest = r.Arrival
		}
	}
	if ch.now < earliest {
		ch.now = earliest
	}

	// FR-FCFS with read priority among requests that have arrived by the
	// horizon: row-hit reads, then other reads, then row-hit writes, then
	// writes — reads sit on the core's critical path while writes are
	// posted. Ties break by age. If nothing has arrived yet (can't happen
	// given the horizon advance above, but guard), fall back to the oldest.
	best := -1
	bestPrio := -1
	var bestSeq uint64
	for i, r := range ch.pending {
		if r.Arrival > ch.now {
			continue
		}
		prio := 0
		if ch.banks[r.bk].openRow == r.row {
			prio++
		}
		if !r.Write {
			prio += 2
		}
		if prio > bestPrio || (prio == bestPrio && r.seq < bestSeq) {
			best, bestPrio, bestSeq = i, prio, r.seq
		}
	}
	if best == -1 {
		best, bestSeq = 0, ch.pending[0].seq
		for i, r := range ch.pending {
			if r.seq < bestSeq {
				best, bestSeq = i, r.seq
			}
		}
	}
	r := ch.pending[best]
	ch.pending[best] = ch.pending[len(ch.pending)-1]
	ch.pending = ch.pending[:len(ch.pending)-1]
	m.service(ch, r)
	return true
}

// refreshUpTo runs any all-bank refreshes due by cycle `at`: every bank is
// precharged and the channel is blocked for tRFC per refresh.
func (m *Memory) refreshUpTo(ch *channel, at int64) {
	if ch.nextRefresh == 0 {
		return
	}
	for ch.nextRefresh <= at {
		end := max64(ch.nextRefresh, ch.cmdFree) + m.ct.rfc
		for i := range ch.banks {
			ch.banks[i].openRow = -1
			if ch.banks[i].preReady < end {
				ch.banks[i].preReady = end
			}
			if ch.banks[i].casReady < end {
				ch.banks[i].casReady = end
			}
		}
		if ch.cmdFree < end {
			ch.cmdFree = end
		}
		m.stats.Refreshes++
		ch.nextRefresh += m.ct.refi
	}
}

// service runs the DRAM command sequence for r and stamps its finish time.
func (m *Memory) service(ch *channel, r *Request) {
	t := &m.ct
	row := r.row
	b := &ch.banks[r.bk]

	start := max64(ch.now, r.Arrival)
	m.refreshUpTo(ch, start)

	rowHit := false
	switch {
	case b.openRow == row:
		rowHit = true
		m.stats.RowHits++
	case b.openRow == -1:
		m.stats.RowMisses++
		// ACT: respect tRRD across the rank and the command bus.
		act := max64(start, ch.cmdFree, ch.lastAct+t.rrd)
		ch.lastAct = act
		b.openRow = row
		b.casReady = act + t.rcd
		b.preReady = act + t.ras
	default:
		m.stats.RowMisses++
		m.stats.RowConflicts++
		// PRE must respect tRAS since the opening ACT, the read-to-PRE
		// delay, and write recovery — all folded into preReady.
		pre := max64(start, ch.cmdFree, b.preReady)
		act := max64(pre+t.rp, ch.lastAct+t.rrd)
		ch.lastAct = act
		b.openRow = row
		b.casReady = act + t.rcd
		b.preReady = act + t.ras
	}

	// CAS issue: ACT-to-CAS readiness, command bus, CAS-to-CAS spacing, and
	// write-to-read turnaround when a read follows a write on this bank.
	cas := max64(start, b.casReady, ch.cmdFree)
	if !r.Write && b.lastWriteEnd > 0 {
		cas = max64(cas, b.lastWriteEnd+t.wtr)
	}
	ch.cmdFree = cas + t.ccd

	// Data burst occupies the channel's data bus for tBL.
	casLat := t.cl
	if r.Write {
		casLat = t.cwl
	}
	dataStart := max64(cas+casLat, ch.dataFre)
	dataEnd := dataStart + t.bl
	ch.dataFre = dataEnd
	m.stats.DataBusBusy += t.bl

	if r.Write {
		b.lastWriteEnd = dataEnd
		b.preReady = max64(b.preReady, dataEnd+t.wr)
		m.stats.Writes++
		m.stats.TotalWriteLatency += uint64(dataEnd - r.Arrival)
	} else {
		b.preReady = max64(b.preReady, cas+t.rtp)
		m.stats.Reads++
		m.stats.TotalReadLatency += uint64(dataEnd - r.Arrival)
	}

	// The channel has committed decisions up to the CAS issue point.
	if cas > ch.now {
		ch.now = cas
	}
	r.finish = dataEnd
	r.served = true

	if m.audit != nil {
		m.audit(ServiceEvent{
			Channel: int(r.ch), Bank: int(r.bk), Row: row, Write: r.Write,
			RowHit: rowHit, CAS: cas, DataStart: dataStart, DataEnd: dataEnd,
		})
	}
}

// Horizon returns the scheduling horizon of the channel serving line: the
// later of its command horizon and data-bus free time. Cores use it to model
// finite write buffers — when the backlog behind a write grows too deep, the
// issuing core must stall.
func (m *Memory) Horizon(line uint64) int64 {
	chIdx, _, _, _ := m.geometry(line)
	ch := m.channels[chIdx]
	if ch.dataFre > ch.now {
		return ch.dataFre
	}
	return ch.now
}

// BulkTransferCycles returns the CPU cycles needed to stream nPages full
// pages through this tier at its peak bandwidth plus a fixed per-page
// controller overhead. Migration engines use the slower of the two tiers'
// figures (the paper: "the cost of migrating a page ... is governed by the
// slowest memory in the system").
func (m *Memory) BulkTransferCycles(nPages int) int64 {
	if nPages <= 0 {
		return 0
	}
	bytes := float64(nPages) * 4096
	cycles := int64(bytes / m.cfg.PeakBandwidth())
	const perPageOverhead = 200 // controller + remap update per page
	return cycles + int64(nPages)*perPageOverhead
}

// RecordBulkTransfer accounts a completed bulk migration burst against the
// tier's stats and invalidates every open row (the burst walks the whole
// array, destroying row locality).
func (m *Memory) RecordBulkTransfer(nPages int, cycles int64) {
	m.stats.BulkTransfers++
	m.stats.BulkTransferredPages += uint64(nPages)
	m.stats.BulkTransferCyclesPaid += cycles
	for _, ch := range m.channels {
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		ch.now += cycles
		ch.cmdFree = max64(ch.cmdFree, ch.now)
		ch.dataFre = max64(ch.dataFre, ch.now)
	}
}

// AdvanceTo moves every channel's scheduling horizon forward to cycle (used
// after externally-imposed pauses so stale horizons don't grant free
// bandwidth). It never moves horizons backward.
func (m *Memory) AdvanceTo(cycle int64) {
	for _, ch := range m.channels {
		if ch.now < cycle {
			ch.now = cycle
		}
	}
}

func max64(vs ...int64) int64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
