// Package memsim is an event-driven, command-level DRAM timing simulator for
// the two tiers of the paper's Heterogeneous Memory Architecture: off-package
// DDR3 (high reliability, ChipKill) and on-package HBM (high bandwidth,
// SEC-DED). It models channels, ranks, banks, row buffers, the command and
// data buses, and an FR-FCFS scheduler, at the ACT/PRE/RD/WR granularity —
// the level of detail placement and migration policies actually exercise.
//
// All times are in CPU cycles of the 3.2 GHz core clock from Table 1 of the
// paper; DRAM-clock parameters are converted via the per-tier TCK.
package memsim

import "fmt"

// Timing holds DRAM timing parameters. TCK is the DRAM command-clock period
// in CPU cycles; all other parameters are in DRAM clocks (as found in
// datasheets) and are converted to CPU cycles internally.
type Timing struct {
	TCK  int64 // CPU cycles per DRAM clock
	TCL  int64 // CAS (read) latency
	TCWL int64 // CAS write latency
	TRCD int64 // ACT-to-CAS delay
	TRP  int64 // precharge period
	TRAS int64 // ACT-to-PRE minimum
	TWR  int64 // write recovery before PRE
	TBL  int64 // data-bus burst occupancy for one cache line
	TCCD int64 // CAS-to-CAS minimum on a channel
	TRRD int64 // ACT-to-ACT minimum across banks of a rank
	TWTR int64 // write-to-read turnaround on a bank
	TRTP int64 // read-to-precharge delay
	// TREFI is the refresh interval and TRFC the refresh cycle time; while
	// an all-bank refresh runs the channel is blocked and every row is
	// closed. TREFI == 0 disables refresh.
	TREFI int64
	TRFC  int64
}

// cc converts a DRAM-clock count to CPU cycles.
func (t Timing) cc(clocks int64) int64 { return clocks * t.TCK }

// Config describes one memory tier.
type Config struct {
	// Name labels the tier in stats and reports ("DDR3", "HBM").
	Name string
	// CapacityBytes is the tier's usable capacity.
	CapacityBytes uint64
	// Channels is the number of independent channels.
	Channels int
	// RanksPerChannel and BanksPerRank shape bank-level parallelism.
	RanksPerChannel int
	BanksPerRank    int
	// RowBytes is the row-buffer size per bank.
	RowBytes uint64
	// BusBytesPerBeat is the data-bus width in bytes (8 for 64-bit DDRx,
	// 16 for 128-bit HBM).
	BusBytesPerBeat int
	// Timing is the tier's timing parameter set.
	Timing Timing
	// QueueDepth is the per-channel scheduler window for FR-FCFS.
	QueueDepth int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("memsim: %s: Channels must be positive", c.Name)
	case c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("memsim: %s: ranks and banks must be positive", c.Name)
	case c.RowBytes == 0 || c.RowBytes%lineSize != 0:
		return fmt.Errorf("memsim: %s: RowBytes must be a positive multiple of %d", c.Name, lineSize)
	case c.CapacityBytes == 0 || c.CapacityBytes%4096 != 0:
		return fmt.Errorf("memsim: %s: CapacityBytes must be a positive multiple of the page size", c.Name)
	case c.BusBytesPerBeat <= 0:
		return fmt.Errorf("memsim: %s: BusBytesPerBeat must be positive", c.Name)
	case c.QueueDepth <= 0:
		return fmt.Errorf("memsim: %s: QueueDepth must be positive", c.Name)
	case c.Timing.TCK <= 0 || c.Timing.TBL <= 0:
		return fmt.Errorf("memsim: %s: timing TCK and TBL must be positive", c.Name)
	case c.Timing.TREFI < 0 || c.Timing.TRFC < 0 || (c.Timing.TREFI > 0 && c.Timing.TRFC <= 0):
		return fmt.Errorf("memsim: %s: refresh timing invalid", c.Name)
	}
	return nil
}

// lineSize is the cache-line transfer granularity in bytes.
const lineSize = 64

// LinesPerRow returns the number of cache lines in one row buffer.
func (c Config) LinesPerRow() uint64 { return c.RowBytes / lineSize }

// Lines returns the tier capacity in cache lines.
func (c Config) Lines() uint64 { return c.CapacityBytes / lineSize }

// Pages returns the tier capacity in 4 KiB pages.
func (c Config) Pages() uint64 { return c.CapacityBytes / 4096 }

// PeakBandwidth returns the aggregate peak data-bus bandwidth in bytes per
// CPU cycle: every channel streaming back-to-back line bursts.
func (c Config) PeakBandwidth() float64 {
	burst := float64(c.Timing.cc(c.Timing.TBL))
	return float64(c.Channels) * float64(lineSize) / burst
}

// DDR3 returns the Table 1 off-package configuration: DDR3-1600, 2 channels,
// 64-bit bus, 1 rank/channel, 8 banks/rank, ChipKill-class reliability (the
// ECC model itself lives in the faultsim package). capacity overrides the
// 16 GiB paper capacity so experiments can run at reduced scale.
func DDR3(capacity uint64) Config {
	return Config{
		Name:            "DDR3",
		CapacityBytes:   capacity,
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowBytes:        8 * 1024,
		BusBytesPerBeat: 8,
		Timing: Timing{
			// 800 MHz command clock against the 3.2 GHz core: 4 CPU
			// cycles per DRAM clock. DDR3-1600K grade timings.
			TCK: 4,
			TCL: 11, TCWL: 8,
			TRCD: 11, TRP: 11, TRAS: 28, TWR: 12,
			TBL:  4, // 64B over 64-bit DDR bus = 8 beats = 4 clocks
			TCCD: 4, TRRD: 5, TWTR: 6, TRTP: 6,
			// 7.8 us refresh interval, ~260 ns all-bank refresh (4 Gb).
			TREFI: 6240, TRFC: 208,
		},
		QueueDepth: 32,
	}
}

// NVM returns a PCM-class non-volatile tier for N-tier topologies: a
// DDR3-like channel interface with a much slower cell array — roughly 3x the
// DRAM row-activation latency on reads, an order of magnitude longer write
// recovery, and no refresh (non-volatile cells hold state without it). The
// numbers follow the latency ratios commonly reported for first-generation
// PCM parts; only the ratios matter at the simulator's level of detail.
func NVM(capacity uint64) Config {
	return Config{
		Name:            "NVM",
		CapacityBytes:   capacity,
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowBytes:        4 * 1024,
		BusBytesPerBeat: 8,
		Timing: Timing{
			TCK: 4,
			TCL: 11, TCWL: 8,
			// Array reads pay ~3x the DRAM ACT latency; writes (SET/RESET)
			// dominate the cell's program time via TWR.
			TRCD: 36, TRP: 11, TRAS: 53, TWR: 120,
			TBL:  4,
			TCCD: 4, TRRD: 5, TWTR: 30, TRTP: 6,
			// Non-volatile: no refresh.
			TREFI: 0, TRFC: 0,
		},
		QueueDepth: 32,
	}
}

// HBM returns the Table 1 on-package configuration: HBM at a 500 MHz command
// clock (DDR 1.0 GHz), 8 channels, 128-bit bus, 1 rank/channel, 8 banks/rank,
// SEC-DED-class reliability. capacity overrides the 1 GiB paper capacity.
func HBM(capacity uint64) Config {
	return Config{
		Name:            "HBM",
		CapacityBytes:   capacity,
		Channels:        8,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		RowBytes:        2 * 1024,
		BusBytesPerBeat: 16,
		Timing: Timing{
			// 500 MHz command clock: 6.4 CPU cycles per DRAM clock,
			// rounded to 6 (documented scale approximation).
			TCK: 6,
			TCL: 7, TCWL: 4,
			TRCD: 7, TRP: 7, TRAS: 17, TWR: 8,
			TBL:  2, // 64B over 128-bit DDR bus = 4 beats = 2 clocks
			TCCD: 2, TRRD: 3, TWTR: 4, TRTP: 3,
			// 3.9 us refresh interval at stacked-die densities, ~160 ns RFC.
			TREFI: 1950, TRFC: 80,
		},
		QueueDepth: 32,
	}
}
