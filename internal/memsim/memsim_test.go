package memsim

import (
	"testing"
	"testing/quick"

	"hmem/internal/xrand"
)

// small returns a compact DDR3-timed config for unit tests.
func small() Config {
	c := DDR3(1 << 20) // 1 MiB
	return c
}

func TestConfigValidate(t *testing.T) {
	good := small()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.RanksPerChannel = 0 },
		func(c *Config) { c.BanksPerRank = -1 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.RowBytes = 100 },
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.CapacityBytes = 4097 },
		func(c *Config) { c.BusBytesPerBeat = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.Timing.TCK = 0 },
		func(c *Config) { c.Timing.TBL = 0 },
	}
	for i, mut := range mutations {
		c := small()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := small()
	c.Channels = 0
	New(c)
}

func TestGeometryBounds(t *testing.T) {
	m := New(small())
	rng := xrand.New(5)
	for i := 0; i < 10000; i++ {
		line := rng.Uint64n(m.cfg.Lines())
		ch, bk, row, col := m.geometry(line)
		if ch < 0 || ch >= m.cfg.Channels {
			t.Fatalf("channel %d out of range", ch)
		}
		if bk < 0 || bk >= m.cfg.RanksPerChannel*m.cfg.BanksPerRank {
			t.Fatalf("bank %d out of range", bk)
		}
		if row < 0 {
			t.Fatalf("negative row %d", row)
		}
		if col >= m.cfg.LinesPerRow() {
			t.Fatalf("column %d out of range", col)
		}
	}
}

func TestGeometryChannelInterleave(t *testing.T) {
	m := New(small())
	ch0, _, _, _ := m.geometry(0)
	ch1, _, _, _ := m.geometry(1)
	if ch0 == ch1 {
		t.Fatal("consecutive lines should map to different channels")
	}
}

func TestGeometryInjective(t *testing.T) {
	m := New(small())
	seen := map[[4]uint64]uint64{}
	for line := uint64(0); line < 4096; line++ {
		ch, bk, row, col := m.geometry(line)
		key := [4]uint64{uint64(ch), uint64(bk), uint64(row), col}
		if prev, dup := seen[key]; dup {
			t.Fatalf("lines %d and %d collide at %v", prev, line, key)
		}
		seen[key] = line
	}
}

func TestIdleReadLatency(t *testing.T) {
	m := New(small())
	r := &Request{Line: 0, Arrival: 0}
	m.Enqueue(r)
	got := m.Complete(r)
	// ACT@0 + tRCD(11*4) -> CAS@44 + tCL(11*4) -> data@88 + tBL(4*4) = 104.
	if got != 104 {
		t.Fatalf("idle read latency = %d, want 104", got)
	}
	if !r.Finished() || r.Finish() != 104 {
		t.Fatal("Finish/Finished inconsistent")
	}
}

func TestRowHitFasterThanMissAndConflict(t *testing.T) {
	cfg := small()

	// Miss then hit on the same row.
	m := New(cfg)
	miss := &Request{Line: 0, Arrival: 0}
	m.Enqueue(miss)
	m.Complete(miss)
	hit := &Request{Line: uint64(cfg.Channels), Arrival: miss.Finish()} // same channel, next column
	m.Enqueue(hit)
	m.Complete(hit)
	hitLat := hit.Finish() - hit.Arrival

	// Miss then conflict: same bank, different row.
	m2 := New(cfg)
	first := &Request{Line: 0, Arrival: 0}
	m2.Enqueue(first)
	m2.Complete(first)
	nbk := uint64(cfg.RanksPerChannel * cfg.BanksPerRank)
	conflictLine := uint64(cfg.Channels) * cfg.LinesPerRow() * nbk // same channel+bank, next row
	conflict := &Request{Line: conflictLine, Arrival: first.Finish()}
	m2.Enqueue(conflict)
	m2.Complete(conflict)
	confLat := conflict.Finish() - conflict.Arrival

	missLat := miss.Finish() - miss.Arrival
	if !(hitLat < missLat && missLat < confLat) {
		t.Fatalf("latency ordering violated: hit=%d miss=%d conflict=%d", hitLat, missLat, confLat)
	}
	st := m2.Stats()
	if st.RowConflicts != 1 {
		t.Fatalf("RowConflicts = %d, want 1", st.RowConflicts)
	}
}

func TestStreamingApproachesPeakBandwidth(t *testing.T) {
	cfg := small()
	m := New(cfg)
	// Stream sequential lines: channel-interleaved row hits.
	const n = 4096
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{Line: uint64(i), Arrival: 0}
		m.Enqueue(reqs[i])
	}
	end := m.Drain()
	bytes := float64(n * 64)
	achieved := bytes / float64(end)
	peak := cfg.PeakBandwidth()
	if achieved < 0.85*peak {
		t.Fatalf("streaming bandwidth %.2f B/cc < 85%% of peak %.2f B/cc", achieved, peak)
	}
	if achieved > peak*1.001 {
		t.Fatalf("achieved bandwidth %.2f exceeds peak %.2f", achieved, peak)
	}
	if hr := m.Stats().RowHitRate(); hr < 0.9 {
		t.Fatalf("streaming row hit rate %.2f too low", hr)
	}
}

func TestHBMOutpacesDDR3(t *testing.T) {
	hbm := HBM(1 << 20)
	ddr := DDR3(1 << 20)
	ratio := hbm.PeakBandwidth() / ddr.PeakBandwidth()
	if ratio < 4 || ratio > 8.5 {
		t.Fatalf("HBM/DDR3 peak bandwidth ratio = %.2f, want 4-8 (paper: 4x-8x)", ratio)
	}

	// Random access sweep: HBM must actually deliver more under load.
	run := func(cfg Config) int64 {
		m := New(cfg)
		rng := xrand.New(77)
		for i := 0; i < 2000; i++ {
			m.Enqueue(&Request{Line: rng.Uint64n(cfg.Lines()), Arrival: int64(i) * 2})
		}
		return m.Drain()
	}
	if hbmEnd, ddrEnd := run(hbm), run(ddr); hbmEnd >= ddrEnd {
		t.Fatalf("HBM finished random sweep at %d, DDR3 at %d; HBM should be faster", hbmEnd, ddrEnd)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := small()
	m := New(cfg)
	opener := &Request{Line: 0, Arrival: 0}
	m.Enqueue(opener)
	m.Complete(opener)

	nbk := uint64(cfg.RanksPerChannel * cfg.BanksPerRank)
	conflictLine := uint64(cfg.Channels) * cfg.LinesPerRow() * nbk
	conflict := &Request{Line: conflictLine, Arrival: opener.Finish()}
	hit := &Request{Line: uint64(cfg.Channels), Arrival: opener.Finish()}
	m.Enqueue(conflict) // older
	m.Enqueue(hit)      // younger but row hit
	m.Drain()
	if hit.Finish() >= conflict.Finish() {
		t.Fatalf("FR-FCFS should serve the row hit first: hit=%d conflict=%d", hit.Finish(), conflict.Finish())
	}
}

func TestQueueOverflowForcesService(t *testing.T) {
	cfg := small()
	cfg.QueueDepth = 4
	m := New(cfg)
	reqs := make([]*Request, 64)
	for i := range reqs {
		// All to channel 0 so the single queue overflows.
		reqs[i] = &Request{Line: uint64(i) * uint64(cfg.Channels), Arrival: 0}
		m.Enqueue(reqs[i])
	}
	served := 0
	for _, r := range reqs {
		if r.Finished() {
			served++
		}
	}
	if served < len(reqs)-cfg.QueueDepth {
		t.Fatalf("only %d served before drain; queue depth %d not enforced", served, cfg.QueueDepth)
	}
	m.Drain()
	for i, r := range reqs {
		if !r.Finished() {
			t.Fatalf("request %d unserved after drain", i)
		}
	}
}

func TestEnqueuePanics(t *testing.T) {
	m := New(small())
	t.Run("out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		m.Enqueue(&Request{Line: m.cfg.Lines()})
	})
	t.Run("reuse served", func(t *testing.T) {
		r := &Request{Line: 0}
		m.Enqueue(r)
		m.Complete(r)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		m.Enqueue(r)
	})
}

func TestFinishPanicsUnserved(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Request{}).Finish()
}

func TestCompletePanicsOnForeignRequest(t *testing.T) {
	m := New(small())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Complete(&Request{Line: 1})
}

func TestWriteAccounting(t *testing.T) {
	m := New(small())
	w := &Request{Line: 0, Write: true, Arrival: 0}
	r := &Request{Line: uint64(m.cfg.Channels), Arrival: 0}
	m.Enqueue(w)
	m.Enqueue(r)
	m.Drain()
	st := m.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalWriteLatency == 0 || st.TotalReadLatency == 0 {
		t.Fatal("latency accounting missing")
	}
	if st.AvgReadLatency() <= 0 {
		t.Fatal("AvgReadLatency not positive")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	cfg := small()
	// Same bank, same row: write then read. The read must respect tWTR.
	m := New(cfg)
	w := &Request{Line: 0, Write: true, Arrival: 0}
	m.Enqueue(w)
	m.Complete(w)
	rd := &Request{Line: uint64(cfg.Channels), Arrival: w.Finish()}
	m.Enqueue(rd)
	m.Complete(rd)
	minCAS := w.Finish() + cfg.Timing.cc(cfg.Timing.TWTR)
	if rd.Finish() < minCAS+cfg.Timing.cc(cfg.Timing.TCL) {
		t.Fatalf("read after write finished at %d, violates tWTR floor %d",
			rd.Finish(), minCAS+cfg.Timing.cc(cfg.Timing.TCL))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		m := New(small())
		rng := xrand.New(123)
		reqs := make([]*Request, 500)
		for i := range reqs {
			reqs[i] = &Request{
				Line:    rng.Uint64n(m.cfg.Lines()),
				Write:   rng.Bool(0.3),
				Arrival: int64(i) * 3,
			}
			m.Enqueue(reqs[i])
		}
		m.Drain()
		out := make([]int64, len(reqs))
		for i, r := range reqs {
			out[i] = r.Finish()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic finish at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFinishNeverBeforeMinimumLatency(t *testing.T) {
	cfg := small()
	minLat := cfg.Timing.cc(cfg.Timing.TCWL + cfg.Timing.TBL) // fastest possible: open-row write
	f := func(seed uint64) bool {
		m := New(cfg)
		rng := xrand.New(seed)
		n := 50 + rng.Intn(200)
		reqs := make([]*Request, n)
		var at int64
		for i := range reqs {
			at += int64(rng.Intn(20))
			reqs[i] = &Request{Line: rng.Uint64n(cfg.Lines()), Write: rng.Bool(0.4), Arrival: at}
			m.Enqueue(reqs[i])
		}
		m.Drain()
		for _, r := range reqs {
			if r.Finish() < r.Arrival+minLat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDataBusNeverOversubscribed(t *testing.T) {
	cfg := small()
	m := New(cfg)
	rng := xrand.New(9)
	for i := 0; i < 3000; i++ {
		m.Enqueue(&Request{Line: rng.Uint64n(cfg.Lines()), Arrival: 0})
	}
	end := m.Drain()
	st := m.Stats()
	capacity := int64(cfg.Channels) * end
	if st.DataBusBusy > capacity {
		t.Fatalf("data bus busy %d exceeds capacity %d", st.DataBusBusy, capacity)
	}
}

func TestBulkTransferCycles(t *testing.T) {
	m := New(small())
	if got := m.BulkTransferCycles(0); got != 0 {
		t.Fatalf("BulkTransferCycles(0) = %d", got)
	}
	one := m.BulkTransferCycles(1)
	ten := m.BulkTransferCycles(10)
	if one <= 0 || ten <= one*9 {
		t.Fatalf("bulk transfer not scaling: 1 page = %d, 10 pages = %d", one, ten)
	}
	m.RecordBulkTransfer(10, ten)
	st := m.Stats()
	if st.BulkTransfers != 1 || st.BulkTransferredPages != 10 || st.BulkTransferCyclesPaid != ten {
		t.Fatalf("bulk stats = %+v", st)
	}
}

func TestRecordBulkTransferClosesRows(t *testing.T) {
	cfg := small()
	m := New(cfg)
	r1 := &Request{Line: 0, Arrival: 0}
	m.Enqueue(r1)
	m.Complete(r1)
	m.RecordBulkTransfer(1, 100)
	// Same row again: must be a miss because the burst closed it.
	r2 := &Request{Line: uint64(cfg.Channels), Arrival: r1.Finish() + 200}
	m.Enqueue(r2)
	m.Complete(r2)
	if m.Stats().RowHits != 0 {
		t.Fatalf("row survived bulk transfer: %+v", m.Stats())
	}
}

func TestResetStats(t *testing.T) {
	m := New(small())
	r := &Request{Line: 0}
	m.Enqueue(r)
	m.Complete(r)
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left %+v", m.Stats())
	}
}

func TestAdvanceTo(t *testing.T) {
	m := New(small())
	m.AdvanceTo(1000)
	r := &Request{Line: 0, Arrival: 0}
	m.Enqueue(r)
	if got := m.Complete(r); got < 1000 {
		t.Fatalf("request completed at %d, before advanced horizon", got)
	}
	m.AdvanceTo(500) // must not move backward
	r2 := &Request{Line: 1, Arrival: 0}
	m.Enqueue(r2)
	if got := m.Complete(r2); got < 1000 {
		t.Fatalf("horizon moved backward: %d", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.AvgReadLatency() != 0 || s.RowHitRate() != 0 {
		t.Fatal("zero stats should yield zero rates")
	}
}

func BenchmarkRandomAccess(b *testing.B) {
	cfg := DDR3(1 << 26)
	m := New(cfg)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Request{Line: rng.Uint64n(cfg.Lines()), Arrival: int64(i)}
		m.Enqueue(r)
	}
	m.Drain()
}

func BenchmarkStreaming(b *testing.B) {
	cfg := HBM(1 << 26)
	m := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &Request{Line: uint64(i) % cfg.Lines(), Arrival: int64(i)}
		m.Enqueue(r)
	}
	m.Drain()
}
