// Package breaker implements a circuit breaker: a three-state machine
// (closed / open / half-open) that watches a sliding window of call outcomes
// and stops sending traffic to an upstream that is failing, then probes it
// with a bounded trickle until it proves healthy again.
//
// The contract is deliberately minimal so both hmemd's typed client (one
// breaker per host) and the cluster scheduler (one breaker per worker, via
// Set) can share it:
//
//	done, ok := b.Allow()
//	if !ok { /* refuse fast; the upstream is quarantined */ }
//	err := call()
//	done(err == nil /* or any success predicate */)
//
// Closed admits everything and records outcomes into a sliding window; when
// the window's failure ratio crosses the threshold (with a minimum sample
// count, so one early failure can't trip an idle breaker) it opens. Open
// refuses everything until OpenFor has elapsed, then moves to half-open.
// Half-open admits at most ProbeBudget concurrent probes: ProbeSuccesses
// consecutive successful probes close the breaker, any probe failure snaps
// it back to open for another full OpenFor.
//
// Everything is stdlib-only and safe for concurrent use.
package breaker

import (
	"sync"
	"time"
)

// State is the breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed is normal operation: all calls admitted, outcomes recorded.
	Closed State = iota
	// Open is quarantine: all calls refused until OpenFor elapses.
	Open
	// HalfOpen is recovery probing: up to ProbeBudget concurrent calls
	// admitted; their outcomes decide between Closed and Open.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Config tunes a Breaker. The zero value gives usable defaults throughout.
type Config struct {
	// Window is the sliding outcome window size (<=0 = 20 outcomes).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// failure ratio can trip the breaker (<=0 = 5). Below it the breaker
	// stays closed no matter what, so a cold upstream's first hiccup does
	// not quarantine it.
	MinSamples int
	// FailureRatio is the windowed failure fraction at or above which a
	// closed breaker trips (<=0 = 0.5).
	FailureRatio float64
	// OpenFor is the quarantine duration before an open breaker admits
	// probes (<=0 = 5s).
	OpenFor time.Duration
	// ProbeBudget bounds concurrent half-open probes (<=0 = 1) — the
	// recovering upstream must not be re-flooded by every waiter at once.
	ProbeBudget int
	// ProbeSuccesses is the number of consecutive successful probes needed
	// to close again (<=0 = 2).
	ProbeSuccesses int
	// Now is the clock (nil = time.Now) — the test seam.
	Now func() time.Time
	// OnTransition, when set, is called after every state change, outside
	// the breaker's lock (so it may call back into the breaker).
	OnTransition func(from, to State)
}

func (c Config) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 20
}

func (c Config) minSamples() int {
	if c.MinSamples > 0 {
		return c.MinSamples
	}
	return 5
}

func (c Config) failureRatio() float64 {
	if c.FailureRatio > 0 {
		return c.FailureRatio
	}
	return 0.5
}

func (c Config) openFor() time.Duration {
	if c.OpenFor > 0 {
		return c.OpenFor
	}
	return 5 * time.Second
}

func (c Config) probeBudget() int {
	if c.ProbeBudget > 0 {
		return c.ProbeBudget
	}
	return 1
}

func (c Config) probeSuccesses() int {
	if c.ProbeSuccesses > 0 {
		return c.ProbeSuccesses
	}
	return 2
}

func (c Config) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// Breaker is one circuit breaker. Create with New.
type Breaker struct {
	cfg Config

	mu       sync.Mutex
	state    State
	outcomes []bool // ring buffer of recent outcomes (true = success)
	head     int    // next write slot
	n        int    // filled entries
	fails    int    // failures among the filled entries
	openedAt time.Time
	probes   int // in-flight half-open probes
	probeOK  int // consecutive successful probes this half-open episode

	// counters (guarded by mu; read via Stats)
	allowed, refused, opens, closes uint64
}

// New builds a breaker starting Closed.
func New(cfg Config) *Breaker {
	return &Breaker{cfg: cfg, outcomes: make([]bool, cfg.window())}
}

// Allow reports whether a call may proceed. When it returns true the caller
// MUST invoke done exactly once with the call's outcome (true = success);
// dropping it leaks a half-open probe slot. When it returns false the
// upstream is quarantined and the caller should fail fast or go elsewhere.
func (b *Breaker) Allow() (done func(success bool), ok bool) {
	var tr *transition
	b.mu.Lock()
	switch b.state {
	case Open:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.openFor() {
			b.refused++
			b.mu.Unlock()
			return nil, false
		}
		tr = b.setState(HalfOpen)
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.probeBudget() {
			b.refused++
			b.mu.Unlock()
			b.notify(tr)
			return nil, false
		}
		b.probes++
		b.allowed++
		b.mu.Unlock()
		b.notify(tr)
		return b.recordProbe, true
	default: // Closed
		b.allowed++
		b.mu.Unlock()
		return b.recordClosed, true
	}
}

// State returns the current state. An expired Open quarantine still reports
// Open until traffic arrives — transitions are driven by Allow, not by a
// timer goroutine.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats is a point-in-time snapshot of breaker activity.
type Stats struct {
	State            State
	Allowed, Refused uint64
	Opens, Closes    uint64
	// WindowSamples / WindowFailures describe the current sliding window.
	WindowSamples, WindowFailures int
}

// Stats snapshots the counters.
func (b *Breaker) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{
		State:   b.state,
		Allowed: b.allowed, Refused: b.refused,
		Opens: b.opens, Closes: b.closes,
		WindowSamples: b.n, WindowFailures: b.fails,
	}
}

// transition is a pending OnTransition callback, invoked outside the lock.
type transition struct{ from, to State }

func (b *Breaker) notify(tr *transition) {
	if tr != nil && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(tr.from, tr.to)
	}
}

// setState moves the machine and resets the episode-local bookkeeping. Must
// hold b.mu; the returned transition is fired by the caller after unlocking.
func (b *Breaker) setState(to State) *transition {
	from := b.state
	if from == to {
		return nil
	}
	b.state = to
	switch to {
	case Open:
		b.opens++
		b.openedAt = b.cfg.now()
		b.resetWindow()
	case HalfOpen:
		b.probes = 0
		b.probeOK = 0
	case Closed:
		b.closes++
		b.resetWindow()
	}
	return &transition{from: from, to: to}
}

func (b *Breaker) resetWindow() {
	b.head, b.n, b.fails = 0, 0, 0
}

// push records one outcome into the sliding window. Must hold b.mu.
func (b *Breaker) push(success bool) {
	w := len(b.outcomes)
	if b.n == w {
		if !b.outcomes[b.head] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.outcomes[b.head] = success
	if !success {
		b.fails++
	}
	b.head = (b.head + 1) % w
}

// recordClosed lands the outcome of a call admitted while Closed. Outcomes
// arriving after the breaker already left Closed (a slow call racing a trip)
// are dropped — the episode they describe is over.
func (b *Breaker) recordClosed(success bool) {
	var tr *transition
	b.mu.Lock()
	if b.state == Closed {
		b.push(success)
		if b.n >= b.cfg.minSamples() &&
			float64(b.fails) >= b.cfg.failureRatio()*float64(b.n) {
			tr = b.setState(Open)
		}
	}
	b.mu.Unlock()
	b.notify(tr)
}

// recordProbe lands the outcome of a half-open probe: enough consecutive
// successes close the breaker, any failure re-opens it for a full OpenFor.
func (b *Breaker) recordProbe(success bool) {
	var tr *transition
	b.mu.Lock()
	if b.probes > 0 {
		b.probes--
	}
	switch b.state {
	case HalfOpen:
		if success {
			b.probeOK++
			if b.probeOK >= b.cfg.probeSuccesses() {
				tr = b.setState(Closed)
			}
		} else {
			tr = b.setState(Open)
		}
	case Closed:
		// A sibling probe already closed us; this outcome is ordinary
		// closed-state evidence.
		b.push(success)
	}
	b.mu.Unlock()
	b.notify(tr)
}
