package breaker

import (
	"sort"
	"sync"
)

// Set is a keyed family of breakers sharing one Config — the cluster
// scheduler holds one per worker ID, the service mirrors their states onto
// /metrics. Members are created on first use and never removed: a departed
// worker's breaker is a few hundred bytes, and keeping it means a flapping
// worker that re-registers inherits its quarantine instead of a clean slate.
type Set struct {
	// Config parameterizes every member breaker.
	Config Config
	// OnTransition, when set, observes every member's state changes with the
	// member key attached (metrics, spans, logs). Called outside locks.
	OnTransition func(key string, from, to State)

	mu sync.Mutex
	m  map[string]*Breaker
}

// Get returns the breaker for key, creating it (Closed) on first use.
func (s *Set) Get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b
	}
	if s.m == nil {
		s.m = make(map[string]*Breaker)
	}
	cfg := s.Config
	if s.OnTransition != nil {
		fire := s.OnTransition
		cfg.OnTransition = func(from, to State) { fire(key, from, to) }
	}
	b := New(cfg)
	s.m[key] = b
	return b
}

// States snapshots every member's state, keyed by member key.
func (s *Set) States() map[string]State {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]State, len(s.m))
	for k, b := range s.m {
		out[k] = b.State()
	}
	return out
}

// Keys lists the member keys in sorted order (deterministic /metrics).
func (s *Set) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Totals sums opens, closes, and refusals across every member.
func (s *Set) Totals() (opens, closes, refused uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		st := b.Stats()
		opens += st.Opens
		closes += st.Closes
		refused += st.Refused
	}
	return opens, closes, refused
}
