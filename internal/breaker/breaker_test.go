package breaker

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmem/internal/xrand"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// call pushes one outcome through the Allow/done cycle, failing the test if
// the breaker refuses.
func call(t *testing.T, b *Breaker, success bool) {
	t.Helper()
	done, ok := b.Allow()
	if !ok {
		t.Fatalf("breaker refused a call in state %s", b.State())
	}
	done(success)
}

// TestBreakerLifecycle walks the whole machine: closed trips at the failure
// ratio, open refuses, the quarantine expires into half-open probing, and
// consecutive probe successes close it again.
func TestBreakerLifecycle(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	b := New(Config{
		Window: 10, MinSamples: 4, FailureRatio: 0.5,
		OpenFor: time.Second, ProbeBudget: 1, ProbeSuccesses: 2,
		Now: clock.Now,
		OnTransition: func(from, to State) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	})

	// Three failures in a row: below MinSamples, still closed.
	for i := 0; i < 3; i++ {
		call(t, b, false)
	}
	if b.State() != Closed {
		t.Fatalf("state after 3 failures = %s, want closed (MinSamples=4)", b.State())
	}
	// The fourth failure reaches MinSamples with ratio 1.0: trip.
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state after 4 failures = %s, want open", b.State())
	}
	if _, ok := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before OpenFor elapsed")
	}

	// Quarantine expires: the next Allow is a probe.
	clock.Advance(time.Second + time.Millisecond)
	done, ok := b.Allow()
	if !ok {
		t.Fatal("expired quarantine refused the probe")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state during probe = %s, want half-open", b.State())
	}
	done(true)
	// One success is not enough (ProbeSuccesses=2).
	if b.State() != HalfOpen {
		t.Fatalf("state after 1 probe success = %s, want half-open", b.State())
	}
	call(t, b, true)
	if b.State() != Closed {
		t.Fatalf("state after 2 probe successes = %s, want closed", b.State())
	}

	st := b.Stats()
	if st.Opens != 1 || st.Closes != 1 {
		t.Fatalf("opens=%d closes=%d, want 1 and 1", st.Opens, st.Closes)
	}
	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestBreakerProbeFailureReopens: any half-open probe failure snaps back to a
// full quarantine, and the reopened breaker refuses again until OpenFor.
func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	b := New(Config{
		Window: 4, MinSamples: 2, FailureRatio: 0.5,
		OpenFor: time.Second, Now: clock.Now,
	})
	call(t, b, false)
	call(t, b, false)
	if b.State() != Open {
		t.Fatalf("state = %s, want open", b.State())
	}
	clock.Advance(1100 * time.Millisecond)
	done, ok := b.Allow()
	if !ok {
		t.Fatal("probe refused")
	}
	done(false)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	// The new quarantine starts from the failed probe, not the first trip.
	clock.Advance(900 * time.Millisecond)
	if _, ok := b.Allow(); ok {
		t.Fatal("reopened breaker admitted a call before its fresh OpenFor elapsed")
	}
	clock.Advance(200 * time.Millisecond)
	if _, ok := b.Allow(); !ok {
		t.Fatal("second quarantine never expired")
	}
}

// TestBreakerHalfOpenProbeBurst pins the probe budget: with ProbeBudget=2,
// exactly two concurrent probes are admitted and the burst beyond them is
// refused, however many callers pile in.
func TestBreakerHalfOpenProbeBurst(t *testing.T) {
	clock := newFakeClock()
	b := New(Config{
		Window: 4, MinSamples: 2, FailureRatio: 0.5,
		OpenFor: time.Second, ProbeBudget: 2, ProbeSuccesses: 3,
		Now: clock.Now,
	})
	call(t, b, false)
	call(t, b, false)
	clock.Advance(2 * time.Second)

	var dones []func(bool)
	admitted := 0
	for i := 0; i < 10; i++ {
		if done, ok := b.Allow(); ok {
			admitted++
			dones = append(dones, done)
		}
	}
	if admitted != 2 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 2 (ProbeBudget)", admitted)
	}
	// Completing one probe frees one slot — and only one.
	dones[0](true)
	admitted = 0
	for i := 0; i < 10; i++ {
		if done, ok := b.Allow(); ok {
			admitted++
			dones = append(dones, done)
		}
	}
	if admitted != 1 {
		t.Fatalf("after one probe returned, %d more admitted, want 1", admitted)
	}
}

// TestBreakerAlwaysHealthyNeverOpens is the property test: whatever the
// (seeded) arrival pattern and concurrency, an upstream that always succeeds
// never opens the breaker and never has a call refused.
func TestBreakerAlwaysHealthyNeverOpens(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		rng := xrand.New(seed)
		b := New(Config{
			Window:     1 + int(rng.Uint64n(30)),
			MinSamples: 1 + int(rng.Uint64n(10)),
			// Any ratio, including an absurdly twitchy 1%.
			FailureRatio: 0.01 + float64(rng.Uint64n(100))/100,
			OpenFor:      time.Millisecond,
		})
		workers := 1 + int(rng.Uint64n(8))
		var refused atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					done, ok := b.Allow()
					if !ok {
						refused.Add(1)
						continue
					}
					done(true)
				}
			}()
		}
		wg.Wait()
		if refused.Load() != 0 {
			t.Fatalf("seed %d: healthy upstream had %d calls refused", seed, refused.Load())
		}
		if st := b.Stats(); st.Opens != 0 || b.State() != Closed {
			t.Fatalf("seed %d: healthy upstream opened the breaker (opens=%d state=%s)",
				seed, st.Opens, b.State())
		}
	}
}

// TestBreakerConcurrentTripReset hammers Allow/done from many goroutines with
// a mixed outcome stream while the clock advances, so trips, probe races, and
// resets interleave — the -race regression for the state machine's locking.
func TestBreakerConcurrentTripReset(t *testing.T) {
	b := New(Config{
		Window: 8, MinSamples: 4, FailureRatio: 0.5,
		OpenFor: time.Microsecond, ProbeBudget: 2, ProbeSuccesses: 1,
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < 500; i++ {
				done, ok := b.Allow()
				if !ok {
					continue
				}
				done(rng.Uint64n(3) != 0) // ~2/3 success
			}
		}(w)
	}
	wg.Wait()
	// No assertion beyond invariants: counters consistent, state valid.
	st := b.Stats()
	if st.State != Closed && st.State != Open && st.State != HalfOpen {
		t.Fatalf("invalid state %d", st.State)
	}
	if st.WindowFailures > st.WindowSamples {
		t.Fatalf("window failures %d > samples %d", st.WindowFailures, st.WindowSamples)
	}
	if st.Opens < st.Closes {
		t.Fatalf("closes %d exceed opens %d", st.Closes, st.Opens)
	}
}

// TestSetKeysAndTransitions: members are created on demand, transitions carry
// the member key, and the aggregate totals see every member.
func TestSetKeysAndTransitions(t *testing.T) {
	clock := newFakeClock()
	var mu sync.Mutex
	got := map[string][]string{}
	s := &Set{
		Config: Config{Window: 4, MinSamples: 2, FailureRatio: 0.5, OpenFor: time.Second, Now: clock.Now},
		OnTransition: func(key string, from, to State) {
			mu.Lock()
			got[key] = append(got[key], from.String()+">"+to.String())
			mu.Unlock()
		},
	}
	if s.Get("w1") != s.Get("w1") {
		t.Fatal("Get is not stable per key")
	}
	call(t, s.Get("w1"), false)
	call(t, s.Get("w1"), false)
	call(t, s.Get("w2"), true)

	states := s.States()
	if states["w1"] != Open || states["w2"] != Closed {
		t.Fatalf("states = %v, want w1 open, w2 closed", states)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "w1" || keys[1] != "w2" {
		t.Fatalf("keys = %v", keys)
	}
	opens, closes, _ := s.Totals()
	if opens != 1 || closes != 0 {
		t.Fatalf("totals opens=%d closes=%d, want 1, 0", opens, closes)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got["w1"]) != 1 || got["w1"][0] != "closed>open" || len(got["w2"]) != 0 {
		t.Fatalf("transition log = %v", got)
	}
}
