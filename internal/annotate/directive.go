package annotate

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"hmem/internal/workload"
)

// Directive files are the source-level artifact of §7: the list of
// structures a program pins in HBM. The paper's flow compiles annotations
// into the binary and has "the program's ELF loader instruct the memory
// controller to pin annotated data structures"; here the directive file
// stands in for the annotated binary, and ResolvePins plays the loader.
//
// Format: one directive per line,
//
//	pin <structure-name>
//
// with '#' comments and blank lines ignored.

// ErrBadDirective indicates a malformed directives line.
var ErrBadDirective = errors.New("annotate: malformed directive")

// WriteDirectives serializes chosen annotations as a directive file.
func WriteDirectives(w io.Writer, annotations []Annotation) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# hmem pin directives (see §7 of the paper)")
	for _, a := range annotations {
		if _, err := fmt.Fprintf(bw, "pin %s\n", a.Name); err != nil {
			return fmt.Errorf("annotate: writing directive for %s: %w", a.Name, err)
		}
	}
	return bw.Flush()
}

// ParseDirectives reads a directive file and returns the structure names to
// pin, in file order, deduplicated.
func ParseDirectives(r io.Reader) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 || fields[0] != "pin" {
			return nil, fmt.Errorf("%w at line %d: %q", ErrBadDirective, line, text)
		}
		if !seen[fields[1]] {
			seen[fields[1]] = true
			out = append(out, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("annotate: reading directives: %w", err)
	}
	return out, nil
}

// ResolvePins is the loader step: it maps directive names onto the loaded
// program's structure instances and returns the page pin list (sorted).
// Unknown names are reported as an error — a stale directive file should
// fail loudly, not silently pin nothing.
func ResolvePins(names []string, structs []workload.Structure) ([]uint64, error) {
	byName := map[string][]workload.Structure{}
	for _, st := range structs {
		byName[st.Name] = append(byName[st.Name], st)
	}
	var pins []uint64
	for _, name := range names {
		instances, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("annotate: directive names unknown structure %q", name)
		}
		for _, st := range instances {
			for i := 0; i < st.Pages; i++ {
				pins = append(pins, st.FirstPage+uint64(i))
			}
		}
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
	return pins, nil
}
