package annotate

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hmem/internal/workload"
)

func TestDirectiveRoundTrip(t *testing.T) {
	anns := []Annotation{{Name: "mcf.hot-scratch.0"}, {Name: "mcf.hot-scratch.1"}}
	var buf bytes.Buffer
	if err := WriteDirectives(&buf, anns); err != nil {
		t.Fatal(err)
	}
	names, err := ParseDirectives(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "mcf.hot-scratch.0" || names[1] != "mcf.hot-scratch.1" {
		t.Fatalf("names = %v", names)
	}
}

func TestParseDirectivesSkipsCommentsAndDedupes(t *testing.T) {
	in := "# header\n\npin a\npin b\npin a\n  # trailing\n"
	names, err := ParseDirectives(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestParseDirectivesRejectsGarbage(t *testing.T) {
	for _, in := range []string{"unpin a", "pin", "pin a b", "frobnicate"} {
		if _, err := ParseDirectives(strings.NewReader(in)); !errors.Is(err, ErrBadDirective) {
			t.Errorf("%q: expected ErrBadDirective, got %v", in, err)
		}
	}
}

func TestResolvePins(t *testing.T) {
	structs := []workload.Structure{
		{Name: "buf", FirstPage: 10, Pages: 2},  // core 0 instance
		{Name: "buf", FirstPage: 100, Pages: 3}, // core 1 instance
		{Name: "table", FirstPage: 50, Pages: 1},
	}
	pins, err := ResolvePins([]string{"buf"}, structs)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 11, 100, 101, 102}
	if len(pins) != len(want) {
		t.Fatalf("pins = %v", pins)
	}
	for i := range want {
		if pins[i] != want[i] {
			t.Fatalf("pins = %v, want %v", pins, want)
		}
	}
	if _, err := ResolvePins([]string{"missing"}, structs); err == nil {
		t.Fatal("stale directive must fail loudly")
	}
}

func TestDirectiveEndToEnd(t *testing.T) {
	// Full §7 flow on a real benchmark: profile -> Select -> write the
	// directive file -> parse it back -> loader resolves pins -> the pins
	// match Select's output set.
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, 0, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]*corePageStats{}
	for {
		rec, err := g.Next()
		if err != nil {
			break
		}
		ps := counts[rec.Page()]
		if ps == nil {
			ps = &corePageStats{page: rec.Page()}
			counts[rec.Page()] = ps
		}
		if rec.Kind.IsWrite() {
			ps.writes++
		} else {
			ps.reads++
		}
	}
	stats := statsFromCounts(counts)

	anns, pins := Select(g.Structures(), stats, 256)
	if len(anns) == 0 {
		t.Skip("nothing annotatable at this trace length")
	}
	var buf bytes.Buffer
	if err := WriteDirectives(&buf, anns); err != nil {
		t.Fatal(err)
	}
	names, err := ParseDirectives(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resolved, err := ResolvePins(names, g.Structures())
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) != len(pins) {
		t.Fatalf("loader resolved %d pages, Select pinned %d", len(resolved), len(pins))
	}
	set := map[uint64]bool{}
	for _, p := range pins {
		set[p] = true
	}
	for _, p := range resolved {
		if !set[p] {
			t.Fatalf("resolved page %d not in Select's pin set", p)
		}
	}
}
