package annotate

import (
	"testing"

	"hmem/internal/core"
	"hmem/internal/workload"
)

// fixture: two structures; the first is hot+low-risk dense, the second is
// cold.
func fixture() ([]workload.Structure, []core.PageStats) {
	structs := []workload.Structure{
		{Name: "hotbuf", Class: 0, FirstPage: 0, Pages: 4},
		{Name: "coldtable", Class: 1, FirstPage: 4, Pages: 8},
		{Name: "riskyindex", Class: 2, FirstPage: 12, Pages: 4},
	}
	var stats []core.PageStats
	for p := uint64(0); p < 4; p++ { // hot + low AVF
		stats = append(stats, core.PageStats{Page: p, Reads: 100, Writes: 400, AVF: 0.01})
	}
	for p := uint64(4); p < 12; p++ { // cold
		stats = append(stats, core.PageStats{Page: p, Reads: 1, AVF: 0.02})
	}
	for p := uint64(12); p < 16; p++ { // hot + high AVF
		stats = append(stats, core.PageStats{Page: p, Reads: 500, AVF: 0.9})
	}
	return structs, stats
}

func TestSelectPrefersHotLowRiskStructure(t *testing.T) {
	structs, stats := fixture()
	ann, pins := Select(structs, stats, 8)
	if Count(ann) != 1 {
		t.Fatalf("annotations = %d, want 1", len(ann))
	}
	if ann[0].Name != "hotbuf" {
		t.Fatalf("selected %s, want hotbuf", ann[0].Name)
	}
	if len(pins) != 4 {
		t.Fatalf("pins = %v", pins)
	}
	for i, p := range pins {
		if p != uint64(i) {
			t.Fatalf("pins = %v, want pages 0..3", pins)
		}
	}
}

func TestSelectSkipsStructuresWithoutValue(t *testing.T) {
	structs, stats := fixture()
	// Plenty of capacity: still must not annotate cold or risky structures.
	ann, _ := Select(structs, stats, 100)
	for _, a := range ann {
		if a.Name != "hotbuf" {
			t.Fatalf("annotated %s without hot+low-risk content", a.Name)
		}
	}
}

func TestSelectRespectsCapacityByWholeStructures(t *testing.T) {
	structs, stats := fixture()
	// Capacity 3 < hotbuf's 4 pages: nothing fits.
	ann, pins := Select(structs, stats, 3)
	if len(ann) != 0 || len(pins) != 0 {
		t.Fatalf("partial structure annotated: %v", ann)
	}
}

func TestSelectEmptyInputs(t *testing.T) {
	structs, stats := fixture()
	if a, p := Select(nil, stats, 10); a != nil || p != nil {
		t.Fatal("nil structures should produce nothing")
	}
	if a, p := Select(structs, nil, 10); a != nil || p != nil {
		t.Fatal("nil stats should produce nothing")
	}
	if a, p := Select(structs, stats, 0); a != nil || p != nil {
		t.Fatal("zero capacity should produce nothing")
	}
}

func TestSelectDeterministic(t *testing.T) {
	structs, stats := fixture()
	a1, p1 := Select(structs, stats, 8)
	a2, p2 := Select(structs, stats, 8)
	if len(a1) != len(a2) || len(p1) != len(p2) {
		t.Fatal("nondeterministic selection")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("nondeterministic pin order")
		}
	}
}

func TestSelectOnRealWorkload(t *testing.T) {
	// On a generated benchmark, a handful of annotations should cover a
	// meaningful share of HBM (Figure 17: 1-6 for most workloads).
	prof, err := workload.Lookup("astar")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(prof, 0, 30000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Profile by draining the generator into per-page counters.
	counts := map[uint64]*core.PageStats{}
	for {
		rec, err := g.Next()
		if err != nil {
			break
		}
		ps := counts[rec.Page()]
		if ps == nil {
			ps = &core.PageStats{Page: rec.Page()}
			counts[rec.Page()] = ps
		}
		if rec.Kind.IsWrite() {
			ps.Writes++
		} else {
			ps.Reads++
		}
	}
	var stats []core.PageStats
	for _, ps := range counts {
		// Cheap AVF proxy for the test: read-dominated pages risky.
		ps.AVF = float64(ps.Reads) / float64(ps.Reads+ps.Writes+1)
		stats = append(stats, *ps)
	}
	core.SortByPage(stats)

	capacity := 256
	ann, pins := Select(g.Structures(), stats, capacity)
	if len(ann) == 0 {
		t.Fatal("no structures annotated on a real workload")
	}
	if len(pins) > capacity {
		t.Fatalf("pinned %d pages > capacity %d", len(pins), capacity)
	}
	if len(ann) > 40 {
		t.Fatalf("needed %d annotations; Figure 17 regime is a handful", len(ann))
	}
	// Pins must be unique.
	seen := map[uint64]bool{}
	for _, p := range pins {
		if seen[p] {
			t.Fatalf("page %d pinned twice", p)
		}
		seen[p] = true
	}
}

// corePageStats and statsFromCounts are tiny profiling helpers shared by the
// directive end-to-end test.
type corePageStats struct {
	page          uint64
	reads, writes uint64
}

func statsFromCounts(counts map[uint64]*corePageStats) []core.PageStats {
	var stats []core.PageStats
	for _, ps := range counts {
		stats = append(stats, core.PageStats{
			Page:   ps.page,
			Reads:  ps.reads,
			Writes: ps.writes,
			AVF:    float64(ps.reads) / float64(ps.reads+ps.writes+1),
		})
	}
	core.SortByPage(stats)
	return stats
}
