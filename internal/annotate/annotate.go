// Package annotate implements the paper's §7 program-annotation placement:
// a programmer (or profile-guided compiler) marks a handful of program
// structures as hot and low-risk; the ELF loader pins their pages in HBM,
// marked immune to migration. The selection below plays the role of the
// profile-guided annotator: it ranks structures by how much hot, low-risk
// traffic they contain per page and annotates greedily until HBM is full
// (or no structure with useful content remains).
//
// An annotation is a *source-level* act: the 16 copies of a benchmark share
// one program, so instances of the same structure across cores are grouped —
// annotating "mcf.hot-scratch.0" pins that structure's pages in every copy.
// Figure 17 counts these grouped annotations.
package annotate

import (
	"sort"

	"hmem/internal/core"
	"hmem/internal/workload"
)

// Annotation is one selected (source-level) structure: all instances across
// the workload's processes.
type Annotation struct {
	// Name is the structure's source-level name.
	Name string
	// Instances are the per-process occurrences.
	Instances []workload.Structure
	// Pages is the union of all instances' page ranges (the pin set).
	Pages []uint64
	// Value is the hot∧low-risk access mass; Density is Value per page
	// (the greedy ranking key).
	Value   float64
	Density float64
}

// Select returns the annotations chosen for an HBM of capacityPages, plus
// the flattened pin list. Structures with no hot∧low-risk content are never
// annotated; structures whose combined instances don't fit the remaining
// capacity are skipped (an annotation pins every instance or none).
func Select(structs []workload.Structure, stats []core.PageStats, capacityPages int) ([]Annotation, []uint64) {
	if capacityPages <= 0 || len(structs) == 0 || len(stats) == 0 {
		return nil, nil
	}
	q := core.Quadrants(stats)
	byPage := make(map[uint64]core.PageStats, len(stats))
	for _, s := range stats {
		byPage[s.Page] = s
	}

	groups := make(map[string]*Annotation)
	var order []string
	for _, st := range structs {
		g := groups[st.Name]
		if g == nil {
			g = &Annotation{Name: st.Name}
			groups[st.Name] = g
			order = append(order, st.Name)
		}
		g.Instances = append(g.Instances, st)
		for i := 0; i < st.Pages; i++ {
			page := st.FirstPage + uint64(i)
			g.Pages = append(g.Pages, page)
			p, ok := byPage[page]
			if !ok {
				continue
			}
			if q.Classify(p) == core.HotLowRisk {
				g.Value += float64(p.Accesses())
			}
		}
	}

	cands := make([]Annotation, 0, len(groups))
	for _, name := range order {
		g := groups[name]
		if g.Value <= 0 || len(g.Pages) == 0 {
			continue
		}
		g.Density = g.Value / float64(len(g.Pages))
		cands = append(cands, *g)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Density != cands[j].Density {
			return cands[i].Density > cands[j].Density
		}
		return cands[i].Name < cands[j].Name
	})

	var chosen []Annotation
	var pins []uint64
	remaining := capacityPages
	for _, c := range cands {
		if len(c.Pages) > remaining {
			continue
		}
		chosen = append(chosen, c)
		pins = append(pins, c.Pages...)
		remaining -= len(c.Pages)
		if remaining == 0 {
			break
		}
	}
	return chosen, pins
}

// Count is the Figure 17 metric: how many structures must be annotated.
func Count(annotations []Annotation) int { return len(annotations) }
