package experiments

import (
	"context"

	"hmem/internal/core"
	"hmem/internal/exec"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// AblationCC quantifies the two design choices in this reproduction's Cross
// Counter implementation (DESIGN.md §6):
//
//   - the epoch blacklist — the reliability unit vetoes re-admission of a
//     page it flushed as high-risk for a few epochs, so hot high-risk pages
//     don't bounce back one MEA interval after every flush;
//   - eviction hysteresis — a resident is flushed only when its Wr/Rd falls
//     below half the epoch mean, so a uniformly low-risk HBM population
//     doesn't churn against its own mean.
//
// Each variant reports IPC and SER relative to the performance-focused
// migration baseline on a three-workload panel.
// ccAblationVariants is the Cross Counter variant lineup, keyed by the names
// used in the "ablation/<name>" memo keys. Package-level (built from options
// rather than a closed-over runner) so the cluster-shard mechanism resolver
// can rebuild any variant from its wire name on a worker node.
var ccAblationVariants = []struct {
	name  string
	build func(opts Options) sim.Migrator
}{
	{"cc (full)", func(o Options) sim.Migrator {
		return migration.NewCrossCounter(o.MEAIntervalCycles, int(o.FCIntervalCycles/o.MEAIntervalCycles), 32)
	}},
	{"cc -blacklist", func(o Options) sim.Migrator {
		m := migration.NewCrossCounter(o.MEAIntervalCycles, int(o.FCIntervalCycles/o.MEAIntervalCycles), 32)
		m.SetBlockEpochs(0)
		return m
	}},
	{"cc -hysteresis", func(o Options) sim.Migrator {
		m := migration.NewCrossCounter(o.MEAIntervalCycles, int(o.FCIntervalCycles/o.MEAIntervalCycles), 32)
		m.SetEvictHysteresis(1.0)
		return m
	}},
	{"cc 8-entry MEA", func(o Options) sim.Migrator {
		return migration.NewCrossCounter(o.MEAIntervalCycles, int(o.FCIntervalCycles/o.MEAIntervalCycles), 8)
	}},
}

func (r *Runner) AblationCC(ctx context.Context) (*report.Table, error) {
	panel := []string{"astar", "mcf", "mix1"}
	variants := ccAblationVariants

	t := report.New("Ablation: Cross Counter design choices",
		"variant", "IPC vs perf-migration", "SER vs perf-migration", "pages migrated (avg)")
	// Flatten the variant × workload panel into one fan-out, then regroup
	// per variant.
	type cell struct {
		ipc, ser float64
		hasSER   bool
		migrated uint64
	}
	n := len(variants) * len(panel)
	cells, err := exec.Map(ctx, r.opts.Parallel, n, func(i int) (cell, error) {
		v := variants[i/len(panel)]
		spec, err := workload.SpecByName(panel[i%len(panel)])
		if err != nil {
			return cell{}, err
		}
		perf, err := r.perfMigration(ctx, spec)
		if err != nil {
			return cell{}, err
		}
		res, err := r.RunDynamic(ctx, spec, "ablation/"+v.name,
			func() sim.Migrator { return v.build(r.opts) }, core.Balanced{})
		if err != nil {
			return cell{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return cell{}, err
		}
		resSER, _, err := r.SEROf(ctx, res)
		if err != nil {
			return cell{}, err
		}
		out := cell{ipc: res.IPC / perf.IPC, migrated: res.PagesMigrated}
		if perfSER > 0 {
			out.ser, out.hasSER = resSER/perfSER, true
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		var ipcs, sers []float64
		var migrated uint64
		for pi := range panel {
			c := cells[vi*len(panel)+pi]
			ipcs = append(ipcs, c.ipc)
			if c.hasSER {
				sers = append(sers, c.ser)
			}
			migrated += c.migrated
		}
		t.AddRow(v.name, report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)),
			report.Int(int(migrated/uint64(len(panel)))))
	}
	t.Note = "the blacklist is what converts eviction work into SER reduction; " +
		"hysteresis suppresses self-churn of a low-risk resident set"
	return t, nil
}
