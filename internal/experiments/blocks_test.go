package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"hmem/internal/core"
	"hmem/internal/faultsim"
	"hmem/internal/workload"
)

// wireDelegate simulates the cluster path inside one process: every block is
// JSON round-tripped (as the HTTP transport would) and executed on a second,
// independent Runner built from the same options — the worker.
type wireDelegate struct {
	worker *Runner
	blocks int
	shards int
}

func (d *wireDelegate) RunBlock(ctx context.Context, key BlockKey) (*BlockPayload, error) {
	d.blocks++
	p, err := d.worker.ExecuteBlock(ctx, key)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, err
	}
	var out BlockPayload
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (d *wireDelegate) RunStudyShards(ctx context.Context, tier int, jobs []faultsim.ShardJob) ([]faultsim.ShardTally, error) {
	d.shards += len(jobs)
	out := make([]faultsim.ShardTally, len(jobs))
	for i, j := range jobs {
		t, err := d.worker.RunStudyShard(tier, j)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, err
		}
		var rt faultsim.ShardTally
		if err := json.Unmarshal(raw, &rt); err != nil {
			return nil, err
		}
		out[i] = rt
	}
	return out, nil
}

func blockTestOptions() Options {
	opts := DefaultOptions()
	opts.Workloads = []string{"astar"}
	opts.RecordsPerCore = 4000
	opts.FaultTrials = 2000
	return opts
}

// TestDelegatedBlocksBitIdentical is the cluster correctness contract at the
// experiments layer: every delegable block, executed on a different runner
// and shipped through JSON, must be bit-identical to local execution.
func TestDelegatedBlocksBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	ctx := context.Background()
	local := mustRunner(t, blockTestOptions())
	coord := mustRunner(t, blockTestOptions())
	deleg := &wireDelegate{worker: mustRunner(t, blockTestOptions())}
	coord.SetDelegate(deleg)

	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}

	lp, err := local.ProfileOf(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := coord.ProfileOf(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lp, cp) {
		t.Error("delegated profile differs from local")
	}

	for _, policy := range []core.Policy{core.PerfFocused{}, core.Balanced{}, core.PerfFraction{F: 0.5}} {
		lr, err := local.RunStatic(ctx, spec, policy)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := coord.RunStatic(ctx, spec, policy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lr, cr) {
			t.Errorf("delegated static %s differs from local", policy.Name())
		}
	}

	for _, mech := range []string{mechFC, mechCC} {
		build, warm, ok := mechanismByName(mech, local.opts)
		if !ok {
			t.Fatalf("mechanismByName(%q) unresolvable", mech)
		}
		lr, err := local.RunDynamic(ctx, spec, mech, build, warm)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := coord.RunDynamic(ctx, spec, mech, build, warm)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lr, cr) {
			t.Errorf("delegated dynamic %s differs from local", mech)
		}
	}

	la, err := local.RunAnnotation(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	ca, err := coord.RunAnnotation(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(la, ca) {
		t.Error("delegated annotation differs from local")
	}

	lf, err := local.Fits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := coord.Fits(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lf, cf) {
		t.Error("delegated fault study differs from local")
	}

	if deleg.blocks == 0 || deleg.shards == 0 {
		t.Errorf("delegate not exercised: %d blocks, %d shards", deleg.blocks, deleg.shards)
	}
}

type funcDelegate struct {
	block func(context.Context, BlockKey) (*BlockPayload, error)
	study func(context.Context, int, []faultsim.ShardJob) ([]faultsim.ShardTally, error)
}

func (d funcDelegate) RunBlock(ctx context.Context, key BlockKey) (*BlockPayload, error) {
	return d.block(ctx, key)
}

func (d funcDelegate) RunStudyShards(ctx context.Context, tier int, jobs []faultsim.ShardJob) ([]faultsim.ShardTally, error) {
	return d.study(ctx, tier, jobs)
}

func TestDelegateNotDelegatedFallsBackLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	ctx := context.Background()
	r := mustRunner(t, blockTestOptions())
	calls := 0
	r.SetDelegate(funcDelegate{
		block: func(context.Context, BlockKey) (*BlockPayload, error) {
			calls++
			return nil, ErrNotDelegated
		},
		study: func(context.Context, int, []faultsim.ShardJob) ([]faultsim.ShardTally, error) {
			calls++
			return nil, ErrNotDelegated
		},
	})
	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunStatic(ctx, spec, core.Balanced{}); err != nil {
		t.Fatalf("local fallback failed: %v", err)
	}
	if _, err := r.Fits(ctx); err != nil {
		t.Fatalf("local fallback failed: %v", err)
	}
	if calls == 0 {
		t.Error("delegate never offered any block")
	}
}

func TestDelegateErrorPropagates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	boom := errors.New("digest mismatch on worker")
	r := mustRunner(t, blockTestOptions())
	r.SetDelegate(funcDelegate{
		block: func(context.Context, BlockKey) (*BlockPayload, error) { return nil, boom },
		study: func(context.Context, int, []faultsim.ShardJob) ([]faultsim.ShardTally, error) { return nil, boom },
	})
	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunStatic(context.Background(), spec, core.Balanced{}); !errors.Is(err, boom) {
		t.Errorf("static: want delegate error, got %v", err)
	}
	if _, err := r.Fits(context.Background()); !errors.Is(err, boom) {
		t.Errorf("fits: want delegate error, got %v", err)
	}
}

func TestMechanismByName(t *testing.T) {
	opts := DefaultOptions()
	resolvable := []string{
		mechPerf, mechFC, mechCC, "fc-migration", "cc-migration",
		"ablation/cc (full)", "ablation/cc -blacklist", "ablation/cc -hysteresis",
		"ablation/cc 8-entry MEA", "400000-interval", "1000000-interval",
	}
	for _, name := range resolvable {
		build, warm, ok := mechanismByName(name, opts)
		if !ok {
			t.Errorf("mechanismByName(%q) = false, want resolvable", name)
			continue
		}
		if build == nil || build() == nil || warm == nil {
			t.Errorf("mechanismByName(%q) returned nil parts", name)
		}
	}
	for _, name := range []string{"", "nope", "ablation/unknown", "x-interval", "-5-interval", "0-interval"} {
		if _, _, ok := mechanismByName(name, opts); ok {
			t.Errorf("mechanismByName(%q) = true, want unresolvable", name)
		}
	}
}

func TestDelegableStatic(t *testing.T) {
	for _, p := range core.StaticPolicies() {
		if !delegableStatic(p) {
			t.Errorf("lineup policy %s should be delegable", p.Name())
		}
	}
	if !delegableStatic(core.PerfFraction{F: 0.25}) {
		t.Error("perf-fraction-0.250 should be delegable (name round-trips)")
	}
	// 1/3 does not survive the three-decimal rendering: the remote side
	// would rebuild a slightly different fraction, so it must stay local.
	if delegableStatic(core.PerfFraction{F: 1.0 / 3.0}) {
		t.Error("perf-fraction with non-representable F must not be delegated")
	}
}

func TestStudyForTierAndShardValidation(t *testing.T) {
	r := mustRunner(t, blockTestOptions())
	study, ok, err := r.StudyForTier(0)
	if err != nil || !ok || study == nil {
		t.Fatalf("tier 0 (HBM) should carry a study: %v %v", ok, err)
	}
	if _, _, err := r.StudyForTier(99); err == nil {
		t.Error("out-of-range tier should error")
	}
	if _, err := r.RunStudyShard(0, faultsim.ShardJob{K: 0, Shard: 0, N: 10}); err == nil {
		t.Error("K=0 shard should be rejected")
	}
	if _, err := r.RunStudyShard(0, faultsim.ShardJob{K: study.MaxFaults + 1, Shard: 0, N: 10}); err == nil {
		t.Error("K beyond MaxFaults should be rejected")
	}
}
