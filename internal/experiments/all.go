package experiments

import (
	"context"

	"hmem/internal/report"
)

// Named is a labeled experiment. Run honours the requester semantics of the
// runner's building blocks: cancellation stops new simulations from starting
// but never interrupts (or poisons the cache of) one already in flight.
type Named struct {
	ID  string
	Run func(ctx context.Context) (*report.Table, error)
}

// All returns every table and figure driver in paper order.
func (r *Runner) All() []Named {
	wrap := func(t *report.Table) func(context.Context) (*report.Table, error) {
		return func(context.Context) (*report.Table, error) { return t, nil }
	}
	return []Named{
		{"table1", wrap(r.Table1())},
		{"table2", wrap(r.Table2())},
		{"figure1", r.Figure1},
		{"figure2", r.Figure2},
		{"figure4", r.Figure4},
		{"figure5", r.Figure5},
		{"figure6", r.Figure6},
		{"figure7", r.Figure7},
		{"figure8", r.Figure8},
		{"figure9", r.Figure9},
		{"figure10", r.Figure10},
		{"figure11", r.Figure11},
		{"figure12", r.Figure12},
		{"figure13", r.Figure13},
		{"figure14", r.Figure14},
		{"figure15", r.Figure15},
		{"figure16", r.Figure16},
		{"figure17", r.Figure17},
		{"table3", r.Table3},
		{"hwcost", wrap(r.TableHardwareCost())},
		{"ablation-cc", r.AblationCC},
		{"extension-annotated-migration", r.ExtensionAnnotatedMigration},
		{"extension-tiered-endurance", r.ExtensionTieredEndurance},
	}
}

// ByID returns the named experiment, or false when unknown.
func (r *Runner) ByID(id string) (Named, bool) {
	for _, n := range r.All() {
		if n.ID == id {
			return n, true
		}
	}
	return Named{}, false
}
