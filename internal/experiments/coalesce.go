package experiments

// Plan-level trace coalescing: N evaluations that share a workload but
// differ in policy normally pay N trace generations, one per simulation,
// because streams are consumed. A TracePlan materializes the workload's
// per-core record slices once and, while at least one holder keeps it
// acquired, every simulation of that workload replays a zero-copy
// SliceStream view instead of regenerating — the batch endpoint's
// one-trace-pass-drives-all-policies optimization. Plans are refcounted and
// plan-scoped (dropped when the last holder releases), so coalescing never
// grows the process's steady-state footprint the way memoizing traces
// would.
//
// Generators are pure functions of (spec, recordsPerCore, seed), so the
// collected records are bit-identical to what a fresh generator would emit;
// results computed through a plan are byte-identical to uncoalesced runs.

import (
	"context"
	"sync"

	"hmem/internal/obs"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// TraceStats counts trace deliveries: Opens is how many times a workload's
// generators were actually run (plan materializations included), and
// CoalesceHits is how many simulations were served a replay view from an
// active plan instead. Exported on /metrics as hmemd_trace_opens_total /
// hmemd_coalesce_hits_total.
type TraceStats struct {
	Opens        uint64
	CoalesceHits uint64
}

// Add returns the element-wise sum, for aggregating several runners.
func (s TraceStats) Add(o TraceStats) TraceStats {
	return TraceStats{Opens: s.Opens + o.Opens, CoalesceHits: s.CoalesceHits + o.CoalesceHits}
}

// suiteView is what a simulation consumes from a workload build: the merged
// structure table plus one consumable stream per core. Fresh builds hand
// through the suite's generators; an active plan hands out SliceStream
// replay views over the materialized records.
type suiteView struct {
	structures []workload.Structure
	streams    []trace.Stream
}

// tracePlan is one refcounted materialization of a workload's traces.
type tracePlan struct {
	refs       int
	ready      chan struct{} // closed once records/err are final
	records    [][]trace.Record
	structures []workload.Structure
	err        error
}

// TraceStats returns the runner's trace-delivery counters.
func (r *Runner) TraceStats() TraceStats {
	return TraceStats{Opens: r.traceOpens.Load(), CoalesceHits: r.coalesceHits.Load()}
}

// SetTraceWrap installs a wrapper applied to every trace stream a
// simulation consumes, keyed by workload name — the fault-injection seam
// batch chaos tests use to fail one item's trace while the rest of the
// batch proceeds. A setter rather than an Options field: Options is
// fingerprinted with %#v for cache keys, which function pointers would
// break. Test-only; results computed under a wrap are cached like any
// other, so production runners must leave it nil.
func (r *Runner) SetTraceWrap(wrap func(workloadName string, s trace.Stream) trace.Stream) {
	r.traceWrapMu.Lock()
	r.traceWrap = wrap
	r.traceWrapMu.Unlock()
}

func (r *Runner) getTraceWrap() func(string, trace.Stream) trace.Stream {
	r.traceWrapMu.RLock()
	defer r.traceWrapMu.RUnlock()
	return r.traceWrap
}

// wrapStreams applies the installed trace wrap (if any) to a view's streams.
// Applied at consumption time, never at plan materialization, so an injected
// fault fails the simulations that consume it, not the shared plan.
func (r *Runner) wrapStreams(workloadName string, v *suiteView) *suiteView {
	wrap := r.getTraceWrap()
	if wrap == nil {
		return v
	}
	for i, s := range v.streams {
		v.streams[i] = wrap(workloadName, s)
	}
	return v
}

// AcquireTracePlan pins a materialized replay plan for a workload and
// returns its release. While held, every simulation of that workload on
// this runner replays the plan's records instead of regenerating the trace
// — K policies cost one trace pass. Acquisitions nest (refcounted); release
// is idempotent and drops the records once the last holder lets go.
//
// With a cluster delegate installed this is a no-op: batch items shard
// independently across workers, so a local materialization would cost
// memory without saving any replay.
func (r *Runner) AcquireTracePlan(ctx context.Context, workloadName string) (release func(), err error) {
	spec, err := workload.SpecByName(workloadName)
	if err != nil {
		return nil, err
	}
	if r.getDelegate() != nil {
		return func() {}, nil
	}
	r.plansMu.Lock()
	if r.plans == nil {
		r.plans = make(map[string]*tracePlan)
	}
	p, ok := r.plans[spec.Name]
	if ok {
		p.refs++
		r.plansMu.Unlock()
	} else {
		p = &tracePlan{refs: 1, ready: make(chan struct{})}
		r.plans[spec.Name] = p
		r.plansMu.Unlock()
		r.materializePlan(ctx, spec, p)
	}
	select {
	case <-p.ready:
	case <-ctx.Done():
		r.releasePlan(spec.Name, p)
		return nil, ctx.Err()
	}
	if p.err != nil {
		err := p.err
		r.releasePlan(spec.Name, p)
		return nil, err
	}
	var once sync.Once
	return func() { once.Do(func() { r.releasePlan(spec.Name, p) }) }, nil
}

// materializePlan runs the workload's generators once and collects every
// core's records into the plan. Counts as one trace open; subsequent
// consumers are coalesce hits.
func (r *Runner) materializePlan(ctx context.Context, spec workload.Spec, p *tracePlan) {
	defer close(p.ready)
	if obs.Enabled(ctx) {
		_, sp := obs.Start(ctx, "trace.plan",
			obs.Str("workload", spec.Name), obs.Int("records_per_core", int64(r.opts.RecordsPerCore)))
		defer sp.End()
	}
	suite, err := spec.Build(r.opts.RecordsPerCore, r.opts.Seed)
	if err != nil {
		p.err = err
		return
	}
	r.traceOpens.Add(1)
	records := make([][]trace.Record, len(suite.Generators))
	for i, g := range suite.Generators {
		if records[i], err = trace.Collect(g, 0); err != nil {
			p.err = err
			return
		}
	}
	p.records = records
	p.structures = suite.Structures
}

// releasePlan drops one reference; the last one retires the plan so its
// records become garbage.
func (r *Runner) releasePlan(name string, p *tracePlan) {
	r.plansMu.Lock()
	defer r.plansMu.Unlock()
	p.refs--
	if p.refs <= 0 && r.plans[name] == p {
		delete(r.plans, name)
	}
}

// activePlan returns the workload's materialized plan, or nil when none is
// held (or it is still materializing / failed — callers then build fresh).
func (r *Runner) activePlan(name string) *tracePlan {
	r.plansMu.Lock()
	p := r.plans[name]
	r.plansMu.Unlock()
	if p == nil {
		return nil
	}
	select {
	case <-p.ready:
		if p.err != nil {
			return nil
		}
		return p
	default:
		return nil
	}
}
