package experiments

import (
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"hmem/internal/core"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// tinyCoalesceOpts keeps plan tests fast: short traces, few trials.
func tinyCoalesceOpts() Options {
	return Options{RecordsPerCore: 1500, FaultTrials: 1500}
}

// TestTracePlanCoalesces is the plan's core contract: with a plan held, K
// policy runs of one workload cost exactly one trace generation, and the
// results are bit-identical to an uncoalesced runner's.
func TestTracePlanCoalesces(t *testing.T) {
	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}
	policies := []core.Policy{core.PerfFocused{}, core.Balanced{}, core.Wr2Ratio{}}
	ctx := context.Background()

	run := func(r *Runner) []interface{} {
		var out []interface{}
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, prof.Result)
		for _, p := range policies {
			res, err := r.RunStatic(ctx, spec, p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}

	coalesced := mustRunner(t, tinyCoalesceOpts())
	release, err := coalesced.AcquireTracePlan(ctx, "astar")
	if err != nil {
		t.Fatal(err)
	}
	gotCoalesced := run(coalesced)
	st := coalesced.TraceStats()
	if st.Opens != 1 {
		t.Fatalf("coalesced run opened the trace %d times, want exactly 1 (materialization)", st.Opens)
	}
	// One profile build plus one build per static run, all served as replays.
	if want := uint64(1 + len(policies)); st.CoalesceHits != want {
		t.Fatalf("coalesce hits = %d, want %d", st.CoalesceHits, want)
	}
	release()
	release() // idempotent

	// After release the plan is gone: the next simulation regenerates.
	if _, err := coalesced.buildSuite(spec); err != nil {
		t.Fatal(err)
	}
	if st := coalesced.TraceStats(); st.Opens != 2 {
		t.Fatalf("post-release build opened %d traces total, want 2", st.Opens)
	}

	plain := mustRunner(t, tinyCoalesceOpts())
	gotPlain := run(plain)
	if st := plain.TraceStats(); st.CoalesceHits != 0 {
		t.Fatalf("uncoalesced runner recorded %d coalesce hits", st.CoalesceHits)
	}
	if !reflect.DeepEqual(gotCoalesced, gotPlain) {
		t.Fatal("coalesced results differ from uncoalesced results")
	}
}

// TestTracePlanNestedAcquire checks refcounting: a plan stays live until the
// last holder releases.
func TestTracePlanNestedAcquire(t *testing.T) {
	r := mustRunner(t, tinyCoalesceOpts())
	ctx := context.Background()
	rel1, err := r.AcquireTracePlan(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := r.AcquireTracePlan(ctx, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if st := r.TraceStats(); st.Opens != 1 {
		t.Fatalf("nested acquire materialized %d times, want 1", st.Opens)
	}
	rel1()
	if r.activePlan("mcf") == nil {
		t.Fatal("plan retired while still held by the second acquirer")
	}
	rel2()
	if r.activePlan("mcf") != nil {
		t.Fatal("plan still active after the last release")
	}
}

// TestTracePlanUnknownWorkload rejects bad names before materializing.
func TestTracePlanUnknownWorkload(t *testing.T) {
	r := mustRunner(t, tinyCoalesceOpts())
	if _, err := r.AcquireTracePlan(context.Background(), "no-such-workload"); err == nil {
		t.Fatal("expected an error for an unknown workload")
	}
}

// TestTraceWrapSelectsWorkload proves the wrap seam is keyed by workload:
// wrapping one workload's streams with a failing reader fails only that
// workload's runs.
func TestTraceWrapSelectsWorkload(t *testing.T) {
	r := mustRunner(t, tinyCoalesceOpts())
	injected := errors.New("injected trace fault")
	r.SetTraceWrap(func(name string, s trace.Stream) trace.Stream {
		if name == "mcf" {
			return failingStream{err: injected}
		}
		return s
	})
	ctx := context.Background()
	mcf, _ := workload.SpecByName("mcf")
	if _, err := r.ProfileOf(ctx, mcf); !errors.Is(err, injected) {
		t.Fatalf("wrapped workload error = %v, want the injected fault", err)
	}
	astar, _ := workload.SpecByName("astar")
	if _, err := r.ProfileOf(ctx, astar); err != nil {
		t.Fatalf("unwrapped workload failed: %v", err)
	}
}

type failingStream struct{ err error }

func (f failingStream) Next() (trace.Record, error) { return trace.Record{}, f.err }

// TestCoalescedReplayZeroAllocs is the AllocsPerRun gate: replaying a
// materialized plan through a SliceStream view adds zero allocations per
// access — the coalesced inner loop is as lean as the generator path.
func TestCoalescedReplayZeroAllocs(t *testing.T) {
	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}
	suite, err := spec.Build(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.Collect(suite.Generators[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	stream := trace.NewSliceStream(recs)
	allocs := testing.AllocsPerRun(10, func() {
		stream.Reset()
		for {
			if _, err := stream.Next(); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				return
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("coalesced replay allocates %.1f per full pass, want 0", allocs)
	}
}
