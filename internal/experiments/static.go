package experiments

import (
	"context"

	"sort"

	"hmem/internal/core"
	"hmem/internal/exec"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// mpkiOf computes misses-per-kilo-instruction from a run.
func mpkiOf(res sim.Result) float64 {
	if res.Instructions == 0 {
		return 0
	}
	return float64(res.Reads+res.Writes) / float64(res.Instructions) * 1000
}

// byMPKIDesc returns the runner's workloads ordered from bandwidth-intensive
// to latency-sensitive (the Figure 7 x-axis ordering). The profiling runs
// behind the MPKIs execute concurrently; the stable sort over the fixed
// spec order keeps the result deterministic.
func (r *Runner) byMPKIDesc(ctx context.Context) ([]workload.Spec, error) {
	specs := r.Workloads()
	mpkis, err := mapSpecs(ctx, r, specs, func(s workload.Spec) (float64, error) {
		p, err := r.ProfileOf(ctx, s)
		if err != nil {
			return 0, err
		}
		return mpkiOf(p.Result), nil
	})
	if err != nil {
		return nil, err
	}
	type entry struct {
		spec workload.Spec
		mpki float64
	}
	entries := make([]entry, len(specs))
	for i, s := range specs {
		entries[i] = entry{s, mpkis[i]}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].mpki > entries[j].mpki })
	out := make([]workload.Spec, len(entries))
	for i, e := range entries {
		out[i] = e.spec
	}
	return out, nil
}

// policyRow is one workload's comparison of a static policy against the
// DDR-only and perf-focused baselines.
type policyRow struct {
	Workload  string
	IPCvsDDR  float64 // policy IPC / DDR-only IPC
	SERvsDDR  float64 // policy SER / all-DDR SER (same snapshot)
	IPCvsPerf float64 // policy IPC / perf-focused IPC
	SERvsPerf float64 // policy SER / perf-focused SER
}

// staticComparison evaluates a policy on every workload, fanning the
// per-workload simulations out over the runner's worker pool.
func (r *Runner) staticComparison(ctx context.Context, policy core.Policy, ordered []workload.Spec) ([]policyRow, error) {
	return mapSpecs(ctx, r, ordered, func(spec workload.Spec) (policyRow, error) {
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return policyRow{}, err
		}
		perf, err := r.RunStatic(ctx, spec, core.PerfFocused{})
		if err != nil {
			return policyRow{}, err
		}
		pol, err := r.RunStatic(ctx, spec, policy)
		if err != nil {
			return policyRow{}, err
		}
		polSER, polRel, err := r.SEROf(ctx, pol)
		if err != nil {
			return policyRow{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return policyRow{}, err
		}
		row := policyRow{
			Workload:  spec.Name,
			IPCvsDDR:  pol.IPC / prof.Result.IPC,
			SERvsDDR:  polRel,
			IPCvsPerf: pol.IPC / perf.IPC,
		}
		if perfSER > 0 {
			row.SERvsPerf = polSER / perfSER
		}
		return row, nil
	})
}

// avgRow aggregates: geometric means for the ratios.
func avgRow(rows []policyRow) policyRow {
	g := func(get func(policyRow) float64) float64 {
		vs := make([]float64, len(rows))
		for i, r := range rows {
			vs[i] = get(r)
		}
		return stats.GeoMean(vs)
	}
	return policyRow{
		Workload:  "average",
		IPCvsDDR:  g(func(r policyRow) float64 { return r.IPCvsDDR }),
		SERvsDDR:  g(func(r policyRow) float64 { return r.SERvsDDR }),
		IPCvsPerf: g(func(r policyRow) float64 { return r.IPCvsPerf }),
		SERvsPerf: g(func(r policyRow) float64 { return r.SERvsPerf }),
	}
}

// policyTable renders a static-policy comparison in the layout shared by
// Figures 5, 7, 8, 10 and 11.
func (r *Runner) policyTable(ctx context.Context, title string, policy core.Policy, note string) (*report.Table, error) {
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}
	rows, err := r.staticComparison(ctx, policy, ordered)
	if err != nil {
		return nil, err
	}
	t := report.New(title,
		"workload", "IPC vs DDR-only", "SER vs DDR-only", "IPC vs perf-focused", "SER vs perf-focused")
	for _, row := range append(rows, avgRow(rows)) {
		t.AddRow(row.Workload, report.X(row.IPCvsDDR), report.X(row.SERvsDDR),
			report.X(row.IPCvsPerf), report.X(row.SERvsPerf))
	}
	t.Note = note
	return t, nil
}

// Figure1 sweeps the fraction of hot pages placed in HBM (astar, cactusADM,
// mix1 averaged, as in the paper's motivation figure): the SER cost of
// approaching full performance.
func (r *Runner) Figure1(ctx context.Context) (*report.Table, error) {
	specNames := []string{"astar", "cactusADM", "mix1"}
	fractions := []float64{0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1}
	t := report.New("Figure 1: reliability vs performance across hot-page fractions",
		"fraction of HBM filled", "IPC vs DDR-only (avg)", "SER vs DDR-only (avg)")
	// The full fraction × workload grid is independent work: flatten it into
	// one fan-out and regroup per fraction afterwards.
	type cell struct{ ipc, ser float64 }
	n := len(fractions) * len(specNames)
	cells, err := exec.Map(ctx, r.opts.Parallel, n, func(i int) (cell, error) {
		f := fractions[i/len(specNames)]
		spec, err := workload.SpecByName(specNames[i%len(specNames)])
		if err != nil {
			return cell{}, err
		}
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return cell{}, err
		}
		res, err := r.RunStatic(ctx, spec, core.PerfFraction{F: f})
		if err != nil {
			return cell{}, err
		}
		_, rel, err := r.SEROf(ctx, res)
		if err != nil {
			return cell{}, err
		}
		return cell{ipc: res.IPC / prof.Result.IPC, ser: rel}, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, f := range fractions {
		var ipcs, sers []float64
		for si := range specNames {
			c := cells[fi*len(specNames)+si]
			ipcs = append(ipcs, c.ipc)
			sers = append(sers, c.ser)
		}
		t.AddRow(report.Pct(f), report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)))
	}
	t.Note = "paper: the loss in reliability to achieve full performance is extreme (Fig. 1)"
	return t, nil
}

// Figure2 reports each workload's mean memory AVF on DDR-only, ascending —
// the paper's Figure 2 (range 1.7%..22.5%).
func (r *Runner) Figure2(ctx context.Context) (*report.Table, error) {
	type entry struct {
		name string
		avf  float64
	}
	specs := r.Workloads()
	entries, err := mapSpecs(ctx, r, specs, func(spec workload.Spec) (entry, error) {
		p, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return entry{}, err
		}
		return entry{spec.Name, p.Result.MeanAVF()}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].avf < entries[j].avf })
	t := report.New("Figure 2: average memory AVF per workload (DDR-only)", "workload", "mean AVF")
	for _, e := range entries {
		t.AddRow(e.name, report.Pct(e.avf))
	}
	t.Note = "paper: AVF varies from 1.7% (astar) to 22.5% (milc)"
	return t, nil
}

// Figure4 is the quadrant census: the share of each workload's footprint in
// the four hotness/risk quadrants, highlighting hot∧low-risk (9-39%).
func (r *Runner) Figure4(ctx context.Context) (*report.Table, error) {
	t := report.New("Figure 4: hotness-risk quadrants per workload",
		"workload", "hot+low-risk", "hot+high-risk", "cold+low-risk", "cold+high-risk", "pages")
	specs := r.Workloads()
	quads, err := mapSpecs(ctx, r, specs, func(spec workload.Spec) (core.QuadrantSummary, error) {
		p, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return core.QuadrantSummary{}, err
		}
		return core.Quadrants(p.Stats), nil
	})
	if err != nil {
		return nil, err
	}
	minHL, maxHL := 1.0, 0.0
	for i, spec := range specs {
		q := quads[i]
		hl := q.Frac(core.HotLowRisk)
		if hl < minHL {
			minHL = hl
		}
		if hl > maxHL {
			maxHL = hl
		}
		t.AddRow(spec.Name, report.Pct(hl), report.Pct(q.Frac(core.HotHighRisk)),
			report.Pct(q.Frac(core.ColdLowRisk)), report.Pct(q.Frac(core.ColdHighRisk)),
			report.Int(q.Total))
	}
	t.Note = "hot+low-risk spans " + report.Pct(minHL) + ".." + report.Pct(maxHL) +
		" (paper: 9%..39%)"
	return t, nil
}

// Figure5 is the performance-focused placement: IPC boost and SER blowup
// versus DDR-only (paper: 1.6x IPC, 287x SER).
func (r *Runner) Figure5(ctx context.Context) (*report.Table, error) {
	return r.policyTable(ctx, "Figure 5: performance-focused static placement",
		core.PerfFocused{}, "paper: 1.6x IPC and 287x SER vs DDR-only on average")
}

// Figure6 examines the hottest 1000 pages of mix1: hotness deciles vs AVF,
// and the footprint-wide hotness-AVF correlation (paper: ρ = 0.08).
func (r *Runner) Figure6(ctx context.Context) (*report.Table, error) {
	spec, err := workload.SpecByName("mix1")
	if err != nil {
		return nil, err
	}
	p, err := r.ProfileOf(ctx, spec)
	if err != nil {
		return nil, err
	}
	byHot := append([]core.PageStats(nil), p.Stats...)
	sort.Slice(byHot, func(i, j int) bool { return byHot[i].Accesses() > byHot[j].Accesses() })
	n := 1000
	if n > len(byHot) {
		n = len(byHot)
	}
	top := byHot[:n]
	t := report.New("Figure 6: hotness vs AVF for the 1000 hottest pages (mix1)",
		"hotness rank", "mean accesses", "mean AVF")
	const buckets = 10
	for b := 0; b < buckets; b++ {
		lo, hi := b*n/buckets, (b+1)*n/buckets
		var acc, avf float64
		for _, s := range top[lo:hi] {
			acc += float64(s.Accesses())
			avf += s.AVF
		}
		cnt := float64(hi - lo)
		t.AddRow(report.Int(lo+1)+"-"+report.Int(hi), report.F(acc/cnt, 1), report.Pct(avf/cnt))
	}
	hot := make([]float64, len(p.Stats))
	av := make([]float64, len(p.Stats))
	for i, s := range p.Stats {
		hot[i] = float64(s.Accesses())
		av[i] = s.AVF
	}
	t.Note = "footprint-wide Pearson(hotness, AVF) = " +
		report.F(stats.Pearson(hot, av), 2) + " (paper: 0.08)"
	return t, nil
}

// Figure7 is the naive reliability-focused placement (paper: SER ÷5 at 17%
// IPC loss vs perf-focused), workloads ordered by MPKI.
func (r *Runner) Figure7(ctx context.Context) (*report.Table, error) {
	return r.policyTable(ctx, "Figure 7: reliability-focused static placement (MPKI-ordered)",
		core.ReliabilityFocused{}, "paper: SER reduced 5x, IPC -17% vs perf-focused")
}

// Figure8 is the balanced quadrant placement (paper: SER ÷3, IPC -14%).
func (r *Runner) Figure8(ctx context.Context) (*report.Table, error) {
	return r.policyTable(ctx, "Figure 8: balanced (hot+low-risk) static placement",
		core.Balanced{}, "paper: SER reduced 3x, IPC -14% vs perf-focused")
}

// Figure9 reports the write-ratio risk proxy on mix1: the correlation with
// AVF over the hottest 1000 pages (paper: ρ = -0.32) and the write-ratio
// histogram over the footprint (paper Figure 9b).
func (r *Runner) Figure9(ctx context.Context) (*report.Table, error) {
	spec, err := workload.SpecByName("mix1")
	if err != nil {
		return nil, err
	}
	p, err := r.ProfileOf(ctx, spec)
	if err != nil {
		return nil, err
	}
	byHot := append([]core.PageStats(nil), p.Stats...)
	sort.Slice(byHot, func(i, j int) bool { return byHot[i].Accesses() > byHot[j].Accesses() })
	n := 1000
	if n > len(byHot) {
		n = len(byHot)
	}
	wr := make([]float64, n)
	av := make([]float64, n)
	for i, s := range byHot[:n] {
		wr[i] = s.WrRatio()
		av[i] = s.AVF
	}
	rho := stats.Pearson(wr, av)

	// Histogram of write fraction W/(R+W) over the whole footprint.
	fracs := make([]float64, 0, len(p.Stats))
	for _, s := range p.Stats {
		total := s.Reads + s.Writes
		if total == 0 {
			continue
		}
		fracs = append(fracs, float64(s.Writes)/float64(total))
	}
	hist := stats.Histogram(fracs, 0, 1, 5)
	t := report.New("Figure 9: write-ratio risk proxy (mix1)", "write-ratio bin", "pages")
	labels := []string{"1-20%", "21-40%", "41-60%", "61-80%", "81-100%"}
	for i, c := range hist {
		t.AddRow(labels[i], report.Int(c))
	}
	t.Note = "Pearson(write ratio, AVF) over top-1000 hot pages = " +
		report.F(rho, 2) + " (paper: -0.32)"
	return t, nil
}

// Figure10 is the Wr-ratio heuristic placement (paper: SER ÷1.8, IPC -8.1%).
func (r *Runner) Figure10(ctx context.Context) (*report.Table, error) {
	return r.policyTable(ctx, "Figure 10: top Wr-ratio static placement",
		core.WrRatio{}, "paper: SER reduced 1.8x, IPC -8.1% vs perf-focused")
}

// Figure11 is the Wr²-ratio heuristic placement — the paper's best static
// heuristic (SER ÷1.6 at just 1% IPC loss).
func (r *Runner) Figure11(ctx context.Context) (*report.Table, error) {
	return r.policyTable(ctx, "Figure 11: top Wr2-ratio static placement",
		core.Wr2Ratio{}, "paper: SER reduced 1.6x, IPC -1% vs perf-focused")
}
