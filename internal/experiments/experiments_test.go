package experiments

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"hmem/internal/core"
	"hmem/internal/faultsim"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

// testRunner returns a runner over a reduced workload set (one
// latency-bound, one bandwidth-bound, one mix) with short traces, shared by
// the whole test file through memoization.
var sharedTestRunner *Runner

func testRunner(t *testing.T) *Runner {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment drivers run full simulations")
	}
	if sharedTestRunner == nil {
		opts := DefaultOptions()
		opts.Workloads = []string{"astar", "mcf", "mix1"}
		opts.RecordsPerCore = 15000
		sharedTestRunner = mustRunner(t, opts)
	}
	return sharedTestRunner
}

func mustRunner(t *testing.T, opts Options) *Runner {
	t.Helper()
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// cell parses a numeric table cell like "1.63x", "12.5%", or "42".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable cell %q: %v", s, err)
	}
	return v
}

// lastRow returns the table's final row (the average row for policy tables).
func lastRow(t *testing.T, tab *report.Table) []string {
	t.Helper()
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	return tab.Rows[len(tab.Rows)-1]
}

func TestRunnerDefaults(t *testing.T) {
	r := mustRunner(t, Options{})
	o := r.Options()
	d := DefaultOptions()
	if o.ScaleDiv != d.ScaleDiv || o.RecordsPerCore != d.RecordsPerCore ||
		o.FCIntervalCycles != d.FCIntervalCycles || o.MEAIntervalCycles != d.MEAIntervalCycles {
		t.Fatalf("zero options did not resolve to defaults: %+v", o)
	}
	if len(r.Workloads()) != 14 {
		t.Fatalf("default workloads = %d, want 14", len(r.Workloads()))
	}
}

func TestByID(t *testing.T) {
	r := mustRunner(t, Options{})
	if len(r.All()) != 23 {
		t.Fatalf("experiment count = %d, want 23", len(r.All()))
	}
	if _, ok := r.ByID("figure5"); !ok {
		t.Fatal("figure5 missing")
	}
	if _, ok := r.ByID("nope"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestFitsPlausible(t *testing.T) {
	r := mustRunner(t, Options{FaultTrials: 5000})
	fits, err := r.Fits(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := fits.Ratio(); ratio < 50 || ratio > 5000 {
		t.Fatalf("tier FIT ratio %.0f implausible", ratio)
	}
	// Memoized: second call is identical.
	again, err := r.Fits(context.Background())
	if err != nil || !reflect.DeepEqual(again, fits) {
		t.Fatal("Fits not memoized")
	}
}

func TestFigure1FrontierShape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("fraction sweep rows = %d, want 9", len(tab.Rows))
	}
	// More hot pages in HBM: IPC and SER both grow monotonically (allowing
	// small simulation noise on IPC).
	firstIPC := cell(t, tab.Rows[0][1])
	lastIPC := cell(t, lastRow(t, tab)[1])
	firstSER := cell(t, tab.Rows[0][2])
	lastSER := cell(t, lastRow(t, tab)[2])
	if !(lastIPC > firstIPC) {
		t.Errorf("IPC not increasing across sweep: %v -> %v", firstIPC, lastIPC)
	}
	if !(lastSER > 10*firstSER) {
		t.Errorf("SER should explode across sweep: %v -> %v", firstSER, lastSER)
	}
}

func TestFigure2SortedAscending(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		v := cell(t, row[1])
		if v < prev {
			t.Fatalf("Figure 2 not ascending at %v", row)
		}
		prev = v
	}
}

func TestFigure4QuadrantsSumToOne(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sum := cell(t, row[1]) + cell(t, row[2]) + cell(t, row[3]) + cell(t, row[4])
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s: quadrants sum to %.1f%%", row[0], sum)
		}
	}
}

func TestFigure5HeadlineShape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	avg := lastRow(t, tab)
	ipc := cell(t, avg[1])
	ser := cell(t, avg[2])
	if ipc < 1.2 || ipc > 4.0 {
		t.Errorf("perf-focused IPC gain = %.2fx, want 1.2-4 (paper: 1.6x)", ipc)
	}
	if ser < 20 {
		t.Errorf("perf-focused SER blowup = %.0fx, want >> 20 (paper: 287x)", ser)
	}
}

func TestStaticPolicyOrderings(t *testing.T) {
	r := testRunner(t)
	ordered, err := r.byMPKIDesc(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	avgFor := func(p core.Policy) policyRow {
		rows, err := r.staticComparison(context.Background(), p, ordered)
		if err != nil {
			t.Fatal(err)
		}
		return avgRow(rows)
	}
	rel := avgFor(core.ReliabilityFocused{})
	bal := avgFor(core.Balanced{})
	wr := avgFor(core.WrRatio{})
	wr2 := avgFor(core.Wr2Ratio{})

	// Every reliability-aware static reduces SER versus perf-focused...
	for name, row := range map[string]policyRow{"rel": rel, "bal": bal, "wr": wr, "wr2": wr2} {
		if row.SERvsPerf >= 1 {
			t.Errorf("%s: SER vs perf = %.2f, want < 1", name, row.SERvsPerf)
		}
		if row.IPCvsPerf > 1.02 {
			t.Errorf("%s: IPC vs perf = %.2f, cannot beat the perf oracle", name, row.IPCvsPerf)
		}
	}
	// ...and the paper's key trade-off holds: Wr2 keeps the most
	// performance of all reliability-aware statics while reducing SER least.
	if !(wr2.IPCvsPerf > wr.IPCvsPerf && wr2.IPCvsPerf > rel.IPCvsPerf) {
		t.Errorf("Wr2 should be the cheapest heuristic: wr2=%.2f wr=%.2f rel=%.2f",
			wr2.IPCvsPerf, wr.IPCvsPerf, rel.IPCvsPerf)
	}
	if !(rel.SERvsPerf < wr2.SERvsPerf && bal.SERvsPerf < wr2.SERvsPerf) {
		t.Errorf("conservative policies should cut SER more than Wr2: rel=%.3f bal=%.3f wr2=%.3f",
			rel.SERvsPerf, bal.SERvsPerf, wr2.SERvsPerf)
	}
}

func TestFigure6And9Correlations(t *testing.T) {
	r := testRunner(t)
	f6, err := r.Figure6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 10 {
		t.Fatalf("Figure 6 buckets = %d", len(f6.Rows))
	}
	// The hottest bucket must be hotter than the last.
	if !(cell(t, f6.Rows[0][1]) > cell(t, f6.Rows[9][1])) {
		t.Error("Figure 6 buckets not ordered by hotness")
	}
	f9, err := r.Figure9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f9.Note, "-") {
		t.Errorf("Figure 9 correlation should be negative: %q", f9.Note)
	}
	total := 0
	for _, row := range f9.Rows {
		total += int(cell(t, row[1]))
	}
	if total == 0 {
		t.Error("Figure 9 histogram empty")
	}
}

func TestDynamicMechanismShapes(t *testing.T) {
	r := testRunner(t)
	f12, err := r.Figure12(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	avg12 := lastRow(t, f12)
	if ipc := cell(t, avg12[1]); ipc <= 1 {
		t.Errorf("perf migration should beat DDR-only: %.2fx", ipc)
	}

	f14, err := r.Figure14(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fcSER := cell(t, lastRow(t, f14)[2])
	if fcSER >= 1 {
		t.Errorf("FC mechanism should reduce SER vs perf migration: %.2f", fcSER)
	}

	f15, err := r.Figure15(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ccSER := cell(t, lastRow(t, f15)[2])
	if ccSER > 1.1 {
		t.Errorf("CC mechanism should not increase SER vs perf migration: %.2f", ccSER)
	}
	// The paper's cost hierarchy: CC trades some of FC's SER reduction for
	// cheaper hardware.
	if !(fcSER < ccSER) {
		t.Errorf("FC should reduce SER more than CC: fc=%.2f cc=%.2f", fcSER, ccSER)
	}
}

func TestFigure13SweepHasInteriorOptimum(t *testing.T) {
	r := testRunner(t)
	tab, err := r.Figure13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("sweep rows = %d, want 6", len(tab.Rows))
	}
	if !strings.Contains(tab.Note, "best interval") {
		t.Error("sweep must identify a best interval")
	}
}

func TestAnnotationExperiments(t *testing.T) {
	r := testRunner(t)
	f16, err := r.Figure16(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ser := cell(t, lastRow(t, f16)[2]); ser >= 1 {
		t.Errorf("annotations should reduce SER vs perf-focused: %.2f", ser)
	}
	f17, err := r.Figure17(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range f17.Rows {
		n := cell(t, row[1])
		if n < 1 || n > 60 {
			t.Errorf("%s: %v annotations implausible", row[0], n)
		}
	}
}

func TestTablesRender(t *testing.T) {
	r := testRunner(t)
	t1 := r.Table1()
	if !strings.Contains(t1.String(), "HBM") || !strings.Contains(t1.String(), "DDR3") {
		t.Error("Table 1 missing tiers")
	}
	t2 := r.Table2()
	if len(t2.Rows) != 5 {
		t.Errorf("Table 2 rows = %d, want 5 mixes", len(t2.Rows))
	}
	hw := r.TableHardwareCost()
	if !strings.Contains(hw.String(), "676") && !strings.Contains(hw.String(), "692224") {
		t.Error("hardware-cost table missing the 676 KB figure")
	}
	t3, err := r.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 7 {
		t.Errorf("Table 3 rows = %d, want 7 schemes", len(t3.Rows))
	}
	var buf bytes.Buffer
	if err := t3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scheme") {
		t.Error("CSV missing header")
	}
}

func TestMPKIOrderingStable(t *testing.T) {
	r := testRunner(t)
	a, err := r.byMPKIDesc(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.byMPKIDesc(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("MPKI ordering not deterministic")
		}
	}
	// mcf (bandwidth hog) must come before astar (latency-bound).
	pos := map[string]int{}
	for i, s := range a {
		pos[s.Name] = i
	}
	if pos["mcf"] > pos["astar"] {
		t.Errorf("MPKI ordering wrong: mcf at %d, astar at %d", pos["mcf"], pos["astar"])
	}
}

func TestNewRunnerRejectsUnknownWorkload(t *testing.T) {
	_, err := NewRunner(Options{Workloads: []string{"astar", "not-a-workload"}})
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
	// The error is actionable: names the bad input and lists valid names.
	msg := err.Error()
	for _, want := range []string{"not-a-workload", "astar", "mix1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestSEROfZeroBaselineIsAnError(t *testing.T) {
	r := mustRunner(t, Options{})
	// Pre-seed the fault-study memo with a degenerate all-zero result so
	// SEROf's baseline SER comes out zero without running a fault study.
	if _, err := r.fits.Do(struct{}{}, func() (faultsim.TierFITs, error) {
		return faultsim.TierFITs{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := r.SEROf(context.Background(), sim.Result{})
	if !errors.Is(err, ErrZeroBaselineSER) {
		t.Fatalf("err = %v, want ErrZeroBaselineSER", err)
	}
}

func TestSEROfUsesAllDDRBaseline(t *testing.T) {
	r := testRunner(t)
	spec, err := workload.SpecByName("astar")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := r.ProfileOf(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	_, rel, err := r.SEROf(context.Background(), prof.Result)
	if err != nil {
		t.Fatal(err)
	}
	// A DDR-only run is its own baseline: relative SER exactly 1.
	if rel < 0.999 || rel > 1.001 {
		t.Fatalf("DDR-only relative SER = %v, want 1", rel)
	}
}

func TestAblationCCShape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.AblationCC(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("ablation rows = %d, want 4 variants", len(tab.Rows))
	}
	serOf := map[string]float64{}
	for _, row := range tab.Rows {
		serOf[row[0]] = cell(t, row[2])
	}
	// The blacklist is the SER lever: disabling it must not improve SER.
	if serOf["cc -blacklist"] < serOf["cc (full)"] {
		t.Errorf("blacklist-off SER %.2f better than full CC %.2f",
			serOf["cc -blacklist"], serOf["cc (full)"])
	}
}

func TestExtensionAnnotatedMigrationShape(t *testing.T) {
	r := testRunner(t)
	tab, err := r.ExtensionAnnotatedMigration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One row per workload plus the average row.
	if len(tab.Rows) != len(r.Workloads())+1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	avg := lastRow(t, tab)
	for col := 1; col <= 6; col++ {
		v := cell(t, avg[col])
		if v <= 0 {
			t.Fatalf("column %d non-positive: %v", col, v)
		}
	}
	// All three schemes must reduce SER versus the perf oracle.
	for _, col := range []int{2, 4, 6} {
		if v := cell(t, avg[col]); v >= 1 {
			t.Errorf("column %d SER = %.2f, want < 1", col, v)
		}
	}
}

func TestExperimentTablesDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	// Two independent runners over the same options must regenerate
	// byte-identical tables (the repository's determinism invariant,
	// end to end).
	build := func() string {
		opts := DefaultOptions()
		opts.Workloads = []string{"astar"}
		opts.RecordsPerCore = 8000
		r := mustRunner(t, opts)
		tab, err := r.Figure5(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("nondeterministic experiment output:\n%s\nvs\n%s", a, b)
	}
}
