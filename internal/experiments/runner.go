// Package experiments contains one driver per table and figure of the
// paper's evaluation (the per-experiment index lives in DESIGN.md §4).
// A Runner memoizes profiling runs, policy runs, and the fault study so the
// full suite — and the bench harness wrapping it — does each expensive
// simulation once.
package experiments

import (
	"fmt"
	"sync"

	"hmem/internal/core"
	"hmem/internal/faultsim"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

// Options scales the experiment suite. The defaults reproduce every figure
// at 1/64 of the paper's capacities with interval ratios preserved
// (DESIGN.md §3 "Scale").
type Options struct {
	// ScaleDiv divides the Table 1 capacities (64 -> 16 MB HBM + 256 MB DDR).
	ScaleDiv int
	// RecordsPerCore is the trace length per core.
	RecordsPerCore int
	// Seed drives all generators.
	Seed uint64
	// FaultTrials is the Monte-Carlo trial count per stratum (§3.2).
	FaultTrials int
	// FCIntervalCycles is the scaled 100 ms full-counter interval.
	FCIntervalCycles int64
	// MEAIntervalCycles is the scaled 50 µs MEA interval.
	MEAIntervalCycles int64
	// Workloads restricts the evaluated set (nil = all 14).
	Workloads []string
}

// DefaultOptions returns the standard reduced-scale configuration.
func DefaultOptions() Options {
	return Options{
		ScaleDiv:       64,
		RecordsPerCore: 40000,
		Seed:           0x9AFE2018,
		FaultTrials:    20000,
		// The paper's 100 ms / 50 µs at 3.2 GHz are 320M / 160K cycles; at
		// our ~100x-shorter simpoints we keep a large FC:MEA ratio (50:1).
		FCIntervalCycles:  400_000,
		MEAIntervalCycles: 8_000,
	}
}

// Runner executes and memoizes experiment building blocks.
type Runner struct {
	opts Options
	cfg  sim.Config

	mu       sync.Mutex
	fits     *faultsim.TierFITs
	profiles map[string]*Profile
	statics  map[string]sim.Result
	dynamics map[string]sim.Result
}

// Profile is a workload's oracle profiling run: the DDR-only simulation
// that yields per-page hotness and AVF (§4.2) and the DDR-only baselines.
type Profile struct {
	Suite  *workload.Suite
	Result sim.Result
	Stats  []core.PageStats
}

// NewRunner builds a runner; zero-value options fall back to defaults.
func NewRunner(opts Options) *Runner {
	def := DefaultOptions()
	if opts.ScaleDiv <= 0 {
		opts.ScaleDiv = def.ScaleDiv
	}
	if opts.RecordsPerCore <= 0 {
		opts.RecordsPerCore = def.RecordsPerCore
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.FaultTrials <= 0 {
		opts.FaultTrials = def.FaultTrials
	}
	if opts.FCIntervalCycles <= 0 {
		opts.FCIntervalCycles = def.FCIntervalCycles
	}
	if opts.MEAIntervalCycles <= 0 {
		opts.MEAIntervalCycles = def.MEAIntervalCycles
	}
	return &Runner{
		opts:     opts,
		cfg:      sim.DefaultConfig(opts.ScaleDiv),
		profiles: make(map[string]*Profile),
		statics:  make(map[string]sim.Result),
		dynamics: make(map[string]sim.Result),
	}
}

// Options returns the runner's resolved options.
func (r *Runner) Options() Options { return r.opts }

// Config returns the scaled machine configuration.
func (r *Runner) Config() sim.Config { return r.cfg }

// Workloads returns the evaluated workload specs.
func (r *Runner) Workloads() []workload.Spec {
	if len(r.opts.Workloads) == 0 {
		return workload.AllSpecs()
	}
	var out []workload.Spec
	for _, name := range r.opts.Workloads {
		s, err := workload.SpecByName(name)
		if err != nil {
			panic(err) // options are programmer-provided constants
		}
		out = append(out, s)
	}
	return out
}

// Fits runs (once) the FaultSim studies and returns both tiers'
// uncorrectable FIT per GB.
func (r *Runner) Fits() (faultsim.TierFITs, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fits != nil {
		return *r.fits, nil
	}
	fits, err := faultsim.DefaultTierFITs(r.opts.FaultTrials)
	if err != nil {
		return faultsim.TierFITs{}, err
	}
	r.fits = &fits
	return fits, nil
}

// SERModel returns the SER scorer backed by the fault study.
func (r *Runner) SERModel() (core.SERModel, error) {
	fits, err := r.Fits()
	if err != nil {
		return core.SERModel{}, err
	}
	return core.SERModel{Fits: fits}, nil
}

// buildSuite constructs a fresh suite for a spec (each simulation needs
// fresh generators because streams are consumed).
func (r *Runner) buildSuite(spec workload.Spec) (*workload.Suite, error) {
	return spec.Build(r.opts.RecordsPerCore, r.opts.Seed)
}

// ProfileOf returns the memoized DDR-only profiling run for a workload.
func (r *Runner) ProfileOf(spec workload.Spec) (*Profile, error) {
	r.mu.Lock()
	if p, ok := r.profiles[spec.Name]; ok {
		r.mu.Unlock()
		return p, nil
	}
	r.mu.Unlock()

	suite, err := r.buildSuite(spec)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(r.cfg, suite.Streams(), nil, false, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: profiling %s: %w", spec.Name, err)
	}
	p := &Profile{Suite: suite, Result: res, Stats: res.Stats()}
	r.mu.Lock()
	r.profiles[spec.Name] = p
	r.mu.Unlock()
	return p, nil
}

// RunStatic executes (memoized) a static-policy run: the policy selects HBM
// residents from the oracle profile, and the workload re-runs with that
// placement fixed.
func (r *Runner) RunStatic(spec workload.Spec, policy core.Policy) (sim.Result, error) {
	key := spec.Name + "/" + policy.Name()
	r.mu.Lock()
	if res, ok := r.statics[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	prof, err := r.ProfileOf(spec)
	if err != nil {
		return sim.Result{}, err
	}
	pages := policy.Select(prof.Stats, int(r.cfg.HBM.Pages()))
	suite, err := r.buildSuite(spec)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(r.cfg, suite.Streams(), pages, false, nil)
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s under %s: %w", spec.Name, policy.Name(), err)
	}
	r.mu.Lock()
	r.statics[key] = res
	r.mu.Unlock()
	return res, nil
}

// RunDynamic executes (memoized by mechanism name) a migration run. The
// initial placement warms HBM with the oracle hot set ("we assume a good
// pre-measurement placement ... the top hot pages from our oracular static
// placement"), or the hot∧low-risk set for reliability-aware mechanisms.
func (r *Runner) RunDynamic(spec workload.Spec, mech string, build func() sim.Migrator, warm core.Policy) (sim.Result, error) {
	key := spec.Name + "/" + mech
	r.mu.Lock()
	if res, ok := r.dynamics[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	prof, err := r.ProfileOf(spec)
	if err != nil {
		return sim.Result{}, err
	}
	pages := warm.Select(prof.Stats, int(r.cfg.HBM.Pages()))
	suite, err := r.buildSuite(spec)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(r.cfg, suite.Streams(), pages, false, build())
	if err != nil {
		return sim.Result{}, fmt.Errorf("experiments: %s under %s: %w", spec.Name, mech, err)
	}
	r.mu.Lock()
	r.dynamics[key] = res
	r.mu.Unlock()
	return res, nil
}

// SEROf scores a finished run against the DDR-only baseline, returning
// (absolute SER, SER relative to all-DDR).
func (r *Runner) SEROf(res sim.Result) (abs, rel float64, err error) {
	m, err := r.SERModel()
	if err != nil {
		return 0, 0, err
	}
	abs = m.SER(res.Snapshot)
	base := m.SERAllDDR(res.Snapshot)
	if base == 0 {
		return abs, 0, nil
	}
	return abs, abs / base, nil
}
