// Package experiments contains one driver per table and figure of the
// paper's evaluation (the per-experiment index lives in DESIGN.md §4).
// A Runner memoizes profiling runs, policy runs, and the fault study behind
// singleflight caches, and every driver fans its independent simulations out
// over a bounded worker pool — so the full suite does each expensive
// simulation exactly once, saturates the machine, and still produces
// bit-identical tables for a given Options.Seed at any worker count.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hmem/internal/core"
	"hmem/internal/exec"
	"hmem/internal/faultsim"
	"hmem/internal/obs"
	"hmem/internal/sim"
	"hmem/internal/trace"
	"hmem/internal/workload"
)

// Options scales the experiment suite. The defaults reproduce every figure
// at 1/64 of the paper's capacities with interval ratios preserved
// (DESIGN.md §3 "Scale").
type Options struct {
	// ScaleDiv divides the Table 1 capacities (64 -> 16 MB HBM + 256 MB DDR).
	ScaleDiv int
	// RecordsPerCore is the trace length per core.
	RecordsPerCore int
	// Seed drives all generators.
	Seed uint64
	// FaultTrials is the Monte-Carlo trial count per stratum (§3.2).
	FaultTrials int
	// FCIntervalCycles is the scaled 100 ms full-counter interval.
	FCIntervalCycles int64
	// MEAIntervalCycles is the scaled 50 µs MEA interval.
	MEAIntervalCycles int64
	// Workloads restricts the evaluated set (nil = all 14).
	Workloads []string
	// Topology names the tier topology to simulate: "hbm-ddr" (the paper's
	// default, also the value for ""), "dram-nvm" (the built-in three-tier
	// scenario), or any topology registered via core.RegisterTopology.
	// Built-ins honor ScaleDiv; registered topologies carry explicit
	// capacities.
	Topology string
	// Parallel bounds the worker count for every fan-out: figure drivers
	// sweeping workloads × policies, fault-study shards, and facade
	// comparisons (non-positive = one worker per CPU). The worker count
	// only changes wall-clock time, never a result — identical seeds give
	// bit-identical tables at any parallelism.
	Parallel int
}

// DefaultOptions returns the standard reduced-scale configuration.
func DefaultOptions() Options {
	return Options{
		ScaleDiv:       64,
		RecordsPerCore: 40000,
		Seed:           0x9AFE2018,
		FaultTrials:    20000,
		// The paper's 100 ms / 50 µs at 3.2 GHz are 320M / 160K cycles; at
		// our ~100x-shorter simpoints we keep a large FC:MEA ratio (50:1).
		FCIntervalCycles:  400_000,
		MEAIntervalCycles: 8_000,
	}
}

// Runner executes and memoizes experiment building blocks. All methods are
// safe for concurrent use: concurrent requests for the same profiling run,
// policy run, or fault study share a single in-flight computation.
//
// Every building block takes a context.Context with requester semantics: a
// cancelled context stops the caller from starting (or waiting on) work, but
// a computation that has already started always runs to completion — its
// result is shared with every other requester of the same key, so it must
// not record one caller's cancellation. That is why the memoized closures
// below resolve their own dependencies with obs.Detach(ctx): a fresh
// background context that keeps the first requester's observability (tracer,
// registry, progress sink) and none of its cancellation.
type Runner struct {
	opts  Options
	cfg   sim.Config
	topo  *core.Topology
	specs []workload.Spec

	fits     exec.Memo[struct{}, faultsim.TierFITs]
	profiles exec.Memo[string, *Profile]
	runs     exec.Memo[string, sim.Result]

	// plans holds the active trace-coalescing plans by workload name;
	// counters and the wrap seam live in coalesce.go.
	plansMu sync.Mutex
	plans   map[string]*tracePlan

	traceOpens   atomic.Uint64
	coalesceHits atomic.Uint64

	traceWrapMu sync.RWMutex
	traceWrap   func(workloadName string, s trace.Stream) trace.Stream

	// delegate, when set, is offered every building block before local
	// computation (the cluster distribution seam, see blocks.go).
	delegateMu sync.RWMutex
	delegate   Delegate
}

// Profile is a workload's oracle profiling run: the DDR-only simulation
// that yields per-page hotness and AVF (§4.2) and the DDR-only baselines,
// plus the workload's structure layout (what annotation selection consumes).
// Everything here is serializable — a Profile computed on any cluster node
// is bit-identical to a local one.
type Profile struct {
	Structures []workload.Structure
	Result     sim.Result
	Stats      []core.PageStats
}

// NewRunner builds a runner; zero-value options fall back to defaults. It
// validates the workload selection up front — a typo in Options.Workloads
// (which arrives straight from cmd/experiments -workloads) is an error
// naming the valid choices, not a panic at first use.
func NewRunner(opts Options) (*Runner, error) {
	def := DefaultOptions()
	if opts.ScaleDiv <= 0 {
		opts.ScaleDiv = def.ScaleDiv
	}
	if opts.RecordsPerCore <= 0 {
		opts.RecordsPerCore = def.RecordsPerCore
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if opts.FaultTrials <= 0 {
		opts.FaultTrials = def.FaultTrials
	}
	if opts.FCIntervalCycles <= 0 {
		opts.FCIntervalCycles = def.FCIntervalCycles
	}
	if opts.MEAIntervalCycles <= 0 {
		opts.MEAIntervalCycles = def.MEAIntervalCycles
	}
	opts.Parallel = exec.Workers(opts.Parallel)
	if opts.Topology == "" {
		opts.Topology = core.DefaultTopologyName
	}
	topo, err := core.TopologyByName(opts.Topology, opts.ScaleDiv)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	specs, err := resolveWorkloads(opts.Workloads)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(opts.ScaleDiv)
	cfg.Topology = topo
	return &Runner{
		opts:  opts,
		cfg:   cfg,
		topo:  topo,
		specs: specs,
	}, nil
}

// resolveWorkloads maps the requested names to specs, or reports the full
// set of valid names on the first unknown one.
func resolveWorkloads(names []string) ([]workload.Spec, error) {
	if len(names) == 0 {
		return workload.AllSpecs(), nil
	}
	out := make([]workload.Spec, 0, len(names))
	for _, name := range names {
		s, err := workload.SpecByName(name)
		if err != nil {
			var valid []string
			for _, v := range workload.AllSpecs() {
				valid = append(valid, v.Name)
			}
			return nil, fmt.Errorf(
				"experiments: unknown workload %q (valid workloads: %s; any benchmark of %s also runs as a homogeneous workload)",
				name, strings.Join(valid, ", "), strings.Join(workload.Names(), ", "))
		}
		out = append(out, s)
	}
	return out, nil
}

// Options returns the runner's resolved options.
func (r *Runner) Options() Options { return r.opts }

// Config returns the scaled machine configuration.
func (r *Runner) Config() sim.Config { return r.cfg }

// Topology returns the runner's resolved tier topology.
func (r *Runner) Topology() *core.Topology { return r.topo }

// Workloads returns the evaluated workload specs (validated at NewRunner).
func (r *Runner) Workloads() []workload.Spec {
	return append([]workload.Spec(nil), r.specs...)
}

// mapSpecs evaluates fn over specs on the runner's worker budget and
// returns the results in spec order regardless of completion order — the
// deterministic fan-out every figure driver is built on.
func mapSpecs[T any](ctx context.Context, r *Runner, specs []workload.Spec, fn func(workload.Spec) (T, error)) ([]T, error) {
	return exec.Map(ctx, r.opts.Parallel, len(specs), func(i int) (T, error) {
		return fn(specs[i])
	})
}

// Fits runs (once) the per-tier FaultSim studies and returns every tier's
// uncorrectable FIT per GB, in topology tier order. Tiers carrying a fixed
// FITPerGB skip their study. Concurrent callers share the one computation.
func (r *Runner) Fits(ctx context.Context) (faultsim.TierFITs, error) {
	return r.fits.DoCtx(ctx, struct{}{}, func() (faultsim.TierFITs, error) {
		// Detach: keep the first requester's observability but not its
		// cancellation — the result is shared with every other requester.
		runCtx := obs.Detach(ctx)
		per := make([]float64, len(r.topo.Tiers))
		for i, td := range r.topo.Tiers {
			if td.FITPerGB > 0 {
				per[i] = td.FITPerGB
				continue
			}
			study, _, err := r.StudyForTier(i)
			if err != nil {
				return faultsim.TierFITs{}, err
			}
			res, err := r.runStudy(runCtx, i, study)
			if err != nil {
				return faultsim.TierFITs{}, err
			}
			per[i] = res.UncFITPerGB
		}
		return faultsim.TierFITs{
			DDRPerGB: per[0],
			HBMPerGB: per[r.topo.FastTier],
			PerGB:    per,
		}, nil
	})
}

// runStudy executes one tier's fault study, preferring the delegate's
// shard-level distribution: workers compute integer tallies for the 2048-
// trial Monte-Carlo shards, the coordinator merges them in shard order and
// finishes the Poisson math locally — byte-identical to a local run at any
// worker count. ErrNotDelegated (or no delegate) runs the study locally.
func (r *Runner) runStudy(ctx context.Context, tier int, study *faultsim.Study) (faultsim.Result, error) {
	if d := r.getDelegate(); d != nil {
		jobs := study.Shards(r.opts.FaultTrials)
		tallies, err := d.RunStudyShards(ctx, tier, jobs)
		switch {
		case err == nil:
			return study.Combine(jobs, tallies, r.opts.FaultTrials)
		case !errors.Is(err, ErrNotDelegated):
			return faultsim.Result{}, err
		}
	}
	return study.RunCtx(ctx, r.opts.FaultTrials)
}

// SERModel returns the SER scorer backed by the fault studies, with the
// topology's fast tier installed for static scoring.
func (r *Runner) SERModel(ctx context.Context) (core.SERModel, error) {
	fits, err := r.Fits(ctx)
	if err != nil {
		return core.SERModel{}, err
	}
	return core.SERModel{Fits: fits, Fast: r.topo.FastTier}, nil
}

// CacheStats aggregates the hit/miss counters of the runner's three memo
// caches (fault study, profiles, policy runs) — the work-sharing counter
// cmd/experiments prints after a run and hmemd exports on /metrics.
func (r *Runner) CacheStats() exec.MemoStats {
	return r.fits.Stats().Add(r.profiles.Stats()).Add(r.runs.Stats())
}

// buildSuite constructs the trace view a simulation consumes: fresh
// generators normally (streams are consumed, so every simulation needs its
// own), or zero-copy replay views when a coalescing plan for the workload
// is held (see coalesce.go).
func (r *Runner) buildSuite(spec workload.Spec) (*suiteView, error) {
	return r.buildSuiteCtx(context.Background(), spec)
}

// buildSuiteCtx is buildSuite recorded as a "trace.build" span — the trace
// decode/generation seam.
func (r *Runner) buildSuiteCtx(ctx context.Context, spec workload.Spec) (*suiteView, error) {
	// Gated on Enabled so the attribute slice is never built untraced.
	if obs.Enabled(ctx) {
		_, sp := obs.Start(ctx, "trace.build",
			obs.Str("workload", spec.Name), obs.Int("records_per_core", int64(r.opts.RecordsPerCore)))
		defer sp.End()
	}
	if p := r.activePlan(spec.Name); p != nil {
		r.coalesceHits.Add(1)
		streams := make([]trace.Stream, len(p.records))
		for i, recs := range p.records {
			streams[i] = trace.NewSliceStream(recs)
		}
		return r.wrapStreams(spec.Name, &suiteView{structures: p.structures, streams: streams}), nil
	}
	suite, err := spec.Build(r.opts.RecordsPerCore, r.opts.Seed)
	if err != nil {
		return nil, err
	}
	r.traceOpens.Add(1)
	return r.wrapStreams(spec.Name, &suiteView{structures: suite.Structures, streams: suite.Streams()}), nil
}

// ProfileOf returns the memoized DDR-only profiling run for a workload.
func (r *Runner) ProfileOf(ctx context.Context, spec workload.Spec) (*Profile, error) {
	return r.profiles.DoCtx(ctx, spec.Name, func() (*Profile, error) {
		runCtx := obs.Detach(ctx)
		if obs.Enabled(runCtx) {
			var sp *obs.Span
			runCtx, sp = obs.Start(runCtx, "experiments.profile", obs.Str("workload", spec.Name))
			defer sp.End()
		}
		if p, ok, err := r.delegateBlock(runCtx, BlockKey{Kind: BlockProfile, Workload: spec.Name}); err != nil {
			return nil, err
		} else if ok {
			return &Profile{Structures: p.Structures, Result: p.Result, Stats: p.Result.Stats()}, nil
		}
		suite, err := r.buildSuiteCtx(runCtx, spec)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunCtx(runCtx, r.cfg, suite.streams, nil, false, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: profiling %s: %w", spec.Name, err)
		}
		return &Profile{Structures: suite.structures, Result: res, Stats: res.Stats()}, nil
	})
}

// RunStatic executes (memoized) a static-policy run: the policy selects HBM
// residents from the oracle profile, and the workload re-runs with that
// placement fixed.
func (r *Runner) RunStatic(ctx context.Context, spec workload.Spec, policy core.Policy) (sim.Result, error) {
	return r.runs.DoCtx(ctx, "static/"+spec.Name+"/"+policy.Name(), func() (sim.Result, error) {
		runCtx := obs.Detach(ctx)
		if obs.Enabled(runCtx) {
			var sp *obs.Span
			runCtx, sp = obs.Start(runCtx, "experiments.static",
				obs.Str("workload", spec.Name), obs.Str("policy", policy.Name()))
			defer sp.End()
		}
		if delegableStatic(policy) {
			if p, ok, err := r.delegateBlock(runCtx, BlockKey{Kind: BlockStatic, Workload: spec.Name, Policy: policy.Name()}); err != nil {
				return sim.Result{}, err
			} else if ok {
				return p.Result, nil
			}
		}
		prof, err := r.ProfileOf(runCtx, spec)
		if err != nil {
			return sim.Result{}, err
		}
		pages := policy.Select(prof.Stats, int(r.cfg.FastPages()))
		suite, err := r.buildSuiteCtx(runCtx, spec)
		if err != nil {
			return sim.Result{}, err
		}
		res, err := sim.RunCtx(runCtx, r.cfg, suite.streams, pages, false, nil)
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %s under %s: %w", spec.Name, policy.Name(), err)
		}
		return res, nil
	})
}

// RunDynamic executes (memoized by mechanism name) a migration run. The
// initial placement warms HBM with the oracle hot set ("we assume a good
// pre-measurement placement ... the top hot pages from our oracular static
// placement"), or the hot∧low-risk set for reliability-aware mechanisms.
func (r *Runner) RunDynamic(ctx context.Context, spec workload.Spec, mech string, build func() sim.Migrator, warm core.Policy) (sim.Result, error) {
	return r.runs.DoCtx(ctx, "dynamic/"+spec.Name+"/"+mech, func() (sim.Result, error) {
		runCtx := obs.Detach(ctx)
		if obs.Enabled(runCtx) {
			var sp *obs.Span
			runCtx, sp = obs.Start(runCtx, "experiments.dynamic",
				obs.Str("workload", spec.Name), obs.Str("mechanism", mech))
			defer sp.End()
		}
		if _, _, resolvable := mechanismByName(mech, r.opts); resolvable {
			if p, ok, err := r.delegateBlock(runCtx, BlockKey{Kind: BlockDynamic, Workload: spec.Name, Policy: mech}); err != nil {
				return sim.Result{}, err
			} else if ok {
				return p.Result, nil
			}
		}
		prof, err := r.ProfileOf(runCtx, spec)
		if err != nil {
			return sim.Result{}, err
		}
		pages := warm.Select(prof.Stats, int(r.cfg.FastPages()))
		suite, err := r.buildSuiteCtx(runCtx, spec)
		if err != nil {
			return sim.Result{}, err
		}
		res, err := sim.RunCtx(runCtx, r.cfg, suite.streams, pages, false, build())
		if err != nil {
			return sim.Result{}, fmt.Errorf("experiments: %s under %s: %w", spec.Name, mech, err)
		}
		return res, nil
	})
}

// ErrZeroBaselineSER reports a degenerate fault study: the all-DDR baseline
// SER of a run is zero, so relative SER is undefined. Surfacing it as an
// error keeps a broken study from masquerading as "perfect reliability" in
// the tables.
var ErrZeroBaselineSER = errors.New("experiments: all-DDR baseline SER is zero (degenerate fault study or empty snapshot)")

// SEROf scores a finished run against the DDR-only baseline, returning
// (absolute SER, SER relative to all-DDR). A zero baseline returns
// ErrZeroBaselineSER.
func (r *Runner) SEROf(ctx context.Context, res sim.Result) (abs, rel float64, err error) {
	m, err := r.SERModel(ctx)
	if err != nil {
		return 0, 0, err
	}
	abs = m.SER(res.Snapshot)
	base := m.SERAllDDR(res.Snapshot)
	if base == 0 {
		return abs, 0, ErrZeroBaselineSER
	}
	return abs, abs / base, nil
}
