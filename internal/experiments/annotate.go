package experiments

import (
	"context"

	"hmem/internal/annotate"
	"hmem/internal/core"
	"hmem/internal/obs"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// annotationRun performs the §7 experiment for one workload: profile, pick
// structures to annotate, pin their pages, and run with migrations disabled
// for pinned pages (here: no migrator at all, matching the paper's static
// annotation evaluation).
func (r *Runner) annotationRun(ctx context.Context, spec workload.Spec) (sim.Result, []annotate.Annotation, error) {
	prof, err := r.ProfileOf(ctx, spec)
	if err != nil {
		return sim.Result{}, nil, err
	}
	ann, pins := annotate.Select(prof.Structures, prof.Stats, int(r.cfg.FastPages()))

	res, err := r.runs.DoCtx(ctx, "annotation/"+spec.Name, func() (sim.Result, error) {
		// Delegable: a worker re-derives the same pins from its own
		// (bit-identical) profile, so only the result crosses the wire.
		if p, ok, err := r.delegateBlock(obs.Detach(ctx), BlockKey{Kind: BlockAnnotation, Workload: spec.Name}); err != nil {
			return sim.Result{}, err
		} else if ok {
			return p.Result, nil
		}
		suite, err := r.buildSuite(spec)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(r.cfg, suite.streams, pins, true, nil)
	})
	if err != nil {
		return sim.Result{}, nil, err
	}
	return res, ann, nil
}

// RunAnnotation exposes the §7 annotation run for the facade.
func (r *Runner) RunAnnotation(ctx context.Context, spec workload.Spec) (sim.Result, error) {
	res, _, err := r.annotationRun(ctx, spec)
	return res, err
}

// Figure16 compares annotation-based placement against the perf-focused
// static oracle (paper: SER ÷1.3 at 1.1% IPC cost).
func (r *Runner) Figure16(ctx context.Context) (*report.Table, error) {
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 16: program-annotation placement",
		"workload", "IPC vs perf-focused", "SER vs perf-focused", "pinned pages")
	type row struct {
		ipc, ser float64
		pinned   int
	}
	rows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (row, error) {
		perf, err := r.RunStatic(ctx, spec, core.PerfFocused{})
		if err != nil {
			return row{}, err
		}
		res, ann, err := r.annotationRun(ctx, spec)
		if err != nil {
			return row{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return row{}, err
		}
		resSER, _, err := r.SEROf(ctx, res)
		if err != nil {
			return row{}, err
		}
		pinned := 0
		for _, a := range ann {
			pinned += len(a.Pages)
		}
		out := row{ipc: res.IPC / perf.IPC, pinned: pinned}
		if perfSER > 0 {
			out.ser = resSER / perfSER
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var ipcs, sers []float64
	for i, spec := range ordered {
		ipcs = append(ipcs, rows[i].ipc)
		sers = append(sers, rows[i].ser)
		t.AddRow(spec.Name, report.X(rows[i].ipc), report.X(rows[i].ser), report.Int(rows[i].pinned))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)), "")
	t.Note = "paper: SER reduced 1.3x at 1.1% IPC cost vs perf-focused placement"
	return t, nil
}

// Figure17 counts how many structures must be annotated per workload
// (paper: 1-6 for most, 39/45 for cactusADM/mix1, average 8).
func (r *Runner) Figure17(ctx context.Context) (*report.Table, error) {
	t := report.New("Figure 17: number of annotated program structures",
		"workload", "annotations", "pages pinned")
	specs := r.Workloads()
	type row struct{ count, pinned int }
	rows, err := mapSpecs(ctx, r, specs, func(spec workload.Spec) (row, error) {
		_, ann, err := r.annotationRun(ctx, spec)
		if err != nil {
			return row{}, err
		}
		pinned := 0
		for _, a := range ann {
			pinned += len(a.Pages)
		}
		return row{count: annotate.Count(ann), pinned: pinned}, nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	n := 0
	for i, spec := range specs {
		t.AddRow(spec.Name, report.Int(rows[i].count), report.Int(rows[i].pinned))
		total += rows[i].count
		n++
	}
	if n > 0 {
		t.Note = "average " + report.F(float64(total)/float64(n), 1) +
			" annotations (paper: 8 on average, 1-6 for most workloads)"
	}
	return t, nil
}
