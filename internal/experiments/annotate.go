package experiments

import (
	"hmem/internal/annotate"
	"hmem/internal/core"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// annotationRun performs the §7 experiment for one workload: profile, pick
// structures to annotate, pin their pages, and run with migrations disabled
// for pinned pages (here: no migrator at all, matching the paper's static
// annotation evaluation).
func (r *Runner) annotationRun(spec workload.Spec) (sim.Result, []annotate.Annotation, error) {
	prof, err := r.ProfileOf(spec)
	if err != nil {
		return sim.Result{}, nil, err
	}
	ann, pins := annotate.Select(prof.Suite.Structures, prof.Stats, int(r.cfg.HBM.Pages()))

	key := spec.Name + "/annotation"
	r.mu.Lock()
	res, ok := r.statics[key]
	r.mu.Unlock()
	if !ok {
		suite, err := r.buildSuite(spec)
		if err != nil {
			return sim.Result{}, nil, err
		}
		res, err = sim.Run(r.cfg, suite.Streams(), pins, true, nil)
		if err != nil {
			return sim.Result{}, nil, err
		}
		r.mu.Lock()
		r.statics[key] = res
		r.mu.Unlock()
	}
	return res, ann, nil
}

// RunAnnotation exposes the §7 annotation run for the facade.
func (r *Runner) RunAnnotation(spec workload.Spec) (sim.Result, error) {
	res, _, err := r.annotationRun(spec)
	return res, err
}

// Figure16 compares annotation-based placement against the perf-focused
// static oracle (paper: SER ÷1.3 at 1.1% IPC cost).
func (r *Runner) Figure16() (*report.Table, error) {
	ordered, err := r.byMPKIDesc()
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 16: program-annotation placement",
		"workload", "IPC vs perf-focused", "SER vs perf-focused", "pinned pages")
	var ipcs, sers []float64
	for _, spec := range ordered {
		perf, err := r.RunStatic(spec, core.PerfFocused{})
		if err != nil {
			return nil, err
		}
		res, ann, err := r.annotationRun(spec)
		if err != nil {
			return nil, err
		}
		perfSER, _, err := r.SEROf(perf)
		if err != nil {
			return nil, err
		}
		resSER, _, err := r.SEROf(res)
		if err != nil {
			return nil, err
		}
		pinned := 0
		for _, a := range ann {
			pinned += len(a.Pages)
		}
		ipcRatio := res.IPC / perf.IPC
		serRatio := 0.0
		if perfSER > 0 {
			serRatio = resSER / perfSER
		}
		ipcs = append(ipcs, ipcRatio)
		sers = append(sers, serRatio)
		t.AddRow(spec.Name, report.X(ipcRatio), report.X(serRatio), report.Int(pinned))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)), "")
	t.Note = "paper: SER reduced 1.3x at 1.1% IPC cost vs perf-focused placement"
	return t, nil
}

// Figure17 counts how many structures must be annotated per workload
// (paper: 1-6 for most, 39/45 for cactusADM/mix1, average 8).
func (r *Runner) Figure17() (*report.Table, error) {
	t := report.New("Figure 17: number of annotated program structures",
		"workload", "annotations", "pages pinned")
	total := 0
	n := 0
	for _, spec := range r.Workloads() {
		_, ann, err := r.annotationRun(spec)
		if err != nil {
			return nil, err
		}
		pinned := 0
		for _, a := range ann {
			pinned += len(a.Pages)
		}
		t.AddRow(spec.Name, report.Int(annotate.Count(ann)), report.Int(pinned))
		total += annotate.Count(ann)
		n++
	}
	if n > 0 {
		t.Note = "average " + report.F(float64(total)/float64(n), 1) +
			" annotations (paper: 8 on average, 1-6 for most workloads)"
	}
	return t, nil
}
