package experiments

import (
	"context"

	"fmt"

	"hmem/internal/core"
	"hmem/internal/ecc"
	"hmem/internal/memsim"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// Table1 renders the simulated system configuration (the paper's Table 1 at
// the runner's scale).
func (r *Runner) Table1() *report.Table {
	t := report.New("Table 1: system configuration (scale 1/"+report.Int(r.opts.ScaleDiv)+")",
		"component", "parameter", "value")
	t.AddRow("processor", "cores", report.Int(workload.Cores))
	t.AddRow("processor", "issue width", report.Int(r.cfg.IssueWidth))
	t.AddRow("processor", "outstanding reads/core", report.Int(r.cfg.MaxOutstanding))
	add := func(label string, c memsim.Config) {
		t.AddRow(label, "capacity", fmt.Sprintf("%d MiB", c.CapacityBytes>>20))
		t.AddRow(label, "channels", report.Int(c.Channels))
		t.AddRow(label, "banks/rank", report.Int(c.BanksPerRank))
		t.AddRow(label, "bus bytes/beat", report.Int(c.BusBytesPerBeat))
		t.AddRow(label, "peak bandwidth", report.F(c.PeakBandwidth(), 1)+" B/cycle")
	}
	// Tier rows come from the topology: the fast tier first, then the rest
	// in descending index — HBM then DDR3 for the paper's default machine.
	add(tierLabel(r.topo.Tiers[r.topo.FastTier]), r.topo.Tiers[r.topo.FastTier].Mem)
	for i := len(r.topo.Tiers) - 1; i >= 0; i-- {
		if i == r.topo.FastTier {
			continue
		}
		add(tierLabel(r.topo.Tiers[i]), r.topo.Tiers[i].Mem)
	}
	return t
}

// tierLabel renders a tier's table heading: the memsim config name plus the
// ECC scheme protecting it ("HBM (SEC-DED)", "DDR3 (ChipKill)").
func tierLabel(td core.TierDesc) string {
	scheme := ""
	switch td.Org.Scheme {
	case ecc.SECDED:
		scheme = "SEC-DED"
	case ecc.ChipKillSSC:
		scheme = "ChipKill"
	default:
		scheme = "no ECC"
	}
	if td.FITPerGB > 0 {
		scheme = fmt.Sprintf("%.3g FIT/GB", td.FITPerGB)
	}
	return td.Mem.Name + " (" + scheme + ")"
}

// Table2 renders the Table 2 mix compositions.
func (r *Runner) Table2() *report.Table {
	t := report.New("Table 2: mixed workloads", "mix", "composition")
	for _, mix := range workload.MixSpecs() {
		desc := ""
		for i, m := range mix.Members {
			if i > 0 {
				desc += ", "
			}
			desc += fmt.Sprintf("%s x%d", m.Bench, m.Copies)
		}
		t.AddRow(mix.Name, desc)
	}
	return t
}

// Table3 is the paper's summary: every scheme's average IPC degradation and
// SER improvement against its performance-focused baseline.
func (r *Runner) Table3(ctx context.Context) (*report.Table, error) {
	t := report.New("Table 3: summary of reliability-aware schemes",
		"scheme", "IPC degradation", "SER improvement", "paper (IPC / SER)")
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}

	addStatic := func(label string, pol core.Policy, paper string) error {
		rows, err := r.staticComparison(ctx, pol, ordered)
		if err != nil {
			return err
		}
		avg := avgRow(rows)
		t.AddRow(label, report.Pct(1-avg.IPCvsPerf), report.X(safeInv(avg.SERvsPerf)), paper)
		return nil
	}
	if err := addStatic("reliability-focused (static)", core.ReliabilityFocused{}, "17% / 5.0x"); err != nil {
		return nil, err
	}
	if err := addStatic("balanced (static)", core.Balanced{}, "14% / 3.0x"); err != nil {
		return nil, err
	}
	if err := addStatic("Wr ratio (heuristic)", core.WrRatio{}, "8.1% / 1.8x"); err != nil {
		return nil, err
	}
	if err := addStatic("Wr2 ratio (heuristic)", core.Wr2Ratio{}, "1% / 1.6x"); err != nil {
		return nil, err
	}

	type ratios struct {
		ipc, ser float64
		hasSER   bool
	}
	addDynamic := func(label string, run func(context.Context, workload.Spec) (sim.Result, error), paper string) error {
		rows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (ratios, error) {
			perf, err := r.perfMigration(ctx, spec)
			if err != nil {
				return ratios{}, err
			}
			res, err := run(ctx, spec)
			if err != nil {
				return ratios{}, err
			}
			perfSER, _, err := r.SEROf(ctx, perf)
			if err != nil {
				return ratios{}, err
			}
			resSER, _, err := r.SEROf(ctx, res)
			if err != nil {
				return ratios{}, err
			}
			out := ratios{ipc: res.IPC / perf.IPC}
			if perfSER > 0 {
				out.ser, out.hasSER = resSER/perfSER, true
			}
			return out, nil
		})
		if err != nil {
			return err
		}
		var ipcs, sers []float64
		for _, row := range rows {
			ipcs = append(ipcs, row.ipc)
			if row.hasSER {
				sers = append(sers, row.ser)
			}
		}
		t.AddRow(label, report.Pct(1-geo(ipcs)), report.X(safeInv(geo(sers))), paper)
		return nil
	}
	if err := addDynamic("reliability-aware FC (dynamic)", r.fcMigration, "6% / 1.8x"); err != nil {
		return nil, err
	}
	if err := addDynamic("reliability-aware CC (dynamic)", r.ccMigration, "4.9% / 1.5x"); err != nil {
		return nil, err
	}

	// Annotations (vs static perf-focused).
	annRows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (ratios, error) {
		perf, err := r.RunStatic(ctx, spec, core.PerfFocused{})
		if err != nil {
			return ratios{}, err
		}
		res, _, err := r.annotationRun(ctx, spec)
		if err != nil {
			return ratios{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return ratios{}, err
		}
		resSER, _, err := r.SEROf(ctx, res)
		if err != nil {
			return ratios{}, err
		}
		out := ratios{ipc: res.IPC / perf.IPC}
		if perfSER > 0 {
			out.ser, out.hasSER = resSER/perfSER, true
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var ipcs, sers []float64
	for _, row := range annRows {
		ipcs = append(ipcs, row.ipc)
		if row.hasSER {
			sers = append(sers, row.ser)
		}
	}
	t.AddRow("program annotations", report.Pct(1-geo(ipcs)), report.X(safeInv(geo(sers))), "1.1% / 1.3x")
	t.Note = "IPC degradation and SER improvement vs the respective performance-focused baseline (Table 3)"
	return t, nil
}

// TableHardwareCost reproduces the §6.3/§6.4.2 storage accounting at the
// paper's full scale and at the experiment scale.
func (r *Runner) TableHardwareCost() *report.Table {
	t := report.New("Hardware cost of migration mechanisms (§6.3, §6.4.2)",
		"mechanism", "scope", "bytes", "notes")
	fullTotal := 17 * (1 << 30) / 4096
	fullHBM := (1 << 30) / 4096
	t.AddRow("Full Counters", "paper scale (17 GB HMA)",
		report.Int(core.FCCostBytes(fullTotal)), "2x 8-bit counters per page (8.5 MB)")
	t.AddRow("Full Counters (additional)", "paper scale",
		report.Int(core.FCAdditionalCostBytes(fullTotal)), "extra vs perf-only tracking (4.25 MB)")
	t.AddRow("Cross Counters", "paper scale (1 GB HBM)",
		report.Int(core.CCCostBytes(fullHBM)), "512 KB risk + 100 KB MEA + 64 KB remap = 676 KB")
	scaledTotal := int(r.topo.TotalPages())
	scaledHBM := int(r.topo.FastPages())
	t.AddRow("Full Counters", "experiment scale",
		report.Int(core.FCCostBytes(scaledTotal)), "")
	t.AddRow("Cross Counters", "experiment scale",
		report.Int(core.CCCostBytes(scaledHBM)), "")
	return t
}

func geo(vs []float64) float64 { return stats.GeoMean(vs) }

func safeInv(v float64) float64 {
	if v == 0 {
		return 0
	}
	return 1 / v
}
