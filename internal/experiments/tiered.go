package experiments

import (
	"context"

	"hmem/internal/core"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

// ExtensionTieredEndurance exercises the built-in three-tier DRAM–NVM
// topology end to end: first-touch allocation fills the DRAM middle tier and
// spills to the endurance-limited NVM capacity tier, while the Cross-Counter
// mechanism promotes hot pages into HBM. For each workload it reports the
// first-touch baseline and the migrating run — IPC, SER against the
// everything-in-NVM baseline, the fast-tier access share, and the NVM wear
// counters (total writes, peak per-frame writes, frames past the write
// budget). When the runner is already configured for the dram-nvm topology
// the runs share its memos; otherwise a sub-runner with identical options is
// used so the driver can ride along in a default-topology suite.
func (r *Runner) ExtensionTieredEndurance(ctx context.Context) (*report.Table, error) {
	tr := r
	if r.opts.Topology != core.DRAMNVMTopologyName {
		opts := r.opts
		opts.Topology = core.DRAMNVMTopologyName
		sub, err := NewRunner(opts)
		if err != nil {
			return nil, err
		}
		tr = sub
	}
	// Cap the sweep: the driver demonstrates the scenario, it is not a
	// figure reproduction, and three-tier runs pay the NVM latency.
	specs := tr.specs
	if len(specs) > 3 {
		specs = specs[:3]
	}

	type row struct {
		scheme  string
		res     sim.Result
		serRel  float64
		ipcBase float64
	}
	perSpec, err := mapSpecs(ctx, tr, specs, func(spec workload.Spec) ([2]row, error) {
		prof, err := tr.ProfileOf(ctx, spec)
		if err != nil {
			return [2]row{}, err
		}
		dyn, err := tr.RunDynamic(ctx, spec, "cc-migration", func() sim.Migrator {
			ratio := int(tr.opts.FCIntervalCycles / tr.opts.MEAIntervalCycles)
			return migration.NewCrossCounter(tr.opts.MEAIntervalCycles, ratio, 32)
		}, core.Balanced{})
		if err != nil {
			return [2]row{}, err
		}
		out := [2]row{
			{scheme: "first-touch", res: prof.Result, ipcBase: prof.Result.IPC},
			{scheme: "cc-migration", res: dyn, ipcBase: prof.Result.IPC},
		}
		for i := range out {
			if _, rel, err := tr.SEROf(ctx, out[i].res); err == nil {
				out[i].serRel = rel
			} else {
				return [2]row{}, err
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	topo := tr.Topology()
	t := report.New("Extension: three-tier DRAM-NVM with endurance accounting",
		"workload", "scheme", "IPC", "IPC vs first-touch", "SER vs all-"+topo.TierName(0),
		topo.TierName(topo.FastTier)+" access share",
		"NVM writes", "NVM max frame writes", "NVM exhausted frames")
	for i, spec := range specs {
		for _, rw := range perSpec[i] {
			wear := nvmWear(rw.res)
			t.AddRow(spec.Name, rw.scheme,
				report.F(rw.res.IPC, 3),
				report.X(rw.res.IPC/rw.ipcBase),
				report.X(rw.serRel),
				report.F(rw.res.HBMAccessFraction, 3),
				report.Int(int(wear.TotalWrites)),
				report.Int(int(wear.MaxFrameWrites)),
				report.Int(int(wear.ExhaustedFrames)))
		}
	}
	t.Note = "NVM wear from per-frame write counters against the topology's write budget (" +
		report.Int(int(topo.Tiers[0].WriteBudget)) + " writes/frame)"
	return t, nil
}

// nvmWear extracts the endurance summary of the (single) write-budgeted
// tier, zero-valued when the run carried none.
func nvmWear(res sim.Result) sim.TierEndurance {
	for _, e := range res.Endurance {
		return e
	}
	return sim.TierEndurance{}
}
