package experiments

import (
	"context"
	"runtime"
	"testing"
)

// TestSuiteDeterministicAcrossParallelism is the engine's core contract: the
// same Options.Seed must produce byte-identical tables at ANY worker count.
// It runs a small grid (two workloads, two experiments that together exercise
// profiling, static placement, dynamic migration, and the fault study) at
// parallelism 1, 4, and NumCPU and compares the rendered report.Table output.
func TestSuiteDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	build := func(parallel int) string {
		opts := DefaultOptions()
		opts.Workloads = []string{"astar", "mcf"}
		opts.RecordsPerCore = 6000
		opts.FaultTrials = 4000
		opts.Parallel = parallel
		r := mustRunner(t, opts)
		out := ""
		for _, id := range []string{"figure5", "figure12"} {
			exp, ok := r.ByID(id)
			if !ok {
				t.Fatalf("missing experiment %q", id)
			}
			tab, err := exp.Run(context.Background())
			if err != nil {
				t.Fatalf("%s at parallel=%d: %v", id, parallel, err)
			}
			out += tab.String() + "\n"
		}
		return out
	}

	serial := build(1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		if got := build(workers); got != serial {
			t.Fatalf("output at parallel=%d differs from serial run:\n--- parallel=1 ---\n%s\n--- parallel=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}
