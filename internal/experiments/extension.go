package experiments

import (
	"context"

	"hmem/internal/annotate"
	"hmem/internal/core"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// ExtensionAnnotatedMigration evaluates the paper's closing suggestion
// (§7): "Supplementing such an annotation-driven static data placement
// scheme with a reliability-aware migration mechanism could potentially
// further improve the overall reliability of the system." Annotated
// structures stay pinned in HBM while the Full Counter mechanism manages
// the remaining frames dynamically. Compared against annotation-only and
// FC-only on every workload, all relative to the perf-focused static
// oracle.
func (r *Runner) ExtensionAnnotatedMigration(ctx context.Context) (*report.Table, error) {
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: annotations + reliability-aware migration (§7 future work)",
		"workload", "annot IPC", "annot SER", "FC IPC", "FC SER", "annot+FC IPC", "annot+FC SER")

	type row struct {
		ai, as, fi, fs, ci, cs float64
	}
	rows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (row, error) {
		perf, err := r.RunStatic(ctx, spec, core.PerfFocused{})
		if err != nil {
			return row{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return row{}, err
		}
		norm := func(res sim.Result) (float64, float64, error) {
			resSER, _, err := r.SEROf(ctx, res)
			if err != nil {
				return 0, 0, err
			}
			serRatio := 0.0
			if perfSER > 0 {
				serRatio = resSER / perfSER
			}
			return res.IPC / perf.IPC, serRatio, nil
		}

		annot, _, err := r.annotationRun(ctx, spec)
		if err != nil {
			return row{}, err
		}
		fc, err := r.fcMigration(ctx, spec)
		if err != nil {
			return row{}, err
		}
		combined, err := r.annotatedMigrationRun(ctx, spec)
		if err != nil {
			return row{}, err
		}

		var out row
		if out.ai, out.as, err = norm(annot); err != nil {
			return row{}, err
		}
		if out.fi, out.fs, err = norm(fc); err != nil {
			return row{}, err
		}
		if out.ci, out.cs, err = norm(combined); err != nil {
			return row{}, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var aIPC, aSER, fIPC, fSER, cIPC, cSER []float64
	for i, spec := range ordered {
		v := rows[i]
		aIPC, aSER = append(aIPC, v.ai), append(aSER, v.as)
		fIPC, fSER = append(fIPC, v.fi), append(fSER, v.fs)
		cIPC, cSER = append(cIPC, v.ci), append(cSER, v.cs)
		t.AddRow(spec.Name, report.X(v.ai), report.X(v.as), report.X(v.fi), report.X(v.fs),
			report.X(v.ci), report.X(v.cs))
	}
	t.AddRow("average",
		report.X(stats.GeoMean(aIPC)), report.X(stats.GeoMean(aSER)),
		report.X(stats.GeoMean(fIPC)), report.X(stats.GeoMean(fSER)),
		report.X(stats.GeoMean(cIPC)), report.X(stats.GeoMean(cSER)))
	t.Note = "IPC and SER relative to the perf-focused static oracle; the paper " +
		"conjectures the combination improves on annotation alone"
	return t, nil
}

// annotatedMigrationRun pins the annotated structures and lets the FC
// mechanism manage the remaining HBM frames.
func (r *Runner) annotatedMigrationRun(ctx context.Context, spec workload.Spec) (sim.Result, error) {
	return r.runs.DoCtx(ctx, "annotation+fc/"+spec.Name, func() (sim.Result, error) {
		// Background, not ctx: the computation is shared once started and a
		// cached ctx.Err() would poison the key (see Memo.DoCtx).
		prof, err := r.ProfileOf(context.Background(), spec)
		if err != nil {
			return sim.Result{}, err
		}
		// Pin annotations into at most half of HBM so the migration mechanism
		// has frames to work with.
		_, pins := annotate.Select(prof.Structures, prof.Stats, int(r.cfg.FastPages())/2)
		suite, err := r.buildSuite(spec)
		if err != nil {
			return sim.Result{}, err
		}
		return sim.Run(r.cfg, suite.streams, pins, true,
			migration.NewFullCounter(r.opts.FCIntervalCycles))
	})
}
