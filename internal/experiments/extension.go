package experiments

import (
	"hmem/internal/annotate"
	"hmem/internal/core"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// ExtensionAnnotatedMigration evaluates the paper's closing suggestion
// (§7): "Supplementing such an annotation-driven static data placement
// scheme with a reliability-aware migration mechanism could potentially
// further improve the overall reliability of the system." Annotated
// structures stay pinned in HBM while the Full Counter mechanism manages
// the remaining frames dynamically. Compared against annotation-only and
// FC-only on every workload, all relative to the perf-focused static
// oracle.
func (r *Runner) ExtensionAnnotatedMigration() (*report.Table, error) {
	ordered, err := r.byMPKIDesc()
	if err != nil {
		return nil, err
	}
	t := report.New("Extension: annotations + reliability-aware migration (§7 future work)",
		"workload", "annot IPC", "annot SER", "FC IPC", "FC SER", "annot+FC IPC", "annot+FC SER")

	var aIPC, aSER, fIPC, fSER, cIPC, cSER []float64
	for _, spec := range ordered {
		perf, err := r.RunStatic(spec, core.PerfFocused{})
		if err != nil {
			return nil, err
		}
		perfSER, _, err := r.SEROf(perf)
		if err != nil {
			return nil, err
		}
		norm := func(res sim.Result) (float64, float64, error) {
			resSER, _, err := r.SEROf(res)
			if err != nil {
				return 0, 0, err
			}
			serRatio := 0.0
			if perfSER > 0 {
				serRatio = resSER / perfSER
			}
			return res.IPC / perf.IPC, serRatio, nil
		}

		annot, _, err := r.annotationRun(spec)
		if err != nil {
			return nil, err
		}
		fc, err := r.fcMigration(spec)
		if err != nil {
			return nil, err
		}
		combined, err := r.annotatedMigrationRun(spec)
		if err != nil {
			return nil, err
		}

		ai, as, err := norm(annot)
		if err != nil {
			return nil, err
		}
		fi, fs, err := norm(fc)
		if err != nil {
			return nil, err
		}
		ci, cs, err := norm(combined)
		if err != nil {
			return nil, err
		}
		aIPC, aSER = append(aIPC, ai), append(aSER, as)
		fIPC, fSER = append(fIPC, fi), append(fSER, fs)
		cIPC, cSER = append(cIPC, ci), append(cSER, cs)
		t.AddRow(spec.Name, report.X(ai), report.X(as), report.X(fi), report.X(fs),
			report.X(ci), report.X(cs))
	}
	t.AddRow("average",
		report.X(stats.GeoMean(aIPC)), report.X(stats.GeoMean(aSER)),
		report.X(stats.GeoMean(fIPC)), report.X(stats.GeoMean(fSER)),
		report.X(stats.GeoMean(cIPC)), report.X(stats.GeoMean(cSER)))
	t.Note = "IPC and SER relative to the perf-focused static oracle; the paper " +
		"conjectures the combination improves on annotation alone"
	return t, nil
}

// annotatedMigrationRun pins the annotated structures and lets the FC
// mechanism manage the remaining HBM frames.
func (r *Runner) annotatedMigrationRun(spec workload.Spec) (sim.Result, error) {
	key := spec.Name + "/annotation+fc"
	r.mu.Lock()
	if res, ok := r.dynamics[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	prof, err := r.ProfileOf(spec)
	if err != nil {
		return sim.Result{}, err
	}
	// Pin annotations into at most half of HBM so the migration mechanism
	// has frames to work with.
	_, pins := annotate.Select(prof.Suite.Structures, prof.Stats, int(r.cfg.HBM.Pages())/2)
	suite, err := r.buildSuite(spec)
	if err != nil {
		return sim.Result{}, err
	}
	res, err := sim.Run(r.cfg, suite.Streams(), pins, true,
		migration.NewFullCounter(r.opts.FCIntervalCycles))
	if err != nil {
		return sim.Result{}, err
	}
	r.mu.Lock()
	r.dynamics[key] = res
	r.mu.Unlock()
	return res, nil
}
