package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"

	"hmem/internal/core"
	"hmem/internal/faultsim"
	"hmem/internal/migration"
	"hmem/internal/sim"
	"hmem/internal/workload"
)

// This file is the runner's distribution seam. Every expensive memoized
// building block — profiling runs, static-policy runs, dynamic-mechanism
// runs, annotation runs, and fault-study Monte-Carlo shards — can be
// described by a small wire key, executed on any node holding the same
// binary and options, and merged back bit-identically (Go's encoding/json
// round-trips float64 exactly, and fault tallies are integers). A Runner
// with a Delegate installed offers each block to it first; ErrNotDelegated
// (or no delegate) falls back to local computation, so a coordinator without
// workers degrades to exactly the standalone behavior.

// BlockKind names a delegable building block.
type BlockKind string

const (
	// BlockProfile is a workload's DDR-only oracle profiling run.
	BlockProfile BlockKind = "profile"
	// BlockStatic is a static-policy placement run; Policy is the policy name.
	BlockStatic BlockKind = "static"
	// BlockDynamic is a migration run; Policy is the mechanism memo name.
	BlockDynamic BlockKind = "dynamic"
	// BlockAnnotation is the §7 annotation-pinning run.
	BlockAnnotation BlockKind = "annotation"
)

// BlockKey identifies one delegable block within a fixed option set.
type BlockKey struct {
	Kind     BlockKind `json:"kind"`
	Workload string    `json:"workload"`
	Policy   string    `json:"policy,omitempty"`
}

// BlockPayload is a block's full result as shipped between nodes. Profile
// blocks carry the workload's structure layout alongside the simulation
// result (annotation needs it); per-page stats are re-derived locally from
// the snapshot — Result.Stats() is deterministic on bit-identical inputs.
type BlockPayload struct {
	Result     sim.Result           `json:"result"`
	Structures []workload.Structure `json:"structures,omitempty"`
}

// ErrNotDelegated is the Delegate's "compute it locally" answer. It must be
// returned for any shard the delegate cannot currently place (no live
// workers, unresolvable mechanism) — any other error is treated as the
// block's deterministic outcome and propagated.
var ErrNotDelegated = errors.New("experiments: block not delegated")

// Delegate executes building blocks somewhere else — in practice the hmemd
// coordinator's cluster scheduler. Implementations must return payloads that
// are bit-identical to local execution (the service guards this with an
// options-digest check on every shard).
type Delegate interface {
	// RunBlock executes one simulation block remotely.
	RunBlock(ctx context.Context, key BlockKey) (*BlockPayload, error)
	// RunStudyShards executes a tier's fault-study Monte-Carlo shards
	// remotely, returning tallies in job order.
	RunStudyShards(ctx context.Context, tier int, jobs []faultsim.ShardJob) ([]faultsim.ShardTally, error)
}

// SetDelegate installs the distribution delegate. Install before serving
// requests; blocks already computed stay cached locally either way.
func (r *Runner) SetDelegate(d Delegate) {
	r.delegateMu.Lock()
	r.delegate = d
	r.delegateMu.Unlock()
}

func (r *Runner) getDelegate() Delegate {
	r.delegateMu.RLock()
	defer r.delegateMu.RUnlock()
	return r.delegate
}

// delegateBlock offers a block to the delegate. ok reports whether the
// payload answers the block; (false, nil) means "compute locally".
func (r *Runner) delegateBlock(ctx context.Context, key BlockKey) (*BlockPayload, bool, error) {
	d := r.getDelegate()
	if d == nil {
		return nil, false, nil
	}
	p, err := d.RunBlock(ctx, key)
	if errors.Is(err, ErrNotDelegated) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// mechanismByName rebuilds a migration mechanism (and its warm-start policy)
// from the memo name it runs under — the inverse that lets a worker execute
// a dynamic block from its wire descriptor. Covers every name the drivers
// and the facade use; unknown names report false and the block simply is not
// delegated.
func mechanismByName(mech string, opts Options) (build func() sim.Migrator, warm core.Policy, ok bool) {
	switch mech {
	case mechPerf: // also the facade's "perf-migration" policy name
		return func() sim.Migrator { return migration.NewPerf(opts.FCIntervalCycles) }, core.PerfFocused{}, true
	case mechFC, "fc-migration":
		return func() sim.Migrator { return migration.NewFullCounter(opts.FCIntervalCycles) }, core.Balanced{}, true
	case mechCC, "cc-migration":
		return func() sim.Migrator {
			ratio := int(opts.FCIntervalCycles / opts.MEAIntervalCycles)
			return migration.NewCrossCounter(opts.MEAIntervalCycles, ratio, 32)
		}, core.Balanced{}, true
	}
	if name, isAblation := strings.CutPrefix(mech, "ablation/"); isAblation {
		for _, v := range ccAblationVariants {
			if v.name == name {
				v := v
				return func() sim.Migrator { return v.build(opts) }, core.Balanced{}, true
			}
		}
		return nil, nil, false
	}
	// Figure 13's interval sweep: "<cycles>-interval" perf migration.
	if cycles, isInterval := strings.CutSuffix(mech, "-interval"); isInterval {
		iv, err := strconv.ParseInt(cycles, 10, 64)
		if err == nil && iv > 0 {
			return func() sim.Migrator { return migration.NewPerf(iv) }, core.PerfFocused{}, true
		}
	}
	return nil, nil, false
}

// ExecuteBlock runs one block locally by its wire key — the worker side of
// the distribution seam. Execution flows through the same memoized building
// blocks as a native request, so a worker's cache warms exactly as if the
// work had arrived over the normal API.
func (r *Runner) ExecuteBlock(ctx context.Context, key BlockKey) (*BlockPayload, error) {
	spec, err := workload.SpecByName(key.Workload)
	if err != nil {
		return nil, err
	}
	switch key.Kind {
	case BlockProfile:
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return nil, err
		}
		return &BlockPayload{Result: prof.Result, Structures: prof.Structures}, nil
	case BlockStatic:
		policy, ok := core.PolicyByName(key.Policy)
		if !ok {
			return nil, fmt.Errorf("experiments: unresolvable static policy %q", key.Policy)
		}
		res, err := r.RunStatic(ctx, spec, policy)
		if err != nil {
			return nil, err
		}
		return &BlockPayload{Result: res}, nil
	case BlockDynamic:
		build, warm, ok := mechanismByName(key.Policy, r.opts)
		if !ok {
			return nil, fmt.Errorf("experiments: unresolvable mechanism %q", key.Policy)
		}
		res, err := r.RunDynamic(ctx, spec, key.Policy, build, warm)
		if err != nil {
			return nil, err
		}
		return &BlockPayload{Result: res}, nil
	case BlockAnnotation:
		res, err := r.RunAnnotation(ctx, spec)
		if err != nil {
			return nil, err
		}
		return &BlockPayload{Result: res}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown block kind %q", key.Kind)
	}
}

// StudyForTier returns the fault study a tier's FIT estimate runs, or
// ok=false when the tier carries a fixed FITPerGB (no study to shard). The
// study's Workers field is left at the runner's parallelism.
func (r *Runner) StudyForTier(tier int) (study *faultsim.Study, ok bool, err error) {
	if tier < 0 || tier >= len(r.topo.Tiers) {
		return nil, false, fmt.Errorf("experiments: tier %d out of range (topology has %d)", tier, len(r.topo.Tiers))
	}
	td := r.topo.Tiers[tier]
	if td.FITPerGB > 0 {
		return nil, false, nil
	}
	s := faultsim.NewStudy(td.Org, faultsim.SridharanTransient(), td.FaultSeed)
	s.Workers = r.opts.Parallel
	return s, true, nil
}

// RunStudyShard executes one fault-study Monte-Carlo shard locally by wire
// coordinates — the worker side of fault-study distribution.
func (r *Runner) RunStudyShard(tier int, job faultsim.ShardJob) (faultsim.ShardTally, error) {
	study, ok, err := r.StudyForTier(tier)
	if err != nil {
		return faultsim.ShardTally{}, err
	}
	if !ok {
		return faultsim.ShardTally{}, fmt.Errorf("experiments: tier %d has a fixed FIT, no study to shard", tier)
	}
	if job.N <= 0 || job.K < 1 || job.K > study.MaxFaults {
		return faultsim.ShardTally{}, fmt.Errorf("experiments: invalid shard job %+v", job)
	}
	return study.RunShard(job), nil
}

// delegableStatic reports whether a static policy can be delegated: its name
// must resolve back to an identical policy on the remote side. This guards
// the one lossy case — a PerfFraction whose fraction does not survive the
// three-decimal name rendering would select different pages remotely.
func delegableStatic(policy core.Policy) bool {
	resolved, ok := core.PolicyByName(policy.Name())
	return ok && reflect.DeepEqual(resolved, policy)
}
