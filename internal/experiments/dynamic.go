package experiments

import (
	"context"

	"hmem/internal/core"
	"hmem/internal/exec"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// Mechanism names used as memoization keys.
const (
	mechPerf = "perf-migration"
	mechFC   = "fc-reliability"
	mechCC   = "cc-reliability"
)

func (r *Runner) perfMigration(ctx context.Context, spec workload.Spec) (sim.Result, error) {
	return r.RunDynamic(ctx, spec, mechPerf, func() sim.Migrator {
		return migration.NewPerf(r.opts.FCIntervalCycles)
	}, core.PerfFocused{})
}

func (r *Runner) fcMigration(ctx context.Context, spec workload.Spec) (sim.Result, error) {
	// Reliability-aware mechanisms warm-start from the balanced oracle
	// placement (§6.2: "an initial placement of the top hot and low-risk
	// pages from our static oracular placement").
	return r.RunDynamic(ctx, spec, mechFC, func() sim.Migrator {
		return migration.NewFullCounter(r.opts.FCIntervalCycles)
	}, core.Balanced{})
}

func (r *Runner) ccMigration(ctx context.Context, spec workload.Spec) (sim.Result, error) {
	ratio := int(r.opts.FCIntervalCycles / r.opts.MEAIntervalCycles)
	return r.RunDynamic(ctx, spec, mechCC, func() sim.Migrator {
		return migration.NewCrossCounter(r.opts.MEAIntervalCycles, ratio, 32)
	}, core.Balanced{})
}

// Figure12 evaluates performance-focused migration against DDR-only and the
// static oracle (paper: IPC 1.52x vs DDR-only — 5.8% under static — and
// SER 268x vs DDR-only).
func (r *Runner) Figure12(ctx context.Context) (*report.Table, error) {
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 12: performance-focused migration",
		"workload", "IPC vs DDR-only", "SER vs DDR-only", "IPC vs static perf", "pages migrated")
	type row struct {
		ipc, ser, vsStatic float64
		migrated           uint64
	}
	rows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (row, error) {
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return row{}, err
		}
		static, err := r.RunStatic(ctx, spec, core.PerfFocused{})
		if err != nil {
			return row{}, err
		}
		res, err := r.perfMigration(ctx, spec)
		if err != nil {
			return row{}, err
		}
		_, rel, err := r.SEROf(ctx, res)
		if err != nil {
			return row{}, err
		}
		return row{
			ipc:      res.IPC / prof.Result.IPC,
			ser:      rel,
			vsStatic: res.IPC / static.IPC,
			migrated: res.PagesMigrated,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var ipcs, sers, vsStatic []float64
	for i, spec := range ordered {
		v := rows[i]
		ipcs = append(ipcs, v.ipc)
		sers = append(sers, v.ser)
		vsStatic = append(vsStatic, v.vsStatic)
		t.AddRow(spec.Name, report.X(v.ipc), report.X(v.ser),
			report.X(v.vsStatic), report.Int(int(v.migrated)))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)),
		report.X(stats.GeoMean(vsStatic)), "")
	t.Note = "paper: 1.52x IPC and 268x SER vs DDR-only; 5.8% under static placement"
	return t, nil
}

// Figure13 sweeps the migration interval on three workloads of different
// memory intensity to find the best interval (paper: 100 ms).
func (r *Runner) Figure13(ctx context.Context) (*report.Table, error) {
	base := r.opts.FCIntervalCycles
	intervals := []int64{base / 8, base / 4, base / 2, base, base * 2, base * 4}
	names := []string{"libquantum", "soplex", "astar"} // high / medium / low intensity
	t := report.New("Figure 13: migration-interval sweep (perf-focused migration)",
		"interval (cycles)", "mean IPC vs DDR-only")
	// Flatten the interval × workload grid into one fan-out.
	n := len(intervals) * len(names)
	cells, err := exec.Map(ctx, r.opts.Parallel, n, func(i int) (float64, error) {
		iv := intervals[i/len(names)]
		spec, err := workload.SpecByName(names[i%len(names)])
		if err != nil {
			return 0, err
		}
		prof, err := r.ProfileOf(ctx, spec)
		if err != nil {
			return 0, err
		}
		res, err := r.RunDynamic(ctx, spec, report.Int(int(iv))+"-interval", func() sim.Migrator {
			return migration.NewPerf(iv)
		}, core.PerfFocused{})
		if err != nil {
			return 0, err
		}
		return res.IPC / prof.Result.IPC, nil
	})
	if err != nil {
		return nil, err
	}
	bestIPC, bestIv := 0.0, int64(0)
	for ii, iv := range intervals {
		mean := stats.GeoMean(cells[ii*len(names) : (ii+1)*len(names)])
		if mean > bestIPC {
			bestIPC, bestIv = mean, iv
		}
		t.AddRow(report.Int(int(iv)), report.X(mean))
	}
	t.Note = "best interval: " + report.Int(int(bestIv)) +
		" cycles (paper finds 100 ms best at full scale)"
	return t, nil
}

// dynamicTable renders a reliability-aware mechanism against the
// performance-focused migration baseline (the §6 normalization).
func (r *Runner) dynamicTable(ctx context.Context, title string, run func(context.Context, workload.Spec) (sim.Result, error), note string) (*report.Table, error) {
	ordered, err := r.byMPKIDesc(ctx)
	if err != nil {
		return nil, err
	}
	t := report.New(title,
		"workload", "IPC vs perf-migration", "SER vs perf-migration", "pages migrated")
	type row struct {
		ipc, ser float64
		migrated uint64
	}
	rows, err := mapSpecs(ctx, r, ordered, func(spec workload.Spec) (row, error) {
		perf, err := r.perfMigration(ctx, spec)
		if err != nil {
			return row{}, err
		}
		res, err := run(ctx, spec)
		if err != nil {
			return row{}, err
		}
		perfSER, _, err := r.SEROf(ctx, perf)
		if err != nil {
			return row{}, err
		}
		resSER, _, err := r.SEROf(ctx, res)
		if err != nil {
			return row{}, err
		}
		out := row{ipc: res.IPC / perf.IPC, migrated: res.PagesMigrated}
		if perfSER > 0 {
			out.ser = resSER / perfSER
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var ipcs, sers []float64
	for i, spec := range ordered {
		v := rows[i]
		ipcs = append(ipcs, v.ipc)
		sers = append(sers, v.ser)
		t.AddRow(spec.Name, report.X(v.ipc), report.X(v.ser), report.Int(int(v.migrated)))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)), "")
	t.Note = note
	return t, nil
}

// Figure14 is the Full Counter reliability-aware migration (paper: SER ÷1.8
// at 6% IPC loss vs perf-focused migration).
func (r *Runner) Figure14(ctx context.Context) (*report.Table, error) {
	return r.dynamicTable(ctx, "Figure 14: reliability-aware migration (Full Counters)",
		r.fcMigration, "paper: SER reduced 1.8x at 6% IPC cost vs perf-focused migration")
}

// Figure15 is the Cross Counter mechanism (paper: SER ÷1.5 at 4.9% IPC loss
// with 676 KB of hardware).
func (r *Runner) Figure15(ctx context.Context) (*report.Table, error) {
	return r.dynamicTable(ctx, "Figure 15: reliability-aware migration (Cross Counters)",
		r.ccMigration, "paper: SER reduced 1.5x at 4.9% IPC cost vs perf-focused migration")
}
