package experiments

import (
	"hmem/internal/core"
	"hmem/internal/migration"
	"hmem/internal/report"
	"hmem/internal/sim"
	"hmem/internal/stats"
	"hmem/internal/workload"
)

// Mechanism names used as memoization keys.
const (
	mechPerf = "perf-migration"
	mechFC   = "fc-reliability"
	mechCC   = "cc-reliability"
)

func (r *Runner) perfMigration(spec workload.Spec) (sim.Result, error) {
	return r.RunDynamic(spec, mechPerf, func() sim.Migrator {
		return migration.NewPerf(r.opts.FCIntervalCycles)
	}, core.PerfFocused{})
}

func (r *Runner) fcMigration(spec workload.Spec) (sim.Result, error) {
	// Reliability-aware mechanisms warm-start from the balanced oracle
	// placement (§6.2: "an initial placement of the top hot and low-risk
	// pages from our static oracular placement").
	return r.RunDynamic(spec, mechFC, func() sim.Migrator {
		return migration.NewFullCounter(r.opts.FCIntervalCycles)
	}, core.Balanced{})
}

func (r *Runner) ccMigration(spec workload.Spec) (sim.Result, error) {
	ratio := int(r.opts.FCIntervalCycles / r.opts.MEAIntervalCycles)
	return r.RunDynamic(spec, mechCC, func() sim.Migrator {
		return migration.NewCrossCounter(r.opts.MEAIntervalCycles, ratio, 32)
	}, core.Balanced{})
}

// Figure12 evaluates performance-focused migration against DDR-only and the
// static oracle (paper: IPC 1.52x vs DDR-only — 5.8% under static — and
// SER 268x vs DDR-only).
func (r *Runner) Figure12() (*report.Table, error) {
	ordered, err := r.byMPKIDesc()
	if err != nil {
		return nil, err
	}
	t := report.New("Figure 12: performance-focused migration",
		"workload", "IPC vs DDR-only", "SER vs DDR-only", "IPC vs static perf", "pages migrated")
	var ipcs, sers, vsStatic []float64
	for _, spec := range ordered {
		prof, err := r.ProfileOf(spec)
		if err != nil {
			return nil, err
		}
		static, err := r.RunStatic(spec, core.PerfFocused{})
		if err != nil {
			return nil, err
		}
		res, err := r.perfMigration(spec)
		if err != nil {
			return nil, err
		}
		_, rel, err := r.SEROf(res)
		if err != nil {
			return nil, err
		}
		ipcs = append(ipcs, res.IPC/prof.Result.IPC)
		sers = append(sers, rel)
		vsStatic = append(vsStatic, res.IPC/static.IPC)
		t.AddRow(spec.Name, report.X(res.IPC/prof.Result.IPC), report.X(rel),
			report.X(res.IPC/static.IPC), report.Int(int(res.PagesMigrated)))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)),
		report.X(stats.GeoMean(vsStatic)), "")
	t.Note = "paper: 1.52x IPC and 268x SER vs DDR-only; 5.8% under static placement"
	return t, nil
}

// Figure13 sweeps the migration interval on three workloads of different
// memory intensity to find the best interval (paper: 100 ms).
func (r *Runner) Figure13() (*report.Table, error) {
	base := r.opts.FCIntervalCycles
	intervals := []int64{base / 8, base / 4, base / 2, base, base * 2, base * 4}
	names := []string{"libquantum", "soplex", "astar"} // high / medium / low intensity
	t := report.New("Figure 13: migration-interval sweep (perf-focused migration)",
		"interval (cycles)", "mean IPC vs DDR-only")
	bestIPC, bestIv := 0.0, int64(0)
	for _, iv := range intervals {
		var ratios []float64
		for _, name := range names {
			spec, err := workload.SpecByName(name)
			if err != nil {
				return nil, err
			}
			prof, err := r.ProfileOf(spec)
			if err != nil {
				return nil, err
			}
			iv := iv
			res, err := r.RunDynamic(spec, report.Int(int(iv))+"-interval", func() sim.Migrator {
				return migration.NewPerf(iv)
			}, core.PerfFocused{})
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, res.IPC/prof.Result.IPC)
		}
		mean := stats.GeoMean(ratios)
		if mean > bestIPC {
			bestIPC, bestIv = mean, iv
		}
		t.AddRow(report.Int(int(iv)), report.X(mean))
	}
	t.Note = "best interval: " + report.Int(int(bestIv)) +
		" cycles (paper finds 100 ms best at full scale)"
	return t, nil
}

// dynamicTable renders a reliability-aware mechanism against the
// performance-focused migration baseline (the §6 normalization).
func (r *Runner) dynamicTable(title string, run func(workload.Spec) (sim.Result, error), note string) (*report.Table, error) {
	ordered, err := r.byMPKIDesc()
	if err != nil {
		return nil, err
	}
	t := report.New(title,
		"workload", "IPC vs perf-migration", "SER vs perf-migration", "pages migrated")
	var ipcs, sers []float64
	for _, spec := range ordered {
		perf, err := r.perfMigration(spec)
		if err != nil {
			return nil, err
		}
		res, err := run(spec)
		if err != nil {
			return nil, err
		}
		perfSER, _, err := r.SEROf(perf)
		if err != nil {
			return nil, err
		}
		resSER, _, err := r.SEROf(res)
		if err != nil {
			return nil, err
		}
		ipcRatio := res.IPC / perf.IPC
		serRatio := 0.0
		if perfSER > 0 {
			serRatio = resSER / perfSER
		}
		ipcs = append(ipcs, ipcRatio)
		sers = append(sers, serRatio)
		t.AddRow(spec.Name, report.X(ipcRatio), report.X(serRatio), report.Int(int(res.PagesMigrated)))
	}
	t.AddRow("average", report.X(stats.GeoMean(ipcs)), report.X(stats.GeoMean(sers)), "")
	t.Note = note
	return t, nil
}

// Figure14 is the Full Counter reliability-aware migration (paper: SER ÷1.8
// at 6% IPC loss vs perf-focused migration).
func (r *Runner) Figure14() (*report.Table, error) {
	return r.dynamicTable("Figure 14: reliability-aware migration (Full Counters)",
		r.fcMigration, "paper: SER reduced 1.8x at 6% IPC cost vs perf-focused migration")
}

// Figure15 is the Cross Counter mechanism (paper: SER ÷1.5 at 4.9% IPC loss
// with 676 KB of hardware).
func (r *Runner) Figure15() (*report.Table, error) {
	return r.dynamicTable("Figure 15: reliability-aware migration (Cross Counters)",
		r.ccMigration, "paper: SER reduced 1.5x at 4.9% IPC cost vs perf-focused migration")
}
