package faultsim

import (
	"fmt"
	"math"

	"hmem/internal/ecc"
	"hmem/internal/xrand"
)

// This file extends the reproduction beyond the paper's §3.2 configuration
// (transient faults only) to FaultSim's full scope: permanent faults and
// memory scrubbing. The paper's aging-focused companion work (Gupta et al.,
// MEMSYS'16 [16]) studies exactly this regime; the experiments here keep the
// paper's transient-only defaults and expose the extension through
// ScrubStudy.

// SridharanPermanent returns the per-chip permanent-fault FIT rates from
// the SC'12 field study. Permanent faults persist from onset to the end of
// the horizon; ECC must correct them continuously.
func SridharanPermanent() Rates {
	return Rates{
		Bit:    18.6,
		Word:   0.8,
		Column: 5.6,
		Row:    8.2,
		Bank:   10.0,
		Rank:   0.3,
	}
}

// ScrubStudy models fault accumulation with both fault classes and an
// optional scrubbing interval: scrubbing rewrites correctable data
// periodically, so a *transient* fault only coexists with another fault if
// their lifetimes overlap within a scrub window; permanent faults are never
// scrubbed away.
type ScrubStudy struct {
	Org       Organization
	Transient Rates
	Permanent Rates
	// HorizonHours is the accumulation window.
	HorizonHours float64
	// ScrubIntervalHours is the scrub period; 0 disables scrubbing (a
	// transient fault then persists to the end of the horizon).
	ScrubIntervalHours float64
	MaxFaults          int
	Seed               uint64
}

// NewScrubStudy returns a study with the same defaults as NewStudy plus a
// daily scrub.
func NewScrubStudy(org Organization, seed uint64) *ScrubStudy {
	return &ScrubStudy{
		Org:                org,
		Transient:          SridharanTransient(),
		Permanent:          SridharanPermanent(),
		HorizonHours:       5 * 8760,
		ScrubIntervalHours: 24,
		MaxFaults:          4,
		Seed:               seed,
	}
}

// timedFault is a fault with an onset time and lifetime semantics.
type timedFault struct {
	fault
	onset     float64 // hours since horizon start
	permanent bool
}

// aliveUntil returns when the fault stops mattering.
func (s *ScrubStudy) aliveUntil(f timedFault) float64 {
	if f.permanent {
		return s.HorizonHours
	}
	if s.ScrubIntervalHours <= 0 {
		return s.HorizonHours
	}
	// Scrubbed away at the end of its scrub window.
	k := math.Floor(f.onset/s.ScrubIntervalHours) + 1
	return k * s.ScrubIntervalHours
}

// coexist reports whether two faults are simultaneously present.
func (s *ScrubStudy) coexist(a, b timedFault) bool {
	return a.onset < s.aliveUntil(b) && b.onset < s.aliveUntil(a)
}

// Run executes the study.
func (s *ScrubStudy) Run(trials int) (Result, error) {
	if err := s.Org.Validate(); err != nil {
		return Result{}, err
	}
	if trials <= 0 {
		return Result{}, fmt.Errorf("faultsim: trials must be positive, got %d", trials)
	}
	if s.HorizonHours <= 0 || s.MaxFaults < 1 {
		return Result{}, fmt.Errorf("faultsim: horizon and MaxFaults must be positive")
	}
	if s.ScrubIntervalHours < 0 {
		return Result{}, fmt.Errorf("faultsim: negative scrub interval")
	}
	rng := xrand.New(s.Seed)

	perChipT := s.Transient.Total() * s.Org.RawFITMultiplier
	perChipP := s.Permanent.Total() * s.Org.RawFITMultiplier
	lambda := (perChipT + perChipP) * 1e-9 * s.HorizonHours * float64(s.Org.Chips)
	lambdaRank := (s.Transient.Rank + s.Permanent.Rank) * s.Org.RawFITMultiplier * 1e-9 *
		s.HorizonHours * float64(s.Org.Chips)

	res := Result{
		Org:                 s.Org,
		PUncGivenK:          make([]float64, s.MaxFaults+1),
		LambdaFaults:        lambda,
		SingleFaultOutcomes: make(map[Mode]map[ecc.Outcome]int),
		Trials:              trials,
	}
	for m := ModeBit; m < ModeRank; m++ {
		res.SingleFaultOutcomes[m] = make(map[ecc.Outcome]int)
	}

	pTransient := perChipT / (perChipT + perChipP)
	for k := 1; k <= s.MaxFaults; k++ {
		unc := 0
		for t := 0; t < trials; t++ {
			faults := s.sample(rng, k, pTransient)
			if s.uncorrectable(faults) {
				unc++
			}
			if k == 1 {
				out := singleFaultOutcome(s.Org.Scheme, faults[0].mode)
				res.SingleFaultOutcomes[faults[0].mode][out]++
			}
		}
		res.PUncGivenK[k] = float64(unc) / float64(trials)
	}

	pUnc := 0.0
	tailMass := 1.0
	for k := 0; k <= s.MaxFaults; k++ {
		w := poissonPMF(lambda, k)
		tailMass -= w
		pUnc += w * res.PUncGivenK[k]
	}
	if tailMass > 0 {
		pUnc += tailMass * res.PUncGivenK[s.MaxFaults]
	}
	pRank := 1 - math.Exp(-lambdaRank)
	res.PUnc = 1 - (1-pUnc)*(1-pRank)

	ratePerHour := -math.Log(1-res.PUnc) / s.HorizonHours
	res.UncFITPerRank = ratePerHour * 1e9
	res.UncFITPerGB = res.UncFITPerRank / s.Org.DataGB()
	return res, nil
}

// sample draws k timed faults; mode within a class is drawn from that
// class's rates.
func (s *ScrubStudy) sample(rng *xrand.RNG, k int, pTransient float64) []timedFault {
	g := s.Org.Geom
	out := make([]timedFault, k)
	for i := range out {
		permanent := !rng.Bool(pTransient)
		rates := s.Transient
		if permanent {
			rates = s.Permanent
		}
		u := rng.Float64() * rates.Total()
		var m Mode
		for m = ModeBit; m < ModeRank; m++ {
			u -= rates.of(m)
			if u < 0 {
				break
			}
		}
		if m >= ModeRank {
			m = ModeBank
		}
		out[i] = timedFault{
			fault: fault{
				chip: rng.Intn(s.Org.Chips),
				mode: m,
				bank: rng.Intn(g.Banks),
				row:  rng.Intn(g.Rows),
				col:  rng.Intn(g.Cols),
			},
			onset:     rng.Float64() * s.HorizonHours,
			permanent: permanent,
		}
	}
	return out
}

// uncorrectable adjudicates a timed fault set: footprints must intersect in
// an ECC word AND the faults must coexist in time.
func (s *ScrubStudy) uncorrectable(faults []timedFault) bool {
	switch s.Org.Scheme {
	case ecc.None:
		return len(faults) > 0
	case ecc.SECDED:
		for _, f := range faults {
			if multiBitPerWord(f.mode) {
				return true
			}
		}
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				if faults[i].chip == faults[j].chip &&
					intersects(faults[i].fault, faults[j].fault, s.Org.Geom) &&
					s.coexist(faults[i], faults[j]) {
					return true
				}
			}
		}
		return false
	case ecc.ChipKillSSC:
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				if faults[i].chip != faults[j].chip &&
					intersects(faults[i].fault, faults[j].fault, s.Org.Geom) &&
					s.coexist(faults[i], faults[j]) {
					return true
				}
			}
		}
		return false
	default:
		return true
	}
}
