package faultsim

import (
	"math"
	"testing"

	"hmem/internal/ecc"
)

func TestOrganizationValidate(t *testing.T) {
	for _, org := range []Organization{DDR3ChipKill(), HBMSecDed()} {
		if err := org.Validate(); err != nil {
			t.Errorf("%s rejected: %v", org.Name, err)
		}
	}
	bad := DDR3ChipKill()
	bad.Chips = 0
	if bad.Validate() == nil {
		t.Error("zero chips accepted")
	}
	bad = DDR3ChipKill()
	bad.Geom.Rows = 0
	if bad.Validate() == nil {
		t.Error("zero rows accepted")
	}
	bad = DDR3ChipKill()
	bad.Geom.GBPerChip = 0
	if bad.Validate() == nil {
		t.Error("zero capacity accepted")
	}
	bad = DDR3ChipKill()
	bad.RawFITMultiplier = 0
	if bad.Validate() == nil {
		t.Error("zero multiplier accepted")
	}
}

func TestDataGB(t *testing.T) {
	ddr := DDR3ChipKill()
	if got := ddr.DataGB(); math.Abs(got-8.0) > 1e-9 {
		t.Errorf("DDR data capacity = %v GB, want 8 (16 data chips x 0.5)", got)
	}
	hbm := HBMSecDed()
	if got := hbm.DataGB(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("HBM data capacity = %v GB, want 1", got)
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		ModeBit: "bit", ModeWord: "word", ModeColumn: "column",
		ModeRow: "row", ModeBank: "bank", ModeRank: "rank", Mode(99): "mode(?)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("mode %d: %q", m, m.String())
		}
	}
}

func TestRatesAccessors(t *testing.T) {
	r := SridharanTransient()
	sum := r.Bit + r.Word + r.Column + r.Row + r.Bank
	if math.Abs(r.Total()-sum) > 1e-12 {
		t.Fatalf("Total = %v, want %v", r.Total(), sum)
	}
	for m := ModeBit; m < numModes; m++ {
		if r.of(m) < 0 {
			t.Fatalf("negative rate for %v", m)
		}
	}
	if r.of(numModes) != 0 {
		t.Fatal("unknown mode rate must be 0")
	}
	// Bit faults dominate transient FITs in the field study.
	if r.Bit < r.Word || r.Bit < r.Bank {
		t.Fatal("bit rate should dominate")
	}
}

func TestIntersects(t *testing.T) {
	g := Geometry{Banks: 8, Rows: 64, Cols: 64}
	bit := func(b, r, c int) fault { return fault{mode: ModeBit, bank: b, row: r, col: c} }
	cases := []struct {
		name string
		a, b fault
		want bool
	}{
		{"same word", bit(1, 2, 3), bit(1, 2, 3), true},
		{"different bank", bit(1, 2, 3), bit(2, 2, 3), false},
		{"different row", bit(1, 2, 3), bit(1, 3, 3), false},
		{"different col", bit(1, 2, 3), bit(1, 2, 4), false},
		{"row fault spans cols", fault{mode: ModeRow, bank: 1, row: 2, col: 9}, bit(1, 2, 3), true},
		{"column fault spans rows", fault{mode: ModeColumn, bank: 1, row: 9, col: 3}, bit(1, 5, 3), true},
		{"bank fault spans all", fault{mode: ModeBank, bank: 1, row: 9, col: 9}, bit(1, 5, 3), true},
		{"bank fault other bank", fault{mode: ModeBank, bank: 2}, bit(1, 5, 3), false},
		{"row vs column cross", fault{mode: ModeRow, bank: 1, row: 7}, fault{mode: ModeColumn, bank: 1, col: 9}, true},
		{"two rows different rows", fault{mode: ModeRow, bank: 1, row: 7}, fault{mode: ModeRow, bank: 1, row: 8}, false},
	}
	for _, c := range cases {
		if got := intersects(c.a, c.b, g); got != c.want {
			t.Errorf("%s: intersects = %v, want %v", c.name, got, c.want)
		}
		if got := intersects(c.b, c.a, g); got != c.want {
			t.Errorf("%s (swapped): intersects = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSingleFaultAdjudication(t *testing.T) {
	// ChipKill corrects every single-chip fault mode.
	s := NewStudy(DDR3ChipKill(), SridharanTransient(), 1)
	for m := ModeBit; m < ModeRank; m++ {
		if s.uncorrectable([]fault{{chip: 3, mode: m, bank: 1, row: 2, col: 3}}) {
			t.Errorf("chipkill failed to correct single %v fault", m)
		}
	}
	// SEC-DED corrects bit and column faults but not word/row/bank.
	h := NewStudy(HBMSecDed(), SridharanTransient(), 1)
	correctable := map[Mode]bool{ModeBit: true, ModeColumn: true}
	for m := ModeBit; m < ModeRank; m++ {
		got := !h.uncorrectable([]fault{{chip: 0, mode: m, bank: 1, row: 2, col: 3}})
		if got != correctable[m] {
			t.Errorf("secded single %v fault: correctable=%v, want %v", m, got, correctable[m])
		}
	}
}

func TestDoubleFaultAdjudication(t *testing.T) {
	ck := NewStudy(DDR3ChipKill(), SridharanTransient(), 1)
	// Two chips, same bank, one is a bank fault: word has two bad symbols.
	bad := []fault{
		{chip: 0, mode: ModeBank, bank: 2},
		{chip: 5, mode: ModeBit, bank: 2, row: 10, col: 20},
	}
	if !ck.uncorrectable(bad) {
		t.Error("cross-chip intersecting faults must be uncorrectable under chipkill")
	}
	// Same two faults on the same chip: still one symbol.
	sameChip := []fault{
		{chip: 0, mode: ModeBank, bank: 2},
		{chip: 0, mode: ModeBit, bank: 2, row: 10, col: 20},
	}
	if ck.uncorrectable(sameChip) {
		t.Error("same-chip faults must stay correctable under chipkill")
	}
	// Different banks: no shared word.
	disjoint := []fault{
		{chip: 0, mode: ModeBank, bank: 2},
		{chip: 5, mode: ModeBit, bank: 3, row: 10, col: 20},
	}
	if ck.uncorrectable(disjoint) {
		t.Error("non-intersecting faults must be correctable")
	}

	// SEC-DED: two bit faults in the same word of the same chip.
	sd := NewStudy(HBMSecDed(), SridharanTransient(), 1)
	twoBits := []fault{
		{chip: 1, mode: ModeBit, bank: 0, row: 5, col: 6},
		{chip: 1, mode: ModeBit, bank: 0, row: 5, col: 6},
	}
	if !sd.uncorrectable(twoBits) {
		t.Error("two bits in one word must defeat SEC-DED")
	}
	// Different chips never share a word in the die-stacked organization.
	twoChips := []fault{
		{chip: 1, mode: ModeBit, bank: 0, row: 5, col: 6},
		{chip: 2, mode: ModeBit, bank: 0, row: 5, col: 6},
	}
	if sd.uncorrectable(twoChips) {
		t.Error("bits on different dies must not combine under SEC-DED")
	}
}

func TestSingleFaultOutcomeMatchesCodecBehaviour(t *testing.T) {
	// The fast adjudication must agree with the real codecs for
	// representative patterns: one bit for SEC-DED bit faults; a full
	// symbol for chipkill chip faults; many bits in a word for row faults.
	if singleFaultOutcome(ecc.SECDED, ModeBit) != ecc.Corrected {
		t.Error("secded bit fault should be corrected")
	}
	if singleFaultOutcome(ecc.SECDED, ModeRow) != ecc.DetectedUncorrectable {
		t.Error("secded row fault should be uncorrectable")
	}
	if singleFaultOutcome(ecc.ChipKillSSC, ModeBank) != ecc.Corrected {
		t.Error("chipkill bank fault (one chip) should be corrected")
	}
	if singleFaultOutcome(ecc.None, ModeBit) != ecc.DetectedUncorrectable {
		t.Error("unprotected memory cannot correct anything")
	}
}

func TestPoissonPMF(t *testing.T) {
	// Sums to ~1 and matches known values.
	lambda := 2.5
	sum := 0.0
	for k := 0; k < 50; k++ {
		sum += poissonPMF(lambda, k)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", sum)
	}
	if got := poissonPMF(lambda, 0); math.Abs(got-math.Exp(-2.5)) > 1e-12 {
		t.Fatalf("P(0) = %v", got)
	}
	if got := poissonPMF(0, 0); got != 1 {
		t.Fatalf("P(0;0) = %v", got)
	}
	if got := poissonPMF(0, 3); got != 0 {
		t.Fatalf("P(3;0) = %v", got)
	}
}

func TestStudyRunValidation(t *testing.T) {
	s := NewStudy(DDR3ChipKill(), SridharanTransient(), 1)
	if _, err := s.Run(0); err == nil {
		t.Error("zero trials accepted")
	}
	s.HorizonHours = 0
	if _, err := s.Run(100); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := NewStudy(Organization{}, SridharanTransient(), 1)
	if _, err := bad.Run(100); err == nil {
		t.Error("invalid organization accepted")
	}
}

func TestStudyDeterminism(t *testing.T) {
	run := func() Result {
		r, err := NewStudy(HBMSecDed(), SridharanTransient(), 42).Run(2000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.PUnc != b.PUnc || a.UncFITPerGB != b.UncFITPerGB {
		t.Fatal("study is not deterministic")
	}
}

// TestStudyWorkerCountInvariance: the Monte-Carlo estimate is a pure
// function of (seed, trials) — the worker count sharding the trials must
// never change a single bit of the result. 5000 trials spans multiple
// shards per stratum, including a partial tail shard.
func TestStudyWorkerCountInvariance(t *testing.T) {
	run := func(workers int) Result {
		s := NewStudy(DDR3ChipKill(), SridharanTransient(), 42)
		s.Workers = workers
		r, err := s.Run(5000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ref := run(1)
	for _, workers := range []int{2, 4, 7, 0} {
		got := run(workers)
		if got.PUnc != ref.PUnc || got.UncFITPerGB != ref.UncFITPerGB ||
			got.UncFITPerRank != ref.UncFITPerRank {
			t.Fatalf("workers=%d diverged: PUnc %v vs %v", workers, got.PUnc, ref.PUnc)
		}
		for k := range ref.PUncGivenK {
			if got.PUncGivenK[k] != ref.PUncGivenK[k] {
				t.Fatalf("workers=%d: P(unc|%d) = %v, want %v",
					workers, k, got.PUncGivenK[k], ref.PUncGivenK[k])
			}
		}
		for m, outs := range ref.SingleFaultOutcomes {
			for o, n := range outs {
				if got.SingleFaultOutcomes[m][o] != n {
					t.Fatalf("workers=%d: outcome tally diverged for %v/%v", workers, m, o)
				}
			}
		}
	}
}

func TestHBMSingleFaultUncorrectableFraction(t *testing.T) {
	res, err := NewStudy(HBMSecDed(), SridharanTransient(), 7).Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	// P(unc | 1 fault) should approximate (word+row+bank)/total = 2.4/18.
	want := (1.4 + 0.2 + 0.8) / 18.0
	if math.Abs(res.PUncGivenK[1]-want) > 0.01 {
		t.Fatalf("P(unc|1) = %v, want ~%v", res.PUncGivenK[1], want)
	}
	// Outcome bookkeeping exists for every mode and only uses the expected
	// outcome classes.
	totalSingles := 0
	for m, outs := range res.SingleFaultOutcomes {
		for o, n := range outs {
			if o != ecc.Corrected && o != ecc.DetectedUncorrectable {
				t.Errorf("mode %v recorded unexpected outcome %v", m, o)
			}
			totalSingles += n
		}
	}
	if totalSingles != res.Trials {
		t.Fatalf("single-fault tally = %d, want %d", totalSingles, res.Trials)
	}
}

func TestChipKillMultiFaultIsRareButReal(t *testing.T) {
	res, err := NewStudy(DDR3ChipKill(), SridharanTransient(), 11).Run(50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PUncGivenK[1] != 0 {
		t.Fatalf("chipkill must correct all single faults, got %v", res.PUncGivenK[1])
	}
	if res.PUncGivenK[2] <= 0 {
		t.Fatal("double-fault stratum should show some uncorrectable patterns")
	}
	if res.PUncGivenK[2] > 0.05 {
		t.Fatalf("P(unc|2) = %v implausibly high", res.PUncGivenK[2])
	}
	// Monotone-ish: more faults, more risk (allow sampling noise headroom).
	if res.PUncGivenK[4] < res.PUncGivenK[2]/2 {
		t.Fatalf("P(unc|4)=%v much below P(unc|2)=%v", res.PUncGivenK[4], res.PUncGivenK[2])
	}
}

func TestTierFITRatioMatchesPaperRegime(t *testing.T) {
	fits, err := DefaultTierFITs(20000)
	if err != nil {
		t.Fatal(err)
	}
	if fits.DDRPerGB <= 0 || fits.HBMPerGB <= 0 {
		t.Fatalf("non-positive FITs: %+v", fits)
	}
	ratio := fits.Ratio()
	// The HBM tier must be dramatically less reliable per GB — the regime
	// that produces the paper's ~287x SER blowup for perf-focused
	// placement once AVF weighting is applied (Fig. 5).
	if ratio < 100 || ratio > 2000 {
		t.Fatalf("HBM/DDR unc-FIT ratio = %.0f, want O(100..1000)", ratio)
	}
}

func TestTierFITsRatioInfiniteWhenDDRZero(t *testing.T) {
	f := TierFITs{DDRPerGB: 0, HBMPerGB: 5}
	if !math.IsInf(f.Ratio(), 1) {
		t.Fatal("expected +Inf ratio")
	}
}

func BenchmarkStudyHBM(b *testing.B) {
	s := NewStudy(HBMSecDed(), SridharanTransient(), 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(2000); err != nil {
			b.Fatal(err)
		}
	}
}
