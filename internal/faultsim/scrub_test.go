package faultsim

import (
	"testing"
)

func TestPermanentRatesPlausible(t *testing.T) {
	p := SridharanPermanent()
	if p.Total() <= 0 {
		t.Fatal("empty permanent rates")
	}
	// The field study: permanent multi-bit modes (row/bank/column) carry a
	// much larger share than for transients.
	tr := SridharanTransient()
	permMulti := p.Row + p.Bank + p.Column
	transMulti := tr.Row + tr.Bank + tr.Column
	if permMulti/p.Total() <= transMulti/tr.Total() {
		t.Fatal("permanent faults should skew toward multi-bit modes")
	}
}

func TestScrubLifetimes(t *testing.T) {
	s := NewScrubStudy(DDR3ChipKill(), 1)
	s.HorizonHours = 100
	s.ScrubIntervalHours = 10

	trans := timedFault{onset: 12}                // alive [12, 20)
	trans2 := timedFault{onset: 18}               // alive [18, 20)
	trans3 := timedFault{onset: 25}               // alive [25, 30)
	perm := timedFault{onset: 5, permanent: true} // alive [5, 100)

	if got := s.aliveUntil(trans); got != 20 {
		t.Fatalf("aliveUntil = %v, want 20 (end of scrub window)", got)
	}
	if got := s.aliveUntil(perm); got != 100 {
		t.Fatalf("permanent aliveUntil = %v, want horizon", got)
	}
	if !s.coexist(trans, trans2) {
		t.Fatal("same-window transients must coexist")
	}
	if s.coexist(trans, trans3) {
		t.Fatal("different-window transients must not coexist")
	}
	if !s.coexist(perm, trans3) {
		t.Fatal("permanent fault coexists with later transient")
	}

	// Without scrubbing, transients persist to the horizon.
	s.ScrubIntervalHours = 0
	if got := s.aliveUntil(trans); got != 100 {
		t.Fatalf("unscrubbed aliveUntil = %v, want horizon", got)
	}
	if !s.coexist(trans, trans3) {
		t.Fatal("unscrubbed transients must coexist")
	}
}

func TestScrubStudyValidation(t *testing.T) {
	s := NewScrubStudy(DDR3ChipKill(), 1)
	if _, err := s.Run(0); err == nil {
		t.Error("zero trials accepted")
	}
	s.ScrubIntervalHours = -1
	if _, err := s.Run(100); err == nil {
		t.Error("negative scrub interval accepted")
	}
	bad := NewScrubStudy(Organization{}, 1)
	if _, err := bad.Run(100); err == nil {
		t.Error("invalid organization accepted")
	}
}

func TestScrubbingReducesChipkillRisk(t *testing.T) {
	// ChipKill only fails on coexisting multi-chip faults; scrubbing
	// shortens transient lifetimes, so P(unc | k>=2) must drop.
	run := func(scrubHours float64) Result {
		s := NewScrubStudy(DDR3ChipKill(), 0xBEEF)
		s.ScrubIntervalHours = scrubHours
		res, err := s.Run(60000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	noScrub := run(0)
	daily := run(24)
	if noScrub.PUncGivenK[2] == 0 {
		t.Skip("no double-fault hits at this trial count")
	}
	if daily.PUncGivenK[2] >= noScrub.PUncGivenK[2] {
		t.Fatalf("scrubbing did not reduce double-fault risk: %v vs %v",
			daily.PUncGivenK[2], noScrub.PUncGivenK[2])
	}
}

func TestPermanentFaultsRaiseSecDedRisk(t *testing.T) {
	// The SEC-DED organization fails on any multi-bit-per-word mode;
	// permanent faults skew toward those, so the combined study must show
	// higher single-fault risk than the transient-only study.
	trans, err := NewStudy(HBMSecDed(), SridharanTransient(), 3).Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := NewScrubStudy(HBMSecDed(), 3).Run(20000)
	if err != nil {
		t.Fatal(err)
	}
	if comb.PUncGivenK[1] <= trans.PUncGivenK[1] {
		t.Fatalf("permanent modes should raise P(unc|1): %v vs %v",
			comb.PUncGivenK[1], trans.PUncGivenK[1])
	}
	if comb.UncFITPerGB <= trans.UncFITPerGB {
		t.Fatalf("combined FIT %v should exceed transient-only %v",
			comb.UncFITPerGB, trans.UncFITPerGB)
	}
}

func TestScrubStudyDeterminism(t *testing.T) {
	run := func() Result {
		r, err := NewScrubStudy(DDR3ChipKill(), 99).Run(5000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.PUnc != b.PUnc {
		t.Fatal("scrub study not deterministic")
	}
}
