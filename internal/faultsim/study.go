package faultsim

import (
	"context"
	"fmt"
	"math"

	"hmem/internal/ecc"
	"hmem/internal/exec"
	"hmem/internal/obs"
	"hmem/internal/xrand"
)

// Study runs Monte-Carlo fault-accumulation experiments for one rank
// organization over an accumulation horizon.
type Study struct {
	Org   Organization
	Rates Rates
	// HorizonHours is the fault-accumulation window (FaultSim-style studies
	// use multi-year horizons so multi-fault intersections are represented).
	HorizonHours float64
	// MaxFaults caps the stratification depth; Poisson mass beyond it is
	// folded into the deepest stratum.
	MaxFaults int
	// Seed drives the deterministic RNG.
	Seed uint64
	// Workers bounds the goroutines sharding the Monte-Carlo trials
	// (non-positive = one per CPU). The result is a pure function of
	// (Seed, trials): trials are decomposed into fixed-size shards whose
	// RNG streams are derived from (Seed, stratum, shard), so any worker
	// count produces bit-identical estimates.
	Workers int
}

// shardTrials is the fixed Monte-Carlo shard size. It determines the
// trial-to-RNG-stream assignment and therefore must never depend on the
// worker count; changing it changes the (still deterministic) estimates.
const shardTrials = 2048

// NewStudy returns a study with the defaults used throughout the paper
// reproduction: a 5-year horizon and stratification up to 4 faults.
func NewStudy(org Organization, rates Rates, seed uint64) *Study {
	return &Study{
		Org:          org,
		Rates:        rates,
		HorizonHours: 5 * 8760,
		MaxFaults:    4,
		Seed:         seed,
	}
}

// Result summarizes a study.
type Result struct {
	Org Organization
	// PUnc is the probability of at least one uncorrectable error in the
	// horizon for the whole rank.
	PUnc float64
	// PUncGivenK[k] is the Monte-Carlo estimate of P(uncorrectable | k
	// faults accumulated), for k = 0..MaxFaults.
	PUncGivenK []float64
	// LambdaFaults is the expected fault count per rank-horizon (non-rank
	// modes).
	LambdaFaults float64
	// UncFITPerRank is the uncorrectable-error rate in FIT for the rank.
	UncFITPerRank float64
	// UncFITPerGB normalizes by the rank's data capacity — the figure SER
	// computations consume.
	UncFITPerGB float64
	// SingleFaultOutcomes tallies the decode outcome of every single-fault
	// trial by mode, mirroring the paper's "recorded as detected,
	// corrected, or uncorrected" bookkeeping.
	SingleFaultOutcomes map[Mode]map[ecc.Outcome]int
	// Trials is the Monte-Carlo trial count per stratum.
	Trials int
}

// Run executes the study with the given trials per stratum.
func (s *Study) Run(trials int) (Result, error) {
	return s.RunCtx(context.Background(), trials)
}

// ShardJob names one Monte-Carlo shard: stratum K (accumulated fault count),
// shard index within the stratum, and N trials. A shard's tally is a pure
// function of (Study.Seed, K, Shard) — the RNG stream is derived from exactly
// those — so any node that agrees on the study parameters reproduces it
// bit-identically. This is the unit of distributed work for cluster runs.
type ShardJob struct {
	K     int `json:"k"`
	Shard int `json:"shard"`
	N     int `json:"n"`
}

// ShardTally is one shard's integer tallies: uncorrectable-trial count plus,
// for single-fault strata, the per-mode decode outcomes. Integer tallies
// merge exactly (no float order sensitivity), which is what makes sharded
// cluster execution byte-identical to a local run.
type ShardTally struct {
	Unc      int                          `json:"unc"`
	Outcomes map[Mode]map[ecc.Outcome]int `json:"outcomes,omitempty"`
}

// Shards decomposes a trial budget into the study's fixed shard plan, in the
// canonical order tallies must be merged in. The plan depends only on
// (MaxFaults, trials) — never on the worker count.
func (s *Study) Shards(trials int) []ShardJob {
	var jobs []ShardJob
	for k := 1; k <= s.MaxFaults; k++ {
		for off, shard := 0, 0; off < trials; off, shard = off+shardTrials, shard+1 {
			n := shardTrials
			if trials-off < n {
				n = trials - off
			}
			jobs = append(jobs, ShardJob{K: k, Shard: shard, N: n})
		}
	}
	return jobs
}

// RunShard executes one shard's Monte-Carlo trials. Safe for concurrent use;
// the tally is a pure function of (Seed, job).
func (s *Study) RunShard(j ShardJob) ShardTally {
	rng := xrand.New(xrand.Derive(s.Seed, uint64(j.K), uint64(j.Shard)))
	var t ShardTally
	if j.K == 1 {
		t.Outcomes = make(map[Mode]map[ecc.Outcome]int)
		for m := ModeBit; m < ModeRank; m++ {
			t.Outcomes[m] = make(map[ecc.Outcome]int)
		}
	}
	for n := 0; n < j.N; n++ {
		faults := s.sampleFaults(rng, j.K)
		if s.uncorrectable(faults) {
			t.Unc++
		}
		if j.K == 1 {
			out := singleFaultOutcome(s.Org.Scheme, faults[0].mode)
			t.Outcomes[faults[0].mode][out]++
		}
	}
	return t
}

// validate checks the study parameters shared by RunCtx and Combine.
func (s *Study) validate(trials int) error {
	if err := s.Org.Validate(); err != nil {
		return err
	}
	if trials <= 0 {
		return fmt.Errorf("faultsim: trials must be positive, got %d", trials)
	}
	if s.HorizonHours <= 0 || s.MaxFaults < 1 {
		return fmt.Errorf("faultsim: horizon and MaxFaults must be positive")
	}
	return nil
}

// Combine merges shard tallies (tallies[i] answering jobs[i]) in job order
// and finishes the stratified estimate: Poisson-weighted combination, tail
// folding, the rank-mode term, and the horizon-to-FIT conversion. jobs must
// be exactly Shards(trials); mismatched lengths are an error so a dropped
// shard can never silently skew the estimate.
func (s *Study) Combine(jobs []ShardJob, tallies []ShardTally, trials int) (Result, error) {
	if err := s.validate(trials); err != nil {
		return Result{}, err
	}
	if len(jobs) != len(tallies) {
		return Result{}, fmt.Errorf("faultsim: %d shard jobs but %d tallies", len(jobs), len(tallies))
	}

	// Expected fault counts in the horizon.
	perChipFIT := s.Rates.Total() * s.Org.RawFITMultiplier
	lambda := perChipFIT * 1e-9 * s.HorizonHours * float64(s.Org.Chips)
	lambdaRank := s.Rates.Rank * s.Org.RawFITMultiplier * 1e-9 * s.HorizonHours * float64(s.Org.Chips)

	res := Result{
		Org:                 s.Org,
		PUncGivenK:          make([]float64, s.MaxFaults+1),
		LambdaFaults:        lambda,
		SingleFaultOutcomes: make(map[Mode]map[ecc.Outcome]int),
		Trials:              trials,
	}
	for m := ModeBit; m < ModeRank; m++ {
		res.SingleFaultOutcomes[m] = make(map[ecc.Outcome]int)
	}
	uncByK := make([]int, s.MaxFaults+1)
	for i, t := range tallies {
		if jobs[i].K < 1 || jobs[i].K > s.MaxFaults {
			return Result{}, fmt.Errorf("faultsim: shard stratum %d out of range [1,%d]", jobs[i].K, s.MaxFaults)
		}
		uncByK[jobs[i].K] += t.Unc
		for m, outs := range t.Outcomes {
			for o, n := range outs {
				res.SingleFaultOutcomes[m][o] += n
			}
		}
	}
	for k := 1; k <= s.MaxFaults; k++ {
		res.PUncGivenK[k] = float64(uncByK[k]) / float64(trials)
	}

	// Combine with Poisson weights; the tail beyond MaxFaults reuses the
	// deepest stratum's estimate (conservative: deeper strata only get
	// worse, but their mass is negligible at field rates).
	pUnc := 0.0
	tailMass := 1.0 // P(N > MaxFaults) accumulator
	for k := 0; k <= s.MaxFaults; k++ {
		w := poissonPMF(lambda, k)
		tailMass -= w
		pUnc += w * res.PUncGivenK[k]
	}
	if tailMass > 0 {
		pUnc += tailMass * res.PUncGivenK[s.MaxFaults]
	}
	// Rank-level (beyond-ECC) faults are uncorrectable by definition.
	pRank := 1 - math.Exp(-lambdaRank)
	res.PUnc = 1 - (1-pUnc)*(1-pRank)

	// Convert the horizon probability to a rate (FIT).
	ratePerHour := -math.Log(1-res.PUnc) / s.HorizonHours
	res.UncFITPerRank = ratePerHour * 1e9
	res.UncFITPerGB = res.UncFITPerRank / s.Org.DataGB()
	return res, nil
}

// RunCtx is Run with observability: the whole study runs under a
// "faultsim.study" span (attrs: organization, trials, shard count), each
// shard is an "exec.task" span via the fan-out, and shard completions report
// progress. ctx is only consulted once at entry plus per shard dispatch —
// the Monte-Carlo inner loops never see it — and the result stays a pure
// function of (Seed, trials) regardless of what ctx carries.
func (s *Study) RunCtx(ctx context.Context, trials int) (Result, error) {
	if err := s.validate(trials); err != nil {
		return Result{}, err
	}

	// Per-stratum Monte Carlo, sharded. Each (stratum, shard) pair owns a
	// fixed slice of the trial budget and an RNG stream derived from it, so
	// shard tallies can be computed on any number of workers — or any number
	// of cluster nodes — and merged in shard order with a bit-identical
	// outcome.
	jobs := s.Shards(trials)
	if obs.Enabled(ctx) {
		var sp *obs.Span
		ctx, sp = obs.Start(ctx, "faultsim.study",
			obs.Str("org", s.Org.Name),
			obs.Int("trials", int64(trials)),
			obs.Int("shards", int64(len(jobs))))
		defer sp.End()
	}
	tallies, err := exec.Map(ctx, s.Workers, len(jobs), func(i int) (ShardTally, error) {
		return s.RunShard(jobs[i]), nil
	})
	if err != nil {
		return Result{}, err
	}
	return s.Combine(jobs, tallies, trials)
}

// sampleFaults draws k faults: chip uniform, mode proportional to FIT,
// location uniform in the chip grid.
func (s *Study) sampleFaults(rng *xrand.RNG, k int) []fault {
	g := s.Org.Geom
	total := s.Rates.Total()
	out := make([]fault, k)
	for i := range out {
		u := rng.Float64() * total
		var m Mode
		for m = ModeBit; m < ModeRank; m++ {
			u -= s.Rates.of(m)
			if u < 0 {
				break
			}
		}
		if m >= ModeRank {
			m = ModeBank
		}
		out[i] = fault{
			chip: rng.Intn(s.Org.Chips),
			mode: m,
			bank: rng.Intn(g.Banks),
			row:  rng.Intn(g.Rows),
			col:  rng.Intn(g.Cols),
		}
	}
	return out
}

// uncorrectable adjudicates an accumulated fault set under the rank's ECC.
func (s *Study) uncorrectable(faults []fault) bool {
	switch s.Org.Scheme {
	case ecc.None:
		return len(faults) > 0
	case ecc.SECDED:
		// Words live inside one chip: any multi-bit-per-word mode is fatal;
		// otherwise two single-bit-class faults in the same chip whose
		// footprints share a word are fatal.
		for _, f := range faults {
			if multiBitPerWord(f.mode) {
				return true
			}
		}
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				if faults[i].chip == faults[j].chip &&
					intersects(faults[i], faults[j], s.Org.Geom) {
					return true
				}
			}
		}
		return false
	case ecc.ChipKillSSC:
		// Every word spans all chips, one symbol per chip: a single chip's
		// fault of any mode stays within one symbol (correctable). Two
		// faults on different chips intersecting in a word corrupt two
		// symbols — uncorrectable.
		for i := 0; i < len(faults); i++ {
			for j := i + 1; j < len(faults); j++ {
				if faults[i].chip != faults[j].chip &&
					intersects(faults[i], faults[j], s.Org.Geom) {
					return true
				}
			}
		}
		return false
	default:
		return true
	}
}

// singleFaultOutcome classifies what the ECC does with one isolated fault,
// cross-checked against the real codecs in the ecc package by tests.
func singleFaultOutcome(scheme ecc.Scheme, m Mode) ecc.Outcome {
	switch scheme {
	case ecc.SECDED:
		if multiBitPerWord(m) {
			// A whole-word/row/bank fault puts many bits in one word; the
			// decoder detects even-weight patterns and miscorrects others —
			// either way the data is lost.
			return ecc.DetectedUncorrectable
		}
		return ecc.Corrected
	case ecc.ChipKillSSC:
		return ecc.Corrected
	case ecc.None:
		return ecc.DetectedUncorrectable
	default:
		return ecc.DetectedUncorrectable
	}
}

// poissonPMF returns P(N = k) for N ~ Poisson(lambda).
func poissonPMF(lambda float64, k int) float64 {
	if lambda <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	logp := -lambda + float64(k)*math.Log(lambda) - logFactorial(k)
	return math.Exp(logp)
}

func logFactorial(k int) float64 {
	s := 0.0
	for i := 2; i <= k; i++ {
		s += math.Log(float64(i))
	}
	return s
}

// TierFITs bundles the per-GB uncorrectable FIT of every tier — the numbers
// the SER model consumes. The two-tier fields remain the primary interface
// for the paper's default machine; PerGB carries the full per-tier vector
// for N-tier topologies (index = tier id).
type TierFITs struct {
	DDRPerGB float64
	HBMPerGB float64
	// PerGB, when non-nil, holds the uncorrectable FIT per GB of every tier
	// by dense tier index. Nil means the legacy two-tier pair above (tier 0
	// = DDR, tier 1 = HBM).
	PerGB []float64
}

// Of returns tier's uncorrectable FIT per GB, falling back to the two-tier
// pair when no per-tier vector is present. Unknown tiers rate zero.
func (t TierFITs) Of(tier int) float64 {
	if tier >= 0 && tier < len(t.PerGB) {
		return t.PerGB[tier]
	}
	if t.PerGB == nil {
		switch tier {
		case 0:
			return t.DDRPerGB
		case 1:
			return t.HBMPerGB
		}
	}
	return 0
}

// Ratio returns HBM/DDR per-GB uncorrectable FIT.
func (t TierFITs) Ratio() float64 {
	if t.DDRPerGB == 0 {
		return math.Inf(1)
	}
	return t.HBMPerGB / t.DDRPerGB
}

// DefaultTierFITs runs both tier studies at the paper's trial counts scaled
// for test-time tractability (§3.2 runs 100K/1M trials; the stratified
// estimator reaches comparable precision with far fewer), sharded across one
// worker per CPU.
func DefaultTierFITs(trials int) (TierFITs, error) {
	return DefaultTierFITsWorkers(trials, 0)
}

// DefaultTierFITsWorkers is DefaultTierFITs with an explicit worker budget
// (non-positive = one per CPU). The worker count never changes the result.
func DefaultTierFITsWorkers(trials, workers int) (TierFITs, error) {
	return TierFITsCtx(context.Background(), trials, workers)
}

// TierFITsCtx is DefaultTierFITsWorkers with observability threaded through:
// each tier's study runs under its own "faultsim.study" span and reports
// shard progress to the context's sink.
func TierFITsCtx(ctx context.Context, trials, workers int) (TierFITs, error) {
	if trials <= 0 {
		trials = 20000
	}
	rates := SridharanTransient()
	ddrStudy := NewStudy(DDR3ChipKill(), rates, 0xD0D0)
	ddrStudy.Workers = workers
	ddr, err := ddrStudy.RunCtx(ctx, trials)
	if err != nil {
		return TierFITs{}, err
	}
	hbmStudy := NewStudy(HBMSecDed(), rates, 0x4B1D)
	hbmStudy.Workers = workers
	hbm, err := hbmStudy.RunCtx(ctx, trials)
	if err != nil {
		return TierFITs{}, err
	}
	return TierFITs{DDRPerGB: ddr.UncFITPerGB, HBMPerGB: hbm.UncFITPerGB}, nil
}
